package mgs

import (
	"mgs/internal/harness"
)

// Option mutates a Config under construction; pass options to
// NewConfig. All options are re-exported from the harness layer, so a
// Config built here is identical to one the internal tools build.
type Option = harness.Option

// NewConfig returns the calibrated paper configuration for p processors
// in clusters of c — 1K-byte pages, a 64-entry software TLB, a
// 1000-cycle inter-SSMP delay, and software coherence disabled when
// c == p (the paper's tightly-coupled baseline) — then applies the
// options in order:
//
//	cfg := mgs.NewConfig(16, 4,
//	    mgs.WithPageSize(2048),
//	    mgs.WithObserver(obsv))
func NewConfig(p, c int, opts ...Option) Config { return harness.NewConfig(p, c, opts...) }

// WithPageSize sets the virtual page size in bytes (power of two).
func WithPageSize(bytes int) Option { return harness.WithPageSize(bytes) }

// WithTLBSize sets the per-processor software TLB capacity.
func WithTLBSize(entries int) Option { return harness.WithTLBSize(entries) }

// WithInterSSMPDelay sets the fixed inter-SSMP message latency in
// cycles (the paper's emulated-LAN knob).
func WithInterSSMPDelay(d Time) Option { return harness.WithInterSSMPDelay(d) }

// WithDisabled forces the software coherence layer off or on,
// overriding the c == p default.
func WithDisabled(disabled bool) Option { return harness.WithDisabled(disabled) }

// WithFaultPlan attaches a deterministic fault-injection plan to the
// inter-SSMP transport: messages are dropped, duplicated, and delayed
// per the plan's seeded schedule, and the reliable transport
// (sequence numbers, acks, retransmission) recovers. Runs stay fully
// deterministic; an empty plan is the identity.
func WithFaultPlan(p FaultPlan) Option { return harness.WithFaultPlan(p) }

// WithObserver attaches an observability spine to the machine: trace
// sinks, the metrics registry, and (if enabled) the cycle-attribution
// profiler. A nil observer — or none at all — keeps every emission path
// structurally detached; runs are bit-identical either way.
func WithObserver(o *Observer) Option { return harness.WithObserver(o) }

// WithTopology selects the inter-SSMP interconnect. The default is the
// paper's uniform fixed-delay LAN (NewUniform); NewMesh2D, NewFatTree,
// and NewTiered add routed topologies with per-link latency and
// bandwidth contention for scaling studies:
//
//	cfg := mgs.NewConfig(1024, 4, mgs.WithTopology(mgs.NewTiered(8)))
func WithTopology(t Topology) Option { return harness.WithTopology(t) }

// WithEngineWorkers sets the parallel event-dispatch worker count;
// n <= 1 keeps the sequential dispatcher. Results are bit-identical at
// any setting (contended topologies fall back automatically).
func WithEngineWorkers(n int) Option { return harness.WithEngineWorkers(n) }

// WithLockAlgo selects the lock algorithm by name: "token" (the
// default two-level MGS token lock), "ticket", "mcs", or "tournament".
// Every algorithm runs as message sequences over the real protocol, so
// acquires fault pages, waits charge cycles, and remote handoffs pay
// interconnect latency on every topology:
//
//	cfg := mgs.NewConfig(32, 4, mgs.WithLockAlgo("mcs"))
func WithLockAlgo(name string) Option { return harness.WithLockAlgo(name) }

// WithBarrierAlgo selects the barrier algorithm by name: "tree" (the
// default two-level MGS tree barrier), "sense", "dissemination",
// "mcstree", or "tournament":
//
//	cfg := mgs.NewConfig(32, 4, mgs.WithBarrierAlgo("dissemination"))
func WithBarrierAlgo(name string) Option { return harness.WithBarrierAlgo(name) }
