// Benchmarks that regenerate every table and figure of the MGS paper's
// evaluation (§5), plus the design ablations from DESIGN.md. Each
// benchmark runs the corresponding experiment and reports the paper's
// quantities as custom metrics (cycles, breakup penalty, multigrain
// potential, lock hit ratios), so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. P defaults to 16 with reduced
// problem sizes so the full suite runs in minutes; set -mgs.full for
// the paper's P=32 shape with the larger scaled sizes.
package mgs_test

import (
	"flag"
	"fmt"
	"testing"

	"mgs/internal/exp"
	"mgs/internal/framework"
	"mgs/internal/harness"
)

var fullScale = flag.Bool("mgs.full", false, "paper-scale benchmarks: P=32, larger problem sizes")

func scale() (p int, mk func(string) harness.App) {
	if *fullScale {
		return 32, exp.NewApp
	}
	return 16, exp.SmallApp
}

// BenchmarkTable3Micro measures the primitive shared-memory costs.
func BenchmarkTable3Micro(b *testing.B) {
	var mi harness.Micro
	for i := 0; i < b.N; i++ {
		mi = exp.Table3()
	}
	b.ReportMetric(float64(mi.TLBFill), "tlbfill-cycles")
	b.ReportMetric(float64(mi.ReadMiss), "readmiss-cycles")
	b.ReportMetric(float64(mi.WriteMiss), "writemiss-cycles")
	b.ReportMetric(float64(mi.Release1W), "rel1w-cycles")
	b.ReportMetric(float64(mi.Release2W), "rel2w-cycles")
}

// BenchmarkTable4Speedups measures sequential time and tightly-coupled
// speedup per application.
func BenchmarkTable4Speedups(b *testing.B) {
	p, mk := scale()
	var rows []exp.Table4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.Table4(p, mk)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Speedup, r.App+"-speedup")
	}
}

// figure runs one Figures 6–10 sweep and reports the framework metrics.
func figure(b *testing.B, name string) {
	b.Helper()
	p, mk := scale()
	var m framework.Metrics
	var points []harness.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, m, err = exp.FigureSweep(name, p, mk)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, pt := range points {
		b.ReportMetric(float64(pt.Res.Cycles), fmt.Sprintf("C%d-cycles", pt.C))
	}
	b.ReportMetric(m.BreakupPenalty*100, "breakup-pct")
	b.ReportMetric(m.MultigrainPotential*100, "potential-pct")
	b.ReportMetric(m.CurvatureIndex, "curvature-idx")
}

func BenchmarkFig6Jacobi(b *testing.B)     { figure(b, "jacobi") }
func BenchmarkFig7MatMul(b *testing.B)     { figure(b, "matmul") }
func BenchmarkFig8TSP(b *testing.B)        { figure(b, "tsp") }
func BenchmarkFig9Water(b *testing.B)      { figure(b, "water") }
func BenchmarkFig10BarnesHut(b *testing.B) { figure(b, "barnes-hut") }

// BenchmarkFig11LockHit reports the MGS lock hit ratio versus cluster
// size for the lock-using applications.
func BenchmarkFig11LockHit(b *testing.B) {
	p, mk := scale()
	names := []string{"tsp", "water", "barnes-hut"}
	var out map[string][]exp.HitPoint
	for i := 0; i < b.N; i++ {
		var err error
		out, err = exp.LockHitSweep(names, p, mk)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, name := range names {
		for _, pt := range out[name] {
			b.ReportMetric(pt.Ratio, fmt.Sprintf("%s-C%d-hit", name, pt.C))
		}
	}
}

// BenchmarkFig12WaterKernel compares the plain and hand-tiled kernels.
func BenchmarkFig12WaterKernel(b *testing.B) {
	p, _ := scale()
	n := 16 * p
	var plain, tiled []harness.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		plain, tiled, err = exp.Fig12(p, n)
		if err != nil {
			b.Fatal(err)
		}
	}
	mp := framework.Analyze(exp.FrameworkPoints(plain))
	mt := framework.Analyze(exp.FrameworkPoints(tiled))
	b.ReportMetric(mp.BreakupPenalty*100, "plain-breakup-pct")
	b.ReportMetric(mt.BreakupPenalty*100, "tiled-breakup-pct")
	b.ReportMetric(mt.MultigrainPotential*100, "tiled-potential-pct")
	b.ReportMetric(float64(plain[0].Res.Cycles)/float64(tiled[0].Res.Cycles), "tiled-speedup-C1")
}

// BenchmarkAblationSingleWriter quantifies the single-writer
// optimization (§3.1.1) on Water.
func BenchmarkAblationSingleWriter(b *testing.B) {
	p, mk := scale()
	var on, off []harness.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		on, off, err = exp.AblationSingleWriter("water", p, mk)
		if err != nil {
			b.Fatal(err)
		}
	}
	for i := range on {
		b.ReportMetric(float64(off[i].Res.Cycles)/float64(on[i].Res.Cycles),
			fmt.Sprintf("C%d-off/on", on[i].C))
	}
}

// BenchmarkAblationSerialInv compares serial and parallel release-round
// invalidations.
func BenchmarkAblationSerialInv(b *testing.B) {
	p, mk := scale()
	var serial, par []harness.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		serial, par, err = exp.AblationSerialInv("water", p, mk)
		if err != nil {
			b.Fatal(err)
		}
	}
	for i := range serial {
		b.ReportMetric(float64(serial[i].Res.Cycles)/float64(par[i].Res.Cycles),
			fmt.Sprintf("C%d-serial/par", serial[i].C))
	}
}

// BenchmarkAblationPageSize sweeps the coherence grain (§2.2) for TSP,
// whose false sharing makes it grain sensitive.
func BenchmarkAblationPageSize(b *testing.B) {
	p, mk := scale()
	var pts []exp.PageSizePoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = exp.AblationPageSize("tsp", p, 4, []int{512, 1024, 2048}, mk)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, pt := range pts {
		b.ReportMetric(float64(pt.Cycles), fmt.Sprintf("page%d-cycles", pt.PageSize))
	}
}

// BenchmarkExtLU sweeps the LU extension application (not in the
// paper's suite; a sixth sharing pattern — block ownership with
// broadcast pivot reads).
func BenchmarkExtLU(b *testing.B) {
	p, mk := scale()
	var m framework.Metrics
	for i := 0; i < b.N; i++ {
		var err error
		_, m, err = exp.FigureSweep("lu", p, mk)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.BreakupPenalty*100, "breakup-pct")
	b.ReportMetric(m.MultigrainPotential*100, "potential-pct")
}

// BenchmarkAblationUpdateProtocol compares invalidate-based release
// rounds (the paper's eager protocol) with the update-based variant its
// related work discusses (Galactica Net).
func BenchmarkAblationUpdateProtocol(b *testing.B) {
	p, mk := scale()
	var inval, update []harness.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		inval, update, err = exp.AblationUpdateProtocol("water", p, mk)
		if err != nil {
			b.Fatal(err)
		}
	}
	for i := range inval {
		b.ReportMetric(float64(update[i].Res.Cycles)/float64(inval[i].Res.Cycles),
			fmt.Sprintf("C%d-upd/inv", inval[i].C))
	}
}

// BenchmarkAblationMesh compares the paper's uniform fixed-delay
// inter-SSMP LAN against the contended 2D-mesh topology extension, at a
// per-hop latency chosen so the mean uncontended mesh latency matches
// the uniform delay (isolating non-uniformity and link contention).
func BenchmarkAblationMesh(b *testing.B) {
	p, mk := scale()
	var uniform, mesh []harness.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		uniform, mesh, err = exp.AblationMesh("water", p, 250, mk)
		if err != nil {
			b.Fatal(err)
		}
	}
	for i := range uniform {
		b.ReportMetric(float64(mesh[i].Res.Cycles)/float64(uniform[i].Res.Cycles),
			fmt.Sprintf("C%d-mesh/uniform", uniform[i].C))
	}
}

// BenchmarkAblationLazy compares the paper's eager release consistency
// with the TreadMarks-style lazy variant its related work discusses:
// releases stop invalidating remote copies; lock grants and barrier
// exits validate the acquiring SSMP against home versions instead.
func BenchmarkAblationLazy(b *testing.B) {
	p, mk := scale()
	var eager, lazy []harness.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		eager, lazy, err = exp.AblationLazy("water", p, mk)
		if err != nil {
			b.Fatal(err)
		}
	}
	for i := range eager {
		b.ReportMetric(float64(lazy[i].Res.Cycles)/float64(eager[i].Res.Cycles),
			fmt.Sprintf("C%d-lazy/eager", eager[i].C))
	}
}
