// Smoke test: every example program must build and run to completion
// with a zero exit status and produce output. The examples double as
// the public API's integration tests — they compile against the mgs
// package only, so an API break that misses the unit tests still
// fails here.
package examples_test

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples run full simulations; skipped in -short mode")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(e.Name(), "main.go")); err != nil {
			continue
		}
		found++
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, goBin, "run", "./examples/"+name)
			cmd.Dir = ".." // module root
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("go run ./examples/%s produced no output", name)
			}
		})
	}
	if found == 0 {
		t.Fatal("no example programs found")
	}
}
