// Writing your own application against the machine API: a parallel
// histogram with per-bucket locks, verified against a host-side
// reference, swept across cluster sizes.
//
// It also demonstrates the false-sharing trade-off the paper's §2.2
// discusses: buckets packed onto few pages thrash the software protocol
// at small cluster sizes, while page-padded buckets do not.
//
//	go run ./examples/customapp
package main

import (
	"fmt"
	"log"

	"mgs"
)

// histogram bins values into shared buckets under per-bucket locks.
type histogram struct {
	items   int
	buckets int
	padded  bool // one page per bucket instead of packed

	data mgs.Addr
	bins mgs.Addr
	step int
}

func (h *histogram) Name() string { return "histogram" }

func (h *histogram) value(i int) int64 { return int64((i*2654435761 + 12345) % 997) }

// Setup allocates the input and the buckets (packed or padded).
func (h *histogram) Setup(m *mgs.Machine) {
	h.data = m.Alloc(h.items * 8)
	for i := 0; i < h.items; i++ {
		m.SetI64(h.data+mgs.Addr(i*8), h.value(i))
	}
	h.step = 8
	if h.padded {
		h.step = m.Cfg.PageSize
	}
	h.bins = m.Alloc(h.buckets * h.step)
}

// Body bins a block of items.
func (h *histogram) Body(c *mgs.Ctx) {
	per := h.items / c.NProcs
	lo := c.ID * per
	hi := lo + per
	if c.ID == c.NProcs-1 {
		hi = h.items
	}
	for i := lo; i < hi; i++ {
		v := c.LoadI64(h.data + mgs.Addr(i*8))
		b := int(v) * h.buckets / 997
		addr := h.bins + mgs.Addr(b*h.step)
		c.Acquire(1 + b)
		c.StoreI64(addr, c.LoadI64(addr)+1)
		c.Release(1 + b)
	}
	c.Barrier(0)
}

// Verify recounts on the host.
func (h *histogram) Verify(m *mgs.Machine) error {
	want := make([]int64, h.buckets)
	for i := 0; i < h.items; i++ {
		want[int(h.value(i))*h.buckets/997]++
	}
	for b := 0; b < h.buckets; b++ {
		if got := m.GetI64(h.bins + mgs.Addr(b*h.step)); got != want[b] {
			return fmt.Errorf("bucket %d = %d, want %d", b, got, want[b])
		}
	}
	return nil
}

func main() {
	const p = 8
	fmt.Printf("parallel histogram, P=%d, 2048 items, 32 buckets\n\n", p)
	fmt.Printf("  %-4s %18s %18s\n", "C", "packed (cycles)", "padded (cycles)")
	for c := 1; c <= p; c *= 2 {
		packed, err := mgs.RunApp(&histogram{items: 2048, buckets: 32}, mgs.NewConfig(p, c))
		if err != nil {
			log.Fatal(err)
		}
		padded, err := mgs.RunApp(&histogram{items: 2048, buckets: 32, padded: true}, mgs.NewConfig(p, c))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-4d %18d %18d\n", c, packed.Cycles, padded.Cycles)
	}
	fmt.Println("\nPacked buckets false-share pages, so small cluster sizes pay the")
	fmt.Println("software protocol on nearly every update; padding restores layout")
	fmt.Println("locality and the gap closes.")
}
