// Quickstart: build a DSSMP, run ordinary shared-memory code on it, and
// read the paper's performance breakdown.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mgs"
)

func main() {
	// 16 processors grouped into SSMPs of 4: hardware cache coherence
	// inside each SSMP, the MGS software protocol between them.
	cfg := mgs.NewConfig(16, 4)
	m := mgs.NewMachine(cfg)

	// Shared memory is allocated up front; Set*/Get* initialize and
	// inspect it without simulated cost.
	const n = 1 << 12
	data := m.Alloc(n * 8)
	sum := m.Alloc(8)
	for i := 0; i < n; i++ {
		m.SetI64(data+mgs.Addr(i*8), int64(i))
	}

	// Every processor sums a block of the shared array, then folds its
	// partial into a lock-protected global — classic shared-memory
	// code, except loads and stores run through software TLBs, caches,
	// page faults, and the release-consistent MGS protocol.
	res, err := m.Run(func(c *mgs.Ctx) {
		per := n / c.NProcs
		lo := c.ID * per
		part := int64(0)
		for i := lo; i < lo+per; i++ {
			part += c.LoadI64(data + mgs.Addr(i*8))
		}
		c.Acquire(0)
		c.StoreI64(sum, c.LoadI64(sum)+part)
		c.Release(0)
		c.Barrier(0)
	})
	if err != nil {
		log.Fatal(err)
	}

	want := int64(n) * (n - 1) / 2
	fmt.Printf("sum = %d (want %d)\n", m.GetI64(sum), want)
	fmt.Printf("execution time: %d cycles\n", res.Cycles)
	fmt.Printf("breakdown: %s\n", res.Breakdown)
	fmt.Printf("lock hit ratio: %d/%d\n", res.LockHits, res.LockTotal)
	fmt.Printf("inter-SSMP messages: %d\n", res.InterMsgs)
}
