// The paper's §5.2.3 story in miniature: the Water force-interaction
// kernel before and after the tiling transformation that gives it
// perfect multigrain locality (Figure 12).
//
//	go run ./examples/waterkernel
package main

import (
	"fmt"
	"log"

	"mgs"
	"mgs/internal/apps"
)

func main() {
	const p, n = 8, 128
	fmt.Printf("Water force kernel, %d molecules, P=%d\n\n", n, p)
	fmt.Printf("  %-4s %16s %16s %9s\n", "C", "plain (cycles)", "tiled (cycles)", "speedup")
	for c := 1; c <= p; c *= 2 {
		cfg := mgs.NewConfig(p, c)
		plain, err := mgs.RunApp(&apps.WaterKernel{N: n, Tiled: false}, cfg)
		if err != nil {
			log.Fatal(err)
		}
		tiled, err := mgs.RunApp(&apps.WaterKernel{N: n, Tiled: true}, mgs.NewConfig(p, c))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-4d %16d %16d %8.1fx\n",
			c, plain.Cycles, tiled.Cycles, float64(plain.Cycles)/float64(tiled.Cycles))
	}
	fmt.Println("\nThe tiled kernel confines all sharing within an SSMP during each")
	fmt.Println("phase; only phase boundaries cross SSMPs, at page grain. That is")
	fmt.Println("multigrain locality — and why its breakup penalty collapses.")
}
