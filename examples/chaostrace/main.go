// Chaostrace: observe a machine while faults batter its transport —
// all through the public mgs package, no internal imports.
//
// An observer with a filtered text sink prints the transport's fate
// events (drops, timeouts, retransmissions) as they happen in virtual
// time; profiling attributes every simulated cycle to the page, lock,
// or barrier it was spent on; and the metrics registry snapshots the
// run's counters, gauges, and wait-time histograms at the end. The
// fault plan is deterministic: run this twice and every line is
// byte-identical.
//
//	go run ./examples/chaostrace
package main

import (
	"fmt"
	"log"
	"os"

	"mgs"
)

func main() {
	// Print transport fates only; the protocol and sync streams are
	// also on the bus (drop the filter to see everything).
	transportOnly := mgs.FilterSink(mgs.NewTextSink(os.Stdout), func(e mgs.Event) bool {
		return e.Cat == mgs.CatTransport
	})
	obsv := mgs.NewObserver().AddSink(transportOnly).EnableProfiling()

	const p, c = 8, 2
	cfg := mgs.NewConfig(p, c,
		mgs.WithObserver(obsv),
		// 3% of inter-SSMP transmission attempts lost, 1% duplicated,
		// 5% delayed — the reliable transport retransmits through it.
		mgs.WithFaultPlan(mgs.FaultPlan{Seed: 7, DropBP: 300, DupBP: 100, DelayBP: 500}))
	m := mgs.NewMachine(cfg)

	// The workload: every processor increments each counter of a shared
	// page under a lock, then all meet at a barrier.
	const slots = 64
	arr := m.Alloc(slots * 8)
	res, err := m.Run(func(ctx *mgs.Ctx) {
		for i := 0; i < slots; i++ {
			ctx.Acquire(0)
			a := arr + mgs.Addr(i*8)
			ctx.StoreI64(a, ctx.LoadI64(a)+1)
			ctx.Release(0)
		}
		ctx.Barrier(0)
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < slots; i++ {
		if got := m.GetI64(arr + mgs.Addr(i*8)); got != p {
			log.Fatalf("slot %d = %d, want %d — faults corrupted memory", i, got, p)
		}
	}

	fmt.Printf("\nall %d slots correct despite %d drops and %d retransmissions\n",
		slots, res.Fault.Dropped, res.Fault.Retransmits)
	fmt.Printf("execution time: %d cycles (breakdown %s)\n", res.Cycles, res.Breakdown)

	fmt.Println("\nhottest pages by attributed cycles:")
	for i, h := range obsv.Profiler().Heat(mgs.ObjPage) {
		if i >= 3 {
			break
		}
		fmt.Printf("  page %-3d %12d cycles\n", h.ID, h.Cycles)
	}

	fmt.Println("\nselected metrics:")
	for _, met := range obsv.Metrics() {
		switch met.Name {
		case "fault.msgs", "fault.dropped", "fault.retransmits",
			"lock.waitcycles", "barrier.waitcycles":
			fmt.Printf("  %s\n", met)
		}
	}
}
