// Interconnect topology study: the same application on the paper's
// uniform fixed-delay inter-SSMP LAN versus the contended 2D-mesh
// extension, at a per-hop latency chosen so the mean uncontended mesh
// latency is comparable to the uniform delay. The difference isolates
// what the paper's emulation abstracts away: distance non-uniformity
// and link contention.
//
//	go run ./examples/mesh [-app water] [-p 16] [-perhop 250]
package main

import (
	"flag"
	"fmt"
	"log"

	"mgs"
	"mgs/internal/exp"
	"mgs/internal/sim"
)

func main() {
	app := flag.String("app", "water", "application to run")
	p := flag.Int("p", 16, "total processors")
	perHop := flag.Int64("perhop", 250, "mesh per-hop latency (cycles)")
	flag.Parse()

	fmt.Printf("%s, P=%d: uniform LAN (1000 cycles flat) vs 2D mesh (%d cycles/hop)\n\n",
		*app, *p, *perHop)
	fmt.Printf("  %-4s %14s %14s %10s %12s\n", "C", "uniform", "mesh", "mesh/unif", "link wait")
	for c := 1; c < *p; c *= 2 {
		uni, _ := run(*app, *p, c, 0)
		mesh, wait := run(*app, *p, c, sim.Time(*perHop))
		fmt.Printf("  %-4d %14d %14d %10.3f %12d\n",
			c, uni.Cycles, mesh.Cycles,
			float64(mesh.Cycles)/float64(uni.Cycles), wait)
	}
	fmt.Println("\nSSMPs near each other in the grid talk faster than the uniform")
	fmt.Println("LAN; far corners and contended links talk slower. Whether the mesh")
	fmt.Println("wins depends on how the application's sharing maps onto the grid.")
}

// run executes the app once; perHop > 0 selects the mesh topology. It
// returns the result and the total cycles messages spent queued on busy
// mesh links.
func run(app string, p, c int, perHop sim.Time) (mgs.Result, int64) {
	cfg := exp.Config(p, c)
	if perHop > 0 {
		cfg.Msg.Topology = mgs.NewMesh2D()
		cfg.Msg.InterPerHop = perHop
	}
	a := exp.SmallApp(app)
	m := mgs.NewMachine(cfg)
	a.Setup(m)
	res, err := m.Run(a.Body)
	if err != nil {
		log.Fatal(err)
	}
	if err := a.Verify(m); err != nil {
		log.Fatalf("verification: %v", err)
	}
	return res, m.Net.Counters.LinkWaitCycles
}
