// The paper's §2.4 performance framework applied end to end: sweep an
// application across cluster sizes at fixed P and compute breakup
// penalty, multigrain potential, and multigrain curvature.
//
//	go run ./examples/framework [-app water] [-p 16]
package main

import (
	"flag"
	"fmt"
	"log"

	"mgs/internal/exp"
	"mgs/internal/framework"
)

func main() {
	app := flag.String("app", "water", "application to characterize")
	p := flag.Int("p", 16, "total processors")
	flag.Parse()

	points, metrics, err := exp.FigureSweep(*app, *p, exp.SmallApp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s across cluster sizes (P=%d):\n", *app, *p)
	fmt.Print(framework.Table(exp.FrameworkPoints(points)))
	fmt.Printf("\n%s\n\n", metrics)
	if metrics.Convex() {
		fmt.Println("Convex curvature: most of the software-DSM cost disappears with")
		fmt.Println("small clusters — this application suits DSSMPs built from small")
		fmt.Println("multiprocessors (the paper's 'curve B').")
	} else {
		fmt.Println("Concave curvature: the gains only arrive with large clusters —")
		fmt.Println("this application wants tight coupling (the paper's 'curve A').")
	}
}
