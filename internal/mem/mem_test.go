package mem

import (
	"testing"
	"testing/quick"
)

func TestFrameWordAccess(t *testing.T) {
	f := NewFrame(0, 1024)
	f.Store64(0, 0xdeadbeefcafebabe)
	f.Store64(1016, 42)
	f.Store32(512, 7)
	if got := f.Load64(0); got != 0xdeadbeefcafebabe {
		t.Errorf("Load64(0) = %#x", got)
	}
	if got := f.Load64(1016); got != 42 {
		t.Errorf("Load64(1016) = %d", got)
	}
	if got := f.Load32(512); got != 7 {
		t.Errorf("Load32(512) = %d", got)
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := NewFrame(0, 4096)
	fn := func(off uint16, v uint64) bool {
		o := int(off) % (4096 - 8)
		o &^= 7 // align
		f.Store64(o, v)
		return f.Load64(o) == v
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotIsIndependent(t *testing.T) {
	f := NewFrame(0, 64)
	f.Store64(0, 1)
	twin := f.Snapshot()
	f.Store64(0, 2)
	if twin[0] != 1 {
		t.Errorf("twin mutated with frame: twin[0] = %d", twin[0])
	}
	if f.Load64(0) != 2 {
		t.Errorf("frame lost store")
	}
}

func TestCopyFrom(t *testing.T) {
	src := NewFrame(0, 64)
	dst := NewFrame(1, 64)
	src.Store64(8, 99)
	dst.CopyFrom(src.Data)
	if dst.Load64(8) != 99 {
		t.Errorf("CopyFrom did not transfer data")
	}
}

func TestCopyFromSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	NewFrame(0, 64).CopyFrom(make([]byte, 32))
}

func TestAllocatorUniqueIDs(t *testing.T) {
	a := NewFrameAllocator(256)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		f := a.Alloc()
		if seen[f.ID] {
			t.Fatalf("duplicate frame ID %d", f.ID)
		}
		seen[f.ID] = true
		if len(f.Data) != 256 {
			t.Fatalf("frame size %d, want 256", len(f.Data))
		}
	}
	if a.Allocated() != 100 {
		t.Fatalf("Allocated() = %d, want 100", a.Allocated())
	}
}

// TestFrameAccessZeroAllocs pins the //mgs:noalloc contract of the word
// accessors and the DMA copy — the storage behind every simulated
// Load/Store.
func TestFrameAccessZeroAllocs(t *testing.T) {
	f := NewFrame(1, 256)
	src := make([]byte, 256)
	allocs := testing.AllocsPerRun(100, func() {
		f.Store64(8, 0xdeadbeef)
		_ = f.Load64(8)
		f.Store32(16, 7)
		_ = f.Load32(16)
		f.CopyFrom(src)
	})
	if allocs != 0 {
		t.Errorf("frame access allocated %.1f times per op, want 0", allocs)
	}
}
