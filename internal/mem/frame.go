// Package mem models physical page frames.
//
// A Frame is the unit of physical memory the MGS protocol replicates
// between SSMPs: the home SSMP holds the home copy, and each client SSMP
// that has requested the page holds its own Frame whose contents really
// diverge between release points. Twins (for multiple-writer diffing)
// are byte snapshots of Frames.
//
// All word accessors use little-endian byte order and must be naturally
// aligned; they are the raw storage behind the simulated Load/Store
// instructions, so they are deliberately small and allocation-free.
package mem

import "encoding/binary"

// Frame is one physical page frame. ID is a machine-wide unique physical
// frame number (the simulator's stand-in for a physical page address);
// caches tag lines with it.
type Frame struct {
	ID   uint64
	Data []byte
}

// NewFrame allocates a zeroed frame of the given page size.
func NewFrame(id uint64, pageSize int) *Frame {
	return &Frame{ID: id, Data: make([]byte, pageSize)}
}

// Load64 reads the 8-byte word at byte offset off.
//
//mgs:noalloc
func (f *Frame) Load64(off int) uint64 {
	return binary.LittleEndian.Uint64(f.Data[off : off+8])
}

// Store64 writes the 8-byte word at byte offset off.
//
//mgs:noalloc
func (f *Frame) Store64(off int, v uint64) {
	binary.LittleEndian.PutUint64(f.Data[off:off+8], v)
}

// Load32 reads the 4-byte word at byte offset off.
//
//mgs:noalloc
func (f *Frame) Load32(off int) uint32 {
	return binary.LittleEndian.Uint32(f.Data[off : off+4])
}

// Store32 writes the 4-byte word at byte offset off.
//
//mgs:noalloc
func (f *Frame) Store32(off int, v uint32) {
	binary.LittleEndian.PutUint32(f.Data[off:off+4], v)
}

// Snapshot returns a copy of the frame's bytes (a twin).
func (f *Frame) Snapshot() []byte {
	twin := make([]byte, len(f.Data))
	copy(twin, f.Data)
	return twin
}

// CopyFrom overwrites the frame's contents with src (a DMA page
// transfer). src must be exactly one page.
//
//mgs:noalloc
func (f *Frame) CopyFrom(src []byte) {
	if len(src) != len(f.Data) {
		panic("mem: page size mismatch in CopyFrom")
	}
	copy(f.Data, src)
}
