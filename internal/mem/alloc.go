package mem

// FrameAllocator hands out machine-wide unique physical frame IDs.
// Physical capacity is not modeled (the paper's nodes have far more DRAM
// than any workload here touches); the allocator exists so that every
// frame has a distinct physical tag for the cache model.
type FrameAllocator struct {
	next     uint64
	pageSize int
}

// NewFrameAllocator returns an allocator for frames of pageSize bytes.
func NewFrameAllocator(pageSize int) *FrameAllocator {
	return &FrameAllocator{pageSize: pageSize}
}

// PageSize returns the frame size in bytes.
func (a *FrameAllocator) PageSize() int { return a.pageSize }

// Alloc returns a fresh zeroed frame with a unique ID.
func (a *FrameAllocator) Alloc() *Frame {
	f := NewFrame(a.next, a.pageSize)
	a.next++
	return f
}

// Allocated reports how many frames have been handed out.
func (a *FrameAllocator) Allocated() uint64 { return a.next }
