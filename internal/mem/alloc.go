package mem

// FrameAllocator hands out unique physical frame IDs from its own ID
// region and recycles retired frames. Physical capacity is not modeled
// (the paper's nodes have far more DRAM than any workload here
// touches); the allocator exists so that every live frame has a
// distinct physical tag for the cache model.
//
// Each SSMP owns one allocator (a disjoint ID region via base), so
// allocation is shard-local state under the parallel dispatcher: no
// cross-shard ordering can leak into frame IDs, and a shard's
// alloc/recycle sequence — hence every ID it hands out — is identical
// between the sequential and parallel engines.
type FrameAllocator struct {
	base     uint64
	next     uint64
	pageSize int
	free     []*Frame // LIFO; retired frames, zeroed, IDs retained
}

// NewFrameAllocator returns an allocator for frames of pageSize bytes
// with IDs starting at zero.
func NewFrameAllocator(pageSize int) *FrameAllocator {
	return &FrameAllocator{pageSize: pageSize}
}

// NewFrameAllocatorAt returns an allocator whose IDs start at base.
// Callers carving one ID space into regions (one per SSMP) must space
// the bases far enough apart that regions never collide.
func NewFrameAllocatorAt(base uint64, pageSize int) *FrameAllocator {
	return &FrameAllocator{base: base, pageSize: pageSize}
}

// PageSize returns the frame size in bytes.
func (a *FrameAllocator) PageSize() int { return a.pageSize }

// Alloc returns a zeroed frame with an ID unique among live frames:
// the most recently recycled frame if one is available, else a fresh
// frame with a never-used ID.
func (a *FrameAllocator) Alloc() *Frame {
	if n := len(a.free); n > 0 {
		f := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		return f
	}
	f := NewFrame(a.base+a.next, a.pageSize)
	a.next++
	return f
}

// Recycle retires f for reuse by a later Alloc. The frame is zeroed
// now so Alloc always returns a zeroed frame. Only recycle frames
// whose ID no longer tags any cache line (for the protocol: after a
// CleanPage); a reused ID must never produce a stale cache hit.
func (a *FrameAllocator) Recycle(f *Frame) {
	for i := range f.Data {
		f.Data[i] = 0
	}
	a.free = append(a.free, f)
}

// Allocated reports how many distinct frame IDs have been handed out.
func (a *FrameAllocator) Allocated() uint64 { return a.next }
