package harness

import (
	"fmt"
	"strings"

	"mgs/internal/sim"
	"mgs/internal/vm"
)

// Micro holds the Table 3 shared-memory costs. The hardware and
// translation groups are configuration inputs (the paper measured its
// hardware; we parameterize it); the software group is measured by
// running the corresponding operation through the full protocol stack
// on a 0-delay machine with 1K-byte pages, as the paper did.
type Micro struct {
	// Hardware shared memory (configured).
	CacheLocal, CacheRemote, Cache2P, Cache3P, RemoteSW sim.Time
	// Software virtual memory (configured).
	TransArray, TransPtr sim.Time
	// Software shared memory (measured, marginal over a cache hit).
	TLBFill   sim.Time
	ReadMiss  sim.Time
	WriteMiss sim.Time
	Release1W sim.Time
	Release2W sim.Time
}

// PaperMicro is Table 3 as published (20 MHz Alewife, 1K pages, 0-cycle
// inter-SSMP delay).
var PaperMicro = Micro{
	CacheLocal: 11, CacheRemote: 38, Cache2P: 42, Cache3P: 63, RemoteSW: 425,
	TransArray: 18, TransPtr: 24,
	TLBFill: 1037, ReadMiss: 6982, WriteMiss: 16331,
	Release1W: 14226, Release2W: 32570,
}

// microConfig is the Table 3 measurement machine: 0-cycle LAN delay.
func microConfig(p, c int) Config {
	return NewConfig(p, c, WithInterSSMPDelay(0), WithDisabled(false))
}

// MeasureMicro reproduces Table 3 on the current cost calibration.
func MeasureMicro() Micro {
	cfg := NewConfig(2, 1)
	mi := Micro{
		CacheLocal:  cfg.Cache.Local,
		CacheRemote: cfg.Cache.Remote,
		Cache2P:     cfg.Cache.TwoParty,
		Cache3P:     cfg.Cache.ThreeParty,
		RemoteSW:    cfg.Cache.Software,
		TransArray:  cfg.Protocol.TransArray,
		TransPtr:    cfg.Protocol.TransPtr,
	}
	mi.TLBFill = measureTLBFill()
	mi.ReadMiss = measureMiss(false)
	mi.WriteMiss = measureMiss(true)
	mi.Release1W = measureRelease(1)
	mi.Release2W = measureRelease(2)
	return mi
}

// hitCost is the cost of a translated cache-hit access, subtracted so
// the software numbers are the marginal protocol costs.
func hitCost(cfg Config) sim.Time { return cfg.Protocol.TransArray + cfg.Cache.Hit }

// allocHomedAt reserves a page whose home is the given processor.
func allocHomedAt(m *Machine, proc int) vm.Addr {
	for {
		va := m.Alloc(m.Cfg.PageSize)
		if m.DSM.Space().HomeProc(m.DSM.Space().PageOf(va)) == proc {
			return va
		}
	}
}

// measureTLBFill: processor 1 touches a page its SSMP already maps
// (transition 1: a pure software TLB fill from the local page table).
func measureTLBFill() sim.Time {
	cfg := microConfig(2, 2) // one SSMP of two processors
	m := NewMachine(cfg)
	va := allocHomedAt(m, 0)
	var fill sim.Time
	_, err := m.RunPer(func(i int) func(*Ctx) {
		if i == 0 {
			return func(c *Ctx) { c.LoadF64(va) } // maps the page
		}
		return func(c *Ctx) {
			c.Proc.Sleep(1_000_000)
			c.Proc.Advance(0) // absorb any handler debt before timing
			t0 := c.Clock()
			c.LoadF64(va)
			fill = c.Clock() - t0 - hitCost(cfg)
		}
	})
	if err != nil {
		panic(err)
	}
	return fill
}

// measureMiss: processor 1 (its own SSMP) faults on a page homed at
// processor 0's SSMP — the full inter-SSMP replication path.
func measureMiss(write bool) sim.Time {
	cfg := microConfig(2, 1)
	m := NewMachine(cfg)
	va := allocHomedAt(m, 0)
	var cost sim.Time
	_, err := m.RunPer(func(i int) func(*Ctx) {
		if i == 0 {
			return func(c *Ctx) {}
		}
		return func(c *Ctx) {
			c.Proc.Advance(0)
			t0 := c.Clock()
			if write {
				c.StoreF64(va, 1)
			} else {
				c.LoadF64(va)
			}
			cost = c.Clock() - t0 - hitCost(cfg)
		}
	})
	if err != nil {
		panic(err)
	}
	return cost
}

// measureRelease: writers dirty the page; processor 1 then performs the
// release and we time the DUQ flush (REL through RACK).
func measureRelease(writers int) sim.Time {
	cfg := microConfig(writers+1, 1)
	m := NewMachine(cfg)
	va := allocHomedAt(m, 0)
	var cost sim.Time
	_, err := m.RunPer(func(i int) func(*Ctx) {
		switch {
		case i == 0:
			return func(c *Ctx) {}
		case i == 1:
			return func(c *Ctx) {
				c.StoreF64(va, 1)
				c.Proc.Sleep(1_000_000) // let other writers dirty it too
				c.Proc.Advance(0)
				t0 := c.Clock()
				c.Fence()
				cost = c.Clock() - t0
			}
		default:
			return func(c *Ctx) {
				c.StoreF64(va+8*vm.Addr(c.ID), float64(c.ID))
			}
		}
	})
	if err != nil {
		panic(err)
	}
	return cost
}

// String renders the table in the paper's layout with the paper column
// alongside.
func (mi Micro) String() string {
	var b strings.Builder
	row := func(name string, got, paper sim.Time) {
		fmt.Fprintf(&b, "  %-32s %8d %10d\n", name, got, paper)
	}
	b.WriteString("Table 3: Shared Memory Costs (cycles)        this run      paper\n")
	b.WriteString("Hardware Shared Memory\n")
	row("Cache Miss Local", mi.CacheLocal, PaperMicro.CacheLocal)
	row("Cache Miss Remote", mi.CacheRemote, PaperMicro.CacheRemote)
	row("Cache Miss 2-party", mi.Cache2P, PaperMicro.Cache2P)
	row("Cache Miss 3-party", mi.Cache3P, PaperMicro.Cache3P)
	row("Remote Software", mi.RemoteSW, PaperMicro.RemoteSW)
	b.WriteString("Software Virtual Memory\n")
	row("Distributed Array Translation", mi.TransArray, PaperMicro.TransArray)
	row("Pointer Translation", mi.TransPtr, PaperMicro.TransPtr)
	b.WriteString("Software Shared Memory\n")
	row("TLB Fill", mi.TLBFill, PaperMicro.TLBFill)
	row("Inter-SSMP Read Miss", mi.ReadMiss, PaperMicro.ReadMiss)
	row("Inter-SSMP Write Miss", mi.WriteMiss, PaperMicro.WriteMiss)
	row("Release (1 writer)", mi.Release1W, PaperMicro.Release1W)
	row("Release (2 writers)", mi.Release2W, PaperMicro.Release2W)
	return b.String()
}
