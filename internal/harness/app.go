package harness

import "fmt"

// App is a shared-memory application runnable on a Machine. Setup
// allocates and initializes shared data (no simulated cost — the paper
// measures the parallel section), Body runs on every processor, and
// Verify checks the computed result against a host-side reference so
// protocol bugs surface as wrong answers.
type App interface {
	Name() string
	Setup(m *Machine)
	Body(c *Ctx)
	Verify(m *Machine) error
}

// RunApp builds a machine, runs the app, verifies the answer, and
// returns the result.
func RunApp(app App, cfg Config) (Result, error) {
	m := NewMachine(cfg)
	app.Setup(m)
	res, err := m.Run(app.Body)
	if err != nil {
		return res, fmt.Errorf("%s: %w", app.Name(), err)
	}
	if err := app.Verify(m); err != nil {
		return res, fmt.Errorf("%s: verification failed: %w", app.Name(), err)
	}
	return res, nil
}

// RunAppMem is RunApp, additionally returning the final shared-memory
// image (core.System.SnapshotMemory) after verification. The chaos
// harness compares the image of a faulty run byte-for-byte against the
// fault-free baseline's.
func RunAppMem(app App, cfg Config) (Result, []byte, error) {
	m := NewMachine(cfg)
	app.Setup(m)
	res, err := m.Run(app.Body)
	if err != nil {
		return res, nil, fmt.Errorf("%s: %w", app.Name(), err)
	}
	if err := app.Verify(m); err != nil {
		return res, nil, fmt.Errorf("%s: verification failed: %w", app.Name(), err)
	}
	return res, m.DSM.SnapshotMemory(), nil
}

// SweepPoint is one cluster size's outcome.
type SweepPoint struct {
	C   int
	Res Result
}

// Sweep runs a fresh instance of the app at every cluster size in cs,
// keeping P fixed — the paper's Figures 6–10 methodology. mk must
// return a fresh App (apps hold machine-bound addresses). Points run
// concurrently across up to SweepWorkers goroutines; each point is an
// independent Engine, so the results are identical to SweepSeq's.
func Sweep(mk func() App, p int, cs []int, cfgFor func(c int) Config) ([]SweepPoint, error) {
	out := make([]SweepPoint, len(cs))
	errs := RunIndexed(len(cs), func(i int) error {
		res, err := RunApp(mk(), cfgFor(cs[i]))
		if err != nil {
			return err
		}
		out[i] = SweepPoint{C: cs[i], Res: res}
		return nil
	})
	for i, err := range errs {
		if err != nil {
			return out[:i], fmt.Errorf("C=%d: %w", cs[i], err)
		}
	}
	return out, nil
}

// SweepSeq is Sweep restricted to the calling goroutine, one point at a
// time. It exists as the reference for the determinism regression tests
// and for callers that must not spawn goroutines.
func SweepSeq(mk func() App, p int, cs []int, cfgFor func(c int) Config) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, c := range cs {
		res, err := RunApp(mk(), cfgFor(c))
		if err != nil {
			return out, fmt.Errorf("C=%d: %w", c, err)
		}
		out = append(out, SweepPoint{C: c, Res: res})
	}
	return out, nil
}

// PowersOfTwo returns 1, 2, 4, ..., p.
func PowersOfTwo(p int) []int {
	var cs []int
	for c := 1; c <= p; c *= 2 {
		cs = append(cs, c)
	}
	return cs
}
