package harness

import "testing"

// TestMicroCalibration measures the Table 3 software costs through the
// full protocol stack and requires them to stay within tolerance of the
// paper's published numbers, so cost regressions show up as test
// failures. The emergent values also print for EXPERIMENTS.md.
func TestMicroCalibration(t *testing.T) {
	mi := MeasureMicro()
	t.Logf("\n%s", mi)
	within := func(name string, got, want, tol float64) {
		lo, hi := want*(1-tol), want*(1+tol)
		if float64(got) < lo || float64(got) > hi {
			t.Errorf("%s = %.0f, want within %.0f%% of %.0f", name, got, tol*100, want)
		}
	}
	within("TLB fill", float64(mi.TLBFill), float64(PaperMicro.TLBFill), 0.25)
	within("inter-SSMP read miss", float64(mi.ReadMiss), float64(PaperMicro.ReadMiss), 0.35)
	within("inter-SSMP write miss", float64(mi.WriteMiss), float64(PaperMicro.WriteMiss), 0.35)
	within("release 1 writer", float64(mi.Release1W), float64(PaperMicro.Release1W), 0.35)
	within("release 2 writers", float64(mi.Release2W), float64(PaperMicro.Release2W), 0.35)
	if mi.WriteMiss <= mi.ReadMiss {
		t.Errorf("write miss (%d) must cost more than read miss (%d)", mi.WriteMiss, mi.ReadMiss)
	}
	if mi.Release2W <= mi.Release1W {
		t.Errorf("2-writer release (%d) must cost more than 1-writer (%d)", mi.Release2W, mi.Release1W)
	}
}
