package harness

import (
	"math"

	"mgs/internal/sim"
	"mgs/internal/stats"
	"mgs/internal/vm"
)

// Ctx is the per-processor view an application body programs against:
// simulated shared-memory accesses, compute-cycle charging, and the
// hierarchical synchronization primitives. It is the MGS programming
// model — ordinary shared-memory code under release consistency.
type Ctx struct {
	m    *Machine
	Proc *sim.Proc
	// ID is this processor's number, 0..NProcs-1.
	ID int
	// NProcs is the machine's total processor count.
	NProcs int
}

// Machine returns the machine this context runs on.
func (c *Ctx) Machine() *Machine { return c.m }

// Clock returns the processor's virtual time.
func (c *Ctx) Clock() sim.Time { return c.Proc.Clock() }

// Compute charges n cycles of pure computation (User time).
func (c *Ctx) Compute(n sim.Time) {
	c.Proc.Advance(n)
	c.m.Stats.Charge(c.ID, stats.User, n)
}

// LoadF64 reads a shared float64 through the full memory system
// (translation, TLB, caches, MGS protocol).
func (c *Ctx) LoadF64(va vm.Addr) float64 {
	f, off := c.m.DSM.Access(c.Proc, va, false, false)
	return math.Float64frombits(f.Load64(off))
}

// StoreF64 writes a shared float64.
func (c *Ctx) StoreF64(va vm.Addr, v float64) {
	f, off := c.m.DSM.Access(c.Proc, va, true, false)
	f.Store64(off, math.Float64bits(v))
}

// LoadI64 reads a shared int64.
func (c *Ctx) LoadI64(va vm.Addr) int64 {
	f, off := c.m.DSM.Access(c.Proc, va, false, false)
	return int64(f.Load64(off))
}

// StoreI64 writes a shared int64.
func (c *Ctx) StoreI64(va vm.Addr, v int64) {
	f, off := c.m.DSM.Access(c.Proc, va, true, false)
	f.Store64(off, uint64(v))
}

// LoadPtr reads a shared 64-bit word with the costlier pointer-
// dereference translation sequence (paper §4.2.1).
func (c *Ctx) LoadPtr(va vm.Addr) uint64 {
	f, off := c.m.DSM.Access(c.Proc, va, false, true)
	return f.Load64(off)
}

// StorePtr writes a shared 64-bit word via pointer translation.
func (c *Ctx) StorePtr(va vm.Addr, v uint64) {
	f, off := c.m.DSM.Access(c.Proc, va, true, true)
	f.Store64(off, v)
}

// LoadF64Ptr reads a shared float64 via pointer translation.
func (c *Ctx) LoadF64Ptr(va vm.Addr) float64 {
	f, off := c.m.DSM.Access(c.Proc, va, false, true)
	return math.Float64frombits(f.Load64(off))
}

// StoreF64Ptr writes a shared float64 via pointer translation.
func (c *Ctx) StoreF64Ptr(va vm.Addr, v float64) {
	f, off := c.m.DSM.Access(c.Proc, va, true, true)
	f.Store64(off, math.Float64bits(v))
}

// LoadI64Ptr reads a shared int64 via pointer translation.
func (c *Ctx) LoadI64Ptr(va vm.Addr) int64 {
	f, off := c.m.DSM.Access(c.Proc, va, false, true)
	return int64(f.Load64(off))
}

// StoreI64Ptr writes a shared int64 via pointer translation.
func (c *Ctx) StoreI64Ptr(va vm.Addr, v int64) {
	f, off := c.m.DSM.Access(c.Proc, va, true, true)
	f.Store64(off, uint64(v))
}

// Barrier arrives at barrier id and waits for all processors.
func (c *Ctx) Barrier(id int) { c.m.Sync.Barrier(id).Arrive(c.Proc) }

// Acquire takes MGS distributed lock id.
func (c *Ctx) Acquire(id int) { c.m.Sync.Lock(id).Acquire(c.Proc) }

// Release flushes this processor's delayed update queue and releases
// lock id.
func (c *Ctx) Release(id int) { c.m.Sync.Lock(id).Release(c.Proc) }

// Fence drains the delayed update queue without a lock or barrier (an
// explicit release point).
func (c *Ctx) Fence() { c.m.DSM.ReleaseAll(c.Proc) }
