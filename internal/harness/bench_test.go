package harness

import (
	"testing"

	"mgs/internal/vm"
)

// homedAddr allocates two pages and returns an address on a page whose
// interleaved home is processor 0, so proc 0's accesses are SSMP-local
// after the first fault.
func homedAddr(m *Machine) vm.Addr {
	va := m.Alloc(2 * m.Cfg.PageSize)
	if int(m.DSM.Space().PageOf(va))%m.Cfg.P != 0 {
		va += vm.Addr(m.Cfg.PageSize)
	}
	return va
}

// BenchmarkAccessFastPath measures one simulated shared-memory load on
// the hit path — software TLB hit, hardware cache hit — through the full
// harness.Ctx → core.System.Access → cache.Domain stack. This is the
// instruction the simulator executes ~10⁷ times per second in a sweep;
// the fast-path invariant is 0 allocs/op.
func BenchmarkAccessFastPath(b *testing.B) {
	m := NewMachine(NewConfig(2, 1))
	va := homedAddr(m)
	b.ReportAllocs()
	if _, err := m.RunPer(func(i int) func(c *Ctx) {
		if i != 0 {
			return func(*Ctx) {}
		}
		return func(c *Ctx) {
			c.LoadI64(va) // fault, replicate, fill the TLB
			b.ResetTimer()
			for k := 0; k < b.N; k++ {
				c.LoadI64(va)
			}
			b.StopTimer()
		}
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAccessWritePath measures the store hit path (TLB write
// privilege held, line Modified in the local cache).
func BenchmarkAccessWritePath(b *testing.B) {
	m := NewMachine(NewConfig(2, 1))
	va := homedAddr(m)
	b.ReportAllocs()
	if _, err := m.RunPer(func(i int) func(c *Ctx) {
		if i != 0 {
			return func(*Ctx) {}
		}
		return func(c *Ctx) {
			c.StoreI64(va, 1)
			b.ResetTimer()
			for k := 0; k < b.N; k++ {
				c.StoreI64(va, int64(k))
			}
			b.StopTimer()
		}
	}); err != nil {
		b.Fatal(err)
	}
}
