package harness

import (
	"runtime"
	"sync"
	"sync/atomic"

	"mgs/internal/msg"
)

// SweepWorkers caps the number of simulations run concurrently by Sweep
// and RunIndexed. Zero (the default) means GOMAXPROCS; one forces
// sequential execution. Each sweep point is a self-contained Engine with
// no shared mutable state, so running points concurrently cannot change
// any point's simulated outcome — results are bit-identical to a
// sequential run at any worker count (the determinism tests in
// internal/exp enforce this).
var SweepWorkers = 0

// EngineWorkers is the default Config.EngineWorkers applied by
// NewConfig: the number of shard workers the event dispatcher may use
// inside one simulation. Zero or one (the default) keeps the sequential
// engine. Unlike SweepWorkers this parallelizes within a single run —
// results remain bit-identical at any setting (the Config.EngineWorkers
// doc lists the conditions under which a run falls back to sequential
// dispatch). The -engine-workers flag of the command-line tools sets
// this.
var EngineWorkers = 0

// DefaultTopology is the inter-SSMP topology NewConfig applies when no
// WithTopology option overrides it. Nil (the default) means the paper's
// uniform fixed-delay LAN. Topology specs are immutable; every machine
// sizes its own instance and owns its own contention state, so sharing
// the spec across sweep workers is safe. The -topology flag of the
// command-line tools sets this.
var DefaultTopology msg.Topology

// DefaultLockAlgo and DefaultBarrierAlgo are the synchronization
// algorithm names NewConfig applies when no WithLockAlgo /
// WithBarrierAlgo option overrides them. Empty (the default) means the
// native primitives — the two-level token lock and tree barrier. The
// -lock and -barrier flags of the command-line tools set these.
var (
	DefaultLockAlgo    string
	DefaultBarrierAlgo string
)

// workers resolves SweepWorkers against the job count.
func workers(n int) int {
	w := SweepWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// RunIndexed runs job(0) … job(n-1) across up to SweepWorkers
// goroutines and returns the per-index errors. Jobs are claimed from an
// atomic counter, so low indices start first; callers index their own
// result slices, so output order never depends on completion order.
// With one worker the jobs run inline on the calling goroutine.
func RunIndexed(n int, job func(i int) error) []error {
	errs := make([]error, n)
	w := workers(n)
	if w == 1 {
		for i := 0; i < n; i++ {
			errs[i] = job(i)
		}
		return errs
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() { //mgslint:allow nogoroutine -- the sweep worker pool: each worker runs whole single-threaded simulations; results land in caller-indexed slots, so completion order is invisible
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = job(i)
			}
		}()
	}
	wg.Wait()
	return errs
}
