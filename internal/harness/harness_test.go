package harness

import (
	"testing"

	"mgs/internal/stats"
	"mgs/internal/vm"
)

func testCfg(p, c int) Config {
	return NewConfig(p, c, WithInterSSMPDelay(500))
}

func TestCtxLoadStoreRoundTrips(t *testing.T) {
	m := NewMachine(testCfg(4, 2))
	va := m.Alloc(4096)
	_, err := m.Run(func(c *Ctx) {
		if c.ID == 0 {
			c.StoreF64(va, 3.25)
			c.StoreI64(va+8, -42)
			c.StoreF64Ptr(va+16, 1.5)
			c.StoreI64Ptr(va+24, 7)
			c.StorePtr(va+32, 0xdeadbeef)
			c.Fence()
		}
		c.Barrier(0)
		if c.ID == 3 { // other SSMP: full inter-SSMP fetch path
			if got := c.LoadF64(va); got != 3.25 {
				t.Errorf("LoadF64 = %v", got)
			}
			if got := c.LoadI64(va + 8); got != -42 {
				t.Errorf("LoadI64 = %v", got)
			}
			if got := c.LoadF64Ptr(va + 16); got != 1.5 {
				t.Errorf("LoadF64Ptr = %v", got)
			}
			if got := c.LoadI64Ptr(va + 24); got != 7 {
				t.Errorf("LoadI64Ptr = %v", got)
			}
			if got := c.LoadPtr(va + 32); got != 0xdeadbeef {
				t.Errorf("LoadPtr = %#x", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPtrTranslationCostsMore(t *testing.T) {
	// §4.2.1: pointer dereferences pay 24 cycles of translation versus
	// 18 for array references. Same access sequence, pointer variant
	// must finish strictly later.
	run := func(ptr bool) int64 {
		m := NewMachine(testCfg(1, 1))
		va := m.Alloc(4096)
		res, err := m.Run(func(c *Ctx) {
			for i := 0; i < 50; i++ {
				if ptr {
					c.StorePtr(va, uint64(i))
				} else {
					c.StoreI64(va, int64(i))
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return int64(res.Cycles)
	}
	arr, ptr := run(false), run(true)
	if ptr <= arr {
		t.Fatalf("pointer run %d cycles <= array run %d", ptr, arr)
	}
	// 6 extra cycles per access, plus the fault path's one retried
	// translation on the first touch.
	if d := ptr - arr; d < 50*6 || d > 50*6+12 {
		t.Fatalf("translation delta = %d, want ~%d", d, 50*6)
	}
}

func TestComputeChargesUserTime(t *testing.T) {
	m := NewMachine(testCfg(2, 2))
	res, err := m.Run(func(c *Ctx) {
		c.Compute(10_000)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Breakdown.Avg[stats.User] < 10_000 {
		t.Fatalf("User avg = %v, want >= 10000", res.Breakdown.Avg[stats.User])
	}
	if res.Cycles < 10_000 {
		t.Fatalf("Cycles = %v", res.Cycles)
	}
}

func TestBackdoorRoundTrip(t *testing.T) {
	m := NewMachine(testCfg(2, 2))
	va := m.Alloc(4096)
	m.SetF64(va, -0.5)
	m.SetI64(va+8, 1<<40)
	if got := m.GetF64(va); got != -0.5 {
		t.Fatalf("GetF64 = %v", got)
	}
	if got := m.GetI64(va + 8); got != 1<<40 {
		t.Fatalf("GetI64 = %v", got)
	}
}

func TestAllocPageAlignedAndDisjoint(t *testing.T) {
	m := NewMachine(testCfg(2, 2))
	a := m.Alloc(100)
	b := m.Alloc(100)
	ps := vm.Addr(m.Cfg.PageSize)
	if a%ps != 0 || b%ps != 0 {
		t.Fatalf("allocations not page aligned: %#x %#x", a, b)
	}
	if b < a+ps {
		t.Fatalf("page allocations overlap: %#x %#x", a, b)
	}
}

func TestAllocPackedSharesPages(t *testing.T) {
	m := NewMachine(testCfg(2, 2))
	a := m.AllocPacked(8, 8)
	b := m.AllocPacked(8, 8)
	if m.DSM.Space().PageOf(a) != m.DSM.Space().PageOf(b) {
		t.Fatalf("packed allocations on different pages: %#x %#x", a, b)
	}
	if b != a+8 {
		t.Fatalf("packed allocation not adjacent: %#x then %#x", a, b)
	}
}

func TestAllocHomedPlacesPages(t *testing.T) {
	m := NewMachine(testCfg(8, 2))
	n := 4 * m.Cfg.PageSize
	va := m.AllocHomed(n, func(page int) int { return page * 2 })
	sp := m.DSM.Space()
	for i := 0; i < 4; i++ {
		pg := sp.PageOf(va + vm.Addr(i*m.Cfg.PageSize))
		if home := sp.HomeProc(pg); home != i*2 {
			t.Fatalf("page %d homed at proc %d, want %d", i, home, i*2)
		}
	}
	// homeOf values beyond P wrap.
	va2 := m.AllocHomed(m.Cfg.PageSize, func(int) int { return 13 })
	if home := sp.HomeProc(sp.PageOf(va2)); home != 13%8 {
		t.Fatalf("wrapped home = %d, want %d", home, 13%8)
	}
}

func TestRunPerDistinctBodies(t *testing.T) {
	m := NewMachine(testCfg(4, 2))
	va := m.Alloc(4096)
	_, err := m.RunPer(func(i int) func(*Ctx) {
		return func(c *Ctx) {
			c.StoreI64(va+vm.Addr(c.ID*8), int64(100+c.ID))
			c.Fence()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if got := m.GetI64(va + vm.Addr(i*8)); got != int64(100+i) {
			t.Fatalf("proc %d slot = %d", i, got)
		}
	}
}

func TestMachineRunsOnce(t *testing.T) {
	m := NewMachine(testCfg(2, 2))
	if _, err := m.Run(func(*Ctx) {}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	m.Run(func(*Ctx) {})
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	m := NewMachine(testCfg(4, 2))
	after := make([]int64, 4)
	_, err := m.Run(func(c *Ctx) {
		if c.ID == 0 {
			c.Compute(200_000) // straggler
		}
		c.Barrier(0)
		after[c.ID] = int64(c.Clock())
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range after {
		if v < 200_000 {
			t.Fatalf("proc %d left barrier at %d, before straggler arrived", i, v)
		}
	}
}

func TestLockMutualExclusionThroughHarness(t *testing.T) {
	const per = 20
	m := NewMachine(testCfg(8, 2))
	va := m.Alloc(4096)
	_, err := m.Run(func(c *Ctx) {
		for i := 0; i < per; i++ {
			c.Acquire(3)
			c.StoreI64(va, c.LoadI64(va)+1)
			c.Release(3)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.GetI64(va); got != 8*per {
		t.Fatalf("locked counter = %d, want %d", got, 8*per)
	}
}

// TestAttributionCoversRuntime checks the accounting invariant behind
// Figures 6-10: every processor's busy cycles land in exactly one of
// the four categories, so the per-processor category sum must track the
// parallel runtime (within the slack of final-barrier skew).
func TestAttributionCoversRuntime(t *testing.T) {
	m := NewMachine(testCfg(8, 2))
	va := m.Alloc(8 * 4096)
	res, err := m.Run(func(c *Ctx) {
		for i := 0; i < 3; i++ {
			c.Compute(5000)
			c.Acquire(1)
			c.StoreI64(va, c.LoadI64(va)+1)
			c.Release(1)
			c.StoreF64(va+vm.Addr((1+c.ID)*4096), float64(i))
			c.Barrier(0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	total := res.Breakdown.AvgTotal()
	ratio := total / float64(res.Cycles)
	t.Logf("avg attributed %.0f of %d cycles (%.2f)", total, res.Cycles, ratio)
	// Protocol handler occupancy is charged to MGS even when it lands on
	// a processor whose wait is simultaneously charged to Lock/Barrier
	// (the paper's accounting does the same), so mild over-attribution
	// is expected; large deviation either way means lost or
	// double-counted cycles.
	if ratio < 0.85 || ratio > 1.30 {
		t.Fatalf("attribution ratio %.3f outside [0.85, 1.30]", ratio)
	}
	for _, cat := range []stats.Category{stats.User, stats.Lock, stats.Barrier, stats.MGS} {
		if res.Breakdown.Avg[cat] <= 0 {
			t.Fatalf("category %s empty; workload exercises all four", cat)
		}
	}
}

func TestPowersOfTwo(t *testing.T) {
	got := PowersOfTwo(16)
	want := []int{1, 2, 4, 8, 16}
	if len(got) != len(want) {
		t.Fatalf("PowersOfTwo(16) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PowersOfTwo(16) = %v", got)
		}
	}
	if one := PowersOfTwo(1); len(one) != 1 || one[0] != 1 {
		t.Fatalf("PowersOfTwo(1) = %v", one)
	}
}

func TestSweepPointsPerClusterSize(t *testing.T) {
	app := func() App { return sweepProbe{} }
	pts, err := Sweep(app, 4, PowersOfTwo(4), func(c int) Config { return testCfg(4, c) })
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d, want 3", len(pts))
	}
	for i, c := range []int{1, 2, 4} {
		if pts[i].C != c || pts[i].Res.Cycles == 0 {
			t.Fatalf("point %d = C%d/%d cycles", i, pts[i].C, pts[i].Res.Cycles)
		}
	}
}

// sweepProbe is a minimal App for sweep mechanics tests.
type sweepProbe struct{}

func (sweepProbe) Name() string          { return "probe" }
func (sweepProbe) Setup(m *Machine)      { m.Alloc(4096) }
func (sweepProbe) Body(c *Ctx)           { c.Compute(1000); c.Barrier(0) }
func (sweepProbe) Verify(*Machine) error { return nil }
