// Package harness assembles complete DSSMP machines from the substrate
// packages and runs applications and experiments on them. It is the
// packaging layer the cmd/ tools, benchmarks, and examples all share.
package harness

import (
	"fmt"
	"math"

	"mgs/internal/cache"
	"mgs/internal/core"
	"mgs/internal/fault"
	"mgs/internal/msg"
	"mgs/internal/msync"
	"mgs/internal/msync/algo"
	"mgs/internal/obs"
	"mgs/internal/sim"
	"mgs/internal/stats"
	"mgs/internal/vm"
)

// Config describes one DSSMP configuration.
type Config struct {
	P        int      // total processors
	C        int      // processors per SSMP (cluster size)
	PageSize int      // bytes
	TLBSize  int      // software TLB entries per processor
	Delay    sim.Time // fixed inter-SSMP message latency (LAN model)

	// Disabled substitutes null MGS calls (the paper's C = P runs):
	// plain software virtual memory, no software coherence.
	Disabled bool

	// EngineWorkers arms parallel event dispatch: the event heap shards
	// per SSMP and up to this many OS threads advance the shards inside
	// conservative lookahead windows of the inter-SSMP latency. Results
	// are bit-identical to the sequential engine for every worker count
	// (1 disarms and is the reference). Configurations the sharded
	// dispatcher cannot serve — tracing or profiling observers, lazy
	// release, home migration, the update protocol, jittered networks,
	// topologies reporting zero lookahead (mesh, fat-tree, tiered),
	// debug checks, a single SSMP — fall back to sequential dispatch
	// automatically.
	EngineWorkers int

	// Fault, when non-empty, interposes the deterministic fault-injecting
	// reliable transport on every inter-SSMP message (internal/fault,
	// msg.Network.AttachFault). An empty plan is the identity: the run is
	// bit-identical to one that never heard of faults.
	Fault fault.Plan

	// Obs, when non-nil, is the observability spine the machine reports
	// through: trace sinks see typed protocol/transport/sync events, the
	// metrics registry collects the run's counters, gauges, and
	// histograms, and (if profiling is enabled on the observer) every
	// simulated cycle is attributed to a (processor, component, object)
	// key. Nil keeps every emission path structurally detached; runs are
	// bit-identical either way.
	Obs *obs.Observer

	Protocol core.Costs
	Cache    cache.Costs
	CacheHW  cache.Params
	Msg      msg.Costs
	Sync     msync.Costs

	// LockAlgo and BarrierAlgo name the synchronization algorithms from
	// internal/msync/algo ("token", "ticket", "mcs", "tournament" /
	// "tree", "sense", "dissemination", "mcstree", "tournament"). Empty
	// or the default name keeps the native primitives — and the native
	// fast paths in the parallel dispatcher; any other algorithm forces
	// sequential event dispatch (its handlers share per-object state
	// across SSMP shards).
	LockAlgo    string
	BarrierAlgo string
}

// Option mutates a Config under construction (NewConfig).
type Option func(*Config)

// WithPageSize sets the virtual page size in bytes (power of two).
func WithPageSize(bytes int) Option { return func(c *Config) { c.PageSize = bytes } }

// WithTLBSize sets the per-processor software TLB capacity.
func WithTLBSize(entries int) Option { return func(c *Config) { c.TLBSize = entries } }

// WithInterSSMPDelay sets the fixed inter-SSMP message latency (the
// paper's emulated-LAN knob, Figure 9's x-axis).
func WithInterSSMPDelay(d sim.Time) Option { return func(c *Config) { c.Delay = d } }

// WithDisabled forces the software coherence layer off or on,
// overriding the c == P default.
func WithDisabled(disabled bool) Option { return func(c *Config) { c.Disabled = disabled } }

// WithFaultPlan attaches a deterministic fault-injection plan to the
// inter-SSMP transport.
func WithFaultPlan(p fault.Plan) Option { return func(c *Config) { c.Fault = p } }

// WithObserver attaches an observability spine to the machine.
func WithObserver(o *obs.Observer) Option { return func(c *Config) { c.Obs = o } }

// WithEngineWorkers sets the parallel event-dispatch worker count
// (Config.EngineWorkers); n <= 1 keeps the sequential dispatcher.
func WithEngineWorkers(n int) Option { return func(c *Config) { c.EngineWorkers = n } }

// WithTopology selects the inter-SSMP interconnect: msg.NewUniform()
// (the default, the paper's fixed-delay LAN), msg.NewMesh2D(),
// msg.NewFatTree(arity), or msg.NewTiered(siteSize). The spec is sized
// against the machine shape when the network is built.
func WithTopology(t msg.Topology) Option { return func(c *Config) { c.Msg.Topology = t } }

// WithLockAlgo selects the lock algorithm by name (algo.LockNames);
// "" or "token" keeps the native two-level token lock.
func WithLockAlgo(name string) Option { return func(c *Config) { c.LockAlgo = name } }

// WithBarrierAlgo selects the barrier algorithm by name
// (algo.BarrierNames); "" or "tree" keeps the native two-level tree
// barrier.
func WithBarrierAlgo(name string) Option { return func(c *Config) { c.BarrierAlgo = name } }

// WithInterMesh enables the contended 2D-mesh inter-SSMP network at the
// given per-hop latency.
//
// Deprecated: use WithTopology(msg.NewMesh2D()) and set
// Msg.InterPerHop, or rely on the InterDelay/4 default.
func WithInterMesh(perHop sim.Time) Option {
	return func(c *Config) {
		c.Msg.InterMesh = true
		c.Msg.InterPerHop = perHop
	}
}

// NewConfig returns the calibrated configuration for a P-processor
// machine with clusters of c processors and the paper's parameters —
// 1K-byte pages, a 64-entry software TLB, and a 1000-cycle inter-SSMP
// delay — then applies the options in order. When c == P the software
// layer is disabled, exactly as in the paper's 32-processor runs.
func NewConfig(p, c int, opts ...Option) Config {
	cfg := Config{
		P: p, C: c, PageSize: 1024, TLBSize: 64, Delay: 1000,
		Disabled:      c == p,
		EngineWorkers: EngineWorkers,
		Protocol:      core.DefaultCosts(),
		Cache: cache.Costs{
			Hit: 2, Local: 11, Remote: 38, TwoParty: 42,
			ThreeParty: 63, Software: 425, CleanPerLine: 40,
		},
		CacheHW: cache.DefaultParams(),
		Msg: msg.Costs{
			SendOverhead: 100, HandlerEntry: 500, PerHop: 2,
			BytesPerCycle: 1, InterDelay: 1000, InterOverhead: 800,
			Topology: DefaultTopology,
		},
		Sync:        msync.DefaultCosts(),
		LockAlgo:    DefaultLockAlgo,
		BarrierAlgo: DefaultBarrierAlgo,
	}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// DefaultConfig returns the calibrated configuration for a P-processor
// machine with clusters of c processors.
//
// Deprecated: use NewConfig, which takes functional options.
func DefaultConfig(p, c int) Config { return NewConfig(p, c) }

// Machine is one assembled DSSMP.
type Machine struct {
	Cfg   Config
	Eng   *sim.Engine
	Net   *msg.Network
	DSM   *core.System
	Sync  *msync.System
	Stats *stats.Collector
	Procs []*sim.Proc

	bodies []func(c *Ctx)
	ran    bool
}

// NewMachine assembles a machine. The configuration's Msg.InterDelay is
// overridden by Cfg.Delay so callers set the LAN latency in one place.
func NewMachine(cfg Config) *Machine {
	if cfg.P <= 0 || cfg.C <= 0 || cfg.P%cfg.C != 0 {
		panic(fmt.Sprintf("harness: bad machine shape P=%d C=%d", cfg.P, cfg.C))
	}
	cfg.Msg.InterDelay = cfg.Delay
	m := &Machine{Cfg: cfg, Eng: sim.NewEngine(), bodies: make([]func(*Ctx), cfg.P)}
	for i := 0; i < cfg.P; i++ {
		i := i
		m.Procs = append(m.Procs, m.Eng.NewProc(i, 0, func(p *sim.Proc) {
			if m.bodies[i] != nil {
				m.bodies[i](&Ctx{m: m, Proc: p, ID: i, NProcs: cfg.P})
			}
		}))
	}
	m.Net = msg.NewNetwork(m.Eng, m.Procs, cfg.C, cfg.Msg)
	m.Stats = stats.NewCollector(cfg.P)
	st := m.Stats
	// Attach the observability spine before the subsystems construct, so
	// their gauges and histograms register on the observer's registry
	// and the profiler (if armed) sees every charge from cycle zero.
	st.Use(cfg.Obs)
	m.Net.OnHandler = func(proc int, cyc sim.Time) { st.Charge(proc, stats.MGS, cyc) }
	m.Net.AttachFault(cfg.Fault, &st.Fault)
	m.Net.Obs = cfg.Obs
	space := vm.NewSpace(cfg.PageSize, cfg.P)
	m.DSM = core.New(m.Eng, m.Net, space, st, m.Procs, core.Config{
		NProcs: cfg.P, ClusterSize: cfg.C, PageSize: cfg.PageSize,
		TLBSize: cfg.TLBSize, Costs: cfg.Protocol,
		CacheParams: cfg.CacheHW, CacheCosts: cfg.Cache,
		Disabled: cfg.Disabled,
	})
	m.DSM.Obs = cfg.Obs
	m.Sync = msync.New(m.Eng, m.DSM, m.Net, st, m.Procs, cfg.Sync)
	m.Sync.Obs = cfg.Obs
	la, err := algo.LockByName(cfg.LockAlgo)
	if err != nil {
		panic("harness: " + err.Error())
	}
	ba, err := algo.BarrierByName(cfg.BarrierAlgo)
	if err != nil {
		panic("harness: " + err.Error())
	}
	if la != nil || ba != nil {
		m.Sync.SetAlgos(la, ba)
	}
	return m
}

// Alloc reserves shared virtual memory (page aligned).
func (m *Machine) Alloc(bytes int) vm.Addr { return m.DSM.Space().AllocPages(bytes) }

// AllocPacked reserves shared memory with the given alignment, packed
// against the previous allocation (so small objects share pages — the
// false-sharing layout).
func (m *Machine) AllocPacked(bytes, align int) vm.Addr {
	return m.DSM.Space().Alloc(bytes, align)
}

// AllocHomed reserves a page-aligned region whose pages are explicitly
// placed: homeOf(i) names the processor whose memory holds the region's
// i-th page. This is the distributed-array layout of the paper's
// applications (each block lives in its owner's memory).
func (m *Machine) AllocHomed(bytes int, homeOf func(page int) int) vm.Addr {
	sp := m.DSM.Space()
	base := sp.AllocPages(bytes)
	npages := (bytes + m.Cfg.PageSize - 1) / m.Cfg.PageSize
	for i := 0; i < npages; i++ {
		sp.SetHome(sp.PageOf(base)+vm.Page(i), homeOf(i)%m.Cfg.P)
	}
	return base
}

// SetF64 initializes a shared float64 without simulated cost (setup).
func (m *Machine) SetF64(va vm.Addr, v float64) {
	m.DSM.BackdoorStore64(va, math.Float64bits(v))
}

// GetF64 reads a shared float64 without simulated cost (verification).
func (m *Machine) GetF64(va vm.Addr) float64 {
	return math.Float64frombits(m.DSM.BackdoorLoad64(va))
}

// SetI64 initializes a shared int64 without simulated cost.
func (m *Machine) SetI64(va vm.Addr, v int64) {
	m.DSM.BackdoorStore64(va, uint64(v))
}

// GetI64 reads a shared int64 without simulated cost.
func (m *Machine) GetI64(va vm.Addr) int64 {
	return int64(m.DSM.BackdoorLoad64(va))
}

// Result summarizes one run.
type Result struct {
	// Cycles is the parallel execution time: the final virtual time.
	Cycles sim.Time
	// Breakdown is the per-category cycle attribution (Figures 6–10).
	Breakdown stats.Breakdown
	// LockHits/LockTotal aggregate MGS lock behaviour (Figure 11).
	LockHits, LockTotal int64
	// Message traffic.
	InterMsgs, InterBytes, IntraMsgs int64
	// LinkWait is the cycles messages spent queued behind busy links on
	// contended topologies (0 under the default Uniform LAN).
	LinkWait int64
	// Dir is the Server-side directory footprint at end of run
	// (core.System.DirectoryStats): how many pages hold server state, how
	// many sparse per-SSMP copy records exist, and how many directories
	// collapsed to the coarse cluster vector. Deterministic, so it rides
	// the bit-identity comparisons like every other field.
	Dir core.DirectoryStats
	// Counters are the protocol event counters, sorted.
	Counters []string
	// Fault is the fault-injection transport's accounting (all zeros on
	// fault-free runs).
	Fault stats.Fault
}

// Run executes body on every processor and collects the result. A
// machine runs once.
func (m *Machine) Run(body func(c *Ctx)) (Result, error) {
	return m.RunPer(func(i int) func(c *Ctx) { return body })
}

// RunPer executes bodyFor(i) on processor i.
func (m *Machine) RunPer(bodyFor func(i int) func(c *Ctx)) (Result, error) {
	if m.ran {
		panic("harness: machine already ran")
	}
	m.ran = true
	for i := range m.bodies {
		m.bodies[i] = bodyFor(i)
	}
	if w := m.Cfg.EngineWorkers; w > 1 && m.parallelOK() {
		m.Eng.Parallelize(m.Cfg.C, w, m.Net.Lookahead())
	}
	if err := m.Eng.Run(); err != nil {
		return Result{}, err
	}
	hits, total := m.Sync.LockStats()
	return Result{
		Cycles:     m.lastClock(),
		Breakdown:  m.Stats.Breakdown(),
		LockHits:   hits,
		LockTotal:  total,
		InterMsgs:  m.Net.Counters.InterMsgs,
		InterBytes: m.Net.Counters.InterBytes,
		IntraMsgs:  m.Net.Counters.IntraMsgs,
		LinkWait:   m.Net.Counters.LinkWaitCycles,
		Dir:        m.DSM.DirectoryStats(),
		Counters:   m.Stats.Counters(),
		Fault:      m.Stats.Fault,
	}, nil
}

// parallelOK reports whether this configuration is served by the
// sharded parallel dispatcher. The gate is conservative: every feature
// whose implementation reaches across SSMP boundaries outside the
// message layer (or renders events to a strictly ordered trace) forces
// the sequential dispatcher. The engine itself adds its own checks
// (enough shards, no chooser, all events pinned); ineligible runs are
// bit-identical by construction, so the gate is a pure performance
// decision, never a correctness one.
func (m *Machine) parallelOK() bool {
	cfg := &m.Cfg
	switch {
	case cfg.Disabled:
		// Null-MGS runs map pages via a single shared space with no
		// inter-SSMP message latency to provide lookahead.
		return false
	case cfg.Obs.Tracing():
		// Trace sinks receive events in global dispatch order.
		return false
	case cfg.Obs.Profiler() != nil:
		// The profiler's attribution map is shared across processors.
		return false
	case cfg.Protocol.LazyRelease:
		// Acquire-side validation reads home versions directly.
		return false
	case cfg.Protocol.MigrateAfter > 0:
		// Home migration moves server records between SSMPs.
		return false
	case cfg.Protocol.UpdateProtocol:
		// Update rounds refresh remote copies from the home frame.
		return false
	case cfg.Msg.Jitter > 0:
		// Jitter draws from one shared deterministic stream.
		return false
	case m.DSM.DebugChecks:
		return false
	case !algo.IsDefaultLock(cfg.LockAlgo), !algo.IsDefaultBarrier(cfg.BarrierAlgo):
		// Zoo algorithms keep per-object state (queues, brackets, round
		// counters) that home-side handlers on different SSMPs mutate;
		// only the native primitives are shard-annotated.
		return false
	}
	// The topology has the final word: contended topologies (Mesh2D,
	// FatTree, Tiered) report zero lookahead — their link occupancy is
	// shared state with no fixed latency floor — and provably fall back
	// to sequential dispatch here. Uniform grants its latency bound.
	return m.Net.Lookahead() > 0
}

func (m *Machine) lastClock() sim.Time {
	var t sim.Time
	for _, p := range m.Procs {
		if p.Clock() > t {
			t = p.Clock()
		}
	}
	return t
}
