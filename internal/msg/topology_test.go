package msg

import (
	"testing"

	"mgs/internal/sim"
)

// sizedTopos resolves every named topology against one machine shape.
func sizedTopos(t *testing.T, nssmp int) map[string]Topology {
	t.Helper()
	c := Costs{SendOverhead: 10, HandlerEntry: 50, BytesPerCycle: 2, InterOverhead: 100, InterDelay: 800}
	out := make(map[string]Topology)
	for _, name := range TopologyNames() {
		spec, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = spec.(sizer).sized(nssmp, c)
	}
	return out
}

func TestByNameRejectsUnknown(t *testing.T) {
	if _, err := ByName("hypercube"); err == nil {
		t.Fatal("ByName accepted an unknown topology")
	}
	topo, err := ByName("")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := topo.(*Uniform); !ok {
		t.Fatalf("empty name resolved to %T, want *Uniform", topo)
	}
}

// TestRouteHopSymmetry: every topology routes a->b and b->a over the
// same number of links, and self-routes are empty.
func TestRouteHopSymmetry(t *testing.T) {
	const nssmp = 32
	for name, topo := range sizedTopos(t, nssmp) {
		for a := 0; a < nssmp; a++ {
			if topo.Route(a, a) != nil {
				t.Fatalf("%s: self-route of %d not nil", name, a)
			}
			for b := a + 1; b < nssmp; b++ {
				fw, bw := topo.Route(a, b), topo.Route(b, a)
				if len(fw) == 0 {
					t.Fatalf("%s: empty route %d->%d", name, a, b)
				}
				if len(fw) != len(bw) {
					t.Fatalf("%s: asymmetric hop count %d->%d: %d vs %d", name, a, b, len(fw), len(bw))
				}
				if fw[0].From != a || fw[len(fw)-1].To != b {
					t.Fatalf("%s: route %d->%d starts at %d, ends at %d", name, a, b, fw[0].From, fw[len(fw)-1].To)
				}
			}
		}
	}
}

// TestArrivalTriangleInequality: on a fresh (uncontended) network, the
// direct path never loses to a relayed one — routing is shortest-path.
func TestArrivalTriangleInequality(t *testing.T) {
	const nssmp = 16
	for name, topo := range sizedTopos(t, nssmp) {
		for a := 0; a < nssmp; a++ {
			for b := 0; b < nssmp; b++ {
				for c := 0; c < nssmp; c++ {
					if a == b || b == c || a == c {
						continue
					}
					occ1 := newOccupancy(new(int64))
					direct := topo.Arrive(&occ1, a, c, 0, 64)
					occ2 := newOccupancy(new(int64))
					viaB := topo.Arrive(&occ2, b, c, topo.Arrive(&occ2, a, b, 0, 64), 64)
					if direct > viaB {
						t.Fatalf("%s: direct %d->%d arrives at %d, relay via %d at %d", name, a, c, direct, b, viaB)
					}
				}
			}
		}
	}
}

// TestLookaheadContract pins the parallel-engine contract: the
// uniform LAN grants its latency floor; every contended topology
// reports 0, forcing the provable sequential fallback.
func TestLookaheadContract(t *testing.T) {
	topos := sizedTopos(t, 16)
	if got := topos["uniform"].Lookahead(); got != 100+800 {
		t.Fatalf("uniform lookahead = %d, want 900 (InterOverhead+InterDelay)", got)
	}
	for _, name := range []string{"mesh", "fattree", "tiered"} {
		if got := topos[name].Lookahead(); got != 0 {
			t.Fatalf("%s lookahead = %d, want 0 (contended topologies must force sequential dispatch)", name, got)
		}
	}
}

func TestDescribeNames(t *testing.T) {
	topos := sizedTopos(t, 32)
	want := map[string]string{
		"uniform": "uniform(delay=800)",
		"mesh":    "mesh2d(6x6,perhop=200)",
		"fattree": "fattree(arity=4,leaves=32,levels=3)",
		"tiered":  "tiered(sites=4,site=8,wan=8000,wanbpc=1)",
	}
	for name, d := range want {
		if got := topos[name].Describe(); got != d {
			t.Fatalf("%s.Describe() = %q, want %q", name, got, d)
		}
	}
}

// TestContentionDeterminism replays one message schedule through two
// independent Occupancy instances per topology: arrivals and the
// accumulated link-wait counter must match exactly. This is the
// property that keeps contended runs bit-identical no matter how many
// sweep workers share the (immutable) topology spec.
func TestContentionDeterminism(t *testing.T) {
	const nssmp = 16
	type msgSpec struct {
		a, b   int
		depart sim.Time
		bytes  int
	}
	var sched []msgSpec
	// A deterministic all-pairs burst with staggered departures.
	for i := 0; i < nssmp; i++ {
		for j := 0; j < nssmp; j++ {
			if i != j {
				sched = append(sched, msgSpec{i, j, sim.Time((i*7 + j*3) % 50), 256})
			}
		}
	}
	for name, topo := range sizedTopos(t, nssmp) {
		run := func() ([]sim.Time, int64) {
			var wait int64
			occ := newOccupancy(&wait)
			out := make([]sim.Time, len(sched))
			for i, m := range sched {
				out[i] = topo.Arrive(&occ, m.a, m.b, m.depart, m.bytes)
			}
			return out, wait
		}
		arr1, wait1 := run()
		arr2, wait2 := run()
		if wait1 != wait2 {
			t.Fatalf("%s: link-wait differs across replays: %d vs %d", name, wait1, wait2)
		}
		for i := range arr1 {
			if arr1[i] != arr2[i] {
				t.Fatalf("%s: message %d arrival differs: %d vs %d", name, i, arr1[i], arr2[i])
			}
		}
		if name != "uniform" && wait1 == 0 {
			t.Fatalf("%s: all-pairs burst saw no link contention", name)
		}
		if name == "uniform" && wait1 != 0 {
			t.Fatalf("uniform: contention charged on the uncontended LAN (wait=%d)", wait1)
		}
	}
}

// TestTieredWANSlowerThanLAN: the whole point of the tiered topology is
// that crossing sites costs an order of magnitude more than staying in
// one.
func TestTieredWANSlowerThanLAN(t *testing.T) {
	topo := sizedTopos(t, 32)["tiered"]
	occ := newOccupancy(new(int64))
	sameSite := topo.Arrive(&occ, 0, 1, 0, 64) // site 0
	occ2 := newOccupancy(new(int64))
	crossSite := topo.Arrive(&occ2, 0, 9, 0, 64) // site 0 -> site 1
	if crossSite < 5*sameSite {
		t.Fatalf("cross-site arrival %d not meaningfully slower than same-site %d", crossSite, sameSite)
	}
}

// TestFatTreeBandwidthFattens: the serialization charge of a root-level
// link must be smaller than a leaf link's for the same payload.
func TestFatTreeBandwidthFattens(t *testing.T) {
	ft := sizedTopos(t, 64)["fattree"].(*FatTree)
	route := ft.Route(0, 63) // crosses the root
	leaf, root := route[0], route[len(route)/2]
	if root.BytesPerCycle <= leaf.BytesPerCycle {
		t.Fatalf("root bpc %d not fatter than leaf bpc %d", root.BytesPerCycle, leaf.BytesPerCycle)
	}
}
