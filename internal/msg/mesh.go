package msg

import "mgs/internal/sim"

// Inter-SSMP mesh topology (extension).
//
// MGS's evaluation emulated the inter-SSMP network as a uniform
// fixed-delay LAN with no contention (§4.2.3) — that remains this
// package's default. Setting Costs.InterMesh instead arranges the SSMPs
// in a near-square 2D mesh, routes every inter-SSMP message with
// dimension-ordered (X-then-Y) routing, and models deterministic
// store-and-forward contention: each directed link serializes the
// messages that cross it at the configured DMA bandwidth. This answers
// a question the paper leaves open — how sensitive the multigrain
// results are to non-uniform, contended inter-SSMP latency — and backs
// the `mesh` ablation in cmd/mgs-sweep.

// link identifies one directed mesh link by its endpoint SSMP numbers.
type link struct{ from, to int }

// interMeshW returns the width of the inter-SSMP mesh (smallest square
// that holds all SSMPs).
func (n *Network) interMeshW() int {
	ns := (n.nprocs + n.csize - 1) / n.csize
	w := 1
	for w*w < ns {
		w++
	}
	return w
}

// interRoute returns the directed links a message visits travelling
// from SSMP a to SSMP b under X-then-Y dimension-ordered routing.
func (n *Network) interRoute(a, b int) []link {
	w := n.interMeshW()
	ax, ay := a%w, a/w
	bx, by := b%w, b/w
	var route []link
	at := func(x, y int) int { return y*w + x }
	cur := a
	for ax != bx {
		step := 1
		if bx < ax {
			step = -1
		}
		ax += step
		next := at(ax, ay)
		route = append(route, link{cur, next})
		cur = next
	}
	for ay != by {
		step := 1
		if by < ay {
			step = -1
		}
		ay += step
		next := at(ax, ay)
		route = append(route, link{cur, next})
		cur = next
	}
	return route
}

// interHops returns the uncontended hop count between two SSMPs.
func (n *Network) interHops(a, b int) sim.Time {
	w := n.interMeshW()
	dx := a%w - b%w
	dy := a/w - b/w
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return sim.Time(dx + dy)
}

// meshLatency is the uncontended inter-SSMP mesh latency (used by
// Latency for estimates; Send uses the stateful contended route).
func (n *Network) meshLatency(from, to, bytes int) sim.Time {
	hops := n.interHops(n.SSMPOf(from), n.SSMPOf(to))
	return n.costs.InterOverhead + hops*n.costs.InterPerHop + n.XferCycles(bytes)
}

// meshArrive walks the message through its route, queueing behind
// earlier traffic on each directed link, and returns the arrival time
// at the destination SSMP. Each link is occupied for the message's
// serialization time (store-and-forward), so two messages crossing the
// same link back-to-back see each other.
func (n *Network) meshArrive(from, to int, depart sim.Time, bytes int) sim.Time {
	a, b := n.SSMPOf(from), n.SSMPOf(to)
	t := depart + n.costs.InterOverhead
	if a == b {
		return t
	}
	xfer := n.XferCycles(bytes)
	if xfer < 1 {
		xfer = 1
	}
	for _, l := range n.interRoute(a, b) {
		if busy := n.linkBusy[l]; busy > t {
			n.Counters.LinkWaitCycles += int64(busy - t)
			t = busy
		}
		n.linkBusy[l] = t + xfer
		t += n.costs.InterPerHop + xfer
	}
	return t
}
