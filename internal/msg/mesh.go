package msg

import (
	"fmt"

	"mgs/internal/sim"
)

// Mesh2D arranges the SSMPs in a near-square 2D mesh with
// dimension-ordered (X-then-Y) routing and deterministic
// store-and-forward contention: each directed link serializes the
// messages that cross it at the configured DMA bandwidth. This answers
// a question the paper leaves open — how sensitive the multigrain
// results are to non-uniform, contended inter-SSMP latency — and backs
// the `mesh` ablation in cmd/mgs-sweep. It is the topology the
// deprecated Costs.InterMesh boolean selects.
type Mesh2D struct {
	w      int // mesh width (smallest square holding all SSMPs)
	perHop sim.Time
	bpc    int
	nssmp  int
}

// NewMesh2D returns the 2D-mesh spec. The per-hop latency resolves to
// Costs.InterPerHop, or InterDelay/4 when unset.
func NewMesh2D() *Mesh2D { return &Mesh2D{} }

func (m *Mesh2D) sized(nssmp int, c Costs) Topology {
	w := 1
	for w*w < nssmp {
		w++
	}
	perHop := c.InterPerHop
	if perHop <= 0 {
		perHop = c.InterDelay / 4
	}
	bpc := c.BytesPerCycle
	if bpc <= 0 {
		bpc = 1
	}
	return &Mesh2D{w: w, perHop: perHop, bpc: bpc, nssmp: nssmp}
}

// Route returns the directed links a message visits travelling from
// SSMP a to SSMP b under X-then-Y dimension-ordered routing.
func (m *Mesh2D) Route(a, b int) []Link {
	if a == b {
		return nil
	}
	w := m.w
	ax, ay := a%w, a/w
	bx, by := b%w, b/w
	var route []Link
	at := func(x, y int) int { return y*w + x }
	mk := func(from, to int) Link {
		return Link{From: from, To: to, Latency: m.perHop, BytesPerCycle: m.bpc}
	}
	cur := a
	for ax != bx {
		step := 1
		if bx < ax {
			step = -1
		}
		ax += step
		next := at(ax, ay)
		route = append(route, mk(cur, next))
		cur = next
	}
	for ay != by {
		step := 1
		if by < ay {
			step = -1
		}
		ay += step
		next := at(ax, ay)
		route = append(route, mk(cur, next))
		cur = next
	}
	return route
}

// Arrive walks the message through its route, queueing behind earlier
// traffic on each directed link (store-and-forward), so two messages
// crossing the same link back-to-back see each other.
func (m *Mesh2D) Arrive(occ *Occupancy, a, b int, depart sim.Time, bytes int) sim.Time {
	if a == b {
		return depart
	}
	return crossRoute(occ, m.Route(a, b), depart, bytes)
}

// Lookahead is 0: a contended mesh latency has no fixed lower bound the
// engine can exploit, so the parallel dispatcher must fall back.
func (m *Mesh2D) Lookahead() sim.Time { return 0 }

func (m *Mesh2D) Describe() string {
	return fmt.Sprintf("mesh2d(%dx%d,perhop=%d)", m.w, m.w, m.perHop)
}
