package msg

import (
	"testing"

	"mgs/internal/sim"
)

func testCosts() Costs {
	return Costs{SendOverhead: 10, HandlerEntry: 50, PerHop: 2, BytesPerCycle: 2, InterDelay: 1000, InterOverhead: 100}
}

// build makes a 2-SSMP × 4-proc machine whose procs park immediately so
// handlers can run against them.
func build(t *testing.T) (*sim.Engine, *Network, []*sim.Proc) {
	t.Helper()
	eng := sim.NewEngine()
	procs := make([]*sim.Proc, 8)
	for i := range procs {
		procs[i] = eng.NewProc(i, 0, func(p *sim.Proc) { p.Park() })
	}
	n := NewNetwork(eng, procs, 4, testCosts())
	return eng, n, procs
}

func finish(t *testing.T, eng *sim.Engine, procs []*sim.Proc, at sim.Time) {
	t.Helper()
	eng.At(at, func() {
		for _, p := range procs {
			p.Wake(at)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestIntraLatencyAndHandler(t *testing.T) {
	eng, n, procs := build(t)
	var done sim.Time
	// proc 0 -> proc 1: 1 hop × 2 + 0 xfer; arrive = 0+10+2 = 12;
	// handler = 50; done = 62.
	n.Send(0, 1, 0, 0, 0, func(at sim.Time) { done = at })
	finish(t, eng, procs, 10000)
	if done != 62 {
		t.Fatalf("handler done at %d, want 62", done)
	}
	if n.Counters.IntraMsgs != 1 || n.Counters.InterMsgs != 0 {
		t.Fatalf("counters = %+v", n.Counters)
	}
}

func TestInterSSMPDelayApplied(t *testing.T) {
	eng, n, procs := build(t)
	var done sim.Time
	// proc 0 -> proc 4 (other SSMP), 1024 bytes: arrive = 0 + 10 +
	// (100 + 1000 + 512) = 1622; done = 1672.
	n.Send(0, 4, 0, 1024, 0, func(at sim.Time) { done = at })
	finish(t, eng, procs, 10000)
	if done != 1672 {
		t.Fatalf("handler done at %d, want 1672", done)
	}
	if n.Counters.InterBytes != 1024 {
		t.Fatalf("InterBytes = %d", n.Counters.InterBytes)
	}
}

func TestHandlersSerializeOnDestination(t *testing.T) {
	eng, n, procs := build(t)
	var d1, d2 sim.Time
	n.Send(0, 1, 0, 0, 0, func(at sim.Time) { d1 = at })
	n.Send(2, 1, 0, 0, 0, func(at sim.Time) { d2 = at })
	finish(t, eng, procs, 10000)
	// Both arrive near t=12/14; the second must queue behind the first.
	if d2 < d1+50 {
		t.Fatalf("handlers overlapped: d1=%d d2=%d", d1, d2)
	}
}

func TestHandlerChargesMGSViaCallback(t *testing.T) {
	eng, n, procs := build(t)
	charged := map[int]sim.Time{}
	n.OnHandler = func(proc int, cycles sim.Time) { charged[proc] += cycles }
	n.Send(0, 2, 0, 0, 25, func(sim.Time) {})
	finish(t, eng, procs, 10000)
	if charged[2] != 75 {
		t.Fatalf("proc 2 charged %d, want 75 (50 entry + 25 extra)", charged[2])
	}
	_ = procs
}

func TestExtend(t *testing.T) {
	eng, n, procs := build(t)
	var seq []sim.Time
	n.Send(0, 1, 0, 0, 0, func(at sim.Time) {
		seq = append(seq, at)
		end := n.Extend(1, at, 100)
		seq = append(seq, end)
	})
	finish(t, eng, procs, 10000)
	if len(seq) != 2 || seq[1] != seq[0]+100 {
		t.Fatalf("Extend sequence = %v", seq)
	}
}

func TestHopsSymmetricAndZeroSelf(t *testing.T) {
	eng := sim.NewEngine()
	procs := make([]*sim.Proc, 16)
	for i := range procs {
		procs[i] = eng.NewProc(i, 0, func(p *sim.Proc) {})
	}
	n := NewNetwork(eng, procs, 16, testCosts())
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 16; a++ {
		if n.hops(a, a) != 0 {
			t.Fatalf("hops(%d,%d) != 0", a, a)
		}
		for b := 0; b < 16; b++ {
			if n.hops(a, b) != n.hops(b, a) {
				t.Fatalf("hops not symmetric for %d,%d", a, b)
			}
		}
	}
	// Corners of a 4x4 mesh are 6 hops apart.
	if n.hops(0, 15) != 6 {
		t.Fatalf("hops(0,15) = %d, want 6", n.hops(0, 15))
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	run := func() []sim.Time {
		eng := sim.NewEngine()
		procs := make([]*sim.Proc, 2)
		for i := range procs {
			procs[i] = eng.NewProc(i, 0, func(p *sim.Proc) { p.Park() })
		}
		costs := testCosts()
		costs.Jitter = 500
		costs.JitterSeed = 7
		n := NewNetwork(eng, procs, 1, costs)
		var arrivals []sim.Time
		for i := 0; i < 20; i++ {
			n.Send(0, 1, 0, 0, 0, func(at sim.Time) { arrivals = append(arrivals, at) })
		}
		eng.At(1_000_000, func() {
			for _, p := range procs {
				p.Wake(1_000_000)
			}
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return arrivals
	}
	a, b := run(), run()
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("lost messages: %d/%d", len(a), len(b))
	}
	varies := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter not deterministic at %d: %d vs %d", i, a[i], b[i])
		}
		if i > 0 && a[i] != a[0] {
			varies = true
		}
	}
	if !varies {
		t.Fatal("jitter produced identical delays for all messages")
	}
}
