package msg

import (
	"testing"

	"mgs/internal/fault"
	"mgs/internal/obs"
	"mgs/internal/sim"
	"mgs/internal/stats"
)

// buildFaulty is build() with a fault plan attached.
func buildFaulty(t *testing.T, plan fault.Plan) (*sim.Engine, *Network, []*sim.Proc, *stats.Fault) {
	t.Helper()
	eng, n, procs := build(t)
	var fs stats.Fault
	n.AttachFault(plan, &fs)
	return eng, n, procs, &fs
}

// Under heavy loss every logical message must still be delivered
// exactly once, in bounded attempts.
func TestReliableDeliversExactlyOnceUnderLoss(t *testing.T) {
	plan := fault.Plan{Seed: 3, DropBP: 3000, DupBP: 1000, DelayBP: 2000, MaxDelay: 500}
	eng, n, _, fs := buildFaulty(t, plan)
	const N = 200
	got := make([]int, N)
	for i := 0; i < N; i++ {
		i := i
		n.Send(0, 4, 0, 64, 0, func(sim.Time) { got[i]++ })
	}
	// Keep procs parked long enough for every retransmission to land.
	eng.At(50_000_000, func() {
		for _, p := range n.procs {
			p.Wake(50_000_000)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i, c := range got {
		if c != 1 {
			t.Fatalf("message %d ran its handler %d times, want exactly 1", i, c)
		}
	}
	if fs.Dropped == 0 || fs.Retransmits == 0 || fs.Timeouts == 0 {
		t.Fatalf("plan injected nothing: %s", fs)
	}
}

// Duplicated attempts must be suppressed by the sequence window, not
// double-dispatch the handler.
func TestReliableSuppressesDuplicates(t *testing.T) {
	// Dup-only plan: nothing lost, so every duplicate must be caught.
	plan := fault.Plan{Seed: 11, DupBP: 5000, MaxDelay: 300}
	eng, n, _, fs := buildFaulty(t, plan)
	const N = 100
	runs := 0
	for i := 0; i < N; i++ {
		n.Send(1, 5, 0, 8, 0, func(sim.Time) { runs++ })
	}
	eng.At(10_000_000, func() {
		for _, p := range n.procs {
			p.Wake(10_000_000)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if runs != N {
		t.Fatalf("%d handler runs, want %d", runs, N)
	}
	if fs.Duplicated == 0 {
		t.Fatal("plan duplicated nothing")
	}
	// Nothing is lost here, so every extra copy — duplicates plus any
	// spurious retransmissions — must have been suppressed.
	if fs.DupSuppressed != fs.Duplicated+fs.Retransmits {
		t.Fatalf("suppression accounting off: %s", fs)
	}
}

// Intra-SSMP messages bypass the fault layer entirely.
func TestReliableLeavesIntraSSMPAlone(t *testing.T) {
	plan := fault.Plan{Seed: 5, DropBP: 9000}
	eng, n, procs, fs := buildFaulty(t, plan)
	var done sim.Time
	n.Send(0, 1, 0, 0, 0, func(at sim.Time) { done = at })
	finish(t, eng, procs, 10000)
	if done != 62 {
		t.Fatalf("intra-SSMP handler done at %d, want 62 (the fault-free time)", done)
	}
	if fs.Messages != 0 {
		t.Fatalf("intra-SSMP message entered the fault layer: %s", fs)
	}
}

// An empty plan must be the identity: AttachFault detaches and the wire
// timing is bit-identical to a Network with no fault layer.
func TestAttachEmptyPlanIsIdentity(t *testing.T) {
	run := func(attach bool) []sim.Time {
		eng, n, procs := build(t)
		if attach {
			var fs stats.Fault
			n.AttachFault(fault.Plan{Seed: 123}, &fs)
		}
		var arrivals []sim.Time
		for i := 0; i < 10; i++ {
			n.Send(0, 4, sim.Time(i*100), 256, 0, func(at sim.Time) { arrivals = append(arrivals, at) })
		}
		finish(t, eng, procs, 1_000_000)
		return arrivals
	}
	plain, attached := run(false), run(true)
	for i := range plain {
		if plain[i] != attached[i] {
			t.Fatalf("empty plan changed timing at %d: %d vs %d", i, plain[i], attached[i])
		}
	}
}

// The whole transport must be deterministic: identical (plan, traffic)
// gives identical delivery times, counters, and trace streams.
func TestReliableDeterministic(t *testing.T) {
	run := func() ([]sim.Time, stats.Fault, []string) {
		eng, n, _, fs := buildFaulty(t, fault.Plan{Seed: 9, DropBP: 2000, DupBP: 500, DelayBP: 1500, MaxDelay: 700})
		var traces []string
		n.Obs = obs.New().AddSink(obs.FuncSink(func(e obs.Event) { traces = append(traces, e.String()) }))
		var arrivals []sim.Time
		for i := 0; i < 50; i++ {
			n.Send(2, 6, sim.Time(i*37), 128, 0, func(at sim.Time) { arrivals = append(arrivals, at) })
		}
		eng.At(20_000_000, func() {
			for _, p := range n.procs {
				p.Wake(20_000_000)
			}
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return arrivals, *fs, traces
	}
	a1, f1, t1 := run()
	a2, f2, t2 := run()
	if len(a1) != 50 || len(a2) != 50 {
		t.Fatalf("lost messages: %d/%d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("arrival %d differs: %d vs %d", i, a1[i], a2[i])
		}
	}
	if f1 != f2 {
		t.Fatalf("fault counters differ:\n%s\n%s", f1, f2)
	}
	if len(t1) != len(t2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("trace line %d differs:\n%s\n%s", i, t1[i], t2[i])
		}
	}
}

// The retry limit must stop the engine rather than livelock when the
// network eats everything.
func TestRetryLimitStopsTotalLoss(t *testing.T) {
	eng, n, _, _ := buildFaulty(t, fault.Plan{Seed: 1, DropBP: 10000})
	n.Send(0, 4, 0, 8, 0, func(sim.Time) { t.Fatal("delivered through a 100%-loss network") })
	eng.At(1<<40, func() {
		for _, p := range n.procs {
			p.Wake(1 << 40)
		}
	})
	if err := eng.Run(); err == nil {
		t.Fatal("expected an undeliverable-message error")
	}
}
