package msg

import (
	"testing"
	"testing/quick"

	"mgs/internal/sim"
)

func meshCosts() Costs {
	return Costs{
		SendOverhead: 10, HandlerEntry: 50, PerHop: 2, BytesPerCycle: 2,
		InterOverhead: 100, InterMesh: true, InterPerHop: 200,
		// InterDelay deliberately set to prove it is ignored in mesh mode.
		InterDelay: 99999,
	}
}

// buildMesh makes a 16-SSMP machine (one processor per SSMP, 4×4 grid).
func buildMesh(t *testing.T) (*sim.Engine, *Network, []*sim.Proc) {
	t.Helper()
	eng := sim.NewEngine()
	procs := make([]*sim.Proc, 16)
	for i := range procs {
		procs[i] = eng.NewProc(i, 0, func(p *sim.Proc) { p.Park() })
	}
	return eng, NewNetwork(eng, procs, 1, meshCosts()), procs
}

func TestMeshRouteIsDimensionOrdered(t *testing.T) {
	_, n, _ := buildMesh(t)
	mesh := n.Topology().(*Mesh2D)
	// SSMP 0 = (0,0) to SSMP 15 = (3,3): X first to (3,0)=3, then Y down
	// through 7 and 11 to 15.
	want := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 7}, {7, 11}, {11, 15}}
	got := mesh.Route(0, 15)
	if len(got) != len(want) {
		t.Fatalf("route = %v, want %v", got, want)
	}
	for i := range want {
		if got[i].From != want[i][0] || got[i].To != want[i][1] {
			t.Fatalf("route[%d] = %v, want %v", i, got[i], want[i])
		}
		if got[i].Latency != 200 || got[i].BytesPerCycle != 2 {
			t.Fatalf("route[%d] = %+v, want latency 200, bpc 2", i, got[i])
		}
	}
	if len(mesh.Route(5, 5)) != 0 {
		t.Fatal("self route not empty")
	}
}

func TestMeshRouteLengthMatchesManhattanDistance(t *testing.T) {
	_, n, _ := buildMesh(t)
	mesh := n.Topology().(*Mesh2D)
	manhattan := func(a, b int) int {
		dx, dy := a%4-b%4, a/4-b/4
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		return dx + dy
	}
	prop := func(a, b uint8) bool {
		x, y := int(a%16), int(b%16)
		return len(mesh.Route(x, y)) == manhattan(x, y) &&
			len(mesh.Route(x, y)) == len(mesh.Route(y, x))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeshUncontendedLatency(t *testing.T) {
	eng, n, procs := buildMesh(t)
	var done sim.Time
	// 0 -> 15: 6 hops. Zero payload clamps to 1 cycle/link of xfer.
	// arrive = 10 + 100 + 6*(200+1) = 1316; done = 1316 + 50 = 1366.
	n.Send(0, 15, 0, 0, 0, func(at sim.Time) { done = at })
	finish(t, eng, procs, 100000)
	if done != 1366 {
		t.Fatalf("handler done at %d, want 1366 (InterDelay must be ignored)", done)
	}
	// Latency() must agree with the uncontended walk (minus send/handler).
	if lat := n.Latency(0, 15, 0); lat != 100+6*200 {
		t.Fatalf("Latency = %d, want %d", lat, 100+6*200)
	}
}

func TestMeshLinkContention(t *testing.T) {
	eng, n, procs := buildMesh(t)
	var d1, d2 sim.Time
	// Two 1024-byte messages (512 cycles of serialization each) cross
	// the same directed link 0->1 back to back: the second queues for
	// exactly one serialization time.
	n.Send(0, 1, 0, 1024, 0, func(at sim.Time) { d1 = at })
	n.Send(0, 1, 0, 1024, 0, func(at sim.Time) { d2 = at })
	finish(t, eng, procs, 100000)
	if n.Counters.LinkWaitCycles != 512 {
		t.Fatalf("LinkWaitCycles = %d, want 512", n.Counters.LinkWaitCycles)
	}
	if d2 != d1+512 {
		t.Fatalf("d1=%d d2=%d, want second exactly 512 later", d1, d2)
	}
}

func TestMeshOppositeDirectionsDoNotContend(t *testing.T) {
	eng, n, procs := buildMesh(t)
	var d1, d2 sim.Time
	// 0->1 and 1->0 use distinct directed links; neither should wait.
	n.Send(0, 1, 0, 1024, 0, func(at sim.Time) { d1 = at })
	n.Send(1, 0, 0, 1024, 0, func(at sim.Time) { d2 = at })
	finish(t, eng, procs, 100000)
	if n.Counters.LinkWaitCycles != 0 {
		t.Fatalf("LinkWaitCycles = %d, want 0", n.Counters.LinkWaitCycles)
	}
	if d1 != d2 {
		t.Fatalf("symmetric sends finished at %d and %d", d1, d2)
	}
}

func TestMeshDeterministic(t *testing.T) {
	run := func() []sim.Time {
		eng, n, procs := buildMesh(t)
		var arrivals []sim.Time
		for i := 0; i < 12; i++ {
			from, to := i%4, 15-(i%8)
			if from == to {
				to = 14
			}
			n.Send(from, to, sim.Time(i*3), 256, 0,
				func(at sim.Time) { arrivals = append(arrivals, at) })
		}
		finish(t, eng, procs, 1_000_000)
		return arrivals
	}
	a, b := run(), run()
	if len(a) != 12 || len(b) != 12 {
		t.Fatalf("lost messages: %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run differs at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestMeshIntraSSMPUnaffected(t *testing.T) {
	// With csize > 1, intra-SSMP messages must still use the intra mesh
	// even when InterMesh is on.
	eng := sim.NewEngine()
	procs := make([]*sim.Proc, 8)
	for i := range procs {
		procs[i] = eng.NewProc(i, 0, func(p *sim.Proc) { p.Park() })
	}
	n := NewNetwork(eng, procs, 4, meshCosts())
	var done sim.Time
	n.Send(0, 1, 0, 0, 0, func(at sim.Time) { done = at })
	finish(t, eng, procs, 10000)
	if done != 62 { // same as TestIntraLatencyAndHandler
		t.Fatalf("intra handler done at %d, want 62", done)
	}
}
