package msg

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mgs/internal/fault"
	"mgs/internal/obs"
	"mgs/internal/sim"
	"mgs/internal/stats"
)

// Reliable transport over a faulty inter-SSMP network (extension).
//
// The paper emulates the inter-SSMP LAN as a perfect fixed-delay wire
// (§4.2.3). AttachFault replaces that wire, for inter-SSMP messages
// only, with a lossy one driven by a deterministic fault.Plan — drops,
// duplicates, delays — and the recovery machinery a real LAN forces:
//
//   - every logical message carries a per-(sender, receiver) sequence
//     number;
//   - the receiving NIC acknowledges each arriving copy before handler
//     dispatch (acks are themselves subject to loss);
//   - the sender sets a retransmission timer per attempt, doubling the
//     timeout up to a cap (all in simulated cycles via the event
//     engine), and charges the timer-interrupt work to itself;
//   - the receiver suppresses duplicate deliveries with a sliding
//     sequence window, so the protocol engines above (Local Client,
//     Remote Client, Server) each process a message exactly once and
//     stay correct under replay.
//
// Handlers therefore still run at most once per logical message; what
// the faults change is *when* — a message can now arrive arbitrarily
// late relative to its siblings, which is precisely the reordering the
// MGS protocol must (and does) tolerate.
//
// Intra-SSMP messages model Alewife's hardware mesh and stay perfectly
// reliable; only the LAN between SSMPs misbehaves.

// chanKey names a directed transport channel between two processors.
type chanKey struct{ from, to int }

// chanState is one channel's sequence bookkeeping.
type chanState struct {
	nextSeq int64 // sender: next sequence number to assign

	// Receiver-side sliding window: every seq <= contig has been
	// delivered; beyond holds delivered seqs past the contiguous
	// prefix (gaps opened by retransmission lag). Lookup-only maps —
	// never ranged — so determinism is preserved.
	contig int64
	beyond map[int64]bool
}

// seen reports whether seq was already delivered on this channel.
func (cs *chanState) seen(seq int64) bool {
	return seq <= cs.contig || cs.beyond[seq]
}

// mark records delivery of seq, advancing the contiguous prefix and
// compacting the gap set.
func (cs *chanState) mark(seq int64) {
	if seq != cs.contig+1 {
		cs.beyond[seq] = true
		return
	}
	cs.contig++
	for cs.beyond[cs.contig+1] {
		cs.contig++
		delete(cs.beyond, cs.contig)
	}
}

// pending is one logical message in flight through the faulty LAN.
//
// Under the parallel dispatcher the fields split cleanly by shard:
// stream, attempts, rto, acked and firstEst are touched only by
// sender-shard events (send/attempt/timer/ack-arrival), ackStream only
// by receiver-shard events (sendAck), and everything else is immutable
// after send. Window barriers order the cross-shard handoffs.
type pending struct {
	id        uint64
	key       chanKey
	seq       int64
	bytes     int
	extra     sim.Time
	fn        func(done sim.Time)
	stream    fault.Stream // sender-side fate draws (drop/dup/delay)
	ackStream fault.Stream // receiver-side fate draws (ack loss)
	acked     bool
	attempts  int
	rto       sim.Time // timeout for the attempt in flight
	firstEst  sim.Time // fault-free arrival estimate of attempt 0
}

// injector sits between Network.Send and handler delivery, applying the
// fault plan and the recovery protocol. All state changes happen in
// engine context, so the machinery is deterministic by construction —
// message ids and fate streams key off channel coordinates and
// per-channel sequence numbers, never off a global dispatch-order
// counter, so the same fates fire whether the engine runs sequentially
// or sharded.
type injector struct {
	net  *Network
	plan fault.Plan
	fs   *stats.Fault

	mu    sync.Mutex // guards chans (lazy creation races across shards)
	chans map[chanKey]*chanState
}

// AttachFault interposes the fault-injecting reliable transport on all
// inter-SSMP messages, recording its accounting in fs (which must not
// be nil — the harness passes &Collector.Fault). Zero-valued transport
// parameters in Costs take the Default* values.
//
// An empty plan detaches: the transport elides sequence numbers, acks,
// and timers entirely, making the run byte-identical to one with no
// fault layer. This is the zero-fault equivalence contract the chaos
// harness verifies.
func (n *Network) AttachFault(plan fault.Plan, fs *stats.Fault) {
	if plan.Empty() {
		n.inj = nil
		return
	}
	if n.costs.RetryTimeout <= 0 {
		n.costs.RetryTimeout = DefaultRetryTimeout
	}
	if n.costs.RetryTimeoutMax <= 0 {
		n.costs.RetryTimeoutMax = DefaultRetryTimeoutMax
	}
	if n.costs.RetransmitWork <= 0 {
		n.costs.RetransmitWork = DefaultRetransmitWork
	}
	if n.costs.AckBytes <= 0 {
		n.costs.AckBytes = DefaultAckBytes
	}
	if n.costs.RetryLimit <= 0 {
		n.costs.RetryLimit = DefaultRetryLimit
	}
	n.inj = &injector{net: n, plan: plan, fs: fs, chans: make(map[chanKey]*chanState)}
}

// FaultPlan returns the attached plan (empty if none).
func (n *Network) FaultPlan() fault.Plan {
	if n.inj == nil {
		return fault.Plan{}
	}
	return n.inj.plan
}

// emit publishes one transport fate event on the observability spine.
// The channel coordinates go in the detail; transport events carry
// Proc -1 so the Chrome exporter gives the wire its own track. Detail
// formatting runs only when a sink is attached, and emission charges no
// simulated cycles.
func (in *injector) emit(t sim.Time, name string, from, to int, seq int64, id uint64, format string, args ...any) {
	o := in.net.Obs
	if !o.Tracing() {
		return
	}
	detail := fmt.Sprintf("ch=%d->%d seq=%d id=%d", from, to, seq, id)
	if format != "" {
		detail += " " + fmt.Sprintf(format, args...)
	}
	o.Emit(obs.Event{T: t, Proc: -1, Cat: obs.Transport, Name: name, Detail: detail})
}

// chanOf returns (creating if needed) the channel state for key. The
// mutex covers only the map: a channel's sender fields are touched only
// from the sender's shard and its receiver fields only from the
// receiver's, so the state itself needs no lock.
func (in *injector) chanOf(key chanKey) *chanState {
	in.mu.Lock()
	cs, ok := in.chans[key]
	if !ok {
		cs = &chanState{beyond: make(map[int64]bool)}
		in.chans[key] = cs
	}
	in.mu.Unlock()
	return cs
}

// msgID packs a channel's coordinates and per-channel sequence number
// into the transport's message identity. Processor numbers fit 16 bits
// and no channel carries 2^32 messages, so ids are unique — and, unlike
// a global allocation counter, independent of the order channels
// interleave, which keeps fate streams identical across sequential and
// parallel dispatch.
func msgID(key chanKey, seq int64) uint64 {
	return uint64(key.from)<<48 | uint64(key.to)<<32 | uint64(seq)
}

// send enters one logical inter-SSMP message into the reliable
// transport: assign its sequence number, seed its fate streams from the
// plan and message id, and launch attempt zero. Runs in the sending
// processor's shard context.
func (in *injector) send(from, to int, when sim.Time, bytes int, extra sim.Time, fn func(done sim.Time)) {
	key := chanKey{from, to}
	cs := in.chanOf(key)
	cs.nextSeq++
	id := msgID(key, cs.nextSeq)
	m := &pending{
		id: id, key: key, seq: cs.nextSeq,
		bytes: bytes, extra: extra, fn: fn,
		// Separate streams per side: attempt fates are drawn on the
		// sender's shard, ack fates on the receiver's, so sharing one
		// splitmix64 state would race. The high bit splits the id space.
		stream:    in.plan.Stream(id),
		ackStream: in.plan.Stream(id | 1<<63),
		rto:       in.net.costs.RetryTimeout,
	}
	atomic.AddInt64(&in.fs.Messages, 1)
	in.attempt(m, when)
}

// attempt launches one transmission attempt of m departing the sender
// at time when: draw the attempt's fate, schedule the surviving copies,
// and arm the retransmission timer.
func (in *injector) attempt(m *pending, when sim.Time) {
	n := in.net
	m.attempts++
	if m.attempts > n.costs.RetryLimit {
		n.eng.StopOn(n.procs[m.key.from], fmt.Errorf(
			"msg: message %d (%d->%d seq %d) undeliverable after %d attempts — loss rate too high for the retry limit",
			m.id, m.key.from, m.key.to, m.seq, n.costs.RetryLimit))
		return
	}
	// The fault-free arrival this attempt would have had, computed
	// exactly as the unfaulted path does (topology contention and
	// jitter included; the transport only ever carries inter-SSMP
	// messages).
	arrive := n.interArrive(m.key.from, m.key.to, when, m.bytes) + n.jitter()
	if m.attempts == 1 {
		m.firstEst = arrive
	}
	f := in.plan.NextAttempt(&m.stream)
	switch {
	case f.Drop:
		atomic.AddInt64(&in.fs.Dropped, 1)
		in.emit(when, "DROP", m.key.from, m.key.to, m.seq, m.id, "attempt=%d", m.attempts)
	default:
		if f.Extra > 0 {
			atomic.AddInt64(&in.fs.Delayed, 1)
			atomic.AddInt64(&in.fs.DelayCycles, int64(f.Extra))
			in.emit(when, "DELAY", m.key.from, m.key.to, m.seq, m.id, "extra=%d attempt=%d", f.Extra, m.attempts)
		}
		in.deliverAt(m, arrive+f.Extra)
		if f.Dup {
			atomic.AddInt64(&in.fs.Duplicated, 1)
			in.emit(when, "DUP", m.key.from, m.key.to, m.seq, m.id, "lag=%d attempt=%d", f.DupExtra, m.attempts)
			in.deliverAt(m, arrive+f.Extra+f.DupExtra)
		}
	}
	// Retransmission timer: a simulated timer interrupt on the sender.
	// If the ack beat it, it is a no-op; otherwise the next attempt
	// departs now with a doubled (capped) timeout. Sender-local, so the
	// event is pinned to the sending processor and constrains no
	// lookahead window.
	fire := when + m.rto
	m.rto *= 2
	if m.rto > n.costs.RetryTimeoutMax {
		m.rto = n.costs.RetryTimeoutMax
	}
	n.eng.AtOn(n.procs[m.key.from], fire, func() {
		if m.acked {
			return
		}
		atomic.AddInt64(&in.fs.Timeouts, 1)
		atomic.AddInt64(&in.fs.Retransmits, 1)
		atomic.AddInt64(&in.fs.RetransBytes, int64(m.bytes))
		n.chargeHandler(m.key.from, n.costs.RetransmitWork)
		in.emit(fire, "TIMEOUT", m.key.from, m.key.to, m.seq, m.id, "rto=%d -> RETRANSMIT attempt=%d", fire-when, m.attempts+1)
		in.attempt(m, fire)
	})
}

// deliverAt schedules one physical copy of m to reach the receiver at
// time arrive. The first copy past the sequence check dispatches the
// handler exactly as the fault-free path would; replays are counted and
// suppressed. Every copy is acknowledged — a duplicate usually means
// the previous ack was lost, so the receiver re-acks.
func (in *injector) deliverAt(m *pending, arrive sim.Time) {
	n := in.net
	src, dst := n.procs[m.key.from], n.procs[m.key.to]
	n.eng.AtSend(src, dst, arrive, func() {
		cs := in.chanOf(m.key)
		if cs.seen(m.seq) {
			atomic.AddInt64(&in.fs.DupSuppressed, 1)
			in.emit(arrive, "DUPDROP", m.key.from, m.key.to, m.seq, m.id, "(already delivered)")
		} else {
			cs.mark(m.seq)
			if arrive > m.firstEst {
				atomic.AddInt64(&in.fs.RecoveryCycles, int64(arrive-m.firstEst))
			}
			cost := n.costs.HandlerEntry + m.extra
			start := dst.HandlerStart(arrive, cost)
			n.chargeHandler(m.key.to, cost)
			fn := m.fn
			n.eng.AtOn(dst, start+cost, func() { fn(start + cost) })
		}
		in.sendAck(m, arrive)
	})
}

// sendAck returns the transport-level acknowledgment for one delivered
// copy of m. The ack is generated by the receiving NIC before handler
// dispatch, so it costs no processor occupancy; it rides the same lossy
// LAN, so it can vanish — in which case the sender times out and a
// retransmission (suppressed at the receiver) provokes a fresh ack.
func (in *injector) sendAck(m *pending, at sim.Time) {
	n := in.net
	atomic.AddInt64(&in.fs.Acks, 1)
	if in.plan.AckDropped(&m.ackStream) {
		atomic.AddInt64(&in.fs.AckDropped, 1)
		in.emit(at, "ACKDROP", m.key.to, m.key.from, m.seq, m.id, "")
		return
	}
	arrive := at + n.Latency(m.key.to, m.key.from, n.costs.AckBytes) + n.jitter()
	n.eng.AtSend(n.procs[m.key.to], n.procs[m.key.from], arrive, func() {
		if !m.acked {
			m.acked = true
			in.emit(arrive, "ACK", m.key.to, m.key.from, m.seq, m.id, "")
		}
	})
}
