// Package msg models MGS's two communication layers: Alewife-style
// active messages with DMA inside an SSMP, and the emulated LAN between
// SSMPs (paper §4.2.2–§4.2.3).
//
// A message addressed to a processor invokes a handler there. Handlers
// on the same destination processor serialize (the paper's hardware
// contexts make dispatch cheap, but a processor still executes one
// handler at a time), which is what makes a hot home processor — TSP's
// work-queue home, Water's statistics home — a genuine bottleneck in
// the simulation, as in the paper.
//
// Inter-SSMP messages pay a fixed extra delay by default, exactly like
// the paper's emulation: "all messages between logical SSMPs are queued
// at the sending processor and a timer interrupt is set for some amount
// of delay". Contention in the LAN is not modeled under that default
// (nor was it in MGS); the pluggable Topology interface (topology.go)
// adds routed, link-contended interconnects — Mesh2D, FatTree, Tiered —
// for scaling studies beyond the paper's 32 processors.
package msg

import (
	"sync/atomic"

	"mgs/internal/obs"
	"mgs/internal/sim"
)

// Costs parameterizes message timing, in cycles.
type Costs struct {
	SendOverhead  sim.Time // occupancy to compose and launch a message
	HandlerEntry  sim.Time // dispatch into a handler at the receiver
	PerHop        sim.Time // per mesh hop inside an SSMP
	BytesPerCycle int      // DMA bandwidth (bytes moved per cycle)
	InterDelay    sim.Time // fixed inter-SSMP latency (the LAN knob)
	InterOverhead sim.Time // software protocol stack per inter-SSMP message

	// Topology selects the inter-SSMP interconnect (topology.go). Nil
	// means the paper's Uniform fixed-delay LAN — unless the deprecated
	// InterMesh boolean is set, which resolves to Mesh2D. InterOverhead
	// is always paid as the software stack cost on top of whatever the
	// topology charges.
	Topology Topology

	// InterMesh is deprecated: it predates the Topology interface and
	// is equivalent to Topology: NewMesh2D(). It is consulted only when
	// Topology is nil. InterPerHop sets the mesh's per-hop latency
	// (InterDelay/4 when zero).
	InterMesh   bool
	InterPerHop sim.Time

	// Jitter, when positive, adds a deterministic pseudo-random extra
	// delay in [0, Jitter) to every message, seeded by JitterSeed.
	// Runs stay reproducible, but message arrival orders get shuffled —
	// an adversarial mode for hunting protocol ordering races. The
	// paper's LAN model has no contention; jitter also stands in for a
	// loaded network.
	Jitter     sim.Time
	JitterSeed uint64

	// Reliable-transport parameters, consulted only while a fault plan
	// is attached (AttachFault); zero fields take the Default* values.
	// See reliable.go for the seq/ack/retransmission machinery.

	// RetryTimeout is the initial retransmission timeout: how long the
	// sender waits for a transport ack before resending. Each further
	// attempt doubles it, capped at RetryTimeoutMax.
	RetryTimeout    sim.Time
	RetryTimeoutMax sim.Time
	// RetransmitWork is the sender-side timer-interrupt occupancy
	// charged per retransmission (the driver re-queues the DMA).
	RetransmitWork sim.Time
	// AckBytes sizes the transport-level acknowledgment packet.
	AckBytes int
	// RetryLimit aborts the run (Engine.Stop) if one message needs more
	// than this many attempts — a diagnostic backstop, not a protocol
	// feature: with independent per-attempt fates and any loss rate
	// below 100% the limit is unreachable in practice.
	RetryLimit int
}

// Default reliable-transport parameters. The initial timeout covers the
// worst uncontended inter-SSMP round trip of the calibrated cost table
// (two page payloads plus control traffic, both ways) with slack for
// handler queueing at a hot home processor.
const (
	DefaultRetryTimeout    sim.Time = 20_000
	DefaultRetryTimeoutMax sim.Time = 160_000
	DefaultRetransmitWork  sim.Time = 200
	DefaultAckBytes                 = 8
	DefaultRetryLimit               = 30
)

// Counters tallies traffic.
type Counters struct {
	IntraMsgs, InterMsgs   int64
	IntraBytes, InterBytes int64
	// LinkWaitCycles accumulates link queueing delay on contended
	// topologies (Mesh2D, FatTree, Tiered; always 0 under Uniform).
	LinkWaitCycles int64
}

// Network routes messages between the processors of one machine.
type Network struct {
	eng    *sim.Engine
	procs  []*sim.Proc
	nprocs int
	csize  int // processors per SSMP
	meshW  int // width of the intra-SSMP mesh
	costs  Costs
	rng    uint64 // xorshift state for deterministic jitter

	// topo is the sized inter-SSMP topology; occ is its per-machine
	// link-contention state (mutated only on the inter send path, which
	// contended topologies keep sequential via Lookahead 0).
	topo Topology
	occ  Occupancy

	// inj, when non-nil, interposes the fault-injecting reliable
	// transport on every inter-SSMP message (reliable.go). Nil on the
	// fault-free path, which is byte-identical to a Network that never
	// heard of faults.
	inj *injector

	// OnHandler, if set, is called for every cycle of handler work
	// charged to a processor (protocol-time attribution).
	OnHandler func(proc int, cycles sim.Time)

	// Obs is the observability spine. Transport fate events — drops,
	// duplicates, delays, timeouts, retransmissions, acks — publish on
	// it as Cat Transport with Proc -1 (they belong to the wire, not a
	// processor), interleaving with the protocol and sync streams into
	// one virtual-time-ordered event log.
	Obs *obs.Observer

	Counters Counters
}

// NewNetwork builds the network for nprocs processors grouped into SSMPs
// of csize each. procs[i] must be the simulated processor i.
func NewNetwork(eng *sim.Engine, procs []*sim.Proc, csize int, costs Costs) *Network {
	if costs.BytesPerCycle <= 0 {
		costs.BytesPerCycle = 1
	}
	w := 1
	for w*w < csize {
		w++
	}
	seed := costs.JitterSeed
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	topo := costs.Topology
	if topo == nil {
		if costs.InterMesh {
			topo = NewMesh2D()
		} else {
			topo = NewUniform()
		}
	}
	nssmp := (len(procs) + csize - 1) / csize
	if s, ok := topo.(sizer); ok {
		topo = s.sized(nssmp, costs)
	}
	n := &Network{
		eng: eng, procs: procs, nprocs: len(procs), csize: csize,
		meshW: w, costs: costs, rng: seed,
		topo: topo,
	}
	n.occ = newOccupancy(&n.Counters.LinkWaitCycles)
	return n
}

// Topology returns the sized inter-SSMP topology in use.
func (n *Network) Topology() Topology { return n.topo }

// jitter returns the next deterministic pseudo-random extra delay.
func (n *Network) jitter() sim.Time {
	if n.costs.Jitter <= 0 {
		return 0
	}
	// xorshift64*
	n.rng ^= n.rng >> 12
	n.rng ^= n.rng << 25
	n.rng ^= n.rng >> 27
	v := n.rng * 0x2545f4914f6cdd1d
	return sim.Time(v % uint64(n.costs.Jitter))
}

// Costs returns the cost table in use.
func (n *Network) Costs() Costs { return n.costs }

// SSMPOf returns the SSMP number of a processor.
func (n *Network) SSMPOf(proc int) int { return proc / n.csize }

// hops is the Manhattan distance between two processors of the same SSMP
// laid out in a square mesh.
func (n *Network) hops(a, b int) sim.Time {
	ai, bi := a%n.csize, b%n.csize
	ax, ay := ai%n.meshW, ai/n.meshW
	bx, by := bi%n.meshW, bi/n.meshW
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return sim.Time(dx + dy)
}

// Latency returns the wire+transfer latency of a message of the given
// payload from processor `from` to processor `to`, excluding send and
// handler occupancy. For inter-SSMP messages this is the uncontended
// estimate over the topology's route: the software stack cost, the sum
// of link latencies, and one transfer at the route's bottleneck
// bandwidth. Acks and protocol estimates use it; the contended arrival
// path is interArrive.
func (n *Network) Latency(from, to, bytes int) sim.Time {
	if n.SSMPOf(from) == n.SSMPOf(to) {
		xfer := sim.Time(bytes / n.costs.BytesPerCycle)
		return n.hops(from, to)*n.costs.PerHop + xfer
	}
	lat := n.costs.InterOverhead
	minBPC := n.costs.BytesPerCycle
	for _, l := range n.topo.Route(n.SSMPOf(from), n.SSMPOf(to)) {
		lat += l.Latency
		if l.BytesPerCycle > 0 && l.BytesPerCycle < minBPC {
			minBPC = l.BytesPerCycle
		}
	}
	if minBPC <= 0 {
		minBPC = 1
	}
	return lat + sim.Time(bytes/minBPC)
}

// interArrive computes the contended arrival time at `to` of an
// inter-SSMP message leaving `from` at `when`: pay the send overhead
// and software stack cost, then hand the topology the departure so it
// can queue the message across its links.
func (n *Network) interArrive(from, to int, when sim.Time, bytes int) sim.Time {
	depart := when + n.costs.SendOverhead + n.costs.InterOverhead
	return n.topo.Arrive(&n.occ, n.SSMPOf(from), n.SSMPOf(to), depart, bytes)
}

// Send delivers an active message: composed at `when` on processor
// `from`, arriving at processor `to` after the wire latency, then
// running `fn` as a handler once the destination processor's handler
// resource is free. fn receives the virtual time at which the handler
// body has completed (HandlerEntry plus extra cycles of handler work).
//
// Send must be called from engine or processor context with when >= the
// caller's current virtual time. The sender is charged SendOverhead of
// occupancy via debt; callers that want the sender's clock to reflect
// the send should also advance it by SendCost.
func (n *Network) Send(from, to int, when sim.Time, bytes int, extra sim.Time, fn func(done sim.Time)) {
	n.SendTagged(sim.Label{}, from, to, when, bytes, extra, fn)
}

// SendTagged is Send with a choice label: while a sim.Chooser is armed
// on the engine (model checking), the delivery becomes a choice point
// the checker can reorder against other labeled deliveries. On every
// normal run — no chooser — AtChoice degrades to At and the schedule is
// identical to Send's. Fault-injected messages stay unlabeled: the
// reliable transport's retransmission timing is outside the checker's
// interleaving model (the checker never arms a fault plan).
func (n *Network) SendTagged(l sim.Label, from, to int, when sim.Time, bytes int, extra sim.Time, fn func(done sim.Time)) {
	// Traffic counters are commutative sums read only after the run, so
	// atomic adds keep them exact under the parallel dispatcher (senders
	// on different shards count concurrently).
	inter := n.SSMPOf(from) != n.SSMPOf(to)
	if inter {
		atomic.AddInt64(&n.Counters.InterMsgs, 1)
		atomic.AddInt64(&n.Counters.InterBytes, int64(bytes))
	} else {
		atomic.AddInt64(&n.Counters.IntraMsgs, 1)
		atomic.AddInt64(&n.Counters.IntraBytes, int64(bytes))
	}
	if inter && n.inj != nil {
		// Fault-injection mode: the message goes through the reliable
		// transport (sequence number, ack, retransmission) instead of
		// the perfect wire.
		n.inj.send(from, to, when, bytes, extra, fn)
		return
	}
	var arrive sim.Time
	if inter {
		arrive = n.interArrive(from, to, when, bytes) + n.jitter()
	} else {
		arrive = when + n.costs.SendOverhead + n.Latency(from, to, bytes) + n.jitter()
	}
	src, dst := n.procs[from], n.procs[to]
	n.eng.AtChoiceSend(l, src, dst, arrive, func() {
		// arrive names the scheduled delivery time; a chooser may run
		// this event later, but handler occupancy (HandlerStart) and the
		// engine's At clamp keep every derived time monotone.
		cost := n.costs.HandlerEntry + extra
		start := dst.HandlerStart(arrive, cost)
		n.chargeHandler(to, cost)
		n.eng.AtOn(dst, start+cost, func() { fn(start + cost) })
	})
}

// Lookahead returns the minimum latency any cross-SSMP scheduling pays
// under the current topology — the conservative PDES lookahead the
// parallel dispatcher may advance shards by. Each topology reports its
// own bound (Uniform: InterOverhead + InterDelay, the tightest
// cross-SSMP gap being a transport-level ack). Zero means no usable
// lookahead: contended topologies (Mesh2D, FatTree, Tiered) queue
// messages through shared per-link state with no fixed latency floor,
// so the engine must fall back to sequential dispatch.
func (n *Network) Lookahead() sim.Time {
	return n.topo.Lookahead()
}

// SendCost is the occupancy a sender spends launching one message.
func (n *Network) SendCost() sim.Time { return n.costs.SendOverhead }

// Extend charges additional handler work discovered mid-handler (for
// data-dependent costs such as diff sizes) on processor proc starting at
// time at. It returns the completion time of the extra work.
func (n *Network) Extend(proc int, at, extra sim.Time) sim.Time {
	if extra <= 0 {
		return at
	}
	n.procs[proc].HandlerStart(at, extra)
	n.chargeHandler(proc, extra)
	return at + extra
}

// XferCycles converts a byte count to DMA cycles at the configured
// bandwidth.
func (n *Network) XferCycles(bytes int) sim.Time {
	return sim.Time(bytes / n.costs.BytesPerCycle)
}

func (n *Network) chargeHandler(proc int, cycles sim.Time) {
	if n.OnHandler != nil {
		n.OnHandler(proc, cycles)
	}
	if !n.procs[proc].Parked() {
		n.procs[proc].AddDebt(cycles)
	}
}
