package msg

import (
	"fmt"

	"mgs/internal/sim"
)

// Pluggable inter-SSMP topologies (extension).
//
// MGS emulated the LAN between SSMPs as a uniform fixed delay with no
// contention (§4.2.3). That stays the default, but at p=256/1024 the
// interconnect is where DSSMP design decisions bite, so the network is
// now a first-class Topology: a routing function over directed links,
// each with its own latency and bandwidth, plus deterministic
// store-and-forward contention tracked per link. Four implementations
// ship — Uniform (the paper's LAN), Mesh2D (the PR 3-era InterMesh
// mode), FatTree (bandwidth fattens toward the root), and Tiered
// (LAN sites joined by thin, slow WAN links).
//
// Every topology also reports its own conservative PDES lookahead.
// Uniform has a fixed latency floor and no shared state, so the
// parallel dispatcher may advance shards by InterOverhead+InterDelay.
// The contended topologies route through a shared Occupancy — sender-
// shard events would mutate it concurrently — and their queueing delay
// has no fixed lower bound, so they return 0 and the engine provably
// falls back to sequential dispatch (harness.parallelOK gates on
// Network.Lookahead() > 0).

// Link is one directed edge of an inter-SSMP topology. Node numbers are
// SSMP ids in [0, nssmp); switch nodes use ids >= nssmp. A Link carries
// its own wire latency and serialization bandwidth, so heterogeneous
// topologies (thin WAN trunks, fat tree roots) fall out of routing.
type Link struct {
	From, To      int
	Latency       sim.Time // wire latency across this link
	BytesPerCycle int      // serialization bandwidth of this link
}

// Occupancy models deterministic store-and-forward contention: each
// directed link serializes the messages that cross it. The map is
// lookup-only (never ranged), so determinism is preserved; contended
// topologies force the sequential dispatcher (Lookahead 0), so no lock
// is needed.
type Occupancy struct {
	busy map[Link]sim.Time
	wait *int64 // accumulates queueing delay (Counters.LinkWaitCycles)
}

func newOccupancy(wait *int64) Occupancy {
	return Occupancy{busy: make(map[Link]sim.Time), wait: wait}
}

// Cross moves one message across l: it departs at t, waits behind
// earlier traffic if the link is busy, occupies the link for xfer
// cycles (store-and-forward), and lands at the far side after the
// link's wire latency. Returns the arrival time at l.To.
func (o *Occupancy) Cross(l Link, t, xfer sim.Time) sim.Time {
	if busy := o.busy[l]; busy > t {
		*o.wait += int64(busy - t)
		t = busy
	}
	o.busy[l] = t + xfer
	return t + l.Latency + xfer
}

// Topology is the pluggable inter-SSMP interconnect. a and b are SSMP
// numbers. Implementations must be deterministic and, once sized, are
// immutable — all mutable contention state lives in the Occupancy the
// caller owns, so one spec can be shared across sweep workers.
type Topology interface {
	// Route returns the directed links a message visits from SSMP a to
	// SSMP b (nil when a == b, or when the topology has no modeled
	// links between them).
	Route(a, b int) []Link
	// Arrive returns the arrival time at SSMP b of a message departing
	// SSMP a at depart (send overhead and the software stack cost
	// already paid), updating occ with the links it occupies.
	Arrive(occ *Occupancy, a, b int, depart sim.Time, bytes int) sim.Time
	// Lookahead is the conservative PDES lookahead this topology
	// grants: a lower bound on (arrival - depart) for any cross-SSMP
	// message, or 0 if contention makes no bound safe.
	Lookahead() sim.Time
	// Describe names the topology and its resolved parameters.
	Describe() string
}

// sizer is implemented by topology specs that must be resolved against
// the machine shape (SSMP count) and cost table before use. NewNetwork
// calls it; the returned Topology is the immutable sized instance.
type sizer interface {
	sized(nssmp int, c Costs) Topology
}

// crossRoute walks a message along route, paying per-link queueing and
// serialization. Each link charges at least one cycle of serialization
// so back-to-back messages on the same link always see each other.
func crossRoute(occ *Occupancy, route []Link, depart sim.Time, bytes int) sim.Time {
	t := depart
	for _, l := range route {
		bpc := l.BytesPerCycle
		if bpc <= 0 {
			bpc = 1
		}
		xfer := sim.Time(bytes / bpc)
		if xfer < 1 {
			xfer = 1
		}
		t = occ.Cross(l, t, xfer)
	}
	return t
}

// ByName resolves a topology flag value ("uniform", "mesh", "fattree",
// "tiered") to an unsized spec with default parameters.
func ByName(name string) (Topology, error) {
	switch name {
	case "", "uniform":
		return NewUniform(), nil
	case "mesh":
		return NewMesh2D(), nil
	case "fattree":
		return NewFatTree(0), nil
	case "tiered":
		return NewTiered(0), nil
	}
	return nil, fmt.Errorf("msg: unknown topology %q (want uniform, mesh, fattree, or tiered)", name)
}

// TopologyNames lists the ByName spellings, for flag help text.
func TopologyNames() []string { return []string{"uniform", "mesh", "fattree", "tiered"} }

// Uniform is the paper's emulated LAN: every inter-SSMP message pays
// the same fixed InterDelay plus DMA transfer, with no contention. Its
// latency floor gives the parallel engine a real lookahead window.
type Uniform struct {
	delay sim.Time
	oh    sim.Time
	bpc   int
}

// NewUniform returns the uniform fixed-delay LAN spec (the default).
func NewUniform() *Uniform { return &Uniform{} }

func (u *Uniform) sized(nssmp int, c Costs) Topology {
	bpc := c.BytesPerCycle
	if bpc <= 0 {
		bpc = 1
	}
	return &Uniform{delay: c.InterDelay, oh: c.InterOverhead, bpc: bpc}
}

func (u *Uniform) Route(a, b int) []Link {
	if a == b {
		return nil
	}
	return []Link{{From: a, To: b, Latency: u.delay, BytesPerCycle: u.bpc}}
}

func (u *Uniform) Arrive(_ *Occupancy, a, b int, depart sim.Time, bytes int) sim.Time {
	if a == b {
		return depart
	}
	bpc := u.bpc
	if bpc <= 0 {
		bpc = 1
	}
	return depart + u.delay + sim.Time(bytes/bpc)
}

// Lookahead: the tightest cross-SSMP gap is a transport ack (no send
// overhead, no payload), so the bound is InterOverhead + InterDelay.
func (u *Uniform) Lookahead() sim.Time {
	l := u.oh + u.delay
	if l < 0 {
		return 0
	}
	return l
}

func (u *Uniform) Describe() string {
	return fmt.Sprintf("uniform(delay=%d)", u.delay)
}

// FatTree arranges SSMPs as the leaves of an arity-way tree whose link
// bandwidth doubles per level toward the root, so root trunks don't
// starve under all-to-all traffic the way a flat mesh does. Routing
// climbs to the lowest common ancestor and descends.
type FatTree struct {
	arity int
	nssmp int
	base  sim.Time // per-link wire latency
	bpc   int      // leaf-level bandwidth; doubles per level up
	// starts[lv] is the first node id of tree level lv (level 0 = the
	// SSMPs themselves; switches take ids >= nssmp).
	starts []int
}

// NewFatTree returns a fat-tree spec. arity <= 0 means the default 4.
func NewFatTree(arity int) *FatTree { return &FatTree{arity: arity} }

func (f *FatTree) sized(nssmp int, c Costs) Topology {
	arity := f.arity
	if arity <= 1 {
		arity = 4
	}
	base := c.InterDelay / 4
	if base < 1 {
		base = 1
	}
	bpc := c.BytesPerCycle
	if bpc <= 0 {
		bpc = 1
	}
	starts := []int{0}
	count, id := nssmp, nssmp
	for count > 1 {
		count = (count + arity - 1) / arity
		starts = append(starts, id)
		id += count
	}
	return &FatTree{arity: arity, nssmp: nssmp, base: base, bpc: bpc, starts: starts}
}

// linkBPC is the bandwidth of links between level lv and lv+1: fatter
// toward the root, doubling per level (shift capped to stay sane).
func (f *FatTree) linkBPC(lv int) int {
	if lv > 20 {
		lv = 20
	}
	return f.bpc << uint(lv)
}

func (f *FatTree) Route(a, b int) []Link {
	if a == b {
		return nil
	}
	var up, down []Link
	ia, ib := a, b
	for lv := 0; ia != ib; lv++ {
		pa, pb := ia/f.arity, ib/f.arity
		bpc := f.linkBPC(lv)
		up = append(up, Link{From: f.starts[lv] + ia, To: f.starts[lv+1] + pa, Latency: f.base, BytesPerCycle: bpc})
		down = append(down, Link{From: f.starts[lv+1] + pb, To: f.starts[lv] + ib, Latency: f.base, BytesPerCycle: bpc})
		ia, ib = pa, pb
	}
	for i := len(down) - 1; i >= 0; i-- {
		up = append(up, down[i])
	}
	return up
}

func (f *FatTree) Arrive(occ *Occupancy, a, b int, depart sim.Time, bytes int) sim.Time {
	if a == b {
		return depart
	}
	return crossRoute(occ, f.Route(a, b), depart, bytes)
}

// Lookahead is 0: queueing at shared tree links has no fixed bound, so
// the engine must fall back to sequential dispatch.
func (f *FatTree) Lookahead() sim.Time { return 0 }

func (f *FatTree) Describe() string {
	return fmt.Sprintf("fattree(arity=%d,leaves=%d,levels=%d)", f.arity, f.nssmp, len(f.starts)-1)
}

// Tiered models a heterogeneous LAN/WAN machine: SSMPs cluster into
// sites joined by a fast local switch; sites talk over thin, slow WAN
// trunks. One WAN link per site pair direction, so cross-site traffic
// serializes hard — the regime where the paper's uniform-LAN
// conclusions are most at risk.
type Tiered struct {
	site   int // SSMPs per site
	nssmp  int
	lanLat sim.Time
	wanLat sim.Time
	lanBPC int
	wanBPC int
}

// NewTiered returns a tiered LAN/WAN spec. siteSize <= 0 means the
// default 8 SSMPs per site.
func NewTiered(siteSize int) *Tiered { return &Tiered{site: siteSize} }

func (t *Tiered) sized(nssmp int, c Costs) Topology {
	site := t.site
	if site <= 0 {
		site = 8
	}
	lanLat := c.InterDelay / 4
	if lanLat < 1 {
		lanLat = 1
	}
	wanLat := 10 * c.InterDelay
	if wanLat < lanLat {
		wanLat = lanLat
	}
	lanBPC := c.BytesPerCycle
	if lanBPC <= 0 {
		lanBPC = 1
	}
	wanBPC := lanBPC / 4
	if wanBPC < 1 {
		wanBPC = 1
	}
	return &Tiered{site: site, nssmp: nssmp, lanLat: lanLat, wanLat: wanLat, lanBPC: lanBPC, wanBPC: wanBPC}
}

// switchOf returns the node id of a site's local switch.
func (t *Tiered) switchOf(site int) int { return t.nssmp + site }

func (t *Tiered) Route(a, b int) []Link {
	if a == b {
		return nil
	}
	sa, sb := a/t.site, b/t.site
	swA, swB := t.switchOf(sa), t.switchOf(sb)
	lan := func(from, to int) Link {
		return Link{From: from, To: to, Latency: t.lanLat, BytesPerCycle: t.lanBPC}
	}
	if sa == sb {
		return []Link{lan(a, swA), lan(swA, b)}
	}
	return []Link{
		lan(a, swA),
		{From: swA, To: swB, Latency: t.wanLat, BytesPerCycle: t.wanBPC},
		lan(swB, b),
	}
}

func (t *Tiered) Arrive(occ *Occupancy, a, b int, depart sim.Time, bytes int) sim.Time {
	if a == b {
		return depart
	}
	return crossRoute(occ, t.Route(a, b), depart, bytes)
}

// Lookahead is 0: WAN trunk queueing has no fixed bound, so the engine
// must fall back to sequential dispatch.
func (t *Tiered) Lookahead() sim.Time { return 0 }

func (t *Tiered) Describe() string {
	sites := (t.nssmp + t.site - 1) / t.site
	return fmt.Sprintf("tiered(sites=%d,site=%d,wan=%d,wanbpc=%d)", sites, t.site, t.wanLat, t.wanBPC)
}
