package exp

import (
	"fmt"
	"strings"

	"mgs/internal/apps"
	"mgs/internal/core"
	"mgs/internal/framework"
	"mgs/internal/harness"
	"mgs/internal/msg"
	"mgs/internal/sim"
)

// Thousand-processor scale experiments (the DSSMP scaling question the
// paper's 32-processor machine could not ask): the §2.4 performance
// framework evaluated at P = 256 and P = 1024 on the tiered LAN/WAN
// topology, with the Server's directory footprint measured alongside —
// the hierarchical coarse-vector directory keeps it O(sharers) per page
// instead of O(SSMPs), which is what makes these machine sizes
// simulable at all.

// ScalePoint is one cluster size of a scale sweep.
type ScalePoint struct {
	C        int
	Cycles   sim.Time
	LinkWait int64
	Dir      core.DirectoryStats
}

// ScaleClusterSizes returns the cluster sizes the framework metrics
// need at fixed P: C = 1, the geometric middle of the software region,
// P/2, and P — the minimum set framework.Analyze accepts, kept sparse
// because every point is a full P-processor simulation.
func ScaleClusterSizes(p int) []int {
	mid := 1
	for mid*mid < p/2 {
		mid *= 2
	}
	cs := []int{1}
	for _, c := range []int{mid, p / 2, p} {
		if c > cs[len(cs)-1] {
			cs = append(cs, c)
		}
	}
	return cs
}

// ScaleApp returns the named app sized so a P-processor machine has one
// natural unit of work per processor (Jacobi rows, MatMul rows, Water
// molecules...). The fixed SmallApp sizes would leave almost every
// processor of a 1024-processor machine idle at the barriers.
func ScaleApp(name string, p int) harness.App {
	switch name {
	case "jacobi":
		return &apps.Jacobi{N: p + 2, Iters: 1}
	case "matmul":
		return &apps.MatMul{N: p}
	case "water":
		return &apps.Water{N: p, Iters: 1}
	case "barnes-hut", "barnes":
		return &apps.BarnesHut{NBodies: p, Iters: 1, Theta: 0.6}
	}
	panic(fmt.Sprintf("exp: no scale sizing for app %q", name))
}

// ScaleSweep runs the named app at fixed P across the given cluster
// sizes on topo (nil = the uniform LAN), returning the per-point
// results — cycles, link-wait, directory footprint — and the framework
// metrics (breakup penalty, multigrain potential, curvature). Points
// run concurrently under harness.SweepWorkers; contended topologies
// force each point onto the sequential event dispatcher, so the sweep
// is the only parallelism at scale.
func ScaleSweep(name string, p int, topo msg.Topology, cs []int) ([]ScalePoint, framework.Metrics, error) {
	out := make([]ScalePoint, len(cs))
	errs := harness.RunIndexed(len(cs), func(i int) error {
		opts := []harness.Option{}
		if topo != nil {
			opts = append(opts, harness.WithTopology(topo))
		}
		res, err := harness.RunApp(ScaleApp(name, p), Config(p, cs[i], opts...))
		if err != nil {
			return fmt.Errorf("scale %s P=%d C=%d: %w", name, p, cs[i], err)
		}
		out[i] = ScalePoint{C: cs[i], Cycles: res.Cycles, LinkWait: res.LinkWait, Dir: res.Dir}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return nil, framework.Metrics{}, err
		}
	}
	var fp []framework.Point
	for _, pt := range out {
		fp = append(fp, framework.Point{C: pt.C, Time: float64(pt.Cycles)})
	}
	return out, framework.Analyze(fp), nil
}

// ScaleCSVHeader is ScaleCSV's column set.
var ScaleCSVHeader = []string{
	"app", "topology", "p", "c", "cycles", "link_wait",
	"dir_pages", "dir_rmt_entries", "dir_coarse_pages", "dir_bytes",
}

// ScaleCSV renders a scale sweep, one row per cluster size.
func ScaleCSV(name, topology string, p int, points []ScalePoint) string {
	var b strings.Builder
	b.WriteString(strings.Join(ScaleCSVHeader, ","))
	b.WriteByte('\n')
	for _, pt := range points {
		fmt.Fprintf(&b, "%s,%s,%d,%d,%d,%d,%d,%d,%d,%d\n",
			name, topology, p, pt.C, pt.Cycles, pt.LinkWait,
			pt.Dir.Pages, pt.Dir.RmtEntries, pt.Dir.CoarsePages, pt.Dir.Bytes)
	}
	return b.String()
}
