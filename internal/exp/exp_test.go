package exp

import (
	"testing"

	"mgs/internal/framework"
	"mgs/internal/harness"
	"mgs/internal/stats"
)

func TestTable3RunsAndIsOrdered(t *testing.T) {
	mi := Table3()
	if mi.ReadMiss <= mi.TLBFill {
		t.Errorf("read miss (%d) should exceed TLB fill (%d)", mi.ReadMiss, mi.TLBFill)
	}
	if mi.WriteMiss <= mi.ReadMiss {
		t.Errorf("write miss (%d) should exceed read miss (%d)", mi.WriteMiss, mi.ReadMiss)
	}
}

func TestTable4Small(t *testing.T) {
	rows, err := Table4(4, SmallApp)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(AppNames) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Speedup <= 0 {
			t.Errorf("%s: speedup %v", r.App, r.Speedup)
		}
		// The regular apps must gain from 4 tightly-coupled processors.
		if r.App != "tsp" && r.Speedup < 1.5 {
			t.Errorf("%s: speedup %.2f on 4 procs, want >= 1.5", r.App, r.Speedup)
		}
	}
}

func TestFigureSweepSmall(t *testing.T) {
	points, m, err := FigureSweep("jacobi", 4, SmallApp)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 { // C = 1, 2, 4
		t.Fatalf("got %d points", len(points))
	}
	if m.BreakupPenalty < 0 {
		t.Errorf("negative breakup penalty %v", m.BreakupPenalty)
	}
	// Software DSM at C=1 cannot be faster than pure hardware at C=P.
	if points[0].Res.Cycles < points[2].Res.Cycles {
		t.Errorf("C=1 (%d) faster than C=P (%d)?", points[0].Res.Cycles, points[2].Res.Cycles)
	}
}

func TestLockHitSweepSmall(t *testing.T) {
	out, err := LockHitSweep([]string{"water"}, 4, SmallApp)
	if err != nil {
		t.Fatal(err)
	}
	pts := out["water"]
	if len(pts) != 2 { // C = 1, 2
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.Ratio < 0 || p.Ratio > 1 {
			t.Errorf("C=%d ratio %v out of range", p.C, p.Ratio)
		}
	}
	// Hit ratio must grow with cluster size (Figure 11's headline).
	if pts[1].Ratio < pts[0].Ratio {
		t.Errorf("hit ratio fell with cluster size: %v", pts)
	}
}

func TestFig12Small(t *testing.T) {
	plain, tiled, err := Fig12(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	// At C=1 the tiled kernel must win big (perfect multigrain
	// locality vs lock-churning page coherence).
	if tiled[0].Res.Cycles*2 > plain[0].Res.Cycles {
		t.Errorf("tiled C=1 (%d) not at least 2x faster than plain (%d)",
			tiled[0].Res.Cycles, plain[0].Res.Cycles)
	}
}

func TestAblationSingleWriterSmall(t *testing.T) {
	on, off, err := AblationSingleWriter("water", 4, SmallApp)
	if err != nil {
		t.Fatal(err)
	}
	if len(on) != len(off) {
		t.Fatalf("point count mismatch")
	}
}

func TestAblationPageSizeSmall(t *testing.T) {
	pts, err := AblationPageSize("jacobi", 4, 2, []int{512, 1024, 2048}, SmallApp)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
}

func TestNewAppCoversAll(t *testing.T) {
	for _, n := range append(append([]string{}, AppNames...), "water-kernel", "water-kernel-tiled") {
		if NewApp(n) == nil || SmallApp(n) == nil {
			t.Fatalf("app %q missing", n)
		}
	}
}

var _ harness.App = (*nilApp)(nil)

type nilApp struct{}

func (*nilApp) Name() string                  { return "" }
func (*nilApp) Setup(*harness.Machine)        {}
func (*nilApp) Body(*harness.Ctx)             {}
func (*nilApp) Verify(*harness.Machine) error { return nil }

func TestAblationSerialInvSmall(t *testing.T) {
	serial, par, err := AblationSerialInv("water", 4, SmallApp)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(par) || len(serial) != 2 {
		t.Fatalf("point counts = %d/%d, want 2/2", len(serial), len(par))
	}
	for i := range serial {
		// Serializing invalidations can never beat overlapping them.
		if serial[i].Res.Cycles < par[i].Res.Cycles {
			t.Errorf("C=%d: serial (%d) faster than parallel (%d)",
				serial[i].C, serial[i].Res.Cycles, par[i].Res.Cycles)
		}
	}
}

func TestAblationUpdateProtocolSmall(t *testing.T) {
	inval, update, err := AblationUpdateProtocol("water", 4, SmallApp)
	if err != nil {
		t.Fatal(err)
	}
	if len(inval) != len(update) {
		t.Fatal("point count mismatch")
	}
	for i := range inval {
		if update[i].Res.Cycles <= 0 || inval[i].Res.Cycles <= 0 {
			t.Fatalf("C=%d: zero-cycle run", inval[i].C)
		}
	}
}

func TestAblationMeshSmall(t *testing.T) {
	uniform, mesh, err := AblationMesh("jacobi", 4, 250, SmallApp)
	if err != nil {
		t.Fatal(err)
	}
	if len(uniform) != len(mesh) || len(uniform) != 2 {
		t.Fatalf("point counts = %d/%d, want 2/2", len(uniform), len(mesh))
	}
	for i := range uniform {
		if mesh[i].Res.Cycles == uniform[i].Res.Cycles {
			t.Errorf("C=%d: mesh timing identical to uniform (%d); topology had no effect",
				mesh[i].C, mesh[i].Res.Cycles)
		}
	}
}

func TestFrameworkPointsMatchSweep(t *testing.T) {
	points, _, err := FigureSweep("matmul", 4, SmallApp)
	if err != nil {
		t.Fatal(err)
	}
	fp := FrameworkPoints(points)
	if len(fp) != len(points) {
		t.Fatalf("framework points = %d, sweep points = %d", len(fp), len(points))
	}
	for i := range fp {
		if fp[i].C != points[i].C || fp[i].Time != float64(points[i].Res.Cycles) {
			t.Fatalf("point %d mismatch: %+v vs %+v", i, fp[i], points[i])
		}
	}
}

func TestUnknownAppPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewApp of unknown name did not panic")
		}
	}()
	NewApp("no-such-app")
}

func TestAblationLazySmall(t *testing.T) {
	eager, lazy, err := AblationLazy("water", 4, SmallApp)
	if err != nil {
		t.Fatal(err)
	}
	if len(eager) != len(lazy) || len(eager) != 2 {
		t.Fatalf("point counts = %d/%d, want 2/2", len(eager), len(lazy))
	}
	// Water's migratory locking is lazy's best case: it must win at C=1.
	if lazy[0].Res.Cycles >= eager[0].Res.Cycles {
		t.Errorf("C=1: lazy (%d) not faster than eager (%d)",
			lazy[0].Res.Cycles, eager[0].Res.Cycles)
	}
}

// TestHeadlineShapes pins the qualitative results the reproduction is
// about, at test scale (P=8, reduced inputs) with comfortable margins:
// which applications suffer crossing the hardware/software boundary,
// which run flat, and which runtime component dominates where. If a
// protocol change breaks one of the paper's figure shapes, this fails
// before any benchmark is run.
func TestHeadlineShapes(t *testing.T) {
	const p = 8
	sweepFor := func(name string) ([]harness.SweepPoint, framework.Metrics) {
		points, m, err := FigureSweep(name, p, SmallApp)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return points, m
	}
	frac := func(pt harness.SweepPoint, cat stats.Category) float64 {
		return pt.Res.Breakdown.Avg[cat] / pt.Res.Breakdown.AvgTotal()
	}

	// Water (Figure 9): big breakup penalty, high multigrain potential,
	// synchronization + protocol dominated at C=1, monotone improvement.
	water, wm := sweepFor("water")
	if ratio := float64(water[0].Res.Cycles) / float64(water[len(water)-1].Res.Cycles); ratio < 3 {
		t.Errorf("water C1/CP = %.2f, want > 3 (large breakup penalty)", ratio)
	}
	if wm.MultigrainPotential < 0.5 {
		t.Errorf("water potential = %.2f, want > 0.5", wm.MultigrainPotential)
	}
	sync1 := frac(water[0], stats.Lock) + frac(water[0], stats.Barrier) + frac(water[0], stats.MGS)
	if sync1 < 0.6 {
		t.Errorf("water C=1 sync+MGS fraction = %.2f, want > 0.6", sync1)
	}
	for i := 1; i < len(water); i++ {
		if water[i].Res.Cycles > water[i-1].Res.Cycles {
			t.Errorf("water not monotone: C=%d (%d) > C=%d (%d)",
				water[i].C, water[i].Res.Cycles, water[i-1].C, water[i-1].Res.Cycles)
		}
	}

	// Matrix multiply (Figure 7): flat across the software region.
	matmul, _ := sweepFor("matmul")
	if ratio := float64(matmul[0].Res.Cycles) / float64(matmul[len(matmul)-1].Res.Cycles); ratio > 1.5 {
		t.Errorf("matmul C1/CP = %.2f, want < 1.5 (flat curve)", ratio)
	}

	// TSP (Figure 8): lock time is a major component at C=1 (the
	// centralized work queue's critical-section dilation).
	tsp, _ := sweepFor("tsp")
	if lf := frac(tsp[0], stats.Lock); lf < 0.3 {
		t.Errorf("tsp C=1 lock fraction = %.2f, want > 0.3", lf)
	}

	// Barnes-Hut (Figure 10): MGS protocol time dominates at C=1.
	barnes, _ := sweepFor("barnes-hut")
	if mf := frac(barnes[0], stats.MGS); mf < 0.4 {
		t.Errorf("barnes-hut C=1 MGS fraction = %.2f, want > 0.4", mf)
	}
}

// TestDeterministicReplay re-runs identical configurations and requires
// bit-identical results — cycles, breakdown, lock stats, counters. The
// engine's determinism claim (README) is enforced here end to end, for
// the eager default, the lazy extension, and a jittered run (jitter
// must shuffle orders deterministically, not randomly).
func TestDeterministicReplay(t *testing.T) {
	variants := []struct {
		name string
		mut  func(*harness.Config)
	}{
		{"eager", func(*harness.Config) {}},
		{"lazy", func(c *harness.Config) { c.Protocol.LazyRelease = true }},
		{"jitter", func(c *harness.Config) { c.Msg.Jitter = 1200; c.Msg.JitterSeed = 5 }},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			run := func() harness.Result {
				cfg := Config(8, 2)
				v.mut(&cfg)
				res, err := harness.RunApp(SmallApp("water"), cfg)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			a, b := run(), run()
			if a.Cycles != b.Cycles {
				t.Fatalf("cycles differ across identical runs: %d vs %d", a.Cycles, b.Cycles)
			}
			if a.LockHits != b.LockHits || a.LockTotal != b.LockTotal {
				t.Fatalf("lock stats differ: %d/%d vs %d/%d", a.LockHits, a.LockTotal, b.LockHits, b.LockTotal)
			}
			if a.InterMsgs != b.InterMsgs || a.InterBytes != b.InterBytes {
				t.Fatalf("traffic differs: %d/%d vs %d/%d", a.InterMsgs, a.InterBytes, b.InterMsgs, b.InterBytes)
			}
			if len(a.Counters) != len(b.Counters) {
				t.Fatalf("counter sets differ: %d vs %d", len(a.Counters), len(b.Counters))
			}
			for i := range a.Counters {
				if a.Counters[i] != b.Counters[i] {
					t.Fatalf("counter %q vs %q", a.Counters[i], b.Counters[i])
				}
			}
			for i := range a.Breakdown.PerProc {
				if a.Breakdown.PerProc[i] != b.Breakdown.PerProc[i] {
					t.Fatalf("proc %d breakdown differs", i)
				}
			}
		})
	}
}
