package exp

import (
	"math/rand"
	"testing"

	"mgs/internal/fault"
	"mgs/internal/harness"
	"mgs/internal/msg"

	"mgs/internal/vm"
)

// TestProtocolConformance runs one deterministic, data-race-free random
// workload under every protocol variant — invalidate, update, no
// single-writer, serial and parallel invalidations, message jitter,
// home migration — and requires the final shared-memory contents to be
// bit-identical across all of them. Timing may differ arbitrarily;
// answers may not.
func TestProtocolConformance(t *testing.T) {
	variants := []struct {
		name string
		mut  func(*harness.Config)
	}{
		{"default", func(*harness.Config) {}},
		{"no-singlewriter", func(c *harness.Config) { c.Protocol.SingleWriter = false }},
		{"parallel-inv", func(c *harness.Config) { c.Protocol.SerialInv = false }},
		{"update", func(c *harness.Config) { c.Protocol.UpdateProtocol = true }},
		{"jitter", func(c *harness.Config) { c.Msg.Jitter = 2000; c.Msg.JitterSeed = 11 }},
		{"update-jitter", func(c *harness.Config) {
			c.Protocol.UpdateProtocol = true
			c.Msg.Jitter = 2000
			c.Msg.JitterSeed = 12
		}},
		{"migration", func(c *harness.Config) { c.Protocol.MigrateAfter = 3 }},
		{"lazy", func(c *harness.Config) { c.Protocol.LazyRelease = true }},
		{"lazy-jitter", func(c *harness.Config) {
			c.Protocol.LazyRelease = true
			c.Msg.Jitter = 2000
			c.Msg.JitterSeed = 17
		}},
		{"mesh", func(c *harness.Config) { c.Msg.Topology = msg.NewMesh2D(); c.Msg.InterPerHop = 250 }},
		{"mesh-jitter", func(c *harness.Config) {
			c.Msg.Topology = msg.NewMesh2D()
			c.Msg.InterPerHop = 400
			c.Msg.Jitter = 1500
			c.Msg.JitterSeed = 13
		}},
		{"pagesize-512", func(c *harness.Config) { c.PageSize = 512 }},
		{"pagesize-2048", func(c *harness.Config) { c.PageSize = 2048 }},
	}

	run := func(mut func(*harness.Config)) []uint64 { return conformanceRun(t, mut) }

	ref := run(variants[0].mut)
	for _, v := range variants[1:] {
		got := run(v.mut)
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("%s: word %d = %#x, default = %#x", v.name, i, got[i], ref[i])
				break
			}
		}
	}
}

// conformanceRun executes the shared random conformance workload (P=8,
// C=2, data-race-free slot writes plus a lock-protected counter) on a
// machine mutated by mut and returns the final shared-memory words.
func conformanceRun(t *testing.T, mut func(*harness.Config)) []uint64 {
	t.Helper()
	const p, c, npages, slots, steps = 8, 2, 4, 8, 50
	cfg := Config(p, c)
	mut(&cfg)
	m := harness.NewMachine(cfg)
	base := m.DSM.Space().AllocPages(npages * 4096) // independent of page size
	slotVA := func(proc, slot int) vm.Addr {
		return base + vm.Addr((slot*p+proc)*8)
	}
	_, err := m.Run(func(ctx *harness.Ctx) {
		rng := rand.New(rand.NewSource(int64(1000 + ctx.ID)))
		for s := 0; s < steps; s++ {
			slot := rng.Intn(slots)
			v := rng.Uint64()
			// Own slots only (DRF); occasional reads of others'.
			ctx.StoreI64(slotVA(ctx.ID, slot), int64(v))
			if rng.Intn(4) == 0 {
				ctx.Fence()
			}
			if rng.Intn(3) == 0 {
				ctx.LoadI64(slotVA(rng.Intn(p), rng.Intn(slots)))
			}
			if rng.Intn(9) == 0 {
				ctx.Acquire(5)
				ctx.StoreI64(base+vm.Addr(npages*4096-8),
					ctx.LoadI64(base+vm.Addr(npages*4096-8))+1)
				ctx.Release(5)
			}
		}
		ctx.Barrier(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	var out []uint64
	for proc := 0; proc < p; proc++ {
		for slot := 0; slot < slots; slot++ {
			out = append(out, m.DSM.BackdoorLoad64(slotVA(proc, slot)))
		}
	}
	out = append(out, m.DSM.BackdoorLoad64(base+vm.Addr(npages*4096-8)))
	return out
}

// TestConformanceFaultCrossProduct crosses the main protocol variants
// with fault injection: default, update, and lazy-release protocols each
// run fault-free and under a 5% message-drop plan (the reliable
// transport retransmits), and all six final memory images must be
// bit-identical. This closes the gap between the conformance suite
// (variants, no faults) and the chaos suite (faults, default variant
// only): faults may change when the protocol acts, never what memory
// holds — regardless of which variant is running. The same machinery
// backs ZeroFaultEquivalence; here the attached plan is hostile instead
// of empty.
func TestConformanceFaultCrossProduct(t *testing.T) {
	protocols := []struct {
		name string
		mut  func(*harness.Config)
	}{
		{"default", func(*harness.Config) {}},
		{"update", func(c *harness.Config) { c.Protocol.UpdateProtocol = true }},
		{"lazy", func(c *harness.Config) { c.Protocol.LazyRelease = true }},
	}
	plans := []struct {
		name string
		plan fault.Plan
	}{
		{"no-fault", fault.Plan{}},
		{"drop5", fault.Plan{Seed: 42, DropBP: 500}},
	}

	ref := conformanceRun(t, protocols[0].mut)
	for _, pr := range protocols {
		for _, pl := range plans {
			pr, pl := pr, pl
			t.Run(pr.name+"/"+pl.name, func(t *testing.T) {
				got := conformanceRun(t, func(c *harness.Config) {
					pr.mut(c)
					c.Fault = pl.plan
				})
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("word %d = %#x, fault-free default = %#x", i, got[i], ref[i])
					}
				}
			})
		}
	}
}
