package exp

import (
	"bytes"
	"fmt"
	"strings"

	"mgs/internal/apps"
	"mgs/internal/fault"
	"mgs/internal/harness"
	"mgs/internal/obs"
	"mgs/internal/serve"
	"mgs/internal/stats"
)

// Serving-workload experiments: the online store (internal/serve) under
// the open-loop traffic schedule, measured by tail latency per phase
// instead of completion time. The headline experiment is ServeTailSweep:
// how the p99/p999 latency of the same offered traffic degrades as the
// machine is partitioned into more clusters (more shard-lock and page
// traffic crossing the software layer), and how much further a lossy
// interconnect fattens the tail — while the final memory image stays
// byte-identical to the fault-free run.

// ServeRun runs the serving app on a P=p, C=c machine under the given
// workload and fault plan (empty plan = fault-free), returning the
// latency report and the final shared-memory image.
func ServeRun(w serve.Workload, p, c int, plan fault.Plan, slo serve.SLO) (serve.Report, []byte, error) {
	app := apps.NewServe(w)
	cfg := Config(p, c)
	cfg.Fault = plan
	res, mem, err := harness.RunAppMem(app, cfg)
	if err != nil {
		return serve.Report{}, nil, err
	}
	return app.Report(res, slo), mem, nil
}

// ServeRunBreakdown is ServeRun with the cycle-attribution profiler
// armed: the returned report carries a CostBreakdown splitting the
// run's cycles into user compute, shard-lock wait, barrier wait, MGS
// protocol work, and transport-fault recovery, plus the per-lock heat
// ranking (mgs-serve -breakdown).
func ServeRunBreakdown(w serve.Workload, p, c int, plan fault.Plan, slo serve.SLO) (serve.Report, []byte, error) {
	app := apps.NewServe(w)
	o := obs.New().EnableProfiling()
	cfg := Config(p, c, harness.WithObserver(o))
	cfg.Fault = plan
	res, mem, err := harness.RunAppMem(app, cfg)
	if err != nil {
		return serve.Report{}, nil, err
	}
	rep := app.Report(res, slo)
	bd := &serve.CostBreakdown{TransportCycles: res.Fault.RecoveryCycles}
	for _, row := range o.Profiler().Totals() {
		bd.UserCycles += int64(row[stats.User])
		bd.LockCycles += int64(row[stats.Lock])
		bd.BarrierCycles += int64(row[stats.Barrier])
		bd.ProtocolCycles += int64(row[stats.MGS])
	}
	if rep.Requests > 0 {
		bd.PerRequestCycles = float64(bd.LockCycles+bd.BarrierCycles+
			bd.ProtocolCycles+bd.TransportCycles) / float64(rep.Requests)
	}
	for i, h := range o.Profiler().Heat(obs.ObjLock) {
		if i == 5 {
			break
		}
		bd.HotLocks = append(bd.HotLocks, serve.HotLock{ID: h.ID, Cycles: int64(h.Cycles)})
	}
	rep.Breakdown = bd
	return rep, mem, nil
}

// ServeChaosPlan is the serving experiments' fault schedule: 5% message
// loss (the ISSUE's operating envelope ceiling), no duplication or
// delay, so the tail movement is attributable to retransmission alone.
func ServeChaosPlan(seed uint64) fault.Plan {
	return fault.Plan{Seed: seed, DropBP: 500}
}

// ServeTailPoint is one cluster size of the tail-latency sweep:
// fault-free and 5%-loss columns for the same workload, plus the
// memory-equivalence verdict between them.
type ServeTailPoint struct {
	C     int
	Clean serve.Report
	Chaos serve.Report
	// MemOK reports that the chaos run's final memory was byte-identical
	// to the fault-free run at the same C.
	MemOK bool
}

// ServeTailSweep runs the workload at every power-of-two cluster size up
// to p, fault-free and under ServeChaosPlan, concurrently
// (harness.SweepWorkers wide; results are independent of the width).
func ServeTailSweep(w serve.Workload, p int, slo serve.SLO) ([]ServeTailPoint, error) {
	cs := harness.PowersOfTwo(p)
	type cell struct {
		rep serve.Report
		mem []byte
	}
	cells := make([]cell, 2*len(cs)) // [2k] fault-free, [2k+1] chaos
	errs := harness.RunIndexed(len(cells), func(i int) error {
		c, chaos := cs[i/2], i%2 == 1
		var plan fault.Plan
		if chaos {
			plan = ServeChaosPlan(w.Seed)
		}
		rep, mem, err := ServeRun(w, p, c, plan, slo)
		if err != nil {
			return fmt.Errorf("serve sweep C=%d chaos=%t: %w", c, chaos, err)
		}
		cells[i] = cell{rep, mem}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	points := make([]ServeTailPoint, len(cs))
	for k, c := range cs {
		clean, ch := cells[2*k], cells[2*k+1]
		points[k] = ServeTailPoint{
			C: c, Clean: clean.rep, Chaos: ch.rep,
			MemOK: bytes.Equal(clean.mem, ch.mem),
		}
	}
	return points, nil
}

// ServeTailCSVHeader is the sweep render's column set.
var ServeTailCSVHeader = []string{
	"p", "c", "variant", "phase", "count",
	"mean_cycles", "p50_cycles", "p99_cycles", "p999_cycles",
	"dropped_msgs", "retransmits", "mem_ok",
}

// ServeTailCSV renders the sweep, one row per (cluster size, variant,
// phase), floats in %.1f so the output is bit-stable.
func ServeTailCSV(points []ServeTailPoint) string {
	var b strings.Builder
	b.WriteString(strings.Join(ServeTailCSVHeader, ","))
	b.WriteByte('\n')
	row := func(pt ServeTailPoint, variant string, rep serve.Report) {
		for _, ps := range rep.Phases {
			fmt.Fprintf(&b, "%d,%d,%s,%s,%d,%.1f,%.1f,%.1f,%.1f,%d,%d,%t\n",
				rep.P, pt.C, variant, ps.Phase, ps.Count,
				ps.Mean, ps.P50, ps.P99, ps.P999,
				rep.Dropped, rep.Retransmit, pt.MemOK)
		}
	}
	for _, pt := range points {
		row(pt, "clean", pt.Clean)
		row(pt, "chaos", pt.Chaos)
	}
	return b.String()
}
