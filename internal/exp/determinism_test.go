package exp

import (
	"reflect"
	"testing"

	"mgs/internal/harness"
)

// The sweeps must be bit-for-bit reproducible: rerunning a sweep gives
// identical per-point cycle counts and breakdowns, and running points
// concurrently gives exactly what the sequential loop gives. Anything
// less means host-side scheduling leaked into simulated time.

func TestFigureSweepReproducible(t *testing.T) {
	a, ma, err := FigureSweep("jacobi", 8, SmallApp)
	if err != nil {
		t.Fatal(err)
	}
	b, mb, err := FigureSweep("jacobi", 8, SmallApp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sweep not reproducible:\nrun1 %+v\nrun2 %+v", a, b)
	}
	if !reflect.DeepEqual(ma, mb) {
		t.Fatalf("framework metrics not reproducible: %+v vs %+v", ma, mb)
	}
}

func TestParallelSweepMatchesSequential(t *testing.T) {
	mk := func() harness.App { return SmallApp("water") }
	cfgFor := func(c int) harness.Config { return Config(8, c) }
	cs := harness.PowersOfTwo(8)

	seq, err := harness.SweepSeq(mk, 8, cs, cfgFor)
	if err != nil {
		t.Fatal(err)
	}

	old := harness.SweepWorkers
	harness.SweepWorkers = 4
	defer func() { harness.SweepWorkers = old }()
	par, err := harness.Sweep(mk, 8, cs, cfgFor)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel sweep diverges from sequential:\nseq %+v\npar %+v", seq, par)
	}
}

// TestSweepWorkerCountInvariance pins the worker-pool contract that
// nogoroutine's allow annotation in harness/parallel.go relies on: the
// pool's output is a pure function of the inputs, identical for any
// worker count. Run under -race (CI does) it also exercises the pool
// for data races at several fan-out widths.
func TestSweepWorkerCountInvariance(t *testing.T) {
	mk := func() harness.App { return SmallApp("water") }
	cfgFor := func(c int) harness.Config { return Config(8, c) }
	cs := harness.PowersOfTwo(8)

	old := harness.SweepWorkers
	defer func() { harness.SweepWorkers = old }()

	var base []harness.SweepPoint
	for _, w := range []int{1, 4, 16} {
		harness.SweepWorkers = w
		got, err := harness.Sweep(mk, 8, cs, cfgFor)
		if err != nil {
			t.Fatalf("SweepWorkers=%d: %v", w, err)
		}
		if base == nil {
			base = got
			continue
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("sweep output depends on worker count:\nworkers=1  %+v\nworkers=%d %+v", base, w, got)
		}
	}
}

func TestTable4Reproducible(t *testing.T) {
	old := harness.SweepWorkers
	harness.SweepWorkers = 4
	defer func() { harness.SweepWorkers = old }()
	a, err := Table4(4, SmallApp)
	if err != nil {
		t.Fatal(err)
	}
	harness.SweepWorkers = 1
	b, err := Table4(4, SmallApp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Table 4 depends on worker count:\npar %+v\nseq %+v", a, b)
	}
}
