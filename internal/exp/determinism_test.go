package exp

import (
	"reflect"
	"testing"

	"mgs/internal/harness"
)

// The sweeps must be bit-for-bit reproducible: rerunning a sweep gives
// identical per-point cycle counts and breakdowns, and running points
// concurrently gives exactly what the sequential loop gives. Anything
// less means host-side scheduling leaked into simulated time.

func TestFigureSweepReproducible(t *testing.T) {
	a, ma, err := FigureSweep("jacobi", 8, SmallApp)
	if err != nil {
		t.Fatal(err)
	}
	b, mb, err := FigureSweep("jacobi", 8, SmallApp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sweep not reproducible:\nrun1 %+v\nrun2 %+v", a, b)
	}
	if !reflect.DeepEqual(ma, mb) {
		t.Fatalf("framework metrics not reproducible: %+v vs %+v", ma, mb)
	}
}

func TestParallelSweepMatchesSequential(t *testing.T) {
	mk := func() harness.App { return SmallApp("water") }
	cfgFor := func(c int) harness.Config { return Config(8, c) }
	cs := harness.PowersOfTwo(8)

	seq, err := harness.SweepSeq(mk, 8, cs, cfgFor)
	if err != nil {
		t.Fatal(err)
	}

	old := harness.SweepWorkers
	harness.SweepWorkers = 4
	defer func() { harness.SweepWorkers = old }()
	par, err := harness.Sweep(mk, 8, cs, cfgFor)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel sweep diverges from sequential:\nseq %+v\npar %+v", seq, par)
	}
}

func TestTable4Reproducible(t *testing.T) {
	old := harness.SweepWorkers
	harness.SweepWorkers = 4
	defer func() { harness.SweepWorkers = old }()
	a, err := Table4(4, SmallApp)
	if err != nil {
		t.Fatal(err)
	}
	harness.SweepWorkers = 1
	b, err := Table4(4, SmallApp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Table 4 depends on worker count:\npar %+v\nseq %+v", a, b)
	}
}
