package exp

import (
	"testing"

	"mgs/internal/harness"
	"mgs/internal/sim"
	"mgs/internal/vm"
)

// TestLockedCounterShadow is a protocol torture test distilled from the
// histogram example: many counters packed on one page, each protected
// by its own MGS lock, hammered from every processor. Each locked
// read-modify-write is shadow-checked: the read must equal the last
// value written under that lock, so any stale read or lost merge fails
// immediately and deterministically.
func TestLockedCounterShadow(t *testing.T) {
	shapes := []struct{ p, c int }{{4, 2}, {8, 2}, {8, 4}, {16, 4}}
	for _, sh := range shapes {
		sh := sh
		t.Run("", func(t *testing.T) {
			const buckets = 32
			cfg := Config(sh.p, sh.c)
			m := harness.NewMachine(cfg)
			bins := m.DSM.Space().AllocPages(buckets * 8)
			shadow := make([]int64, buckets)
			_, err := m.Run(func(c *harness.Ctx) {
				for step := 0; step < 120; step++ {
					b := (step*7 + c.ID*13) % buckets
					addr := bins + vm.Addr(b*8)
					c.Acquire(1 + b)
					got := c.LoadI64(addr)
					if got != shadow[b] {
						t.Errorf("P=%d C=%d clk=%d proc=%d bucket %d: read %d, shadow %d",
							sh.p, sh.c, c.Clock(), c.ID, b, got, shadow[b])
					}
					shadow[b] = got + 1
					c.StoreI64(addr, got+1)
					c.Release(1 + b)
					c.Compute(50)
				}
				c.Barrier(0)
			})
			if err != nil {
				t.Fatal(err)
			}
			for b := 0; b < buckets; b++ {
				if got := m.DSM.BackdoorLoad64(bins + vm.Addr(b*8)); int64(got) != shadow[b] {
					t.Errorf("P=%d C=%d bucket %d home = %d, shadow %d", sh.p, sh.c, b, got, shadow[b])
				}
			}
		})
	}
}

// TestHistogramShadow replays the customapp example's failing shape
// with shadow checks on every locked update.
func TestHistogramShadow(t *testing.T) {
	const items, buckets, p, c = 2048, 32, 8, 2
	cfg := Config(p, c)
	m := harness.NewMachine(cfg)
	val := func(i int) int64 { return int64((i*2654435761 + 12345) % 997) }
	data := m.DSM.Space().AllocPages(items * 8)
	for i := 0; i < items; i++ {
		m.DSM.BackdoorStore64(data+vm.Addr(i*8), uint64(val(i)))
	}
	bins := m.DSM.Space().AllocPages(buckets * 8)
	shadow := make([]int64, buckets)
	_, err := m.Run(func(ctx *harness.Ctx) {
		per := items / ctx.NProcs
		lo := ctx.ID * per
		for i := lo; i < lo+per; i++ {
			v := ctx.LoadI64(data + vm.Addr(i*8))
			b := int(v) * buckets / 997
			addr := bins + vm.Addr(b*8)
			ctx.Acquire(1 + b)
			got := ctx.LoadI64(addr)
			if got != shadow[b] {
				t.Errorf("clk=%d proc=%d bucket %d: read %d shadow %d", ctx.Clock(), ctx.ID, b, got, shadow[b])
			}
			shadow[b] = got + 1
			ctx.StoreI64(addr, got+1)
			ctx.Release(1 + b)
		}
		ctx.Barrier(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < buckets; b++ {
		if got := int64(m.DSM.BackdoorLoad64(bins + vm.Addr(b*8))); got != shadow[b] {
			t.Errorf("bucket %d home=%d shadow=%d", b, got, shadow[b])
		}
	}
}

// TestJitterTorture runs the app suite's two sharpest bug-finders under
// deterministic message jitter: arrival orders shuffle per seed, so
// protocol ordering assumptions that survive the default timing get
// hammered from many angles. Every seed must still verify.
func TestJitterTorture(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := uint64(1); seed <= 8; seed++ {
		cfg := Config(8, 2)
		cfg.Msg.Jitter = 3000
		cfg.Msg.JitterSeed = seed
		if _, err := harness.RunApp(SmallApp("water"), cfg); err != nil {
			t.Errorf("water seed %d: %v", seed, err)
		}
		cfg2 := Config(8, 4)
		cfg2.Msg.Jitter = 3000
		cfg2.Msg.JitterSeed = seed
		if _, err := harness.RunApp(SmallApp("water-kernel"), cfg2); err != nil {
			t.Errorf("water-kernel seed %d: %v", seed, err)
		}
	}
}

// TestJitterLockedCounters runs the locked-counter torture under jitter.
func TestJitterLockedCounters(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		const buckets = 16
		cfg := Config(8, 2)
		cfg.Msg.Jitter = 2500
		cfg.Msg.JitterSeed = seed
		m := harness.NewMachine(cfg)
		bins := m.DSM.Space().AllocPages(buckets * 8)
		shadow := make([]int64, buckets)
		_, err := m.Run(func(c *harness.Ctx) {
			for step := 0; step < 60; step++ {
				b := (step*5 + c.ID*3) % buckets
				addr := bins + vm.Addr(b*8)
				c.Acquire(1 + b)
				got := c.LoadI64(addr)
				if got != shadow[b] {
					t.Errorf("seed %d clk=%d proc=%d bucket %d: read %d shadow %d", seed, c.Clock(), c.ID, b, got, shadow[b])
				}
				shadow[b] = got + 1
				c.StoreI64(addr, got+1)
				c.Release(1 + b)
				c.Compute(40)
			}
			c.Barrier(0)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestUpdateProtocolCorrectness runs the sharpest workloads under the
// update-based protocol variant: apps must still verify, and locked
// counters must never read stale values, with and without jitter.
func TestUpdateProtocolCorrectness(t *testing.T) {
	upd := func(p, c int, jitter int64) harness.Config {
		cfg := Config(p, c)
		cfg.Protocol.UpdateProtocol = true
		cfg.Msg.Jitter = sim.Time(jitter)
		cfg.Msg.JitterSeed = 3
		return cfg
	}
	for _, sh := range []struct{ p, c int }{{4, 1}, {8, 2}, {8, 4}, {16, 4}} {
		if _, err := harness.RunApp(SmallApp("water"), upd(sh.p, sh.c, 0)); err != nil {
			t.Errorf("water P=%d C=%d: %v", sh.p, sh.c, err)
		}
		if _, err := harness.RunApp(SmallApp("water-kernel"), upd(sh.p, sh.c, 0)); err != nil {
			t.Errorf("water-kernel P=%d C=%d: %v", sh.p, sh.c, err)
		}
	}
	if _, err := harness.RunApp(SmallApp("barnes-hut"), upd(8, 2, 2000)); err != nil {
		t.Errorf("barnes-hut jitter: %v", err)
	}

	// Locked-counter shadow under the update protocol.
	const buckets = 16
	cfg := upd(8, 2, 1500)
	m := harness.NewMachine(cfg)
	bins := m.DSM.Space().AllocPages(buckets * 8)
	shadow := make([]int64, buckets)
	_, err := m.Run(func(c *harness.Ctx) {
		for step := 0; step < 80; step++ {
			b := (step*3 + c.ID*7) % buckets
			addr := bins + vm.Addr(b*8)
			c.Acquire(1 + b)
			got := c.LoadI64(addr)
			if got != shadow[b] {
				t.Errorf("clk=%d proc=%d bucket %d: read %d shadow %d", c.Clock(), c.ID, b, got, shadow[b])
			}
			shadow[b] = got + 1
			c.StoreI64(addr, got+1)
			c.Release(1 + b)
			c.Compute(60)
		}
		c.Barrier(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats.Counter("upd.refresh") == 0 {
		t.Fatal("update protocol never refreshed a copy")
	}
}

// TestLazyReleaseShadow runs the locked-counter torture test under lazy
// release consistency, with and without message jitter: every locked
// read must see the last value written under that lock even though
// releases no longer invalidate anything — the acquire-side write
// notices must do all the work.
func TestLazyReleaseShadow(t *testing.T) {
	shapes := []struct {
		p, c   int
		jitter sim.Time
	}{{4, 2, 0}, {8, 2, 0}, {8, 4, 0}, {8, 2, 1500}, {16, 4, 900}}
	for _, sh := range shapes {
		sh := sh
		t.Run("", func(t *testing.T) {
			const buckets = 24
			cfg := Config(sh.p, sh.c)
			cfg.Protocol.LazyRelease = true
			cfg.Msg.Jitter = sh.jitter
			cfg.Msg.JitterSeed = 23
			m := harness.NewMachine(cfg)
			bins := m.DSM.Space().AllocPages(buckets * 8)
			shadow := make([]int64, buckets)
			_, err := m.Run(func(c *harness.Ctx) {
				for step := 0; step < 100; step++ {
					b := (step*5 + c.ID*11) % buckets
					addr := bins + vm.Addr(b*8)
					c.Acquire(1 + b)
					got := c.LoadI64(addr)
					if got != shadow[b] {
						t.Errorf("P=%d C=%d j=%d clk=%d proc=%d bucket %d: read %d, shadow %d",
							sh.p, sh.c, sh.jitter, c.Clock(), c.ID, b, got, shadow[b])
					}
					shadow[b] = got + 1
					c.StoreI64(addr, got+1)
					c.Release(1 + b)
					c.Compute(50)
				}
				c.Barrier(0)
			})
			if err != nil {
				t.Fatal(err)
			}
			for b := 0; b < buckets; b++ {
				if got := m.DSM.BackdoorLoad64(bins + vm.Addr(b*8)); int64(got) != shadow[b] {
					t.Errorf("bucket %d home = %d, shadow %d", b, got, shadow[b])
				}
			}
		})
	}
}

// TestLazyAppsVerify runs every application under lazy release
// consistency; each verifies its numeric result against the host
// reference, so a single stale read that matters fails the run.
func TestLazyAppsVerify(t *testing.T) {
	for _, name := range append(append([]string{}, AppNames...), "water-kernel-tiled", "lu") {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := Config(8, 2)
			cfg.Protocol.LazyRelease = true
			if _, err := harness.RunApp(SmallApp(name), cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}
