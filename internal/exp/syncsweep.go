package exp

import (
	"bytes"
	"fmt"
	"strings"

	"mgs/internal/fault"
	"mgs/internal/harness"
	"mgs/internal/msync/algo"
	"mgs/internal/obs"
	"mgs/internal/sim"
)

// Synchronization-zoo sweep: run apps.SyncBench under every lock and
// barrier algorithm across cluster sizes and compare the metrics the
// ISSUE calls out — MGS lock hit ratio, critical-section dilation, and
// mean barrier wait — on fault-free runs and under a 5%-loss transport.
// The faulty column doubles as an end-to-end equivalence gate: its final
// memory must be byte-identical to the fault-free run's.

// SyncPair names one lock/barrier algorithm combination.
type SyncPair struct {
	Lock, Barrier string
}

// SyncPairs returns the comparison set: every lock algorithm against
// the default barrier, then every non-default barrier algorithm against
// the default lock. The benchmark's lock and barrier phases are
// disjoint, so the full cross-product would quadruple the sweep without
// adding information; the CI matrix covers the cross-product instead.
func SyncPairs() []SyncPair {
	var out []SyncPair
	for _, l := range algo.LockNames() {
		out = append(out, SyncPair{Lock: l, Barrier: algo.DefaultBarrier})
	}
	for _, b := range algo.BarrierNames() {
		if b == algo.DefaultBarrier {
			continue
		}
		out = append(out, SyncPair{Lock: algo.DefaultLock, Barrier: b})
	}
	return out
}

// SyncLossPlan is the sweep's degraded-transport schedule: 5% message
// loss (the ISSUE's operating-envelope ceiling), fully deterministic
// per seed.
func SyncLossPlan(seed uint64) fault.Plan {
	return fault.Plan{Seed: seed, DropBP: 500}
}

// SyncPoint is one (pair, cluster size) sample of the sweep.
type SyncPoint struct {
	Lock, Barrier string
	C             int
	// Cycles is the fault-free parallel time.
	Cycles sim.Time
	// LockHitRatio is MGS lock hits over total acquires (Figure 11's
	// metric, per algorithm).
	LockHitRatio float64
	// CSDilation is the mean occupied cycles per critical section over
	// the 400-cycle nominal body: 1.0 means the lock adds nothing while
	// held; the excess is protocol time spent inside the section.
	CSDilation float64
	// BarrierMeanWait is the mean parked cycles per barrier arrival
	// (the barrier.waitcycles histogram's mean).
	BarrierMeanWait float64
	// LossCycles is the parallel time under SyncLossPlan.
	LossCycles sim.Time
	// MemOK reports the 5%-loss run's final memory was byte-identical
	// to the fault-free run's.
	MemOK bool
}

// syncNominalCS is SyncBench's critical-section Compute quantum.
const syncNominalCS = 400.0

// SyncSweep runs mk("syncbench") for every SyncPairs combination at
// every cluster size in cs on a P=p machine, fault-free and under the
// 5%-loss plan. Points run concurrently (harness.SweepWorkers wide);
// results are independent of the worker count.
func SyncSweep(p int, cs []int, mk func(string) harness.App) ([]SyncPoint, error) {
	pairs := SyncPairs()
	points := make([]SyncPoint, len(pairs)*len(cs))
	errs := harness.RunIndexed(len(points), func(i int) error {
		pair, c := pairs[i/len(cs)], cs[i%len(cs)]
		algos := []harness.Option{
			harness.WithLockAlgo(pair.Lock), harness.WithBarrierAlgo(pair.Barrier),
		}
		o := obs.New()
		res, mem, err := harness.RunAppMem(mk("syncbench"),
			Config(p, c, append([]harness.Option{harness.WithObserver(o)}, algos...)...))
		if err != nil {
			return fmt.Errorf("syncsweep %s/%s C=%d: %w", pair.Lock, pair.Barrier, c, err)
		}
		lossCfg := Config(p, c, algos...)
		lossCfg.Fault = SyncLossPlan(1)
		lossRes, lossMem, err := harness.RunAppMem(mk("syncbench"), lossCfg)
		if err != nil {
			return fmt.Errorf("syncsweep %s/%s C=%d loss: %w", pair.Lock, pair.Barrier, c, err)
		}
		pt := SyncPoint{
			Lock: pair.Lock, Barrier: pair.Barrier, C: c,
			Cycles:     res.Cycles,
			LossCycles: lossRes.Cycles,
			MemOK:      bytes.Equal(mem, lossMem),
		}
		if res.LockTotal > 0 {
			pt.LockHitRatio = float64(res.LockHits) / float64(res.LockTotal)
		}
		reg := o.Registry()
		if ncs := reg.Counter("lock.cs").Value(); ncs > 0 {
			pt.CSDilation = float64(reg.Counter("lock.heldcycles").Value()) /
				float64(ncs) / syncNominalCS
		}
		if h := reg.Histogram("barrier.waitcycles", nil); h.Count() > 0 {
			pt.BarrierMeanWait = float64(h.Sum()) / float64(h.Count())
		}
		points[i] = pt
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return points, nil
}

// SyncCSV renders sweep points as CSV with a header row.
func SyncCSV(points []SyncPoint) string {
	var b strings.Builder
	b.WriteString("lock,barrier,c,cycles,lock_hit_ratio,cs_dilation,barrier_mean_wait,loss5_cycles,loss5_memok\n")
	for _, pt := range points {
		fmt.Fprintf(&b, "%s,%s,%d,%d,%.3f,%.2f,%.0f,%d,%v\n",
			pt.Lock, pt.Barrier, pt.C, pt.Cycles, pt.LockHitRatio,
			pt.CSDilation, pt.BarrierMeanWait, pt.LossCycles, pt.MemOK)
	}
	return b.String()
}

// SyncClusterSizes filters the canonical C ∈ {1, 4, 8, 32} sample set
// down to the sizes valid for p processors.
func SyncClusterSizes(p int) []int {
	var out []int
	for _, c := range []int{1, 4, 8, 32} {
		if c <= p && p%c == 0 {
			out = append(out, c)
		}
	}
	return out
}
