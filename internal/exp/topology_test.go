package exp

import (
	"bytes"
	"reflect"
	"testing"

	"mgs/internal/apps"
	"mgs/internal/fault"
	"mgs/internal/harness"
	"mgs/internal/msg"
	"mgs/internal/serve"
)

// The topology API's experiment-level contracts: contended topologies
// provably fall back to the sequential event dispatcher (and stay
// bit-identical at every -engine-workers setting anyway), link-wait
// accounting is deterministic under both kinds of host parallelism,
// the tiered WAN measurably fattens the serving tail, and the
// hierarchical directory keeps the Server's footprint O(sharers) on
// machines up to 1024 processors.

// contendedTopos returns the three contended topology specs by flag
// name. Specs are immutable and sized per machine, so sharing one
// across runs is safe.
func contendedTopos() map[string]msg.Topology {
	return map[string]msg.Topology{
		"mesh":    msg.NewMesh2D(),
		"fattree": msg.NewFatTree(0),
		"tiered":  msg.NewTiered(0),
	}
}

// TestTopologyForcesSequentialFallback pins satellite #2: a contended
// topology reports zero lookahead, so a run requested with many engine
// workers must use the sequential dispatcher — while the uniform LAN
// control keeps the sharded dispatcher engaged.
func TestTopologyForcesSequentialFallback(t *testing.T) {
	run := func(topo msg.Topology) bool {
		cfg := Config(8, 2, harness.WithTopology(topo))
		cfg.EngineWorkers = 4
		app := SmallApp("water")
		m := harness.NewMachine(cfg)
		app.Setup(m)
		if _, err := m.Run(app.Body); err != nil {
			t.Fatal(err)
		}
		return m.Eng.Parallelized()
	}
	for name, topo := range contendedTopos() {
		if run(topo) {
			t.Errorf("%s: contended topology must force sequential dispatch", name)
		}
	}
	if !run(msg.NewUniform()) {
		t.Error("uniform: parallel dispatcher did not engage for the control run")
	}
}

// TestTopologyWorkersBitIdentical is the acceptance matrix: on every
// topology, every app's run is bit-identical across -engine-workers
// settings, and a 5%-loss chaos run ends with memory byte-identical to
// the sequential fault-free reference.
func TestTopologyWorkersBitIdentical(t *testing.T) {
	plans := map[string]fault.Plan{
		"faultfree": {},
		"chaos5pct": envelopePlan(13),
	}
	names := append(append([]string{}, AppNames...), "serve")
	for topoName, topo := range contendedTopos() {
		for _, name := range names {
			run := func(workers int, plan fault.Plan) (harness.Result, []byte) {
				cfg := Config(8, 2, harness.WithTopology(topo))
				cfg.EngineWorkers = workers
				cfg.Fault = plan
				res, mem, err := harness.RunAppMem(SmallApp(name), cfg)
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", topoName, name, workers, err)
				}
				return res, mem
			}
			refRes, refMem := run(1, plans["faultfree"])
			for planName, plan := range plans {
				for _, w := range []int{1, 8} {
					if planName == "faultfree" && w == 1 {
						continue // the reference itself
					}
					res, mem := run(w, plan)
					if !bytes.Equal(refMem, mem) {
						t.Errorf("%s/%s/%s workers=%d: final memory diverges from sequential fault-free run",
							topoName, name, planName, w)
					}
					if planName == "faultfree" && !reflect.DeepEqual(refRes, res) {
						t.Errorf("%s/%s workers=%d: result diverges from sequential\nseq: %+v\npar: %+v",
							topoName, name, w, refRes, res)
					}
				}
			}
		}
	}
}

// TestTopologyLinkWaitDeterministic pins satellite #3's exp-level half:
// the link-wait counter — shared occupancy state on contended
// topologies — must not move with the sweep worker count, and an
// all-to-all workload at C=1 must actually exercise it.
func TestTopologyLinkWaitDeterministic(t *testing.T) {
	sweep := func(workers int) []ScalePoint {
		old := harness.SweepWorkers
		harness.SweepWorkers = workers
		defer func() { harness.SweepWorkers = old }()
		points, _, err := ScaleSweep("jacobi", 16, msg.NewMesh2D(), ScaleClusterSizes(16))
		if err != nil {
			t.Fatal(err)
		}
		return points
	}
	seq := sweep(1)
	if par := sweep(4); !reflect.DeepEqual(seq, par) {
		t.Fatalf("scale sweep diverges with sweep workers:\nseq: %+v\npar: %+v", seq, par)
	}
	if seq[0].C != 1 || seq[0].LinkWait == 0 {
		t.Errorf("C=1 mesh run saw no link contention: %+v", seq[0])
	}
	if last := seq[len(seq)-1]; last.C != 16 || last.LinkWait != 0 {
		t.Errorf("C=P run (no inter-SSMP traffic) charged link wait: %+v", last)
	}
}

// TestTieredWANFattensServeTail: partitioning the serving machine
// across WAN sites must fatten the measured tail — the quantiles are
// the experiment's output, so the topology has to reach them.
func TestTieredWANFattensServeTail(t *testing.T) {
	w := serve.DefaultWorkload(true, 7)
	run := func(topo msg.Topology) serve.Report {
		app := apps.NewServe(w)
		cfg := Config(8, 2, harness.WithTopology(topo))
		res, _, err := harness.RunAppMem(app, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return app.Report(res, serveSLO())
	}
	uni := run(msg.NewUniform())
	// Sites of two SSMPs: the 4-SSMP machine splits into two WAN sites.
	tier := run(msg.NewTiered(2))
	fattened := false
	for i := range uni.Phases {
		u, ti := uni.Phases[i], tier.Phases[i]
		if ti.P999 > u.P999 {
			fattened = true
		}
		if ti.P999 < u.P999 && ti.P99 < u.P99 && ti.Mean < u.Mean {
			t.Errorf("phase %s: tiered WAN run strictly faster than uniform LAN (mean %.0f < %.0f)",
				u.Phase, ti.Mean, u.Mean)
		}
	}
	if !fattened {
		t.Errorf("tiered p999 never above uniform: uniform %+v tiered %+v", uni.Phases, tier.Phases)
	}
}

// TestScaleTieredDirectory is the tentpole's headline run: the breakup
// penalty / multigrain potential curves at P=256 (and P=1024 unless
// -short) on the tiered topology, with the Server directory staying
// O(sharers) — a dense per-SSMP bitmap would register every SSMP on
// every served page; the sparse records must stay a small multiple of
// the page count no matter how many SSMPs exist.
func TestScaleTieredDirectory(t *testing.T) {
	ps := []int{256}
	if !testing.Short() {
		ps = append(ps, 1024)
	}
	for _, p := range ps {
		points, m, err := ScaleSweep("jacobi", p, msg.NewTiered(0), ScaleClusterSizes(p))
		if err != nil {
			t.Fatal(err)
		}
		if len(points) != len(ScaleClusterSizes(p)) {
			t.Fatalf("P=%d: %d points, want %d", p, len(points), len(ScaleClusterSizes(p)))
		}
		for _, pt := range points {
			if pt.Cycles <= 0 {
				t.Fatalf("P=%d C=%d: empty run", p, pt.C)
			}
		}
		soft, tight := points[0], points[len(points)-1]
		if soft.Cycles <= tight.Cycles {
			t.Errorf("P=%d: all-software run (C=1, %d cycles) not above tightly-coupled (C=P, %d)",
				p, soft.Cycles, tight.Cycles)
		}
		if m.BreakupPenalty <= 0 || m.MultigrainPotential <= 0 {
			t.Errorf("P=%d: degenerate framework metrics %+v", p, m)
		}
		if soft.LinkWait == 0 {
			t.Errorf("P=%d C=1: tiered WAN saw no link contention", p)
		}
		// O(sharers), not O(SSMPs): Jacobi shares boundary pages with at
		// most a couple of neighbours, so even with p SSMPs the per-page
		// record count stays a small constant.
		if ds := soft.Dir; ds.Pages == 0 || ds.RmtEntries > 8*ds.Pages {
			t.Errorf("P=%d C=1: directory not sparse: %+v", p, ds)
		}
	}
}
