// Package exp defines the paper's experiments: every table and figure
// of the evaluation section (§5) is regenerable from here, plus the
// ablations DESIGN.md calls out. cmd/mgs-sweep, cmd/mgs-micro, and the
// repository benchmarks are thin wrappers over this package.
package exp

import (
	"fmt"

	"mgs/internal/apps"
	"mgs/internal/framework"
	"mgs/internal/harness"
	"mgs/internal/msg"
	"mgs/internal/serve"
	"mgs/internal/sim"
)

// AppNames lists the application suite in the paper's order.
var AppNames = []string{"jacobi", "matmul", "tsp", "water", "barnes-hut"}

// NewApp returns a fresh paper-default instance of the named app. The
// problem sizes are the scaled defaults recorded in EXPERIMENTS.md.
func NewApp(name string) harness.App {
	switch name {
	case "jacobi":
		return &apps.Jacobi{N: 128, Iters: 10}
	case "matmul":
		return &apps.MatMul{N: 128}
	case "tsp":
		return &apps.TSP{NCities: 10, Depth: 4}
	case "water":
		return &apps.Water{N: 64, Iters: 2}
	case "barnes-hut", "barnes":
		return &apps.BarnesHut{NBodies: 96, Iters: 2, Theta: 0.6}
	case "water-kernel":
		return &apps.WaterKernel{N: 256, Tiled: false}
	case "water-kernel-tiled":
		return &apps.WaterKernel{N: 256, Tiled: true}
	case "lu":
		return &apps.LU{N: 128, B: 16}
	case "serve":
		return apps.NewServe(serve.DefaultWorkload(false, 1))
	case "syncbench":
		return &apps.SyncBench{Iters: 12}
	}
	panic(fmt.Sprintf("exp: unknown app %q", name))
}

// SmallApp returns a reduced instance for quick runs and tests.
func SmallApp(name string) harness.App {
	switch name {
	case "jacobi":
		return &apps.Jacobi{N: 48, Iters: 3}
	case "matmul":
		return &apps.MatMul{N: 24}
	case "tsp":
		return &apps.TSP{NCities: 7, Depth: 3}
	case "water":
		return &apps.Water{N: 24, Iters: 1}
	case "barnes-hut", "barnes":
		return &apps.BarnesHut{NBodies: 32, Iters: 1, Theta: 0.6}
	case "water-kernel":
		return &apps.WaterKernel{N: 128, Tiled: false}
	case "water-kernel-tiled":
		return &apps.WaterKernel{N: 128, Tiled: true}
	case "lu":
		return &apps.LU{N: 48, B: 8}
	case "serve":
		return apps.NewServe(serve.DefaultWorkload(true, 1))
	case "syncbench":
		return &apps.SyncBench{Iters: 4}
	}
	panic(fmt.Sprintf("exp: unknown app %q", name))
}

// Config returns the paper's experiment configuration: 1K-byte pages,
// 1000-cycle inter-SSMP delay, null MGS calls at C = P (§5.2.1), with
// any functional options applied on top.
func Config(p, c int, opts ...harness.Option) harness.Config {
	return harness.NewConfig(p, c, opts...)
}

// Table3 measures the micro costs (Table 3).
func Table3() harness.Micro { return harness.MeasureMicro() }

// Table4Row is one line of Table 4.
type Table4Row struct {
	App     string
	Seq     sim.Time // sequential cycles (P=1, with SVM overhead)
	Par     sim.Time // cycles on P processors, tightly coupled (C=P)
	Speedup float64
}

// Table4 reports sequential runtime and tightly-coupled speedup per
// application (Table 4). mk selects the instance size (NewApp or
// SmallApp). The 2·len(AppNames) runs are independent simulations and
// execute concurrently (harness.SweepWorkers governs the width).
func Table4(p int, mk func(string) harness.App) ([]Table4Row, error) {
	n := len(AppNames)
	runs := make([]harness.Result, 2*n) // [2k] = seq, [2k+1] = par
	errs := harness.RunIndexed(2*n, func(i int) error {
		name := AppNames[i/2]
		var err error
		if i%2 == 0 {
			runs[i], err = harness.RunApp(mk(name), Config(1, 1))
			if err != nil {
				return fmt.Errorf("table4 %s seq: %w", name, err)
			}
		} else {
			runs[i], err = harness.RunApp(mk(name), Config(p, p))
			if err != nil {
				return fmt.Errorf("table4 %s par: %w", name, err)
			}
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var rows []Table4Row
	for k, name := range AppNames {
		seq, par := runs[2*k], runs[2*k+1]
		rows = append(rows, Table4Row{
			App: name, Seq: seq.Cycles, Par: par.Cycles,
			Speedup: float64(seq.Cycles) / float64(par.Cycles),
		})
	}
	return rows, nil
}

// FigureSweep reproduces one of Figures 6–10: the named app across all
// power-of-two cluster sizes at fixed P, returning the per-point
// results and the §2.4 framework metrics.
func FigureSweep(name string, p int, mk func(string) harness.App) ([]harness.SweepPoint, framework.Metrics, error) {
	points, err := harness.Sweep(func() harness.App { return mk(name) },
		p, harness.PowersOfTwo(p), func(c int) harness.Config { return Config(p, c) })
	if err != nil {
		return nil, framework.Metrics{}, err
	}
	return points, metricsOf(points), nil
}

func metricsOf(points []harness.SweepPoint) framework.Metrics {
	var fp []framework.Point
	for _, pt := range points {
		fp = append(fp, framework.Point{C: pt.C, Time: float64(pt.Res.Cycles)})
	}
	return framework.Analyze(fp)
}

// FrameworkPoints converts sweep points for framework analysis and
// printing.
func FrameworkPoints(points []harness.SweepPoint) []framework.Point {
	var fp []framework.Point
	for _, pt := range points {
		fp = append(fp, framework.Point{C: pt.C, Time: float64(pt.Res.Cycles)})
	}
	return fp
}

// HitPoint is one Figure 11 sample.
type HitPoint struct {
	C     int
	Ratio float64
}

// LockHitSweep reproduces Figure 11: MGS lock hit ratio versus cluster
// size for the lock-using applications. The C = P point is excluded (no
// MGS locks run there), as in the figure.
func LockHitSweep(names []string, p int, mk func(string) harness.App) (map[string][]HitPoint, error) {
	cs := harness.PowersOfTwo(p / 2)
	ratios := make([]float64, len(names)*len(cs))
	errs := harness.RunIndexed(len(ratios), func(i int) error {
		name, c := names[i/len(cs)], cs[i%len(cs)]
		res, err := harness.RunApp(mk(name), Config(p, c))
		if err != nil {
			return fmt.Errorf("fig11 %s C=%d: %w", name, c, err)
		}
		if res.LockTotal > 0 {
			ratios[i] = float64(res.LockHits) / float64(res.LockTotal)
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make(map[string][]HitPoint)
	for i, name := range names {
		for j, c := range cs {
			out[name] = append(out[name], HitPoint{C: c, Ratio: ratios[i*len(cs)+j]})
		}
	}
	return out, nil
}

// Fig12 reproduces Figure 12: the Water force kernel without and with
// the tiling transformation, swept across cluster sizes.
func Fig12(p, n int) (plain, tiled []harness.SweepPoint, err error) {
	plain, err = harness.Sweep(func() harness.App { return &apps.WaterKernel{N: n, Tiled: false} },
		p, harness.PowersOfTwo(p), func(c int) harness.Config { return Config(p, c) })
	if err != nil {
		return nil, nil, fmt.Errorf("fig12 plain: %w", err)
	}
	tiled, err = harness.Sweep(func() harness.App { return &apps.WaterKernel{N: n, Tiled: true} },
		p, harness.PowersOfTwo(p), func(c int) harness.Config { return Config(p, c) })
	if err != nil {
		return nil, nil, fmt.Errorf("fig12 tiled: %w", err)
	}
	return plain, tiled, nil
}

// AblationSingleWriter sweeps the named app with the single-writer
// optimization on and off (§3.1.1).
func AblationSingleWriter(name string, p int, mk func(string) harness.App) (on, off []harness.SweepPoint, err error) {
	cfgFor := func(enabled bool) func(c int) harness.Config {
		return func(c int) harness.Config {
			cfg := Config(p, c)
			cfg.Protocol.SingleWriter = enabled
			return cfg
		}
	}
	cs := harness.PowersOfTwo(p / 2) // software region only
	on, err = harness.Sweep(func() harness.App { return mk(name) }, p, cs, cfgFor(true))
	if err != nil {
		return nil, nil, err
	}
	off, err = harness.Sweep(func() harness.App { return mk(name) }, p, cs, cfgFor(false))
	return on, off, err
}

// AblationSerialInv sweeps with serial versus parallel release-round
// invalidations.
func AblationSerialInv(name string, p int, mk func(string) harness.App) (serial, parallel []harness.SweepPoint, err error) {
	cfgFor := func(enabled bool) func(c int) harness.Config {
		return func(c int) harness.Config {
			cfg := Config(p, c)
			cfg.Protocol.SerialInv = enabled
			return cfg
		}
	}
	cs := harness.PowersOfTwo(p / 2)
	serial, err = harness.Sweep(func() harness.App { return mk(name) }, p, cs, cfgFor(true))
	if err != nil {
		return nil, nil, err
	}
	parallel, err = harness.Sweep(func() harness.App { return mk(name) }, p, cs, cfgFor(false))
	return serial, parallel, err
}

// PageSizePoint is one page-size ablation sample.
type PageSizePoint struct {
	PageSize int
	Cycles   sim.Time
}

// AblationPageSize runs the named app at one cluster size across page
// sizes (§2.2's grain trade-off: larger pages amortize protocol
// overhead but aggravate false sharing).
func AblationPageSize(name string, p, c int, sizes []int, mk func(string) harness.App) ([]PageSizePoint, error) {
	out := make([]PageSizePoint, len(sizes))
	errs := harness.RunIndexed(len(sizes), func(i int) error {
		cfg := Config(p, c)
		cfg.PageSize = sizes[i]
		res, err := harness.RunApp(mk(name), cfg)
		if err != nil {
			return fmt.Errorf("pagesize %d: %w", sizes[i], err)
		}
		out[i] = PageSizePoint{PageSize: sizes[i], Cycles: res.Cycles}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// AblationMesh sweeps the named app under the paper's uniform
// fixed-delay inter-SSMP LAN versus the contended 2D-mesh topology
// extension (internal/msg mesh.go). perHop is the mesh's per-hop
// latency in cycles; 250 makes the average uncontended mesh latency at
// C=1, P=32 (a 6×6 grid, ~4 mean hops) comparable to the paper's
// 1000-cycle uniform delay, isolating the effect of non-uniformity and
// link contention.
func AblationMesh(name string, p int, perHop sim.Time, mk func(string) harness.App) (uniform, mesh []harness.SweepPoint, err error) {
	cfgFor := func(useMesh bool) func(c int) harness.Config {
		return func(c int) harness.Config {
			cfg := Config(p, c)
			if useMesh {
				cfg.Msg.Topology = msg.NewMesh2D()
				cfg.Msg.InterPerHop = perHop
			}
			return cfg
		}
	}
	cs := harness.PowersOfTwo(p / 2)
	uniform, err = harness.Sweep(func() harness.App { return mk(name) }, p, cs, cfgFor(false))
	if err != nil {
		return nil, nil, err
	}
	mesh, err = harness.Sweep(func() harness.App { return mk(name) }, p, cs, cfgFor(true))
	return uniform, mesh, err
}

// AblationUpdateProtocol sweeps the named app under invalidate-based
// (the paper's) versus update-based (Galactica Net-style) release
// rounds.
func AblationUpdateProtocol(name string, p int, mk func(string) harness.App) (inval, update []harness.SweepPoint, err error) {
	cfgFor := func(upd bool) func(c int) harness.Config {
		return func(c int) harness.Config {
			cfg := Config(p, c)
			cfg.Protocol.UpdateProtocol = upd
			return cfg
		}
	}
	cs := harness.PowersOfTwo(p / 2)
	inval, err = harness.Sweep(func() harness.App { return mk(name) }, p, cs, cfgFor(false))
	if err != nil {
		return nil, nil, err
	}
	update, err = harness.Sweep(func() harness.App { return mk(name) }, p, cs, cfgFor(true))
	return inval, update, err
}

// AblationLazy sweeps the named app under the paper's eager release
// consistency versus the TreadMarks-style lazy variant (the §6
// comparison): releases stop invalidating, acquires validate instead.
func AblationLazy(name string, p int, mk func(string) harness.App) (eager, lazy []harness.SweepPoint, err error) {
	cfgFor := func(lz bool) func(c int) harness.Config {
		return func(c int) harness.Config {
			cfg := Config(p, c)
			cfg.Protocol.LazyRelease = lz
			return cfg
		}
	}
	cs := harness.PowersOfTwo(p / 2)
	eager, err = harness.Sweep(func() harness.App { return mk(name) }, p, cs, cfgFor(false))
	if err != nil {
		return nil, nil, err
	}
	lazy, err = harness.Sweep(func() harness.App { return mk(name) }, p, cs, cfgFor(true))
	return eager, lazy, err
}
