package exp

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"mgs/internal/fault"
	"mgs/internal/harness"
	"mgs/internal/obs"
)

// The parallel dispatcher's contract, pinned here: for every worker
// count, every application, and every transport condition (fault-free
// or the chaos envelope), a sharded run is bit-identical to the
// sequential reference — same cycles, same breakdown, same counters,
// same final memory. Workers=1 IS the sequential engine, so these tests
// compare against it directly. Under -race the multi-worker runs also
// serve as the shard-isolation race check. The same contract on the
// contended topologies — which force the sequential fallback via zero
// lookahead — is pinned in topology_test.go.

// runWorkers runs one app at the given worker count and returns the
// result and final memory image.
func runWorkers(t *testing.T, name string, workers int, plan fault.Plan) (harness.Result, []byte) {
	t.Helper()
	cfg := Config(8, 2)
	cfg.EngineWorkers = workers
	cfg.Fault = plan
	res, mem, err := harness.RunAppMem(SmallApp(name), cfg)
	if err != nil {
		t.Fatalf("%s workers=%d: %v", name, workers, err)
	}
	return res, mem
}

// TestParallelEngineBitIdentical is the core equivalence matrix: the
// paper suite plus the serving workload, worker counts spanning
// fewer-than-shards through more-than-shards, fault-free and under the
// 5%-loss chaos envelope.
func TestParallelEngineBitIdentical(t *testing.T) {
	plans := map[string]fault.Plan{
		"faultfree": {},
		"chaos5pct": envelopePlan(11),
	}
	names := append(append([]string{}, AppNames...), "serve")
	for planName, plan := range plans {
		for _, name := range names {
			refRes, refMem := runWorkers(t, name, 1, plan)
			for _, w := range []int{2, 4, 8} {
				res, mem := runWorkers(t, name, w, plan)
				if !reflect.DeepEqual(refRes, res) {
					t.Errorf("%s/%s workers=%d: result diverges from sequential\nseq: %+v\npar: %+v",
						name, planName, w, refRes, res)
					continue
				}
				if !bytes.Equal(refMem, mem) {
					t.Errorf("%s/%s workers=%d: final memory diverges from sequential", name, planName, w)
				}
			}
		}
	}
}

// TestParallelEngineEngages pins that the equivalence above is not
// vacuous: the standard test shape actually runs the sharded
// dispatcher.
func TestParallelEngineEngages(t *testing.T) {
	cfg := Config(8, 2)
	cfg.EngineWorkers = 4
	app := SmallApp("water")
	m := harness.NewMachine(cfg)
	app.Setup(m)
	if _, err := m.Run(app.Body); err != nil {
		t.Fatal(err)
	}
	if !m.Eng.Parallelized() {
		t.Fatal("parallel dispatcher did not engage for the standard test shape")
	}
}

// TestParallelTracingFallsBack pins the observer gate: a tracing run
// requested with many workers must fall back to sequential dispatch and
// produce the identical trace.
func TestParallelTracingFallsBack(t *testing.T) {
	run := func(workers int) (harness.Result, string) {
		var b strings.Builder
		cfg := Config(8, 2,
			harness.WithObserver(obs.New().AddSink(obs.NewTextSink(&b))))
		cfg.EngineWorkers = workers
		app := SmallApp("jacobi")
		m := harness.NewMachine(cfg)
		app.Setup(m)
		res, err := m.Run(app.Body)
		if err != nil {
			t.Fatal(err)
		}
		if m.Eng.Parallelized() {
			t.Fatalf("workers=%d: tracing run must not use the parallel dispatcher", workers)
		}
		return res, b.String()
	}
	res1, tr1 := run(1)
	res8, tr8 := run(8)
	if !reflect.DeepEqual(res1, res8) {
		t.Fatalf("tracing fallback result diverges:\nw1: %+v\nw8: %+v", res1, res8)
	}
	if tr1 != tr8 {
		t.Fatalf("tracing fallback traces diverge (%d vs %d bytes)", len(tr1), len(tr8))
	}
}
