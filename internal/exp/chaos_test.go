package exp

import (
	"reflect"
	"strings"
	"testing"

	"mgs/internal/fault"
	"mgs/internal/harness"
	"mgs/internal/obs"
)

// The chaos suite's contract, pinned here: (1) every application
// survives the ISSUE's operating envelope (up to 5% loss, 2%
// duplication, plus delay-induced reordering) with final memory
// byte-identical to a fault-free run; (2) a faulted run is exactly as
// deterministic as a fault-free one — same (app, shape, seed) gives
// bit-identical results, counters, and traces, for any worker count;
// (3) an empty plan is a structural no-op.

// envelopePlan is the acceptance-envelope schedule: 5% loss, 2%
// duplication, 5% delayed.
func envelopePlan(seed uint64) fault.Plan {
	return fault.Plan{Seed: seed, DropBP: 500, DupBP: 200, DelayBP: 500}
}

func TestChaosSweepAllApps(t *testing.T) {
	pts, err := ChaosSweep(AppNames, []uint64{1, 2, 3}, 8, 2, envelopePlan, SmallApp)
	if err != nil {
		t.Fatal(err)
	}
	var dropped, retrans, suppressed int64
	for _, pt := range pts {
		if !pt.MemOK {
			t.Errorf("%s seed=%d: final memory diverges from fault-free run", pt.App, pt.Seed)
		}
		if !pt.Res.Fault.Active() {
			t.Errorf("%s seed=%d: no transport faults recorded — plan not attached?", pt.App, pt.Seed)
		}
		if pt.Slowdown() < 1.0 {
			t.Errorf("%s seed=%d: faulted run faster than baseline (%.3f) — recovery charged nothing?", pt.App, pt.Seed, pt.Slowdown())
		}
		dropped += pt.Res.Fault.Dropped
		retrans += pt.Res.Fault.Retransmits
		suppressed += pt.Res.Fault.DupSuppressed
	}
	// The envelope must actually exercise the machinery being tested.
	if dropped == 0 || retrans == 0 || suppressed == 0 {
		t.Errorf("envelope too soft: dropped=%d retrans=%d suppressed=%d, want all > 0", dropped, retrans, suppressed)
	}
}

// chaosTraceRun runs one faulted app with both the protocol and
// transport tracers attached and returns (result, full trace).
func chaosTraceRun(t *testing.T, name string, p, c int, plan fault.Plan) (harness.Result, string) {
	t.Helper()
	var b strings.Builder
	cfg := Config(p, c,
		harness.WithFaultPlan(plan),
		harness.WithObserver(obs.New().AddSink(obs.NewTextSink(&b))))
	app := SmallApp(name)
	m := harness.NewMachine(cfg)
	app.Setup(m)
	res, err := m.Run(app.Body)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if err := app.Verify(m); err != nil {
		t.Fatalf("%s verify: %v", name, err)
	}
	res.Fault = m.Stats.Fault
	return res, b.String()
}

func TestChaosDeterministic(t *testing.T) {
	plan := envelopePlan(7)
	res1, tr1 := chaosTraceRun(t, "water", 8, 2, plan)
	res2, tr2 := chaosTraceRun(t, "water", 8, 2, plan)
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("faulted run not reproducible:\nrun1 %+v\nrun2 %+v", res1, res2)
	}
	if tr1 != tr2 {
		t.Fatalf("faulted traces diverge (%d vs %d bytes)", len(tr1), len(tr2))
	}
	// Different seeds must give different schedules (the trace includes
	// every injector decision).
	_, tr3 := chaosTraceRun(t, "water", 8, 2, envelopePlan(8))
	if tr1 == tr3 {
		t.Fatal("seeds 7 and 8 produced identical fault schedules")
	}
}

// TestChaosWorkerCountInvariance pins that chaos sweeps, like every
// other sweep, are a pure function of their inputs: any SweepWorkers
// value gives bit-identical points. Under -race this also exercises
// concurrent faulted simulations for shared-state races.
func TestChaosWorkerCountInvariance(t *testing.T) {
	old := harness.SweepWorkers
	defer func() { harness.SweepWorkers = old }()

	var base []ChaosPoint
	for _, w := range []int{1, 4, 16} {
		harness.SweepWorkers = w
		got, err := ChaosSweep([]string{"jacobi", "water"}, []uint64{1, 2}, 8, 2, envelopePlan, SmallApp)
		if err != nil {
			t.Fatalf("SweepWorkers=%d: %v", w, err)
		}
		if base == nil {
			base = got
			continue
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("chaos sweep depends on worker count (workers=%d)", w)
		}
	}
}

func TestZeroFaultEquivalenceAllApps(t *testing.T) {
	for _, name := range AppNames {
		if err := ZeroFaultEquivalence(name, 8, 2, SmallApp); err != nil {
			t.Error(err)
		}
	}
}
