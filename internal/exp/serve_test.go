package exp

import (
	"bytes"
	"testing"

	"mgs/internal/apps"
	"mgs/internal/fault"
	"mgs/internal/harness"
	"mgs/internal/serve"
)

// The serving workload's determinism and chaos contracts, pinned at the
// report level: the latency CSV — quantiles included — must be
// byte-identical across reruns, engine worker counts, and sweep worker
// counts at a fixed seed; and a 5%-loss run must end with the same
// memory as the fault-free run while measurably fattening the tail.

func serveSLO() serve.SLO { return serve.SLO{P99: 5_000_000, P999: 10_000_000} }

// TestServeRerunBitIdentical: same seed, same machine — same bytes.
func TestServeRerunBitIdentical(t *testing.T) {
	w := serve.DefaultWorkload(true, 7)
	rep1, mem1, err := ServeRun(w, 8, 2, fault.Plan{}, serveSLO())
	if err != nil {
		t.Fatal(err)
	}
	rep2, mem2, err := ServeRun(w, 8, 2, fault.Plan{}, serveSLO())
	if err != nil {
		t.Fatal(err)
	}
	if rep1.CSV() != rep2.CSV() {
		t.Errorf("rerun CSV diverges:\n%s\nvs\n%s", rep1.CSV(), rep2.CSV())
	}
	if !bytes.Equal(mem1, mem2) {
		t.Error("rerun final memory diverges")
	}
}

// TestServeEngineWorkersBitIdentical: the sharded event dispatcher must
// not move a single latency sample, fault-free or under chaos.
func TestServeEngineWorkersBitIdentical(t *testing.T) {
	for planName, plan := range map[string]fault.Plan{
		"faultfree": {},
		"chaos5pct": ServeChaosPlan(3),
	} {
		run := func(workers int) (string, []byte) {
			w := serve.DefaultWorkload(true, 3)
			app := apps.NewServe(w)
			cfg := Config(8, 2)
			cfg.EngineWorkers = workers
			cfg.Fault = plan
			res, mem, err := harness.RunAppMem(app, cfg)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", planName, workers, err)
			}
			return app.Report(res, serveSLO()).CSV(), mem
		}
		refCSV, refMem := run(1)
		for _, workers := range []int{2, 4, 8} {
			csv, mem := run(workers)
			if csv != refCSV {
				t.Errorf("%s: engine workers=%d CSV diverges from sequential:\n%s\nvs\n%s",
					planName, workers, csv, refCSV)
			}
			if !bytes.Equal(mem, refMem) {
				t.Errorf("%s: engine workers=%d final memory diverges", planName, workers)
			}
		}
	}
}

// TestServeSweepWorkersBitIdentical: the tail sweep's CSV must not
// depend on how many runs execute concurrently.
func TestServeSweepWorkersBitIdentical(t *testing.T) {
	w := serve.DefaultWorkload(true, 5)
	run := func(workers int) string {
		old := harness.SweepWorkers
		harness.SweepWorkers = workers
		defer func() { harness.SweepWorkers = old }()
		points, err := ServeTailSweep(w, 8, serveSLO())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return ServeTailCSV(points)
	}
	seq := run(1)
	if par := run(4); par != seq {
		t.Errorf("sweep workers=4 CSV diverges from sequential:\n%s\nvs\n%s", par, seq)
	}
}

// TestServeChaosMemEquivalentFatterTail: 5% loss may change when every
// request completes — and therefore the latency distribution — but
// never what the store holds at the end. The tail must actually move,
// or the chaos column in the sweep is measuring nothing.
func TestServeChaosMemEquivalentFatterTail(t *testing.T) {
	w := serve.DefaultWorkload(true, 9)
	clean, cleanMem, err := ServeRun(w, 8, 2, fault.Plan{}, serveSLO())
	if err != nil {
		t.Fatal(err)
	}
	chaos, chaosMem, err := ServeRun(w, 8, 2, ServeChaosPlan(9), serveSLO())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cleanMem, chaosMem) {
		t.Fatal("chaos final memory diverges from fault-free run")
	}
	if chaos.Dropped == 0 || chaos.Retransmit == 0 {
		t.Fatalf("chaos plan injected nothing (dropped=%d retransmits=%d)", chaos.Dropped, chaos.Retransmit)
	}
	var cleanSum, chaosSum float64
	for i := range clean.Phases {
		cleanSum += clean.Phases[i].Mean * float64(clean.Phases[i].Count)
		chaosSum += chaos.Phases[i].Mean * float64(chaos.Phases[i].Count)
	}
	if chaosSum <= cleanSum {
		t.Errorf("chaos run's total latency (%.0f) not above fault-free (%.0f); loss should cost cycles", chaosSum, cleanSum)
	}
	if chaos.Phases[0].P99 <= clean.Phases[0].P99 && chaos.Phases[2].P99 <= clean.Phases[2].P99 {
		t.Errorf("chaos p99 not fatter in any phase: steady %.0f<=%.0f, flash %.0f<=%.0f",
			chaos.Phases[0].P99, clean.Phases[0].P99, chaos.Phases[2].P99, clean.Phases[2].P99)
	}
}

// TestServeVerifyCatchesCorruption pins that the app's Verify is not
// vacuous: a store whose final state was tampered with must fail.
func TestServeVerifyCatchesCorruption(t *testing.T) {
	w := serve.DefaultWorkload(true, 1)
	app := apps.NewServe(w)
	cfg := Config(8, 2)
	m := harness.NewMachine(cfg)
	app.Setup(m)
	if _, err := m.Run(app.Body); err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(m); err != nil {
		t.Fatalf("clean run failed verify: %v", err)
	}
	app.Store().Corrupt(m, 0)
	if err := app.Verify(m); err == nil {
		t.Fatal("verify passed after store corruption")
	}
}
