package exp

import (
	"bytes"
	"fmt"
	"reflect"

	"mgs/internal/fault"
	"mgs/internal/harness"
	"mgs/internal/sim"
)

// Chaos testing: run the application suite over the fault-injecting
// reliable transport (internal/fault, internal/msg reliable.go) and
// verify that the MGS protocol's answers survive message loss,
// duplication, and reordering. Two properties are checked per run:
//
//   - the app's own Verify passes (the computation is still right);
//   - the final shared-memory image is byte-identical to a fault-free
//     run of the same app on the same machine shape — faults may change
//     *when* everything happens, never *what* memory holds at the end.

// ChaosPlan is the default chaos schedule for one seed: 3% loss, 1%
// duplication, 5% of messages delayed up to fault.DefaultMaxDelay
// cycles. Within the ISSUE's ≤5%-loss / ≤2%-dup operating envelope with
// room to spare, and harsh enough to force retransmissions and replay
// suppression on every app.
func ChaosPlan(seed uint64) fault.Plan {
	return fault.Plan{Seed: seed, DropBP: 300, DupBP: 100, DelayBP: 500}
}

// ChaosPoint is the outcome of one (app, seed) chaos run.
type ChaosPoint struct {
	App  string
	Seed uint64
	Plan fault.Plan
	// Res is the faulty run's result; Res.Fault holds the transport
	// accounting (drops, retransmissions, suppressed replays, ...).
	Res harness.Result
	// BaseCycles is the fault-free baseline's parallel time on the same
	// machine shape.
	BaseCycles sim.Time
	// MemOK reports that the faulty run's final memory was byte-identical
	// to the baseline's.
	MemOK bool
}

// Slowdown is the faulty run's time relative to the fault-free baseline.
func (pt ChaosPoint) Slowdown() float64 {
	return float64(pt.Res.Cycles) / float64(pt.BaseCycles)
}

// ChaosSweep runs every named app fault-free once (the baseline) and
// then under mkPlan(seed) for every seed, all on a P=p, C=c machine.
// Each faulty run must pass its app's Verify; MemOK records the
// byte-for-byte memory comparison against the baseline. Runs execute
// concurrently (harness.SweepWorkers wide) and, like every sweep in this
// package, the results are independent of the worker count.
func ChaosSweep(names []string, seeds []uint64, p, c int, mkPlan func(uint64) fault.Plan, mk func(string) harness.App) ([]ChaosPoint, error) {
	baseMem := make([][]byte, len(names))
	baseRes := make([]harness.Result, len(names))
	errs := harness.RunIndexed(len(names), func(i int) error {
		res, mem, err := harness.RunAppMem(mk(names[i]), Config(p, c))
		if err != nil {
			return fmt.Errorf("chaos baseline %s: %w", names[i], err)
		}
		baseRes[i], baseMem[i] = res, mem
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	points := make([]ChaosPoint, len(names)*len(seeds))
	errs = harness.RunIndexed(len(points), func(i int) error {
		ai, si := i/len(seeds), i%len(seeds)
		plan := mkPlan(seeds[si])
		cfg := Config(p, c)
		cfg.Fault = plan
		res, mem, err := harness.RunAppMem(mk(names[ai]), cfg)
		if err != nil {
			return fmt.Errorf("chaos %s seed=%d: %w", names[ai], seeds[si], err)
		}
		points[i] = ChaosPoint{
			App: names[ai], Seed: seeds[si], Plan: plan, Res: res,
			BaseCycles: baseRes[ai].Cycles,
			MemOK:      bytes.Equal(mem, baseMem[ai]),
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return points, nil
}

// ZeroFaultEquivalence checks msg.AttachFault's identity contract at the
// harness level: the named app run with an empty (rateless) fault plan
// attached must produce a Result and final memory image identical to a
// run that never attached one. A non-nil error describes the first
// divergence.
func ZeroFaultEquivalence(name string, p, c int, mk func(string) harness.App) error {
	plainRes, plainMem, err := harness.RunAppMem(mk(name), Config(p, c))
	if err != nil {
		return fmt.Errorf("zero-fault %s plain: %w", name, err)
	}
	cfg := Config(p, c)
	cfg.Fault = fault.Plan{Seed: 12345} // seeded but rateless: still empty
	attRes, attMem, err := harness.RunAppMem(mk(name), cfg)
	if err != nil {
		return fmt.Errorf("zero-fault %s attached: %w", name, err)
	}
	if !reflect.DeepEqual(plainRes, attRes) {
		return fmt.Errorf("zero-fault %s: results diverge:\nplain:    %+v\nattached: %+v", name, plainRes, attRes)
	}
	if !bytes.Equal(plainMem, attMem) {
		return fmt.Errorf("zero-fault %s: final memory diverges", name)
	}
	return nil
}
