package exp

import (
	"bytes"
	"reflect"
	"testing"

	"mgs/internal/fault"
	"mgs/internal/harness"
	"mgs/internal/msync/algo"
)

// The synchronization zoo's end-to-end contracts, pinned at the exp
// layer: every lock×barrier algorithm pair survives the 5%-loss chaos
// envelope with byte-identical final memory, stays bit-identical across
// engine-worker counts (non-default algorithms force the sequential
// dispatcher; the matrix proves the gate, not just the engine), and the
// sweep itself reports sane metrics. Per-algorithm unit behaviour
// (fairness, hit accounting, pinned histograms) lives in
// internal/msync/algos_test.go; delivery-interleaving exhaustion lives
// in internal/check.

// syncCross is the full lock×barrier cross-product.
func syncCross() []SyncPair {
	var out []SyncPair
	for _, l := range algo.LockNames() {
		for _, b := range algo.BarrierNames() {
			out = append(out, SyncPair{Lock: l, Barrier: b})
		}
	}
	return out
}

// runSync runs the small syncbench on a P=8, C=2 machine with the given
// algorithms, workers, and plan.
func runSync(t *testing.T, pair SyncPair, workers int, plan fault.Plan) (harness.Result, []byte) {
	t.Helper()
	cfg := Config(8, 2,
		harness.WithLockAlgo(pair.Lock), harness.WithBarrierAlgo(pair.Barrier))
	cfg.EngineWorkers = workers
	cfg.Fault = plan
	res, mem, err := harness.RunAppMem(SmallApp("syncbench"), cfg)
	if err != nil {
		t.Fatalf("syncbench %s/%s workers=%d: %v", pair.Lock, pair.Barrier, workers, err)
	}
	return res, mem
}

// TestSyncChaosMemEquivalence is the 5%-loss memory-equivalence gate
// over the full algorithm cross-product: message loss may change when
// everything happens, never what memory holds at the end — and the
// app's own lost-update oracle must still pass (RunAppMem verifies).
func TestSyncChaosMemEquivalence(t *testing.T) {
	for _, pair := range syncCross() {
		_, base := runSync(t, pair, 0, fault.Plan{})
		for _, seed := range []uint64{1, 2} {
			_, mem := runSync(t, pair, 0, SyncLossPlan(seed))
			if !bytes.Equal(base, mem) {
				t.Errorf("%s/%s seed=%d: 5%%-loss final memory diverges from fault-free",
					pair.Lock, pair.Barrier, seed)
			}
		}
	}
}

// TestSyncEngineWorkersBitIdentical pins the parallel-dispatch gate
// over the cross-product: any worker count must be bit-identical to the
// sequential reference. Non-default algorithms are gated to sequential
// dispatch (harness parallelOK), so this holds by construction — the
// test proves the gate actually fires.
func TestSyncEngineWorkersBitIdentical(t *testing.T) {
	for _, pair := range syncCross() {
		refRes, refMem := runSync(t, pair, 1, fault.Plan{})
		for _, w := range []int{4, 8} {
			res, mem := runSync(t, pair, w, fault.Plan{})
			if !reflect.DeepEqual(refRes, res) {
				t.Errorf("%s/%s workers=%d: result diverges from sequential\nseq: %+v\npar: %+v",
					pair.Lock, pair.Barrier, w, refRes, res)
				continue
			}
			if !bytes.Equal(refMem, mem) {
				t.Errorf("%s/%s workers=%d: final memory diverges", pair.Lock, pair.Barrier, w)
			}
		}
	}
}

// TestSyncSweepWorkersIndependent pins that SyncSweep's output is
// independent of the harness.SweepWorkers width.
func TestSyncSweepWorkersIndependent(t *testing.T) {
	sweep := func(workers int) []SyncPoint {
		old := harness.SweepWorkers
		harness.SweepWorkers = workers
		defer func() { harness.SweepWorkers = old }()
		pts, err := SyncSweep(8, []int{2, 8}, SmallApp)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return pts
	}
	seq := sweep(1)
	par := sweep(4)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("sweep diverges across worker counts:\nseq: %+v\npar: %+v", seq, par)
	}
	for _, pt := range seq {
		if !pt.MemOK {
			t.Errorf("%s/%s C=%d: loss run memory diverged", pt.Lock, pt.Barrier, pt.C)
		}
		if pt.LockHitRatio < 0 || pt.LockHitRatio > 1 {
			t.Errorf("%s/%s C=%d: hit ratio %v out of range", pt.Lock, pt.Barrier, pt.C, pt.LockHitRatio)
		}
		if pt.C < 8 && pt.BarrierMeanWait <= 0 {
			t.Errorf("%s/%s C=%d: no barrier wait recorded", pt.Lock, pt.Barrier, pt.C)
		}
		if pt.CSDilation < 1 {
			t.Errorf("%s/%s C=%d: CS dilation %v below nominal", pt.Lock, pt.Barrier, pt.C, pt.CSDilation)
		}
	}
}

// TestSyncDefaultsKeepSuiteByteIdentical pins the default-path contract
// at the exp layer: explicitly selecting the default algorithm names
// yields results and memory bit-identical to a config that never
// mentions them, for a lock- and barrier-heavy app from the paper suite.
func TestSyncDefaultsKeepSuiteByteIdentical(t *testing.T) {
	for _, name := range []string{"tsp", "syncbench"} {
		plainRes, plainMem, err := harness.RunAppMem(SmallApp(name), Config(8, 2))
		if err != nil {
			t.Fatal(err)
		}
		selRes, selMem, err := harness.RunAppMem(SmallApp(name),
			Config(8, 2, harness.WithLockAlgo(algo.DefaultLock), harness.WithBarrierAlgo(algo.DefaultBarrier)))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plainRes, selRes) {
			t.Errorf("%s: explicit defaults diverge from unset:\nunset: %+v\nnamed: %+v", name, plainRes, selRes)
		}
		if !bytes.Equal(plainMem, selMem) {
			t.Errorf("%s: explicit defaults change final memory", name)
		}
	}
}
