package sim

import "testing"

// BenchmarkEventQueue measures one push+pop cycle through the event
// heap at a realistic standing population (a machine's worth of
// in-flight messages and timers).
func BenchmarkEventQueue(b *testing.B) {
	var q eventQueue
	fn := func() {}
	for i := 0; i < 256; i++ {
		q.Push(event{t: Time(i), seq: uint64(i), fn: fn})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := q.Pop()
		e.t += 256
		q.Push(e)
	}
}

// BenchmarkEngineDispatch measures a full event dispatch through the
// public API: schedule, pop, run.
func BenchmarkEngineDispatch(b *testing.B) {
	e := NewEngine()
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < b.N {
			e.After(1, fn)
		}
	}
	e.After(1, fn)
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
