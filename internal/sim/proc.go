package sim

import "fmt"

// procState describes what a Proc is doing, for deadlock diagnostics.
type procState string

const (
	stateNew     procState = "new"
	stateRunning procState = "running"
	stateSleep   procState = "sleeping"
	stateParked  procState = "parked"
	stateDone    procState = "done"
)

// Proc is a simulated processor: a coroutine with a local virtual clock.
//
// The body function runs in its own goroutine, but only while the engine
// has handed control to it; any call that yields (Sleep, Park) blocks
// the body until the engine resumes it. Proc methods other than Wake and
// AddDebt must only be called from the body goroutine; Wake and AddDebt
// are called from engine context (event callbacks).
type Proc struct {
	// ID is the processor number, unique within an engine.
	ID int

	eng    *Engine
	clock  Time
	debt   Time // handler preemption time owed, folded in on next Advance
	resume chan struct{}
	state  procState
	done   bool

	// busyUntil serializes protocol handlers that run "on" this
	// processor: a handler arriving at time t starts at
	// max(t, busyUntil). Managed by HandlerStart.
	busyUntil Time

	wakeAt Time // valid while parked, once Wake is called
}

// NewProc creates a processor whose body starts executing at time start.
// The body receives the Proc so it can advance its clock and yield.
func (e *Engine) NewProc(id int, start Time, body func(p *Proc)) *Proc {
	p := &Proc{ID: id, eng: e, clock: start, resume: make(chan struct{}), state: stateNew} //mgslint:allow nogoroutine -- per-proc resume channel of the engine handshake
	e.procs = append(e.procs, p)
	go func() { //mgslint:allow nogoroutine -- the one sanctioned spawn in sim: the proc body goroutine, parked on resume until the engine hands it control
		<-p.resume
		p.state = stateRunning
		body(p)
		p.state = stateDone
		p.done = true
		e.execFor(p).yield <- struct{}{} //mgslint:allow nogoroutine -- engine handshake: final yield when the body returns
	}()
	e.AtOn(p, start, func() { e.run(p) })
	return p
}

// Engine returns the engine this processor belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Clock returns the processor's local virtual time. It can run ahead of
// Engine.Now between yields (direct execution).
func (p *Proc) Clock() Time { return p.clock }

// Advance moves the local clock forward by d cycles of local work,
// folding in any interrupt debt accumulated by protocol handlers that
// preempted this processor. It does not yield. It returns the total
// cycles actually charged (d plus debt).
func (p *Proc) Advance(d Time) Time {
	d += p.debt
	p.debt = 0
	p.clock += d
	return d
}

// AddDebt charges d cycles of handler preemption to this processor; the
// charge lands on the next Advance. Safe to call from engine context.
func (p *Proc) AddDebt(d Time) { p.debt += d }

// Parked reports whether the processor is blocked in Park. Handlers use
// this to avoid charging preemption debt to a processor that is idle
// waiting (the wait itself absorbs the handler time).
func (p *Proc) Parked() bool { return p.state == stateParked }

// HandlerStart reserves the processor's protocol-handler resource for a
// handler arriving at time t that takes cost cycles. It returns the time
// the handler begins executing (>= t) and advances busyUntil. Call from
// engine context.
func (p *Proc) HandlerStart(t, cost Time) Time {
	start := t
	if p.busyUntil > start {
		start = p.busyUntil
	}
	p.busyUntil = start + cost
	return start
}

// BusyUntil reports when the last scheduled handler on this processor
// finishes.
func (p *Proc) BusyUntil() Time { return p.busyUntil }

// Sleep advances the local clock by d and yields so that other
// processors and events with earlier timestamps run first. Use it for
// long local operations whose duration is known up front.
func (p *Proc) Sleep(d Time) {
	p.clock += d + p.debt
	p.debt = 0
	p.state = stateSleep
	e := p.eng
	e.AtOn(p, p.clock, func() { e.run(p) })
	p.block()
}

// Yield gives the engine a chance to run events scheduled at or before
// the processor's current clock, without advancing the clock.
func (p *Proc) Yield() { p.Sleep(0) }

// Park blocks the processor until some event calls Wake. On return the
// local clock has advanced to at least the wake time. The caller is
// responsible for ensuring a Wake will eventually arrive; the engine
// reports a deadlock otherwise.
func (p *Proc) Park() {
	p.state = stateParked
	p.block()
	if p.wakeAt > p.clock {
		p.clock = p.wakeAt
	}
}

// Wake unparks the processor at time t (or the processor's own clock if
// later). It must be called from engine context, and only while the
// processor is parked.
func (p *Proc) Wake(t Time) {
	if p.state != stateParked {
		panic(fmt.Sprintf("sim: Wake of proc %d in state %s", p.ID, p.state))
	}
	p.wakeAt = t
	e := p.eng
	e.AtOn(p, t, func() { e.run(p) })
}

// block yields control back to the dispatcher that owns this
// processor's shard and waits to be resumed.
func (p *Proc) block() {
	p.eng.execFor(p).yield <- struct{}{} //mgslint:allow nogoroutine -- engine handshake: yield, then wait for resume; covers both lines
	<-p.resume
	p.state = stateRunning
}
