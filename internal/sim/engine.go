// Package sim provides a deterministic discrete-event simulation engine
// with cooperatively scheduled processor coroutines.
//
// The engine owns virtual time. Simulated processors (Proc) run real Go
// code in goroutines, but the engine guarantees that at most one
// goroutine — either the engine itself dispatching events, or exactly
// one Proc — is runnable at any instant, via a channel handshake. Runs
// are therefore bit-for-bit reproducible: there is no reliance on the
// Go scheduler, wall-clock time, or map iteration order anywhere on the
// simulated path.
//
// Two kinds of activity exist:
//
//   - Events: engine-context callbacks scheduled at absolute virtual
//     times (Engine.At / Engine.After). Events must not block; they are
//     how protocol handlers, message deliveries, and timer expiries run.
//   - Procs: coroutines with a local clock. A Proc advances its clock
//     cheaply for local work (Advance) and yields to the engine only
//     when it must interact with global ordering (Sleep, Park).
//
// Ties in virtual time break by scheduling order, so the simulation is
// a total order over events.
package sim

import (
	"fmt"
	"sort"
)

// Time is virtual time in processor clock cycles.
type Time int64

// Engine is a deterministic discrete-event simulator. The zero value is
// not usable; call NewEngine.
type Engine struct {
	now        Time
	seq        uint64
	queue      eventQueue
	dispatched int64

	yield chan struct{} // procs signal "I have blocked" on this
	cur   *Proc         // proc currently executing user code, if any

	procs   []*Proc
	stopped bool
	stopErr error

	// chooser, when non-nil, arbitrates ready labeled events (model
	// checking; see chooser.go). choiceIdx/choiceBuf are its reusable
	// scratch buffers.
	chooser   Chooser
	choiceIdx []int
	choiceBuf []Choice
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{yield: make(chan struct{})} //mgslint:allow nogoroutine -- the engine handshake channel: unbuffered, used only by Engine.run/Proc.block below
}

// Now returns the current virtual time: the timestamp of the event being
// dispatched, or of the last dispatched event.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run in engine context at absolute time t. If t is
// in the past it runs at the current time (still strictly after all
// already-scheduled events for that time).
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.queue.Push(event{t: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Dispatched reports the number of events dispatched so far — an
// engine-activity gauge for the observability spine. Host-side
// bookkeeping only; it never influences virtual time.
func (e *Engine) Dispatched() int64 { return e.dispatched }

// Stop aborts the run after the current event completes. Run returns err.
func (e *Engine) Stop(err error) {
	e.stopped = true
	e.stopErr = err
}

// Run dispatches events in time order until the queue drains or Stop is
// called. It returns an error if any Proc is still parked or unfinished
// when the queue drains (a simulated deadlock), with a diagnostic
// listing the stuck processors.
func (e *Engine) Run() error {
	for e.queue.Len() > 0 && !e.stopped {
		ev := e.next()
		// A chooser may dispatch a later-scheduled delivery ahead of an
		// earlier one; virtual time stays monotone (the clamp is a no-op
		// on the nil-chooser path, where ev is always the heap minimum).
		if ev.t > e.now {
			e.now = ev.t
		}
		e.dispatched++
		ev.fn()
	}
	if e.stopped {
		return e.stopErr
	}
	var stuck []string
	for _, p := range e.procs {
		if !p.done {
			stuck = append(stuck, fmt.Sprintf("proc %d (%s, clock %d)", p.ID, p.state, p.clock))
		}
	}
	if len(stuck) > 0 {
		sort.Strings(stuck)
		return fmt.Errorf("sim: deadlock, %d processors stuck: %v", len(stuck), stuck)
	}
	return nil
}

// run transfers control to p and waits until p blocks again (or
// finishes). Must be called from engine context.
func (e *Engine) run(p *Proc) {
	e.cur = p
	p.resume <- struct{}{} //mgslint:allow nogoroutine -- engine handshake: hand control to p's body goroutine
	<-e.yield              //mgslint:allow nogoroutine -- engine handshake: block until p yields, so exactly one goroutine is ever runnable
	e.cur = nil
}
