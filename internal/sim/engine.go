// Package sim provides a deterministic discrete-event simulation engine
// with cooperatively scheduled processor coroutines.
//
// The engine owns virtual time. Simulated processors (Proc) run real Go
// code in goroutines, but the engine guarantees that at most one
// goroutine — either the engine itself dispatching events, or exactly
// one Proc — is runnable at any instant, via a channel handshake. Runs
// are therefore bit-for-bit reproducible: there is no reliance on the
// Go scheduler, wall-clock time, or map iteration order anywhere on the
// simulated path.
//
// Two kinds of activity exist:
//
//   - Events: engine-context callbacks scheduled at absolute virtual
//     times (Engine.At / Engine.After). Events must not block; they are
//     how protocol handlers, message deliveries, and timer expiries run.
//   - Procs: coroutines with a local clock. A Proc advances its clock
//     cheaply for local work (Advance) and yields to the engine only
//     when it must interact with global ordering (Sleep, Park).
//
// Ties in virtual time break by scheduling order, so the simulation is
// a total order over events.
//
// Parallel dispatch. Parallelize arms a windowed parallel mode
// (parallel.go): events pinned to processors are sharded per SSMP and
// shards advance concurrently inside conservative lookahead windows,
// with a deterministic merge at every window edge that reconstructs the
// sequential engine's exact (time, seq) dispatch order. The sequential
// loop below remains the reference path and is what runs whenever the
// parallel mode is unarmed or ineligible.
package sim

import (
	"fmt"
	"sort"
)

// Time is virtual time in processor clock cycles.
type Time int64

// executor is one engine-side end of the coroutine handshake: the
// channel a yielding Proc signals, and the Proc currently holding
// control. The sequential engine has exactly one; the parallel mode
// gives each worker its own, so shards hand control to their own procs
// independently.
type executor struct {
	yield chan struct{} // procs signal "I have blocked" on this
	cur   *Proc         // proc currently executing user code, if any
}

// Engine is a deterministic discrete-event simulator. The zero value is
// not usable; call NewEngine.
type Engine struct {
	now        Time
	seq        uint64
	queue      eventQueue
	dispatched int64

	seqEx *executor // the sequential dispatcher's handshake

	procs   []*Proc
	stopped bool
	stopErr error

	// par, when non-nil, holds the armed parallel-dispatch configuration
	// (Parallelize). Run decides per run whether it is eligible.
	par *parEngine

	// chooser, when non-nil, arbitrates ready labeled events (model
	// checking; see chooser.go). choiceIdx/choiceBuf are its reusable
	// scratch buffers.
	chooser   Chooser
	choiceIdx []int
	choiceBuf []Choice
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{seqEx: &executor{yield: make(chan struct{})}} //mgslint:allow nogoroutine -- the engine handshake channel: unbuffered, used only by Engine.run/Proc.block below
}

// Now returns the current virtual time: the timestamp of the event being
// dispatched, or of the last dispatched event.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run in engine context at absolute time t. If t is
// in the past it runs at the current time (still strictly after all
// already-scheduled events for that time).
//
// At-scheduled events carry no processor pin, so a run containing them
// cannot be parallelized (Run falls back to the sequential dispatcher).
// Simulation code that may run under Parallelize must use AtOn/AtSend.
func (e *Engine) At(t Time, fn func()) {
	if e.par != nil && e.par.active {
		panic("sim: unpinned At while the parallel dispatcher is live; use AtOn or AtSend")
	}
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.queue.Push(event{t: t, seq: e.seq, fn: fn, pin: -1})
}

// AtOn schedules fn at absolute time t, pinned to processor p: the
// event models work happening on p's SSMP, and the caller asserts it is
// scheduling from that same SSMP's execution context (a body or event
// of p's shard). On the sequential path this is exactly At.
func (e *Engine) AtOn(p *Proc, t Time, fn func()) {
	if e.par != nil && e.par.active {
		e.par.schedule(p, p, t, fn)
		return
	}
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.queue.Push(event{t: t, seq: e.seq, fn: fn, pin: int32(p.ID)})
}

// AtSend schedules fn at absolute time t pinned to processor dst, from
// the execution context of processor src — the cross-shard scheduling
// primitive (message deliveries). The parallel dispatcher requires
// t - (src's current shard time) >= the configured lookahead whenever
// src and dst live on different shards; message latencies guarantee
// this by construction. On the sequential path this is exactly At.
func (e *Engine) AtSend(src, dst *Proc, t Time, fn func()) {
	if e.par != nil && e.par.active {
		e.par.schedule(src, dst, t, fn)
		return
	}
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.queue.Push(event{t: t, seq: e.seq, fn: fn, pin: int32(dst.ID)})
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Dispatched reports the number of events dispatched so far — an
// engine-activity gauge for the observability spine. Host-side
// bookkeeping only; it never influences virtual time.
func (e *Engine) Dispatched() int64 { return e.dispatched }

// Stop aborts the run after the current event completes. Run returns
// err. From code that may execute under the parallel dispatcher, use
// StopOn instead so the abort carries its shard context.
func (e *Engine) Stop(err error) {
	e.stopped = true
	e.stopErr = err
}

// StopOn aborts the run from the execution context of processor p. On
// the sequential path it is exactly Stop; under the parallel dispatcher
// the stop is recorded against p's shard and the earliest stop in the
// sequential dispatch order wins at the next window edge, so the
// returned error is identical to the sequential run's.
func (e *Engine) StopOn(p *Proc, err error) {
	if e.par != nil && e.par.active {
		e.par.stopOn(p, err)
		return
	}
	e.Stop(err)
}

// Run dispatches events in time order until the queue drains or Stop is
// called. It returns an error if any Proc is still parked or unfinished
// when the queue drains (a simulated deadlock), with a diagnostic
// listing the stuck processors.
func (e *Engine) Run() error {
	if e.par != nil && e.par.eligible(e) {
		return e.runParallel()
	}
	for e.queue.Len() > 0 && !e.stopped {
		ev := e.next()
		// A chooser may dispatch a later-scheduled delivery ahead of an
		// earlier one; virtual time stays monotone (the clamp is a no-op
		// on the nil-chooser path, where ev is always the heap minimum).
		if ev.t > e.now {
			e.now = ev.t
		}
		e.dispatched++
		ev.fn()
	}
	if e.stopped {
		return e.stopErr
	}
	return e.deadlockCheck()
}

// deadlockCheck reports the stuck-processor diagnostic shared by both
// dispatchers.
func (e *Engine) deadlockCheck() error {
	var stuck []string
	for _, p := range e.procs {
		if !p.done {
			stuck = append(stuck, fmt.Sprintf("proc %d (%s, clock %d)", p.ID, p.state, p.clock))
		}
	}
	if len(stuck) > 0 {
		sort.Strings(stuck)
		return fmt.Errorf("sim: deadlock, %d processors stuck: %v", len(stuck), stuck)
	}
	return nil
}

// execFor returns the handshake executor responsible for p: the
// sequential engine's unless the parallel dispatcher is live, in which
// case it is the worker driving p's shard.
func (e *Engine) execFor(p *Proc) *executor {
	if e.par != nil && e.par.active {
		return e.par.shards[e.par.shardOf(p.ID)].exec
	}
	return e.seqEx
}

// run transfers control to p and waits until p blocks again (or
// finishes). Must be called from the dispatcher that owns p's shard.
func (e *Engine) run(p *Proc) {
	ex := e.execFor(p)
	ex.cur = p
	p.resume <- struct{}{} //mgslint:allow nogoroutine -- engine handshake: hand control to p's body goroutine
	<-ex.yield             //mgslint:allow nogoroutine -- engine handshake: block until p yields, so exactly one goroutine per dispatcher is ever runnable
	ex.cur = nil
}
