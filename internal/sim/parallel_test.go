package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// parTrace is what one synthetic run observes: a per-proc event log
// (proc-local, so recording it is race-free under the parallel
// dispatcher) plus the final clocks.
type parTrace struct {
	logs   [][]string
	clocks []Time
}

// runSynthetic builds nshards shards of csize procs each. Every proc
// does bursts of local work, exchanges same-shard wake-ups, and sends
// cross-shard "messages" that arrive exactly `lat` cycles later — the
// lookahead the parallel dispatcher is armed with. workers <= 1 runs
// the sequential reference.
func runSynthetic(t *testing.T, nshards, csize, workers int, lat Time) parTrace {
	t.Helper()
	e := NewEngine()
	n := nshards * csize
	tr := parTrace{logs: make([][]string, n), clocks: make([]Time, n)}
	procs := make([]*Proc, n)
	record := func(id int, at Time, what string) {
		tr.logs[id] = append(tr.logs[id], fmt.Sprintf("%d:%s", at, what))
	}
	for i := 0; i < n; i++ {
		i := i
		procs[i] = e.NewProc(i, 0, func(p *Proc) {
			for round := 0; round < 6; round++ {
				p.Advance(Time(10 + (i*7+round*13)%50))
				// Same-shard ping to the next proc in the shard.
				peer := (i/csize)*csize + (i+1)%csize
				if peer != i {
					pp := procs[peer]
					e.AtOn(p, p.Clock()+5, func() {
						record(pp.ID, 0, "ping")
					})
				}
				// Cross-shard message to the same slot in the next shard.
				dst := (i + csize) % n
				dp, at := procs[dst], p.Clock()+lat+Time(round)
				e.AtSend(p, dp, at, func() {
					record(dp.ID, at, fmt.Sprintf("msg-from-%d", i))
				})
				p.Sleep(Time(20 + (i*3+round)%17))
			}
			record(i, p.Clock(), "done")
		})
	}
	e.Parallelize(csize, workers, lat)
	if err := e.Run(); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	for i, p := range procs {
		tr.clocks[i] = p.Clock()
	}
	return tr
}

func TestParallelMatchesSequential(t *testing.T) {
	for _, tc := range []struct{ nshards, csize, workers int }{
		{4, 2, 2}, {4, 2, 4}, {8, 1, 3}, {2, 4, 2}, {8, 4, 8},
	} {
		name := fmt.Sprintf("s%dc%dw%d", tc.nshards, tc.csize, tc.workers)
		t.Run(name, func(t *testing.T) {
			ref := runSynthetic(t, tc.nshards, tc.csize, 1, 1500)
			par := runSynthetic(t, tc.nshards, tc.csize, tc.workers, 1500)
			if !reflect.DeepEqual(ref.clocks, par.clocks) {
				t.Fatalf("clocks diverged:\nseq %v\npar %v", ref.clocks, par.clocks)
			}
			if !reflect.DeepEqual(ref.logs, par.logs) {
				t.Fatalf("per-proc logs diverged:\nseq %v\npar %v", ref.logs, par.logs)
			}
		})
	}
}

// TestParallelFallsBackOnUnpinnedEvent pins the fallback contract: one
// unpinned At event makes the armed engine run sequentially.
func TestParallelFallsBackOnUnpinnedEvent(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 4; i++ {
		e.NewProc(i, 0, func(p *Proc) { p.Advance(10) })
	}
	e.At(5, func() {})
	e.Parallelize(1, 4, 1000)
	if e.Parallelized() {
		t.Fatal("engine claims parallel eligibility with an unpinned event queued")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelStopPicksEarliest pins the Stop contract: with stops
// raised on two shards in one window, the error of the earliest stop in
// sequential dispatch order is returned, at every worker count.
func TestParallelStopPicksEarliest(t *testing.T) {
	run := func(workers int) error {
		e := NewEngine()
		procs := make([]*Proc, 4)
		for i := 0; i < 4; i++ {
			i := i
			procs[i] = e.NewProc(i, 0, func(p *Proc) {
				p.Advance(Time(10 * (i + 1)))
				if i >= 2 {
					pp := procs[i]
					e.AtOn(p, p.Clock(), func() {
						e.StopOn(pp, fmt.Errorf("stop-%d", pp.ID))
					})
				}
				p.Sleep(100)
			})
		}
		e.Parallelize(1, workers, 500)
		return e.Run()
	}
	ref := run(1)
	if ref == nil {
		t.Fatal("reference run did not stop")
	}
	for _, w := range []int{2, 4} {
		if got := run(w); got == nil || got.Error() != ref.Error() {
			t.Fatalf("workers=%d: got %v, want %v", w, got, ref)
		}
	}
}
