package sim

import (
	"fmt"
	"sort"
)

// Label identifies a choice-eligible event — in practice a protocol
// message delivery — for a Chooser. Labels exist so a model checker can
// (a) tell deliveries apart when enumerating interleavings and (b)
// render human-readable counterexample schedules. The zero Label (empty
// Kind) marks an event as not choice-eligible: AtChoice degrades to At.
type Label struct {
	// Kind is the message kind ("REQ", "DATA", "INV", ...). Empty means
	// "not a choice point".
	Kind string
	// Page is the page (or other object) the message is about, -1/0 when
	// none.
	Page int64
	// Src and Dst are the endpoint processors.
	Src, Dst int
	// Aux is a kind-specific argument (write flag, reply kind, payload
	// checksum) that distinguishes otherwise-identical deliveries.
	Aux int64
}

// String renders the label compactly for traces and counterexamples.
func (l Label) String() string {
	return fmt.Sprintf("%s pg=%d %d->%d aux=%d", l.Kind, l.Page, l.Src, l.Dst, l.Aux)
}

// Choice is one ready labeled event offered to a Chooser. T and Seq are
// the event's scheduled time and insertion sequence — the default
// dispatch key — so a Chooser can reproduce the engine's own order by
// picking index 0.
type Choice struct {
	T     Time
	Seq   uint64
	Label Label
}

// Chooser arbitrates ready labeled events. When a Chooser is installed
// (SetChooser) and the earliest pending event is labeled, the engine
// collects every pending labeled event in canonical (T, Seq) order and
// asks the Chooser which to dispatch next. Unlabeled events always keep
// the engine's deterministic (t, seq) order — only message deliveries
// branch, which is what bounds a model checker's fan-out.
//
// Choose runs in engine context between event dispatches: it must be
// deterministic, must not block, and must not call Proc methods that
// yield. An out-of-range return is treated as 0.
type Chooser interface {
	Choose(now Time, ready []Choice) int
}

// DefaultChooser always picks ready[0] — the engine's own (t, seq)
// order. A run with DefaultChooser installed is schedule-identical to a
// run with no chooser at all (a property the model checker's tests pin).
type DefaultChooser struct{}

// Choose picks the earliest ready event.
func (DefaultChooser) Choose(Time, []Choice) int { return 0 }

// SetChooser installs c as the ready-event arbiter for this engine's
// run. Install before Run; a nil Chooser (the default) keeps the
// historical fully-deterministic dispatch order on a code path that
// never inspects labels.
func (e *Engine) SetChooser(c Chooser) { e.chooser = c }

// Choosing reports whether a Chooser is installed. Producers use it to
// skip label construction on the (hot) normal path.
func (e *Engine) Choosing() bool { return e.chooser != nil }

// AtChoice schedules fn like At, additionally marking the event as a
// choice point carrying l. With no Chooser installed, or with an empty
// label, it is exactly At — zero allocation, identical schedule.
func (e *Engine) AtChoice(t Time, l Label, fn func()) {
	if e.chooser == nil || l.Kind == "" {
		e.At(t, fn)
		return
	}
	if t < e.now {
		t = e.now
	}
	e.seq++
	lab := l
	e.queue.Push(event{t: t, seq: e.seq, fn: fn, label: &lab, pin: -1})
}

// AtChoiceSend is AtSend with a choice label: the pinned counterpart of
// AtChoice. With no Chooser installed, or with an empty label, it is
// exactly AtSend (and therefore parallelizable); with a chooser armed
// the run is sequential by construction and the labeled event joins the
// choice set like AtChoice's.
func (e *Engine) AtChoiceSend(l Label, src, dst *Proc, t Time, fn func()) {
	if e.chooser == nil || l.Kind == "" {
		e.AtSend(src, dst, t, fn)
		return
	}
	if t < e.now {
		t = e.now
	}
	e.seq++
	lab := l
	e.queue.Push(event{t: t, seq: e.seq, fn: fn, label: &lab, pin: int32(dst.ID)})
}

// next returns the event to dispatch. On the nil-chooser path this is
// the heap minimum, byte-identical to the historical loop. With a
// chooser installed, a labeled heap minimum opens a choice: every
// pending labeled event is offered (in canonical (t, seq) order) and
// the chooser's pick is removed from the queue — which may be an event
// scheduled later than others still pending, so Run clamps time
// monotonically rather than assigning it.
func (e *Engine) next() event {
	if e.chooser == nil || e.queue.Peek().label == nil {
		return e.queue.Pop()
	}
	idx := e.choiceIdx[:0]
	for i := range e.queue.ev {
		if e.queue.ev[i].label != nil {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool { return e.queue.less(idx[a], idx[b]) })
	ready := e.choiceBuf[:0]
	for _, i := range idx {
		ev := &e.queue.ev[i]
		ready = append(ready, Choice{T: ev.t, Seq: ev.seq, Label: *ev.label})
	}
	k := e.chooser.Choose(e.now, ready)
	if k < 0 || k >= len(idx) {
		k = 0
	}
	e.choiceIdx, e.choiceBuf = idx[:0], ready[:0] // keep scratch capacity
	return e.queue.removeAt(idx[k])
}
