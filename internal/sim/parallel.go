package sim

import "fmt"

// Windowed parallel event dispatch.
//
// The machine model makes every cross-SSMP interaction pay a fixed
// minimum latency L (the inter-SSMP LAN of paper §4.2.2). That latency
// is a conservative PDES lookahead: an event executing at time t on one
// SSMP cannot schedule anything on another SSMP earlier than t+L. So
// the engine may shard the event heap per SSMP and let worker
// goroutines drain their shards independently up to a shared horizon
//
//	horizon = min(earliest pending event over all shards) + L
//
// without any shard ever missing a cross-shard event: such events land
// at or beyond the horizon by construction and are exchanged at the
// window edge.
//
// Bit-identity. The sequential engine orders events by (time, seq)
// where seq is the global creation counter. Shards executing a window
// concurrently cannot agree on seq live, so each creation gets a
// provisional per-shard seq (all provisional seqs sort after every
// final seq, and same-shard creations keep their relative order — which
// equals the sequential order restricted to that shard, because shards
// are causally independent inside a window). At the window edge a merge
// replays the window's dispatch logs in global (time, seq) order and
// assigns final seqs to every created event exactly as the sequential
// engine would have: a dispatch-log head always has a final seq by the
// time it is compared (its creator, on the same shard, was dispatched
// earlier and therefore merged earlier), and rewriting provisional seqs
// to finals is order-preserving within each shard, so the shard heaps
// stay valid without re-heapifying. Cross-shard creations are routed to
// their destination heaps only after finalization, so every heap
// comparison is between correctly ordered keys. The result: the
// committed dispatch order — and with it every clock, counter, and byte
// of simulated memory — is identical to the sequential run's.

// provisionalBase is the first provisional seq value. Final seqs count
// real event creations and stay far below it.
const provisionalBase uint64 = 1 << 48

// pevent is a scheduled callback in a shard heap. Unlike the sequential
// value-heap's event, it is heap-allocated so the window-edge merge can
// rewrite seq in place while the event sits in a heap or dispatch log.
type pevent struct {
	t   Time
	seq uint64
	fn  func()
	dst *shard
}

// logEntry records one dispatched event and how many events its
// handler created (the kids are contiguous in the shard's kids slice).
type logEntry struct {
	ev    *pevent
	nkids int32
}

// shard is one SSMP's event heap plus its window bookkeeping. All
// fields except exec are touched only by the worker that owns the
// shard during a window, and only by the coordinator between windows
// (the barrier channels provide the happens-before edges).
type shard struct {
	id   int
	heap pheap
	now  Time
	exec *executor

	pseq uint64     // per-shard provisional seq counter
	kids []*pevent  // events created this window, in creation order
	log  []logEntry // events dispatched this window, in dispatch order
	cur  *pevent    // event currently dispatching (StopOn context)

	dispatched int64

	stopped bool
	stopEv  *pevent
	stopErr error
}

// parEngine is the armed parallel-dispatch configuration and, during a
// run, its live state.
type parEngine struct {
	eng         *Engine
	clusterSize int
	workers     int
	lookahead   Time

	active bool
	shards []*shard
	owned  [][]*shard // per worker

	startCh []chan Time
	doneCh  chan struct{}

	// merge scratch, reused across windows
	heads, kidIdx []int
	cross         []*pevent
}

// Parallelize arms windowed parallel dispatch: processors are grouped
// into shards of clusterSize consecutive IDs and advanced by up to
// `workers` goroutines inside conservative windows of `lookahead`
// cycles. Call before Run. Run falls back to the sequential dispatcher
// — bit-identical by construction — whenever the run is ineligible:
// fewer than two shards, fewer than two effective workers, a chooser
// installed, a non-positive lookahead, or any unpinned event.
//
// The caller asserts that lookahead is a true lower bound on the gap
// between any cross-shard schedule and its source context's time;
// message-latency models provide it as the minimum inter-SSMP latency.
func (e *Engine) Parallelize(clusterSize, workers int, lookahead Time) {
	if clusterSize <= 0 || workers <= 1 || lookahead <= 0 {
		e.par = nil
		return
	}
	e.par = &parEngine{eng: e, clusterSize: clusterSize, workers: workers, lookahead: lookahead}
}

// Parallelized reports whether the engine is armed for parallel
// dispatch and the current queue/procs are eligible for it. After Run
// it reports whether the parallel dispatcher was (or would be) used.
func (e *Engine) Parallelized() bool { return e.par != nil && e.par.eligible(e) }

func (par *parEngine) shardOf(procID int) int { return procID / par.clusterSize }

// eligible decides whether this run can use the parallel dispatcher.
func (par *parEngine) eligible(e *Engine) bool {
	if e.chooser != nil || par.lookahead <= 0 || len(e.procs) == 0 {
		return false
	}
	maxID := 0
	for _, p := range e.procs {
		if p.ID > maxID {
			maxID = p.ID
		}
	}
	nshards := par.shardOf(maxID) + 1
	if nshards < 2 {
		return false
	}
	w := par.workers
	if w > nshards {
		w = nshards
	}
	if w < 2 {
		return false
	}
	for i := range e.queue.ev {
		if e.queue.ev[i].pin < 0 {
			return false
		}
	}
	return true
}

// schedule inserts an event created in src's shard context, pinned to
// dst's shard. Same-shard events join the heap immediately; cross-shard
// events wait in the creating shard's kids list and are routed at the
// window edge once their final seq is known.
func (par *parEngine) schedule(src, dst *Proc, t Time, fn func()) {
	ss := par.shards[par.shardOf(src.ID)]
	if t < ss.now {
		t = ss.now
	}
	ss.pseq++
	pe := &pevent{t: t, seq: ss.pseq, fn: fn, dst: par.shards[par.shardOf(dst.ID)]}
	ss.kids = append(ss.kids, pe)
	if pe.dst == ss {
		ss.heap.push(pe)
	}
}

// stopOn records a stop request from p's shard context. The earliest
// stop in the final dispatch order wins at the window edge.
func (par *parEngine) stopOn(p *Proc, err error) {
	sh := par.shards[par.shardOf(p.ID)]
	if !sh.stopped {
		sh.stopped = true
		sh.stopEv = sh.cur
		sh.stopErr = err
	}
}

// runParallel is the parallel counterpart of the sequential Run loop.
func (e *Engine) runParallel() error {
	par := e.par
	par.setup(e)
	par.active = true
	for w := range par.startCh {
		w := w
		go par.workerLoop(w) //mgslint:allow nogoroutine -- the parallel dispatcher's worker pool: each worker drains only its own shards inside a window, and the barrier channels order every cross-window access
	}
	for {
		minT, ok := par.minHeapTime()
		if !ok {
			break // every heap drained: the run is complete
		}
		horizon := minT + par.lookahead
		for _, ch := range par.startCh {
			ch <- horizon //mgslint:allow nogoroutine -- window-barrier publish: every worker gets the same horizon before any result is read
		}
		for range par.startCh {
			<-par.doneCh //mgslint:allow nogoroutine -- window-barrier collect: one token per worker; arrival order is irrelevant, the merge below re-establishes (t, seq) order
		}
		par.merge(e)
		if par.resolveStop(e) {
			break
		}
	}
	for _, ch := range par.startCh {
		close(ch) //mgslint:allow nogoroutine -- worker-pool shutdown after the last window; no simulated event remains
	}
	par.active = false
	if e.stopped {
		return e.stopErr
	}
	return e.deadlockCheck()
}

// setup builds the shards, assigns them to workers round-robin, and
// moves the pre-run event queue into the shard heaps (in (t, seq)
// order, so each heap is built sorted).
func (par *parEngine) setup(e *Engine) {
	maxID := 0
	for _, p := range e.procs {
		if p.ID > maxID {
			maxID = p.ID
		}
	}
	nshards := par.shardOf(maxID) + 1
	w := par.workers
	if w > nshards {
		w = nshards
	}
	execs := make([]*executor, w)
	for i := range execs {
		execs[i] = &executor{yield: make(chan struct{})} //mgslint:allow nogoroutine -- per-worker handshake channel, mirror of the sequential engine's
	}
	par.shards = make([]*shard, nshards)
	par.owned = make([][]*shard, w)
	for i := range par.shards {
		sh := &shard{id: i, exec: execs[i%w], pseq: provisionalBase}
		par.shards[i] = sh
		par.owned[i%w] = append(par.owned[i%w], sh)
	}
	par.startCh = make([]chan Time, w)
	for i := range par.startCh {
		par.startCh[i] = make(chan Time) //mgslint:allow nogoroutine -- window-barrier channel: coordinator publishes the horizon, workers acknowledge on doneCh
	}
	par.doneCh = make(chan struct{}) //mgslint:allow nogoroutine -- window-barrier channel (see startCh)
	par.heads = make([]int, nshards)
	par.kidIdx = make([]int, nshards)
	for e.queue.Len() > 0 {
		ev := e.queue.Pop()
		sh := par.shards[par.shardOf(int(ev.pin))]
		sh.heap.push(&pevent{t: ev.t, seq: ev.seq, fn: ev.fn, dst: sh})
	}
}

// workerLoop drains the worker's shards once per window.
func (par *parEngine) workerLoop(w int) {
	//mgslint:allow nogoroutine -- window-barrier receive: each worker has its own start channel, so no cross-worker ordering exists to leak
	for horizon := range par.startCh[w] {
		for _, sh := range par.owned[w] {
			par.drain(sh, horizon)
		}
		par.doneCh <- struct{}{} //mgslint:allow nogoroutine -- window-barrier acknowledge (see runParallel's collect loop)
	}
}

// drain dispatches sh's events strictly before the horizon, logging
// each dispatch for the window-edge merge.
func (par *parEngine) drain(sh *shard, horizon Time) {
	for !sh.stopped && sh.heap.len() > 0 {
		pe := sh.heap.min()
		if pe.t >= horizon {
			break
		}
		sh.heap.pop()
		if pe.t > sh.now {
			sh.now = pe.t
		}
		sh.dispatched++
		sh.log = append(sh.log, logEntry{ev: pe})
		idx := len(sh.log) - 1
		k0 := len(sh.kids)
		sh.cur = pe
		pe.fn()
		sh.cur = nil
		sh.log[idx].nkids = int32(len(sh.kids) - k0)
	}
}

// minHeapTime returns the earliest pending event time over all shards.
func (par *parEngine) minHeapTime() (Time, bool) {
	var minT Time
	ok := false
	for _, sh := range par.shards {
		if sh.heap.len() == 0 {
			continue
		}
		if t := sh.heap.min().t; !ok || t < minT {
			minT, ok = t, true
		}
	}
	return minT, ok
}

// merge replays the window's dispatch logs in global (t, seq) order,
// assigning final seqs to every event created in the window — exactly
// the seqs the sequential engine would have assigned — then routes
// cross-shard creations to their destination heaps.
func (par *parEngine) merge(e *Engine) {
	for i := range par.heads {
		par.heads[i], par.kidIdx[i] = 0, 0
	}
	for {
		best := -1
		var bestEv *pevent
		for i, sh := range par.shards {
			if par.heads[i] >= len(sh.log) {
				continue
			}
			pe := sh.log[par.heads[i]].ev
			if pe.seq >= provisionalBase {
				panic(fmt.Sprintf("sim: dispatch-log head of shard %d has provisional seq %d", i, pe.seq))
			}
			if best < 0 || pe.t < bestEv.t || (pe.t == bestEv.t && pe.seq < bestEv.seq) {
				best, bestEv = i, pe
			}
		}
		if best < 0 {
			break
		}
		sh := par.shards[best]
		en := sh.log[par.heads[best]]
		for k := int32(0); k < en.nkids; k++ {
			pe := sh.kids[par.kidIdx[best]]
			par.kidIdx[best]++
			e.seq++
			pe.seq = e.seq
			if pe.dst != sh {
				par.cross = append(par.cross, pe)
			}
		}
		par.heads[best]++
	}
	for _, pe := range par.cross {
		pe.dst.heap.push(pe)
	}
	par.cross = par.cross[:0]
	for _, sh := range par.shards {
		e.dispatched += sh.dispatched
		sh.dispatched = 0
		sh.log = sh.log[:0]
		sh.kids = sh.kids[:0]
	}
}

// resolveStop picks the earliest recorded stop in final dispatch order
// and commits it to the engine. Events dispatched after the stopping
// event within its window have already run — their side effects exist,
// unlike in a sequential run — but the returned error is identical, and
// a stopped run's results are not consumed.
func (par *parEngine) resolveStop(e *Engine) bool {
	var win *shard
	for _, sh := range par.shards {
		if !sh.stopped {
			continue
		}
		if win == nil || sh.stopEv.t < win.stopEv.t ||
			(sh.stopEv.t == win.stopEv.t && sh.stopEv.seq < win.stopEv.seq) {
			win = sh
		}
	}
	if win == nil {
		return false
	}
	e.stopped = true
	e.stopErr = win.stopErr
	return true
}

// pheap is a binary min-heap of *pevent ordered by (t, seq) — the
// pointer-based twin of the sequential value heap, so the window-edge
// merge can rewrite seqs of queued events in place.
type pheap struct{ ev []*pevent }

func (q *pheap) len() int     { return len(q.ev) }
func (q *pheap) min() *pevent { return q.ev[0] }
func (q *pheap) push(e *pevent) {
	q.ev = append(q.ev, e)
	i := len(q.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.ev[i], q.ev[parent] = q.ev[parent], q.ev[i]
		i = parent
	}
}

func (q *pheap) pop() *pevent {
	top := q.ev[0]
	n := len(q.ev) - 1
	q.ev[0] = q.ev[n]
	q.ev[n] = nil // clear so dispatched closures become collectable
	q.ev = q.ev[:n]
	if n > 0 {
		q.siftDown(0)
	}
	return top
}

func (q *pheap) less(i, j int) bool {
	a, b := q.ev[i], q.ev[j]
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

func (q *pheap) siftDown(i int) {
	n := len(q.ev)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.ev[i], q.ev[smallest] = q.ev[smallest], q.ev[i]
		i = smallest
	}
}
