package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventQueueOrdersByTimeThenSeq(t *testing.T) {
	var q eventQueue
	times := []Time{5, 1, 3, 1, 5, 0, 3}
	for i, tm := range times {
		i := i
		q.Push(event{t: tm, seq: uint64(i), fn: nil})
	}
	var got []event
	for q.Len() > 0 {
		got = append(got, q.Pop())
	}
	want := []struct {
		t   Time
		seq uint64
	}{{0, 5}, {1, 1}, {1, 3}, {3, 2}, {3, 6}, {5, 0}, {5, 4}}
	for i, w := range want {
		if got[i].t != w.t || got[i].seq != w.seq {
			t.Fatalf("pop %d: got (t=%d seq=%d), want (t=%d seq=%d)", i, got[i].t, got[i].seq, w.t, w.seq)
		}
	}
}

// Pop must zero the vacated tail slot: the slot keeps its backing array
// position alive, and a stale fn closure there pins everything the
// closure captured (procs, pages, buffers) for the life of the queue.
func TestEventQueuePopClearsTailSlot(t *testing.T) {
	var q eventQueue
	for i := 0; i < 4; i++ {
		q.Push(event{t: Time(i), seq: uint64(i), fn: func() {}})
	}
	for q.Len() > 0 {
		n := q.Len() - 1
		q.Pop()
		if got := q.ev[:n+1][n]; got.fn != nil || got.t != 0 || got.seq != 0 {
			t.Fatalf("vacated slot %d not cleared: %+v", n, got)
		}
	}
}

func TestEventQueuePropertySorted(t *testing.T) {
	f := func(raw []int16) bool {
		var q eventQueue
		for i, v := range raw {
			q.Push(event{t: Time(v), seq: uint64(i)})
		}
		prev := event{t: -1 << 62}
		for q.Len() > 0 {
			e := q.Pop()
			if e.t < prev.t || (e.t == prev.t && e.seq < prev.seq) {
				return false
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []Time
	for _, d := range []Time{30, 10, 20, 10} {
		d := d
		e.At(d, func() { order = append(order, d) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{10, 10, 20, 30}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now() = %d, want 30", e.Now())
	}
}

func TestEventCanScheduleMoreEvents(t *testing.T) {
	e := NewEngine()
	count := 0
	var step func()
	step = func() {
		count++
		if count < 5 {
			e.After(7, step)
		}
	}
	e.At(0, step)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 5 || e.Now() != 28 {
		t.Fatalf("count=%d now=%d, want 5, 28", count, e.Now())
	}
}

func TestPastEventClampsToNow(t *testing.T) {
	e := NewEngine()
	var ran Time = -1
	e.At(100, func() {
		e.At(50, func() { ran = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 100 {
		t.Fatalf("past event ran at %d, want clamped to 100", ran)
	}
}

func TestProcAdvanceAndSleep(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.NewProc(0, 0, func(p *Proc) {
		p.Advance(5)
		trace = append(trace, fmt.Sprintf("a@%d", p.Clock()))
		p.Sleep(10)
		trace = append(trace, fmt.Sprintf("b@%d", p.Clock()))
	})
	e.At(7, func() { trace = append(trace, "ev@7") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a@5", "ev@7", "b@15"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestTwoProcsInterleaveByClock(t *testing.T) {
	e := NewEngine()
	var order []int
	mk := func(id int, step Time) {
		e.NewProc(id, 0, func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(step)
				order = append(order, id)
			}
		})
	}
	mk(1, 10) // wakes at 10,20,30
	mk(2, 4)  // wakes at 4,8,12
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{2, 2, 1, 2, 1, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestParkWake(t *testing.T) {
	e := NewEngine()
	var woke Time
	p := e.NewProc(0, 0, func(p *Proc) {
		p.Advance(3)
		p.Park()
		woke = p.Clock()
	})
	e.At(50, func() { p.Wake(60) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 60 {
		t.Fatalf("woke at %d, want 60", woke)
	}
}

func TestWakeEarlierThanClockKeepsClock(t *testing.T) {
	e := NewEngine()
	var woke Time
	p := e.NewProc(0, 0, func(p *Proc) {
		p.Advance(100)
		p.Park()
		woke = p.Clock()
	})
	e.At(1, func() { p.Wake(5) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 100 {
		t.Fatalf("woke at %d, want clock preserved at 100", woke)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine()
	e.NewProc(0, 0, func(p *Proc) { p.Park() })
	err := e.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	sentinel := errors.New("stopped")
	ran := 0
	e.At(1, func() { ran++; e.Stop(sentinel) })
	e.At(2, func() { ran++ })
	if err := e.Run(); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if ran != 1 {
		t.Fatalf("ran = %d, want 1 (second event must not run)", ran)
	}
}

func TestDebtFoldsIntoAdvance(t *testing.T) {
	e := NewEngine()
	var after Time
	p := e.NewProc(0, 0, func(p *Proc) {
		p.Sleep(10)
		charged := p.Advance(5)
		if charged != 5+7 {
			t.Errorf("charged = %d, want 12", charged)
		}
		after = p.Clock()
	})
	e.At(3, func() { p.AddDebt(7) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if after != 22 {
		t.Fatalf("clock = %d, want 22", after)
	}
}

func TestHandlerStartSerializes(t *testing.T) {
	e := NewEngine()
	p := e.NewProc(0, 0, func(p *Proc) {})
	s1 := p.HandlerStart(10, 5)
	s2 := p.HandlerStart(12, 5)
	s3 := p.HandlerStart(30, 5)
	if s1 != 10 || s2 != 15 || s3 != 30 {
		t.Fatalf("starts = %d,%d,%d, want 10,15,30", s1, s2, s3)
	}
	if p.BusyUntil() != 35 {
		t.Fatalf("busyUntil = %d, want 35", p.BusyUntil())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestDeterminism runs a randomized workload twice with the same seed
// and requires identical traces: same wake order, same final clocks.
func TestDeterminism(t *testing.T) {
	runOnce := func(seed int64) []string {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var trace []string
		nprocs := 8
		for id := 0; id < nprocs; id++ {
			id := id
			steps := make([]Time, 50)
			for i := range steps {
				steps[i] = Time(rng.Intn(20) + 1)
			}
			e.NewProc(id, 0, func(p *Proc) {
				for _, s := range steps {
					p.Sleep(s)
					trace = append(trace, fmt.Sprintf("%d@%d", id, p.Clock()))
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a := runOnce(42)
	b := runOnce(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

// TestManyProcsAllFinish exercises the handshake at a larger scale.
func TestManyProcsAllFinish(t *testing.T) {
	e := NewEngine()
	finished := make([]bool, 64)
	for id := 0; id < 64; id++ {
		id := id
		e.NewProc(id, Time(id), func(p *Proc) {
			for i := 0; i < 10; i++ {
				p.Sleep(Time(1 + id%3))
			}
			finished[id] = true
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for id, ok := range finished {
		if !ok {
			t.Fatalf("proc %d did not finish", id)
		}
	}
}

// TestParkWakeChain: a ring of processors where each wakes the next,
// verifying Park/Wake pairs compose.
func TestParkWakeChain(t *testing.T) {
	e := NewEngine()
	const n = 5
	procs := make([]*Proc, n)
	var order []int
	for i := 0; i < n; i++ {
		i := i
		procs[i] = e.NewProc(i, 0, func(p *Proc) {
			if i != 0 {
				p.Park()
			}
			order = append(order, i)
			if i+1 < n {
				next := procs[i+1]
				at := p.Clock() + 10
				p.eng.At(p.Clock(), func() { next.Wake(at) })
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(order) || len(order) != n {
		t.Fatalf("order = %v, want 0..%d in order", order, n-1)
	}
}

func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine()
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			e.After(1, step)
		}
	}
	e.At(0, step)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkProcContextSwitch(b *testing.B) {
	e := NewEngine()
	e.NewProc(0, 0, func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
