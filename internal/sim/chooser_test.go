package sim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestEventQueueRemoveAtPreservesHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var q eventQueue
		n := 1 + rng.Intn(30)
		var want []event
		for i := 0; i < n; i++ {
			e := event{t: Time(rng.Intn(10)), seq: uint64(i)}
			q.Push(e)
			want = append(want, e)
		}
		// Remove a few arbitrary positions, tracking what should remain.
		for k := 0; k < 3 && q.Len() > 0; k++ {
			i := rng.Intn(q.Len())
			victim := q.ev[i]
			got := q.removeAt(i)
			if got.t != victim.t || got.seq != victim.seq {
				t.Fatalf("removeAt(%d) returned (t=%d seq=%d), want (t=%d seq=%d)",
					i, got.t, got.seq, victim.t, victim.seq)
			}
			for j, w := range want {
				if w.seq == victim.seq {
					want = append(want[:j], want[j+1:]...)
					break
				}
			}
		}
		sort.Slice(want, func(a, b int) bool {
			if want[a].t != want[b].t {
				return want[a].t < want[b].t
			}
			return want[a].seq < want[b].seq
		})
		for i := 0; q.Len() > 0; i++ {
			got := q.Pop()
			if got.t != want[i].t || got.seq != want[i].seq {
				t.Fatalf("trial %d pop %d: got (t=%d seq=%d), want (t=%d seq=%d)",
					trial, i, got.t, got.seq, want[i].t, want[i].seq)
			}
		}
	}
}

// pickLast always dispatches the latest ready labeled event — the most
// aggressive reordering a Chooser can ask for.
type pickLast struct{ picked []Label }

func (c *pickLast) Choose(now Time, ready []Choice) int {
	c.picked = append(c.picked, ready[len(ready)-1].Label)
	return len(ready) - 1
}

func TestChooserReordersLabeledEventsOnly(t *testing.T) {
	e := NewEngine()
	ch := &pickLast{}
	e.SetChooser(ch)
	var order []string
	rec := func(name string) func() { return func() { order = append(order, name) } }
	e.AtChoice(10, Label{Kind: "A"}, rec("A"))
	e.AtChoice(20, Label{Kind: "B"}, rec("B"))
	e.AtChoice(30, Label{Kind: "C"}, rec("C"))
	e.At(5, rec("plain5"))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"plain5", "C", "B", "A"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("final time %d, want 30 (monotone clamp)", e.Now())
	}
}

func TestDefaultChooserMatchesNilChooser(t *testing.T) {
	run := func(c Chooser) (order []string, final Time) {
		e := NewEngine()
		if c != nil {
			e.SetChooser(c)
		}
		rec := func(name string) func() { return func() { order = append(order, name) } }
		e.AtChoice(10, Label{Kind: "A"}, rec("A"))
		e.AtChoice(10, Label{Kind: "B"}, rec("B"))
		e.At(10, rec("plain"))
		e.AtChoice(3, Label{Kind: "C"}, rec("C"))
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return order, e.Now()
	}
	a, at := run(nil)
	b, bt := run(DefaultChooser{})
	if len(a) != len(b) || at != bt {
		t.Fatalf("nil=%v@%d default=%v@%d", a, at, b, bt)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge: nil=%v default=%v", a, b)
		}
	}
}
