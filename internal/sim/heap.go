package sim

// event is a scheduled callback. Events with equal times fire in
// insertion order (seq), which makes runs fully deterministic. label is
// nil except for choice points scheduled through AtChoice while a
// Chooser is installed — a pointer so the hot-path struct stays small.
type event struct {
	t     Time
	seq   uint64
	fn    func()
	label *Label
	// pin is the processor the event is pinned to (AtOn/AtSend), or -1
	// for an unpinned At event. The sequential dispatcher ignores it;
	// the parallel dispatcher routes by it and refuses runs containing
	// unpinned events.
	pin int32
}

// eventQueue is a binary min-heap ordered by (t, seq). It is hand-rolled
// rather than built on container/heap to avoid interface boxing on the
// hottest path in the simulator.
type eventQueue struct {
	ev []event
}

func (q *eventQueue) Len() int { return len(q.ev) }

func (q *eventQueue) Push(e event) {
	q.ev = append(q.ev, e)
	q.siftUp(len(q.ev) - 1)
}

func (q *eventQueue) Pop() event {
	top := q.ev[0]
	n := len(q.ev) - 1
	q.ev[0] = q.ev[n]
	q.ev[n] = event{} // clear so dispatched closures become collectable
	q.ev = q.ev[:n]
	if n > 0 {
		q.siftDown(0)
	}
	return top
}

// Peek returns the earliest event without removing it. It must not be
// called on an empty queue.
func (q *eventQueue) Peek() event { return q.ev[0] }

func (q *eventQueue) less(i, j int) bool {
	a, b := &q.ev[i], &q.ev[j]
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

func (q *eventQueue) siftDown(i int) bool {
	n := len(q.ev)
	moved := false
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return moved
		}
		q.ev[i], q.ev[smallest] = q.ev[smallest], q.ev[i]
		i = smallest
		moved = true
	}
}

func (q *eventQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.ev[i], q.ev[parent] = q.ev[parent], q.ev[i]
		i = parent
	}
}

// removeAt extracts the event at heap position i, restoring heap order.
// Used only by the chooser path; Pop remains the hot-path extraction.
func (q *eventQueue) removeAt(i int) event {
	out := q.ev[i]
	n := len(q.ev) - 1
	q.ev[i] = q.ev[n]
	q.ev[n] = event{} // clear so dispatched closures become collectable
	q.ev = q.ev[:n]
	if i < n {
		if !q.siftDown(i) {
			q.siftUp(i)
		}
	}
	return out
}
