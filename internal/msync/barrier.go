package msync

import (
	"fmt"

	"mgs/internal/msync/algo"
	"mgs/internal/obs"
	"mgs/internal/sim"
	"mgs/internal/stats"
)

// Barrier is one MGS tree barrier: a local combine per SSMP, then one
// COMBINE and one RELEASE message per SSMP through the barrier's home.
//
//mgs:shared
type Barrier struct {
	m    *System
	id   int
	home int // global processor hosting the top of the tree

	local   []localBarrier //mgs:shardpinned each combining node is touched only by its own SSMP's shard
	arrived int            //mgs:shardpinned home-side handlers only; SSMPs combined this episode

	episodes int64 //mgs:shardpinned home-side handlers only
}

// localBarrier is the per-SSMP combining node.
type localBarrier struct {
	count   int
	waiting []*sim.Proc
	// maxClock is the latest virtual arrival time this episode. The
	// upward COMBINE is timestamped with it: under direct execution a
	// run-ahead processor can arrive first in engine order with a
	// far-future clock, and the combine must not depart before every
	// local arrival's virtual time.
	maxClock sim.Time
}

// Barrier returns the barrier with the given id, creating it on first
// use. Creation is guarded (see System.mu); the created state is a pure
// function of id, so concurrent first uses agree.
func (m *System) Barrier(id int) algo.Barrier {
	m.mu.Lock()
	defer m.mu.Unlock()
	if b, ok := m.barriers[id]; ok {
		return b
	}
	if m.barrierAlgo != nil {
		b := &algoBarrier{m: m, id: id, impl: m.barrierAlgo.NewBarrier(algoEnv{m}, id, id%m.p)}
		m.barriers[id] = b
		return b
	}
	b := &Barrier{m: m, id: id, home: id % m.p, local: make([]localBarrier, m.nssmp())}
	m.barriers[id] = b
	return b
}

// Arrive blocks processor p until all processors have arrived. Arrival
// is a release point: the caller's delayed update queue drains first
// (charged as MGS), and only then does the barrier account start.
func (b *Barrier) Arrive(p *sim.Proc) {
	p.Yield() // surface run-ahead before taking part in ordering
	m := b.m
	pk, pid := m.st.ProfSet(p.ID, obs.ObjBarrier, int64(b.id))
	defer m.st.ProfSet(p.ID, pk, pid)
	m.dsm.ReleaseAll(p)
	m.charge(p, stats.Barrier, m.costs.BarrierOp)
	s := m.ssmpOf(p.ID)
	lb := &b.local[s]
	lb.count++
	if p.Clock() > lb.maxClock {
		lb.maxClock = p.Clock()
	}
	if lb.count == m.c {
		// Last arriver in the SSMP: combine upward, no earlier than the
		// latest local arrival.
		when := lb.maxClock
		lb.count = 0
		lb.maxClock = 0
		m.emitSync(when, p.ID, obs.ObjBarrier, b.id, "COMBINE", "ssmp=%d proc=%d", s, p.ID)
		m.charge(p, stats.Barrier, m.net.SendCost())
		m.net.SendTagged(sim.Label{Kind: "BAR.COMB", Page: int64(b.id), Src: p.ID, Dst: b.home, Aux: int64(s)},
			p.ID, b.home, when, 32, m.costs.BarrierOp,
			func(at sim.Time) { b.onCombine(at) })
	}
	lb.waiting = append(lb.waiting, p)
	c0 := p.Clock()
	p.Park() // woken by the local release
	m.st.Charge(p.ID, stats.Barrier, p.Clock()-c0)
	if m.barrierWait != nil {
		m.barrierWait.Observe(int64(p.Clock() - c0))
	}
	m.dsm.AcquireSync(p) // a barrier exit is an acquire (lazy release)
}

// onCombine runs at the barrier home: one SSMP has fully arrived.
func (b *Barrier) onCombine(at sim.Time) {
	b.arrived++
	b.m.emitSync(at, -1, obs.ObjBarrier, b.id, "COMBINE.HOME", "arrived=%d/%d", b.arrived, b.m.nssmp())
	if b.arrived < b.m.nssmp() {
		return
	}
	b.arrived = 0
	b.episodes++
	m := b.m
	for s := 0; s < m.nssmp(); s++ {
		s := s
		m.net.SendTagged(sim.Label{Kind: "BAR.REL", Page: int64(b.id), Src: b.home, Dst: m.repProc(s, b.id), Aux: int64(s)},
			b.home, m.repProc(s, b.id), at, 32, m.costs.BarrierOp,
			func(at2 sim.Time) { b.onRelease(s, at2) })
	}
}

// onRelease runs in each SSMP: wake every waiting processor. Wakeups
// stagger slightly, modeling the sequential reads of the shared release
// flag.
func (b *Barrier) onRelease(s int, at sim.Time) {
	lb := &b.local[s]
	b.m.emitSync(at, -1, obs.ObjBarrier, b.id, "RELEASE", "ssmp=%d waiters=%d", s, len(lb.waiting))
	waiters := lb.waiting
	lb.waiting = nil
	for i, p := range waiters {
		p.Wake(at + sim.Time(i+1)*b.m.costs.BarrierOp/4)
	}
}

// Episodes reports how many times the barrier has released.
func (b *Barrier) Episodes() int64 { return b.episodes }

// Dump implements algo.Dumper with the native tree barrier's state, in
// the format DumpState has always printed.
func (b *Barrier) Dump(f func(format string, args ...any)) {
	f("barrier=%d arrived=%d", b.id, b.arrived)
	for s := range b.local {
		lb := &b.local[s]
		if lb.count > 0 || len(lb.waiting) > 0 {
			var ws []int
			for _, p := range lb.waiting {
				ws = append(ws, p.ID)
			}
			f("  ssmp=%d count=%d waiting=%v", s, lb.count, ws)
		}
	}
}

// Quiescent implements algo.Quiescer: no partial episode anywhere.
func (b *Barrier) Quiescent() error {
	if b.arrived != 0 {
		return fmt.Errorf("barrier %d (tree): %d SSMP combines unanswered", b.id, b.arrived)
	}
	for s := range b.local {
		lb := &b.local[s]
		if lb.count > 0 || len(lb.waiting) > 0 {
			return fmt.Errorf("barrier %d (tree): ssmp %d mid-episode (count=%d waiters=%d)", b.id, s, lb.count, len(lb.waiting))
		}
	}
	return nil
}
