package msync

import (
	"testing"

	"mgs/internal/cache"
	"mgs/internal/core"
	"mgs/internal/msg"
	"mgs/internal/sim"
	"mgs/internal/stats"
	"mgs/internal/vm"
)

type testMachine struct {
	eng    *sim.Engine
	dsm    *core.System
	sync   *System
	st     *stats.Collector
	procs  []*sim.Proc
	bodies []func(p *sim.Proc)
}

func buildTest(p, c int, delay sim.Time) *testMachine {
	eng := sim.NewEngine()
	tm := &testMachine{eng: eng, bodies: make([]func(*sim.Proc), p)}
	for i := 0; i < p; i++ {
		i := i
		tm.procs = append(tm.procs, eng.NewProc(i, 0, func(pr *sim.Proc) {
			if tm.bodies[i] != nil {
				tm.bodies[i](pr)
			}
		}))
	}
	mc := msg.Costs{SendOverhead: 40, HandlerEntry: 100, PerHop: 2, BytesPerCycle: 1, InterDelay: delay, InterOverhead: 100}
	net := msg.NewNetwork(eng, tm.procs, c, mc)
	st := stats.NewCollector(p)
	net.OnHandler = func(proc int, cyc sim.Time) { st.Charge(proc, stats.MGS, cyc) }
	space := vm.NewSpace(1024, p)
	cfg := core.Config{
		NProcs: p, ClusterSize: c, PageSize: 1024, TLBSize: 64,
		Costs: core.DefaultCosts(), CacheParams: cache.DefaultParams(),
		CacheCosts: cache.Costs{Hit: 2, Local: 11, Remote: 38, TwoParty: 42, ThreeParty: 63, Software: 425, CleanPerLine: 20},
	}
	tm.st = st
	tm.dsm = core.New(eng, net, space, st, tm.procs, cfg)
	tm.sync = New(eng, tm.dsm, net, st, tm.procs, DefaultCosts())
	return tm
}

func (tm *testMachine) run(t *testing.T) {
	t.Helper()
	if err := tm.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLockMutualExclusion(t *testing.T) {
	tm := buildTest(8, 2, 500)
	lock := tm.sync.Lock(0)
	inCS := 0
	maxCS := 0
	counter := 0
	for i := 0; i < 8; i++ {
		tm.bodies[i] = func(p *sim.Proc) {
			for k := 0; k < 5; k++ {
				lock.Acquire(p)
				inCS++
				if inCS > maxCS {
					maxCS = inCS
				}
				counter++
				p.Advance(100)
				p.Yield() // give others a chance to (incorrectly) enter
				inCS--
				lock.Release(p)
			}
		}
	}
	tm.run(t)
	if maxCS != 1 {
		t.Fatalf("mutual exclusion violated: %d processors in CS", maxCS)
	}
	if counter != 40 {
		t.Fatalf("counter = %d, want 40", counter)
	}
	hits, total := lock.Stats()
	if total != 40 {
		t.Fatalf("total acquires = %d, want 40", total)
	}
	if hits < 1 || hits >= total {
		t.Fatalf("hits = %d of %d; expected some local handoffs and some token moves", hits, total)
	}
}

func TestLockHitRatioGrowsWithClusterSize(t *testing.T) {
	ratio := func(c int) float64 {
		tm := buildTest(8, c, 1000)
		lock := tm.sync.Lock(3)
		for i := 0; i < 8; i++ {
			tm.bodies[i] = func(p *sim.Proc) {
				for k := 0; k < 10; k++ {
					lock.Acquire(p)
					p.Advance(50)
					lock.Release(p)
				}
			}
		}
		tm.run(t)
		h, tot := lock.Stats()
		return float64(h) / float64(tot)
	}
	r1, r8 := ratio(1), ratio(8)
	if r8 != 1.0 {
		t.Fatalf("single-SSMP hit ratio = %v, want 1.0", r8)
	}
	if r1 >= r8 {
		t.Fatalf("hit ratio did not grow with cluster size: C=1 %v, C=8 %v", r1, r8)
	}
}

func TestLockReleaseFlushesDUQ(t *testing.T) {
	// Critical-section dilation: a lock release must drain the DUQ.
	tm := buildTest(4, 2, 500)
	va := tm.dsm.Space().AllocPages(1024)
	lock := tm.sync.Lock(0)
	tm.bodies[2] = func(p *sim.Proc) { // SSMP 1, page home SSMP 0
		lock.Acquire(p)
		f, off := tm.dsm.Access(p, va, true, false)
		f.Store64(off, 77)
		if tm.dsm.DUQLen(p.ID) != 1 {
			t.Errorf("DUQ len = %d before release, want 1", tm.dsm.DUQLen(p.ID))
		}
		lock.Release(p)
		if tm.dsm.DUQLen(p.ID) != 0 {
			t.Errorf("DUQ len = %d after release, want 0", tm.dsm.DUQLen(p.ID))
		}
	}
	tm.run(t)
	if got := tm.dsm.BackdoorLoad64(va); got != 77 {
		t.Fatalf("home = %d, want 77 (release must flush)", got)
	}
}

func TestLockFairnessAcrossSSMPs(t *testing.T) {
	// With continuous demand from every SSMP, every processor must
	// still complete all its acquires (no starvation).
	tm := buildTest(8, 2, 800)
	lock := tm.sync.Lock(1)
	got := make([]int, 8)
	for i := 0; i < 8; i++ {
		i := i
		tm.bodies[i] = func(p *sim.Proc) {
			for k := 0; k < 8; k++ {
				lock.Acquire(p)
				got[i]++
				p.Advance(30)
				lock.Release(p)
			}
		}
	}
	tm.run(t)
	for i, n := range got {
		if n != 8 {
			t.Fatalf("proc %d completed %d acquires, want 8", i, n)
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, c := range []int{1, 2, 4, 8} {
		tm := buildTest(8, c, 600)
		b := tm.sync.Barrier(0)
		phase := make([]int, 8)
		for i := 0; i < 8; i++ {
			i := i
			tm.bodies[i] = func(p *sim.Proc) {
				for ph := 0; ph < 4; ph++ {
					p.Advance(sim.Time(100 * (i + 1))) // skewed arrival
					b.Arrive(p)
					phase[i]++
					// After the barrier, everyone must have finished
					// the previous phase.
					for j := range phase {
						if phase[j] < phase[i]-1 {
							t.Errorf("C=%d: proc %d at phase %d saw proc %d at %d", c, i, phase[i], j, phase[j])
						}
					}
				}
			}
		}
		tm.run(t)
		if b.Episodes() != 4 {
			t.Fatalf("C=%d: episodes = %d, want 4", c, b.Episodes())
		}
	}
}

func TestBarrierMessageCount(t *testing.T) {
	// The tree barrier must use exactly 2 inter-SSMP messages per
	// non-home SSMP per episode (combine + release), plus intra ones.
	tm := buildTest(8, 2, 600)
	b := tm.sync.Barrier(0)
	for i := 0; i < 8; i++ {
		tm.bodies[i] = func(p *sim.Proc) { b.Arrive(p) }
	}
	tm.run(t)
	// 4 SSMPs; home is in SSMP 0. COMBINE from SSMPs 1-3 = 3 inter,
	// RELEASE to SSMPs 1-3 = 3 inter. SSMP 0's combine+release are
	// intra. Total inter = 6.
	net := tm.sync.net
	if net.Counters.InterMsgs != 6 {
		t.Fatalf("inter-SSMP messages = %d, want 6", net.Counters.InterMsgs)
	}
}

func TestBarrierIsReleasePoint(t *testing.T) {
	tm := buildTest(4, 2, 500)
	va := tm.dsm.Space().AllocPages(1024)
	b := tm.sync.Barrier(0)
	var got uint64
	tm.bodies[2] = func(p *sim.Proc) { // SSMP 1 writes
		f, off := tm.dsm.Access(p, va, true, false)
		f.Store64(off, 55)
		b.Arrive(p)
	}
	for _, i := range []int{0, 1, 3} {
		i := i
		tm.bodies[i] = func(p *sim.Proc) {
			b.Arrive(p)
			if i == 0 {
				f, off := tm.dsm.Access(p, va, false, false)
				got = f.Load64(off)
			}
		}
	}
	tm.run(t)
	if got != 55 {
		t.Fatalf("read %d after barrier, want 55 (barrier must flush)", got)
	}
}

func TestManyLocksIndependent(t *testing.T) {
	tm := buildTest(4, 2, 300)
	counters := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		tm.bodies[i] = func(p *sim.Proc) {
			l := tm.sync.Lock(i % 2)
			for k := 0; k < 6; k++ {
				l.Acquire(p)
				counters[i%2]++
				l.Release(p)
			}
		}
	}
	tm.run(t)
	if counters[0] != 12 || counters[1] != 12 {
		t.Fatalf("counters = %v, want [12 12]", counters)
	}
	h, tot := tm.sync.LockStats()
	if tot != 24 {
		t.Fatalf("aggregate total = %d, want 24", tot)
	}
	if h > tot {
		t.Fatalf("hits %d > total %d", h, tot)
	}
}

func TestLockHomedPlacesToken(t *testing.T) {
	tm := buildTest(8, 2, 500)
	// Lock homed at proc 6 (SSMP 3): its first acquire from SSMP 3 is
	// a hit; from SSMP 0 it needs the token.
	l := tm.sync.LockHomed(42, 6)
	tm.bodies[6] = func(p *sim.Proc) {
		l.Acquire(p)
		p.Advance(10)
		l.Release(p)
	}
	tm.bodies[0] = func(p *sim.Proc) {
		p.Sleep(100_000)
		l.Acquire(p)
		l.Release(p)
	}
	tm.run(t)
	hits, total := l.Stats()
	if total != 2 || hits != 1 {
		t.Fatalf("hits/total = %d/%d, want 1/2 (home-side acquire hits)", hits, total)
	}
}

// TestBarrierRunAheadStraggler: under direct execution a processor can
// run far ahead of the others between yields (Advance does not yield)
// and arrive at the barrier first in ENGINE order while being last in
// VIRTUAL time. Nobody may leave the barrier before the straggler's
// virtual arrival — regression test for the combine-timestamp bug.
func TestBarrierRunAheadStraggler(t *testing.T) {
	for _, home := range []int{0, 1, 2} { // straggler's SSMP, peer SSMP, id variation
		tm := buildTest(4, 2, 500)
		after := make([]sim.Time, 4)
		for i := 0; i < 4; i++ {
			i := i
			tm.bodies[i] = func(p *sim.Proc) {
				if i == 0 {
					p.Advance(300_000) // run-ahead: no yield before arrival
				}
				tm.sync.Barrier(home).Arrive(p)
				after[i] = p.Clock()
			}
		}
		tm.run(t)
		for i, v := range after {
			if v < 300_000 {
				t.Fatalf("home=%d: proc %d left barrier at %d, before the straggler's 300000", home, i, v)
			}
		}
	}
}

// TestBarrierReusableAcrossEpisodes runs the same barrier several times
// and checks every episode holds everyone.
func TestBarrierReusableAcrossEpisodes(t *testing.T) {
	const rounds = 5
	tm := buildTest(4, 2, 500)
	var mismatches int
	arrived := 0
	for i := 0; i < 4; i++ {
		i := i
		tm.bodies[i] = func(p *sim.Proc) {
			for r := 0; r < rounds; r++ {
				p.Sleep(sim.Time(1000 * (i + 1))) // skewed arrivals
				arrived++
				tm.sync.Barrier(2).Arrive(p)
				// Everyone must observe all arrivals of this round.
				if arrived != 4*(r+1) {
					mismatches++
				}
			}
		}
	}
	tm.run(t)
	if mismatches != 0 {
		t.Fatalf("%d barrier episodes leaked early arrivals", mismatches)
	}
	if got := tm.sync.Barrier(2).Episodes(); got != rounds {
		t.Fatalf("episodes = %d, want %d", got, rounds)
	}
}

// TestBarrierSingleSSMP: with C = P the barrier degenerates to the
// local combine plus one self-directed combine/release pair.
func TestBarrierSingleSSMP(t *testing.T) {
	tm := buildTest(4, 4, 0)
	done := 0
	for i := 0; i < 4; i++ {
		tm.bodies[i] = func(p *sim.Proc) {
			tm.sync.Barrier(0).Arrive(p)
			done++
		}
	}
	tm.run(t)
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
}

// TestLockDemandWhileHeld: a DEMAND arriving while the local lock is
// held must be remembered and honored at the next release, sending the
// token home rather than handing it to a local waiter first.
func TestLockDemandWhileHeld(t *testing.T) {
	tm := buildTest(4, 2, 1000)
	var order []int
	tm.bodies[0] = func(p *sim.Proc) { // SSMP 0 holds the token (home)
		l := tm.sync.Lock(0)
		l.Acquire(p)
		p.Sleep(100_000) // hold while SSMP 1 requests
		l.Release(p)
		order = append(order, 0)
	}
	tm.bodies[2] = func(p *sim.Proc) { // SSMP 1 wants it mid-hold
		p.Sleep(20_000)
		l := tm.sync.Lock(0)
		l.Acquire(p)
		order = append(order, 2)
		l.Release(p)
	}
	tm.run(t)
	if len(order) != 2 || order[0] != 0 || order[1] != 2 {
		t.Fatalf("order = %v, want [0 2]", order)
	}
	hits, total := tm.sync.Lock(0).Stats()
	if total != 2 || hits != 1 {
		t.Fatalf("hits/total = %d/%d, want 1/2 (remote acquire is a miss)", hits, total)
	}
}

// TestLockTokenRoundRobinAcrossSSMPs: contenders in every SSMP must
// each get the lock the right number of times, and the counter they
// protect must be exact — the protocol-level mutual exclusion test at
// msync's own layer.
func TestLockTokenRoundRobinAcrossSSMPs(t *testing.T) {
	const per = 6
	tm := buildTest(8, 2, 800)
	var held int
	var violations, count int
	for i := 0; i < 8; i++ {
		tm.bodies[i] = func(p *sim.Proc) {
			l := tm.sync.Lock(3)
			for k := 0; k < per; k++ {
				l.Acquire(p)
				if held != 0 {
					violations++
				}
				held++
				p.Sleep(500)
				held--
				count++
				l.Release(p)
				p.Sleep(sim.Time(1000 + p.ID*300))
			}
		}
	}
	tm.run(t)
	if violations != 0 {
		t.Fatalf("%d mutual-exclusion violations", violations)
	}
	if count != 8*per {
		t.Fatalf("count = %d, want %d", count, 8*per)
	}
	if _, total := tm.sync.Lock(3).Stats(); total != 8*per {
		t.Fatalf("total acquires = %d, want %d", total, 8*per)
	}
}

// TestLockTokenReturnsHomeWhenIdle: after a remote SSMP's only holder
// releases with no one waiting anywhere, a later demand cycle must
// still find the token reachable (onTokenBack's empty-queue path hands
// it to the home SSMP).
func TestLockTokenReturnsHomeWhenIdle(t *testing.T) {
	tm := buildTest(4, 2, 600)
	seq := 0
	tm.bodies[2] = func(p *sim.Proc) { // remote takes the token first
		l := tm.sync.LockHomed(9, 0)
		l.Acquire(p)
		seq = 1
		l.Release(p)
	}
	tm.bodies[0] = func(p *sim.Proc) { // much later, home reacquires
		p.Sleep(400_000)
		l := tm.sync.LockHomed(9, 0)
		l.Acquire(p)
		if seq != 1 {
			t.Errorf("home acquired before remote released")
		}
		seq = 2
		l.Release(p)
	}
	tm.run(t)
	if seq != 2 {
		t.Fatalf("seq = %d, want 2", seq)
	}
}
