package msync

import (
	"fmt"
	"sync/atomic"

	"mgs/internal/msync/algo"
	"mgs/internal/obs"
	"mgs/internal/sim"
	"mgs/internal/stats"
)

// Lock is one MGS token-based distributed lock.
//
//mgs:shared
type Lock struct {
	m    *System
	id   int
	home int // global processor hosting the global lock

	local []localLock //mgs:shardpinned each element is touched only by its own SSMP's shard

	// Global-lock state: lives at home, mutated only by home-side
	// handlers — under the parallel dispatcher that makes it shard-local
	// to the home's shard.
	tokenOwner int   //mgs:shardpinned home-side handlers only
	reqQueue   []int //mgs:shardpinned home-side handlers only; FIFO of waiting SSMPs
	demandOut  bool  //mgs:shardpinned home-side handlers only; a DEMAND is outstanding

	// hits/total update atomically: acquires on different SSMPs run on
	// different shards concurrently.
	hits  int64 //mgs:atomic
	total int64 //mgs:atomic

	heldSince sim.Time //mgs:shardpinned only the token-holding SSMP touches it; token transfer crosses a window barrier
}

// localLock is the per-SSMP half of a distributed lock.
type localLock struct {
	hasToken  bool
	held      bool
	waitQ     []*sim.Proc
	requested bool // TOKEN_REQ sent, grant pending
	demand    bool // home wants the token back at next release
}

// Lock returns the lock with the given id, creating it on first use. A
// fresh lock's token sits at its home SSMP.
func (m *System) Lock(id int) algo.Lock { return m.LockHomed(id, id%m.p) }

// LockHomed returns lock id, creating it with its global half on the
// given processor (a lock placed with the data it protects, as the
// paper's per-molecule locks are). The home only takes effect at
// creation. Creation is guarded: processors on different shards can
// reach a lock's first use concurrently, and the created state is a
// pure function of (id, home), so whichever racer registers it wins
// without affecting the simulation.
func (m *System) LockHomed(id, home int) algo.Lock {
	// The ci:race-sentinel markers let CI's mutation step delete exactly
	// these two lines and prove shardsafe re-finds the PR 6 race.
	m.mu.Lock()         // ci:race-sentinel
	defer m.mu.Unlock() // ci:race-sentinel
	if l, ok := m.locks[id]; ok {
		return l
	}
	home %= m.p
	if m.lockAlgo != nil {
		l := &algoLock{m: m, id: id, impl: m.lockAlgo.NewLock(algoEnv{m}, id, home)}
		m.locks[id] = l
		return l
	}
	l := &Lock{
		m: m, id: id, home: home,
		local:      make([]localLock, m.nssmp()),
		tokenOwner: m.ssmpOf(home),
	}
	l.local[l.tokenOwner].hasToken = true
	m.locks[id] = l
	return l
}

// Acquire blocks processor p until it holds the lock. Time spent is
// attributed to the Lock category.
func (l *Lock) Acquire(p *sim.Proc) {
	m := l.m
	// Synchronization operations are ordering-relevant: yield so every
	// event at or before this processor's clock settles first (and so a
	// spin loop of local acquires cannot starve the engine).
	p.Yield()
	pk, pid := m.st.ProfSet(p.ID, obs.ObjLock, int64(l.id))
	defer m.st.ProfSet(p.ID, pk, pid)
	s := m.ssmpOf(p.ID)
	ll := &l.local[s]
	atomic.AddInt64(&l.total, 1)
	m.charge(p, stats.Lock, m.costs.LockOp)

	if ll.hasToken && !ll.held {
		ll.held = true
		l.heldSince = p.Clock()
		atomic.AddInt64(&l.hits, 1)
		m.dsm.AcquireSync(p) // lazy-release acquire-side coherence
		return
	}
	ll.waitQ = append(ll.waitQ, p)
	if !ll.hasToken && !ll.requested {
		ll.requested = true
		m.emitSync(p.Clock(), p.ID, obs.ObjLock, l.id, "TOKENREQ", "ssmp=%d proc=%d", s, p.ID)
		m.charge(p, stats.Lock, m.net.SendCost())
		m.net.SendTagged(sim.Label{Kind: "LK.REQ", Page: int64(l.id), Src: p.ID, Dst: l.home, Aux: int64(s)},
			p.ID, l.home, p.Clock(), 32, m.costs.TokenWork,
			func(at sim.Time) { l.onTokenReq(s, at) })
	}
	c0 := p.Clock()
	p.Park() // woken holding the lock
	m.st.Charge(p.ID, stats.Lock, p.Clock()-c0)
	if m.lockWait != nil {
		m.lockWait.Observe(int64(p.Clock() - c0))
	}
	m.dsm.AcquireSync(p)
}

// Release drains the caller's delayed update queue (the release-
// consistency flush — this is where critical sections dilate under
// software coherence) and then passes the lock on: to the home if a
// remote SSMP demanded the token, else to the next local waiter.
func (l *Lock) Release(p *sim.Proc) {
	m := l.m
	p.Yield()
	pk, pid := m.st.ProfSet(p.ID, obs.ObjLock, int64(l.id))
	defer m.st.ProfSet(p.ID, pk, pid)
	m.dsm.ReleaseAll(p)
	m.charge(p, stats.Lock, m.costs.LockOp)
	s := m.ssmpOf(p.ID)
	ll := &l.local[s]
	if !ll.held || !ll.hasToken {
		panic("msync: release of a lock not held by this SSMP")
	}
	if l.heldSince > 0 {
		m.st.Count("lock.heldcycles", int64(p.Clock()-l.heldSince))
		m.st.Count("lock.cs", 1)
	}
	ll.held = false
	if ll.demand {
		ll.demand = false
		ll.hasToken = false
		if len(ll.waitQ) > 0 && !ll.requested {
			// Local waiters remain: re-request the token.
			ll.requested = true
			m.charge(p, stats.Lock, m.net.SendCost())
			m.net.SendTagged(sim.Label{Kind: "LK.REQ", Page: int64(l.id), Src: p.ID, Dst: l.home, Aux: int64(s)},
				p.ID, l.home, p.Clock(), 32, m.costs.TokenWork,
				func(at sim.Time) { l.onTokenReq(s, at) })
		}
		m.charge(p, stats.Lock, m.net.SendCost())
		m.net.SendTagged(sim.Label{Kind: "LK.BACK", Page: int64(l.id), Src: p.ID, Dst: l.home, Aux: int64(s)},
			p.ID, l.home, p.Clock(), 32, m.costs.TokenWork,
			func(at sim.Time) { l.onTokenBack(at) })
		return
	}
	if len(ll.waitQ) > 0 {
		next := ll.waitQ[0]
		ll.waitQ = ll.waitQ[1:]
		ll.held = true
		l.heldSince = p.Clock() + m.costs.LockOp
		atomic.AddInt64(&l.hits, 1)
		m.emitSync(p.Clock(), p.ID, obs.ObjLock, l.id, "HANDOFF", "releaser=%d(clk %d) next=%d(clk %d)", p.ID, p.Clock(), next.ID, next.Clock())
		// Pinned to the waiter (same SSMP as the releaser): a local
		// handoff must not look like a cross-shard event to the
		// parallel dispatcher.
		m.eng.AtOn(next, p.Clock()+m.costs.LockOp, func() { next.Wake(p.Clock() + m.costs.LockOp) })
	}
}

// onTokenReq runs at the global lock home: SSMP s wants the token.
func (l *Lock) onTokenReq(s int, at sim.Time) {
	l.m.emitSync(at, -1, obs.ObjLock, l.id, "TOKENREQ.HOME", "ssmp=%d queue=%v owner=%d", s, l.reqQueue, l.tokenOwner)
	l.reqQueue = append(l.reqQueue, s)
	l.pumpDemand(at)
}

// pumpDemand sends a DEMAND to the current token owner if one is needed
// and none is in flight.
func (l *Lock) pumpDemand(at sim.Time) {
	if l.demandOut || len(l.reqQueue) == 0 {
		return
	}
	l.demandOut = true
	m := l.m
	owner := l.tokenOwner
	m.emitSync(at, -1, obs.ObjLock, l.id, "DEMAND", "-> ssmp=%d queue=%v", owner, l.reqQueue)
	m.net.SendTagged(sim.Label{Kind: "LK.DEM", Page: int64(l.id), Src: l.home, Dst: m.repProc(owner, l.id), Aux: int64(owner)},
		l.home, m.repProc(owner, l.id), at, 32, m.costs.TokenWork,
		func(at2 sim.Time) { l.onDemand(owner, at2) })
}

// onDemand runs at the token owner SSMP: give the token back to the
// home, now if the local lock is free, or at the next release.
func (l *Lock) onDemand(s int, at sim.Time) {
	ll := &l.local[s]
	l.m.emitSync(at, -1, obs.ObjLock, l.id, "DEMAND.ARRIVE", "ssmp=%d hasToken=%v held=%v", s, ll.hasToken, ll.held)
	if !ll.hasToken {
		// The demand overtook the grant (possible under message
		// jitter): remember it, so the grant hands the token on after
		// serving one local acquire.
		ll.demand = true
		return
	}
	if ll.held {
		ll.demand = true
		return
	}
	ll.hasToken = false
	m := l.m
	m.net.SendTagged(sim.Label{Kind: "LK.BACK", Page: int64(l.id), Src: m.repProc(s, l.id), Dst: l.home, Aux: int64(s)},
		m.repProc(s, l.id), l.home, at, 32, m.costs.TokenWork,
		func(at2 sim.Time) { l.onTokenBack(at2) })
}

// onTokenBack runs at the home: hand the token to the first queued SSMP.
func (l *Lock) onTokenBack(at sim.Time) {
	l.m.emitSync(at, -1, obs.ObjLock, l.id, "TOKENBACK", "queue=%v", l.reqQueue)
	l.demandOut = false
	if len(l.reqQueue) == 0 {
		// No one waiting after all; home's SSMP keeps the token.
		s := l.m.ssmpOf(l.home)
		l.tokenOwner = s
		l.local[s].hasToken = true
		return
	}
	next := l.reqQueue[0]
	l.reqQueue = l.reqQueue[1:]
	l.tokenOwner = next
	m := l.m
	m.net.SendTagged(sim.Label{Kind: "LK.GRANT", Page: int64(l.id), Src: l.home, Dst: m.repProc(next, l.id), Aux: int64(next)},
		l.home, m.repProc(next, l.id), at, 32, m.costs.TokenWork,
		func(at2 sim.Time) { l.onTokenGrant(next, at2) })
	// More SSMPs queued: recall the token from its new owner too, after
	// it serves one holder.
	l.pumpDemand(at)
}

// onTokenGrant runs at the requesting SSMP: the token has arrived; grant
// the lock to the first local waiter.
func (l *Lock) onTokenGrant(s int, at sim.Time) {
	ll := &l.local[s]
	l.m.emitSync(at, -1, obs.ObjLock, l.id, "GRANT", "ssmp=%d waiters=%d demand=%v", s, len(ll.waitQ), ll.demand)
	ll.hasToken = true
	ll.requested = false
	if len(ll.waitQ) == 0 {
		if ll.demand {
			// A demand overtook this grant and nobody is waiting
			// locally: send the token straight back.
			ll.demand = false
			ll.hasToken = false
			m := l.m
			m.net.SendTagged(sim.Label{Kind: "LK.BACK", Page: int64(l.id), Src: m.repProc(s, l.id), Dst: l.home, Aux: int64(s)},
				m.repProc(s, l.id), l.home, at, 32, m.costs.TokenWork,
				func(at2 sim.Time) { l.onTokenBack(at2) })
		}
		return
	}
	next := ll.waitQ[0]
	ll.waitQ = ll.waitQ[1:]
	ll.held = true
	l.heldSince = at + l.m.costs.LockOp
	next.Wake(at + l.m.costs.LockOp)
}

// Stats reports the lock's hit and total acquire counts (Figure 11).
func (l *Lock) Stats() (hits, total int64) {
	return atomic.LoadInt64(&l.hits), atomic.LoadInt64(&l.total)
}

// charge advances p and attributes the cycles.
func (m *System) charge(p *sim.Proc, cat stats.Category, cycles sim.Time) {
	p.Advance(cycles)
	m.st.Charge(p.ID, cat, cycles)
}

// DumpState prints every lock's and barrier's state (deadlock
// diagnosis; ids print in sorted order so two dumps of the same state
// compare equal). The model checker also folds this text into its
// state hash, so synchronization state distinguishes interleavings.
func (m *System) DumpState(f func(format string, args ...any)) {
	for _, id := range sortedIDs(m.locks) {
		if d, ok := m.locks[id].(algo.Dumper); ok {
			d.Dump(f)
		}
	}
	for _, id := range sortedIDs(m.barriers) {
		if d, ok := m.barriers[id].(algo.Dumper); ok {
			d.Dump(f)
		}
	}
}

// Dump implements algo.Dumper with the native token lock's state, in
// the format DumpState has always printed.
func (l *Lock) Dump(f func(format string, args ...any)) {
	f("lock=%d home=%d owner=%d queue=%v demandOut=%v", l.id, l.home, l.tokenOwner, l.reqQueue, l.demandOut)
	for s := range l.local {
		ll := &l.local[s]
		if ll.hasToken || ll.held || len(ll.waitQ) > 0 || ll.requested || ll.demand {
			var ws []int
			for _, p := range ll.waitQ {
				ws = append(ws, p.ID)
			}
			f("  ssmp=%d hasToken=%v held=%v waitQ=%v requested=%v demand=%v", s, ll.hasToken, ll.held, ws, ll.requested, ll.demand)
		}
	}
}

// Quiescent implements algo.Quiescer: the token is at rest with exactly
// one SSMP, nobody holds or waits, and no recall is in flight.
func (l *Lock) Quiescent() error {
	tokens := 0
	for s := range l.local {
		ll := &l.local[s]
		if ll.hasToken {
			tokens++
		}
		if ll.held || len(ll.waitQ) > 0 || ll.requested || ll.demand {
			return fmt.Errorf("lock %d (token): ssmp %d not settled (held=%v waiters=%d requested=%v demand=%v)",
				l.id, s, ll.held, len(ll.waitQ), ll.requested, ll.demand)
		}
	}
	if tokens != 1 {
		return fmt.Errorf("lock %d (token): %d SSMPs hold the token", l.id, tokens)
	}
	if l.demandOut || len(l.reqQueue) > 0 {
		return fmt.Errorf("lock %d (token): home busy (demandOut=%v queue=%v)", l.id, l.demandOut, l.reqQueue)
	}
	return nil
}
