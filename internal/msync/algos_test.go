package msync

import (
	"testing"

	"mgs/internal/msync/algo"
	"mgs/internal/sim"
)

// lockAlgoUnderTest resolves name to a factory (nil = native token).
func lockAlgoUnderTest(t *testing.T, name string) algo.LockAlgo {
	t.Helper()
	la, err := algo.LockByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return la
}

func barrierAlgoUnderTest(t *testing.T, name string) algo.BarrierAlgo {
	t.Helper()
	ba, err := algo.BarrierByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return ba
}

// TestAlgoLockMutualExclusion drives every lock algorithm through the
// round-robin contention scenario the native lock is tested with:
// mutual exclusion, an exact protected count, and no starvation.
func TestAlgoLockMutualExclusion(t *testing.T) {
	const per = 6
	for _, name := range algo.LockNames() {
		t.Run(name, func(t *testing.T) {
			tm := buildTest(8, 2, 800)
			tm.sync.SetAlgos(lockAlgoUnderTest(t, name), nil)
			l := tm.sync.Lock(3)
			var held, violations, count int
			got := make([]int, 8)
			for i := 0; i < 8; i++ {
				i := i
				tm.bodies[i] = func(p *sim.Proc) {
					for k := 0; k < per; k++ {
						l.Acquire(p)
						if held != 0 {
							violations++
						}
						held++
						p.Sleep(500)
						held--
						count++
						got[i]++
						l.Release(p)
						p.Sleep(sim.Time(1000 + p.ID*300))
					}
				}
			}
			tm.run(t)
			if violations != 0 {
				t.Fatalf("%d mutual-exclusion violations", violations)
			}
			if count != 8*per {
				t.Fatalf("count = %d, want %d", count, 8*per)
			}
			for i, n := range got {
				if n != per {
					t.Fatalf("proc %d completed %d acquires, want %d (starvation)", i, n, per)
				}
			}
			hits, total := l.Stats()
			if total != 8*per {
				t.Fatalf("total = %d, want %d", total, 8*per)
			}
			if hits < 0 || hits > total {
				t.Fatalf("hits = %d out of range [0, %d]", hits, total)
			}
			if err := tm.sync.Quiescent(); err != nil {
				t.Fatalf("not quiescent after run: %v", err)
			}
		})
	}
}

// TestAlgoLockSingleSSMPAllHits: with one SSMP every acquire is local,
// so every algorithm must report a hit ratio of 1.
func TestAlgoLockSingleSSMPAllHits(t *testing.T) {
	for _, name := range algo.LockNames() {
		t.Run(name, func(t *testing.T) {
			tm := buildTest(4, 4, 0)
			tm.sync.SetAlgos(lockAlgoUnderTest(t, name), nil)
			l := tm.sync.Lock(0)
			for i := 0; i < 4; i++ {
				tm.bodies[i] = func(p *sim.Proc) {
					for k := 0; k < 5; k++ {
						l.Acquire(p)
						p.Advance(50)
						l.Release(p)
					}
				}
			}
			tm.run(t)
			hits, total := l.Stats()
			if total != 20 || hits != total {
				t.Fatalf("hits/total = %d/%d, want 20/20 at C=P", hits, total)
			}
		})
	}
}

// TestAlgoLockReleaseFlushesDUQ: the shim must keep every algorithm a
// release point (flush before release) and an acquire point.
func TestAlgoLockReleaseFlushesDUQ(t *testing.T) {
	for _, name := range algo.LockNames() {
		t.Run(name, func(t *testing.T) {
			tm := buildTest(4, 2, 500)
			tm.sync.SetAlgos(lockAlgoUnderTest(t, name), nil)
			va := tm.dsm.Space().AllocPages(1024)
			l := tm.sync.Lock(0)
			tm.bodies[2] = func(p *sim.Proc) { // SSMP 1, page home SSMP 0
				l.Acquire(p)
				f, off := tm.dsm.Access(p, va, true, false)
				f.Store64(off, 77)
				l.Release(p)
				if tm.dsm.DUQLen(p.ID) != 0 {
					t.Errorf("DUQ len = %d after release, want 0", tm.dsm.DUQLen(p.ID))
				}
			}
			tm.run(t)
			if got := tm.dsm.BackdoorLoad64(va); got != 77 {
				t.Fatalf("home = %d, want 77 (release must flush)", got)
			}
		})
	}
}

// TestAlgoBarrierSynchronizes drives every barrier algorithm through
// skewed-arrival phases at several cluster sizes, including the
// run-ahead straggler case, and checks no phase leaks.
func TestAlgoBarrierSynchronizes(t *testing.T) {
	for _, name := range algo.BarrierNames() {
		t.Run(name, func(t *testing.T) {
			for _, c := range []int{1, 2, 4, 8} {
				tm := buildTest(8, c, 600)
				tm.sync.SetAlgos(nil, barrierAlgoUnderTest(t, name))
				b := tm.sync.Barrier(0)
				phase := make([]int, 8)
				for i := 0; i < 8; i++ {
					i := i
					tm.bodies[i] = func(p *sim.Proc) {
						for ph := 0; ph < 4; ph++ {
							p.Advance(sim.Time(100 * (i + 1))) // skewed arrival
							b.Arrive(p)
							phase[i]++
							for j := range phase {
								if phase[j] < phase[i]-1 {
									t.Errorf("C=%d: proc %d at phase %d saw proc %d at %d", c, i, phase[i], j, phase[j])
								}
							}
						}
					}
				}
				tm.run(t)
				if b.Episodes() != 4 {
					t.Fatalf("C=%d: episodes = %d, want 4", c, b.Episodes())
				}
				if err := tm.sync.Quiescent(); err != nil {
					t.Fatalf("C=%d: not quiescent after run: %v", c, err)
				}
			}
		})
	}
}

// TestAlgoBarrierRunAheadStraggler: no one may leave the barrier before
// the straggler's virtual arrival time, for any algorithm.
func TestAlgoBarrierRunAheadStraggler(t *testing.T) {
	for _, name := range algo.BarrierNames() {
		t.Run(name, func(t *testing.T) {
			tm := buildTest(4, 2, 500)
			tm.sync.SetAlgos(nil, barrierAlgoUnderTest(t, name))
			after := make([]sim.Time, 4)
			for i := 0; i < 4; i++ {
				i := i
				tm.bodies[i] = func(p *sim.Proc) {
					if i == 0 {
						p.Advance(300_000) // run-ahead: no yield before arrival
					}
					tm.sync.Barrier(0).Arrive(p)
					after[i] = p.Clock()
				}
			}
			tm.run(t)
			for i, v := range after {
				if v < 300_000 {
					t.Fatalf("proc %d left barrier at %d, before the straggler's 300000", i, v)
				}
			}
		})
	}
}

// TestAlgoBarrierIsReleasePoint: a write before the barrier must be
// home-visible after it, under every algorithm.
func TestAlgoBarrierIsReleasePoint(t *testing.T) {
	for _, name := range algo.BarrierNames() {
		t.Run(name, func(t *testing.T) {
			tm := buildTest(4, 2, 500)
			tm.sync.SetAlgos(nil, barrierAlgoUnderTest(t, name))
			va := tm.dsm.Space().AllocPages(1024)
			b := tm.sync.Barrier(0)
			var got uint64
			tm.bodies[2] = func(p *sim.Proc) { // SSMP 1 writes
				f, off := tm.dsm.Access(p, va, true, false)
				f.Store64(off, 55)
				b.Arrive(p)
			}
			for _, i := range []int{0, 1, 3} {
				i := i
				tm.bodies[i] = func(p *sim.Proc) {
					b.Arrive(p)
					if i == 0 {
						f, off := tm.dsm.Access(p, va, false, false)
						got = f.Load64(off)
					}
				}
			}
			tm.run(t)
			if got != 55 {
				t.Fatalf("read %d after barrier, want 55 (barrier must flush)", got)
			}
		})
	}
}

// TestAlgoBarrierOddSSMPCount: 3 SSMPs exercises the bye/odd-subtree
// paths of the structured barriers.
func TestAlgoBarrierOddSSMPCount(t *testing.T) {
	for _, name := range algo.BarrierNames() {
		t.Run(name, func(t *testing.T) {
			tm := buildTest(6, 2, 400) // 3 SSMPs
			tm.sync.SetAlgos(nil, barrierAlgoUnderTest(t, name))
			b := tm.sync.Barrier(1)
			for i := 0; i < 6; i++ {
				i := i
				tm.bodies[i] = func(p *sim.Proc) {
					for ph := 0; ph < 3; ph++ {
						p.Advance(sim.Time(77 * (i + 1)))
						b.Arrive(p)
					}
				}
			}
			tm.run(t)
			if b.Episodes() != 3 {
				t.Fatalf("episodes = %d, want 3", b.Episodes())
			}
			if err := tm.sync.Quiescent(); err != nil {
				t.Fatalf("not quiescent: %v", err)
			}
		})
	}
}

// pinnedSyncStats is the per-algorithm outcome of the deterministic
// 2-SSMP contention script in TestAlgoPinnedContentionScript. The
// numbers are pinned: a change means the algorithm's protocol, cycle
// charging, or histogram feeding changed, and must be intentional.
type pinnedSyncStats struct {
	hits, total int64 // lock Stats()
	waitCount   int64 // lock.waitcycles observations
	waitSum     int64 // lock.waitcycles total parked cycles
}

// TestAlgoPinnedContentionScript runs a fixed 2-SSMP, 4-processor
// contention script under every lock algorithm and pins hit/total and
// the wait-histogram count and sum.
func TestAlgoPinnedContentionScript(t *testing.T) {
	want := map[string]pinnedSyncStats{
		"token":      {hits: 3, total: 12, waitCount: 11, waitSum: 58688},
		"ticket":     {hits: 6, total: 12, waitCount: 12, waitSum: 58666},
		"mcs":        {hits: 7, total: 12, waitCount: 12, waitSum: 35700},
		"tournament": {hits: 6, total: 12, waitCount: 12, waitSum: 66402},
	}
	for _, name := range algo.LockNames() {
		t.Run(name, func(t *testing.T) {
			tm := buildTest(4, 2, 600)
			tm.sync.SetAlgos(lockAlgoUnderTest(t, name), nil)
			l := tm.sync.Lock(0)
			for i := 0; i < 4; i++ {
				i := i
				tm.bodies[i] = func(p *sim.Proc) {
					p.Sleep(sim.Time(200 * i)) // fixed stagger
					for k := 0; k < 3; k++ {
						l.Acquire(p)
						p.Advance(400)
						l.Release(p)
						p.Sleep(900)
					}
				}
			}
			tm.run(t)
			h := tm.st.Registry().Histogram("lock.waitcycles", nil)
			got := pinnedSyncStats{waitCount: h.Count(), waitSum: h.Sum()}
			got.hits, got.total = l.Stats()
			if w, ok := want[name]; !ok {
				t.Fatalf("no pinned stats for %q: got %+v", name, got)
			} else if got != w {
				t.Fatalf("pinned stats changed: got %+v, want %+v", got, w)
			}
		})
	}
}

// TestAlgoBarrierWaitHistogram: every barrier algorithm must feed the
// barrier.waitcycles histogram exactly once per processor per episode.
func TestAlgoBarrierWaitHistogram(t *testing.T) {
	for _, name := range algo.BarrierNames() {
		t.Run(name, func(t *testing.T) {
			tm := buildTest(8, 2, 600)
			tm.sync.SetAlgos(nil, barrierAlgoUnderTest(t, name))
			b := tm.sync.Barrier(0)
			for i := 0; i < 8; i++ {
				i := i
				tm.bodies[i] = func(p *sim.Proc) {
					for ph := 0; ph < 3; ph++ {
						p.Advance(sim.Time(100 * (i + 1)))
						b.Arrive(p)
					}
				}
			}
			tm.run(t)
			h := tm.st.Registry().Histogram("barrier.waitcycles", nil)
			if h.Count() != 8*3 {
				t.Fatalf("wait observations = %d, want 24", h.Count())
			}
			if h.Sum() <= 0 {
				t.Fatalf("wait sum = %d, want > 0", h.Sum())
			}
		})
	}
}

// TestSetAlgosAfterUsePanics: algorithms are a machine-wide choice and
// cannot change once a primitive exists.
func TestSetAlgosAfterUsePanics(t *testing.T) {
	tm := buildTest(4, 2, 500)
	tm.sync.Lock(0)
	defer func() {
		if recover() == nil {
			t.Fatal("SetAlgos after Lock() did not panic")
		}
	}()
	tm.sync.SetAlgos(algo.Ticket{}, nil)
}
