package msync

import (
	"mgs/internal/msync/algo"
	"mgs/internal/obs"
	"mgs/internal/sim"
	"mgs/internal/stats"
)

// algoEnv adapts System to algo.Env: the machine shape, cost table,
// tagged network sends, and accounting hooks an algorithm programs
// against. Every algorithm message is a real network send, so it pays
// topology latency, rides the reliable transport under fault
// injection, and is a labeled model-checker choice point.
type algoEnv struct{ m *System }

func (e algoEnv) NProcs() int           { return e.m.p }
func (e algoEnv) NSSMP() int            { return e.m.nssmp() }
func (e algoEnv) ClusterSize() int      { return e.m.c }
func (e algoEnv) SSMPOf(proc int) int   { return e.m.ssmpOf(proc) }
func (e algoEnv) RepProc(s, id int) int { return e.m.repProc(s, id) }

func (e algoEnv) LockOp() sim.Time    { return e.m.costs.LockOp }
func (e algoEnv) BarrierOp() sim.Time { return e.m.costs.BarrierOp }
func (e algoEnv) TokenWork() sim.Time { return e.m.costs.TokenWork }
func (e algoEnv) SendCost() sim.Time  { return e.m.net.SendCost() }

func (e algoEnv) Send(kind string, id, from, to int, when sim.Time, aux int64, work sim.Time, fn func(at sim.Time)) {
	e.m.net.SendTagged(sim.Label{Kind: kind, Page: int64(id), Src: from, Dst: to, Aux: aux},
		from, to, when, 32, work, fn)
}

func (e algoEnv) ChargeLock(p *sim.Proc, cycles sim.Time) {
	e.m.charge(p, stats.Lock, cycles)
}

func (e algoEnv) ChargeBarrier(p *sim.Proc, cycles sim.Time) {
	e.m.charge(p, stats.Barrier, cycles)
}

func (e algoEnv) LockWaited(p *sim.Proc, waited sim.Time) {
	e.m.st.Charge(p.ID, stats.Lock, waited)
	if e.m.lockWait != nil {
		e.m.lockWait.Observe(int64(waited))
	}
}

func (e algoEnv) BarrierWaited(p *sim.Proc, waited sim.Time) {
	e.m.st.Charge(p.ID, stats.Barrier, waited)
	if e.m.barrierWait != nil {
		e.m.barrierWait.Observe(int64(waited))
	}
}

func (e algoEnv) CountCS(held sim.Time) {
	e.m.st.Count("lock.heldcycles", int64(held))
	e.m.st.Count("lock.cs", 1)
}

func (e algoEnv) EmitLock(at sim.Time, proc, id int, name, format string, args ...any) {
	e.m.emitSync(at, proc, obs.ObjLock, id, name, format, args...)
}

func (e algoEnv) EmitBarrier(at sim.Time, proc, id int, name, format string, args ...any) {
	e.m.emitSync(at, proc, obs.ObjBarrier, id, name, format, args...)
}

// algoLock wraps an algorithm lock with the protocol actions the native
// token lock performs inline: the ordering yield, the profiler's
// per-lock attribution window, the release-consistency flush before a
// release, and the acquire-side validation after a grant. Algorithms
// stay pure ordering protocols.
type algoLock struct {
	m    *System
	id   int
	impl algo.Lock
}

func (l *algoLock) Acquire(p *sim.Proc) {
	m := l.m
	p.Yield()
	pk, pid := m.st.ProfSet(p.ID, obs.ObjLock, int64(l.id))
	defer m.st.ProfSet(p.ID, pk, pid)
	l.impl.Acquire(p)
	m.dsm.AcquireSync(p) // lazy-release acquire-side coherence
}

func (l *algoLock) Release(p *sim.Proc) {
	m := l.m
	p.Yield()
	pk, pid := m.st.ProfSet(p.ID, obs.ObjLock, int64(l.id))
	defer m.st.ProfSet(p.ID, pk, pid)
	m.dsm.ReleaseAll(p) // release-consistency flush (CS dilation)
	l.impl.Release(p)
}

func (l *algoLock) Stats() (hits, total int64) { return l.impl.Stats() }

func (l *algoLock) Dump(f func(format string, args ...any)) {
	if d, ok := l.impl.(algo.Dumper); ok {
		d.Dump(f)
		return
	}
	f("lock=%d (no state dump)", l.id)
}

func (l *algoLock) Quiescent() error {
	if q, ok := l.impl.(algo.Quiescer); ok {
		return q.Quiescent()
	}
	return nil
}

// algoBarrier is the barrier-side shim: arrival is a release point
// (drain the delayed update queue first) and exit an acquire point.
type algoBarrier struct {
	m    *System
	id   int
	impl algo.Barrier
}

func (b *algoBarrier) Arrive(p *sim.Proc) {
	m := b.m
	p.Yield() // surface run-ahead before taking part in ordering
	pk, pid := m.st.ProfSet(p.ID, obs.ObjBarrier, int64(b.id))
	defer m.st.ProfSet(p.ID, pk, pid)
	m.dsm.ReleaseAll(p)
	b.impl.Arrive(p)
	m.dsm.AcquireSync(p) // a barrier exit is an acquire (lazy release)
}

func (b *algoBarrier) Episodes() int64 { return b.impl.Episodes() }

func (b *algoBarrier) Dump(f func(format string, args ...any)) {
	if d, ok := b.impl.(algo.Dumper); ok {
		d.Dump(f)
		return
	}
	f("barrier=%d (no state dump)", b.id)
}

func (b *algoBarrier) Quiescent() error {
	if q, ok := b.impl.(algo.Quiescer); ok {
		return q.Quiescent()
	}
	return nil
}
