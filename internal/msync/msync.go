// Package msync is the MGS user-level synchronization library (paper
// §3.2): primitives that know the DSSMP hierarchy and contain
// communication within an SSMP whenever possible.
//
// The barrier is a two-level tree: processors first combine inside
// their SSMP through hardware shared memory, then one COMBINE message
// per SSMP reaches the barrier's home, which answers with one RELEASE
// message per SSMP — the minimum two inter-SSMP messages per SSMP.
//
// The lock is token-based and distributed: each lock is a local lock
// per SSMP plus a single global lock (the token home). Acquires succeed
// locally while the SSMP owns the token; only when consecutive acquires
// come from different SSMPs does the token move, via the global home.
// The lock hit ratio (acquires needing no inter-SSMP communication /
// all acquires) is the paper's Figure 11 metric.
//
// Both primitives are release points: they drain the caller's delayed
// update queue through core.System.ReleaseAll before publishing the
// release or barrier arrival — which is exactly where the paper's
// critical-section dilation comes from. Under the lazy-release
// extension they are acquire points too: every lock grant and barrier
// exit runs core.System.AcquireSync to validate the acquiring SSMP's
// copies against the home versions.
//
// The algorithms above are the defaults. SetAlgos swaps in any
// algorithm from the msync/algo zoo (ticket, MCS, tournament locks;
// sense-reversing, dissemination, MCS-tree, tournament barriers); the
// release-consistency prologue/epilogue and the profiler attribution
// stay with System, so every algorithm pays the same coherence costs
// the defaults do.
package msync

import (
	"fmt"
	"sort"
	"sync"

	"mgs/internal/core"
	"mgs/internal/msg"
	"mgs/internal/msync/algo"
	"mgs/internal/obs"
	"mgs/internal/sim"
	"mgs/internal/stats"
)

// Costs parameterizes synchronization overheads, in cycles.
type Costs struct {
	LockOp    sim.Time // local lock manipulation in shared memory
	BarrierOp sim.Time // local barrier counter update
	TokenWork sim.Time // global-lock handler bookkeeping
}

// DefaultCosts returns reasonable hardware-shared-memory costs.
func DefaultCosts() Costs {
	return Costs{LockOp: 60, BarrierOp: 60, TokenWork: 120}
}

// System manages the locks and barriers of one machine.
//
//mgs:shared
type System struct {
	eng   *sim.Engine
	dsm   *core.System
	net   *msg.Network
	st    *stats.Collector
	procs []*sim.Proc
	costs Costs
	p, c  int

	// mu guards lazy creation in the locks and barriers maps:
	// processors on different shards of the parallel dispatcher can
	// reach a primitive's first use concurrently.
	mu       sync.Mutex
	locks    map[int]algo.Lock    //mgs:guardedby mu
	barriers map[int]algo.Barrier //mgs:guardedby mu

	// Non-nil algorithm factories replace the native token lock /
	// two-level tree barrier for primitives created after SetAlgos.
	lockAlgo    algo.LockAlgo    //mgs:guardedby mu
	barrierAlgo algo.BarrierAlgo //mgs:guardedby mu

	// Obs is the observability spine; nil or sink-less keeps the trace
	// path structurally detached.
	Obs *obs.Observer

	// Wait-time distributions, registered on the collector's registry:
	// cycles parked per lock acquire and per barrier episode.
	lockWait, barrierWait *obs.Histogram
}

// New builds the synchronization system for the machine owning dsm.
func New(eng *sim.Engine, dsm *core.System, net *msg.Network, st *stats.Collector, procs []*sim.Proc, costs Costs) *System {
	cfg := dsm.Config()
	m := &System{
		eng: eng, dsm: dsm, net: net, st: st, procs: procs, costs: costs,
		p: cfg.NProcs, c: cfg.ClusterSize,
		locks: make(map[int]algo.Lock), barriers: make(map[int]algo.Barrier),
	}
	if reg := st.Registry(); reg != nil {
		m.lockWait = reg.Histogram("lock.waitcycles", nil)
		m.barrierWait = reg.Histogram("barrier.waitcycles", nil)
		reg.Gauge("lock.hits", func() int64 { h, _ := m.LockStats(); return h })
		reg.Gauge("lock.total", func() int64 { _, t := m.LockStats(); return t })
	}
	return m
}

// emitSync publishes one synchronization event. Detail formatting runs
// only when a sink is attached; emission charges no simulated cycles.
func (m *System) emitSync(t sim.Time, proc int, kind obs.ObjKind, id int, name, format string, args ...any) {
	if !m.Obs.Tracing() {
		return
	}
	var detail string
	if format != "" {
		detail = fmt.Sprintf(format, args...)
	}
	m.Obs.Emit(obs.Event{
		T: t, Proc: proc, Cat: obs.Sync, Name: name,
		Kind: kind, ID: int64(id), Detail: detail,
	})
}

func (m *System) nssmp() int          { return m.p / m.c }
func (m *System) ssmpOf(proc int) int { return proc / m.c }

// repProc is the processor that runs SSMP-side handlers for object id in
// SSMP s — spread across the SSMP's processors by id.
func (m *System) repProc(s, id int) int { return s*m.c + id%m.c }

// SetAlgos selects the lock and barrier algorithms for primitives not
// yet created. A nil factory keeps the corresponding native default
// (token lock / two-level tree barrier). It must run before any lock
// or barrier exists: algorithms are a machine-wide choice, not a
// per-primitive one.
func (m *System) SetAlgos(la algo.LockAlgo, ba algo.BarrierAlgo) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.locks) > 0 || len(m.barriers) > 0 {
		panic("msync: SetAlgos after locks or barriers were created")
	}
	m.lockAlgo, m.barrierAlgo = la, ba
}

// Quiescent reports whether every lock and barrier has fully settled:
// no holder, no queued waiter, no protocol message logically in flight.
// The model checker asserts this at the end of every delivery
// interleaving.
func (m *System) Quiescent() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, id := range sortedIDs(m.locks) {
		if q, ok := m.locks[id].(algo.Quiescer); ok {
			if err := q.Quiescent(); err != nil {
				return err
			}
		}
	}
	for _, id := range sortedIDs(m.barriers) {
		if q, ok := m.barriers[id].(algo.Quiescer); ok {
			if err := q.Quiescent(); err != nil {
				return err
			}
		}
	}
	return nil
}

// sortedIDs returns the map's keys in ascending order, so state walks
// are deterministic.
func sortedIDs[V any](m map[int]V) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// LockStats aggregates hit/total across the given locks (all locks if
// ids is empty).
func (m *System) LockStats(ids ...int) (hits, total int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(ids) == 0 {
		for _, l := range m.locks {
			h, t := l.Stats()
			hits += h
			total += t
		}
		return hits, total
	}
	for _, id := range ids {
		if l, ok := m.locks[id]; ok {
			h, t := l.Stats()
			hits += h
			total += t
		}
	}
	return hits, total
}
