package algo

import (
	"fmt"

	"mgs/internal/sim"
)

// gate is the per-SSMP combining stage the SSMP-level barriers share:
// processors of one SSMP count in through hardware shared memory; the
// last arriver triggers the inter-SSMP protocol. Mirrors the native
// tree barrier's local combine, including the run-ahead rule: the
// upward step departs no earlier than the latest local arrival's
// virtual time.
type gate struct {
	count    int
	waiting  []*sim.Proc
	maxClock sim.Time
}

// arrive registers p and reports whether p completed the SSMP (and if
// so, the virtual time the SSMP's upward step may depart).
func (g *gate) arrive(p *sim.Proc, csize int) (last bool, when sim.Time) {
	g.count++
	if p.Clock() > g.maxClock {
		g.maxClock = p.Clock()
	}
	g.waiting = append(g.waiting, p)
	if g.count < csize {
		return false, 0
	}
	when = g.maxClock
	g.count, g.maxClock = 0, 0
	return true, when
}

// release wakes every gated processor, staggered by quantum/4 per
// waiter — the sequential reads of the shared release flag, as in the
// native tree barrier's local release.
func (g *gate) release(at, quantum sim.Time) {
	ws := g.waiting
	g.waiting = nil
	for i, p := range ws {
		p.Wake(at + sim.Time(i+1)*quantum/4)
	}
}

// idle reports whether the gate holds no partial episode.
func (g *gate) idle() bool { return g.count == 0 && len(g.waiting) == 0 }

// quiesceErrf builds a quiescence-violation error.
func quiesceErrf(format string, args ...any) error { return fmt.Errorf(format, args...) }

// log2ceil returns ceil(log2(n)) for n >= 1.
func log2ceil(n int) int {
	r := 0
	for 1<<r < n {
		r++
	}
	return r
}
