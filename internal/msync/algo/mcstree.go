package algo

import "mgs/internal/sim"

// MCSTree is the MCS tree barrier over SSMPs: arrivals flow up a 4-ary
// tree (each node reports to parent (s-1)/4 once its own SSMP and all
// arrival children are in), the root detects completion, and wakeups
// flow down a separate binary tree (children 2s+1, 2s+2) — the
// original's fan-in-4 / fan-out-2 shape, chosen so no handler ever
// sends more than a few messages.
//
// Reordering robustness: a node resets its arrival count at the moment
// it reports upward, and an arrival child cannot report the next
// episode before the global release of this one (which is causally
// after the parent's report), so each inter-reset window sees exactly
// one ARRIVE per child and plain counters suffice.
type MCSTree struct{}

// Name implements BarrierAlgo.
func (MCSTree) Name() string { return "mcstree" }

// NewBarrier implements BarrierAlgo.
func (MCSTree) NewBarrier(env Env, id, home int) Barrier {
	return &mcsTreeBarrier{env: env, id: id, nodes: make([]mcsTreeNode, env.NSSMP())}
}

// mcsTreeNode is one SSMP's tree node.
type mcsTreeNode struct {
	g         gate
	localDone bool
	kidsIn    int // arrival children reported this episode
}

// mcsTreeBarrier is the tree; SSMP 0 is the root.
//
//mgs:shared
type mcsTreeBarrier struct {
	env Env
	id  int

	nodes []mcsTreeNode //mgs:shardpinned each node is touched only by its own SSMP's handlers; sequential dispatcher enforced for non-default algorithms

	episodes int64 //mgs:shardpinned root-side handlers only; sequential dispatcher enforced for non-default algorithms
}

// nkids counts SSMP s's arrival-tree children.
func (b *mcsTreeBarrier) nkids(s int) int {
	k := 0
	for j := 1; j <= 4; j++ {
		if 4*s+j < len(b.nodes) {
			k++
		}
	}
	return k
}

// Arrive implements Barrier.
func (b *mcsTreeBarrier) Arrive(p *sim.Proc) {
	e := b.env
	e.ChargeBarrier(p, e.BarrierOp())
	s := e.SSMPOf(p.ID)
	if last, when := b.nodes[s].g.arrive(p, e.ClusterSize()); last {
		e.EmitBarrier(when, p.ID, b.id, "MCT.LOCAL", "ssmp=%d", s)
		e.ChargeBarrier(p, e.SendCost())
		e.Send("MCT.LOCAL", b.id, p.ID, e.RepProc(s, b.id), when, int64(s), e.BarrierOp(),
			func(at sim.Time) { b.onLocal(s, at) })
	}
	c0 := p.Clock()
	p.Park() // woken by the wakeup wave
	e.BarrierWaited(p, p.Clock()-c0)
}

// onLocal runs at SSMP s's representative: its own processors are in.
func (b *mcsTreeBarrier) onLocal(s int, at sim.Time) {
	b.nodes[s].localDone = true
	b.check(s, at)
}

// onChild runs at SSMP s's representative: an arrival child reported.
func (b *mcsTreeBarrier) onChild(s int, at sim.Time) {
	b.nodes[s].kidsIn++
	b.check(s, at)
}

// check reports upward (or starts the wakeup wave at the root) once
// SSMP s and its whole arrival subtree are in.
func (b *mcsTreeBarrier) check(s int, at sim.Time) {
	e := b.env
	n := &b.nodes[s]
	if !n.localDone || n.kidsIn < b.nkids(s) {
		return
	}
	n.localDone = false
	n.kidsIn = 0
	if s == 0 {
		b.episodes++
		e.EmitBarrier(at, -1, b.id, "MCT.ROOT", "episode=%d", b.episodes)
		b.wake(0, at)
		return
	}
	parent := (s - 1) / 4
	e.Send("MCT.ARRIVE", b.id, e.RepProc(s, b.id), e.RepProc(parent, b.id), at, int64(s), e.BarrierOp(),
		func(at2 sim.Time) { b.onChild(parent, at2) })
}

// wake runs at SSMP s's representative: release the local gate and
// forward down the binary wakeup tree.
func (b *mcsTreeBarrier) wake(s int, at sim.Time) {
	e := b.env
	b.nodes[s].g.release(at, e.BarrierOp())
	for _, c := range []int{2*s + 1, 2*s + 2} {
		if c >= len(b.nodes) {
			continue
		}
		c := c
		e.Send("MCT.WAKE", b.id, e.RepProc(s, b.id), e.RepProc(c, b.id), at, int64(c), e.BarrierOp(),
			func(at2 sim.Time) { b.wake(c, at2) })
	}
}

// Episodes implements Barrier.
func (b *mcsTreeBarrier) Episodes() int64 { return b.episodes }

// Dump implements Dumper.
func (b *mcsTreeBarrier) Dump(f func(format string, args ...any)) {
	f("barrier=%d algo=mcstree episodes=%d", b.id, b.episodes)
	for s := range b.nodes {
		n := &b.nodes[s]
		if !n.g.idle() || n.localDone || n.kidsIn > 0 {
			var ws []int
			for _, p := range n.g.waiting {
				ws = append(ws, p.ID)
			}
			f("  ssmp=%d count=%d waiting=%v localDone=%v kidsIn=%d", s, n.g.count, ws, n.localDone, n.kidsIn)
		}
	}
}

// Quiescent implements Quiescer.
func (b *mcsTreeBarrier) Quiescent() error {
	for s := range b.nodes {
		n := &b.nodes[s]
		if !n.g.idle() || n.localDone || n.kidsIn > 0 {
			return quiesceErrf("barrier %d (mcstree): ssmp %d mid-episode", b.id, s)
		}
	}
	return nil
}
