package algo

import (
	"sync/atomic"

	"mgs/internal/sim"
)

// Tournament is a tournament (arbiter-tree) lock: a static binary tree
// over the machine's SSMPs, each node hosted by the leftmost SSMP of
// its subtree. A contender enters at its SSMP's leaf and climbs,
// acquiring each node in turn (lock-coupling); owning the root is
// owning the lock. Each node keeps a FIFO queue, so waiting is
// distributed across the tree instead of concentrating at one home, at
// the price of a logarithmic climb. An acquire is a hit only when its
// entire climb — and the final grant — stayed inside one SSMP, which
// the protocol tracks by accumulating a crossed flag along the path.
//
// Reordering robustness: each node's state is touched only by handlers
// at its host, so per-node transitions serialize there; a node's
// release can never overtake the acquire that won it (the releaser's
// ownership is in the release's causal past), and releases of distinct
// nodes commute.
type Tournament struct{}

// Name implements LockAlgo.
func (Tournament) Name() string { return "tournament" }

// NewLock implements LockAlgo.
func (Tournament) NewLock(env Env, id, home int) Lock {
	l := &tourLock{env: env, id: id}
	// Build the arbiter tree bottom-up: level 0 is one leaf per SSMP,
	// each higher level halves (rounding up) until a single root.
	n := env.NSSMP()
	l.leaf = make([]int, n)
	level := make([]int, n)
	for s := 0; s < n; s++ {
		l.nodes = append(l.nodes, tourNode{parent: -1, host: s})
		l.leaf[s] = s
		level[s] = s
	}
	for len(level) > 1 {
		var up []int
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				// Odd node out: promote it unchanged.
				up = append(up, level[i])
				continue
			}
			ni := len(l.nodes)
			l.nodes = append(l.nodes, tourNode{parent: -1, host: l.nodes[level[i]].host})
			l.nodes[level[i]].parent = ni
			l.nodes[level[i+1]].parent = ni
			up = append(up, ni)
		}
		level = up
	}
	return l
}

// tourWaiter is one contender in flight: its processor and whether its
// path so far crossed an SSMP boundary.
type tourWaiter struct {
	p       *sim.Proc
	crossed bool
}

// tourNode is one arbiter: hosted at an SSMP, held by at most one
// contender, FIFO queue of contenders blocked here.
type tourNode struct {
	parent int // -1 at the root
	host   int // SSMP hosting this node's state
	held   bool
	queue  []tourWaiter
}

// tourLock is the tree. Node state is touched only by handlers at the
// node's host.
//
//mgs:shared
type tourLock struct {
	env Env
	id  int

	nodes []tourNode //mgs:shardpinned each node is touched only by its host SSMP's handlers; sequential dispatcher enforced for non-default algorithms
	leaf  []int      //mgs:shardpinned immutable after construction

	heldSince sim.Time //mgs:shardpinned single holder at a time; sequential dispatcher enforced for non-default algorithms

	hits  int64 //mgs:atomic
	total int64 //mgs:atomic
}

// Acquire implements Lock: enter the tree at this SSMP's leaf and park;
// the climb proceeds entirely in handlers.
func (l *tourLock) Acquire(p *sim.Proc) {
	e := l.env
	atomic.AddInt64(&l.total, 1)
	e.ChargeLock(p, e.LockOp())
	s := e.SSMPOf(p.ID)
	ni := l.leaf[s]
	to := e.RepProc(l.nodes[ni].host, l.id)
	w := tourWaiter{p: p, crossed: e.SSMPOf(p.ID) != e.SSMPOf(to)}
	e.EmitLock(p.Clock(), p.ID, l.id, "TOUR.ENTER", "proc=%d leaf=%d", p.ID, ni)
	e.ChargeLock(p, e.SendCost())
	e.Send("TOUR.ACQ", l.id, p.ID, to, p.Clock(), int64(ni), e.TokenWork(),
		func(at sim.Time) { l.arrive(w, ni, at) })
	c0 := p.Clock()
	p.Park() // woken holding the lock
	e.LockWaited(p, p.Clock()-c0)
}

// arrive runs at a node's host: take the node if free, else queue.
func (l *tourLock) arrive(w tourWaiter, ni int, at sim.Time) {
	n := &l.nodes[ni]
	if n.held {
		n.queue = append(n.queue, w)
		return
	}
	n.held = true
	l.ascend(w, ni, at)
}

// ascend runs at a node's host after w won node ni: climb to the
// parent, or grant the lock at the root.
func (l *tourLock) ascend(w tourWaiter, ni int, at sim.Time) {
	e := l.env
	n := &l.nodes[ni]
	if n.parent < 0 {
		from := e.RepProc(n.host, l.id)
		crossed := w.crossed || e.SSMPOf(from) != e.SSMPOf(w.p.ID)
		e.EmitLock(at, -1, l.id, "TOUR.GRANT", "proc=%d crossed=%v", w.p.ID, crossed)
		e.Send("TOUR.GRANTMSG", l.id, from, w.p.ID, at, int64(w.p.ID), e.TokenWork(),
			func(at2 sim.Time) { l.grant(w.p, crossed, at2) })
		return
	}
	from := e.RepProc(n.host, l.id)
	to := e.RepProc(l.nodes[n.parent].host, l.id)
	w2 := tourWaiter{p: w.p, crossed: w.crossed || e.SSMPOf(from) != e.SSMPOf(to)}
	pi := n.parent
	e.Send("TOUR.ACQ", l.id, from, to, at, int64(pi), e.TokenWork(),
		func(at2 sim.Time) { l.arrive(w2, pi, at2) })
}

// grant runs at the new holder: a hit is a climb that never left the
// holder's SSMP.
func (l *tourLock) grant(p *sim.Proc, crossed bool, at sim.Time) {
	e := l.env
	if !crossed {
		atomic.AddInt64(&l.hits, 1)
	}
	l.heldSince = at + e.LockOp()
	p.Wake(at + e.LockOp())
}

// Release implements Lock: release every node on the holder's path.
// Each node independently hands itself to its first queued contender,
// who resumes climbing from there.
func (l *tourLock) Release(p *sim.Proc) {
	e := l.env
	e.ChargeLock(p, e.LockOp())
	if l.heldSince > 0 {
		e.CountCS(p.Clock() - l.heldSince)
	}
	e.EmitLock(p.Clock(), p.ID, l.id, "TOUR.REL", "proc=%d", p.ID)
	for ni := l.leaf[e.SSMPOf(p.ID)]; ni >= 0; ni = l.nodes[ni].parent {
		ni := ni
		to := e.RepProc(l.nodes[ni].host, l.id)
		e.ChargeLock(p, e.SendCost())
		e.Send("TOUR.REL", l.id, p.ID, to, p.Clock(), int64(ni), e.TokenWork(),
			func(at sim.Time) { l.release(ni, at) })
	}
}

// release runs at a node's host: hand the node to the next queued
// contender or free it.
func (l *tourLock) release(ni int, at sim.Time) {
	n := &l.nodes[ni]
	if len(n.queue) == 0 {
		n.held = false
		return
	}
	w := n.queue[0]
	n.queue = n.queue[1:]
	l.ascend(w, ni, at)
}

// Stats implements Lock.
func (l *tourLock) Stats() (hits, total int64) {
	return atomic.LoadInt64(&l.hits), atomic.LoadInt64(&l.total)
}

// Dump implements Dumper.
func (l *tourLock) Dump(f func(format string, args ...any)) {
	f("lock=%d algo=tournament nodes=%d", l.id, len(l.nodes))
	for ni := range l.nodes {
		n := &l.nodes[ni]
		if n.held || len(n.queue) > 0 {
			var q []int
			for _, w := range n.queue {
				q = append(q, w.p.ID)
			}
			f("  node=%d host=%d parent=%d held=%v queue=%v", ni, n.host, n.parent, n.held, q)
		}
	}
}

// Quiescent implements Quiescer.
func (l *tourLock) Quiescent() error {
	for ni := range l.nodes {
		n := &l.nodes[ni]
		if n.held || len(n.queue) > 0 {
			return quiesceErrf("lock %d (tournament): node %d held=%v queue=%d", l.id, ni, n.held, len(n.queue))
		}
	}
	return nil
}
