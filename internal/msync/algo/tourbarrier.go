package algo

import "mgs/internal/sim"

// TournamentBarrier is the tournament barrier over SSMPs: in round r,
// SSMP s with bit r as its lowest set bit "loses" to winner s - 2^r
// (after first collecting arrivals as the winner of rounds 0..r-1 from
// partners s + 2^k); SSMP 0 is the champion. Wakeups retrace the
// bracket in reverse: each winner wakes the losers that reported to it,
// highest round first. Statically scheduled like dissemination but with
// half the messages (one per SSMP per episode each way) at the cost of
// a release wave.
//
// Reordering robustness: receive counters are cumulative and compared
// against the node's started-episode count, so an early arrival from a
// bracket partner that already entered the next episode pre-pays its
// round instead of corrupting this one. Skew beyond one episode cannot
// occur: a loser restarts only after its wakeup, which is causally
// after the champion completed the previous episode.
type TournamentBarrier struct{}

// Name implements BarrierAlgo.
func (TournamentBarrier) Name() string { return "tournament" }

// NewBarrier implements BarrierAlgo.
func (TournamentBarrier) NewBarrier(env Env, id, home int) Barrier {
	n := env.NSSMP()
	b := &tourBarrier{env: env, id: id, rounds: log2ceil(n)}
	b.nodes = make([]tourBarNode, n)
	for s := range b.nodes {
		b.nodes[s].recv = make([]int64, b.rounds)
	}
	return b
}

// tourBarNode is one SSMP's bracket state.
type tourBarNode struct {
	g         gate
	localDone bool
	round     int
	started   int64   // episodes this node has begun (local combine done)
	recv      []int64 // per round, cumulative arrivals from losers
}

// tourBarrier is the bracket; SSMP 0 is the champion.
//
//mgs:shared
type tourBarrier struct {
	env    Env
	id     int
	rounds int

	nodes []tourBarNode //mgs:shardpinned each node is touched only by its own SSMP's handlers; sequential dispatcher enforced for non-default algorithms

	episodes int64 //mgs:shardpinned champion-side handlers only; sequential dispatcher enforced for non-default algorithms
}

// loserRound returns the round in which SSMP s loses: the index of its
// lowest set bit (the champion never loses and plays all rounds).
func (b *tourBarrier) loserRound(s int) int {
	if s == 0 {
		return b.rounds
	}
	r := 0
	for s&1 == 0 {
		s >>= 1
		r++
	}
	return r
}

// Arrive implements Barrier.
func (b *tourBarrier) Arrive(p *sim.Proc) {
	e := b.env
	e.ChargeBarrier(p, e.BarrierOp())
	s := e.SSMPOf(p.ID)
	if last, when := b.nodes[s].g.arrive(p, e.ClusterSize()); last {
		e.EmitBarrier(when, p.ID, b.id, "TNB.LOCAL", "ssmp=%d", s)
		e.ChargeBarrier(p, e.SendCost())
		e.Send("TNB.LOCAL", b.id, p.ID, e.RepProc(s, b.id), when, int64(s), e.BarrierOp(),
			func(at sim.Time) { b.onLocal(s, at) })
	}
	c0 := p.Clock()
	p.Park() // woken by the reverse bracket
	e.BarrierWaited(p, p.Clock()-c0)
}

// onLocal runs at the representative: the SSMP fully arrived.
func (b *tourBarrier) onLocal(s int, at sim.Time) {
	n := &b.nodes[s]
	n.started++
	n.localDone = true
	b.advance(s, at)
}

// onArrive runs at a winner: a round-r loser reported.
func (b *tourBarrier) onArrive(s, r int, at sim.Time) {
	b.nodes[s].recv[r]++
	b.advance(s, at)
}

// advance plays SSMP s's bracket as far as arrivals allow: win each
// round up to the losing round (a missing partner is a bye), then
// report to the winner — or, for the champion, complete the episode.
func (b *tourBarrier) advance(s int, at sim.Time) {
	e := b.env
	n := &b.nodes[s]
	if !n.localDone {
		return
	}
	lr := b.loserRound(s)
	for {
		r := n.round
		if r == lr {
			n.localDone = false
			n.round = 0
			if s == 0 {
				b.episodes++
				e.EmitBarrier(at, -1, b.id, "TNB.CHAMPION", "episode=%d", b.episodes)
				b.wake(s, at)
				return
			}
			w := s - 1<<lr
			e.Send("TNB.ARRIVE", b.id, e.RepProc(s, b.id), e.RepProc(w, b.id), at, int64(lr), e.BarrierOp(),
				func(at2 sim.Time) { b.onArrive(w, lr, at2) })
			return
		}
		if partner := s + 1<<r; partner < len(b.nodes) && n.recv[r] < n.started {
			return
		}
		n.round++
	}
}

// wake runs at a winner: release the local gate, then wake this
// bracket's losers, highest round first.
func (b *tourBarrier) wake(s int, at sim.Time) {
	e := b.env
	b.nodes[s].g.release(at, e.BarrierOp())
	for r := b.loserRound(s) - 1; r >= 0; r-- {
		c := s + 1<<r
		if c >= len(b.nodes) {
			continue
		}
		e.Send("TNB.WAKE", b.id, e.RepProc(s, b.id), e.RepProc(c, b.id), at, int64(c), e.BarrierOp(),
			func(at2 sim.Time) { b.wake(c, at2) })
	}
}

// Episodes implements Barrier.
func (b *tourBarrier) Episodes() int64 { return b.episodes }

// Dump implements Dumper.
func (b *tourBarrier) Dump(f func(format string, args ...any)) {
	f("barrier=%d algo=tournament rounds=%d episodes=%d", b.id, b.rounds, b.episodes)
	for s := range b.nodes {
		n := &b.nodes[s]
		if !n.g.idle() || n.localDone || n.round != 0 {
			var ws []int
			for _, p := range n.g.waiting {
				ws = append(ws, p.ID)
			}
			f("  ssmp=%d count=%d waiting=%v localDone=%v round=%d started=%d", s, n.g.count, ws, n.localDone, n.round, n.started)
		}
	}
}

// Quiescent implements Quiescer.
func (b *tourBarrier) Quiescent() error {
	for s := range b.nodes {
		n := &b.nodes[s]
		if !n.g.idle() || n.localDone || n.round != 0 {
			return quiesceErrf("barrier %d (tournament): ssmp %d mid-episode", b.id, s)
		}
		if n.started != b.nodes[0].started {
			return quiesceErrf("barrier %d (tournament): ssmp %d started %d episodes, ssmp 0 %d", b.id, s, n.started, b.nodes[0].started)
		}
	}
	return nil
}
