package algo

import "mgs/internal/sim"

// Sense is the sense-reversing central barrier, deliberately flat: no
// SSMP combining at all. Every processor sends its own ARRIVE to the
// barrier's home, which counts to P and answers with one RELEASE per
// processor — 2P messages per episode, most of them inter-SSMP. The
// sense reversal of the spin-lock original (which lets the counter
// reset safely between episodes) appears here as the count rollover:
// arrivals are anonymous, a processor cannot re-arrive before its own
// release, so a plain counter per episode is reorder-safe. This is the
// zoo's baseline showing what the hierarchy buys the other barriers.
type Sense struct{}

// Name implements BarrierAlgo.
func (Sense) Name() string { return "sense" }

// NewBarrier implements BarrierAlgo.
func (Sense) NewBarrier(env Env, id, home int) Barrier {
	return &senseBarrier{
		env: env, id: id, home: home % env.NProcs(),
		waiting: make([]*sim.Proc, env.NProcs()),
	}
}

// senseBarrier counts at the home; waiting slots live at their own
// processors.
//
//mgs:shared
type senseBarrier struct {
	env  Env
	id   int
	home int

	arrived  int   //mgs:shardpinned home-side handlers only; sequential dispatcher enforced for non-default algorithms
	episodes int64 //mgs:shardpinned home-side handlers only; sequential dispatcher enforced for non-default algorithms

	waiting []*sim.Proc //mgs:shardpinned slot i is touched only by processor i's context and its RELEASE handler; sequential dispatcher enforced for non-default algorithms
}

// Arrive implements Barrier.
func (b *senseBarrier) Arrive(p *sim.Proc) {
	e := b.env
	e.ChargeBarrier(p, e.BarrierOp())
	b.waiting[p.ID] = p
	e.EmitBarrier(p.Clock(), p.ID, b.id, "SNS.ARRIVE", "proc=%d", p.ID)
	e.ChargeBarrier(p, e.SendCost())
	e.Send("SNS.ARRIVE", b.id, p.ID, b.home, p.Clock(), int64(p.ID), e.BarrierOp(),
		func(at sim.Time) { b.onArrive(at) })
	c0 := p.Clock()
	p.Park() // woken by this processor's RELEASE
	e.BarrierWaited(p, p.Clock()-c0)
}

// onArrive runs at the home: count; the P-th arrival releases everyone.
func (b *senseBarrier) onArrive(at sim.Time) {
	e := b.env
	b.arrived++
	e.EmitBarrier(at, -1, b.id, "SNS.COUNT", "arrived=%d/%d", b.arrived, e.NProcs())
	if b.arrived < e.NProcs() {
		return
	}
	b.arrived = 0
	b.episodes++
	for i := 0; i < e.NProcs(); i++ {
		i := i
		e.Send("SNS.RELEASE", b.id, b.home, i, at, int64(i), e.BarrierOp(),
			func(at2 sim.Time) { b.onRelease(i, at2) })
	}
}

// onRelease runs at processor i: wake it.
func (b *senseBarrier) onRelease(i int, at sim.Time) {
	p := b.waiting[i]
	if p == nil {
		return
	}
	b.waiting[i] = nil
	p.Wake(at + b.env.BarrierOp()/4)
}

// Episodes implements Barrier.
func (b *senseBarrier) Episodes() int64 { return b.episodes }

// Dump implements Dumper.
func (b *senseBarrier) Dump(f func(format string, args ...any)) {
	var ws []int
	for i, p := range b.waiting {
		if p != nil {
			ws = append(ws, i)
		}
	}
	f("barrier=%d algo=sense home=%d arrived=%d waiting=%v", b.id, b.home, b.arrived, ws)
}

// Quiescent implements Quiescer.
func (b *senseBarrier) Quiescent() error {
	if b.arrived != 0 {
		return quiesceErrf("barrier %d (sense): %d arrivals uncounted", b.id, b.arrived)
	}
	for i, p := range b.waiting {
		if p != nil {
			return quiesceErrf("barrier %d (sense): proc %d still parked", b.id, i)
		}
	}
	return nil
}
