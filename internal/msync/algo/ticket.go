package algo

import (
	"sync/atomic"

	"mgs/internal/sim"
)

// Ticket is the centralized ticket lock: every acquire draws a ticket
// at the lock's home processor and is granted in strict ticket order.
// Perfectly fair (FIFO by home arrival) but with no SSMP locality —
// every acquire pays a request/grant message pair to the home and every
// release a further message, so its hit ratio is simply the fraction of
// contenders that share the home's SSMP. The home is the single
// serialization point, which makes the protocol trivially robust to
// message reordering: requests are ordered by home arrival, releases
// are anonymous, and a release can never overtake the grant that caused
// it (the grant is the holder's causal past).
type Ticket struct{}

// Name implements LockAlgo.
func (Ticket) Name() string { return "ticket" }

// NewLock implements LockAlgo.
func (Ticket) NewLock(env Env, id, home int) Lock {
	return &ticketLock{env: env, id: id, home: home % env.NProcs()}
}

// ticketLock state lives at the home processor's handlers; the shim
// layer never runs two handlers concurrently because non-default
// algorithms veto the parallel dispatcher (harness parallelOK).
//
//mgs:shared
type ticketLock struct {
	env  Env
	id   int
	home int

	nextTicket int64       //mgs:shardpinned home-side handlers only; sequential dispatcher enforced for non-default algorithms
	nowServing int64       //mgs:shardpinned home-side handlers only; sequential dispatcher enforced for non-default algorithms
	queue      []*sim.Proc //mgs:shardpinned home-side handlers only; FIFO by home arrival

	heldSince sim.Time //mgs:shardpinned single holder at a time; sequential dispatcher enforced for non-default algorithms

	hits  int64 //mgs:atomic
	total int64 //mgs:atomic
}

// Acquire implements Lock: request a ticket from the home and park
// until the grant message wakes us.
func (l *ticketLock) Acquire(p *sim.Proc) {
	e := l.env
	atomic.AddInt64(&l.total, 1)
	e.ChargeLock(p, e.LockOp())
	e.EmitLock(p.Clock(), p.ID, l.id, "TKT.REQ", "proc=%d", p.ID)
	e.ChargeLock(p, e.SendCost())
	e.Send("TKT.REQ", l.id, p.ID, l.home, p.Clock(), int64(p.ID), e.TokenWork(),
		func(at sim.Time) { l.onReq(p, at) })
	c0 := p.Clock()
	p.Park() // woken holding the lock
	e.LockWaited(p, p.Clock()-c0)
}

// onReq runs at the home: draw a ticket; grant immediately if it is
// already being served (the lock is free), else queue.
func (l *ticketLock) onReq(p *sim.Proc, at sim.Time) {
	t := l.nextTicket
	l.nextTicket++
	l.env.EmitLock(at, -1, l.id, "TKT.DRAW", "proc=%d ticket=%d serving=%d", p.ID, t, l.nowServing)
	if t == l.nowServing {
		l.grant(p, at)
		return
	}
	l.queue = append(l.queue, p)
}

// grant runs at the home: send the lock to p.
func (l *ticketLock) grant(p *sim.Proc, at sim.Time) {
	e := l.env
	e.EmitLock(at, -1, l.id, "TKT.GRANT", "proc=%d", p.ID)
	e.Send("TKT.GRANT", l.id, l.home, p.ID, at, int64(p.ID), e.TokenWork(),
		func(at2 sim.Time) { l.onGrant(p, at2) })
}

// onGrant runs at the new holder: count the hit if the grant never left
// the home's SSMP, stamp the critical section, wake.
func (l *ticketLock) onGrant(p *sim.Proc, at sim.Time) {
	e := l.env
	if e.SSMPOf(p.ID) == e.SSMPOf(l.home) {
		atomic.AddInt64(&l.hits, 1)
	}
	l.heldSince = at + e.LockOp()
	p.Wake(at + e.LockOp())
}

// Release implements Lock: notify the home, which advances nowServing
// and grants the next queued ticket. The release is asynchronous — the
// releaser continues immediately.
func (l *ticketLock) Release(p *sim.Proc) {
	e := l.env
	e.ChargeLock(p, e.LockOp())
	if l.heldSince > 0 {
		e.CountCS(p.Clock() - l.heldSince)
	}
	e.EmitLock(p.Clock(), p.ID, l.id, "TKT.REL", "proc=%d", p.ID)
	e.ChargeLock(p, e.SendCost())
	e.Send("TKT.REL", l.id, p.ID, l.home, p.Clock(), int64(p.ID), e.TokenWork(),
		func(at sim.Time) { l.onRel(at) })
}

// onRel runs at the home: the current ticket is done.
func (l *ticketLock) onRel(at sim.Time) {
	l.nowServing++
	if len(l.queue) == 0 {
		return
	}
	next := l.queue[0]
	l.queue = l.queue[1:]
	l.grant(next, at)
}

// Stats implements Lock.
func (l *ticketLock) Stats() (hits, total int64) {
	return atomic.LoadInt64(&l.hits), atomic.LoadInt64(&l.total)
}

// Dump implements Dumper.
func (l *ticketLock) Dump(f func(format string, args ...any)) {
	var q []int
	for _, p := range l.queue {
		q = append(q, p.ID)
	}
	f("lock=%d algo=ticket home=%d next=%d serving=%d queue=%v", l.id, l.home, l.nextTicket, l.nowServing, q)
}

// Quiescent implements Quiescer: every drawn ticket must be served and
// released.
func (l *ticketLock) Quiescent() error {
	if len(l.queue) > 0 {
		return quiesceErrf("lock %d (ticket): %d requests still queued", l.id, len(l.queue))
	}
	if l.nextTicket != l.nowServing {
		return quiesceErrf("lock %d (ticket): ticket %d drawn but serving %d (held or grant in flight)", l.id, l.nextTicket, l.nowServing)
	}
	return nil
}
