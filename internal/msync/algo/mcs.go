package algo

import (
	"sync/atomic"

	"mgs/internal/sim"
)

// MCS is the message-passing MCS queue lock: the lock's home holds only
// the queue tail; each contender swaps itself in with one message and
// thereafter the lock travels point-to-point from predecessor to
// successor. Under contention a handoff is a single message between
// consecutive holders — a hit whenever they share an SSMP — so locality
// follows the queue order rather than token residency.
//
// Reordering robustness: SWAPs serialize at the home, so queue order is
// home-arrival order. Every tenure is tagged with a per-processor
// sequence number; SET-NEXT and MUSTPASS messages carry the tenure they
// belong to, and a node keeps per-tenure pending lists, so a delayed
// SET-NEXT from an old tenure can never hand the lock to the wrong
// tenure's successor no matter how deliveries interleave.
type MCS struct{}

// Name implements LockAlgo.
func (MCS) Name() string { return "mcs" }

// NewLock implements LockAlgo.
func (MCS) NewLock(env Env, id, home int) Lock {
	return &mcsLock{
		env: env, id: id, home: home % env.NProcs(),
		tail: -1, node: make([]mcsNode, env.NProcs()),
	}
}

// mcsPend is a successor learned for a specific tenure.
type mcsPend struct {
	succ *sim.Proc
	seq  int64
}

// mcsNode is one processor's queue node. Its fields are touched by
// handlers delivered to that processor and by the processor itself.
type mcsNode struct {
	seq      int64     // tenure number, incremented at acquire
	pending  []mcsPend // SET-NEXTs not yet consumed, by tenure
	mustPass []int64   // tenures released before their successor was known
}

// mcsLock: the tail lives at the home; nodes live at their processors.
//
//mgs:shared
type mcsLock struct {
	env  Env
	id   int
	home int

	tail    int   //mgs:shardpinned home-side handlers only; sequential dispatcher enforced for non-default algorithms
	tailSeq int64 //mgs:shardpinned home-side handlers only; sequential dispatcher enforced for non-default algorithms

	node []mcsNode //mgs:shardpinned each element is touched only by its own processor's handlers; sequential dispatcher enforced for non-default algorithms

	heldSince sim.Time //mgs:shardpinned single holder at a time; sequential dispatcher enforced for non-default algorithms

	hits  int64 //mgs:atomic
	total int64 //mgs:atomic
}

// Acquire implements Lock: swap into the queue at the home, park until
// a GRANT (from the home, queue was empty) or a PASS (from the
// predecessor) wakes us.
func (l *mcsLock) Acquire(p *sim.Proc) {
	e := l.env
	atomic.AddInt64(&l.total, 1)
	e.ChargeLock(p, e.LockOp())
	n := &l.node[p.ID]
	n.seq++
	seq := n.seq
	e.EmitLock(p.Clock(), p.ID, l.id, "MCS.SWAP", "proc=%d seq=%d", p.ID, seq)
	e.ChargeLock(p, e.SendCost())
	e.Send("MCS.SWAP", l.id, p.ID, l.home, p.Clock(), seq, e.TokenWork(),
		func(at sim.Time) { l.onSwap(p, seq, at) })
	c0 := p.Clock()
	p.Park() // woken holding the lock
	e.LockWaited(p, p.Clock()-c0)
}

// onSwap runs at the home: append to the queue. An empty queue grants
// directly; otherwise the predecessor is told its successor, tagged
// with the predecessor's tenure.
func (l *mcsLock) onSwap(p *sim.Proc, seq int64, at sim.Time) {
	e := l.env
	prev, prevSeq := l.tail, l.tailSeq
	l.tail, l.tailSeq = p.ID, seq
	e.EmitLock(at, -1, l.id, "MCS.TAIL", "proc=%d seq=%d prev=%d", p.ID, seq, prev)
	if prev < 0 {
		e.Send("MCS.GRANT", l.id, l.home, p.ID, at, seq, e.TokenWork(),
			func(at2 sim.Time) { l.wake(p, l.home, at2) })
		return
	}
	e.Send("MCS.SETNEXT", l.id, l.home, prev, at, int64(p.ID), e.TokenWork(),
		func(at2 sim.Time) { l.onSetNext(prev, prevSeq, p, at2) })
}

// onSetNext runs at the predecessor: pass immediately if this tenure
// already released without knowing its successor, else file the
// successor under its tenure.
func (l *mcsLock) onSetNext(prev int, prevSeq int64, succ *sim.Proc, at sim.Time) {
	n := &l.node[prev]
	for i, s := range n.mustPass {
		if s == prevSeq {
			n.mustPass = append(n.mustPass[:i], n.mustPass[i+1:]...)
			l.pass(prev, succ, at)
			return
		}
	}
	n.pending = append(n.pending, mcsPend{succ: succ, seq: prevSeq})
}

// takeSucc removes and returns the successor filed for tenure seq of
// processor pid, if its SET-NEXT already arrived.
func (l *mcsLock) takeSucc(pid int, seq int64) (*sim.Proc, bool) {
	n := &l.node[pid]
	for i, pe := range n.pending {
		if pe.seq == seq {
			n.pending = append(n.pending[:i], n.pending[i+1:]...)
			return pe.succ, true
		}
	}
	return nil, false
}

// pass sends the lock from processor from to successor succ.
func (l *mcsLock) pass(from int, succ *sim.Proc, at sim.Time) {
	e := l.env
	e.EmitLock(at, -1, l.id, "MCS.PASS", "from=%d to=%d", from, succ.ID)
	e.Send("MCS.PASS", l.id, from, succ.ID, at, int64(succ.ID), e.TokenWork(),
		func(at2 sim.Time) { l.wake(succ, from, at2) })
}

// wake runs at the new holder: count the hit if the lock arrived from
// the same SSMP, stamp the critical section, wake.
func (l *mcsLock) wake(p *sim.Proc, from int, at sim.Time) {
	e := l.env
	if e.SSMPOf(from) == e.SSMPOf(p.ID) {
		atomic.AddInt64(&l.hits, 1)
	}
	l.heldSince = at + e.LockOp()
	p.Wake(at + e.LockOp())
}

// Release implements Lock: hand off to the known successor, or tell the
// home this tenure is over (the home answers MUSTPASS if a successor's
// SET-NEXT is still in flight).
func (l *mcsLock) Release(p *sim.Proc) {
	e := l.env
	e.ChargeLock(p, e.LockOp())
	if l.heldSince > 0 {
		e.CountCS(p.Clock() - l.heldSince)
	}
	seq := l.node[p.ID].seq
	if succ, ok := l.takeSucc(p.ID, seq); ok {
		e.ChargeLock(p, e.SendCost())
		l.pass(p.ID, succ, p.Clock())
		return
	}
	e.EmitLock(p.Clock(), p.ID, l.id, "MCS.REL", "proc=%d seq=%d", p.ID, seq)
	e.ChargeLock(p, e.SendCost())
	e.Send("MCS.REL", l.id, p.ID, l.home, p.Clock(), seq, e.TokenWork(),
		func(at sim.Time) { l.onRel(p.ID, seq, at) })
}

// onRel runs at the home. If the releaser's tenure is still the tail
// the queue is empty and the lock goes free; otherwise a successor
// swapped in behind it and the releaser must pass the lock on as soon
// as it learns who that is.
func (l *mcsLock) onRel(pid int, seq int64, at sim.Time) {
	e := l.env
	if l.tail == pid && l.tailSeq == seq {
		l.tail, l.tailSeq = -1, 0
		e.EmitLock(at, -1, l.id, "MCS.FREE", "proc=%d", pid)
		return
	}
	e.Send("MCS.MUSTPASS", l.id, l.home, pid, at, seq, e.TokenWork(),
		func(at2 sim.Time) { l.onMustPass(pid, seq, at2) })
}

// onMustPass runs at the released predecessor: pass now if this
// tenure's successor is known, else flag the tenure so its SET-NEXT
// passes on arrival.
func (l *mcsLock) onMustPass(pid int, seq int64, at sim.Time) {
	if succ, ok := l.takeSucc(pid, seq); ok {
		l.pass(pid, succ, at)
		return
	}
	n := &l.node[pid]
	n.mustPass = append(n.mustPass, seq)
}

// Stats implements Lock.
func (l *mcsLock) Stats() (hits, total int64) {
	return atomic.LoadInt64(&l.hits), atomic.LoadInt64(&l.total)
}

// Dump implements Dumper.
func (l *mcsLock) Dump(f func(format string, args ...any)) {
	f("lock=%d algo=mcs home=%d tail=%d tailSeq=%d", l.id, l.home, l.tail, l.tailSeq)
	for i := range l.node {
		n := &l.node[i]
		if len(n.pending) > 0 || len(n.mustPass) > 0 {
			var succs []int
			for _, pe := range n.pending {
				succs = append(succs, pe.succ.ID)
			}
			f("  proc=%d seq=%d pending=%v mustPass=%v", i, n.seq, succs, n.mustPass)
		}
	}
}

// Quiescent implements Quiescer.
func (l *mcsLock) Quiescent() error {
	if l.tail >= 0 {
		return quiesceErrf("lock %d (mcs): tail=%d (held or handoff in flight)", l.id, l.tail)
	}
	for i := range l.node {
		n := &l.node[i]
		if len(n.pending) > 0 || len(n.mustPass) > 0 {
			return quiesceErrf("lock %d (mcs): proc %d has pending handoff state", l.id, i)
		}
	}
	return nil
}
