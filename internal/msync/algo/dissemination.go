package algo

import "mgs/internal/sim"

// Dissemination is the dissemination barrier over SSMPs: after a local
// combine, each SSMP runs ceil(log2(N)) rounds, sending in round r to
// SSMP (s + 2^r) mod N and waiting for the matching message from
// (s - 2^r) mod N. No root and no release wave — every SSMP knows the
// barrier is complete the moment its own last round closes, so the
// critical path is log N message latencies with no home hotspot.
//
// Reordering robustness: a faster SSMP may start episode e+1 and its
// round messages may overtake a slower SSMP's episode-e traffic, but
// skew beyond one episode is impossible (closing round log N - 1 of
// episode e+1 transitively requires every SSMP to have finished e), so
// cumulative never-reset per-round receive counters absorb any
// interleaving: round r of episode e needs recv[r] >= e+1, and early
// e+1 messages simply pre-pay the counter.
type Dissemination struct{}

// Name implements BarrierAlgo.
func (Dissemination) Name() string { return "dissemination" }

// NewBarrier implements BarrierAlgo.
func (Dissemination) NewBarrier(env Env, id, home int) Barrier {
	n := env.NSSMP()
	b := &dissemBarrier{env: env, id: id, rounds: log2ceil(n)}
	b.nodes = make([]dissemNode, n)
	for s := range b.nodes {
		b.nodes[s].sent = make([]bool, b.rounds)
		b.nodes[s].recv = make([]int64, b.rounds)
	}
	return b
}

// dissemNode is one SSMP's barrier state, touched only by handlers at
// that SSMP's representative (and the local gate by its own
// processors).
type dissemNode struct {
	g         gate
	localDone bool
	round     int
	sent      []bool  // per round, reset each episode
	recv      []int64 // per round, cumulative across episodes
	episode   int64   // completed episodes
}

// dissemBarrier is the set of per-SSMP nodes.
//
//mgs:shared
type dissemBarrier struct {
	env    Env
	id     int
	rounds int

	nodes []dissemNode //mgs:shardpinned each node is touched only by its own SSMP's handlers; sequential dispatcher enforced for non-default algorithms
}

// Arrive implements Barrier: combine locally; the SSMP's last arriver
// publishes completion to the representative with a message, so the
// round state machine always runs in handler context.
func (b *dissemBarrier) Arrive(p *sim.Proc) {
	e := b.env
	e.ChargeBarrier(p, e.BarrierOp())
	s := e.SSMPOf(p.ID)
	if last, when := b.nodes[s].g.arrive(p, e.ClusterSize()); last {
		e.EmitBarrier(when, p.ID, b.id, "DSM.LOCAL", "ssmp=%d", s)
		e.ChargeBarrier(p, e.SendCost())
		e.Send("DSM.LOCAL", b.id, p.ID, e.RepProc(s, b.id), when, int64(s), e.BarrierOp(),
			func(at sim.Time) { b.onLocal(s, at) })
	}
	c0 := p.Clock()
	p.Park() // woken when this SSMP's last round closes
	e.BarrierWaited(p, p.Clock()-c0)
}

// onLocal runs at the representative: the SSMP fully arrived.
func (b *dissemBarrier) onLocal(s int, at sim.Time) {
	b.nodes[s].localDone = true
	b.advance(s, at)
}

// onRound runs at the representative: a round-r message arrived.
func (b *dissemBarrier) onRound(s, r int, at sim.Time) {
	b.nodes[s].recv[r]++
	b.advance(s, at)
}

// advance drives SSMP s's round machine as far as received messages
// allow; it sends each round's message exactly once per episode and
// releases the local gate when the last round closes.
func (b *dissemBarrier) advance(s int, at sim.Time) {
	e := b.env
	n := &b.nodes[s]
	if !n.localDone {
		return
	}
	for {
		if n.round == b.rounds {
			e.EmitBarrier(at, -1, b.id, "DSM.DONE", "ssmp=%d episode=%d", s, n.episode+1)
			n.g.release(at, e.BarrierOp())
			n.episode++
			n.localDone = false
			n.round = 0
			for r := range n.sent {
				n.sent[r] = false
			}
			return
		}
		r := n.round
		if !n.sent[r] {
			n.sent[r] = true
			to := (s + (1 << r)) % e.NSSMP()
			toSSMP := to
			e.Send("DSM.RND", b.id, e.RepProc(s, b.id), e.RepProc(to, b.id), at, int64(r), e.BarrierOp(),
				func(at2 sim.Time) { b.onRound(toSSMP, r, at2) })
		}
		if n.recv[r] < n.episode+1 {
			return
		}
		n.round++
	}
}

// Episodes implements Barrier.
func (b *dissemBarrier) Episodes() int64 { return b.nodes[0].episode }

// Dump implements Dumper.
func (b *dissemBarrier) Dump(f func(format string, args ...any)) {
	f("barrier=%d algo=dissemination rounds=%d", b.id, b.rounds)
	for s := range b.nodes {
		n := &b.nodes[s]
		if !n.g.idle() || n.localDone || n.round != 0 {
			var ws []int
			for _, p := range n.g.waiting {
				ws = append(ws, p.ID)
			}
			f("  ssmp=%d count=%d waiting=%v localDone=%v round=%d episode=%d", s, n.g.count, ws, n.localDone, n.round, n.episode)
		}
	}
}

// Quiescent implements Quiescer.
func (b *dissemBarrier) Quiescent() error {
	for s := range b.nodes {
		n := &b.nodes[s]
		if !n.g.idle() || n.localDone || n.round != 0 {
			return quiesceErrf("barrier %d (dissemination): ssmp %d mid-episode", b.id, s)
		}
		if n.episode != b.nodes[0].episode {
			return quiesceErrf("barrier %d (dissemination): ssmp %d at episode %d, ssmp 0 at %d", b.id, s, n.episode, b.nodes[0].episode)
		}
	}
	return nil
}
