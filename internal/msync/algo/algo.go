// Package algo is the pluggable synchronization-algorithm zoo: lock and
// barrier algorithms expressed purely as message sequences over the MGS
// interconnect, selected by name through harness.WithLockAlgo /
// WithBarrierAlgo (or the -lock / -barrier flags of every tool).
//
// An algorithm never touches the memory system directly. msync.System
// wraps every algorithm lock/barrier in a shim that runs the release-
// consistency protocol actions (ReleaseAll before a release or barrier
// arrival, AcquireSync after a grant or barrier exit) and the profiler
// attribution, so an implementation here is only the ordering protocol:
// who sends what to whom, who parks, who wakes. Every message is a real
// msg.Network send — it pays interconnect latency on every topology,
// rides the reliable transport under fault injection, and is a labeled
// delivery the model checker can reorder.
//
// Cycle-charging rules (shared by every algorithm, matching the native
// token lock and tree barrier):
//
//   - a processor-context operation charges Env.LockOp/BarrierOp to its
//     category, plus Env.SendCost for each message the processor sends;
//   - handler-context sends are free to the processor (the handler's
//     work cycles are charged to the MGS category at the receiver);
//   - parked time is charged to the category on wake and observed into
//     the lock.waitcycles / barrier.waitcycles histograms via
//     Env.LockWaited / Env.BarrierWaited;
//   - critical-section occupancy feeds Env.CountCS at release.
//
// The native algorithms keep their names here ("token", "tree") but map
// to a nil LockAlgo/BarrierAlgo: msync runs its original code path,
// byte-identical to a build that never heard of this package.
package algo

import (
	"sort"

	"mgs/internal/sim"
)

// Env is the toolkit msync hands an algorithm: machine shape, cost
// table, tagged message sends, and the accounting hooks that feed the
// shared lock/barrier statistics, histograms, and trace stream.
type Env interface {
	// Shape.
	NProcs() int
	NSSMP() int
	ClusterSize() int
	SSMPOf(proc int) int
	// RepProc is the processor that runs SSMP-side handlers for object
	// id in SSMP s (spread across the SSMP's processors by id).
	RepProc(s, id int) int

	// Cost table.
	LockOp() sim.Time
	BarrierOp() sim.Time
	TokenWork() sim.Time
	SendCost() sim.Time

	// Send delivers a 32-byte control message from processor from to
	// processor to, no earlier than when, and runs fn as a handler
	// charged work cycles at the receiver. kind/id/aux label the
	// delivery as a model-checker choice point; the label is inert
	// outside the checker.
	Send(kind string, id, from, to int, when sim.Time, aux int64, work sim.Time, fn func(at sim.Time))

	// Accounting.
	ChargeLock(p *sim.Proc, cycles sim.Time)
	ChargeBarrier(p *sim.Proc, cycles sim.Time)
	// LockWaited / BarrierWaited charge parked time and feed the wait
	// histograms; call once per park, after the wake.
	LockWaited(p *sim.Proc, waited sim.Time)
	BarrierWaited(p *sim.Proc, waited sim.Time)
	// CountCS records one critical section of the given occupancy.
	CountCS(held sim.Time)

	// Trace emission (no simulated cost; inert without a sink).
	EmitLock(at sim.Time, proc, id int, name, format string, args ...any)
	EmitBarrier(at sim.Time, proc, id int, name, format string, args ...any)
}

// Lock is one lock instance: the contract Ctx.Acquire/Release dispatch
// through. Acquire returns holding the lock; Release never blocks.
type Lock interface {
	Acquire(p *sim.Proc)
	Release(p *sim.Proc)
	// Stats reports hit/total acquire counts (Figure 11): a hit is an
	// acquire granted without inter-SSMP communication.
	Stats() (hits, total int64)
}

// Barrier is one barrier instance: Arrive returns after every
// processor has arrived.
type Barrier interface {
	Arrive(p *sim.Proc)
	Episodes() int64
}

// LockAlgo builds lock instances. Name is the -lock flag spelling.
type LockAlgo interface {
	Name() string
	NewLock(env Env, id, home int) Lock
}

// BarrierAlgo builds barrier instances. Name is the -barrier spelling.
type BarrierAlgo interface {
	Name() string
	NewBarrier(env Env, id, home int) Barrier
}

// Dumper is optionally implemented by locks and barriers that can
// render their state deterministically (deadlock diagnosis and the
// model checker's state hashing).
type Dumper interface {
	Dump(f func(format string, args ...any))
}

// Quiescer is optionally implemented by locks and barriers that can
// check themselves idle: nothing held, no waiter parked, no protocol
// message outstanding. The model checker runs it at end of run.
type Quiescer interface {
	Quiescent() error
}

// DefaultLock and DefaultBarrier name the native msync algorithms. They
// resolve to a nil algo so msync keeps its original code path.
const (
	DefaultLock    = "token"
	DefaultBarrier = "tree"
)

// The registries are sorted literal slices, not maps, so every listing
// is deterministic without an iteration-order laundering step.
var (
	lockAlgos    = []LockAlgo{MCS{}, Ticket{}, Tournament{}}
	barrierAlgos = []BarrierAlgo{Dissemination{}, MCSTree{}, Sense{}, TournamentBarrier{}}
)

// IsDefaultLock reports whether name selects the native token lock
// (empty means default).
func IsDefaultLock(name string) bool { return name == "" || name == DefaultLock }

// IsDefaultBarrier reports whether name selects the native tree
// barrier (empty means default).
func IsDefaultBarrier(name string) bool { return name == "" || name == DefaultBarrier }

// LockByName resolves a -lock selection. The default names return
// (nil, nil): the caller keeps the native path.
func LockByName(name string) (LockAlgo, error) {
	if IsDefaultLock(name) {
		return nil, nil
	}
	for _, a := range lockAlgos {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, &UnknownError{Kind: "lock", Name: name, Known: LockNames()}
}

// BarrierByName resolves a -barrier selection. The default names
// return (nil, nil): the caller keeps the native path.
func BarrierByName(name string) (BarrierAlgo, error) {
	if IsDefaultBarrier(name) {
		return nil, nil
	}
	for _, a := range barrierAlgos {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, &UnknownError{Kind: "barrier", Name: name, Known: BarrierNames()}
}

// LockNames lists every lock algorithm, default included, sorted.
func LockNames() []string {
	names := []string{DefaultLock}
	for _, a := range lockAlgos {
		names = append(names, a.Name())
	}
	sort.Strings(names)
	return names
}

// BarrierNames lists every barrier algorithm, default included, sorted.
func BarrierNames() []string {
	names := []string{DefaultBarrier}
	for _, a := range barrierAlgos {
		names = append(names, a.Name())
	}
	sort.Strings(names)
	return names
}

// UnknownError reports a name that resolves to no registered algorithm.
type UnknownError struct {
	Kind  string // "lock" or "barrier"
	Name  string
	Known []string
}

func (e *UnknownError) Error() string {
	s := "unknown " + e.Kind + " algorithm " + e.Name + " (have"
	for _, n := range e.Known {
		s += " " + n
	}
	return s + ")"
}
