package core

import (
	"math/rand"
	"testing"

	"mgs/internal/sim"
	"mgs/internal/vm"
)

func TestDirSetExactOps(t *testing.T) {
	var d dirSet
	if !d.empty() {
		t.Fatal("zero dirSet not empty")
	}
	d.add(5, 64, 1)
	d.add(2, 64, 1)
	d.add(5, 64, 1) // duplicate
	if d.empty() || d.coarse {
		t.Fatalf("after adds: empty=%v coarse=%v", d.empty(), d.coarse)
	}
	if got := d.mask64(); got != 1<<5|1<<2 {
		t.Fatalf("mask64 = %b, want %b", got, uint64(1<<5|1<<2))
	}
	if !d.has(5, 1) || d.has(3, 1) {
		t.Fatal("exact membership wrong")
	}
	if d.isOnly(5) {
		t.Fatal("isOnly true with two members")
	}
	d.remove(2)
	if !d.isOnly(5) {
		t.Fatal("isOnly false after remove")
	}
	d.clear()
	if !d.empty() || d.mask64() != 0 {
		t.Fatal("clear did not empty the set")
	}
}

func TestDirSetCoarseCollapse(t *testing.T) {
	var d dirSet
	// Threshold 2, grain 4: the third distinct SSMP collapses the set.
	d.add(0, 2, 4)
	d.add(9, 2, 4)
	if d.coarse {
		t.Fatal("coarse before threshold exceeded")
	}
	d.add(5, 2, 4)
	if !d.coarse {
		t.Fatal("not coarse past threshold")
	}
	// Clusters: 0 -> group 0, 9 -> group 2, 5 -> group 1.
	if d.groups != 1<<0|1<<2|1<<1 {
		t.Fatalf("groups = %b", d.groups)
	}
	// Membership over-approximates within a marked cluster...
	if !d.has(1, 4) || !d.has(5, 4) {
		t.Fatal("coarse has() missed a marked cluster")
	}
	// ...but never claims an unmarked one.
	if d.has(12, 4) {
		t.Fatal("coarse has() invented an unmarked cluster")
	}
	// Removal is a sound no-op; precision returns only via clear.
	d.remove(5)
	if !d.has(5, 4) {
		t.Fatal("coarse remove dropped a cluster bit")
	}
	if d.isOnly(5) {
		t.Fatal("coarse isOnly must be false")
	}
	d.clear()
	if d.coarse || !d.empty() {
		t.Fatal("clear did not return to exact mode")
	}
}

func TestPageArena(t *testing.T) {
	var a pageArena[int]
	if a.get(3) != nil {
		t.Fatal("get on empty arena")
	}
	x, y := 1, 2
	a.put(7, &x)
	a.put(3, &y)
	if a.get(7) != &x || a.get(3) != &y || a.get(5) != nil {
		t.Fatal("get after put wrong")
	}
	var order []vm.Page
	a.each(func(v vm.Page, p *int) { order = append(order, v) })
	if len(order) != 2 || order[0] != 3 || order[1] != 7 {
		t.Fatalf("each order = %v, want [3 7]", order)
	}
	a.del(7)
	if a.get(7) != nil || a.n != 1 {
		t.Fatal("del did not remove")
	}
}

// TestCoarseDirectoryMemoryEquivalence runs the randomized protocol
// stress workload once with the default exact directory and once with
// DirThreshold=1 — every multi-sharer page goes coarse — and checks
// both that the coarse path actually engaged and that the final home
// memory is identical: over-invalidation may change timing, never data.
func TestCoarseDirectoryMemoryEquivalence(t *testing.T) {
	run := func(thresh int) ([]byte, *testMachine) {
		tm := buildTest(8, 2, 700, func(cfg *Config) { cfg.Costs.DirThreshold = thresh })
		runStressBodies(t, tm, 8, 41)
		tm.run(t)
		return tm.sys.SnapshotMemory(), tm
	}
	exact, _ := run(0)
	coarse, tmCoarse := run(1)
	if tmCoarse.st.Counter("dir.coarse") == 0 {
		t.Fatal("DirThreshold=1 never exercised the coarse expansion")
	}
	if string(exact) != string(coarse) {
		t.Fatal("coarse directory changed final memory")
	}
	// With the threshold at 1, single-sharer rounds may still certify a
	// single writer, but multi-sharer write sets cannot.
	ds := tmCoarse.sys.DirectoryStats()
	if ds.Pages == 0 || ds.RmtEntries == 0 {
		t.Fatalf("DirectoryStats empty after stress: %+v", ds)
	}
}

// TestDirectoryStatsSparse checks the home-side scaling claim: copy
// records exist only for SSMPs actually served, not one per SSMP.
func TestDirectoryStatsSparse(t *testing.T) {
	tm := buildTest(16, 2, 500, nil) // 8 SSMPs
	va := tm.sys.Space().AllocPages(1024)
	tm.bodies[2] = func(p *sim.Proc) { // SSMP 1 only
		store64(tm.sys, p, va, 9)
		tm.sys.ReleaseAll(p)
	}
	tm.run(t)
	ds := tm.sys.DirectoryStats()
	if ds.Pages != 1 {
		t.Fatalf("Pages = %d, want 1", ds.Pages)
	}
	if ds.RmtEntries != 1 {
		t.Fatalf("RmtEntries = %d, want 1 (one SSMP served; old dense layout would hold 8)", ds.RmtEntries)
	}
	if ds.CoarsePages != 0 {
		t.Fatalf("CoarsePages = %d, want 0", ds.CoarsePages)
	}
	if ds.Bytes <= 0 {
		t.Fatalf("Bytes = %d", ds.Bytes)
	}
}

// runStressBodies installs the randomized disjoint-slot workload from
// stressOnce on an existing machine (shared by the directory tests).
func runStressBodies(t *testing.T, tm *testMachine, p int, seed int64) {
	t.Helper()
	const npages = 6
	const slotsPerProc = 8
	base := tm.sys.Space().AllocPages(npages * 1024)
	slotVA := func(proc, slot int) vm.Addr {
		return base + vm.Addr((slot*p+proc)*8)
	}
	if slotsPerProc*p*8 > npages*1024 {
		t.Fatal("slot layout overflows pages")
	}
	for i := 0; i < p; i++ {
		i := i
		rng := rand.New(rand.NewSource(seed + int64(i)))
		tm.bodies[i] = func(pr *sim.Proc) {
			for step := 0; step < 60; step++ {
				slot := rng.Intn(slotsPerProc)
				store64(tm.sys, pr, slotVA(i, slot), rng.Uint64())
				if rng.Intn(7) == 0 {
					tm.sys.ReleaseAll(pr)
				}
				if rng.Intn(3) == 0 {
					load64(tm.sys, pr, slotVA(rng.Intn(p), rng.Intn(slotsPerProc)))
				}
			}
			tm.sys.ReleaseAll(pr)
		}
	}
}
