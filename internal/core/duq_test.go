package core

import (
	"testing"
	"testing/quick"

	"mgs/internal/vm"
)

// TestDUQAddPopMatchesFIFO: with no removals the queue is an exact
// FIFO-set — random add/pop streams must match a reference model.
func TestDUQAddPopMatchesFIFO(t *testing.T) {
	run := func(ops []uint8) bool {
		d := newDUQ()
		var order []vm.Page
		member := map[vm.Page]bool{}
		for _, op := range ops {
			page := vm.Page(op % 16)
			if op >= 128 { // pop
				gp, gok := d.pop()
				wok := len(order) > 0
				if gok != wok {
					return false
				}
				if gok {
					if gp != order[0] {
						return false
					}
					delete(member, order[0])
					order = order[1:]
				}
			} else { // add
				d.add(page)
				if !member[page] {
					member[page] = true
					order = append(order, page)
				}
			}
			if d.len() != len(member) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDUQDrainAfterRandomOps: under arbitrary add/remove/pop traffic,
// draining the queue must yield exactly the set of live pages, each
// once, and never a removed page.
func TestDUQDrainAfterRandomOps(t *testing.T) {
	run := func(ops []uint16) bool {
		d := newDUQ()
		live := map[vm.Page]bool{}
		for _, op := range ops {
			page := vm.Page(op % 16)
			switch (op / 16) % 3 {
			case 0:
				d.add(page)
				live[page] = true
			case 1:
				d.remove(page)
				delete(live, page)
			case 2:
				if p, ok := d.pop(); ok {
					if !live[p] {
						return false // popped a dead or phantom page
					}
					delete(live, p)
				} else if len(live) != 0 {
					return false // empty pop while entries were live
				}
			}
			if d.len() != len(live) {
				return false
			}
		}
		seen := map[vm.Page]bool{}
		for {
			p, ok := d.pop()
			if !ok {
				break
			}
			if !live[p] || seen[p] {
				return false
			}
			seen[p] = true
		}
		return len(seen) == len(live)
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
