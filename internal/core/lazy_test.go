package core

import (
	"testing"

	"mgs/internal/sim"
)

func buildLazy(p, c int, delay sim.Time) *testMachine {
	return buildTest(p, c, delay, func(cfg *Config) { cfg.Costs.LazyRelease = true })
}

// TestLazyReleaseMergesWithoutInvalidation: a release pushes the diff
// home and completes without any invalidation round.
func TestLazyReleaseMergesWithoutInvalidation(t *testing.T) {
	tm := buildLazy(4, 2, 1000)
	va := tm.sys.Space().AllocPages(1024)
	tm.bodies[2] = func(p *sim.Proc) { // remote SSMP
		store64(tm.sys, p, va, 41)
		store64(tm.sys, p, va+8, 42)
		tm.sys.ReleaseAll(p)
	}
	tm.run(t)
	if got := tm.sys.BackdoorLoad64(va); got != 41 {
		t.Fatalf("home word 0 = %d, want 41", got)
	}
	if got := tm.sys.BackdoorLoad64(va + 8); got != 42 {
		t.Fatalf("home word 1 = %d, want 42", got)
	}
	if n := tm.st.Counter("inv") + tm.st.Counter("1winv"); n != 0 {
		t.Fatalf("%d invalidations sent; lazy releases must send none", n)
	}
	if tm.st.Counter("lrel") != 1 {
		t.Fatalf("lrel = %d, want 1", tm.st.Counter("lrel"))
	}
}

// TestLazyStaleCopyUntilAcquire: after a remote release, an existing
// read copy keeps serving the old value until its SSMP acquires.
func TestLazyStaleCopyUntilAcquire(t *testing.T) {
	tm := buildLazy(6, 2, 1000)
	va := tm.sys.Space().AllocPages(1024)
	tm.sys.BackdoorStore64(va, 7)
	var before, stale, after uint64
	tm.bodies[2] = func(p *sim.Proc) { // reader SSMP 1
		before = load64(tm.sys, p, va) // fetch a copy: 7
		p.Sleep(200_000)               // writer releases meanwhile
		stale = load64(tm.sys, p, va)  // still the stale copy
		tm.sys.AcquireSync(p)          // acquire: write notice kills it
		after = load64(tm.sys, p, va)  // refetch the merged image
	}
	tm.bodies[4] = func(p *sim.Proc) { // writer SSMP 2
		p.Sleep(50_000)
		store64(tm.sys, p, va, 99)
		tm.sys.ReleaseAll(p)
	}
	tm.run(t)
	if before != 7 {
		t.Fatalf("before = %d, want 7", before)
	}
	if stale != 7 {
		t.Fatalf("stale read = %d, want 7 (lazy mode must NOT invalidate)", stale)
	}
	if after != 99 {
		t.Fatalf("after acquire = %d, want 99", after)
	}
	if tm.st.Counter("acq.inval") != 1 {
		t.Fatalf("acq.inval = %d, want 1", tm.st.Counter("acq.inval"))
	}
}

// TestLazyAcquireFlushPreservesDirtyWrites: an SSMP with unreleased
// writes on a page that went stale must flush them at acquire, losing
// neither its own words nor the remote merge.
func TestLazyAcquireFlushPreservesDirtyWrites(t *testing.T) {
	tm := buildLazy(6, 2, 1000)
	va := tm.sys.Space().AllocPages(1024)
	var merged, mine uint64
	tm.bodies[2] = func(p *sim.Proc) { // SSMP 1: dirties word 0, holds it
		store64(tm.sys, p, va, 11)
		p.Sleep(200_000) // SSMP 2's release makes this copy stale
		tm.sys.AcquireSync(p)
		// The flush carried word 0 home and dropped the copy; both
		// writes must now be visible through a fresh fetch.
		mine = load64(tm.sys, p, va)
		merged = load64(tm.sys, p, va+8)
	}
	tm.bodies[4] = func(p *sim.Proc) { // SSMP 2: disjoint word
		p.Sleep(50_000)
		store64(tm.sys, p, va+8, 22)
		tm.sys.ReleaseAll(p)
	}
	tm.run(t)
	if mine != 11 || merged != 22 {
		t.Fatalf("after flush: word0=%d word1=%d, want 11/22", mine, merged)
	}
	if tm.st.Counter("acq.flush") != 1 {
		t.Fatalf("acq.flush = %d, want 1", tm.st.Counter("acq.flush"))
	}
	if got := tm.sys.BackdoorLoad64(va); got != 11 {
		t.Fatalf("home word 0 = %d, want 11 (flush lost the dirty data)", got)
	}
}

// TestLazyVersionChainKeepsSoleWriterFresh: an SSMP repeatedly
// writing and releasing the same page with no other traffic must never
// see its own copy as stale (the version chain follows its merges).
func TestLazyVersionChainKeepsSoleWriterFresh(t *testing.T) {
	tm := buildLazy(4, 2, 1000)
	va := tm.sys.Space().AllocPages(1024)
	tm.bodies[2] = func(p *sim.Proc) {
		for k := 0; k < 5; k++ {
			store64(tm.sys, p, va, uint64(k+1))
			tm.sys.ReleaseAll(p)
			tm.sys.AcquireSync(p)
			p.Sleep(10_000)
		}
	}
	tm.run(t)
	if got := tm.sys.BackdoorLoad64(va); got != 5 {
		t.Fatalf("home = %d, want 5", got)
	}
	if n := tm.st.Counter("acq.stale"); n != 0 {
		t.Fatalf("acq.stale = %d, want 0 (sole writer's copy stayed fresh)", n)
	}
	// One initial fetch only: releases demote but never tear down.
	if n := tm.st.Counter("wreq") + tm.st.Counter("rreq"); n != 1 {
		t.Fatalf("fetches = %d, want 1", n)
	}
}

// TestLazyHomeReleaseAdvancesVersion: in-place home writes must make
// remote copies stale at their next acquire.
func TestLazyHomeReleaseAdvancesVersion(t *testing.T) {
	tm := buildLazy(6, 2, 1000)
	va := tm.sys.Space().AllocPages(1024) // page 1 homed at proc 1 (SSMP 0)
	var stale, fresh uint64
	tm.bodies[4] = func(p *sim.Proc) { // remote reader
		stale = load64(tm.sys, p, va)
		p.Sleep(200_000)
		tm.sys.AcquireSync(p)
		fresh = load64(tm.sys, p, va)
	}
	tm.bodies[0] = func(p *sim.Proc) { // home SSMP writer
		p.Sleep(50_000)
		store64(tm.sys, p, va, 77)
		tm.sys.ReleaseAll(p)
	}
	tm.run(t)
	if stale != 0 || fresh != 77 {
		t.Fatalf("stale=%d fresh=%d, want 0/77", stale, fresh)
	}
	if tm.st.Counter("lrel.home") != 1 {
		t.Fatalf("lrel.home = %d, want 1", tm.st.Counter("lrel.home"))
	}
}

// TestLazyLockedCountersAcrossSSMPs: the classic correctness shape —
// read-modify-write under synchronization, emulated here by explicit
// release + acquire pairs serialized with sleeps.
func TestLazyLockedCountersAcrossSSMPs(t *testing.T) {
	tm := buildLazy(8, 2, 700)
	va := tm.sys.Space().AllocPages(1024)
	const rounds = 4
	for i := 0; i < 4; i++ {
		pr := i * 2 // one proc per SSMP
		turn := i
		tm.bodies[pr] = func(p *sim.Proc) {
			for k := 0; k < rounds; k++ {
				// Round-robin schedule stands in for a lock's total order.
				p.Sleep(sim.Time(300_000*(turn+4*k) + 1000))
				tm.sys.AcquireSync(p)
				v := load64(tm.sys, p, va)
				store64(tm.sys, p, va, v+1)
				tm.sys.ReleaseAll(p)
			}
		}
	}
	tm.run(t)
	if got := tm.sys.BackdoorLoad64(va); got != 4*rounds {
		t.Fatalf("counter = %d, want %d", got, 4*rounds)
	}
}

// TestLazyRelWaitSynchronizes: a release whose writes were already
// captured by an SSMP-mate's release still in flight must wait for that
// merge to reach the home (LRELWAIT) — completing early would let a
// lock hand over before the data is visible.
func TestLazyRelWaitSynchronizes(t *testing.T) {
	tm := buildLazy(4, 2, 5000)
	va := tm.sys.Space().AllocPages(1024)
	var bDone sim.Time
	tm.bodies[2] = func(p *sim.Proc) { // proc A: releases first
		store64(tm.sys, p, va, 1)
		p.Sleep(50_000 - p.Clock()%50_000) // release at a known time
		tm.sys.ReleaseAll(p)               // REL in flight ~50k..62k
	}
	tm.bodies[3] = func(p *sim.Proc) { // proc B, same SSMP
		p.Sleep(30_000)
		store64(tm.sys, p, va+8, 2) // same copy, before A's demote
		p.Sleep(52_000 - p.Clock()%52_000)
		tm.sys.ReleaseAll(p) // hits PRead while A's REL is in flight
		bDone = p.Clock()
	}
	tm.run(t)
	if tm.st.Counter("lrel.wait") != 1 {
		t.Fatalf("lrel.wait = %d, want 1 (B must wait on A's in-flight REL)", tm.st.Counter("lrel.wait"))
	}
	if got := tm.sys.BackdoorLoad64(va); got != 1 {
		t.Fatalf("home word 0 = %d, want 1", got)
	}
	if got := tm.sys.BackdoorLoad64(va + 8); got != 2 {
		t.Fatalf("home word 1 = %d, want 2", got)
	}
	// B's release completed no earlier than A's merge could have landed
	// at the home (REL departs ~50k, arrives after the 5000-cycle LAN
	// delay plus overheads).
	if bDone < 55_000 {
		t.Fatalf("B's release returned at %d, before A's merge reached home", bDone)
	}
}
