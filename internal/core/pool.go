package core

import "sync"

// Process-wide recycling pools. Twin buffers and diff buffers churn at
// protocol rate; recycling them across releases — and across the many
// short-lived Systems a parameter sweep builds — keeps the steady state
// allocation-free and stops sweep-level runs from spending their time
// in the allocator. Both pools are size-keyed: one sweep can mix page
// sizes.
//
// Determinism: pool contents never reach the simulation. A page buffer
// is fully overwritten before any simulated read (newTwin copies a
// whole page into it) and a DiffBuf's Compute overwrites everything it
// exposes, so which pooled object a caller happens to draw — the one
// nondeterministic choice sync.Pool makes — is invisible to virtual
// time, protocol state, and results.

var pageBufPools sync.Map // page size -> *sync.Pool of *[]byte

func getPageBuf(n int) []byte {
	p, ok := pageBufPools.Load(n)
	if !ok {
		p, _ = pageBufPools.LoadOrStore(n, &sync.Pool{
			New: func() any { b := make([]byte, n); return &b },
		})
	}
	return *p.(*sync.Pool).Get().(*[]byte)
}

func putPageBuf(b []byte) {
	if p, ok := pageBufPools.Load(len(b)); ok {
		p.(*sync.Pool).Put(&b)
	}
}

// diffBufPool recycles diff scratch buffers. New pre-sizes the range
// header slice so a fresh buffer's first Compute does not pay the
// append growth-by-doubling walk; the payload slab still grows to the
// first diff's high-water mark on demand.
var diffBufPool = sync.Pool{
	New: func() any { return &DiffBuf{ranges: make([]DiffRange, 0, 32)} },
}

// getDiffBuf draws a reusable diff buffer. Pair with putDiffBuf once
// the diff computed from it has been applied (or discarded).
//
//mgs:noalloc
func getDiffBuf() *DiffBuf { return diffBufPool.Get().(*DiffBuf) }

//mgs:noalloc
func putDiffBuf(b *DiffBuf) {
	if b != nil {
		diffBufPool.Put(b)
	}
}
