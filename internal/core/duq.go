package core

import "mgs/internal/vm"

// duq is one processor's delayed update queue (paper §3.1.1): the set of
// pages the processor has write-faulted on since its last release. At a
// release point the owning processor drains it, sending one REL per page
// and waiting for the RACK before moving to the next — the serial flush
// that produces the paper's critical-section dilation.
//
// Entries are removed out of band when a page is invalidated (a PINV
// handler runs, Table 1 arc 12); removal is lazy — pop skips dead heads.
type duq struct {
	queue  []vm.Page
	member map[vm.Page]bool
}

func newDUQ() *duq {
	return &duq{member: make(map[vm.Page]bool)}
}

// add enqueues the page if not already queued.
func (d *duq) add(p vm.Page) {
	if d.member[p] {
		return
	}
	d.member[p] = true
	d.queue = append(d.queue, p)
}

// remove drops the page (invalidation pulled it out from under us).
func (d *duq) remove(p vm.Page) { delete(d.member, p) }

// pop returns the oldest live entry, or false if the queue is empty.
func (d *duq) pop() (vm.Page, bool) {
	for len(d.queue) > 0 {
		h := d.queue[0]
		d.queue = d.queue[1:]
		if d.member[h] {
			delete(d.member, h)
			return h, true
		}
	}
	return 0, false
}

// len reports the number of live entries.
func (d *duq) len() int { return len(d.member) }
