package core

import "encoding/binary"

// Munin-style twin/diff machinery (paper §3.1.1). When an SSMP obtains
// write privilege on a page it snapshots the page (the twin). At
// invalidation time the protocol compares the current page against the
// twin and ships only the changed byte ranges back to the home, which
// merges them. Two SSMPs writing disjoint parts of one page therefore
// both get their writes home — the multiple-writer protocol that makes
// page-grain false sharing survivable.

// DiffRange is one changed run of bytes.
type DiffRange struct {
	Off  int
	Data []byte
}

// Diff is the set of changed ranges of one page, in ascending offset
// order. All ranges of one Diff share a single backing buffer.
type Diff []DiffRange

// Checksum returns a deterministic FNV-1a digest of the diff's ranges
// (offsets and payloads). The model checker folds it into message
// labels so in-flight diffs with different contents never hash to the
// same pending-event multiset; it is never computed on normal runs.
//
//mgs:noalloc
func (d Diff) Checksum() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, r := range d {
		for sh := 0; sh < 64; sh += 8 {
			h = (h ^ (uint64(r.Off) >> sh & 0xff)) * prime64
		}
		for _, b := range r.Data {
			h = (h ^ uint64(b)) * prime64
		}
	}
	return h
}

// Word-wise scan constants: x-lo&^x&hi is nonzero iff the word x has a
// zero byte (exact — borrows only occur past a zero byte).
const (
	zlo = 0x0101010101010101
	zhi = 0x8080808080808080
)

// DiffBuf is reusable storage for diff computation: the range headers
// and the payload bytes of one diff at a time. A Diff returned by
// Compute aliases the buffer, so the buffer must stay untouched until
// the diff's last Apply; recycling it (diffPool in system.go) then
// makes steady-state diffing allocation-free.
type DiffBuf struct {
	ranges []DiffRange
	data   []byte
}

// Compute compares the current page contents against its twin and
// returns the changed ranges (with the current values), overwriting
// the buffer's previous contents. Adjacent changed bytes coalesce into
// one range.
//
// The scan compares eight bytes at a time: equal stretches skip by
// whole words, changed stretches extend by whole words while every byte
// of the word differs, and only the boundary word of a run is examined
// byte by byte. The range payloads are carved from the buffer's single
// payload slab — zero allocations once the buffer has grown to the
// workload's high-water mark. The ranges produced are byte-identical
// to a plain byte-at-a-time scan, so message sizes and protocol costs
// are unchanged.
//
//mgs:noalloc
func (b *DiffBuf) Compute(twin, cur []byte) Diff {
	if len(twin) != len(cur) {
		panic("core: twin/page size mismatch")
	}
	n := len(cur)
	d := b.ranges[:0]
	total := 0
	i := 0
	for i < n {
		// Skip the equal prefix a word at a time, then finish the
		// partial word byte-wise.
		for i+8 <= n && binary.LittleEndian.Uint64(twin[i:]) == binary.LittleEndian.Uint64(cur[i:]) {
			i += 8
		}
		for i < n && twin[i] == cur[i] {
			i++
		}
		if i == n {
			break
		}
		// Extend the changed run: whole words while all eight bytes
		// differ (the XOR has no zero byte), byte-wise at the boundary.
		j := i + 1
		for j < n {
			if j+8 <= n {
				x := binary.LittleEndian.Uint64(twin[j:]) ^ binary.LittleEndian.Uint64(cur[j:])
				if x != 0 && (x-zlo)&^x&zhi == 0 {
					j += 8
					continue
				}
			}
			if twin[j] == cur[j] {
				break
			}
			j++
		}
		// Record the run; Data temporarily aliases cur until the shared
		// buffer is carved below.
		d = append(d, DiffRange{Off: i, Data: cur[i:j]})
		total += j - i
		i = j
	}
	b.ranges = d
	if total > 0 {
		if cap(b.data) < total {
			b.data = make([]byte, total)
		}
		buf := b.data[:total]
		pos := 0
		for k := range d {
			m := copy(buf[pos:pos+len(d[k].Data)], d[k].Data)
			d[k].Data = buf[pos : pos+m : pos+m]
			pos += m
		}
	}
	return d
}

// Clone copies the diff into exact-size owned storage: one allocation
// for the range headers and one for a shared payload slab (none for an
// empty diff). The clone survives recycling of the DiffBuf the receiver
// was computed from.
func (d Diff) Clone() Diff {
	if len(d) == 0 {
		return nil
	}
	total := 0
	for _, r := range d {
		total += len(r.Data)
	}
	out := make(Diff, len(d))
	slab := make([]byte, total)
	pos := 0
	for i, r := range d {
		n := copy(slab[pos:pos+len(r.Data)], r.Data)
		out[i] = DiffRange{Off: r.Off, Data: slab[pos : pos+n : pos+n]}
		pos += n
	}
	return out
}

// ComputeDiff computes a diff the caller may keep: the returned Diff
// owns its storage. The scratch work happens in a pooled DiffBuf, so
// the only allocations are the clone's two exact-size copies (ranges
// and payload slab) — not the buffer's growth-by-doubling, which the
// pool amortizes away. Protocol paths that apply-and-discard use a
// pooled DiffBuf directly and skip the copy.
func ComputeDiff(twin, cur []byte) Diff {
	b := getDiffBuf()
	d := b.Compute(twin, cur).Clone()
	putDiffBuf(b)
	return d
}

// Apply merges the diff into dst (the home copy).
//
//mgs:noalloc
func (d Diff) Apply(dst []byte) {
	for _, r := range d {
		copy(dst[r.Off:r.Off+len(r.Data)], r.Data)
	}
}

// Bytes is the payload size of the diff: changed data plus a fixed
// per-range header of hdr bytes.
//
//mgs:noalloc
func (d Diff) Bytes(hdr int) int {
	n := 0
	for _, r := range d {
		n += len(r.Data) + hdr
	}
	return n
}

// Len reports the number of ranges.
//
//mgs:noalloc
func (d Diff) Len() int { return len(d) }
