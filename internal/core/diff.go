package core

// Munin-style twin/diff machinery (paper §3.1.1). When an SSMP obtains
// write privilege on a page it snapshots the page (the twin). At
// invalidation time the protocol compares the current page against the
// twin and ships only the changed byte ranges back to the home, which
// merges them. Two SSMPs writing disjoint parts of one page therefore
// both get their writes home — the multiple-writer protocol that makes
// page-grain false sharing survivable.

// DiffRange is one changed run of bytes.
type DiffRange struct {
	Off  int
	Data []byte
}

// Diff is the set of changed ranges of one page, in ascending offset
// order.
type Diff []DiffRange

// ComputeDiff compares the current page contents against its twin and
// returns the changed ranges (with the current values). Adjacent changed
// bytes coalesce into one range.
func ComputeDiff(twin, cur []byte) Diff {
	if len(twin) != len(cur) {
		panic("core: twin/page size mismatch")
	}
	var d Diff
	i := 0
	for i < len(cur) {
		if twin[i] == cur[i] {
			i++
			continue
		}
		j := i + 1
		for j < len(cur) && twin[j] != cur[j] {
			j++
		}
		data := make([]byte, j-i)
		copy(data, cur[i:j])
		d = append(d, DiffRange{Off: i, Data: data})
		i = j
	}
	return d
}

// Apply merges the diff into dst (the home copy).
func (d Diff) Apply(dst []byte) {
	for _, r := range d {
		copy(dst[r.Off:r.Off+len(r.Data)], r.Data)
	}
}

// Bytes is the payload size of the diff: changed data plus a fixed
// per-range header of hdr bytes.
func (d Diff) Bytes(hdr int) int {
	n := 0
	for _, r := range d {
		n += len(r.Data) + hdr
	}
	return n
}

// Len reports the number of ranges.
func (d Diff) Len() int { return len(d) }
