package core

import (
	"testing"

	"mgs/internal/sim"
)

// TestReleaseAfterCaptureStartsFreshRound is the regression test for
// the arc-22 fold-in hazard: a single-writer SSMP is captured early in
// a release round and retains its copy; a processor there immediately
// refills locally, writes, and releases while the round is still
// collecting other replies. That release must not fold into the round
// (whose capture predates the write) — it must run as a fresh round, or
// the write sits unflushed while readers consume stale home data.
func TestReleaseAfterCaptureStartsFreshRound(t *testing.T) {
	// SSMP 0 = home, SSMP 1 = writer (W), SSMP 2 = reader (R). A large
	// LAN delay widens the round's window so the re-dirty fits inside.
	tm := buildTest(6, 2, 10_000, nil)
	va := tm.sys.Space().AllocPages(1024) // page 1: home proc 1, SSMP 0
	var w3got uint64

	tm.bodies[2] = func(p *sim.Proc) { // W, first writer
		store64(tm.sys, p, va, 1)
		tm.sys.ReleaseAll(p) // 1W round: W retains its copy
		p.Sleep(200_000)
		store64(tm.sys, p, va, 2) // local refill (retained copy)
		tm.sys.ReleaseAll(p)      // round 2: 1WINV -> W first, INV -> R after
	}
	tm.bodies[3] = func(p *sim.Proc) { // W's second processor
		// Wake inside round 2, after W's capture (~+25k of the REL at
		// ~210k) but before R's reply (~+45k).
		p.Sleep(240_000)
		store64(tm.sys, p, va+8, 3)
		tm.sys.ReleaseAll(p) // must NOT fold into round 2
		w3got = tm.sys.BackdoorLoad64(va + 8)
	}
	tm.bodies[4] = func(p *sim.Proc) { // R: read copy so round 2 has a slow leg
		p.Sleep(100_000)
		load64(tm.sys, p, va)
	}
	tm.run(t)

	if got := tm.sys.BackdoorLoad64(va); got != 2 {
		t.Errorf("home word 0 = %d, want 2", got)
	}
	if w3got != 3 {
		t.Errorf("home word 1 after proc 3's release = %d, want 3 (release must flush)", w3got)
	}
	t.Logf("rel.requeued = %d", tm.st.Counter("rel.requeued"))
}
