package core

import (
	"math/bits"

	"mgs/internal/obs"
	"mgs/internal/sim"
	"mgs/internal/stats"
	"mgs/internal/vm"
)

// Lazy release consistency (extension).
//
// The paper's §6 contrasts MGS's eager protocol — every release
// invalidates every copy before completing — with the lazy release
// consistency of systems like TreadMarks, which delay coherence to
// acquire time. This file implements that other side of the comparison
// behind Costs.LazyRelease:
//
//   - A release sends only the releasing SSMP's own diff to the home,
//     which merges it and advances the page's version. No invalidation
//     round runs; other SSMPs' copies go stale in place. The releaser's
//     copy demotes to a read copy (a later write upgrades and re-twins).
//
//   - An acquire — a lock grant or a barrier exit — validates the
//     acquiring SSMP's copies against the home versions. A stale dirty
//     copy flushes its diff home first (preserving its unreleased
//     writes), then every stale copy is torn down so the next touch
//     refetches the merged image.
//
// Version comparison stands in for TreadMarks' vector-timestamped write
// notices: real LRC piggybacks "these pages changed" intervals on the
// lock token, and the token's transfer already orders the notice ahead
// of the acquirer's next access. The simulator reads the version
// directly and charges only the per-stale-page processing, which
// idealizes the notice transport (its payload rides the existing token
// and barrier-release messages) but preserves what the experiment
// measures: where the coherence work moves, and how much of it the
// laziness avoids.
//
// Data-race-free programs compute identical results under both
// protocols (the conformance test in internal/exp enforces this
// bit-for-bit); racy reads may observe older values than eager MGS
// would show, which release consistency permits.

// releaseLazy drains processor p's delayed update queue under lazy
// release consistency: one diff-carrying REL per dirty page, no
// invalidation round. Called by ReleaseAll.
func (s *System) releaseLazy(p *sim.Proc, ss *ssmpState, d *duq) {
	c := &s.cfg.Costs
	for {
		v, ok := d.pop()
		if !ok {
			return
		}
		s.st.ProfSet(p.ID, obs.ObjPage, int64(v))
		cp := ss.pages.get(v)
		s.lockProc(cp, p, stats.MGS)
		if cp.state != PWrite {
			// Already flushed — by an acquire-time sync or by another
			// local processor's release of the same page. If that flush
			// is still in flight the release must wait for its merge to
			// reach the home (the lazy counterpart of eager RELWAIT):
			// completing early would hand a lock over before the
			// captured data is visible to the next acquirer.
			if cp.relInFlight > 0 {
				s.emitPage(p.Clock(), p.ID, v, "LRELWAIT", "proc %d inflight=%d", p.ID, cp.relInFlight)
				s.st.Count("lrel.wait", 1)
				cp.relWaiters = append(cp.relWaiters, p)
				s.parkCharge(p, stats.MGS)
			} else {
				s.emitPage(p.Clock(), p.ID, v, "LRELSKIP", "proc %d state=%v", p.ID, cp.state)
			}
			s.unlock(cp, p.Clock())
			continue
		}
		sp := s.server(v)
		isHome := cp.ssmp == s.ssmpOf(sp.homeProc)
		var diff Diff
		var db *DiffBuf
		bytes := c.CtrlBytes
		if isHome {
			// In-place home writes: nothing travels, but the version must
			// advance and later local writes must fault back into a
			// delayed update queue.
			s.shootLocal(ss, cp, p)
			s.st.Count("lrel.home", 1)
		} else {
			s.spend(p, stats.MGS, sim.Time(s.cfg.PageSize)*c.DiffPerByte)
			db = getDiffBuf()
			diff = db.Compute(cp.twin, cp.frame.Data)
			bytes += diff.Bytes(c.DiffHdrByte)
			// Demote to a read copy: reads keep hitting the local frame,
			// the next write upgrades and re-twins.
			s.recycleTwin(cp)
			cp.state = PRead
			s.shootLocal(ss, cp, p)
			s.st.Count("lrel", 1)
		}
		fetchVer, fetchGen := cp.version, cp.gen
		s.emitPage(p.Clock(), p.ID, v, "LREL", "proc %d home=%v diff=%d ver=%d", p.ID, isHome, len(diff), sp.version)
		s.spend(p, stats.MGS, s.net.SendCost())
		cp.relInFlight++
		cpRef, spRef, dRef, dbRef := cp, sp, diff, db
		s.net.Send(p.ID, sp.homeProc, p.Clock(), bytes, c.RelWork, func(at sim.Time) {
			s.mergeLazy(spRef, dRef, at, func(newVer int64, at2 sim.Time) {
				putDiffBuf(dbRef)
				s.net.Send(spRef.homeProc, p.ID, at2, c.CtrlBytes, 0, func(at3 sim.Time) {
					if cpRef.gen == fetchGen && newVer == fetchVer+1 {
						// Same copy incarnation, and only our own merge
						// happened since it was fetched or last validated:
						// the copy equals the merged home image, keep it
						// fresh. (A torn-down-and-refetched copy — gen
						// moved — may hold a jitter-reordered pre-merge
						// image and must stay stale.)
						cpRef.version = newVer
					}
					s.lazyRelDone(cpRef, at3)
					p.Wake(at3)
				})
			})
		})
		s.unlock(cp, p.Clock())
		s.parkCharge(p, stats.MGS) // woken by the home's acknowledgement
	}
}

// mergeLazy applies a diff (possibly empty) to the home frame, advances
// the version, and hands the post-merge version to done.
func (s *System) mergeLazy(sp *serverPage, d Diff, at sim.Time, done func(newVer int64, at sim.Time)) {
	c := &s.cfg.Costs
	if len(d) > 0 {
		at = s.net.Extend(sp.homeProc, at, c.MergeWork+sim.Time(d.Bytes(0))*c.ApplyPerByte)
		d.Apply(sp.frame.Data)
		s.st.Count("merge.diff", 1)
	}
	sp.homeDirty = false
	sp.version++
	done(sp.version, at)
}

// lazyRelDone retires one in-flight REL of cp's data and wakes the
// releases that were waiting on it.
func (s *System) lazyRelDone(cp *clientPage, at sim.Time) {
	cp.relInFlight--
	if cp.relInFlight > 0 {
		return
	}
	w := cp.relWaiters
	cp.relWaiters = nil
	for _, q := range w {
		q.Wake(at)
	}
}

// shootLocal drops every local TLB mapping of cp's page, charging the
// per-processor shootdown work to p (local inter-processor interrupts).
func (s *System) shootLocal(ss *ssmpState, cp *clientPage, p *sim.Proc) {
	n := 0
	for t := cp.tlbDir; t != 0; t &= t - 1 {
		q := s.ssmpBase(cp.ssmp) + bits.TrailingZeros64(t)
		s.tlbs[q].Invalidate(cp.page)
		n++
	}
	cp.tlbDir = 0
	if n > 0 {
		s.spend(p, stats.MGS, sim.Time(n)*s.cfg.Costs.PinvWork)
	}
}

// AcquireSync brings the acquiring processor's SSMP up to date with the
// home versions (lazy release consistency; a no-op otherwise). msync
// calls it at every lock grant and barrier exit. Stale dirty copies
// flush their diff home first; every stale copy is then torn down so
// the next touch refetches the merged image.
func (s *System) AcquireSync(p *sim.Proc) {
	if !s.cfg.Costs.LazyRelease || s.cfg.Disabled {
		return
	}
	c := &s.cfg.Costs
	ss := s.ssmps[s.ssmpOf(p.ID)]
	// The arena scan is in ascending page order — deterministic.
	var pages []vm.Page
	ss.pages.each(func(v vm.Page, cp *clientPage) {
		switch cp.state {
		case PBusy:
			// A fetch in flight can carry a pre-merge image: serialize
			// behind it (its fault holds the page-table lock until the
			// data lands) and re-check the served version.
			pages = append(pages, v)
		case PRead, PWrite:
			sp := s.serverIfExists(v)
			if sp == nil || cp.ssmp == s.ssmpOf(sp.homeProc) || cp.version >= sp.version {
				return // home copies live in the home frame; fresh copies stay
			}
			pages = append(pages, v)
		}
	})
	for _, v := range pages {
		cp := ss.pages.get(v)
		sp := s.server(v)
		if cp.ssmp == s.ssmpOf(sp.homeProc) {
			continue
		}
		s.lockProc(cp, p, stats.MGS)
		// Re-check under the lock: a queued handler may have moved us.
		if (cp.state != PRead && cp.state != PWrite) || cp.version >= sp.version {
			s.unlock(cp, p.Clock())
			continue
		}
		s.st.Count("acq.stale", 1)
		if cp.state == PWrite {
			// Flush the copy's unreleased writes before dropping it. The
			// page-table lock is held across the merge so a concurrent
			// local fault refetches only the post-merge image (within-
			// SSMP ordering survives the teardown).
			s.st.Count("acq.flush", 1)
			s.spend(p, stats.MGS, sim.Time(s.cfg.PageSize)*c.DiffPerByte)
			db := getDiffBuf()
			diff := db.Compute(cp.twin, cp.frame.Data)
			s.shootLocal(ss, cp, p)
			// No CleanPage ran here: the frame may still have cached
			// lines, so it must not be recycled (a recycled frame's ID
			// reuse would let those lines alias the new page).
			s.teardown(ss, cp, false, false)
			s.emitPage(p.Clock(), p.ID, v, "ACQFLUSH", "proc %d diff=%d", p.ID, len(diff))
			s.spend(p, stats.MGS, s.net.SendCost())
			cp.relInFlight++
			spRef, cpRef := sp, cp
			s.net.Send(p.ID, sp.homeProc, p.Clock(),
				c.CtrlBytes+diff.Bytes(c.DiffHdrByte), c.RelWork, func(at sim.Time) {
					s.mergeLazy(spRef, diff, at, func(_ int64, at2 sim.Time) {
						putDiffBuf(db)
						s.net.Send(spRef.homeProc, p.ID, at2, c.CtrlBytes, 0,
							func(at3 sim.Time) {
								s.lazyRelDone(cpRef, at3)
								p.Wake(at3)
							})
					})
				})
			s.parkCharge(p, stats.MGS)
			s.unlock(cp, p.Clock())
			continue
		}
		// Clean stale copy: the write notice alone kills it, no
		// communication needed (TreadMarks' acquire-side invalidation).
		s.st.Count("acq.inval", 1)
		s.emitPage(p.Clock(), p.ID, v, "ACQINVAL", "proc %d ver=%d<%d", p.ID, cp.version, sp.version)
		s.shootLocal(ss, cp, p)
		s.teardown(ss, cp, false, false)
		s.unlock(cp, p.Clock())
	}
}
