package core

import (
	"sort"

	"mgs/internal/vm"
)

// Structured Args values carried on protocol events (emitPageArgs), so
// machine consumers — the model checker's refinement spec — share one
// vocabulary with the emitters.
const (
	// REL event phases (Args[0]).
	RelRound        int64 = iota // round opened: Args[1]=targets, Args[2]=writeDir
	RelPended                    // folded into the round in progress
	RelNoTargets                 // no copies outstanding; RACK immediately
	RelRequeued                  // releaser's SSMP already captured; re-run later
	RelRequeuedHome              // post-refresh home release (update protocol)
	RelSatisfied                 // copy's capture round already done; RACK immediately
)

const (
	// FINISHINV arms (Args[0]); Args[1]=ssmp, Args[2]=isHome.
	FinvAckTeardown   int64 = iota // read copy dropped (ACK)
	FinvDiffTeardown               // write copy torn down (DIFF)
	FinvOneWRetain                 // single-writer retention (1WDATA)
	FinvGone                       // copy already gone at INV arrival
	FinvUpdateCapture              // update protocol: captured, copy kept
)

// Aliases used at the emit sites (keeps the call sites compact).
const (
	relRound        = RelRound
	relPended       = RelPended
	relNoTargets    = RelNoTargets
	relRequeued     = RelRequeued
	relRequeuedHome = RelRequeuedHome
	relSatisfied    = RelSatisfied

	finvAckTeardown   = FinvAckTeardown
	finvDiffTeardown  = FinvDiffTeardown
	finvOneWRetain    = FinvOneWRetain
	finvGone          = FinvGone
	finvUpdateCapture = FinvUpdateCapture
)

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// ClientSnap is one SSMP's Local/Remote Client state for a page, as
// captured by SnapshotProtocol.
type ClientSnap struct {
	SSMP        int
	State       PageState
	HasTwin     bool
	TLBDir      uint64
	OwnerProc   int
	Gen         int64
	HomeGen     int64 // teardowns the home has counted for this SSMP (rmt[].gens)
	CapRound    int64 // release round that last captured this copy
	InvCount    int
	LockHeld    bool
	LockWaiters int
	FrameSum    uint64 // FNV-1a of the copy's frame, 0 when no frame
	TwinSum     uint64 // FNV-1a of the twin, 0 when none
}

// PageSnap is the Server's state for one page plus every SSMP's client
// state, as captured by SnapshotProtocol.
type PageSnap struct {
	Page       vm.Page
	HomeProc   int
	InRound    bool // server state == sRel
	Writable   bool // server state == sWrite
	ReadDir    uint64
	WriteDir   uint64
	Count      int
	KeepWriter int
	SawDiff    bool
	HomeDirty  bool
	Round      int64 // current/most recent release round id
	InvQueued  int
	PendRel    int
	PendReq    int
	PendReRel  int
	FrameSum   uint64 // FNV-1a of the home frame
	Clients    []ClientSnap
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return h
}

// SnapshotProtocol captures the protocol-visible state of every touched
// page — server directories and round bookkeeping plus per-SSMP client
// states — sorted by page number so two snapshots of one state compare
// (and hash) equal. Host-side, no simulated cost. The model checker
// uses it both for invariant checking and for canonical state hashing.
func (s *System) SnapshotProtocol() []PageSnap {
	var pages []vm.Page
	for _, ss := range s.ssmps {
		ss.servers.each(func(v vm.Page, _ *serverPage) { pages = append(pages, v) })
		ss.pages.each(func(v vm.Page, _ *clientPage) { pages = append(pages, v) })
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	// A client page can exist without a server entry (never faulted
	// remotely); dedupe after the merge above.
	out := make([]PageSnap, 0, len(pages))
	for i, v := range pages {
		if i > 0 && pages[i-1] == v {
			continue
		}
		ps := PageSnap{Page: v, HomeProc: s.space.HomeProc(v), KeepWriter: -1}
		sp := s.serverIfExists(v)
		if sp != nil {
			ps.HomeProc = sp.homeProc
			ps.InRound = sp.state == sRel
			ps.Writable = sp.state == sWrite
			ps.ReadDir, ps.WriteDir = sp.readDir.mask64(), sp.writeDir.mask64()
			ps.Count = sp.count
			ps.KeepWriter = sp.keepWriter
			ps.SawDiff, ps.HomeDirty = sp.sawDiff, sp.homeDirty
			ps.Round = sp.round
			ps.InvQueued = len(sp.invQueue)
			ps.PendRel, ps.PendReq, ps.PendReRel = len(sp.pendRel), len(sp.pendReq), len(sp.pendReRel)
			ps.FrameSum = fnvBytes(fnvOffset64, sp.frame.Data)
		}
		for _, ss := range s.ssmps {
			cs := ClientSnap{SSMP: ss.id, State: PInv, OwnerProc: -1}
			if sp != nil {
				cs.HomeGen = sp.rmtGens(ss.id)
			}
			if cp := ss.pages.get(v); cp != nil {
				cs.State = cp.state
				cs.HasTwin = cp.twin != nil
				cs.TLBDir = cp.tlbDir
				cs.OwnerProc = cp.ownerProc
				cs.Gen = cp.gen
				cs.CapRound = cp.capturedRound
				cs.InvCount = cp.invCount
				cs.LockHeld = cp.lk.held
				cs.LockWaiters = len(cp.lk.waiters)
				if cp.frame != nil {
					cs.FrameSum = fnvBytes(fnvOffset64, cp.frame.Data)
				}
				if cp.twin != nil {
					cs.TwinSum = fnvBytes(fnvOffset64, cp.twin)
				}
			}
			ps.Clients = append(ps.Clients, cs)
		}
		out = append(out, ps)
	}
	return out
}

// DUQPages returns processor p's live delayed-update-queue entries in
// queue order (tests and the model checker).
func (s *System) DUQPages(p int) []vm.Page {
	d := s.ssmps[s.ssmpOf(p)].duqs[s.within(p)]
	var out []vm.Page
	for _, v := range d.queue {
		if d.member[v] {
			dup := false
			for _, o := range out {
				if o == v {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, v)
			}
		}
	}
	return out
}
