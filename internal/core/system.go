// Package core implements the MGS multigrain shared-memory protocol —
// the paper's primary contribution (§3, Figure 4, Tables 1–2).
//
// Three software engines cooperate:
//
//   - The Local Client runs on a faulting processor. It fills software
//     TLBs from SSMP-local page tables (transition 1), drives upgrades
//     from read to write privilege (transition 2), and negotiates with
//     the Server for page replication when the SSMP has no copy
//     (transitions 5–7). Page-table state is protected by a per-page
//     shared-memory lock.
//
//   - The Remote Client runs on the processor owning an SSMP's copy of a
//     page. It services invalidations: page cleaning (global coherence
//     before DMA, §4.2.4), TLB shootdowns (PINV/PINV_ACK), diff
//     computation against the twin, and the single-writer optimization.
//
//   - The Server runs on the page's home processor. It tracks read and
//     write copies per SSMP (read_dir/write_dir), serves RREQ/WREQ,
//     and performs eager release: on REL it invalidates every copy,
//     collects ACK/DIFF/1WDATA replies, merges diffs into the home
//     frame, and answers queued requests and releases.
//
// Consistency is eager release consistency with multiple writers
// (Munin-style twin/diff). Two deliberate deviations from the published
// transition table, both required for correctness, are marked in the
// code: (1) the releasing processor drops the page-table lock before
// waiting for the RACK, since the release round invalidates the
// releaser's own SSMP and the invalidation handler takes that same
// lock; (2) after a single-writer release the retained write copy stays
// registered in write_dir, so a later release still invalidates it —
// the printed table clears write_dir, which would strand a stale copy.
//
// Extensions beyond the paper, each behind a Costs flag and off by
// default: update-based release rounds (Costs.UpdateProtocol), dynamic
// home migration (Costs.MigrateAfter), and lazy release consistency
// (Costs.LazyRelease, lazy.go).
package core

import (
	"fmt"
	"sort"

	"mgs/internal/cache"
	"mgs/internal/mem"
	"mgs/internal/msg"
	"mgs/internal/obs"
	"mgs/internal/sim"
	"mgs/internal/stats"
	"mgs/internal/vm"
)

// PageState is the Local Client's page state within one SSMP.
type PageState uint8

const (
	// PInv: the SSMP holds no copy.
	PInv PageState = iota
	// PRead: the SSMP holds a read-only copy.
	PRead
	// PWrite: the SSMP holds a read-write copy (twinned).
	PWrite
	// PBusy: a replication request is outstanding.
	PBusy
)

var pageStateNames = [...]string{"INV", "READ", "WRITE", "BUSY"}

func (s PageState) String() string { return pageStateNames[s] }

// serverState is the Server's state for one page.
type serverState uint8

const (
	sRead  serverState = iota // only read copies outstanding
	sWrite                    // at least one write copy outstanding
	sRel                      // release in progress
)

// Config sizes a System.
type Config struct {
	NProcs      int // total processors (P)
	ClusterSize int // processors per SSMP (C)
	PageSize    int // bytes
	TLBSize     int // software TLB entries per processor
	Costs       Costs
	CacheParams cache.Params
	CacheCosts  cache.Costs
	// Disabled turns the software layer off (the paper's "null MGS
	// calls" 32-processor runs): every page is mapped locally on first
	// touch at plain-SVM cost and releases are no-ops. Normally set
	// only when ClusterSize == NProcs.
	Disabled bool
}

// clientPage is the Local/Remote Client state for one page in one SSMP.
type clientPage struct {
	page      vm.Page
	ssmp      int
	state     PageState
	frame     *mem.Frame
	dir       *cache.Dir
	twin      []byte
	tlbDir    uint64 // within-SSMP processors holding a TLB mapping
	ownerProc int    // global proc owning this SSMP's copy (first touch); -1 until placed
	lk        ptLock
	version   int64 // home version this copy reflects (lazy release only)
	gen       int64 // incarnation counter, bumped at teardown (lazy versioning)

	// capturedRound is the server round that last captured this copy's
	// modifications (finishInv), carried by this SSMP's next REL so the
	// home can tell a release whose data the running round already
	// collected from one it has not. Written and read only on the
	// copy's own shard; the value travels to the home in the REL
	// message, never by a cross-shard read.
	capturedRound int64

	// Lazy-release bookkeeping: diff-carrying RELs of this copy's data
	// still in flight, and releases waiting for them to reach the home
	// (the lazy counterpart of eager's RELWAIT).
	relInFlight int
	relWaiters  []*sim.Proc

	invCount int  // outstanding PINV_ACKs
	invOneW  bool // current invalidation is a 1WINV
}

// accEntry caches one processor's last successful translation.
type accEntry struct {
	page vm.Page
	priv vm.Priv
	cp   *clientPage
	gen  uint64 // TLB generation the entry was filled at
}

// invTarget is one SSMP to invalidate in a release round.
type invTarget struct {
	ssmp int
	oneW bool
}

// pendingReq is a replication request queued behind a release.
type pendingReq struct {
	proc  int
	write bool
	cp    *clientPage // the requester's page record, captured at REQ time
}

// String elides the page-record pointer: pendingReq values appear in
// trace output, which must be identical across runs of one seed.
func (q pendingReq) String() string {
	return fmt.Sprintf("{%d %v}", q.proc, q.write)
}

// remoteCopy is the Server's home-side record of one SSMP's copy: the
// client page record and owning processor (captured when the copy is
// served, so invalidations address the Remote Client without reading
// the remote SSMP's state), and the count of torn-down incarnations
// whose teardown replies have reached the home (the WNOTIFY staleness
// check — see onUpgrade). Records live in serverPage.rmt, a sparse
// sorted list holding only the SSMPs actually served (dirset.go).
type remoteCopy struct {
	ssmp  int32 // the SSMP this record describes
	cp    *clientPage
	owner int32 // global proc owning the SSMP's copy; -1 until first served
	gens  int64 // teardown replies received from this SSMP
}

// serverPage is the Server state for one page at its home.
type serverPage struct {
	page     vm.Page
	homeProc int
	frame    *mem.Frame // the physical home copy
	state    serverState
	readDir  dirSet // SSMPs with read copies (exact or coarse — dirset.go)
	writeDir dirSet // SSMPs with write copies

	version     int64       // merges applied to the home frame (lazy release only)
	lastReq     int         // last remote SSMP served (migration tracking)
	streak      int         // consecutive serves to lastReq
	count       int         // outstanding invalidation replies
	refreshing  int         // outstanding refresh ACKs (update protocol)
	refreshDone bool        // this round's refresh phase already ran
	invQueue    []invTarget // targets not yet invalidated (serial mode)
	keepWriter  int         // SSMP retaining its copy (single-writer opt), or -1
	sawDiff     bool        // foreign data merged during this round
	homeDirty   bool        // home-SSMP in-place writes since the last round
	round       int64        // release rounds opened; the current round's id while state == sRel
	rmt         []remoteCopy // sparse, sorted by ssmp; rmtGet/rmtEnsure
	pendReRel   []int // releases that must run as a fresh round
	pendReq     []pendingReq
	pendRel     []int // processors awaiting RACK
}

// System is one DSSMP's multigrain shared memory.
type System struct {
	eng   *sim.Engine
	cfg   Config
	net   *msg.Network
	space *vm.Space
	st    *stats.Collector
	procs []*sim.Proc

	tlbs  []*vm.TLB
	ssmps []*ssmpState

	// Hierarchical directory sizing (dirset.go): exact entries per page
	// before the coarse collapse, and SSMPs per coarse cluster bit.
	dirThresh int
	dirGrain  int

	// acc is the per-processor last-translation micro-cache: the result
	// of the last successful TLB lookup, revalidated against the TLB
	// generation so any shootdown, fill, or privilege change drops it.
	// It removes both the TLB probe and the SSMP page-map lookup from
	// the common case of consecutive accesses to one page.
	acc []accEntry

	// Obs is the observability spine. Nil (or an observer with no
	// sinks) keeps the trace path structurally detached: emitPage
	// checks Tracing() before any event is built.
	Obs *obs.Observer
	// DebugChecks enables extra invariant checking on hot paths (tests).
	DebugChecks bool
}

// emitPage publishes one protocol event about a page. Detail formatting
// happens only when a sink is attached; emission charges no simulated
// cycles.
func (s *System) emitPage(t sim.Time, proc int, v vm.Page, name, format string, args ...any) {
	if !s.Obs.Tracing() {
		return
	}
	var detail string
	if format != "" {
		detail = fmt.Sprintf(format, args...)
	}
	s.Obs.Emit(obs.Event{
		T: t, Proc: proc, Cat: obs.Protocol, Name: name,
		Kind: obs.ObjPage, ID: int64(v), Detail: detail,
	})
}

// emitPageArgs is emitPage with structured Args attached — the protocol
// facts the model checker's refinement spec consumes (internal/check).
func (s *System) emitPageArgs(t sim.Time, proc int, v vm.Page, name string, args [3]int64, format string, fa ...any) {
	if !s.Obs.Tracing() {
		return
	}
	var detail string
	if format != "" {
		detail = fmt.Sprintf(format, fa...)
	}
	s.Obs.Emit(obs.Event{
		T: t, Proc: proc, Cat: obs.Protocol, Name: name,
		Kind: obs.ObjPage, ID: int64(v), Args: args, Detail: detail,
	})
}

// emitProc publishes one protocol event not tied to a page.
func (s *System) emitProc(t sim.Time, proc int, name, format string, args ...any) {
	if !s.Obs.Tracing() {
		return
	}
	var detail string
	if format != "" {
		detail = fmt.Sprintf(format, args...)
	}
	s.Obs.Emit(obs.Event{T: t, Proc: proc, Cat: obs.Protocol, Name: name, Detail: detail})
}

// emitEngine publishes one software-engine handshake event: a Local
// Client invocation (a span covering the whole fault, emitted at
// completion but timestamped at entry, so Chrome renders it as a
// duration bar on the faulting processor's track), or a Remote Client /
// Server engine dispatch (instants on the engine track, proc -1).
func (s *System) emitEngine(t sim.Time, proc int, v vm.Page, name string, dur sim.Time, format string, args ...any) {
	if !s.Obs.Tracing() {
		return
	}
	var detail string
	if format != "" {
		detail = fmt.Sprintf(format, args...)
	}
	s.Obs.Emit(obs.Event{
		T: t, Proc: proc, Cat: obs.Engine, Name: name,
		Kind: obs.ObjPage, ID: int64(v), Dur: dur, Detail: detail,
	})
}

// ssmpState is the per-SSMP software state. Everything here — client
// pages, the Server records of pages homed on this SSMP, the frame
// allocator — is touched only by events executing on this SSMP's
// shard, which is what lets the parallel dispatcher advance SSMPs
// concurrently with no locks on the simulated path.
type ssmpState struct {
	id      int
	domain  *cache.Domain
	pages   pageArena[clientPage]
	servers pageArena[serverPage] // pages homed on this SSMP
	frames  *mem.FrameAllocator   // this SSMP's physical frame region
	duqs    []*duq                // one per local processor
}

// New wires a System over an engine, network, address space, stats
// collector, and the machine's processors (procs[i].ID must be i).
func New(eng *sim.Engine, net *msg.Network, space *vm.Space, st *stats.Collector, procs []*sim.Proc, cfg Config) *System {
	if cfg.NProcs%cfg.ClusterSize != 0 {
		panic(fmt.Sprintf("core: P=%d not divisible by C=%d", cfg.NProcs, cfg.ClusterSize))
	}
	s := &System{
		eng: eng, cfg: cfg, net: net, space: space, st: st, procs: procs,
		tlbs: make([]*vm.TLB, cfg.NProcs),
		acc:  make([]accEntry, cfg.NProcs),
	}
	nssmp := cfg.NProcs / cfg.ClusterSize
	s.dirThresh = cfg.Costs.DirThreshold
	if s.dirThresh <= 0 {
		s.dirThresh = 64
	}
	s.dirGrain = (nssmp + 63) / 64
	for i := 0; i < cfg.NProcs; i++ {
		s.tlbs[i] = vm.NewTLB(cfg.TLBSize)
	}
	for i := 0; i < nssmp; i++ {
		ss := &ssmpState{
			id:     i,
			domain: cache.NewDomain(cfg.ClusterSize, cfg.PageSize, cfg.CacheParams, cfg.CacheCosts),
			// Disjoint frame-ID regions (2^40 IDs each) keep frame tags
			// machine-wide unique with no cross-SSMP coordination.
			frames: mem.NewFrameAllocatorAt(uint64(i)<<40, cfg.PageSize),
			duqs:   make([]*duq, cfg.ClusterSize),
		}
		for j := range ss.duqs {
			ss.duqs[j] = newDUQ()
		}
		s.ssmps = append(s.ssmps, ss)
	}
	if reg := st.Registry(); reg != nil {
		tlbs := s.tlbs
		reg.Gauge("tlb.fills", func() int64 {
			var n int64
			for _, t := range tlbs {
				n += t.Fills
			}
			return n
		})
		reg.Gauge("tlb.evictions", func() int64 {
			var n int64
			for _, t := range tlbs {
				n += t.Evictions
			}
			return n
		})
		reg.Gauge("engine.dispatched", eng.Dispatched)
	}
	return s
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// Space returns the virtual address space.
func (s *System) Space() *vm.Space { return s.space }

func (s *System) ssmpOf(proc int) int { return proc / s.cfg.ClusterSize }
func (s *System) within(proc int) int { return proc % s.cfg.ClusterSize }

func bit(i int) uint64 { return 1 << uint(i) }

// spend advances p's clock by cycles, attributing them to cat. Handler
// preemption debt folded in by Advance is not re-attributed here: it
// was already charged (as MGS) when the handler ran.
func (s *System) spend(p *sim.Proc, cat stats.Category, cycles sim.Time) {
	p.Advance(cycles)
	s.st.Charge(p.ID, cat, cycles)
}

// parkCharge parks p and attributes the wait to cat.
func (s *System) parkCharge(p *sim.Proc, cat stats.Category) {
	c0 := p.Clock()
	p.Park()
	if s.DebugChecks && p.Clock()-c0 > 100_000 {
		s.emitProc(p.Clock(), p.ID, "LONGPARK", "cat=%v wait=%d", cat, p.Clock()-c0)
	}
	s.st.Charge(p.ID, cat, p.Clock()-c0)
}

// newTwin snapshots f into a page-size buffer drawn from the
// process-wide pool (pool.go); the buffer is fully overwritten here, so
// pooling never leaks state between runs.
func (s *System) newTwin(f *mem.Frame) []byte {
	b := getPageBuf(s.cfg.PageSize)
	copy(b, f.Data)
	return b
}

// retwin refreshes cp's twin to the current frame contents, reusing the
// existing buffer when one is present.
func (s *System) retwin(cp *clientPage) {
	if cp.twin == nil {
		cp.twin = s.newTwin(cp.frame)
		return
	}
	copy(cp.twin, cp.frame.Data)
}

// recycleTwin returns cp's twin buffer (if any) to the pool. Diffs
// never alias twin storage, so a recycled buffer has no live readers.
func (s *System) recycleTwin(cp *clientPage) {
	if cp.twin != nil {
		putPageBuf(cp.twin)
		cp.twin = nil
	}
}

// ensurePage returns (creating if needed) the SSMP's record for page v.
func (ss *ssmpState) ensurePage(v vm.Page) *clientPage {
	cp := ss.pages.get(v)
	if cp == nil {
		cp = &clientPage{page: v, ssmp: ss.id, state: PInv, ownerProc: -1}
		ss.pages.put(v, cp)
	}
	return cp
}

// server returns (creating if needed) the Server record for page v,
// which lives on the home processor's SSMP. The home frame is created
// zeroed. Under the parallel dispatcher this must only be called from
// the home shard's execution context (or host-side, outside the run).
func (s *System) server(v vm.Page) *serverPage {
	ss := s.ssmps[s.ssmpOf(s.space.HomeProc(v))]
	sp := ss.servers.get(v)
	if sp == nil {
		// The per-SSMP copy records (rmt) start empty and grow only as
		// SSMPs are actually served — home state is O(sharers), not
		// O(SSMPs) (dirset.go).
		sp = &serverPage{
			page: v, homeProc: s.space.HomeProc(v),
			frame: ss.frames.Alloc(), state: sRead, keepWriter: -1,
		}
		ss.servers.put(v, sp)
	}
	return sp
}

// serverIfExists returns the Server record for page v, or nil if the
// page has never been served. Same shard discipline as server.
func (s *System) serverIfExists(v vm.Page) *serverPage {
	return s.ssmps[s.ssmpOf(s.space.HomeProc(v))].servers.get(v)
}

// BackdoorFrame returns the home frame of the page containing va,
// without simulated cost. It is the setup/verification hook: apps
// initialize their data sets and check results through it.
func (s *System) BackdoorFrame(va vm.Addr) (*mem.Frame, int) {
	return s.server(s.space.PageOf(va)).frame, s.space.Offset(va)
}

// BackdoorStore64 writes v at va with no simulated cost.
func (s *System) BackdoorStore64(va vm.Addr, v uint64) {
	f, off := s.BackdoorFrame(va)
	f.Store64(off, v)
}

// BackdoorLoad64 reads va with no simulated cost. It reads the home
// copy, which is current after any release point.
func (s *System) BackdoorLoad64(va vm.Addr) uint64 {
	f, off := s.BackdoorFrame(va)
	return f.Load64(off)
}

// SnapshotMemory returns the contents of the allocated shared address
// space as held by the home frames, page by page in address order, with
// untouched pages reading as zeros. After every processor has passed its
// final release point the home frames are the authoritative image, so
// two runs of one program must snapshot identically no matter what a
// fault plan did to the wire — the invariant cmd/mgs-chaos enforces.
// No simulated cost.
func (s *System) SnapshotMemory() []byte {
	brk := s.space.Brk()
	if brk == 0 {
		return nil
	}
	ps := s.cfg.PageSize
	last := s.space.PageOf(brk - 1)
	out := make([]byte, (int(last)+1)*ps)
	for v := vm.Page(0); v <= last; v++ {
		if sp := s.serverIfExists(v); sp != nil {
			copy(out[int(v)*ps:(int(v)+1)*ps], sp.frame.Data)
		}
	}
	return out
}

// Access performs one simulated shared-memory access by processor p to
// virtual address va. It charges software translation, faults and runs
// the MGS protocol as needed (possibly blocking p), charges the
// hardware coherence cost, and returns the frame and byte offset the
// caller should read or write. pointer selects the more expensive
// pointer-dereference translation sequence.
//
// Fast-path invariant: an access whose translation hits (micro-cache or
// TLB) performs no heap allocation. The micro-cache is purely a host
// optimization — it caches the result the TLB lookup would produce, so
// simulated costs and protocol behavior are identical either way.
func (s *System) Access(p *sim.Proc, va vm.Addr, write, pointer bool) (*mem.Frame, int) {
	page := s.space.PageOf(va)
	off := s.space.Offset(va)
	tc := s.cfg.Costs.TransArray
	if pointer {
		tc = s.cfg.Costs.TransPtr
	}
	ss := s.ssmps[s.ssmpOf(p.ID)]
	tlb := s.tlbs[p.ID]
	ac := &s.acc[p.ID]
	for {
		s.spend(p, stats.User, tc)
		var cp *clientPage
		if ac.cp != nil && ac.page == page && ac.gen == tlb.Gen() &&
			(ac.priv == vm.Write || !write) {
			cp = ac.cp
		} else if priv, ok := tlb.Lookup(page); ok && (priv == vm.Write || !write) {
			cp = ss.pages.get(page)
			*ac = accEntry{page: page, priv: priv, cp: cp, gen: tlb.Gen()}
		}
		if cp != nil {
			cost, _ := ss.domain.Access(s.within(p.ID), cp.frame, cp.dir, off, write)
			s.spend(p, stats.User, cost)
			return cp.frame, off
		}
		s.fault(p, ss, page, write)
	}
}

// Probe reports the Local Client page state of page v in ssmp (tests and
// tools).
func (s *System) Probe(ssmp int, v vm.Page) PageState {
	cp := s.ssmps[ssmp].pages.get(v)
	if cp == nil {
		return PInv
	}
	return cp.state
}

// TLB returns processor p's TLB (tests and tools).
func (s *System) TLB(p int) *vm.TLB { return s.tlbs[p] }

// CacheCounters aggregates the hardware access-class counters across
// all SSMP coherence domains.
func (s *System) CacheCounters() cache.Counters {
	var out cache.Counters
	for _, ss := range s.ssmps {
		for k, v := range ss.domain.Counters.ByKind {
			out.ByKind[k] += v
		}
	}
	return out
}

// DUQLen reports the delayed-update-queue length of processor p.
func (s *System) DUQLen(p int) int {
	return s.ssmps[s.ssmpOf(p)].duqs[s.within(p)].len()
}

// DumpServers prints every server page's round state and every client
// page's lock state that could hold a round up (deadlock diagnosis;
// pages print in sorted order so two dumps of the same state compare
// equal).
func (s *System) DumpServers(f func(format string, args ...any)) {
	var pages []vm.Page
	for _, ss := range s.ssmps {
		ss.servers.each(func(v vm.Page, _ *serverPage) {
			pages = append(pages, v)
		})
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	for _, v := range pages {
		sp := s.serverIfExists(v)
		if sp.state == sRel || len(sp.pendRel) > 0 || len(sp.pendReq) > 0 || sp.count != 0 || len(sp.invQueue) > 0 || sp.refreshing != 0 || len(sp.pendReRel) > 0 {
			f("page=%d state=%d count=%d invQueue=%v keep=%d round=%d pendRel=%v pendReq=%v pendReRel=%v R=%b W=%b",
				v, sp.state, sp.count, sp.invQueue, sp.keepWriter, sp.round, sp.pendRel, sp.pendReq, sp.pendReRel, sp.readDir.mask64(), sp.writeDir.mask64())
		}
	}
	for si, ss := range s.ssmps {
		ss.pages.each(func(v vm.Page, cp *clientPage) {
			if cp.lk.held || len(cp.lk.waiters) > 0 || cp.invCount > 0 {
				f("ssmp=%d page=%d state=%v lkheld=%v lkq=%d invCount=%d", si, v, cp.state, cp.lk.held, len(cp.lk.waiters), cp.invCount)
			}
		})
	}
}
