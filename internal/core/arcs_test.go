package core

import (
	"testing"

	"mgs/internal/sim"
	"mgs/internal/vm"
)

// Arc-by-arc verification of the Table 1 transitions, each exercising
// exactly one protocol path and checking the states, messages, and
// side effects the table specifies (modulo the documented deviations).

// Arc 1: RTLBFault with pagestate != INV fills the TLB from the local
// page table — no server traffic.
func TestArc1LocalReadFill(t *testing.T) {
	tm := buildTest(4, 4, 0, nil)
	va := tm.sys.Space().AllocPages(1024)
	page := tm.sys.Space().PageOf(va)
	tm.bodies[0] = func(p *sim.Proc) { load64(tm.sys, p, va) } // maps page
	tm.bodies[1] = func(p *sim.Proc) {
		p.Sleep(500_000)
		before := tm.st.Counter("rreq")
		load64(tm.sys, p, va)
		if tm.st.Counter("rreq") != before {
			t.Error("transition 1 sent an RREQ")
		}
		if tm.st.Counter("tlbfill.local") == 0 {
			t.Error("no local TLB fill recorded")
		}
		if pr, ok := tm.sys.TLB(1).Lookup(page); !ok || pr != vm.Read {
			t.Errorf("TLB state = %v,%v, want TLB_READ", pr, ok)
		}
	}
	tm.run(t)
}

// Arc 2 + 13 + 18: WTLBFault on a READ page upgrades via the Remote
// Client (twin, UP_ACK) and notifies the Server (WNOTIFY moves the SSMP
// from read_dir to write_dir).
func TestArc2UpgradeChain(t *testing.T) {
	tm := buildTest(4, 2, 500, nil)
	va := tm.sys.Space().AllocPages(1024)
	page := tm.sys.Space().PageOf(va)
	tm.bodies[2] = func(p *sim.Proc) { // SSMP 1 (remote from home)
		load64(tm.sys, p, va)     // READ copy
		store64(tm.sys, p, va, 9) // upgrade
		if pr, _ := tm.sys.TLB(2).Lookup(page); pr != vm.Write {
			t.Errorf("TLB priv after upgrade = %v, want TLB_WRITE", pr)
		}
		if tm.sys.DUQLen(2) != 1 {
			t.Errorf("DUQ len = %d after upgrade, want 1 (arc 7 UP_ACK side effect)", tm.sys.DUQLen(2))
		}
	}
	tm.run(t)
	for _, c := range []string{"upgrade", "twin", "wnotify"} {
		if tm.st.Counter(c) != 1 {
			t.Errorf("counter %s = %d, want 1", c, tm.st.Counter(c))
		}
	}
	if tm.sys.Probe(1, page) != PWrite {
		t.Errorf("pagestate = %v, want WRITE (arc 13)", tm.sys.Probe(1, page))
	}
}

// Arcs 3/4: WTLBFault with pagestate WRITE is a local fill plus a DUQ
// insertion.
func TestArc34WriteRefill(t *testing.T) {
	tm := buildTest(4, 2, 500, nil)
	va := tm.sys.Space().AllocPages(1024)
	tm.bodies[2] = func(p *sim.Proc) {
		store64(tm.sys, p, va, 1) // WDAT: write copy
		tm.sys.ReleaseAll(p)      // 1W: copy retained, TLB shot down
		before := tm.st.Counter("wreq")
		beforeFill := tm.st.Counter("tlbfill.local")
		store64(tm.sys, p, va, 2) // arc 3/4: refill, no WREQ
		if tm.st.Counter("wreq") != before {
			t.Error("refill sent a WREQ")
		}
		if tm.st.Counter("tlbfill.local") != beforeFill+1 {
			t.Error("no local fill for the write refault")
		}
		if tm.sys.DUQLen(2) != 1 {
			t.Errorf("DUQ len = %d, want 1", tm.sys.DUQLen(2))
		}
	}
	tm.run(t)
}

// Arcs 5/6/17: fault on INV sends RREQ; the Server registers the SSMP
// in read_dir and ships RDAT; the client maps READ.
func TestArc5617ReadReplication(t *testing.T) {
	tm := buildTest(4, 2, 500, nil)
	va := tm.sys.Space().AllocPages(1024)
	page := tm.sys.Space().PageOf(va)
	tm.sys.BackdoorStore64(va, 31)
	var got uint64
	tm.bodies[2] = func(p *sim.Proc) { got = load64(tm.sys, p, va) }
	tm.run(t)
	if got != 31 {
		t.Fatalf("read %d, want 31", got)
	}
	if tm.st.Counter("rreq") != 1 || tm.st.Counter("rdat") != 1 {
		t.Errorf("rreq/rdat = %d/%d, want 1/1", tm.st.Counter("rreq"), tm.st.Counter("rdat"))
	}
	if tm.sys.Probe(1, page) != PRead {
		t.Errorf("pagestate = %v, want READ", tm.sys.Probe(1, page))
	}
}

// Arcs 5/7/18: write fault on INV ships WDAT, makes a twin at the
// client, and registers in write_dir (observable via the release
// behaviour: a later release runs a 1WINV round).
func TestArc5718WriteReplication(t *testing.T) {
	tm := buildTest(4, 2, 500, nil)
	va := tm.sys.Space().AllocPages(1024)
	tm.bodies[2] = func(p *sim.Proc) {
		store64(tm.sys, p, va, 5)
		tm.sys.ReleaseAll(p)
	}
	tm.run(t)
	if tm.st.Counter("wdat") != 1 || tm.st.Counter("twin") != 1 {
		t.Errorf("wdat/twin = %d/%d, want 1/1", tm.st.Counter("wdat"), tm.st.Counter("twin"))
	}
	if tm.st.Counter("1winv") != 1 || tm.st.Counter("1wdata") != 1 {
		t.Errorf("1winv/1wdata = %d/%d, want 1/1 (write_dir had one member)",
			tm.st.Counter("1winv"), tm.st.Counter("1wdata"))
	}
}

// Arcs 8–10: a release drains the DUQ one page at a time, one REL/RACK
// pair per dirty page.
func TestArc8910SerialFlush(t *testing.T) {
	tm := buildTest(4, 2, 500, nil)
	a := tm.sys.Space().AllocPages(1024)
	b := tm.sys.Space().AllocPages(1024)
	c := tm.sys.Space().AllocPages(1024)
	tm.bodies[2] = func(p *sim.Proc) {
		store64(tm.sys, p, a, 1)
		store64(tm.sys, p, b, 2)
		store64(tm.sys, p, c, 3)
		if tm.sys.DUQLen(2) != 3 {
			t.Errorf("DUQ len = %d, want 3", tm.sys.DUQLen(2))
		}
		tm.sys.ReleaseAll(p)
		if tm.sys.DUQLen(2) != 0 {
			t.Errorf("DUQ len = %d after release, want 0", tm.sys.DUQLen(2))
		}
	}
	tm.run(t)
	if tm.st.Counter("rel") != 3 || tm.st.Counter("rack") != 3 {
		t.Errorf("rel/rack = %d/%d, want 3/3", tm.st.Counter("rel"), tm.st.Counter("rack"))
	}
}

// Arcs 11/14–16 (read side): invalidating a read copy cleans the page,
// shoots down every mapping (PINV per mapped processor), and replies
// ACK with no data.
func TestArc14ReadInvalidation(t *testing.T) {
	tm := buildTest(6, 2, 500, nil)
	va := tm.sys.Space().AllocPages(1024)
	page := tm.sys.Space().PageOf(va)
	tm.bodies[2] = func(p *sim.Proc) { load64(tm.sys, p, va) } // SSMP 1 reader
	tm.bodies[3] = func(p *sim.Proc) { load64(tm.sys, p, va) } // both procs map
	tm.bodies[4] = func(p *sim.Proc) {                         // SSMP 2 writer triggers the round
		p.Sleep(2_000_000)
		store64(tm.sys, p, va, 1)
		tm.sys.ReleaseAll(p)
	}
	tm.run(t)
	if tm.st.Counter("ackinv") != 1 {
		t.Errorf("ackinv = %d, want 1", tm.st.Counter("ackinv"))
	}
	if tm.st.Counter("pinv") < 2 {
		t.Errorf("pinv = %d, want >= 2 (both mapped procs)", tm.st.Counter("pinv"))
	}
	if tm.sys.Probe(1, page) != PInv {
		t.Errorf("reader SSMP state = %v, want INV", tm.sys.Probe(1, page))
	}
	if _, ok := tm.sys.TLB(2).Lookup(page); ok {
		t.Error("proc 2's mapping survived the PINV")
	}
	if _, ok := tm.sys.TLB(3).Lookup(page); ok {
		t.Error("proc 3's mapping survived the PINV")
	}
}

// Arcs 14–16 (write side, multiple writers): both write copies reply
// with diffs and both diffs merge.
func TestArc14WriteInvalidationDiffs(t *testing.T) {
	tm := buildTest(6, 2, 500, nil)
	va := tm.sys.Space().AllocPages(1024)
	tm.bodies[2] = func(p *sim.Proc) { // SSMP 1
		store64(tm.sys, p, va+8, 100)
		p.Sleep(3_000_000)
		tm.sys.ReleaseAll(p)
	}
	tm.bodies[4] = func(p *sim.Proc) { // SSMP 2
		p.Sleep(1_000_000)
		store64(tm.sys, p, va+16, 200)
	}
	tm.run(t)
	if tm.st.Counter("diff") < 2 {
		t.Errorf("diff replies = %d, want >= 2", tm.st.Counter("diff"))
	}
	if got := tm.sys.BackdoorLoad64(va + 8); got != 100 {
		t.Errorf("word 1 = %d, want 100", got)
	}
	if got := tm.sys.BackdoorLoad64(va + 16); got != 200 {
		t.Errorf("word 2 = %d, want 200", got)
	}
}

// Arc 22: replication requests arriving during a release round queue
// and are served after it completes, with correct data.
func TestArc22QueuedRequest(t *testing.T) {
	tm := buildTest(6, 2, 2000, nil)
	va := tm.sys.Space().AllocPages(1024)
	var got uint64
	tm.bodies[2] = func(p *sim.Proc) { // writer, slow round via delay
		store64(tm.sys, p, va, 77)
		tm.sys.ReleaseAll(p)
	}
	tm.bodies[4] = func(p *sim.Proc) { // reader arrives mid-round
		p.Sleep(25_000)
		got = load64(tm.sys, p, va)
	}
	tm.run(t)
	if got != 77 {
		t.Fatalf("queued reader got %d, want 77", got)
	}
	if tm.st.Counter("req.pended") != 1 {
		t.Fatalf("req.pended = %d, want 1 (request must hit the round in progress)", tm.st.Counter("req.pended"))
	}
}

// Arc 20/21 distinction: a release of a page with only read copies
// sends INVs but no 1WINV.
func TestArc21ReadOnlyRound(t *testing.T) {
	tm := buildTest(6, 2, 500, nil)
	va := tm.sys.Space().AllocPages(1024)
	tm.bodies[2] = func(p *sim.Proc) { load64(tm.sys, p, va) } // SSMP 1 read copy
	tm.bodies[4] = func(p *sim.Proc) {                         // home-SSMP? no: SSMP 2 writes then releases
		p.Sleep(1_000_000)
		store64(tm.sys, p, va, 1)
		tm.sys.ReleaseAll(p)
	}
	tm.run(t)
	// The round targets SSMP1 (read) and SSMP2 (the single writer):
	// SSMP1 gets INV, SSMP2 gets 1WINV.
	if tm.st.Counter("inv") != 1 || tm.st.Counter("1winv") != 1 {
		t.Errorf("inv/1winv = %d/%d, want 1/1", tm.st.Counter("inv"), tm.st.Counter("1winv"))
	}
}

// Release with no remote copies (home-only dirty page) completes with a
// bare RACK — the fast path behind Jacobi's low breakup penalty.
func TestHomeOnlyReleaseIsCheap(t *testing.T) {
	tm := buildTest(4, 2, 500, nil)
	va := tm.sys.Space().AllocPages(1024)
	page := tm.sys.Space().PageOf(va)
	home := tm.sys.Space().HomeProc(page)
	if home/2 != 0 {
		t.Skip("allocator put the page off SSMP 0; layout changed")
	}
	tm.bodies[home] = func(p *sim.Proc) {
		store64(tm.sys, p, va, 5)
		tm.sys.ReleaseAll(p)
	}
	tm.run(t)
	if tm.st.Counter("inv")+tm.st.Counter("1winv") != 0 {
		t.Errorf("home-only release ran an invalidation round")
	}
	if tm.st.Counter("rack") != 1 {
		t.Errorf("rack = %d, want 1", tm.st.Counter("rack"))
	}
}
