package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestComputeDiffEmpty(t *testing.T) {
	twin := make([]byte, 64)
	cur := make([]byte, 64)
	if d := ComputeDiff(twin, cur); len(d) != 0 {
		t.Fatalf("diff of identical pages has %d ranges", len(d))
	}
}

func TestComputeDiffCoalesces(t *testing.T) {
	twin := make([]byte, 64)
	cur := make([]byte, 64)
	cur[10], cur[11], cur[12] = 1, 2, 3
	cur[40] = 9
	d := ComputeDiff(twin, cur)
	if len(d) != 2 {
		t.Fatalf("got %d ranges, want 2: %+v", len(d), d)
	}
	if d[0].Off != 10 || len(d[0].Data) != 3 {
		t.Fatalf("range 0 = %+v", d[0])
	}
	if d[1].Off != 40 || len(d[1].Data) != 1 {
		t.Fatalf("range 1 = %+v", d[1])
	}
	if d.Bytes(8) != 4+16 {
		t.Fatalf("Bytes(8) = %d, want 20", d.Bytes(8))
	}
}

// Property: applying the diff of (twin→cur) onto a copy of twin
// reconstructs cur exactly.
func TestDiffRoundTripProperty(t *testing.T) {
	f := func(seed int64, nmut uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		twin := make([]byte, 256)
		rng.Read(twin)
		cur := append([]byte(nil), twin...)
		for i := 0; i < int(nmut); i++ {
			cur[rng.Intn(len(cur))] = byte(rng.Int())
		}
		home := append([]byte(nil), twin...)
		ComputeDiff(twin, cur).Apply(home)
		return bytes.Equal(home, cur)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: two writers mutating disjoint halves both land when their
// diffs merge into the home copy, in either order.
func TestDiffDisjointMergeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := make([]byte, 128)
		rng.Read(base)
		a := append([]byte(nil), base...)
		b := append([]byte(nil), base...)
		for i := 0; i < 10; i++ {
			a[rng.Intn(64)] = byte(rng.Int())    // writer A: first half
			b[64+rng.Intn(64)] = byte(rng.Int()) // writer B: second half
		}
		da := ComputeDiff(base, a)
		db := ComputeDiff(base, b)
		h1 := append([]byte(nil), base...)
		da.Apply(h1)
		db.Apply(h1)
		h2 := append([]byte(nil), base...)
		db.Apply(h2)
		da.Apply(h2)
		if !bytes.Equal(h1, h2) {
			return false
		}
		return bytes.Equal(h1[:64], a[:64]) && bytes.Equal(h1[64:], b[64:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// referenceDiff is the plain byte-at-a-time scan the word-wise
// ComputeDiff must match range-for-range (range structure feeds the
// protocol's message-size accounting, so equivalence is a determinism
// requirement, not just a data-correctness one).
func referenceDiff(twin, cur []byte) Diff {
	var d Diff
	i := 0
	for i < len(cur) {
		if twin[i] == cur[i] {
			i++
			continue
		}
		j := i + 1
		for j < len(cur) && twin[j] != cur[j] {
			j++
		}
		data := make([]byte, j-i)
		copy(data, cur[i:j])
		d = append(d, DiffRange{Off: i, Data: data})
		i = j
	}
	return d
}

// Property: the word-wise scan produces ranges byte-identical to the
// reference byte scan, across page sizes that exercise word-boundary
// tails.
func TestComputeDiffMatchesReference(t *testing.T) {
	f := func(seed int64, nmut uint8, szSel uint8) bool {
		sizes := []int{1, 7, 8, 9, 15, 16, 63, 64, 256, 1024}
		size := sizes[int(szSel)%len(sizes)]
		rng := rand.New(rand.NewSource(seed))
		twin := make([]byte, size)
		rng.Read(twin)
		cur := append([]byte(nil), twin...)
		for i := 0; i < int(nmut); i++ {
			cur[rng.Intn(size)] = byte(rng.Int())
		}
		got := ComputeDiff(twin, cur)
		want := referenceDiff(twin, cur)
		if len(got) != len(want) {
			return false
		}
		for k := range got {
			if got[k].Off != want[k].Off || !bytes.Equal(got[k].Data, want[k].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// A fully-rewritten page must come back as one whole-page range.
func TestComputeDiffDensePage(t *testing.T) {
	twin := make([]byte, 1024)
	cur := make([]byte, 1024)
	for i := range cur {
		cur[i] = byte(i) | 1
		twin[i] = byte(i) &^ 1
		if twin[i] == cur[i] {
			cur[i] ^= 0xFF
		}
	}
	d := ComputeDiff(twin, cur)
	if len(d) != 1 || d[0].Off != 0 || len(d[0].Data) != 1024 {
		t.Fatalf("dense diff = %d ranges, first %+v", len(d), d[0].Off)
	}
	if !bytes.Equal(d[0].Data, cur) {
		t.Fatal("dense diff data mismatch")
	}
}

func TestDiffSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ComputeDiff(make([]byte, 8), make([]byte, 16))
}

func TestDUQOrderAndDedup(t *testing.T) {
	d := newDUQ()
	d.add(3)
	d.add(1)
	d.add(3) // dup
	d.add(2)
	if d.len() != 3 {
		t.Fatalf("len = %d, want 3", d.len())
	}
	var got []int
	for {
		p, ok := d.pop()
		if !ok {
			break
		}
		got = append(got, int(p))
	}
	want := []int{3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", got, want)
		}
	}
}

func TestDUQRemoveSkipsDeadHead(t *testing.T) {
	d := newDUQ()
	d.add(1)
	d.add(2)
	d.remove(1)
	p, ok := d.pop()
	if !ok || p != 2 {
		t.Fatalf("pop = (%d,%v), want (2,true)", p, ok)
	}
	if _, ok := d.pop(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestDUQReAddAfterRemove(t *testing.T) {
	d := newDUQ()
	d.add(5)
	d.remove(5)
	d.add(5)
	p, ok := d.pop()
	if !ok || p != 5 {
		t.Fatalf("pop = (%d,%v), want (5,true)", p, ok)
	}
}

// TestComputeDiffOwnsStorage checks the throwaway form's ownership
// contract: the returned diff must survive the pooled scratch buffer
// being recycled and overwritten by a later, different computation.
func TestComputeDiffOwnsStorage(t *testing.T) {
	twin := make([]byte, 64)
	cur := make([]byte, 64)
	cur[3], cur[4] = 7, 8
	d := ComputeDiff(twin, cur)
	snap := ComputeDiff(twin, cur) // identical second copy for comparison

	// Churn the pool with conflicting contents.
	other := make([]byte, 64)
	for i := range other {
		other[i] = 0xAA
	}
	for i := 0; i < 8; i++ {
		ComputeDiff(twin, other)
	}

	if len(d) != len(snap) {
		t.Fatalf("diff changed shape after pool reuse: %+v", d)
	}
	for i := range d {
		if d[i].Off != snap[i].Off || !bytes.Equal(d[i].Data, snap[i].Data) {
			t.Fatalf("range %d corrupted by pool reuse: %+v want %+v", i, d[i], snap[i])
		}
	}
}
