package core

import (
	"sort"

	"mgs/internal/vm"
)

// Hierarchical coarse-vector directory.
//
// The paper's Server tracks read and write copies in per-SSMP bitmasks
// (read_dir/write_dir), which caps a DSSMP at 64 SSMPs and costs
// O(SSMPs) home memory per page. To scale to thousand-processor
// machines the directory is now two-level:
//
//   - Exact: a sorted list of SSMP ids, kept while the sharer count
//     stays at or below Costs.DirThreshold. Precise — releases
//     invalidate exactly the registered copies, and the single-writer
//     optimization applies.
//
//   - Coarse: past the threshold the set collapses to a 64-bit cluster
//     vector, one bit per ceil(nssmp/64) consecutive SSMPs. Membership
//     becomes a sound over-approximation: removals are no-ops and a
//     release invalidates every SSMP of every marked cluster that has
//     ever held a copy. The extra fan-out is charged in real cycles —
//     each over-invalidated SSMP receives a full INV message and
//     answers through the copy-already-gone arm of onInv — which is
//     exactly the precision-for-memory trade of coarse-vector
//     hardware directories. A completed release round clears the set
//     back to exact, so precision recovers every round.
//
// Home-side memory per page is therefore O(min(sharers, threshold))
// exact entries plus a fixed vector, and the per-SSMP copy records
// (rmt) are a sorted sparse list of the SSMPs that have actually been
// served — not a dense O(SSMPs) array.

// dirSet is one directory (read or write copies) of one server page.
// The zero value is the empty exact set.
type dirSet struct {
	exact  []int32 // sorted SSMP ids, valid while !coarse
	coarse bool
	groups uint64 // cluster vector, one bit per grain SSMPs, valid while coarse
}

// add registers SSMP r. Past thresh exact entries the set goes coarse
// with clusters of grain SSMPs per bit.
func (d *dirSet) add(r, thresh, grain int) {
	if d.coarse {
		d.groups |= 1 << (uint(r/grain) & 63)
		return
	}
	i := sort.Search(len(d.exact), func(i int) bool { return d.exact[i] >= int32(r) })
	if i < len(d.exact) && d.exact[i] == int32(r) {
		return
	}
	if len(d.exact) >= thresh {
		// Collapse to the cluster vector; the exact list's memory is
		// released (that is the point).
		g := uint64(0)
		for _, e := range d.exact {
			g |= 1 << (uint(int(e)/grain) & 63)
		}
		d.exact = nil
		d.coarse = true
		d.groups = g | 1<<(uint(r/grain)&63)
		return
	}
	d.exact = append(d.exact, 0)
	copy(d.exact[i+1:], d.exact[i:])
	d.exact[i] = int32(r)
}

// remove deregisters SSMP r. In coarse mode this is a deliberate no-op:
// clearing a cluster bit could hide another member's live copy, so the
// over-approximation persists until the next round's clear.
func (d *dirSet) remove(r int) {
	if d.coarse {
		return
	}
	i := sort.Search(len(d.exact), func(i int) bool { return d.exact[i] >= int32(r) })
	if i < len(d.exact) && d.exact[i] == int32(r) {
		d.exact = append(d.exact[:i], d.exact[i+1:]...)
	}
}

// clear empties the set and returns it to exact mode.
func (d *dirSet) clear() {
	d.exact = d.exact[:0]
	d.coarse = false
	d.groups = 0
}

// empty reports whether no SSMP is registered.
func (d *dirSet) empty() bool {
	if d.coarse {
		return d.groups == 0
	}
	return len(d.exact) == 0
}

// has reports (possibly over-approximate, in coarse mode) membership.
func (d *dirSet) has(r, grain int) bool {
	if d.coarse {
		return d.groups&(1<<(uint(r/grain)&63)) != 0
	}
	i := sort.Search(len(d.exact), func(i int) bool { return d.exact[i] >= int32(r) })
	return i < len(d.exact) && d.exact[i] == int32(r)
}

// isOnly reports that the set is known to be exactly {r}. Coarse sets
// never qualify — the single-writer optimization needs certainty.
func (d *dirSet) isOnly(r int) bool {
	return !d.coarse && len(d.exact) == 1 && d.exact[0] == int32(r)
}

// mask64 projects the set onto the legacy 64-bit directory mask for
// traces, snapshots, and the model checker's refinement spec. At 64 or
// fewer SSMPs with the default threshold the set never goes coarse and
// every id fits a bit, so the projection equals the old bitmask
// exactly; larger machines fold ids mod 64 (coarse sets report the
// cluster vector), which keeps the diagnostics bounded.
func (d *dirSet) mask64() uint64 {
	if d.coarse {
		return d.groups
	}
	var m uint64
	for _, e := range d.exact {
		m |= 1 << (uint(e) & 63)
	}
	return m
}

// dirTargets returns, in ascending SSMP order, the copies a release
// round must reach: the union of the read and write directories,
// expanded through the home's sparse copy records when either set has
// gone coarse. exclude (-1 for none) drops one SSMP — the update
// protocol's refresh phase never pushes to the home's own cluster.
func (s *System) dirTargets(sp *serverPage, exclude int) []int {
	rd, wd := &sp.readDir, &sp.writeDir
	if rd.coarse || wd.coarse {
		// Coarse expansion: every SSMP ever served whose cluster bit is
		// set. Copies torn down since registration answer the INV with
		// the copy-already-gone acknowledgement, charging the coarse
		// vector's imprecision in cycles.
		s.st.Count("dir.coarse", 1)
		var out []int
		for i := range sp.rmt {
			r := int(sp.rmt[i].ssmp)
			if r != exclude && (rd.has(r, s.dirGrain) || wd.has(r, s.dirGrain)) {
				out = append(out, r)
			}
		}
		return out
	}
	out := make([]int, 0, len(rd.exact)+len(wd.exact))
	i, j := 0, 0
	for i < len(rd.exact) || j < len(wd.exact) {
		var r int
		switch {
		case j >= len(wd.exact) || (i < len(rd.exact) && rd.exact[i] < wd.exact[j]):
			r = int(rd.exact[i])
			i++
		case i >= len(rd.exact) || wd.exact[j] < rd.exact[i]:
			r = int(wd.exact[j])
			j++
		default:
			r = int(rd.exact[i])
			i, j = i+1, j+1
		}
		if r != exclude {
			out = append(out, r)
		}
	}
	return out
}

// rmtGet returns the home's copy record for SSMP r, or nil if r has
// never been served.
func (sp *serverPage) rmtGet(r int) *remoteCopy {
	i := sort.Search(len(sp.rmt), func(i int) bool { return sp.rmt[i].ssmp >= int32(r) })
	if i < len(sp.rmt) && sp.rmt[i].ssmp == int32(r) {
		return &sp.rmt[i]
	}
	return nil
}

// rmtEnsure returns (creating if needed) the copy record for SSMP r.
// Records are never deleted, so pointers stay valid until the next
// rmtEnsure of a new SSMP.
func (sp *serverPage) rmtEnsure(r int) *remoteCopy {
	i := sort.Search(len(sp.rmt), func(i int) bool { return sp.rmt[i].ssmp >= int32(r) })
	if i < len(sp.rmt) && sp.rmt[i].ssmp == int32(r) {
		return &sp.rmt[i]
	}
	sp.rmt = append(sp.rmt, remoteCopy{})
	copy(sp.rmt[i+1:], sp.rmt[i:])
	sp.rmt[i] = remoteCopy{ssmp: int32(r), owner: -1}
	return &sp.rmt[i]
}

// rmtGens returns the teardown-reply count the home has recorded for
// SSMP r (the WNOTIFY staleness clock); zero if r was never served.
func (sp *serverPage) rmtGens(r int) int64 {
	if rc := sp.rmtGet(r); rc != nil {
		return rc.gens
	}
	return 0
}

// pageArena is a page-number-indexed store of per-page records: the
// per-SSMP replacement for the former Go maps of client and server
// pages. Pages are small dense integers (the space is a bump
// allocator), so a direct slice index beats map hashing on the Access
// hot path, iteration is naturally in page order (no collect-then-sort,
// no map-range determinism hazard), and the arena is shard-local state
// exactly as the maps were.
type pageArena[T any] struct {
	slots []*T
	n     int
}

// get returns the record for page v, or nil.
//
//mgs:noalloc
func (a *pageArena[T]) get(v vm.Page) *T {
	if int(v) < len(a.slots) {
		return a.slots[v]
	}
	return nil
}

// put stores the record for page v.
func (a *pageArena[T]) put(v vm.Page, t *T) {
	if int(v) >= len(a.slots) {
		size := 2 * len(a.slots)
		if size < int(v)+1 {
			size = int(v) + 1
		}
		grown := make([]*T, size)
		copy(grown, a.slots)
		a.slots = grown
	}
	if a.slots[v] == nil {
		a.n++
	}
	a.slots[v] = t
}

// del removes the record for page v (home migration).
func (a *pageArena[T]) del(v vm.Page) {
	if int(v) < len(a.slots) && a.slots[v] != nil {
		a.slots[v] = nil
		a.n--
	}
}

// each calls f for every record in ascending page order.
func (a *pageArena[T]) each(f func(vm.Page, *T)) {
	for i, t := range a.slots {
		if t != nil {
			f(vm.Page(i), t)
		}
	}
}

// DirectoryStats summarizes the Server-side directory memory across
// every home: what the hierarchical directory actually holds, and an
// estimate of its bytes. mgs-bench reports these to show home state
// staying O(sharers) — not O(SSMPs) — per page as machines grow.
type DirectoryStats struct {
	Pages        int   // server page records
	RmtEntries   int   // sparse per-SSMP copy records (SSMPs ever served)
	ExactEntries int   // exact directory entries currently registered
	CoarsePages  int   // pages with a read or write directory in coarse mode
	Bytes        int64 // estimated directory bytes (records + entries + vectors)
}

// Estimated sizes of the home-side records (pointer-width words).
const (
	rmtEntryBytes   = 24 // ssmp + owner + gens + copy pointer
	exactEntryBytes = 4  // one int32 id
	dirSetBytes     = 2 * 40
)

// DenseBytes estimates what the same pages would occupy under a dense
// directory layout — one copy record per SSMP per served page,
// regardless of sharing. The ratio against Bytes is the hierarchical
// directory's O(sharers)-versus-O(SSMPs) claim, measured.
func (ds DirectoryStats) DenseBytes(nssmp int) int64 {
	return int64(ds.Pages) * (dirSetBytes + int64(nssmp)*rmtEntryBytes)
}

// DirectoryStats scans every home's server records. Host-side, no
// simulated cost.
func (s *System) DirectoryStats() DirectoryStats {
	var out DirectoryStats
	for _, ss := range s.ssmps {
		ss.servers.each(func(_ vm.Page, sp *serverPage) {
			out.Pages++
			out.RmtEntries += len(sp.rmt)
			out.ExactEntries += len(sp.readDir.exact) + len(sp.writeDir.exact)
			if sp.readDir.coarse || sp.writeDir.coarse {
				out.CoarsePages++
			}
			out.Bytes += dirSetBytes +
				int64(len(sp.rmt))*rmtEntryBytes +
				int64(len(sp.readDir.exact)+len(sp.writeDir.exact))*exactEntryBytes
		})
	}
	return out
}
