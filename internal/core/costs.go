package core

import "mgs/internal/sim"

// Costs parameterizes the software side of the MGS protocol, in cycles.
// The Table 3 software numbers (TLB fill, inter-SSMP misses, releases)
// are not set here directly — they emerge from protocol execution over
// these primitives plus the message costs in internal/msg; the defaults
// are calibrated so the emergent values land near the paper's (see the
// calibration test in internal/harness).
type Costs struct {
	TransArray sim.Time // in-line translation, distributed-array access
	TransPtr   sim.Time // in-line translation, pointer dereference

	FaultEntry sim.Time // trap into the Local Client and state save
	PTLockOp   sim.Time // acquire or release a page-table lock
	TLBFill    sim.Time // page-table walk plus software TLB insert
	NullFill   sim.Time // plain SVM fill when MGS is disabled (C = P)
	MapPage    sim.Time // frame allocation and mapping bookkeeping

	RelWork   sim.Time // server-side bookkeeping per REL
	ReqWork   sim.Time // server-side bookkeeping per RREQ/WREQ
	UpWork    sim.Time // remote-client work per UPGRADE
	PinvWork  sim.Time // per-processor TLB shootdown handler work
	MergeWork sim.Time // fixed cost to start a diff merge at the home

	TwinPerByte  sim.Time // twin (page snapshot) copy, cycles per byte
	DiffPerByte  sim.Time // twin-vs-page comparison scan, cycles per byte
	ApplyPerByte sim.Time // diff merge at the home, cycles per byte

	CtrlBytes   int // payload of a control message
	DiffHdrByte int // per-range overhead in a DIFF payload

	// DirThreshold caps the exact per-page directory: past this many
	// registered SSMPs the Server's read/write directories collapse to
	// a 64-bit coarse cluster vector (one bit per ceil(SSMPs/64)
	// clusters), trading invalidation precision for O(threshold) home
	// memory — over-invalidated SSMPs answer with the copy-already-gone
	// acknowledgement, charged in cycles like any INV. Zero means 64,
	// which keeps machines of up to 64 SSMPs always exact (and their
	// runs bit-identical to the flat-bitmask directory this replaces).
	// See dirset.go.
	DirThreshold int

	// SingleWriter enables the paper's single-writer optimization:
	// when a release finds exactly one outstanding write copy, the
	// whole page is shipped home instead of a diff and the writer SSMP
	// keeps its copy.
	SingleWriter bool

	// SerialInv makes the Server invalidate one copy at a time during a
	// release, waiting for each reply before the next INV — the eager
	// behaviour MGS's measured release costs imply. Clearing it sends
	// all INVs at once (an ablation).
	SerialInv bool

	// MigrateAfter, when positive, enables dynamic home migration (the
	// paper leaves homes "fixed for all time" and names runtime
	// locality support as future work): after this many consecutive
	// remote page serves to the same SSMP with no intervening activity
	// from others, the page's home moves there at the next quiescent
	// point (a release round that leaves no copies outstanding).
	MigrateAfter int

	// LazyRelease switches the consistency protocol from the paper's
	// eager release (every release invalidates all copies) to a
	// TreadMarks-style lazy variant (the other side of the paper's §6
	// comparison): a release only pushes the releaser's own diff to the
	// home and advances the page's version; other copies go stale in
	// place. Coherence moves to acquire time — every lock grant and
	// barrier exit validates the acquiring SSMP's copies against the
	// home versions (idealized write notices), flushing dirty stale
	// pages and invalidating clean ones. SingleWriter, UpdateProtocol,
	// and MigrateAfter have no effect in this mode (the eager release
	// round they modify never runs). See lazy.go.
	LazyRelease bool

	// MutStaleWNotify re-introduces the stale-WNOTIFY bug the
	// incarnation check in onUpgrade kills: a write notification delayed
	// past the release round that captured its copy re-registers a
	// phantom write_dir bit for an SSMP that holds nothing. It exists
	// solely so the model checker's mutation regression test
	// (internal/check) can prove the explorer detects the bug; never set
	// it outside tests.
	MutStaleWNotify bool

	// UpdateProtocol switches release rounds from invalidate to update
	// (the Galactica Net comparison from the paper's related work):
	// copies are not torn down; after the merge, the home pushes the
	// merged page back to every copy, which replays its own concurrent
	// writes on top. Releases complete only after every copy has
	// acknowledged its refresh. Mappings survive, so steady
	// producer-consumer sharing stops paying refetch costs, at the
	// price of page pushes to every sharer on every release.
	UpdateProtocol bool
}

// DefaultCosts returns the calibrated cost table (20 MHz Alewife,
// 1K-byte pages).
func DefaultCosts() Costs {
	return Costs{
		TransArray: 18,
		TransPtr:   24,

		FaultEntry: 400,
		PTLockOp:   120,
		TLBFill:    480,
		NullFill:   120,
		MapPage:    1000,

		RelWork:   300,
		ReqWork:   600,
		UpWork:    200,
		PinvWork:  150,
		MergeWork: 200,

		TwinPerByte:  6,
		DiffPerByte:  4,
		ApplyPerByte: 1,

		CtrlBytes:   32,
		DiffHdrByte: 8,

		SingleWriter: true,
		SerialInv:    true,
	}
}
