package core

import "testing"

// diffPage builds a 1K twin/current pair with the given set of changed
// byte offsets.
func diffPage(changed func(i int) bool) (twin, cur []byte) {
	const size = 1024
	twin = make([]byte, size)
	cur = make([]byte, size)
	for i := 0; i < size; i++ {
		twin[i] = byte(i)
		cur[i] = byte(i)
		if changed(i) {
			cur[i] = byte(i) + 1
		}
	}
	return twin, cur
}

// diffPatterns are the change shapes the diff benchmarks and the
// zero-allocation test share.
var diffPatterns = []struct {
	name    string
	changed func(i int) bool
}{
	{"Clean", func(i int) bool { return false }},
	{"Sparse", func(i int) bool { return i%128 < 8 }},
	{"Dense", func(i int) bool { return true }},
	{"Alternating", func(i int) bool { return i%2 == 0 }},
}

func benchDiff(b *testing.B, changed func(i int) bool) {
	b.Helper()
	twin, cur := diffPage(changed)
	var buf DiffBuf
	buf.Compute(twin, cur) // grow to the high-water mark
	b.ReportAllocs()
	b.SetBytes(int64(len(cur)))
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		d := buf.Compute(twin, cur)
		n += d.Len()
	}
	_ = n
}

// BenchmarkComputeDiffClean scans a page with no changes — the dominant
// case for read-mostly pages caught in a release round.
func BenchmarkComputeDiffClean(b *testing.B) {
	benchDiff(b, diffPatterns[0].changed)
}

// BenchmarkComputeDiffSparse scans a mostly-clean page: one 8-byte
// write per 128-byte stretch (a typical false-sharing page).
func BenchmarkComputeDiffSparse(b *testing.B) {
	benchDiff(b, diffPatterns[1].changed)
}

// BenchmarkComputeDiffDense scans a page where every word changed (a
// fully rewritten page).
func BenchmarkComputeDiffDense(b *testing.B) {
	benchDiff(b, diffPatterns[2].changed)
}

// BenchmarkComputeDiffAlternating is the worst case for range
// coalescing: every other byte changed, one range per changed byte.
func BenchmarkComputeDiffAlternating(b *testing.B) {
	benchDiff(b, diffPatterns[3].changed)
}

// TestComputeDiffZeroAllocs pins the steady-state contract of the
// buffered diff path: once a DiffBuf has grown to a workload's
// high-water mark, recomputing any change pattern allocates nothing.
// The protocol's release rounds (diffPool in system.go) rely on this —
// a regression here turns every invalidation into garbage.
func TestComputeDiffZeroAllocs(t *testing.T) {
	for _, p := range diffPatterns {
		twin, cur := diffPage(p.changed)
		var buf DiffBuf
		buf.Compute(twin, cur) // warm: grow ranges and payload slab
		allocs := testing.AllocsPerRun(100, func() {
			buf.Compute(twin, cur)
		})
		if allocs != 0 {
			t.Errorf("%s: DiffBuf.Compute allocated %.1f times per op, want 0", p.name, allocs)
		}
	}
}

// TestComputeDiffOwnedAllocs pins the throwaway form: ComputeDiff draws
// its scratch from the pool, so the only allocations left are the
// clone's two exact-size copies (range headers + payload slab) — and
// zero for a clean page, whose diff is empty. Before the pooled
// rewrite a cold `var b DiffBuf` compute cost 5 allocs/op (four
// growth-by-doubling appends plus the payload slab).
func TestComputeDiffOwnedAllocs(t *testing.T) {
	for _, p := range diffPatterns {
		twin, cur := diffPage(p.changed)
		want := 2.0
		if p.name == "Clean" {
			want = 0
		}
		ComputeDiff(twin, cur) // warm the pool to this high-water mark
		allocs := testing.AllocsPerRun(100, func() {
			ComputeDiff(twin, cur)
		})
		if allocs != want {
			t.Errorf("%s: ComputeDiff allocated %.1f times per op, want %.0f", p.name, allocs, want)
		}
	}
}

// TestDiffPoolRoundTripZeroAllocs pins the full protocol-path shape the
// release and refresh handlers use: draw a pooled buffer, compute,
// apply the diff to a home image, return the buffer. Once the pool is
// warm the whole round trip allocates nothing — this is what lets the
// lazy-release and update-refresh paths carry //mgs:noalloc.
func TestDiffPoolRoundTripZeroAllocs(t *testing.T) {
	for _, p := range diffPatterns {
		twin, cur := diffPage(p.changed)
		home := make([]byte, len(cur))
		copy(home, twin)
		// Warm: grow one pooled buffer to this pattern's high-water mark.
		db := getDiffBuf()
		db.Compute(twin, cur)
		putDiffBuf(db)
		allocs := testing.AllocsPerRun(100, func() {
			db := getDiffBuf()
			d := db.Compute(twin, cur)
			d.Apply(home)
			putDiffBuf(db)
		})
		if allocs != 0 {
			t.Errorf("%s: pooled diff round trip allocated %.1f times per op, want 0", p.name, allocs)
		}
	}
}
