package core

import "testing"

// diffPage builds a 1K twin/current pair with the given set of changed
// byte offsets.
func diffPage(changed func(i int) bool) (twin, cur []byte) {
	const size = 1024
	twin = make([]byte, size)
	cur = make([]byte, size)
	for i := 0; i < size; i++ {
		twin[i] = byte(i)
		cur[i] = byte(i)
		if changed(i) {
			cur[i] = byte(i) + 1
		}
	}
	return twin, cur
}

func benchDiff(b *testing.B, changed func(i int) bool) {
	b.Helper()
	twin, cur := diffPage(changed)
	b.ReportAllocs()
	b.SetBytes(int64(len(cur)))
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		d := ComputeDiff(twin, cur)
		n += d.Len()
	}
	_ = n
}

// BenchmarkComputeDiffClean scans a page with no changes — the dominant
// case for read-mostly pages caught in a release round.
func BenchmarkComputeDiffClean(b *testing.B) {
	benchDiff(b, func(i int) bool { return false })
}

// BenchmarkComputeDiffSparse scans a mostly-clean page: one 8-byte
// write per 128-byte stretch (a typical false-sharing page).
func BenchmarkComputeDiffSparse(b *testing.B) {
	benchDiff(b, func(i int) bool { return i%128 < 8 })
}

// BenchmarkComputeDiffDense scans a page where every word changed (a
// fully rewritten page).
func BenchmarkComputeDiffDense(b *testing.B) {
	benchDiff(b, func(i int) bool { return true })
}

// BenchmarkComputeDiffAlternating is the worst case for range
// coalescing: every other byte changed, one range per changed byte.
func BenchmarkComputeDiffAlternating(b *testing.B) {
	benchDiff(b, func(i int) bool { return i%2 == 0 })
}
