package core

import (
	"mgs/internal/sim"
	"mgs/internal/stats"
)

// ptLock is the per-(SSMP, page) shared-memory lock that serializes
// page-table state transitions (the "L" column of Table 1). Tasks
// (simulated processors) spin-wait on it; protocol handlers test it and
// queue a continuation if busy, per the paper's footnote 2, to avoid
// deadlocking the handler.
type ptLock struct {
	held    bool
	waiters []func(at sim.Time) // FIFO; lock is handed over held
}

// lockProc acquires cp's page-table lock from processor context,
// charging the lock operation and any wait time to category cat.
func (s *System) lockProc(cp *clientPage, p *sim.Proc, cat stats.Category) {
	s.spend(p, cat, s.cfg.Costs.PTLockOp)
	if s.DebugChecks {
		s.emitPage(p.Clock(), p.ID, cp.page, "LOCKPROC", "held=%v", cp.lk.held)
	}
	if !cp.lk.held {
		cp.lk.held = true
		return
	}
	c0 := p.Clock()
	cp.lk.waiters = append(cp.lk.waiters, func(at sim.Time) { p.Wake(at) })
	p.Park()
	if s.DebugChecks && p.Clock()-c0 > 100_000 {
		s.emitPage(p.Clock(), p.ID, cp.page, "LONGPTLOCK", "wait=%d", p.Clock()-c0)
	}
	s.st.Charge(p.ID, cat, p.Clock()-c0)
}

// lockHandler acquires cp's lock from handler context: fn runs at time
// at if the lock is free, or later when the lock is handed over.
func (s *System) lockHandler(cp *clientPage, at sim.Time, fn func(at sim.Time)) {
	if !cp.lk.held {
		cp.lk.held = true
		fn(at)
		return
	}
	cp.lk.waiters = append(cp.lk.waiters, fn)
}

// unlock releases cp's lock at time at, handing it to the next waiter if
// any. Callable from processor or handler context.
func (s *System) unlock(cp *clientPage, at sim.Time) {
	if s.DebugChecks {
		s.emitPage(at, -1, cp.page, "UNLOCK", "waiters=%d", len(cp.lk.waiters))
	}
	if !cp.lk.held {
		panic("core: unlock of free page-table lock")
	}
	if len(cp.lk.waiters) == 0 {
		cp.lk.held = false
		return
	}
	next := cp.lk.waiters[0]
	cp.lk.waiters = cp.lk.waiters[1:]
	handoff := at + s.cfg.Costs.PTLockOp
	// The handoff is same-SSMP work: every locker and unlocker of cp's
	// lock executes on cp's shard, so pin the event there (an unpinned
	// At would force the whole run onto the sequential dispatcher).
	s.eng.AtOn(s.procs[s.ssmpBase(cp.ssmp)], handoff, func() { next(handoff) })
}
