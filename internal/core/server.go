package core

import (
	"math/bits"

	"mgs/internal/obs"
	"mgs/internal/sim"
	"mgs/internal/stats"
	"mgs/internal/vm"
)

// Shard discipline. Under the parallel dispatcher (sim.Parallelize)
// the handlers in this file execute concurrently on different SSMPs'
// shards, so every handler may touch only the state of the shard it
// runs on: Server records (serverPage) are home-shard state, client
// records (clientPage) are their SSMP's state, and every cross-SSMP
// fact travels inside a message — the requester's page record rides
// the REQ, the capture round rides the REL, teardowns ride the
// invalidation replies. Fields that are immutable while the parallel
// dispatcher can be live (sp.page, sp.homeProc, cp.page, cp.ssmp) are
// the only state read across shards.

// onRequest is the Server's RREQ/WREQ handler (arcs 17–19, 22), running
// on the page's home processor.
func (s *System) onRequest(sp *serverPage, cp *clientPage, p *sim.Proc, write bool, at sim.Time) {
	s.emitEngine(at, -1, sp.page, "SERVER", 0, "home %d for proc %d write=%v", sp.homeProc, p.ID, write)
	if sp.state == sRel {
		// Arc 22: queue behind the release in progress.
		sp.pendReq = append(sp.pendReq, pendingReq{proc: p.ID, write: write, cp: cp})
		s.st.Count("req.pended", 1)
		s.emitPageArgs(at, p.ID, sp.page, "REQ", [3]int64{b2i(write), int64(cp.ssmp), 0},
			"from proc %d write=%v PENDED", p.ID, write)
		return
	}
	s.serveData(sp, cp, p, write, at)
}

// serveData registers the requesting SSMP in the directory and ships the
// page (RDAT/WDAT). The home SSMP's own requests map the home frame
// directly, with no data transfer.
func (s *System) serveData(sp *serverPage, cp *clientPage, p *sim.Proc, write bool, at sim.Time) {
	c := &s.cfg.Costs
	r := cp.ssmp
	homeSSMP := s.ssmpOf(sp.homeProc)
	bytes := c.CtrlBytes
	var img []byte
	if r != homeSSMP {
		if r == sp.lastReq {
			sp.streak++
		} else {
			sp.lastReq = r
			sp.streak = 1
		}
		// The home SSMP itself is never registered in the directories:
		// its "copy" is the home frame, kept consistent in place. Only
		// remote copies need invalidating at release.
		if write {
			sp.writeDir.add(r, s.dirThresh, s.dirGrain)
			sp.state = sWrite
			s.st.Count("wdat", 1)
		} else {
			sp.readDir.add(r, s.dirThresh, s.dirGrain)
			s.st.Count("rdat", 1)
		}
		// Record where the SSMP's Remote Client lives so invalidations
		// can be addressed without reading the remote shard. The first
		// serve's requester is the copy's permanent first-touch owner
		// (PBusy plus the page-table lock admit one outstanding request
		// per SSMP and page).
		rc := sp.rmtEnsure(r)
		rc.cp = cp
		if rc.owner < 0 {
			rc.owner = int32(p.ID)
		}
		bytes += s.cfg.PageSize
		if write {
			// Twins are made at request time (§3.1.1): the write grant
			// carries the twin image too.
			bytes += s.cfg.PageSize
		}
		// DMA requires global coherence: clean the home SSMP's copy
		// first if its processors have it cached (paper §4.2.4), and
		// shoot down the home SSMP's mappings so its processors' next
		// writes fault and re-enter their delayed update queues — from
		// now on there is a remote copy to keep consistent.
		if hcp := s.ssmps[homeSSMP].pages.get(sp.page); hcp != nil && hcp.frame != nil && hcp.dir != nil {
			s.st.Count("clean.serve", 1)
			at = s.net.Extend(sp.homeProc, at, s.ssmps[homeSSMP].domain.CleanPage(hcp.frame, hcp.dir))
			if hcp.state == PWrite && hcp.tlbDir != 0 {
				n := 0
				for t := hcp.tlbDir; t != 0; t &= t - 1 {
					q := s.ssmpBase(homeSSMP) + bits.TrailingZeros64(t)
					s.tlbs[q].Invalidate(sp.page)
					n++
				}
				hcp.tlbDir = 0
				s.st.Count("home.shootdown", int64(n))
				at = s.net.Extend(sp.homeProc, at, sim.Time(n)*c.PinvWork)
			}
		}
		// The DMA image is captured now, on the home shard: the copy
		// reflects the home version as of SERVE time, and a merge that
		// lands while the data is on the wire must leave it stale.
		img = getPageBuf(s.cfg.PageSize)
		copy(img, sp.frame.Data)
	} else {
		s.st.Count("rdat.home", 1)
	}
	s.emitPageArgs(at, p.ID, sp.page, "SERVE", [3]int64{b2i(write), int64(r), b2i(r == homeSSMP)},
		"to proc %d (ssmp %d) write=%v dirs R=%b W=%b home=%d", p.ID, r, write, sp.readDir.mask64(), sp.writeDir.mask64(), sp.homeProc)
	servedVer := sp.version
	s.net.SendTagged(sim.Label{Kind: "DATA", Page: int64(sp.page), Src: sp.homeProc, Dst: p.ID, Aux: b2i(write)},
		sp.homeProc, p.ID, at, bytes, 0, func(at2 sim.Time) {
			s.onData(sp, cp, p, write, servedVer, img, at2)
		})
}

// onData is the Local Client's RDAT/WDAT handler (arcs 6–7), running on
// the faulting processor, which still holds the page-table lock. img is
// the serve-time snapshot of the home frame (nil for the home SSMP's
// own requests, which map the home frame directly).
func (s *System) onData(sp *serverPage, cp *clientPage, p *sim.Proc, write bool, servedVer int64, img []byte, at sim.Time) {
	c := &s.cfg.Costs
	ss := s.ssmps[cp.ssmp]
	isHome := cp.ssmp == s.ssmpOf(sp.homeProc)
	if isHome {
		cp.frame = sp.frame
	} else {
		f := ss.frames.Alloc()
		f.CopyFrom(img)
		putPageBuf(img)
		cp.frame = f
	}
	if cp.ownerProc < 0 {
		// First-touch placement; permanent (paper §3.1.2).
		cp.ownerProc = p.ID
	}
	cp.version = servedVer // home version at serve time (lazy mode)
	cp.dir = s.newDir(cp)
	ss.domain.Register(cp.frame, cp.dir)
	at = s.net.Extend(p.ID, at, c.MapPage)
	if write {
		if !isHome {
			at = s.net.Extend(p.ID, at, sim.Time(s.cfg.PageSize)*c.TwinPerByte)
			cp.twin = s.newTwin(cp.frame)
			s.st.Count("twin", 1)
		}
		cp.state = PWrite
		if isHome {
			sp.homeDirty = true
		}
		ss.duqs[s.within(p.ID)].add(cp.page)
	} else {
		cp.state = PRead
	}
	at = s.net.Extend(p.ID, at, c.TLBFill)
	cp.tlbDir = bit(s.within(p.ID))
	priv := vm.Read
	if write {
		priv = vm.Write
	}
	s.emitPageArgs(at, p.ID, cp.page, "DATA", [3]int64{b2i(write), b2i(isHome), 0},
		"at proc %d write=%v", p.ID, write)
	s.insertTLB(ss, p.ID, cp.page, priv)
	s.unlock(cp, at)
	p.Wake(at)
}

// ReleaseAll is the release operation (arcs 8–10): processor p drains
// its delayed update queue, sending one REL per dirty page and waiting
// for the RACK before the next. msync calls this at every lock release
// and barrier arrival; it is what makes the overall model eager release
// consistency.
//
// Whether the release still has data to collect is judged at the home,
// on REL arrival: the REL carries what the releaser knows shard-locally
// — whether its SSMP's copy survives (cond=false) and which release
// round last captured it (capRound) — and the Server combines that
// with its own round state (onRel). The earlier design read the
// Server's state from the releasing processor to skip satisfied
// releases without a message; that read is impossible under the
// parallel dispatcher, so a satisfied release now costs one REL/RACK
// round trip instead of zero messages.
func (s *System) ReleaseAll(p *sim.Proc) {
	if s.cfg.Disabled {
		return
	}
	c := &s.cfg.Costs
	ss := s.ssmps[s.ssmpOf(p.ID)]
	d := ss.duqs[s.within(p.ID)]
	// Attribute each page's release work to that page; restore the
	// caller's context (the lock or barrier driving the release) after.
	pk, pid := s.st.ProfContext(p.ID)
	defer s.st.ProfSet(p.ID, pk, pid)
	if c.LazyRelease {
		s.releaseLazy(p, ss, d)
		return
	}
	for {
		v, ok := d.pop()
		if !ok {
			return
		}
		s.st.ProfSet(p.ID, obs.ObjPage, int64(v))
		cp := ss.pages.get(v)
		s.lockProc(cp, p, stats.MGS)
		// cond: the copy was invalidated since this processor dirtied
		// it, so the data already went home with that capture. The
		// release still synchronizes with the capturing round if it is
		// in flight (other copies are not consistent until the round
		// completes) — the home decides which case holds.
		cond := cp.state != PWrite
		capRound := cp.capturedRound
		if cond {
			s.emitPage(p.Clock(), p.ID, v, "RELCOND", "proc %d state=%v cap=%d", p.ID, cp.state, capRound)
		}
		s.st.Count("rel", 1)
		s.spend(p, stats.MGS, s.net.SendCost())
		relProc := p.ID
		home := s.space.HomeProc(v)
		s.net.SendTagged(sim.Label{Kind: "REL", Page: int64(v), Src: p.ID, Dst: home},
			p.ID, home, p.Clock(), c.CtrlBytes, c.RelWork,
			func(at sim.Time) { s.onRel(s.server(v), relProc, capRound, cond, at) })
		// Deviation from Table 1 (which holds the lock to the RACK):
		// the release round sends an INV back to this SSMP, and that
		// handler takes this same lock — holding it here would
		// deadlock the protocol against itself.
		s.unlock(cp, p.Clock())
		s.parkCharge(p, stats.MGS) // woken by the RACK handler
	}
}

// onRel is the Server's REL handler (arcs 20–22). cond reports that the
// releaser's copy was already captured by some round; capRound is that
// round's id (-1 for re-queued releases re-entering after a round).
func (s *System) onRel(sp *serverPage, relProc int, capRound int64, cond bool, at sim.Time) {
	if sp.state == sRel {
		// Arc 22 folds a concurrent REL into the round in progress,
		// assuming the round's invalidations collect the releaser's
		// dirty data. That fails only for a copy this same round has
		// already captured and that was re-dirtied after the capture (a
		// retained single-writer copy — the refill is local, so the
		// re-dirty needs no round-blocked serve): folding such a REL in
		// would acknowledge data the round never saw. Those releases
		// re-run as a fresh round. A captured-and-torn-down copy
		// (cond) cannot re-dirty mid-round — its refetch pends behind
		// the round — so its data is covered and the REL folds in.
		if !cond && capRound == sp.round {
			sp.pendReRel = append(sp.pendReRel, relProc)
			s.emitPageArgs(at, relProc, sp.page, "REL", [3]int64{relRequeued, 0, 0},
				"from proc %d REQUEUED (copy captured round %d)", relProc, capRound)
			return
		}
		if s.cfg.Costs.UpdateProtocol && sp.refreshDone && s.ssmpOf(relProc) == s.ssmpOf(sp.homeProc) {
			// The refresh image was snapshotted before this home-SSMP
			// release's in-place writes; folding it in would RACK a
			// release whose data the refreshes never carried.
			sp.pendReRel = append(sp.pendReRel, relProc)
			s.emitPageArgs(at, relProc, sp.page, "REL", [3]int64{relRequeuedHome, 0, 0},
				"from proc %d REQUEUED (post-image home release)", relProc)
			return
		}
		sp.pendRel = append(sp.pendRel, relProc)
		s.emitPageArgs(at, relProc, sp.page, "REL", [3]int64{relPended, 0, 0},
			"from proc %d PENDED", relProc)
		return
	}
	if cond {
		// The capturing round has already completed: the releaser's
		// data is merged and every copy served since reflects it. The
		// release is satisfied with no new round.
		s.st.Count("rel.sat", 1)
		s.emitPageArgs(at, relProc, sp.page, "REL", [3]int64{relSatisfied, 0, 0},
			"from proc %d SATISFIED (captured round %d done)", relProc, capRound)
		s.sendRack(sp, relProc, at)
		return
	}
	targets := s.dirTargets(sp, -1)
	if len(targets) == 0 {
		s.emitPageArgs(at, relProc, sp.page, "REL", [3]int64{relNoTargets, 0, 0},
			"from proc %d NOTARGETS", relProc)
		s.sendRack(sp, relProc, at)
		return
	}
	tmask := sp.readDir.mask64() | sp.writeDir.mask64()
	s.emitPageArgs(at, relProc, sp.page, "REL", [3]int64{relRound, int64(tmask), int64(sp.writeDir.mask64())},
		"from proc %d -> round targets=%b writeDir=%b", relProc, tmask, sp.writeDir.mask64())
	sp.state = sRel
	sp.round++
	sp.count = len(targets)
	sp.pendRel = append(sp.pendRel, relProc)
	sp.keepWriter = -1
	// A coarse write directory can never certify a single writer
	// (isOnly is false there), so the optimization is forgone — the
	// round's DIFF replies still carry every writer's data.
	oneWriter := s.cfg.Costs.SingleWriter && !sp.homeDirty
	for _, r := range targets {
		oneW := oneWriter && sp.writeDir.isOnly(r)
		if oneW {
			sp.keepWriter = r
			s.st.Count("1winv", 1)
		} else {
			s.st.Count("inv", 1)
		}
		sp.invQueue = append(sp.invQueue, invTarget{ssmp: r, oneW: oneW})
	}
	if s.cfg.Costs.SerialInv {
		s.dispatchInv(sp, at) // one at a time; replies pull the next
		return
	}
	for len(sp.invQueue) > 0 {
		s.dispatchInv(sp, at)
	}
}

// dispatchInv sends the INV/1WINV for the next queued target, addressed
// with the home's own record of the copy (rmt) — the remote shard's
// state is never read from here.
func (s *System) dispatchInv(sp *serverPage, at sim.Time) {
	t := sp.invQueue[0]
	sp.invQueue = sp.invQueue[1:]
	rc := sp.rmtGet(t.ssmp)
	cp, o := rc.cp, int(rc.owner)
	oneW := t.oneW
	round := sp.round
	s.net.SendTagged(sim.Label{Kind: "INV", Page: int64(sp.page), Src: sp.homeProc, Dst: o, Aux: b2i(oneW)},
		sp.homeProc, o, at, s.cfg.Costs.CtrlBytes, 0,
		func(at2 sim.Time) { s.onInv(sp, cp, oneW, round, at2) })
}

// onInv is the Remote Client's INV/1WINV handler (arcs 14–16), running
// on the processor owning the SSMP's copy. It takes the page-table lock
// (queuing if busy, per the paper's footnote 2), cleans the page, shoots
// down TLB mappings, and replies ACK, DIFF, or 1WDATA. round is the
// capturing round's id, recorded on the copy for its next release.
func (s *System) onInv(sp *serverPage, cp *clientPage, oneW bool, round int64, at sim.Time) {
	s.lockHandler(cp, at, func(at sim.Time) {
		o := s.clientOwner(cp)
		if cp.state != PWrite && cp.state != PRead {
			// Copy already gone; acknowledge with nothing to merge.
			cp.capturedRound = round
			s.emitPageArgs(at, -1, cp.page, "FINISHINV", [3]int64{finvGone, int64(cp.ssmp), 0},
				"ssmp %d copy already gone (state=%v)", cp.ssmp, cp.state)
			s.replyInv(sp, o, ackReply, nil, nil, false, at)
			s.unlock(cp, at)
			return
		}
		ss := s.ssmps[cp.ssmp]
		at = s.net.Extend(o, at, ss.domain.CleanPage(cp.frame, cp.dir))
		cp.invOneW = oneW
		cp.invCount = bits.OnesCount64(cp.tlbDir)
		s.emitPageArgs(at, -1, cp.page, "INVSTART", [3]int64{int64(cp.ssmp), b2i(oneW), int64(cp.invCount)},
			"ssmp %d tlbDir=%b state=%v oneW=%v", cp.ssmp, cp.tlbDir, cp.state, oneW)
		if cp.invCount == 0 {
			s.finishInv(sp, cp, round, at)
			return
		}
		c := &s.cfg.Costs
		v := cp.page
		for t := cp.tlbDir; t != 0; t &= t - 1 {
			q := s.ssmpBase(cp.ssmp) + bits.TrailingZeros64(t)
			s.st.Count("pinv", 1)
			s.net.SendTagged(sim.Label{Kind: "PINV", Page: int64(v), Src: o, Dst: q},
				o, q, at, c.CtrlBytes, c.PinvWork, func(at2 sim.Time) {
					// PINV (arc 11): drop the TLB entry, then acknowledge.
					// Unlike the table's arc 12, the processor's DUQ entry
					// stays — see the note in finishInv.
					s.tlbs[q].Invalidate(v)
					s.net.SendTagged(sim.Label{Kind: "PINVACK", Page: int64(v), Src: q, Dst: o},
						q, o, at2, c.CtrlBytes, 0, func(at3 sim.Time) {
							// PINV_ACK (arcs 15–16).
							cp.invCount--
							if cp.invCount == 0 {
								s.finishInv(sp, cp, round, at3)
							}
						})
				})
		}
	})
}

// ssmpBase returns the global processor ID of SSMP r's processor 0.
func (s *System) ssmpBase(r int) int { return r * s.cfg.ClusterSize }

// clientOwner returns the processor the SSMP's Remote Client runs on:
// the copy's first-touch owner, or (before any placement) the SSMP's
// first processor. Shard-local — home-side code uses rmt instead.
func (s *System) clientOwner(cp *clientPage) int {
	if cp.ownerProc >= 0 {
		return cp.ownerProc
	}
	return s.ssmpBase(cp.ssmp)
}

// finishInv completes an invalidation at the Remote Client once all
// PINV_ACKs are in (arc 16): it captures the page's modifications (diff
// or whole page), tears down or retains the copy, and replies to the
// Server. Called with the page-table lock held; releases it.
//
// The diff (or 1WDATA snapshot) is captured here, after the TLB
// shootdown, rather than at INV arrival as Table 1 writes it — capturing
// before the shootdown could lose a concurrent local write that the
// paper's microsecond-scale window makes improbable but a simulator
// makes routine.
func (s *System) finishInv(sp *serverPage, cp *clientPage, round int64, at sim.Time) {
	cp.capturedRound = round
	c := &s.cfg.Costs
	o := s.clientOwner(cp)
	ss := s.ssmps[cp.ssmp]
	isHome := cp.ssmp == s.ssmpOf(sp.homeProc)

	// Deliberate deviation from Table 1's arc 12: delayed-update-queue
	// entries are NOT removed by invalidations. A processor whose write
	// was collected by this round still pops the page at its own
	// release and, if the round is in flight, waits for it — otherwise
	// its release could complete before the captured data reaches the
	// home, and the next lock holder would read stale data.

	arm := finvAckTeardown
	switch {
	case s.cfg.Costs.UpdateProtocol:
		arm = finvUpdateCapture
	case cp.invOneW:
		arm = finvOneWRetain
	case cp.state == PWrite:
		arm = finvDiffTeardown
	}
	s.emitPageArgs(at, -1, cp.page, "FINISHINV", [3]int64{arm, int64(cp.ssmp), b2i(isHome)},
		"ssmp %d state=%v oneW=%v", cp.ssmp, cp.state, cp.invOneW)
	if s.cfg.Costs.UpdateProtocol {
		// Update protocol: capture the copy's modifications but keep
		// the copy itself; the round's refresh phase will overwrite it
		// with the merged image. The TLB shootdown has already
		// happened, so subsequent writes re-fault (cheap local fills)
		// and re-enter the delayed update queues.
		var d Diff
		var db *DiffBuf
		if cp.state == PWrite && !isHome {
			at = s.net.Extend(o, at, sim.Time(s.cfg.PageSize)*c.DiffPerByte)
			db = getDiffBuf()
			d = db.Compute(cp.twin, cp.frame.Data)
			s.retwin(cp)
			s.st.Count("upd.diff", 1)
		}
		cp.tlbDir = 0
		s.replyInv(sp, o, diffReply, d, db, false, at)
		s.unlock(cp, at)
		return
	}

	switch {
	case cp.invOneW:
		// Single-writer optimization: no diff scan is charged and the
		// full page's bandwidth is paid (the paper's bandwidth-for-
		// computation trade), the twin is refreshed, and the copy stays
		// cached with state WRITE — the next local fault refills the
		// TLB cheaply. The home applies the transfer as a diff, not a
		// page overwrite: an upgrade's WNOTIFY can race the REL, making
		// a "single-writer" round also carry a concurrent diff that a
		// whole-page copy would clobber.
		at = s.net.Extend(o, at, sim.Time(s.cfg.PageSize)*c.TwinPerByte)
		var d Diff
		var db *DiffBuf
		if !isHome {
			db = getDiffBuf()
			d = db.Compute(cp.twin, cp.frame.Data)
		}
		s.retwin(cp)
		cp.tlbDir = 0
		s.st.Count("1wdata", 1)
		s.replyInv(sp, o, oneWReply, d, db, false, at)

	case cp.state == PWrite:
		at = s.net.Extend(o, at, sim.Time(s.cfg.PageSize)*c.DiffPerByte)
		var d Diff
		var db *DiffBuf
		if isHome {
			// The home SSMP's writes are already in the home frame —
			// no diff travels, but they count as foreign data for the
			// retention decision below, exactly like a merged diff.
			sp.sawDiff = true
		} else {
			db = getDiffBuf()
			d = db.Compute(cp.twin, cp.frame.Data)
		}
		s.st.Count("diff", 1)
		s.st.Count("diffbytes", int64(d.Bytes(0)))
		s.teardown(ss, cp, isHome, true)
		s.replyInv(sp, o, diffReply, d, db, true, at)

	default: // PRead
		s.st.Count("ackinv", 1)
		s.teardown(ss, cp, isHome, true)
		s.replyInv(sp, o, ackReply, nil, nil, true, at)
	}
	s.unlock(cp, at)
}

// teardown frees the SSMP's copy of the page. The home SSMP's "copy" is
// the home frame itself, which survives; only the mapping goes. recycle
// returns a remote frame to the SSMP's allocator — only safe after a
// CleanPage has purged every cached line of the frame (the eager
// invalidation path does; the lazy acquire path does not and passes
// false).
func (s *System) teardown(ss *ssmpState, cp *clientPage, isHome, recycle bool) {
	ss.domain.Unregister(cp.frame)
	if recycle && !isHome {
		ss.frames.Recycle(cp.frame)
	}
	cp.frame = nil
	cp.dir = nil
	s.recycleTwin(cp)
	cp.tlbDir = 0
	cp.state = PInv
	cp.gen++ // a refetched copy is a new incarnation
}

// invReply is the kind of an invalidation reply.
type invReply uint8

const (
	ackReply  invReply = iota // ACK: read copy dropped
	diffReply                 // DIFF: twin/page diff attached
	oneWReply                 // 1WDATA: whole page's bandwidth, diff semantics
)

// replyInv sends the invalidation reply (ACK / DIFF / 1WDATA) to the
// Server. tornDown reports that this reply retires a copy incarnation
// (the Server counts them per SSMP for the WNOTIFY staleness check).
// db, when non-nil, is the pooled buffer backing d; the Server recycles
// it after the merge.
func (s *System) replyInv(sp *serverPage, from int, kind invReply, d Diff, db *DiffBuf, tornDown bool, at sim.Time) {
	c := &s.cfg.Costs
	bytes := c.CtrlBytes
	switch kind {
	case diffReply:
		bytes += d.Bytes(c.DiffHdrByte)
	case oneWReply:
		if len(d) > 0 || from != sp.homeProc {
			bytes += s.cfg.PageSize
		}
	}
	// The label folds in the payload digest: two states that differ only
	// in the contents of an in-flight reply must not look identical to
	// the model checker's pending-event hash. Never computed on normal
	// runs (no chooser armed).
	aux := int64(kind) | b2i(tornDown)<<4
	if s.eng.Choosing() && len(d) > 0 {
		aux |= int64(d.Checksum()<<8) >> 8 << 8 // keep kind+teardown in the low byte
	}
	s.net.SendTagged(sim.Label{Kind: "IREPLY", Page: int64(sp.page), Src: from, Dst: sp.homeProc, Aux: aux},
		from, sp.homeProc, at, bytes, 0, func(at2 sim.Time) {
			s.onInvReply(sp, from, kind, d, db, tornDown, at2)
		})
}

// onInvReply is the Server's ACK/DIFF/1WDATA handler (arcs 22–23): merge
// incoming modifications into the home frame; when the last reply
// arrives, finish the release round. from is the replying Remote Client's
// processor.
func (s *System) onInvReply(sp *serverPage, from int, kind invReply, d Diff, db *DiffBuf, tornDown bool, at sim.Time) {
	c := &s.cfg.Costs
	s.emitPageArgs(at, -1, sp.page, "INVREPLY", [3]int64{int64(kind), int64(s.ssmpOf(from)), b2i(tornDown)},
		"kind=%d diff=%d torn=%v count->%d", kind, len(d), tornDown, sp.count-1)
	if tornDown {
		// One more incarnation of this SSMP's copy is fully retired;
		// WNOTIFYs naming earlier incarnations are stale from now on.
		sp.rmtGet(s.ssmpOf(from)).gens++
	}
	if kind == ackReply && sp.keepWriter >= 0 && s.ssmpOf(from) == sp.keepWriter {
		// The supposedly retained single writer reports its copy already
		// gone: its write_dir bit was a phantom. That happens when a
		// WNOTIFY is delayed past the release round that captured the
		// copy — the late notification re-registers an SSMP that holds
		// nothing. Retention would then write the phantom back into
		// write_dir at finishRel, where the single-writer test would
		// retain it again on every subsequent round, forever. Drop the
		// retention; the round ends with clean directories.
		sp.keepWriter = -1
		s.st.Count("1wphantom", 1)
	}
	if len(d) > 0 {
		// A 1WDATA transfer occupies the home for the full page; a
		// DIFF only for its changed bytes.
		mergeBytes := d.Bytes(0)
		if kind == oneWReply {
			mergeBytes = s.cfg.PageSize
		}
		at = s.net.Extend(sp.homeProc, at,
			c.MergeWork+sim.Time(mergeBytes)*c.ApplyPerByte)
		d.Apply(sp.frame.Data)
		if kind == oneWReply {
			s.st.Count("merge.page", 1)
		} else {
			s.st.Count("merge.diff", 1)
			sp.sawDiff = true
		}
	}
	putDiffBuf(db)
	sp.count--
	if len(sp.invQueue) > 0 {
		s.dispatchInv(sp, at)
		return
	}
	if sp.count == 0 {
		s.finishRel(sp, at)
	}
}

// finishRel completes a release round (arc 23): reset the directories
// (re-registering a retained single-writer copy — the printed table
// drops it, which would strand a stale copy), RACK every queued
// releaser, and serve queued replication requests.
func (s *System) finishRel(sp *serverPage, at sim.Time) {
	if s.cfg.Costs.UpdateProtocol {
		targets := s.dirTargets(sp, s.ssmpOf(sp.homeProc))
		if !sp.refreshDone && len(targets) != 0 {
			sp.refreshDone = true
			// Refresh phase: push the merged image to every copy; the
			// round completes only when all have acknowledged, so no
			// post-release lock grant can read a stale copy.
			sp.refreshing = len(targets)
			img := sp.frame.Snapshot()
			for _, r := range targets {
				s.sendRefresh(sp, r, img, at)
			}
			return
		}
		sp.refreshDone = false
		sp.keepWriter = -1
		sp.sawDiff = false
		sp.homeDirty = false
		// Unlike invalidate mode, copies persist and are never
		// re-served, so the serve-time shootdown of the home SSMP's
		// write mappings never recurs. Re-arm it here: the next home
		// in-place write must fault back into a delayed update queue,
		// or the persistent remote copies would go permanently stale.
		homeSSMP := s.ssmpOf(sp.homeProc)
		if hcp := s.ssmps[homeSSMP].pages.get(sp.page); hcp != nil && hcp.state == PWrite && hcp.tlbDir != 0 {
			n := 0
			for t := hcp.tlbDir; t != 0; t &= t - 1 {
				q := s.ssmpBase(homeSSMP) + bits.TrailingZeros64(t)
				s.tlbs[q].Invalidate(sp.page)
				n++
			}
			hcp.tlbDir = 0
			s.st.Count("upd.homeshootdown", int64(n))
			s.net.Extend(sp.homeProc, at, sim.Time(n)*s.cfg.Costs.PinvWork)
		}
		// Directories persist: the copies are still out there, valid.
		if !sp.writeDir.empty() {
			sp.state = sWrite
		} else {
			sp.state = sRead
		}
		rel := sp.pendRel
		sp.pendRel = nil
		for _, rp := range rel {
			s.sendRack(sp, rp, at)
		}
		reqs := sp.pendReq
		sp.pendReq = nil
		for _, rq := range reqs {
			s.serveData(sp, rq.cp, s.procs[rq.proc], rq.write, at)
		}
		rerel := sp.pendReRel
		sp.pendReRel = nil
		for _, rp := range rerel {
			s.st.Count("rel.requeued", 1)
			s.onRel(sp, rp, -1, false, at)
		}
		return
	}
	if sp.keepWriter >= 0 && (sp.sawDiff || sp.homeDirty) && sp.keepWriter != s.ssmpOf(sp.homeProc) {
		// Retention is only sound if nothing but the keeper's own data
		// merged this round. A racing upgrade's diff or the home
		// SSMP's in-place stores make the retained copy stale; demote
		// it with a follow-up INV before the round completes (and thus
		// before any RACK — so no post-release lock grant can read the
		// stale copy).
		s.emitPageArgs(at, -1, sp.page, "DEMOTE", [3]int64{int64(sp.keepWriter), 0, 0},
			"retained ssmp %d", sp.keepWriter)
		s.st.Count("1wdemote", 1)
		sp.invQueue = append(sp.invQueue, invTarget{ssmp: sp.keepWriter, oneW: false})
		sp.keepWriter = -1
		sp.sawDiff = false
		sp.count = 1
		s.dispatchInv(sp, at)
		return
	}
	sp.sawDiff = false
	sp.homeDirty = false
	s.emitPageArgs(at, -1, sp.page, "FINISHREL",
		[3]int64{int64(sp.keepWriter), int64(len(sp.pendRel)), int64(len(sp.pendReq))},
		"keep=%d pendRel=%v pendReq=%v", sp.keepWriter, sp.pendRel, sp.pendReq)
	sp.readDir.clear()
	sp.writeDir.clear()
	sp.state = sRead
	if sp.keepWriter >= 0 {
		sp.writeDir.add(sp.keepWriter, s.dirThresh, s.dirGrain)
		sp.state = sWrite
		sp.keepWriter = -1
	}
	if k := s.cfg.Costs.MigrateAfter; k > 0 && sp.writeDir.empty() && sp.readDir.empty() &&
		sp.streak >= k && sp.lastReq != s.ssmpOf(sp.homeProc) && len(sp.pendReq) == 0 {
		s.migrateHome(sp, sp.lastReq, at)
	}
	rel := sp.pendRel
	sp.pendRel = nil
	for _, rp := range rel {
		s.sendRack(sp, rp, at)
	}
	reqs := sp.pendReq
	sp.pendReq = nil
	for _, rq := range reqs {
		s.serveData(sp, rq.cp, s.procs[rq.proc], rq.write, at)
	}
	// Releases that arrived after their SSMP's capture start over as a
	// fresh round (the first re-REL opens it; the rest fold in safely,
	// since every capture of the new round postdates their writes).
	rerel := sp.pendReRel
	sp.pendReRel = nil
	for _, rp := range rerel {
		s.st.Count("rel.requeued", 1)
		s.onRel(sp, rp, -1, false, at)
	}
}

// sendRefresh pushes the merged page image to one copy (update
// protocol); the copy replays its own post-capture writes on top and
// acknowledges.
func (s *System) sendRefresh(sp *serverPage, r int, img []byte, at sim.Time) {
	rc := sp.rmtGet(r)
	cp, o := rc.cp, int(rc.owner)
	s.st.Count("upd.refresh", 1)
	s.net.Send(sp.homeProc, o, at, s.cfg.PageSize+s.cfg.Costs.CtrlBytes, 0,
		func(at2 sim.Time) {
			s.lockHandler(cp, at2, func(at3 sim.Time) {
				if cp.frame != nil && (cp.state == PWrite || cp.state == PRead) {
					c := &s.cfg.Costs
					at3 = s.net.Extend(s.clientOwner(cp), at3,
						c.MergeWork+sim.Time(s.cfg.PageSize)*c.ApplyPerByte)
					if cp.state == PWrite && cp.twin != nil {
						db := getDiffBuf()
						local := db.Compute(cp.twin, cp.frame.Data)
						cp.frame.CopyFrom(img)
						local.Apply(cp.frame.Data)
						copy(cp.twin, img)
						putDiffBuf(db)
					} else {
						cp.frame.CopyFrom(img)
					}
				}
				s.unlock(cp, at3)
				s.net.Send(s.clientOwner(cp), sp.homeProc, at3, s.cfg.Costs.CtrlBytes, 0,
					func(at4 sim.Time) {
						sp.refreshing--
						if sp.refreshing == 0 {
							s.finishRel(sp, at4)
						}
					})
			})
		})
}

// migrateHome moves the page's home to SSMP r (dynamic migration, an
// extension — see Costs.MigrateAfter; sequential-only, so the Server
// record's move between shard maps is safe). Called at a quiescent
// point: no copies outstanding, no queued requests. The old home SSMP's
// own mapping is torn down; its processors refetch like any other
// client.
func (s *System) migrateHome(sp *serverPage, r int, at sim.Time) {
	oldHome := sp.homeProc
	oldSSMP := s.ssmpOf(oldHome)
	newHome := s.ssmpBase(r) + int(uint64(sp.page)%uint64(s.cfg.ClusterSize))
	if hcp := s.ssmps[oldSSMP].pages.get(sp.page); hcp != nil && hcp.frame != nil {
		for t := hcp.tlbDir; t != 0; t &= t - 1 {
			q := s.ssmpBase(oldSSMP) + bits.TrailingZeros64(t)
			s.tlbs[q].Invalidate(sp.page)
		}
		s.ssmps[oldSSMP].domain.CleanPage(hcp.frame, hcp.dir)
		s.ssmps[oldSSMP].domain.Unregister(hcp.frame)
		hcp.tlbDir = 0
		hcp.frame = nil
		hcp.dir = nil
		s.recycleTwin(hcp)
		hcp.state = PInv
	}
	// The Server record follows the home: it lives in the home shard's
	// arena so lookups resolve through the (re-homed) address space.
	s.ssmps[oldSSMP].servers.del(sp.page)
	sp.homeProc = newHome
	sp.streak = 0
	s.space.Rehome(sp.page, newHome)
	s.ssmps[r].servers.put(sp.page, sp)
	s.st.Count("migrate", 1)
	s.emitPage(at, -1, sp.page, "MIGRATE", "home %d -> %d", oldHome, newHome)
	// The page image travels to the new home's memory.
	s.net.Send(oldHome, newHome, at, s.cfg.PageSize+s.cfg.Costs.CtrlBytes, 0, func(sim.Time) {})
}

// sendRack acknowledges a release to the waiting processor (arc 9–10).
func (s *System) sendRack(sp *serverPage, relProc int, at sim.Time) {
	s.st.Count("rack", 1)
	s.net.SendTagged(sim.Label{Kind: "RACK", Page: int64(sp.page), Src: sp.homeProc, Dst: relProc},
		sp.homeProc, relProc, at, s.cfg.Costs.CtrlBytes, 0, func(at2 sim.Time) {
			s.procs[relProc].Wake(at2)
		})
}
