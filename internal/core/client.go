package core

import (
	"fmt"

	"mgs/internal/cache"
	"mgs/internal/obs"
	"mgs/internal/sim"
	"mgs/internal/stats"
	"mgs/internal/vm"
)

// fault is the Local Client: it runs on the faulting processor and
// resolves a TLB fault on page v (Table 1 arcs 1–7). On return the TLB
// holds a sufficient mapping (the caller retries the access).
func (s *System) fault(p *sim.Proc, ss *ssmpState, v vm.Page, write bool) {
	// A fault is ordering-relevant: yield so every event and processor
	// segment at or before this clock settles first. Without this, a
	// processor that has run ahead can physically seize the page-table
	// lock "from the future", inverting virtual-time lock order and
	// charging enormous phantom waits to earlier faulters.
	p.Yield()
	// Attribute every cycle of this fault — entry, protocol waits, the
	// woken continuation — to the page being resolved.
	pk, pid := s.st.ProfSet(p.ID, obs.ObjPage, int64(v))
	defer s.st.ProfSet(p.ID, pk, pid)
	if s.Obs.Tracing() {
		// One Local Client engine span per fault, entry to resolution.
		t0 := p.Clock()
		defer func() {
			s.emitEngine(t0, p.ID, v, "LCLIENT", p.Clock()-t0, "proc %d write=%v", p.ID, write)
		}()
	}
	c := &s.cfg.Costs
	s.spend(p, stats.MGS, c.FaultEntry)
	if write {
		s.st.Count("fault.write", 1)
	} else {
		s.st.Count("fault.read", 1)
	}

	if s.cfg.Disabled {
		s.nullFill(p, ss, v, write)
		return
	}

	cp := ss.ensurePage(v)
	s.lockProc(cp, p, stats.MGS)

	switch {
	case cp.state == PWrite || (cp.state == PRead && !write):
		// Arc 1 / arcs 3,4: mapping exists locally; fill the TLB.
		s.spend(p, stats.MGS, c.TLBFill)
		s.emitPageArgs(p.Clock(), p.ID, v, "LOCALFILL", [3]int64{b2i(write), int64(cp.state), 0},
			"proc %d write=%v state=%v", p.ID, write, cp.state)
		s.st.Count("tlbfill.local", 1)
		priv := vm.Read
		if cp.state == PWrite && write {
			priv = vm.Write
		}
		s.insertTLB(ss, p.ID, v, priv)
		cp.tlbDir |= bit(s.within(p.ID))
		if write {
			ss.duqs[s.within(p.ID)].add(v)
			// Touch the Server record only when this SSMP is the home
			// (home state is home-shard state under parallel dispatch).
			if s.ssmpOf(s.space.HomeProc(v)) == cp.ssmp {
				s.server(v).homeDirty = true
			}
		}
		s.unlock(cp, p.Clock())

	case cp.state == PRead && write:
		// Arc 2: upgrade from read to write privilege.
		s.st.Count("upgrade", 1)
		cp.tlbDir |= bit(s.within(p.ID))
		s.spend(p, stats.MGS, s.net.SendCost())
		cpRef := cp
		s.net.SendTagged(sim.Label{Kind: "UPGRADE", Page: int64(v), Src: p.ID, Dst: cp.ownerProc},
			p.ID, cp.ownerProc, p.Clock(), c.CtrlBytes, c.UpWork,
			func(at sim.Time) { s.onUpgrade(cpRef, p, at) })
		s.parkCharge(p, stats.MGS) // woken by the UP_ACK handler
		// The UP_ACK handler filled the TLB, added the page to the
		// DUQ, and released the page-table lock.

	case cp.state == PInv:
		// Arc 5: no copy in this SSMP; request one from the Server.
		cp.state = PBusy
		if write {
			s.st.Count("wreq", 1)
		} else {
			s.st.Count("rreq", 1)
		}
		home := s.space.HomeProc(v)
		s.emitPageArgs(p.Clock(), p.ID, v, "REQSTART", [3]int64{b2i(write), 0, 0},
			"proc %d write=%v", p.ID, write)
		s.spend(p, stats.MGS, s.net.SendCost())
		cpRef, w := cp, write
		s.net.SendTagged(sim.Label{Kind: "REQ", Page: int64(v), Src: p.ID, Dst: home, Aux: b2i(write)},
			p.ID, home, p.Clock(), c.CtrlBytes, c.ReqWork,
			// The Server record is resolved inside the handler — on the
			// home shard — not at send time on the faulting shard.
			func(at sim.Time) { s.onRequest(s.server(v), cpRef, p, w, at) })
		s.parkCharge(p, stats.MGS) // woken by the RDAT/WDAT handler

	default:
		panic(fmt.Sprintf("core: fault on page %d in state %v with lock held", v, cp.state))
	}
}

// nullFill is the Disabled-mode fill: plain software virtual memory with
// no coherence protocol. Every page maps the home frame directly.
func (s *System) nullFill(p *sim.Proc, ss *ssmpState, v vm.Page, write bool) {
	cp := ss.ensurePage(v)
	if cp.state == PInv {
		sp := s.server(v)
		cp.frame = sp.frame
		cp.ownerProc = sp.homeProc
		cp.dir = s.newDir(cp)
		ss.domain.Register(cp.frame, cp.dir)
		cp.state = PWrite
	}
	s.spend(p, stats.User, s.cfg.Costs.NullFill)
	s.st.Count("tlbfill.null", 1)
	s.insertTLB(ss, p.ID, v, vm.Write)
	_ = write
}

// insertTLB fills p's software TLB, keeping the page's tlbDir mask in
// step when the fill evicts another mapping.
func (s *System) insertTLB(ss *ssmpState, proc int, v vm.Page, priv vm.Priv) {
	evicted, did := s.tlbs[proc].Insert(v, priv)
	if did {
		if old := ss.pages.get(evicted); old != nil {
			old.tlbDir &^= bit(s.within(proc))
		}
	}
}

// newDir builds the frame directory for cp using its permanent
// first-touch placement.
func (s *System) newDir(cp *clientPage) *cache.Dir {
	return cache.NewDir(s.within(cp.ownerProc), s.cfg.PageSize, s.cfg.CacheParams.LineSize)
}

// onUpgrade is the Remote Client's UPGRADE handler (arc 13), running on
// the processor owning the SSMP's copy. The requester holds the
// page-table lock, so this handler runs lock-free.
func (s *System) onUpgrade(cp *clientPage, requester *sim.Proc, at sim.Time) {
	c := &s.cfg.Costs
	o := cp.ownerProc
	homeProc := s.space.HomeProc(cp.page)
	isHome := cp.ssmp == s.ssmpOf(homeProc)
	s.emitEngine(at, -1, cp.page, "RCLIENT", 0, "owner %d for proc %d", o, requester.ID)
	s.emitPageArgs(at, requester.ID, cp.page, "UPGRADE",
		[3]int64{b2i(cp.state == PRead), int64(cp.ssmp), b2i(isHome)},
		"ssmp %d applied=%v", cp.ssmp, cp.state == PRead)
	if cp.state == PRead {
		if !isHome {
			at = s.net.Extend(o, at, sim.Time(s.cfg.PageSize)*c.TwinPerByte)
			cp.twin = s.newTwin(cp.frame)
			s.st.Count("twin", 1)
		}
		cp.state = PWrite
		if isHome {
			// The home SSMP writes the home frame in place; no twin,
			// no WNOTIFY — only the retention veto. (This runs on the
			// home shard, so touching the Server record is fine.)
			s.server(cp.page).homeDirty = true
		} else {
			// WNOTIFY to the Server (arc 18). The notification names a
			// specific copy incarnation: if it arrives after a release
			// round has captured and torn that copy down (the INV can be
			// queued on the page-table lock behind this very upgrade, or
			// the WNOTIFY can simply be delayed in the network), applying
			// it would plant a phantom write_dir bit for an SSMP that
			// holds nothing. A later round would then send an INV that
			// queues behind a re-faulting processor whose request is
			// pended behind that same round — deadlock. Stale
			// notifications are dropped instead: under-registering a
			// write copy only forgoes the single-writer optimization (the
			// round's DIFF reply still carries the data), while
			// over-registering is unsound.
			//
			// Staleness is judged against home-side state: the Server
			// counts the teardown replies it has received from each SSMP
			// (rmt[].gens), and a notification naming incarnation g is
			// current only while gens == g. The home may briefly judge a
			// live copy stale (its teardown reply from the round that
			// captured it still in flight ahead of this WNOTIFY) — then
			// the copy is still registered in read_dir, the running
			// round invalidates it anyway, and only the single-writer
			// optimization is forgone. Under lazy release consistency
			// teardowns never report home, so that mode keeps the
			// incarnation check on the copy itself (sequential-only, so
			// the cross-shard read is harmless there).
			ssmp := cp.ssmp
			gen := cp.gen
			s.net.SendTagged(sim.Label{Kind: "WNOTIFY", Page: int64(cp.page), Src: o, Dst: homeProc, Aux: gen},
				o, homeProc, at, c.CtrlBytes, 0, func(at2 sim.Time) {
					sp := s.server(cp.page)
					var stale bool
					if c.LazyRelease {
						stale = cp.gen != gen || cp.state != PWrite
					} else {
						stale = sp.rmtGens(ssmp) != gen
					}
					// Costs.MutStaleWNotify (model-checker mutation test
					// only) bypasses the staleness check, re-introducing
					// the phantom write_dir bit this check exists to kill.
					if stale && !s.cfg.Costs.MutStaleWNotify {
						s.st.Count("wnotify.stale", 1)
						s.emitPageArgs(at2, -1, sp.page, "WNOTIFY", [3]int64{1, int64(ssmp), gen},
							"from ssmp %d STALE (gen %d != home gens %d)", ssmp, gen, sp.rmtGens(ssmp))
						return
					}
					s.st.Count("wnotify", 1)
					s.emitPageArgs(at2, -1, sp.page, "WNOTIFY", [3]int64{0, int64(ssmp), gen},
						"from ssmp %d (state %d)", ssmp, sp.state)
					sp.readDir.remove(ssmp)
					sp.writeDir.add(ssmp, s.dirThresh, s.dirGrain)
					if sp.state == sRead {
						sp.state = sWrite
					}
				})
		}
	}
	// UP_ACK back to the requester (arc 7).
	v := cp.page
	s.net.SendTagged(sim.Label{Kind: "UPACK", Page: int64(v), Src: o, Dst: requester.ID},
		o, requester.ID, at, c.CtrlBytes, 0, func(at2 sim.Time) {
			ss := s.ssmps[cp.ssmp]
			ss.duqs[s.within(requester.ID)].add(v)
			s.insertTLB(ss, requester.ID, v, vm.Write)
			s.unlock(cp, at2)
			requester.Wake(at2)
		})
}
