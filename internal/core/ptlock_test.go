package core

import (
	"testing"

	"mgs/internal/sim"
	"mgs/internal/stats"
)

// ptlockFixture builds a machine and returns a clientPage to lock
// against (page state machinery is not exercised, only lk).
func ptlockFixture(t *testing.T, p, c int) (*testMachine, *clientPage) {
	t.Helper()
	tm := buildTest(p, c, 0, nil)
	va := tm.sys.Space().AllocPages(1024)
	return tm, tm.sys.ssmps[0].ensurePage(tm.sys.Space().PageOf(va))
}

func TestPTLockHandlerFastPath(t *testing.T) {
	tm, cp := ptlockFixture(t, 2, 2)
	var ran []sim.Time
	tm.eng.At(100, func() {
		tm.sys.lockHandler(cp, 100, func(at sim.Time) { ran = append(ran, at) })
	})
	tm.run(t)
	if len(ran) != 1 || ran[0] != 100 {
		t.Fatalf("free-lock handler ran at %v, want [100]", ran)
	}
	if !cp.lk.held {
		t.Fatal("lock not held after handler acquisition")
	}
}

func TestPTLockHandlerQueuesAndHandsOverFIFO(t *testing.T) {
	tm, cp := ptlockFixture(t, 2, 2)
	var order []int
	var times []sim.Time
	grab := func(id int) func(at sim.Time) {
		return func(at sim.Time) {
			order = append(order, id)
			times = append(times, at)
			// Hold across 50 cycles, then release.
			tm.eng.At(at+50, func() { tm.sys.unlock(cp, at+50) })
		}
	}
	tm.eng.At(100, func() {
		tm.sys.lockHandler(cp, 100, grab(1))
		tm.sys.lockHandler(cp, 100, grab(2))
		tm.sys.lockHandler(cp, 100, grab(3))
	})
	tm.run(t)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("handler order = %v, want FIFO [1 2 3]", order)
	}
	// Each handoff costs PTLockOp after the 50-cycle hold.
	step := 50 + tm.sys.cfg.Costs.PTLockOp
	if times[1] != times[0]+step || times[2] != times[1]+step {
		t.Fatalf("handoff times = %v, want +%d apart", times, step)
	}
	if cp.lk.held {
		t.Fatal("lock held after the last grabber released")
	}
}

func TestPTLockUnlockWithoutWaitersFrees(t *testing.T) {
	tm, cp := ptlockFixture(t, 2, 2)
	tm.eng.At(10, func() {
		tm.sys.lockHandler(cp, 10, func(at sim.Time) {
			tm.sys.unlock(cp, at)
		})
	})
	tm.run(t)
	if cp.lk.held {
		t.Fatal("lock held after release with empty wait list")
	}
}

func TestPTLockUnlockOfFreeLockPanics(t *testing.T) {
	tm, cp := ptlockFixture(t, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("unlock of free lock did not panic")
		}
	}()
	tm.sys.unlock(cp, 0)
}

func TestPTLockProcBlocksUntilHandlerReleases(t *testing.T) {
	tm, cp := ptlockFixture(t, 2, 2)
	// A handler takes the lock at t=0 and holds it until t=5000; proc 1
	// tries to lock from processor context and must wait.
	tm.eng.At(0, func() {
		tm.sys.lockHandler(cp, 0, func(at sim.Time) {
			tm.eng.At(5000, func() { tm.sys.unlock(cp, 5000) })
		})
	})
	var got sim.Time
	tm.bodies[1] = func(p *sim.Proc) {
		p.Sleep(10) // let the handler take the lock first
		tm.sys.lockProc(cp, p, stats.MGS)
		got = p.Clock()
		tm.sys.unlock(cp, p.Clock())
	}
	tm.run(t)
	if got < 5000 {
		t.Fatalf("proc acquired at %d, before handler released at 5000", got)
	}
}

func TestPTLockProcWaitChargedToCategory(t *testing.T) {
	tm, cp := ptlockFixture(t, 2, 2)
	tm.eng.At(0, func() {
		tm.sys.lockHandler(cp, 0, func(at sim.Time) {
			tm.eng.At(20_000, func() { tm.sys.unlock(cp, 20_000) })
		})
	})
	tm.bodies[1] = func(p *sim.Proc) {
		p.Sleep(10)
		tm.sys.lockProc(cp, p, stats.MGS)
		tm.sys.unlock(cp, p.Clock())
	}
	tm.run(t)
	if mgs := tm.st.Breakdown().PerProc[1][stats.MGS]; mgs < 15_000 {
		t.Fatalf("MGS charge = %d, want the ~20k lock wait attributed", mgs)
	}
}
