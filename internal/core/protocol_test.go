package core

import (
	"math/rand"
	"testing"

	"mgs/internal/cache"
	"mgs/internal/msg"
	"mgs/internal/sim"
	"mgs/internal/stats"
	"mgs/internal/vm"
)

// testMachine assembles a minimal DSSMP for protocol tests.
type testMachine struct {
	eng    *sim.Engine
	sys    *System
	st     *stats.Collector
	procs  []*sim.Proc
	bodies []func(p *sim.Proc)
}

func testCacheCosts() cache.Costs {
	return cache.Costs{Hit: 2, Local: 11, Remote: 38, TwoParty: 42, ThreeParty: 63, Software: 425, CleanPerLine: 20}
}

func buildTest(p, c int, delay sim.Time, mutate func(*Config)) *testMachine {
	eng := sim.NewEngine()
	tm := &testMachine{eng: eng, bodies: make([]func(*sim.Proc), p)}
	for i := 0; i < p; i++ {
		i := i
		tm.procs = append(tm.procs, eng.NewProc(i, 0, func(pr *sim.Proc) {
			if tm.bodies[i] != nil {
				tm.bodies[i](pr)
			}
		}))
	}
	mc := msg.Costs{SendOverhead: 40, HandlerEntry: 100, PerHop: 2, BytesPerCycle: 1, InterDelay: delay, InterOverhead: 100}
	net := msg.NewNetwork(eng, tm.procs, c, mc)
	st := stats.NewCollector(p)
	net.OnHandler = func(proc int, cyc sim.Time) { st.Charge(proc, stats.MGS, cyc) }
	space := vm.NewSpace(1024, p)
	cfg := Config{
		NProcs: p, ClusterSize: c, PageSize: 1024, TLBSize: 64,
		Costs: DefaultCosts(), CacheParams: cache.DefaultParams(), CacheCosts: testCacheCosts(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	tm.st = st
	tm.sys = New(eng, net, space, st, tm.procs, cfg)
	return tm
}

func (tm *testMachine) run(t *testing.T) {
	t.Helper()
	if err := tm.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// load64/store64 perform a full simulated access.
func load64(s *System, p *sim.Proc, va vm.Addr) uint64 {
	f, off := s.Access(p, va, false, false)
	return f.Load64(off)
}

func store64(s *System, p *sim.Proc, va vm.Addr, v uint64) {
	f, off := s.Access(p, va, true, false)
	f.Store64(off, v)
}

func TestLocalReadFaultAndRefill(t *testing.T) {
	tm := buildTest(4, 4, 0, nil) // one SSMP
	va := tm.sys.Space().AllocPages(1024)
	tm.sys.BackdoorStore64(va, 99)
	var got uint64
	tm.bodies[0] = func(p *sim.Proc) {
		got = load64(tm.sys, p, va)
	}
	tm.run(t)
	if got != 99 {
		t.Fatalf("read %d, want 99", got)
	}
	if tm.sys.Probe(0, tm.sys.Space().PageOf(va)) != PRead {
		t.Fatalf("page state = %v, want READ", tm.sys.Probe(0, tm.sys.Space().PageOf(va)))
	}
}

func TestWriteThenReadSameSSMP(t *testing.T) {
	tm := buildTest(4, 4, 0, nil)
	va := tm.sys.Space().AllocPages(1024)
	done := make(map[int]uint64)
	tm.bodies[0] = func(p *sim.Proc) { store64(tm.sys, p, va, 7) }
	tm.bodies[1] = func(p *sim.Proc) {
		p.Sleep(200000) // let proc 0 complete first in virtual time
		done[1] = load64(tm.sys, p, va)
	}
	tm.run(t)
	if done[1] != 7 {
		t.Fatalf("proc 1 read %d, want 7 (same-SSMP hardware sharing)", done[1])
	}
}

func TestCrossSSMPReleasePropagates(t *testing.T) {
	tm := buildTest(4, 2, 1000, nil) // 2 SSMPs of 2
	va := tm.sys.Space().AllocPages(1024)
	var got uint64
	tm.bodies[0] = func(p *sim.Proc) { // SSMP 0
		store64(tm.sys, p, va, 1234)
		tm.sys.ReleaseAll(p)
	}
	tm.bodies[2] = func(p *sim.Proc) { // SSMP 1
		p.Sleep(2_000_000)
		got = load64(tm.sys, p, va)
	}
	tm.run(t)
	if got != 1234 {
		t.Fatalf("remote read %d, want 1234", got)
	}
	if tm.sys.BackdoorLoad64(va) != 1234 {
		t.Fatalf("home copy = %d, want 1234", tm.sys.BackdoorLoad64(va))
	}
}

func TestMultipleWritersDiffMerge(t *testing.T) {
	tm := buildTest(4, 1, 500, nil) // 4 uniprocessor SSMPs: all-software DSM
	base := tm.sys.Space().AllocPages(1024)
	// Procs 1 and 2 write disjoint words of the same page, then release.
	tm.bodies[1] = func(p *sim.Proc) {
		store64(tm.sys, p, base+8, 111)
		tm.sys.ReleaseAll(p)
	}
	tm.bodies[2] = func(p *sim.Proc) {
		store64(tm.sys, p, base+16, 222)
		tm.sys.ReleaseAll(p)
	}
	tm.run(t)
	if got := tm.sys.BackdoorLoad64(base + 8); got != 111 {
		t.Fatalf("word 1 = %d, want 111", got)
	}
	if got := tm.sys.BackdoorLoad64(base + 16); got != 222 {
		t.Fatalf("word 2 = %d, want 222", got)
	}
	if tm.st.Counter("rel") == 0 {
		t.Fatal("no REL recorded")
	}
}

func TestUpgradePath(t *testing.T) {
	tm := buildTest(4, 2, 1000, nil)
	va := tm.sys.Space().AllocPages(1024)
	tm.sys.BackdoorStore64(va, 5)
	tm.bodies[2] = func(p *sim.Proc) { // SSMP 1, page home is SSMP 0
		v := load64(tm.sys, p, va) // read fault: RREQ
		store64(tm.sys, p, va, v+1)
		tm.sys.ReleaseAll(p)
	}
	tm.run(t)
	if got := tm.sys.BackdoorLoad64(va); got != 6 {
		t.Fatalf("home = %d, want 6", got)
	}
	if tm.st.Counter("upgrade") != 1 {
		t.Fatalf("upgrade count = %d, want 1", tm.st.Counter("upgrade"))
	}
	if tm.st.Counter("wnotify") != 1 {
		t.Fatalf("wnotify count = %d, want 1", tm.st.Counter("wnotify"))
	}
}

func TestSingleWriterOptimizationRetainsCopy(t *testing.T) {
	tm := buildTest(4, 2, 1000, nil)
	// Choose a page whose home is SSMP 0, write from SSMP 1.
	va := tm.sys.Space().AllocPages(1024)
	page := tm.sys.Space().PageOf(va)
	var faultsAfter int64
	tm.bodies[2] = func(p *sim.Proc) {
		store64(tm.sys, p, va, 1)
		tm.sys.ReleaseAll(p)
		before := tm.st.Counter("wreq")
		store64(tm.sys, p, va+8, 2) // refault: should be local fill, no WREQ
		faultsAfter = tm.st.Counter("wreq") - before
		tm.sys.ReleaseAll(p)
	}
	tm.run(t)
	if got := tm.sys.Probe(1, page); got != PWrite {
		t.Fatalf("writer SSMP state after release = %v, want WRITE (retained)", got)
	}
	if faultsAfter != 0 {
		t.Fatalf("re-write sent %d WREQs; single-writer copy should be retained", faultsAfter)
	}
	if tm.st.Counter("1wdata") < 1 {
		t.Fatalf("1wdata count = %d, want >= 1", tm.st.Counter("1wdata"))
	}
	if got := tm.sys.BackdoorLoad64(va + 8); got != 2 {
		t.Fatalf("home word = %d, want 2", got)
	}
}

func TestSingleWriterDisabledUsesDiff(t *testing.T) {
	tm := buildTest(4, 2, 1000, func(cfg *Config) { cfg.Costs.SingleWriter = false })
	va := tm.sys.Space().AllocPages(1024)
	page := tm.sys.Space().PageOf(va)
	tm.bodies[2] = func(p *sim.Proc) {
		store64(tm.sys, p, va, 1)
		tm.sys.ReleaseAll(p)
	}
	tm.run(t)
	if got := tm.sys.Probe(1, page); got != PInv {
		t.Fatalf("writer SSMP state = %v, want INV (no retention)", got)
	}
	if tm.st.Counter("1wdata") != 0 {
		t.Fatal("1wdata sent with optimization disabled")
	}
	if tm.st.Counter("diff") == 0 {
		t.Fatal("no diff sent")
	}
	if got := tm.sys.BackdoorLoad64(va); got != 1 {
		t.Fatalf("home = %d, want 1", got)
	}
}

func TestStaleSingleWriterCopyInvalidatedByLaterRelease(t *testing.T) {
	// Regression for the write_dir-retention deviation: SSMP 1 writes
	// and releases (retains copy); SSMP 2 then writes and releases; a
	// read in SSMP 1 afterwards must refetch, not see its stale copy.
	tm := buildTest(6, 2, 1000, nil)
	va := tm.sys.Space().AllocPages(1024)
	var got uint64
	tm.bodies[2] = func(p *sim.Proc) { // SSMP 1
		store64(tm.sys, p, va, 10)
		tm.sys.ReleaseAll(p)
		p.Sleep(8_000_000)
		got = load64(tm.sys, p, va)
	}
	tm.bodies[4] = func(p *sim.Proc) { // SSMP 2
		p.Sleep(2_000_000)
		store64(tm.sys, p, va, 20)
		tm.sys.ReleaseAll(p)
	}
	tm.run(t)
	if got != 20 {
		t.Fatalf("SSMP 1 read %d after SSMP 2's release, want 20", got)
	}
}

func TestTLBShootdownForcesRefault(t *testing.T) {
	tm := buildTest(6, 2, 1000, nil)
	va := tm.sys.Space().AllocPages(1024)
	page := tm.sys.Space().PageOf(va)
	var homeRead uint64
	tm.bodies[0] = func(p *sim.Proc) { // home SSMP reader
		load64(tm.sys, p, va)
		if _, ok := tm.sys.TLB(0).Lookup(page); !ok {
			t.Error("mapping missing after read")
		}
		p.Sleep(4_000_000)
		// The home SSMP reads the home frame in place: its mapping may
		// survive the round, but it must see the merged data.
		homeRead = load64(tm.sys, p, va)
	}
	tm.bodies[4] = func(p *sim.Proc) { // SSMP 2 remote reader
		load64(tm.sys, p, va)
	}
	tm.bodies[2] = func(p *sim.Proc) { // SSMP 1 writer
		p.Sleep(1_000_000)
		store64(tm.sys, p, va, 3)
		tm.sys.ReleaseAll(p)
	}
	tm.run(t)
	if _, ok := tm.sys.TLB(4).Lookup(page); ok {
		t.Fatal("remote reader's TLB entry survived the release round's PINV")
	}
	if homeRead != 3 {
		t.Fatalf("home reader saw %d after the release, want 3", homeRead)
	}
}

func TestDisabledModeNoProtocol(t *testing.T) {
	tm := buildTest(4, 4, 0, func(cfg *Config) { cfg.Disabled = true })
	va := tm.sys.Space().AllocPages(1024)
	var got uint64
	tm.bodies[0] = func(p *sim.Proc) {
		store64(tm.sys, p, va, 42)
		tm.sys.ReleaseAll(p) // must be a no-op
	}
	tm.bodies[1] = func(p *sim.Proc) {
		p.Sleep(100000)
		got = load64(tm.sys, p, va)
	}
	tm.run(t)
	if got != 42 {
		t.Fatalf("read %d, want 42", got)
	}
	for _, k := range []string{"rreq", "wreq", "rel", "inv"} {
		if tm.st.Counter(k) != 0 {
			t.Fatalf("counter %s = %d in disabled mode", k, tm.st.Counter(k))
		}
	}
	if tm.st.Counter("tlbfill.null") == 0 {
		t.Fatal("no null fills recorded")
	}
}

func TestFalseSharingBothWritesSurvive(t *testing.T) {
	// Two SSMPs write adjacent 8-byte words (same cache line, same
	// page): the multiple-writer protocol must preserve both.
	tm := buildTest(4, 1, 200, nil)
	va := tm.sys.Space().AllocPages(1024)
	tm.bodies[0] = func(p *sim.Proc) {
		store64(tm.sys, p, va, 0xAAAA)
		tm.sys.ReleaseAll(p)
	}
	tm.bodies[1] = func(p *sim.Proc) {
		store64(tm.sys, p, va+8, 0xBBBB)
		tm.sys.ReleaseAll(p)
	}
	tm.run(t)
	if a := tm.sys.BackdoorLoad64(va); a != 0xAAAA {
		t.Fatalf("word 0 = %#x, want 0xAAAA", a)
	}
	if b := tm.sys.BackdoorLoad64(va + 8); b != 0xBBBB {
		t.Fatalf("word 1 = %#x, want 0xBBBB", b)
	}
}

// TestConcurrentReleaseSamePage: two SSMPs release the same page at
// nearly the same time; the second release folds into the round in
// progress and both must get RACKed (no deadlock, data intact).
func TestConcurrentReleaseSamePage(t *testing.T) {
	tm := buildTest(4, 1, 1000, nil)
	va := tm.sys.Space().AllocPages(1024)
	for i := 1; i <= 2; i++ {
		i := i
		tm.bodies[i] = func(p *sim.Proc) {
			store64(tm.sys, p, va+vm.Addr(8*i), uint64(i))
			tm.sys.ReleaseAll(p)
		}
	}
	tm.run(t)
	for i := 1; i <= 2; i++ {
		if got := tm.sys.BackdoorLoad64(va + vm.Addr(8*i)); got != uint64(i) {
			t.Fatalf("word %d = %d, want %d", i, got, i)
		}
	}
}

// TestProtocolStress drives a randomized, data-race-free workload:
// every processor owns a disjoint set of word slots scattered across
// shared pages (heavy false sharing), writes random values, releases at
// random points, and finally releases everything. The home copies must
// then hold every processor's last value. Runs across several machine
// shapes, twice each to confirm determinism.
func TestProtocolStress(t *testing.T) {
	shapes := []struct{ p, c int }{{4, 1}, {4, 2}, {8, 2}, {8, 4}, {8, 8}}
	for _, sh := range shapes {
		finalA := stressOnce(t, sh.p, sh.c, 77)
		finalB := stressOnce(t, sh.p, sh.c, 77)
		if finalA != finalB {
			t.Fatalf("P=%d C=%d: nondeterministic end time %d vs %d", sh.p, sh.c, finalA, finalB)
		}
	}
}

func stressOnce(t *testing.T, p, c int, seed int64) sim.Time {
	t.Helper()
	tm := buildTest(p, c, 700, nil)
	const npages = 6
	const slotsPerProc = 8
	base := tm.sys.Space().AllocPages(npages * 1024)
	want := make([][]uint64, p)
	slotVA := func(proc, slot int) vm.Addr {
		idx := slot*p + proc // interleave procs within pages
		return base + vm.Addr(idx*8)
	}
	// Ensure slots are disjoint: idx*8 ranges over distinct multiples
	// of 8 as long as slotsPerProc*p*8 <= npages*1024.
	if slotsPerProc*p*8 > npages*1024 {
		t.Fatal("slot layout overflows pages")
	}
	for i := 0; i < p; i++ {
		i := i
		want[i] = make([]uint64, slotsPerProc)
		rng := rand.New(rand.NewSource(seed + int64(i)))
		tm.bodies[i] = func(pr *sim.Proc) {
			for step := 0; step < 60; step++ {
				slot := rng.Intn(slotsPerProc)
				v := rng.Uint64()
				store64(tm.sys, pr, slotVA(i, slot), v)
				want[i][slot] = v
				if rng.Intn(7) == 0 {
					tm.sys.ReleaseAll(pr)
				}
				if rng.Intn(3) == 0 {
					// Read someone's slot; value unverifiable without
					// sync but must not wedge the protocol.
					load64(tm.sys, pr, slotVA(rng.Intn(p), rng.Intn(slotsPerProc)))
				}
			}
			tm.sys.ReleaseAll(pr)
		}
	}
	tm.run(t)
	for i := 0; i < p; i++ {
		for slot := 0; slot < slotsPerProc; slot++ {
			if want[i][slot] == 0 {
				continue
			}
			if got := tm.sys.BackdoorLoad64(slotVA(i, slot)); got != want[i][slot] {
				t.Fatalf("P=%d C=%d: proc %d slot %d = %#x, want %#x", p, c, i, slot, got, want[i][slot])
			}
		}
	}
	return tm.eng.Now()
}

// TestProbeAndAccessors exercises the introspection surface tools and
// tests rely on: Probe, DUQLen, TLB, CacheCounters, Config.
func TestProbeAndAccessors(t *testing.T) {
	tm := buildTest(4, 2, 500, nil)
	va := tm.sys.Space().AllocPages(1024)
	page := tm.sys.Space().PageOf(va)
	tm.bodies[2] = func(p *sim.Proc) {
		store64(tm.sys, p, va, 5)
		if got := tm.sys.DUQLen(2); got != 1 {
			t.Errorf("DUQLen(2) = %d, want 1 after a dirty write", got)
		}
		if st := tm.sys.Probe(1, page); st != PWrite {
			t.Errorf("Probe(ssmp 1) = %v, want WRITE", st)
		}
		if st := tm.sys.Probe(0, page); st != PInv {
			t.Errorf("Probe(ssmp 0) = %v, want INV", st)
		}
		if _, ok := tm.sys.TLB(2).Lookup(page); !ok {
			t.Error("TLB(2) missing mapping after write fill")
		}
		tm.sys.ReleaseAll(p)
		if got := tm.sys.DUQLen(2); got != 0 {
			t.Errorf("DUQLen(2) = %d after release, want 0", got)
		}
	}
	tm.run(t)
	if cfg := tm.sys.Config(); cfg.NProcs != 4 || cfg.ClusterSize != 2 {
		t.Fatalf("Config = %+v", cfg)
	}
	cc := tm.sys.CacheCounters()
	if cc.Accesses() == 0 {
		t.Fatal("CacheCounters saw no traffic")
	}
	if names := [4]string{PInv.String(), PRead.String(), PWrite.String(), PBusy.String()}; names != [4]string{"INV", "READ", "WRITE", "BUSY"} {
		t.Fatalf("state names = %v", names)
	}
}
