package core

import (
	"testing"

	"mgs/internal/sim"
	"mgs/internal/vm"
)

// TestHomeMigrationFollowsDominantUser: a page homed in SSMP 0 but used
// exclusively by SSMP 1 should migrate there once the streak threshold
// is met, after which the user's faults are served home-locally.
func TestHomeMigrationFollowsDominantUser(t *testing.T) {
	tm := buildTest(4, 2, 1000, func(cfg *Config) {
		cfg.Costs.MigrateAfter = 3
		// Disable retention so each release tears the copy down and the
		// refetch stream is visible to the migration heuristic.
		cfg.Costs.SingleWriter = false
	})
	va := tm.sys.Space().AllocPages(1024) // page 1, home proc 1 (SSMP 0)
	page := tm.sys.Space().PageOf(va)
	tm.bodies[2] = func(p *sim.Proc) { // SSMP 1, the dominant user
		for k := 0; k < 8; k++ {
			store64(tm.sys, p, va+8, uint64(k+1))
			tm.sys.ReleaseAll(p) // teardown: next touch refetches
			p.Sleep(50_000)
		}
	}
	tm.run(t)
	if got := tm.st.Counter("migrate"); got != 1 {
		t.Fatalf("migrations = %d, want 1", got)
	}
	if home := tm.sys.Space().HomeProc(page); home/2 != 1 {
		t.Fatalf("page home proc %d, want in SSMP 1", home)
	}
	if got := tm.sys.BackdoorLoad64(va + 8); got != 8 {
		t.Fatalf("home data = %d, want 8", got)
	}
	// After migration the user's serves are home-local.
	if tm.st.Counter("rdat.home") == 0 {
		t.Fatal("no home-local serves after migration")
	}
}

// TestHomeMigrationKeepsDataCorrect hammers a migrating page from two
// SSMPs with releases; every write must survive every migration.
func TestHomeMigrationKeepsDataCorrect(t *testing.T) {
	tm := buildTest(6, 2, 800, func(cfg *Config) {
		cfg.Costs.MigrateAfter = 2
		cfg.Costs.SingleWriter = false
	})
	va := tm.sys.Space().AllocPages(1024)
	want := map[int]uint64{}
	for _, pr := range []int{0, 2, 4} {
		pr := pr
		tm.bodies[pr] = func(p *sim.Proc) {
			for k := 0; k < 12; k++ {
				v := uint64(pr*100 + k)
				store64(tm.sys, p, va+vm2(pr), v)
				want[pr] = v
				tm.sys.ReleaseAll(p)
				p.Sleep(sim.Time(20_000 + pr*7000))
			}
		}
	}
	tm.run(t)
	for _, pr := range []int{0, 2, 4} {
		if got := tm.sys.BackdoorLoad64(va + vm2(pr)); got != want[pr] {
			t.Fatalf("proc %d word = %d, want %d", pr, got, want[pr])
		}
	}
	t.Logf("migrations: %d", tm.st.Counter("migrate"))
}

func vm2(pr int) vm.Addr { return vm.Addr(8 * (pr + 1)) }
