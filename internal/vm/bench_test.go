package vm

import "testing"

// benchSink keeps the compiler from eliding benchmark loop bodies.
var benchSink Priv

// BenchmarkTLBLookup measures the hit path of a full software TLB — the
// cost every simulated memory access pays before anything else.
func BenchmarkTLBLookup(b *testing.B) {
	tlb := NewTLB(64)
	for p := Page(0); p < 64; p++ {
		tlb.Insert(p, Read)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var pr Priv
	for i := 0; i < b.N; i++ {
		v, _ := tlb.Lookup(Page(i & 63))
		pr |= v
	}
	benchSink = pr
}

// BenchmarkTLBLookupMiss measures the miss path (page absent).
func BenchmarkTLBLookupMiss(b *testing.B) {
	tlb := NewTLB(64)
	for p := Page(0); p < 64; p++ {
		tlb.Insert(p, Read)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var pr Priv
	for i := 0; i < b.N; i++ {
		v, _ := tlb.Lookup(Page(1000 + i&63))
		pr |= v
	}
	benchSink = pr
}

// BenchmarkTLBInsertEvict measures steady-state fills of a full TLB,
// each one displacing the FIFO-oldest entry.
func BenchmarkTLBInsertEvict(b *testing.B) {
	tlb := NewTLB(64)
	for p := Page(0); p < 64; p++ {
		tlb.Insert(p, Read)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tlb.Insert(Page(64+i), Read)
	}
}

// TestLookupZeroAllocs pins the //mgs:noalloc contract of the TLB hit
// path: every simulated memory access goes through Lookup.
func TestLookupZeroAllocs(t *testing.T) {
	tlb := NewTLB(64)
	for i := 0; i < 32; i++ {
		tlb.Insert(Page(i), Read)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 40; i++ {
			tlb.Lookup(Page(i))
		}
	})
	if allocs != 0 {
		t.Errorf("TLB.Lookup allocated %.1f times per op, want 0", allocs)
	}
}
