package vm

import (
	"testing"
	"testing/quick"
)

func TestLayoutArithmetic(t *testing.T) {
	l := NewLayout(1024)
	if l.PageSize() != 1024 {
		t.Fatalf("PageSize = %d", l.PageSize())
	}
	cases := []struct {
		a    Addr
		page Page
		off  int
	}{
		{0, 0, 0}, {1023, 0, 1023}, {1024, 1, 0}, {5000, 4, 904},
	}
	for _, c := range cases {
		if got := l.PageOf(c.a); got != c.page {
			t.Errorf("PageOf(%d) = %d, want %d", c.a, got, c.page)
		}
		if got := l.Offset(c.a); got != c.off {
			t.Errorf("Offset(%d) = %d, want %d", c.a, got, c.off)
		}
	}
	if l.Base(4) != 4096 {
		t.Errorf("Base(4) = %d", l.Base(4))
	}
}

func TestLayoutRoundTripProperty(t *testing.T) {
	l := NewLayout(4096)
	f := func(a uint32) bool {
		addr := Addr(a)
		return l.Base(l.PageOf(addr))+Addr(l.Offset(addr)) == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBadPageSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two page size")
		}
	}()
	NewLayout(1000)
}

func TestSpaceAllocAlignment(t *testing.T) {
	s := NewSpace(1024, 32)
	a := s.Alloc(56, 8)
	b := s.Alloc(56, 8)
	if a%8 != 0 || b%8 != 0 {
		t.Fatalf("unaligned: %d %d", a, b)
	}
	if b != a+56 {
		t.Fatalf("objects not packed: a=%d b=%d", a, b)
	}
	c := s.AllocPages(100)
	if s.Offset(c) != 0 {
		t.Fatalf("AllocPages not page aligned: %d", c)
	}
}

func TestSpaceAddressZeroUnused(t *testing.T) {
	s := NewSpace(1024, 4)
	if a := s.Alloc(8, 8); a == 0 {
		t.Fatal("allocator handed out address 0")
	}
}

func TestHomeProcInterleaves(t *testing.T) {
	s := NewSpace(1024, 8)
	for p := Page(0); p < 64; p++ {
		if got := s.HomeProc(p); got != int(p%8) {
			t.Fatalf("HomeProc(%d) = %d, want %d", p, got, p%8)
		}
	}
}

func TestTLBBasic(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Insert(1, Read)
	if pr, ok := tlb.Lookup(1); !ok || pr != Read {
		t.Fatalf("Lookup(1) = %v,%v", pr, ok)
	}
	if _, ok := tlb.Lookup(2); ok {
		t.Fatal("unexpected hit on page 2")
	}
	tlb.Insert(1, Write) // upgrade in place
	if pr, _ := tlb.Lookup(1); pr != Write {
		t.Fatalf("after upgrade, priv = %v", pr)
	}
	if tlb.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tlb.Len())
	}
}

func TestTLBFIFOEviction(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Insert(1, Read)
	tlb.Insert(2, Read)
	ev, did := tlb.Insert(3, Read)
	if !did || ev != 1 {
		t.Fatalf("evicted (%d,%v), want (1,true)", ev, did)
	}
	if _, ok := tlb.Lookup(1); ok {
		t.Fatal("page 1 should be evicted")
	}
	for _, p := range []Page{2, 3} {
		if _, ok := tlb.Lookup(p); !ok {
			t.Fatalf("page %d missing", p)
		}
	}
}

func TestTLBInvalidateThenEvict(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Insert(1, Read)
	tlb.Insert(2, Read)
	if !tlb.Invalidate(1) {
		t.Fatal("Invalidate(1) = false")
	}
	if tlb.Invalidate(1) {
		t.Fatal("double Invalidate(1) = true")
	}
	// Insert must skip the stale FIFO slot for page 1.
	ev, did := tlb.Insert(3, Read)
	if did {
		t.Fatalf("unexpected eviction of %d; room existed", ev)
	}
	ev, did = tlb.Insert(4, Read)
	if !did || ev != 2 {
		t.Fatalf("evicted (%d,%v), want (2,true)", ev, did)
	}
}

func TestTLBInvalidateAll(t *testing.T) {
	tlb := NewTLB(4)
	for p := Page(0); p < 4; p++ {
		tlb.Insert(p, Write)
	}
	tlb.InvalidateAll()
	if tlb.Len() != 0 {
		t.Fatalf("Len = %d after InvalidateAll", tlb.Len())
	}
	tlb.Insert(9, Read)
	if _, ok := tlb.Lookup(9); !ok {
		t.Fatal("TLB unusable after InvalidateAll")
	}
}

// TestTLBNeverExceedsCapacity drives random traffic.
func TestTLBNeverExceedsCapacity(t *testing.T) {
	f := func(ops []uint8) bool {
		tlb := NewTLB(4)
		for i, op := range ops {
			p := Page(op % 16)
			switch i % 3 {
			case 0:
				tlb.Insert(p, Read)
			case 1:
				tlb.Insert(p, Write)
			case 2:
				tlb.Invalidate(p)
			}
			if tlb.Len() > 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetHomeOverridesInterleave(t *testing.T) {
	s := NewSpace(1024, 8)
	a := s.AllocPages(4096)
	p0 := s.PageOf(a)
	s.SetHome(p0, 5)
	s.SetHome(p0+1, 5) // same proc twice is fine
	if got := s.HomeProc(p0); got != 5 {
		t.Fatalf("HomeProc = %d, want 5", got)
	}
	if got := s.HomeProc(p0 + 2); got != int(uint64(p0+2)%8) {
		t.Fatalf("unplaced page home = %d, want interleaved", got)
	}
}

func TestSetHomeConflictPanics(t *testing.T) {
	s := NewSpace(1024, 8)
	s.SetHome(3, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on conflicting placement")
		}
	}()
	s.SetHome(3, 2)
}

func TestPrivString(t *testing.T) {
	cases := map[Priv]string{None: "TLB_INV", Read: "TLB_READ", Write: "TLB_WRITE"}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", p, got, want)
		}
	}
}

func TestBrkTracksAllocations(t *testing.T) {
	s := NewSpace(1024, 4)
	b0 := s.Brk()
	s.Alloc(100, 8)
	if s.Brk() < b0+100 {
		t.Fatalf("Brk did not advance: %#x -> %#x", b0, s.Brk())
	}
	s.AllocPages(1)
	if s.Brk()%1 != 0 || s.Brk() <= b0+100 {
		t.Fatalf("Brk after page alloc = %#x", s.Brk())
	}
}

func TestRehomeOverridesPlacement(t *testing.T) {
	s := NewSpace(1024, 8)
	s.SetHome(5, 2)
	s.Rehome(5, 6) // migration may move what SetHome pinned
	if got := s.HomeProc(5); got != 6 {
		t.Fatalf("home after Rehome = %d, want 6", got)
	}
	s.Rehome(9, 3) // and may place a previously interleaved page
	if got := s.HomeProc(9); got != 3 {
		t.Fatalf("home after fresh Rehome = %d, want 3", got)
	}
}

func TestSetHomeSameProcIdempotent(t *testing.T) {
	s := NewSpace(1024, 8)
	s.SetHome(4, 1)
	s.SetHome(4, 1) // same placement twice is fine
	if got := s.HomeProc(4); got != 1 {
		t.Fatalf("home = %d", got)
	}
}

func TestAllocPanics(t *testing.T) {
	s := NewSpace(1024, 4)
	for _, tc := range []struct {
		name     string
		n, align int
	}{
		{"zero size", 0, 8},
		{"negative size", -1, 8},
		{"zero align", 8, 0},
		{"non-power-of-two align", 8, 12},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			s.Alloc(tc.n, tc.align)
		}()
	}
}

func TestNewTLBPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTLB(0) did not panic")
		}
	}()
	NewTLB(0)
}

func TestTLBInsertUpgradesPrivilegeInPlace(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Insert(1, Read)
	tlb.Insert(2, Read)
	if _, evicted := tlb.Insert(1, Write); evicted {
		t.Fatal("privilege upgrade evicted an entry")
	}
	if pr, ok := tlb.Lookup(1); !ok || pr != Write {
		t.Fatalf("entry 1 = %v/%v, want TLB_WRITE", pr, ok)
	}
	// Upgrade must not consume a fresh FIFO slot: inserting a third
	// page now evicts page 1 (the oldest), not page 2.
	if ev, did := tlb.Insert(3, Read); !did || ev != 1 {
		t.Fatalf("evicted %d/%v, want page 1", ev, did)
	}
}
