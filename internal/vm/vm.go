// Package vm models the software virtual memory layer of MGS.
//
// Alewife has no hardware virtual memory; MGS performs address
// translation in software (paper §4.2.1), with a per-processor software
// TLB backed by per-SSMP page tables. This package provides the address
// arithmetic (Layout), the global virtual allocator with address-based
// home assignment (Space), and the software TLB model with its three
// mapping states TLB_INV / TLB_READ / TLB_WRITE (as Priv None/Read/
// Write). Page-table state beyond the TLB belongs to the MGS protocol
// itself and lives in internal/core.
package vm

import "fmt"

// Addr is a virtual byte address.
type Addr uint64

// Page is a virtual page number.
type Page uint64

// Priv is the privilege of a mapping.
type Priv uint8

const (
	// None: TLB_INV, no mapping.
	None Priv = iota
	// Read: TLB_READ, read-only mapping.
	Read
	// Write: TLB_WRITE, read-write mapping.
	Write
)

// String returns the paper's name for the TLB state.
func (p Priv) String() string {
	switch p {
	case Read:
		return "TLB_READ"
	case Write:
		return "TLB_WRITE"
	}
	return "TLB_INV"
}

// Layout holds the page-size arithmetic for a machine.
type Layout struct {
	pageSize int
	shift    uint
}

// NewLayout returns a layout for pages of pageSize bytes, which must be
// a power of two.
func NewLayout(pageSize int) Layout {
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		panic(fmt.Sprintf("vm: page size %d is not a power of two", pageSize))
	}
	s := uint(0)
	for 1<<s < pageSize {
		s++
	}
	return Layout{pageSize: pageSize, shift: s}
}

// PageSize returns the page size in bytes.
func (l Layout) PageSize() int { return l.pageSize }

// PageOf returns the page containing address a.
func (l Layout) PageOf(a Addr) Page { return Page(a >> l.shift) }

// Offset returns a's byte offset within its page.
func (l Layout) Offset(a Addr) int { return int(a) & (l.pageSize - 1) }

// Base returns the first address of page p.
func (l Layout) Base(p Page) Addr { return Addr(uint64(p) << l.shift) }

// Space is the global virtual address space: a bump allocator plus the
// fixed address-based home map ("the location of the home is based on
// the virtual address and remains fixed for all time", §3.1).
type Space struct {
	Layout
	nprocs int
	next   Addr
	// homes holds the explicit placements (distributed arrays),
	// page-indexed with -1 for "interleaved default". Pages are small
	// dense integers from the bump allocator, so the slice beats a map
	// on HomeProc — which runs inside every fault and Server lookup.
	homes []int32
}

// NewSpace creates an address space for a machine of nprocs processors.
// Address 0 is kept unmapped so that a zero Addr can serve as nil.
func NewSpace(pageSize, nprocs int) *Space {
	l := NewLayout(pageSize)
	return &Space{Layout: l, nprocs: nprocs, next: Addr(pageSize)}
}

// Alloc reserves n bytes aligned to align (which must be a power of two,
// at least 1) and returns the base address. Objects are packed — two
// small objects can share a page, which is exactly how false sharing
// arises (e.g. TSP's 56-byte path elements).
func (s *Space) Alloc(n int, align int) Addr {
	if n <= 0 {
		panic("vm: Alloc of non-positive size")
	}
	if align <= 0 || align&(align-1) != 0 {
		panic("vm: bad alignment")
	}
	a := (s.next + Addr(align) - 1) &^ (Addr(align) - 1)
	s.next = a + Addr(n)
	return a
}

// AllocPages reserves n bytes starting on a fresh page boundary.
func (s *Space) AllocPages(n int) Addr {
	return s.Alloc(n, s.pageSize)
}

// Brk returns the current top of the allocated space.
func (s *Space) Brk() Addr { return s.next }

// HomeProc returns the global processor whose memory is home for page p:
// an explicit placement if one was made, else interleaved by page number.
func (s *Space) HomeProc(p Page) int {
	if int(p) < len(s.homes) {
		if h := s.homes[p]; h >= 0 {
			return int(h)
		}
	}
	return int(uint64(p) % uint64(s.nprocs))
}

// placementSlot grows the placement table to cover page p and returns
// its index.
func (s *Space) placementSlot(p Page) int {
	for int(p) >= len(s.homes) {
		size := 2 * len(s.homes)
		if size < int(p)+1 {
			size = int(p) + 1
		}
		grown := make([]int32, size)
		copy(grown, s.homes)
		for i := len(s.homes); i < size; i++ {
			grown[i] = -1
		}
		s.homes = grown
	}
	return int(p)
}

// SetHome places page p's home on the given processor. Alewife's
// compiler laid distributed arrays out so each block lives in its
// owner's memory; applications use this for the same effect. Panics if
// the page has already been placed elsewhere.
func (s *Space) SetHome(p Page, proc int) {
	i := s.placementSlot(p)
	if old := s.homes[i]; old >= 0 && int(old) != proc {
		panic("vm: conflicting home placement")
	}
	s.homes[i] = int32(proc)
}

// Rehome moves page p's home (dynamic migration — an extension beyond
// the paper, whose homes are "fixed for all time").
func (s *Space) Rehome(p Page, proc int) { s.homes[s.placementSlot(p)] = int32(proc) }

// tlbSlot is one open-addressing slot.
type tlbSlot struct {
	page  Page
	priv  Priv
	state uint8 // slotEmpty, slotFull, or slotDead
}

const (
	slotEmpty uint8 = iota
	slotFull
	slotDead // tombstone: invalidated, probe chains continue through it
)

// TLB is one processor's software TLB: a small fully-associative
// structure with FIFO replacement. Replacement is deterministic.
//
// The mapping table is a fixed-capacity open-addressed hash table
// (linear probing, Fibonacci hashing, tombstoned deletes) rather than a
// Go map: Lookup sits on the simulator's hottest path — it runs once
// per simulated memory access — and the array probe is both faster than
// the map and allocation-free. The table is sized to at least 4×
// capacity so probe chains stay short; tombstones are compacted in
// place when they accumulate.
type TLB struct {
	cap   int
	shift uint // 64 - log2(len(slots)), for Fibonacci hashing
	slots []tlbSlot
	spare []tlbSlot // compaction scratch, swapped with slots
	live  int       // slots in state slotFull
	dead  int       // tombstones
	fifo  []Page
	head  int
	gen   uint64 // bumped on every mapping change (micro-cache validation)
	// Fills counts Insert calls; Evictions counts entries displaced.
	Fills, Evictions int64
}

// NewTLB returns a TLB holding up to capacity mappings.
func NewTLB(capacity int) *TLB {
	if capacity <= 0 {
		panic("vm: TLB capacity must be positive")
	}
	size := 8
	for size < 4*capacity {
		size *= 2
	}
	shift := uint(64)
	for 1<<(64-shift) < size {
		shift--
	}
	return &TLB{cap: capacity, shift: shift, slots: make([]tlbSlot, size)}
}

// hash spreads page numbers over the table (Fibonacci hashing: the
// multiplier is 2^64 / φ, odd, so all 64 input bits reach the top bits
// the shift keeps).
func (t *TLB) hash(p Page) uint64 {
	return (uint64(p) * 0x9E3779B97F4A7C15) >> t.shift
}

// Gen returns the mapping generation: any Insert, Invalidate, or
// InvalidateAll that changes the mapping set bumps it. Callers caching
// translation results revalidate against it.
func (t *TLB) Gen() uint64 { return t.gen }

// Lookup returns the privilege of the mapping for p, or (None, false) on
// a TLB miss.
//
//mgs:noalloc
func (t *TLB) Lookup(p Page) (Priv, bool) {
	mask := uint64(len(t.slots) - 1)
	for i := t.hash(p); ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.state == slotEmpty {
			return None, false
		}
		if s.state == slotFull && s.page == p {
			return s.priv, true
		}
	}
}

// find returns the slot index holding p, or -1.
func (t *TLB) find(p Page) int {
	mask := uint64(len(t.slots) - 1)
	for i := t.hash(p); ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.state == slotEmpty {
			return -1
		}
		if s.state == slotFull && s.page == p {
			return int(i)
		}
	}
}

// place stores a new mapping, reusing the first tombstone on p's probe
// chain if one exists. The caller guarantees p is absent and live < cap.
func (t *TLB) place(p Page, pr Priv) {
	mask := uint64(len(t.slots) - 1)
	target := -1
	for i := t.hash(p); ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.state == slotDead && target < 0 {
			target = int(i)
		}
		if s.state == slotEmpty {
			if target < 0 {
				target = int(i)
			}
			break
		}
	}
	s := &t.slots[target]
	if s.state == slotDead {
		t.dead--
	}
	*s = tlbSlot{page: p, priv: pr, state: slotFull}
	t.live++
	// Compact when tombstones choke the probe chains. Rebuilding from a
	// deterministic slot scan keeps runs reproducible.
	if t.live+t.dead > len(t.slots)*3/4 {
		t.compact()
	}
}

// compact rebuilds the table without tombstones, swapping into the
// spare buffer so steady-state compaction never allocates.
func (t *TLB) compact() {
	old := t.slots
	if t.spare == nil {
		t.spare = make([]tlbSlot, len(old))
	}
	t.slots = t.spare
	t.spare = old
	for i := range t.slots {
		t.slots[i] = tlbSlot{}
	}
	t.live, t.dead = 0, 0
	mask := uint64(len(t.slots) - 1)
	for _, s := range old {
		if s.state != slotFull {
			continue
		}
		i := t.hash(s.page)
		for t.slots[i].state == slotFull {
			i = (i + 1) & mask
		}
		t.slots[i] = s
		t.live++
	}
}

// Insert fills the mapping for p, evicting the oldest entry if full. It
// returns the evicted page and true if an eviction happened. Inserting
// an already-present page just updates its privilege.
func (t *TLB) Insert(p Page, pr Priv) (Page, bool) {
	t.Fills++
	t.gen++
	if i := t.find(p); i >= 0 {
		t.slots[i].priv = pr
		return 0, false
	}
	var evicted Page
	var did bool
	if t.live >= t.cap {
		// Pop FIFO entries until one still maps (others were
		// invalidated in place).
		for {
			old := t.fifo[t.head]
			t.head++
			if t.head == len(t.fifo) {
				t.fifo = t.fifo[:0]
				t.head = 0
			}
			if i := t.find(old); i >= 0 {
				t.slots[i].state = slotDead
				t.live--
				t.dead++
				evicted, did = old, true
				t.Evictions++
				break
			}
		}
	}
	t.place(p, pr)
	// Slide the FIFO down once the dead prefix dominates, so the queue's
	// backing array stays bounded by the live population.
	if t.head > 16 && t.head*2 >= len(t.fifo) {
		n := copy(t.fifo, t.fifo[t.head:])
		t.fifo = t.fifo[:n]
		t.head = 0
	}
	t.fifo = append(t.fifo, p)
	return evicted, did
}

// Invalidate removes the mapping for p, reporting whether it existed.
func (t *TLB) Invalidate(p Page) bool {
	i := t.find(p)
	if i < 0 {
		return false
	}
	t.slots[i].state = slotDead
	t.live--
	t.dead++
	t.gen++
	return true
}

// InvalidateAll clears the TLB.
func (t *TLB) InvalidateAll() {
	for i := range t.slots {
		t.slots[i] = tlbSlot{}
	}
	t.live, t.dead = 0, 0
	t.fifo = t.fifo[:0]
	t.head = 0
	t.gen++
}

// Len reports the number of live mappings.
func (t *TLB) Len() int { return t.live }
