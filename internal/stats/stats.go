// Package stats attributes simulated cycles to the four runtime
// components the paper's Figures 6–10 and 12 report: User (application
// work, software address translation, and hardware shared-memory
// stalls), Lock, Barrier, and MGS (all software coherence protocol
// time, including fault waits and protocol handler occupancy).
package stats

import (
	"fmt"
	"sort"
	"strings"

	"mgs/internal/sim"
)

// Category is one runtime component.
type Category uint8

const (
	// User: application cycles, translation, hardware memory stalls.
	User Category = iota
	// Lock: acquiring, holding queues for, and waiting on MGS locks.
	Lock
	// Barrier: executing and waiting in barriers.
	Barrier
	// MGS: software shared-memory protocol processing and fault waits.
	MGS

	// NumCategories is the number of categories.
	NumCategories
)

var categoryNames = [...]string{"User", "Lock", "Barrier", "MGS"}

// String returns the category name used in the paper's figures.
func (c Category) String() string { return categoryNames[c] }

// Fault is the fault-injection transport's accounting view: what the
// deterministic fault plan did to inter-SSMP traffic and what the
// recovery machinery (internal/msg reliable.go) paid to survive it.
// All zeros when no fault plan is attached.
type Fault struct {
	// Messages is the number of logical inter-SSMP messages that
	// traversed the fault layer (retransmissions excluded).
	Messages int64
	// Dropped counts transmission attempts lost in the network.
	Dropped int64
	// Duplicated counts attempts the network delivered twice.
	Duplicated int64
	// Delayed counts attempts held beyond their fault-free latency.
	Delayed int64
	// DupSuppressed counts deliveries the receiver's sequence check
	// recognized as replays and dropped before handler dispatch.
	DupSuppressed int64
	// Timeouts counts retransmission timers that fired unacknowledged.
	Timeouts int64
	// Retransmits counts retransmission attempts launched (equal to
	// Timeouts today; kept separate so a future fast-retransmit path
	// stays accountable).
	Retransmits int64
	// RetransBytes is the payload bytes carried by retransmissions.
	RetransBytes int64
	// Acks counts transport-level acknowledgments generated; AckDropped
	// of them were lost (forcing a timeout at the sender).
	Acks, AckDropped int64
	// DelayCycles sums the extra wire latency the plan injected.
	DelayCycles int64
	// RecoveryCycles sums, over delivered messages, the gap between the
	// fault-free arrival estimate and the actual first delivery — the
	// added protocol cycles paid to timeouts, backoff, and delays.
	RecoveryCycles int64
}

// Active reports whether any fault-layer activity was recorded.
func (f Fault) Active() bool { return f.Messages != 0 }

// String renders the view in one line.
func (f Fault) String() string {
	return fmt.Sprintf(
		"msgs=%d dropped=%d dup=%d delayed=%d dupsuppressed=%d timeouts=%d retrans=%d retransbytes=%d acks=%d ackdropped=%d delaycycles=%d recoverycycles=%d",
		f.Messages, f.Dropped, f.Duplicated, f.Delayed, f.DupSuppressed,
		f.Timeouts, f.Retransmits, f.RetransBytes, f.Acks, f.AckDropped,
		f.DelayCycles, f.RecoveryCycles)
}

// Collector accumulates per-processor cycle buckets and named event
// counters for one run.
type Collector struct {
	buckets  [][NumCategories]sim.Time
	mode     []Category
	counters map[string]int64

	// Fault is the fault-injection accounting view for the run; the
	// harness hands the transport a pointer to it at attach time.
	Fault Fault
}

// NewCollector returns a collector for nprocs processors, all starting
// in User mode.
func NewCollector(nprocs int) *Collector {
	return &Collector{
		buckets:  make([][NumCategories]sim.Time, nprocs),
		mode:     make([]Category, nprocs),
		counters: make(map[string]int64),
	}
}

// Mode returns processor p's current attribution mode.
func (c *Collector) Mode(p int) Category { return c.mode[p] }

// SetMode switches processor p's attribution mode, returning the
// previous mode so callers can restore it.
func (c *Collector) SetMode(p int, m Category) Category {
	prev := c.mode[p]
	c.mode[p] = m
	return prev
}

// Charge adds cycles to a specific bucket of processor p.
func (c *Collector) Charge(p int, cat Category, cycles sim.Time) {
	c.buckets[p][cat] += cycles
}

// ChargeMode adds cycles to processor p's current-mode bucket.
func (c *Collector) ChargeMode(p int, cycles sim.Time) {
	c.buckets[p][c.mode[p]] += cycles
}

// Count increments the named event counter.
func (c *Collector) Count(name string, delta int64) { c.counters[name] += delta }

// Counter returns the value of a named counter.
func (c *Collector) Counter(name string) int64 { return c.counters[name] }

// Counters returns all counters as sorted "name=value" strings.
func (c *Collector) Counters() []string {
	out := make([]string, 0, len(c.counters))
	for k, v := range c.counters {
		out = append(out, fmt.Sprintf("%s=%d", k, v))
	}
	sort.Strings(out)
	return out
}

// Breakdown is the aggregate result of a run.
type Breakdown struct {
	// PerProc[p][cat] is processor p's cycles in cat.
	PerProc [][NumCategories]sim.Time
	// Avg[cat] is the mean over processors.
	Avg [NumCategories]float64
	// Total[cat] sums over processors.
	Total [NumCategories]sim.Time
}

// Breakdown summarizes the collected buckets.
func (c *Collector) Breakdown() Breakdown {
	b := Breakdown{PerProc: make([][NumCategories]sim.Time, len(c.buckets))}
	copy(b.PerProc, c.buckets)
	n := float64(len(c.buckets))
	for _, pb := range c.buckets {
		for cat := Category(0); cat < NumCategories; cat++ {
			b.Total[cat] += pb[cat]
		}
	}
	for cat := Category(0); cat < NumCategories; cat++ {
		b.Avg[cat] = float64(b.Total[cat]) / n
	}
	return b
}

// AvgTotal returns the mean total busy cycles per processor.
func (b Breakdown) AvgTotal() float64 {
	var s float64
	for _, v := range b.Avg {
		s += v
	}
	return s
}

// String renders the breakdown in one line, components in figure order.
func (b Breakdown) String() string {
	var sb strings.Builder
	for cat := Category(0); cat < NumCategories; cat++ {
		if cat > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%s=%.0f", cat, b.Avg[cat])
	}
	return sb.String()
}
