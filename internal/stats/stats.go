// Package stats attributes simulated cycles to the four runtime
// components the paper's Figures 6–10 and 12 report: User (application
// work, software address translation, and hardware shared-memory
// stalls), Lock, Barrier, and MGS (all software coherence protocol
// time, including fault waits and protocol handler occupancy).
package stats

import (
	"fmt"
	"strings"

	"mgs/internal/obs"
	"mgs/internal/sim"
)

// Category is one runtime component.
type Category uint8

const (
	// User: application cycles, translation, hardware memory stalls.
	User Category = iota
	// Lock: acquiring, holding queues for, and waiting on MGS locks.
	Lock
	// Barrier: executing and waiting in barriers.
	Barrier
	// MGS: software shared-memory protocol processing and fault waits.
	MGS

	// NumCategories is the number of categories.
	NumCategories
)

var categoryNames = [...]string{"User", "Lock", "Barrier", "MGS"}

// String returns the category name used in the paper's figures.
func (c Category) String() string { return categoryNames[c] }

// Fault is the fault-injection transport's accounting view: what the
// deterministic fault plan did to inter-SSMP traffic and what the
// recovery machinery (internal/msg reliable.go) paid to survive it.
// All zeros when no fault plan is attached.
type Fault struct {
	// Messages is the number of logical inter-SSMP messages that
	// traversed the fault layer (retransmissions excluded).
	Messages int64
	// Dropped counts transmission attempts lost in the network.
	Dropped int64
	// Duplicated counts attempts the network delivered twice.
	Duplicated int64
	// Delayed counts attempts held beyond their fault-free latency.
	Delayed int64
	// DupSuppressed counts deliveries the receiver's sequence check
	// recognized as replays and dropped before handler dispatch.
	DupSuppressed int64
	// Timeouts counts retransmission timers that fired unacknowledged.
	Timeouts int64
	// Retransmits counts retransmission attempts launched (equal to
	// Timeouts today; kept separate so a future fast-retransmit path
	// stays accountable).
	Retransmits int64
	// RetransBytes is the payload bytes carried by retransmissions.
	RetransBytes int64
	// Acks counts transport-level acknowledgments generated; AckDropped
	// of them were lost (forcing a timeout at the sender).
	Acks, AckDropped int64
	// DelayCycles sums the extra wire latency the plan injected.
	DelayCycles int64
	// RecoveryCycles sums, over delivered messages, the gap between the
	// fault-free arrival estimate and the actual first delivery — the
	// added protocol cycles paid to timeouts, backoff, and delays.
	RecoveryCycles int64
}

// Active reports whether any fault-layer activity was recorded.
func (f Fault) Active() bool { return f.Messages != 0 }

// String renders the view in one line.
func (f Fault) String() string {
	return fmt.Sprintf(
		"msgs=%d dropped=%d dup=%d delayed=%d dupsuppressed=%d timeouts=%d retrans=%d retransbytes=%d acks=%d ackdropped=%d delaycycles=%d recoverycycles=%d",
		f.Messages, f.Dropped, f.Duplicated, f.Delayed, f.DupSuppressed,
		f.Timeouts, f.Retransmits, f.RetransBytes, f.Acks, f.AckDropped,
		f.DelayCycles, f.RecoveryCycles)
}

// Collector accumulates per-processor cycle buckets and named event
// counters for one run. Counters live in an obs.Registry (a private one
// by default); Use swaps in an observer's shared registry and arms the
// cycle-attribution profiler, so the collector doubles as the bridge
// between the simulation's charge sites and the observability spine.
type Collector struct {
	buckets [][NumCategories]sim.Time
	mode    []Category
	reg     *obs.Registry
	prof    *obs.Profiler

	// Fault is the fault-injection accounting view for the run; the
	// harness hands the transport a pointer to it at attach time.
	Fault Fault
}

// NewCollector returns a collector for nprocs processors, all starting
// in User mode, with a private metrics registry.
func NewCollector(nprocs int) *Collector {
	c := &Collector{
		buckets: make([][NumCategories]sim.Time, nprocs),
		mode:    make([]Category, nprocs),
		reg:     obs.NewRegistry(),
	}
	c.registerFaultGauges()
	return c
}

// Use attaches the collector to an observer: counters re-register onto
// the observer's registry and, when the observer has profiling enabled,
// every subsequent Charge/ChargeMode also feeds the cycle-attribution
// profiler. Call before the run starts (counters do not migrate).
func (c *Collector) Use(o *obs.Observer) {
	if o == nil {
		return
	}
	if r := o.Registry(); r != nil {
		c.reg = r
		c.registerFaultGauges()
	}
	c.prof = o.InitProfiler(len(c.buckets), int(NumCategories))
}

// Registry exposes the collector's metrics registry so protocol and
// sync layers can register their own gauges and histograms.
func (c *Collector) Registry() *obs.Registry { return c.reg }

// registerFaultGauges exposes the fault-transport accounting view as
// gauges, read live at snapshot time.
func (c *Collector) registerFaultGauges() {
	f := &c.Fault
	c.reg.Gauge("fault.msgs", func() int64 { return f.Messages })
	c.reg.Gauge("fault.dropped", func() int64 { return f.Dropped })
	c.reg.Gauge("fault.duplicated", func() int64 { return f.Duplicated })
	c.reg.Gauge("fault.delayed", func() int64 { return f.Delayed })
	c.reg.Gauge("fault.dupsuppressed", func() int64 { return f.DupSuppressed })
	c.reg.Gauge("fault.timeouts", func() int64 { return f.Timeouts })
	c.reg.Gauge("fault.retransmits", func() int64 { return f.Retransmits })
	c.reg.Gauge("fault.recoverycycles", func() int64 { return f.RecoveryCycles })
}

// ProfSet switches processor p's profiler attribution object, returning
// the previous object for restore. Nil-safe: with no profiler armed it
// is a no-op that returns zeros.
func (c *Collector) ProfSet(p int, kind obs.ObjKind, id int64) (obs.ObjKind, int64) {
	if c.prof == nil {
		return obs.ObjNone, 0
	}
	return c.prof.SetContext(p, kind, id)
}

// ProfContext returns processor p's current profiler attribution
// object. Nil-safe: with no profiler armed it returns zeros.
func (c *Collector) ProfContext(p int) (obs.ObjKind, int64) {
	if c.prof == nil {
		return obs.ObjNone, 0
	}
	return c.prof.Context(p)
}

// Profiling reports whether a cycle-attribution profiler is armed.
func (c *Collector) Profiling() bool { return c.prof != nil }

// Mode returns processor p's current attribution mode.
func (c *Collector) Mode(p int) Category { return c.mode[p] }

// SetMode switches processor p's attribution mode, returning the
// previous mode so callers can restore it.
func (c *Collector) SetMode(p int, m Category) Category {
	prev := c.mode[p]
	c.mode[p] = m
	return prev
}

// Charge adds cycles to a specific bucket of processor p. With a
// profiler armed, the same cycles are attributed to p's current object
// context, which is what keeps profiler totals and Breakdown in exact
// agreement.
func (c *Collector) Charge(p int, cat Category, cycles sim.Time) {
	c.buckets[p][cat] += cycles
	if c.prof != nil {
		c.prof.Charge(p, int(cat), cycles)
	}
}

// ChargeMode adds cycles to processor p's current-mode bucket.
func (c *Collector) ChargeMode(p int, cycles sim.Time) {
	cat := c.mode[p]
	c.buckets[p][cat] += cycles
	if c.prof != nil {
		c.prof.Charge(p, int(cat), cycles)
	}
}

// Count increments the named event counter.
func (c *Collector) Count(name string, delta int64) { c.reg.Add(name, delta) }

// Counter returns the value of a named counter.
func (c *Collector) Counter(name string) int64 { return c.reg.Counter(name).Value() }

// Counters returns all counters as sorted "name=value" strings.
func (c *Collector) Counters() []string { return c.reg.CounterStrings() }

// Breakdown is the aggregate result of a run.
type Breakdown struct {
	// PerProc[p][cat] is processor p's cycles in cat.
	PerProc [][NumCategories]sim.Time
	// Avg[cat] is the mean over processors.
	Avg [NumCategories]float64
	// Total[cat] sums over processors.
	Total [NumCategories]sim.Time
}

// Breakdown summarizes the collected buckets.
func (c *Collector) Breakdown() Breakdown {
	b := Breakdown{PerProc: make([][NumCategories]sim.Time, len(c.buckets))}
	copy(b.PerProc, c.buckets)
	n := float64(len(c.buckets))
	for _, pb := range c.buckets {
		for cat := Category(0); cat < NumCategories; cat++ {
			b.Total[cat] += pb[cat]
		}
	}
	for cat := Category(0); cat < NumCategories; cat++ {
		b.Avg[cat] = float64(b.Total[cat]) / n
	}
	return b
}

// AvgTotal returns the mean total busy cycles per processor.
func (b Breakdown) AvgTotal() float64 {
	var s float64
	for _, v := range b.Avg {
		s += v
	}
	return s
}

// String renders the breakdown in one line, components in figure order.
func (b Breakdown) String() string {
	var sb strings.Builder
	for cat := Category(0); cat < NumCategories; cat++ {
		if cat > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%s=%.0f", cat, b.Avg[cat])
	}
	return sb.String()
}
