package stats

import (
	"strings"
	"testing"
)

func TestModeSwitchAndCharge(t *testing.T) {
	c := NewCollector(2)
	if c.Mode(0) != User {
		t.Fatalf("initial mode = %v, want User", c.Mode(0))
	}
	c.ChargeMode(0, 100)
	prev := c.SetMode(0, MGS)
	if prev != User {
		t.Fatalf("SetMode returned %v, want User", prev)
	}
	c.ChargeMode(0, 50)
	c.SetMode(0, prev)
	c.Charge(1, Barrier, 30)

	b := c.Breakdown()
	if b.PerProc[0][User] != 100 || b.PerProc[0][MGS] != 50 {
		t.Fatalf("proc 0 buckets = %v", b.PerProc[0])
	}
	if b.PerProc[1][Barrier] != 30 {
		t.Fatalf("proc 1 buckets = %v", b.PerProc[1])
	}
	if b.Total[User] != 100 || b.Avg[User] != 50 {
		t.Fatalf("totals wrong: %v / %v", b.Total, b.Avg)
	}
	if got := b.AvgTotal(); got != 90 {
		t.Fatalf("AvgTotal = %v, want 90", got)
	}
}

func TestCounters(t *testing.T) {
	c := NewCollector(1)
	c.Count("rreq", 2)
	c.Count("rel", 1)
	c.Count("rreq", 1)
	if c.Counter("rreq") != 3 {
		t.Fatalf("rreq = %d", c.Counter("rreq"))
	}
	all := c.Counters()
	if len(all) != 2 || all[0] != "rel=1" || all[1] != "rreq=3" {
		t.Fatalf("Counters() = %v", all)
	}
}

func TestBreakdownString(t *testing.T) {
	c := NewCollector(1)
	c.Charge(0, User, 10)
	s := c.Breakdown().String()
	for _, want := range []string{"User=10", "Lock=0", "Barrier=0", "MGS=0"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestCategoryNames(t *testing.T) {
	want := map[Category]string{User: "User", Lock: "Lock", Barrier: "Barrier", MGS: "MGS"}
	for c, n := range want {
		if c.String() != n {
			t.Fatalf("%d.String() = %q, want %q", c, c.String(), n)
		}
	}
}
