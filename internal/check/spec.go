package check

import (
	"fmt"

	"mgs/internal/core"
	"mgs/internal/obs"
)

// Spec is the executable abstract specification of the MGS eager
// protocol: the Local Client / Remote Client page states of paper
// Table 2 and the Server directory states of Table 3, driven not by the
// implementation's pointers but by the structured protocol events core
// emits (obs.Event.Args). The explorer replays every schedule through
// it and fails on divergence, so the concrete protocol is checked as a
// refinement of this machine.
//
// The spec covers the default eager-invalidate protocol (with the
// single-writer optimization). The lazy and update variants and home
// migration are out of the checker's scope.
type Spec struct {
	nssmp int
	c     int   // cluster size (maps an event's processor to its SSMP)
	base  int64 // first page of the checked region
	pages []*specPage
	err   error
}

// specClient is one SSMP's abstract client state for a page.
type specClient struct {
	state    core.PageState
	gen      int64 // incarnation: bumped at every copy teardown
	homeGens int64 // teardowns the Server has been told of (INVREPLY torn=1)
}

// specPage is the abstract Server state for a page plus all client
// states.
type specPage struct {
	readDir  uint64
	writeDir uint64
	inRound  bool
	clients  []specClient
}

// NewSpec builds the abstract machine for a workload: every page in
// state INV at every SSMP, empty directories.
func NewSpec(w Workload) *Spec {
	s := &Spec{nssmp: w.P / w.C, c: w.C, pages: make([]*specPage, w.Pages)}
	for i := range s.pages {
		s.pages[i] = &specPage{clients: make([]specClient, s.nssmp)}
	}
	return s
}

// SetBase records the region's first page number, so event page IDs map
// to spec pages.
func (s *Spec) SetBase(page int64) { s.base = page }

// Err returns the first divergence between implementation and spec, or
// nil.
func (s *Spec) Err() error { return s.err }

func (s *Spec) fail(e obs.Event, format string, args ...any) {
	if s.err == nil {
		s.err = fmt.Errorf("spec divergence at t=%d page=%d %s: %s",
			e.T, e.ID, e.Name, fmt.Sprintf(format, args...))
	}
}

func (s *Spec) page(e obs.Event) *specPage {
	i := e.ID - s.base
	if i < 0 || i >= int64(len(s.pages)) {
		s.fail(e, "event for page outside the checked region")
		return nil
	}
	return s.pages[i]
}

func (s *Spec) client(e obs.Event, p *specPage, ssmp int64) *specClient {
	if ssmp < 0 || ssmp >= int64(len(p.clients)) {
		s.fail(e, "ssmp %d out of range", ssmp)
		return nil
	}
	return &p.clients[ssmp]
}

// Feed consumes one trace event (attach via obs.FuncSink). Only
// protocol-category events drive the machine; everything else is
// ignored. Each transition asserts its precondition — a violated
// precondition is a divergence, recorded in Err.
func (s *Spec) Feed(e obs.Event) {
	if s.err != nil || e.Cat != obs.Protocol || e.Kind != obs.ObjPage {
		return
	}
	switch e.Name {
	case "REQSTART":
		// Local Client leaves INV with an outstanding request (arc 5).
		p := s.page(e)
		if p == nil {
			return
		}
		cl := s.client(e, p, int64(e.Proc)/int64(s.c))
		if cl == nil {
			return
		}
		if cl.state != core.PInv {
			s.fail(e, "request from state %v, spec wants INV", cl.state)
			return
		}
		cl.state = core.PBusy

	case "DATA":
		// RDAT/WDAT arrival fills the copy (arcs 6–7).
		p := s.page(e)
		if p == nil {
			return
		}
		cl := s.client(e, p, int64(e.Proc)/int64(s.c))
		if cl == nil {
			return
		}
		if cl.state != core.PBusy {
			s.fail(e, "data arrival in state %v, spec wants BUSY", cl.state)
			return
		}
		if e.Args[0] != 0 {
			cl.state = core.PWrite
		} else {
			cl.state = core.PRead
		}

	case "LOCALFILL":
		// Arc 1/3/4: a local mapping satisfies the fault; no state
		// change, but the implementation reports the state it saw.
		p := s.page(e)
		if p == nil {
			return
		}
		cl := s.client(e, p, int64(e.Proc)/int64(s.c))
		if cl == nil {
			return
		}
		if int64(cl.state) != e.Args[1] {
			s.fail(e, "implementation in state %v, spec in %v", core.PageState(e.Args[1]), cl.state)
			return
		}
		write := e.Args[0] != 0
		if !(cl.state == core.PWrite || (cl.state == core.PRead && !write)) {
			s.fail(e, "local fill from state %v write=%v is not an arc", cl.state, write)
		}

	case "UPGRADE":
		// Remote Client applies a read-to-write upgrade (arc 13).
		p := s.page(e)
		if p == nil {
			return
		}
		cl := s.client(e, p, e.Args[1])
		if cl == nil {
			return
		}
		if e.Args[0] != 0 {
			if cl.state != core.PRead {
				s.fail(e, "upgrade applied in state %v, spec wants READ", cl.state)
				return
			}
			cl.state = core.PWrite
		}

	case "WNOTIFY":
		// Write notification at the Server (arc 18). The notification
		// names a copy incarnation; the Server judges it against its own
		// record of that SSMP's completed teardowns (it cannot read the
		// remote copy), so the spec keeps the same count (homeGens,
		// advanced by INVREPLY below) and the implementation's verdict
		// (Args[0]) must agree with it. A fresh notification moves the
		// SSMP from read_dir to write_dir.
		p := s.page(e)
		if p == nil {
			return
		}
		cl := s.client(e, p, e.Args[1])
		if cl == nil {
			return
		}
		stale := int64(0)
		if cl.homeGens != e.Args[2] {
			stale = 1
		}
		if stale != e.Args[0] {
			s.fail(e, "implementation says stale=%d, spec says stale=%d (home gens %d vs notify gen %d, state %v)",
				e.Args[0], stale, cl.homeGens, e.Args[2], cl.state)
			return
		}
		if stale == 0 {
			p.readDir &^= 1 << uint(e.Args[1])
			p.writeDir |= 1 << uint(e.Args[1])
		}

	case "INVREPLY":
		// ACK/DIFF/1WDATA arrival at the Server (arcs 22–23). A reply
		// carrying a teardown (Args[2]) retires one incarnation of that
		// SSMP's copy in the Server's ledger; the teardown itself
		// (cl.gen, FINISHINV) necessarily happened first.
		p := s.page(e)
		if p == nil {
			return
		}
		cl := s.client(e, p, e.Args[1])
		if cl == nil {
			return
		}
		if e.Args[2] != 0 {
			cl.homeGens++
			if cl.homeGens > cl.gen {
				s.fail(e, "home counted %d teardowns but only %d happened", cl.homeGens, cl.gen)
			}
		}

	case "SERVE":
		// Server grants a copy (arcs 17–19): register the SSMP in the
		// directory, unless it is the home SSMP (whose "copy" is the
		// home frame, never invalidated).
		p := s.page(e)
		if p == nil {
			return
		}
		if p.inRound {
			s.fail(e, "serve during a release round")
			return
		}
		if e.Args[2] == 0 {
			if e.Args[0] != 0 {
				p.writeDir |= 1 << uint(e.Args[1])
			} else {
				p.readDir |= 1 << uint(e.Args[1])
			}
		}

	case "REL":
		p := s.page(e)
		if p == nil {
			return
		}
		switch e.Args[0] {
		case core.RelRound:
			if p.inRound {
				s.fail(e, "round opened while a round is in progress")
				return
			}
			if p.readDir|p.writeDir == 0 {
				s.fail(e, "round opened with empty directories")
				return
			}
			p.inRound = true
		case core.RelNoTargets:
			if p.readDir|p.writeDir != 0 {
				s.fail(e, "immediate RACK with copies outstanding (R=%b W=%b)", p.readDir, p.writeDir)
			}
		case core.RelPended, core.RelRequeued, core.RelRequeuedHome:
			if !p.inRound {
				s.fail(e, "release queued behind a round that is not open")
			}
		case core.RelSatisfied:
			// The releaser's copy was captured by a round that has since
			// completed; satisfied with no new round. Must not fire while
			// a round is open (those RELs pend or requeue instead).
			if p.inRound {
				s.fail(e, "satisfied release during an open round")
			}
		}

	case "FINISHINV":
		// A capture completes at one SSMP: teardown arms invalidate the
		// copy and open a new incarnation; the single-writer arm retains
		// it; "gone" captures an SSMP that holds nothing.
		p := s.page(e)
		if p == nil {
			return
		}
		cl := s.client(e, p, e.Args[1])
		if cl == nil {
			return
		}
		switch e.Args[0] {
		case core.FinvAckTeardown:
			if cl.state != core.PRead {
				s.fail(e, "ACK teardown in state %v, spec wants READ", cl.state)
				return
			}
			cl.state = core.PInv
			cl.gen++
		case core.FinvDiffTeardown:
			if cl.state != core.PWrite {
				s.fail(e, "DIFF teardown in state %v, spec wants WRITE", cl.state)
				return
			}
			cl.state = core.PInv
			cl.gen++
		case core.FinvOneWRetain:
			if cl.state != core.PWrite {
				s.fail(e, "single-writer retention in state %v, spec wants WRITE", cl.state)
			}
		case core.FinvGone:
			if cl.state == core.PRead || cl.state == core.PWrite {
				s.fail(e, "copy reported gone but spec holds %v", cl.state)
			}
		default:
			s.fail(e, "arm %d outside the checked protocol", e.Args[0])
		}

	case "FINISHREL":
		// The round completes (arc 23): directories reset, with a
		// retained single writer re-registered.
		p := s.page(e)
		if p == nil {
			return
		}
		if !p.inRound {
			s.fail(e, "round completion without an open round")
			return
		}
		p.inRound = false
		p.readDir = 0
		p.writeDir = 0
		if keep := e.Args[0]; keep >= 0 {
			p.writeDir = 1 << uint(keep)
		}

	case "MIGRATE":
		s.fail(e, "home migration is outside the checked protocol")
	}
}

// Compare checks the implementation's snapshotted protocol state
// against the abstract machine: directories, round-in-progress, client
// page states, and incarnation counters must all agree. Called at every
// delivery boundary (handlers never span one, so implementation and
// spec are both between transitions).
func (s *Spec) Compare(snaps []core.PageSnap) error {
	if s.err != nil {
		return s.err
	}
	for _, sn := range snaps {
		i := int64(sn.Page) - s.base
		if i < 0 || i >= int64(len(s.pages)) {
			return fmt.Errorf("spec divergence: implementation touched page %d outside the checked region", sn.Page)
		}
		p := s.pages[i]
		if sn.ReadDir != p.readDir || sn.WriteDir != p.writeDir {
			return fmt.Errorf("spec divergence: page %d dirs R=%b W=%b, spec R=%b W=%b",
				sn.Page, sn.ReadDir, sn.WriteDir, p.readDir, p.writeDir)
		}
		if sn.InRound != p.inRound {
			return fmt.Errorf("spec divergence: page %d inRound=%v, spec %v", sn.Page, sn.InRound, p.inRound)
		}
		for _, cs := range sn.Clients {
			cl := p.clients[cs.SSMP]
			if cs.State != cl.state {
				return fmt.Errorf("spec divergence: page %d ssmp %d state %v, spec %v",
					sn.Page, cs.SSMP, cs.State, cl.state)
			}
			if cs.Gen != cl.gen {
				return fmt.Errorf("spec divergence: page %d ssmp %d incarnation %d, spec %d",
					sn.Page, cs.SSMP, cs.Gen, cl.gen)
			}
			if cs.HomeGen != cl.homeGens {
				return fmt.Errorf("spec divergence: page %d ssmp %d home gens %d, spec %d",
					sn.Page, cs.SSMP, cs.HomeGen, cl.homeGens)
			}
		}
	}
	return nil
}
