package check

import (
	"encoding/json"
	"fmt"
	"os"

	"mgs/internal/obs"
)

// Trace is a serialized counterexample: the exact sequence of delivery
// choices that reproduces a violation. Choices[i] indexes into the
// (deterministically ordered) set of deliverable messages at the i-th
// choice point; Labels renders each chosen delivery for humans. Replay
// re-executes the schedule bit-identically.
type Trace struct {
	Workload  string   `json:"workload"`
	Mutate    bool     `json:"mutate,omitempty"`
	Choices   []int    `json:"choices"`
	Labels    []string `json:"labels,omitempty"`
	Kind      string   `json:"kind,omitempty"`
	Violation string   `json:"violation,omitempty"`
}

// Save writes the trace as indented JSON.
func (t Trace) Save(path string) error {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadTrace reads a trace written by Save.
func LoadTrace(path string) (Trace, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Trace{}, err
	}
	var t Trace
	if err := json.Unmarshal(b, &t); err != nil {
		return Trace{}, fmt.Errorf("check: %s: %w", path, err)
	}
	return t, nil
}

// Replay re-executes the trace's schedule on a fresh machine with all
// oracles armed, optionally rendering every trace event through sink
// (e.g. obs.NewTextSink(os.Stdout)). It returns the violation the
// schedule reproduces, or nil if the run is clean — which, for a trace
// recorded from a real counterexample, means the implementation no
// longer exhibits the bug.
func Replay(t Trace, sink obs.Sink) (*Violation, error) {
	w, ok := Lookup(t.Workload)
	if !ok {
		return nil, fmt.Errorf("check: unknown workload %q", t.Workload)
	}
	rc, err := execute(nil, w, t.Choices, t.Mutate, sink)
	if err != nil {
		return nil, err
	}
	return rc.vio, nil
}
