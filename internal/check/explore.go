package check

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"mgs/internal/core"
	"mgs/internal/harness"
	"mgs/internal/msync"
	"mgs/internal/obs"
	"mgs/internal/sim"
)

// Options configures one exploration.
type Options struct {
	Workload Workload
	// Mutate arms the seeded stale-WNOTIFY bug (core.Costs.
	// MutStaleWNotify) — the mutation-regression target the explorer
	// must find.
	Mutate bool
	// Budgets. Zero fields take the defaults.
	MaxStates int // distinct canonical states to visit
	MaxRuns   int // schedules to execute
	MaxDepth  int // choices recorded per run (deeper runs still finish)
	// Sink, when non-nil, additionally receives every trace event of
	// every run (replay rendering; very verbose during exploration).
	Sink obs.Sink
}

// Defaults for zero Options fields.
const (
	DefaultMaxStates = 200000
	DefaultMaxRuns   = 50000
	DefaultMaxDepth  = 4096
)

// Result summarizes one exploration.
type Result struct {
	Workload  string
	Runs      int  // schedules executed
	States    int  // distinct canonical states visited
	Choices   int  // total deliveries dispatched at choice points
	MaxFanout int  // widest choice seen
	Complete  bool // frontier exhausted within the budgets
	Violation *Violation
}

// Violation is one counterexample: what failed, and the delivery
// schedule that reproduces it.
type Violation struct {
	Kind  string // "divergence" | "invariant" | "value" | "deadlock"
	Msg   string
	Trace Trace
}

func (v *Violation) String() string { return fmt.Sprintf("%s: %s", v.Kind, v.Msg) }

// errStop is the sentinel the chooser stops the engine with once a
// violation is recorded mid-run.
var errStop = errors.New("check: violation")

// explorer holds the cross-run exploration state: the canonical-state
// visited set and the DFS stack of schedule prefixes.
type explorer struct {
	opt     Options
	visited map[uint64]struct{}
	stack   [][]int
	res     Result
}

// Explore runs the bounded-exhaustive search: depth-first over schedule
// prefixes, re-executing the workload from scratch for each (runs are
// cheap; state is never checkpointed), pruning any subtree rooted at an
// already-visited canonical state. The first violation aborts the
// search with its counterexample trace.
//
// Everything is deterministic: the same options always explore the same
// schedules in the same order and return the identical Result.
func Explore(opt Options) (Result, error) {
	if err := opt.Workload.Validate(); err != nil {
		return Result{}, err
	}
	if opt.MaxStates <= 0 {
		opt.MaxStates = DefaultMaxStates
	}
	if opt.MaxRuns <= 0 {
		opt.MaxRuns = DefaultMaxRuns
	}
	if opt.MaxDepth <= 0 {
		opt.MaxDepth = DefaultMaxDepth
	}
	ex := &explorer{
		opt:     opt,
		visited: make(map[uint64]struct{}),
		stack:   [][]int{nil},
		res:     Result{Workload: opt.Workload.Name, Complete: true},
	}
	for len(ex.stack) > 0 {
		if ex.res.Runs >= opt.MaxRuns || len(ex.visited) >= opt.MaxStates {
			ex.res.Complete = false
			break
		}
		prefix := ex.stack[len(ex.stack)-1]
		ex.stack = ex.stack[:len(ex.stack)-1]
		rc, err := ex.runOne(prefix)
		if err != nil {
			return ex.res, err
		}
		ex.res.Runs++
		if rc.truncated {
			ex.res.Complete = false
		}
		if rc.vio != nil {
			ex.res.Violation = rc.vio
			ex.res.States = len(ex.visited)
			return ex.res, nil
		}
		// Expand alternatives, deepest first (DFS order): only at steps
		// whose pre-state this run discovered — a state seen before has
		// had (or will have) its successors expanded by its discoverer.
		for d := len(rc.steps) - 1; d >= len(prefix); d-- {
			st := rc.steps[d]
			if !st.first {
				continue
			}
			for c := st.fanout - 1; c >= 1; c-- {
				alt := make([]int, d+1)
				copy(alt, rc.taken[:d])
				alt[d] = c
				ex.stack = append(ex.stack, alt)
			}
		}
	}
	ex.res.States = len(ex.visited)
	return ex.res, nil
}

// step records one choice point of one run.
type step struct {
	fanout int
	first  bool // this run discovered the pre-state
}

// runChooser drives one execution: it follows the schedule prefix, then
// the default (earliest-delivery) order, and performs the per-boundary
// checks — snapshot, spec comparison, invariants, canonical hashing —
// before every choice.
type runChooser struct {
	ex     *explorer // nil during replay (no visited bookkeeping)
	w      Workload
	prefix []int
	m      machineRefs
	spec   *Spec
	rs     *runState

	depth        int
	taken        []int
	labels       []sim.Label
	steps        []step
	vio          *Violation
	truncated    bool
	replayMutate bool // Mutate flag during replay (ex == nil)
}

// machineRefs is the slice of the machine the chooser needs.
type machineRefs struct {
	eng  *sim.Engine
	dsm  *core.System
	sync *msync.System
	stop func(error)
}

// syncState renders the synchronization state as DumpState text — the
// canonical form folded into the state hash, so two interleavings that
// differ only in lock/barrier protocol state stay distinct.
func (m machineRefs) syncState() string {
	var sb strings.Builder
	m.sync.DumpState(func(format string, args ...any) {
		fmt.Fprintf(&sb, format+"\n", args...)
	})
	return sb.String()
}

// Choose implements sim.Chooser.
func (rc *runChooser) Choose(now sim.Time, ready []sim.Choice) int {
	if rc.vio != nil {
		return 0 // stopping; drain deterministically
	}
	snaps := rc.m.dsm.SnapshotProtocol()
	if err := rc.spec.Err(); err != nil {
		rc.fail("divergence", err)
		return 0
	}
	if err := rc.spec.Compare(snaps); err != nil {
		rc.fail("divergence", err)
		return 0
	}
	if err := checkInvariants(rc.w, snaps, ready); err != nil {
		rc.fail("invariant", err)
		return 0
	}
	if rc.depth >= cap2(rc.ex, DefaultMaxDepth) {
		// Past the recording horizon: finish the run on the default
		// schedule without recording (the run still terminates; the
		// exploration is marked incomplete).
		rc.truncated = true
		return 0
	}
	first := false
	if rc.ex != nil {
		h := stateHash(snaps, rc.m.syncState(), rc.rs.ip, ready)
		if _, ok := rc.ex.visited[h]; !ok {
			rc.ex.visited[h] = struct{}{}
			first = true
		}
		rc.ex.res.Choices++
		if len(ready) > rc.ex.res.MaxFanout {
			rc.ex.res.MaxFanout = len(ready)
		}
	}
	k := 0
	if rc.depth < len(rc.prefix) {
		k = rc.prefix[rc.depth]
		if k < 0 || k >= len(ready) {
			rc.fail("invariant", fmt.Errorf("check: trace choice %d at step %d out of range (fanout %d)",
				k, rc.depth, len(ready)))
			return 0
		}
	}
	rc.steps = append(rc.steps, step{fanout: len(ready), first: first})
	rc.taken = append(rc.taken, k)
	rc.labels = append(rc.labels, ready[k].Label)
	rc.depth++
	return k
}

func cap2(ex *explorer, def int) int {
	if ex == nil {
		return def
	}
	return ex.opt.MaxDepth
}

// fail records the violation with the schedule that reached it and
// stops the engine. The run's parked processor goroutines leak — only
// ever once per exploration, on the terminal counterexample.
func (rc *runChooser) fail(kind string, err error) {
	if rc.vio != nil {
		return
	}
	rc.vio = &Violation{Kind: kind, Msg: err.Error()}
	rc.vio.Trace = rc.trace()
	rc.m.stop(errStop)
}

// trace serializes the schedule taken so far.
func (rc *runChooser) trace() Trace {
	t := Trace{
		Workload: rc.w.Name,
		Mutate:   rc.mutate(),
		Choices:  append([]int(nil), rc.taken...),
	}
	for _, l := range rc.labels {
		t.Labels = append(t.Labels, l.String())
	}
	if rc.vio != nil {
		t.Kind = rc.vio.Kind
		t.Violation = rc.vio.Msg
	}
	return t
}

func (rc *runChooser) mutate() bool {
	if rc.ex != nil {
		return rc.ex.opt.Mutate
	}
	return rc.replayMutate
}

// runOne executes one schedule from a fresh machine and performs the
// end-of-run checks if it completes cleanly.
func (ex *explorer) runOne(prefix []int) (*runChooser, error) {
	return execute(ex, ex.opt.Workload, prefix, ex.opt.Mutate, ex.opt.Sink)
}

// execute builds a fresh machine, installs the chooser, runs the
// schedule to completion, and applies the end-of-run oracles: final
// spec agreement, quiescence invariants (every page quiet, nothing in
// flight), and the value-level checks (read legality, release
// visibility of final memory, drained update queues). ex is nil during
// replay.
func execute(ex *explorer, w Workload, prefix []int, mutate bool, sink obs.Sink) (*runChooser, error) {
	spec := NewSpec(w)
	m, rs, base := w.newMachine(spec, sink, mutate)
	rc := &runChooser{
		ex: ex, w: w, prefix: prefix, spec: spec, rs: rs,
		m:            machineRefs{eng: m.Eng, dsm: m.DSM, sync: m.Sync, stop: m.Eng.Stop},
		replayMutate: mutate,
	}
	m.Eng.SetChooser(rc)
	_, err := m.RunPer(func(i int) func(c *harness.Ctx) { return w.bodyFor(rs, base, i) })
	if rc.vio != nil {
		return rc, nil // recorded mid-run; the engine was stopped
	}
	if err != nil {
		// The engine drained with processors stuck: a protocol deadlock
		// under this schedule.
		rc.vio = &Violation{Kind: "deadlock", Msg: err.Error()}
		rc.vio.Trace = rc.trace()
		return rc, nil
	}
	snaps := m.DSM.SnapshotProtocol()
	final := func(kind string, e error) {
		rc.vio = &Violation{Kind: kind, Msg: e.Error()}
		rc.vio.Trace = rc.trace()
	}
	switch {
	case spec.Err() != nil:
		final("divergence", spec.Err())
	case spec.Compare(snaps) != nil:
		final("divergence", spec.Compare(snaps))
	case checkInvariants(w, snaps, nil) != nil:
		final("invariant", checkInvariants(w, snaps, nil))
	case quiescence(snaps) != nil:
		final("invariant", quiescence(snaps))
	case m.Sync.Quiescent() != nil:
		final("invariant", m.Sync.Quiescent())
	case w.finalChecks(m, rs) != nil:
		final("value", w.finalChecks(m, rs))
	}
	return rc, nil
}

// quiescence demands a fully settled protocol once every processor has
// finished: no open rounds, no queued work of any kind.
func quiescence(snaps []core.PageSnap) error {
	for _, sn := range snaps {
		if sn.InRound || sn.InvQueued != 0 || sn.PendRel != 0 || sn.PendReq != 0 || sn.PendReRel != 0 {
			return fmt.Errorf("check: page %d not quiescent at termination (round=%v invq=%d rel=%d req=%d rerel=%d)",
				sn.Page, sn.InRound, sn.InvQueued, sn.PendRel, sn.PendReq, sn.PendReRel)
		}
		for _, cs := range sn.Clients {
			if cs.LockHeld || cs.LockWaiters != 0 {
				return fmt.Errorf("check: page %d ssmp %d page-table lock still held/waited at termination", sn.Page, cs.SSMP)
			}
		}
	}
	return nil
}

// stateHash folds one delivery-boundary state into a canonical 64-bit
// FNV-1a digest: the full protocol snapshot (directories, round
// bookkeeping, client states, frame and twin content sums), every
// processor's script progress, and the multiset of labeled messages in
// flight (sorted by label, so two states differing only in virtual
// clocks hash alike — the abstraction that makes pruning effective;
// see DESIGN.md for the soundness discussion).
func stateHash(snaps []core.PageSnap, syncState string, ip []int64, ready []sim.Choice) uint64 {
	h := uint64(14695981039346656037)
	u := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * 1099511628211
			v >>= 8
		}
	}
	b := func(v bool) {
		if v {
			u(1)
		} else {
			u(0)
		}
	}
	str := func(s string) {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * 1099511628211
		}
		u(uint64(len(s)))
	}
	for _, sn := range snaps {
		u(uint64(sn.Page))
		u(uint64(sn.HomeProc))
		b(sn.InRound)
		b(sn.Writable)
		u(sn.ReadDir)
		u(sn.WriteDir)
		u(uint64(int64(sn.Count)))
		u(uint64(int64(sn.KeepWriter)))
		b(sn.SawDiff)
		b(sn.HomeDirty)
		u(uint64(sn.Round))
		u(uint64(sn.InvQueued))
		u(uint64(sn.PendRel))
		u(uint64(sn.PendReq))
		u(uint64(sn.PendReRel))
		u(sn.FrameSum)
		for _, cs := range sn.Clients {
			u(uint64(cs.SSMP))
			u(uint64(cs.State))
			b(cs.HasTwin)
			u(cs.TLBDir)
			u(uint64(int64(cs.OwnerProc)))
			u(uint64(cs.Gen))
			u(uint64(cs.HomeGen))
			u(uint64(cs.CapRound))
			u(uint64(cs.InvCount))
			b(cs.LockHeld)
			u(uint64(cs.LockWaiters))
			u(cs.FrameSum)
			u(cs.TwinSum)
		}
	}
	str(syncState)
	for _, v := range ip {
		u(uint64(v))
	}
	labels := make([]sim.Label, len(ready))
	for i, ch := range ready {
		labels[i] = ch.Label
	}
	sort.Slice(labels, func(i, j int) bool {
		a, z := labels[i], labels[j]
		switch {
		case a.Kind != z.Kind:
			return a.Kind < z.Kind
		case a.Page != z.Page:
			return a.Page < z.Page
		case a.Src != z.Src:
			return a.Src < z.Src
		case a.Dst != z.Dst:
			return a.Dst < z.Dst
		default:
			return a.Aux < z.Aux
		}
	})
	for _, l := range labels {
		str(l.Kind)
		u(uint64(l.Page))
		u(uint64(int64(l.Src)))
		u(uint64(int64(l.Dst)))
		u(uint64(l.Aux))
	}
	return h
}
