// Package check is the MGS model checker: a bounded-exhaustive explorer
// that drives the real protocol implementation (internal/core) through
// every message-delivery interleaving of small fixed workloads, checking
// protocol invariants at every delivery boundary and cross-checking each
// execution against an executable abstract specification of the
// Local Client / Remote Client / Server state machines (paper Tables
// 2–3). Counterexamples serialize as replayable choice traces
// (cmd/mgs-check -replay).
package check

import (
	"fmt"

	"mgs/internal/harness"
	"mgs/internal/msync/algo"
	"mgs/internal/obs"
	"mgs/internal/sim"
	"mgs/internal/vm"
)

// OpKind is one step of a workload script.
type OpKind uint8

const (
	// OpWrite stores the op's sentinel value (proc*1000+index+1) to the
	// word. Every word has a unique writer, so runs are data-race-free
	// and every read has a computable set of legal values.
	OpWrite OpKind = iota
	// OpRead loads the word and records the observed value for
	// end-of-run validation.
	OpRead
	// OpFence drains the processor's delayed update queue (an explicit
	// release point).
	OpFence
	// OpLockedAdd acquires lock 0, reads the word, computes, writes back
	// the value plus the op's sentinel, and releases. Words touched by
	// OpLockedAdd are "locked words": many processors may add to them
	// (the lock serializes), and at quiescence the word must hold
	// exactly the sum of every OpLockedAdd sentinel — the value oracle
	// that catches a mutual-exclusion violation as a lost update.
	OpLockedAdd
	// OpBarrier arrives at barrier 0. Every processor's script must
	// contain the same number of OpBarrier ops.
	OpBarrier
)

// Op is one scripted operation.
type Op struct {
	Kind OpKind
	Page int // page index within the workload's shared region
	Word int // 8-byte word index within the page
}

// Workload is one fixed, small scenario the explorer enumerates
// schedules of: a machine shape, a homed shared region, and a per-
// processor script. Scripts must be data-race-free (one writer per
// word) and every processor that writes must end with OpFence, so the
// home frames are authoritative at quiescence.
type Workload struct {
	Name     string
	P, C     int
	Pages    int
	PageSize int
	Delay    sim.Time // inter-SSMP latency override (0 = harness default)
	Home     []int    // home processor of each page
	Script   [][]Op   // per-processor op sequences

	// Lock and Barrier select the synchronization algorithms
	// (internal/msync/algo names) used by OpLockedAdd and OpBarrier.
	// Empty inherits the tool-level default (normally the native
	// primitives).
	Lock    string
	Barrier string
}

// WriteVal is the sentinel op (proc, index) writes: unique per op, so a
// read's observed value names exactly which write it saw.
func WriteVal(proc, idx int) int64 { return int64(proc*1000 + idx + 1) }

// Workloads returns the built-in scenarios, in fixed order.
func Workloads() []Workload {
	w := func(p, wd int) Op { return Op{Kind: OpWrite, Page: p, Word: wd} }
	r := func(p, wd int) Op { return Op{Kind: OpRead, Page: p, Word: wd} }
	f := Op{Kind: OpFence}
	return append([]Workload{
		{
			// Two SSMPs write disjoint words of one page homed at proc 0
			// and cross-read: the multiple-writer twin/diff path, home
			// in-place writes, and release rounds all exercise.
			Name: "write-share", P: 2, C: 1, Pages: 1, PageSize: 256,
			Home: []int{0},
			Script: [][]Op{
				{w(0, 0), f, r(0, 1)},
				{w(0, 1), f, r(0, 0)},
			},
		},
		{
			// Proc 0 reads then upgrades a page homed at proc 1 while
			// proc 1 writes and releases: the WNOTIFY from the upgrade
			// can be delayed past the round's teardown reply for the same
			// copy — the stale-notification window the home's teardown
			// ledger guards (and Costs.MutStaleWNotify re-opens). The wide
			// LAN delay keeps the intra-SSMP capture chain shorter than a
			// message flight, so the teardown reply can be in the air
			// while the notification still is (with the default delay,
			// handler occupancy alone outlasts the flight window and the
			// race becomes unreachable).
			Name: "upgrade-race", P: 2, C: 1, Pages: 1, PageSize: 256,
			Delay: 20000,
			Home:  []int{1},
			Script: [][]Op{
				{r(0, 1), w(0, 0), f},
				{w(0, 1), f, r(0, 0)},
			},
		},
		{
			// Two pages with opposite homes, each written by both
			// processors: interleaved release rounds on independent
			// pages.
			Name: "two-page", P: 2, C: 1, Pages: 2, PageSize: 256,
			Home: []int{0, 1},
			Script: [][]Op{
				{w(0, 0), w(1, 0), f, r(1, 1)},
				{w(1, 1), w(0, 1), f, r(0, 0)},
			},
		},
		{
			// Three SSMPs in a ring on one page: concurrent rounds with
			// pended releases and requests.
			Name: "three-proc", P: 3, C: 1, Pages: 1, PageSize: 256,
			Home: []int{0},
			Script: [][]Op{
				{w(0, 0), f, r(0, 1)},
				{w(0, 1), f, r(0, 2)},
				{w(0, 2), f, r(0, 0)},
			},
		},
	}, SyncWorkloads()...)
}

// SyncWorkloads builds one lock workload and one barrier workload per
// synchronization algorithm (defaults included): two SSMPs hammer one
// locked counter through all delivery interleavings, checking mutual
// exclusion (no concurrent critical sections), the summed-update value
// oracle, and end-of-run sync quiescence; the barrier variant checks
// cross-barrier write visibility and episode agreement.
func SyncWorkloads() []Workload {
	w := func(p, wd int) Op { return Op{Kind: OpWrite, Page: p, Word: wd} }
	r := func(p, wd int) Op { return Op{Kind: OpRead, Page: p, Word: wd} }
	la := func(p, wd int) Op { return Op{Kind: OpLockedAdd, Page: p, Word: wd} }
	bar := Op{Kind: OpBarrier}
	var ws []Workload
	for _, name := range algo.LockNames() {
		ws = append(ws, Workload{
			Name: "lock-" + name, P: 2, C: 1, Pages: 1, PageSize: 256,
			Home: []int{0}, Lock: name,
			Script: [][]Op{
				{la(0, 0), la(0, 0)},
				{la(0, 0), la(0, 0)},
			},
		})
	}
	for _, name := range algo.BarrierNames() {
		ws = append(ws, Workload{
			Name: "barrier-" + name, P: 2, C: 1, Pages: 1, PageSize: 256,
			Home: []int{0}, Barrier: name,
			Script: [][]Op{
				{w(0, 0), bar, r(0, 1), bar},
				{w(0, 1), bar, r(0, 0), bar},
			},
		})
	}
	return ws
}

// Lookup finds a built-in workload by name.
func Lookup(name string) (Workload, bool) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// Validate checks the structural rules the explorer's oracles rely on.
func (w Workload) Validate() error {
	if w.P <= 0 || w.C <= 0 || w.P%w.C != 0 {
		return fmt.Errorf("check: workload %q: bad shape P=%d C=%d", w.Name, w.P, w.C)
	}
	if len(w.Home) != w.Pages {
		return fmt.Errorf("check: workload %q: %d pages but %d homes", w.Name, w.Pages, len(w.Home))
	}
	if len(w.Script) != w.P {
		return fmt.Errorf("check: workload %q: %d procs but %d scripts", w.Name, w.P, len(w.Script))
	}
	writer := make(map[[2]int]int)
	locked := make(map[[2]int]bool)
	plain := make(map[[2]int]bool)
	barriers := -1
	for p, ops := range w.Script {
		unfenced := false
		nbar := 0
		for _, op := range ops {
			switch op.Kind {
			case OpFence:
				unfenced = false
				continue
			case OpBarrier:
				// A barrier is a release point too.
				unfenced = false
				nbar++
				continue
			}
			if op.Page < 0 || op.Page >= w.Pages || op.Word < 0 || op.Word >= w.PageSize/8 {
				return fmt.Errorf("check: workload %q: op out of range page=%d word=%d", w.Name, op.Page, op.Word)
			}
			k := [2]int{op.Page, op.Word}
			switch op.Kind {
			case OpWrite:
				unfenced = true
				plain[k] = true
				if q, ok := writer[k]; ok && q != p {
					return fmt.Errorf("check: workload %q: word (%d,%d) written by procs %d and %d (scripts must be DRF)",
						w.Name, op.Page, op.Word, q, p)
				}
				writer[k] = p
			case OpRead:
				plain[k] = true
			case OpLockedAdd:
				// The lock's release flushes, so a trailing locked add
				// never leaves unfenced writes.
				locked[k] = true
			}
			if locked[k] && plain[k] {
				return fmt.Errorf("check: workload %q: word (%d,%d) is both locked and plainly accessed", w.Name, op.Page, op.Word)
			}
		}
		if unfenced {
			return fmt.Errorf("check: workload %q: proc %d has writes after its last fence", w.Name, p)
		}
		if barriers >= 0 && nbar != barriers {
			return fmt.Errorf("check: workload %q: processors disagree on barrier count (%d vs %d)", w.Name, barriers, nbar)
		}
		barriers = nbar
	}
	return nil
}

// readObs is one observed read, validated at end of run.
type readObs struct {
	Proc, Idx  int
	Page, Word int
	Val        int64
}

// runState is the host-side progress record of one execution: per-
// processor instruction pointers (folded into the canonical state hash
// so two states that differ only in script progress stay distinct) and
// the reads observed so far.
type runState struct {
	ip    []int64
	reads []readObs
	// cs counts processors inside lock 0's critical section; csViol
	// counts overlaps — any overlap is a mutual-exclusion violation of
	// the lock algorithm under this schedule.
	cs, csViol int
}

// wordAddr returns the simulated address of (page, word) in the shared
// region at base.
func (w Workload) wordAddr(base vm.Addr, page, word int) vm.Addr {
	return base + vm.Addr(page*w.PageSize+word*8)
}

// bodyFor builds processor i's script runner. Procs are engine
// coroutines, so the shared runState needs no locking.
func (w Workload) bodyFor(rs *runState, base vm.Addr, i int) func(c *harness.Ctx) {
	ops := w.Script[i]
	return func(c *harness.Ctx) {
		for k, op := range ops {
			rs.ip[i] = int64(k)
			switch op.Kind {
			case OpWrite:
				c.StoreI64(w.wordAddr(base, op.Page, op.Word), WriteVal(i, k))
			case OpRead:
				v := c.LoadI64(w.wordAddr(base, op.Page, op.Word))
				rs.reads = append(rs.reads, readObs{Proc: i, Idx: k, Page: op.Page, Word: op.Word, Val: v})
			case OpFence:
				c.Fence()
			case OpLockedAdd:
				c.Acquire(0)
				if rs.cs != 0 {
					rs.csViol++
				}
				rs.cs++
				a := w.wordAddr(base, op.Page, op.Word)
				v := c.LoadI64(a)
				c.Compute(200)
				c.StoreI64(a, v+WriteVal(i, k))
				rs.cs--
				c.Release(0)
			case OpBarrier:
				c.Barrier(0)
			}
		}
		rs.ip[i] = int64(len(ops))
	}
}

// newMachine assembles one fresh machine for the workload, with the
// spec listening on the observability spine and (optionally) an extra
// sink rendering the run for humans. mutate arms the seeded
// stale-WNOTIFY bug (Costs.MutStaleWNotify).
func (w Workload) newMachine(sp *Spec, extra obs.Sink, mutate bool) (*harness.Machine, *runState, vm.Addr) {
	o := obs.New().AddSink(obs.FuncSink(sp.Feed))
	if extra != nil {
		o.AddSink(extra)
	}
	opts := []harness.Option{
		harness.WithPageSize(w.PageSize),
		harness.WithObserver(o),
	}
	if w.Delay > 0 {
		opts = append(opts, harness.WithInterSSMPDelay(w.Delay))
	}
	if w.Lock != "" {
		opts = append(opts, harness.WithLockAlgo(w.Lock))
	}
	if w.Barrier != "" {
		opts = append(opts, harness.WithBarrierAlgo(w.Barrier))
	}
	cfg := harness.NewConfig(w.P, w.C, opts...)
	cfg.Protocol.MutStaleWNotify = mutate
	m := harness.NewMachine(cfg)
	base := m.AllocHomed(w.Pages*w.PageSize, func(pg int) int { return w.Home[pg] })
	sp.SetBase(int64(m.DSM.Space().PageOf(base)))
	rs := &runState{ip: make([]int64, w.P)}
	return m, rs, base
}

// finalChecks validates the value-level oracles after a clean run:
// every observed read saw a legal value (its own latest write for the
// word's writer, otherwise zero or any sentinel its unique writer ever
// stores), the home frames hold exactly the last write of every word,
// and every delayed update queue drained.
func (w Workload) finalChecks(m *harness.Machine, rs *runState) error {
	if rs.csViol > 0 {
		return fmt.Errorf("check: %d mutual-exclusion violations (lock=%q let two processors into the critical section)",
			rs.csViol, w.Lock)
	}
	type wordKey = [2]int
	writer := make(map[wordKey]int)
	last := make(map[wordKey]int64)
	legal := make(map[wordKey]map[int64]bool)
	lockedSum := make(map[wordKey]int64)
	nbar := 0
	for p, ops := range w.Script {
		pbar := 0
		for k, op := range ops {
			switch op.Kind {
			case OpBarrier:
				pbar++
				continue
			case OpLockedAdd:
				lockedSum[wordKey{op.Page, op.Word}] += WriteVal(p, k)
				continue
			case OpWrite:
			default:
				continue
			}
			key := wordKey{op.Page, op.Word}
			writer[key] = p
			last[key] = WriteVal(p, k)
			if legal[key] == nil {
				legal[key] = map[int64]bool{0: true}
			}
			legal[key][WriteVal(p, k)] = true
		}
		if pbar > nbar {
			nbar = pbar
		}
	}
	for _, r := range rs.reads {
		key := wordKey{r.Page, r.Word}
		if wp, ok := writer[key]; ok && wp == r.Proc {
			// The word's own writer must read its latest prior write.
			want := int64(0)
			for k, op := range w.Script[r.Proc][:r.Idx] {
				if op.Kind == OpWrite && op.Page == r.Page && op.Word == r.Word {
					want = WriteVal(r.Proc, k)
				}
			}
			if r.Val != want {
				return fmt.Errorf("check: proc %d op %d read own word (%d,%d) = %d, want %d",
					r.Proc, r.Idx, r.Page, r.Word, r.Val, want)
			}
			continue
		}
		set := legal[key]
		if set == nil {
			set = map[int64]bool{0: true}
		}
		if !set[r.Val] {
			return fmt.Errorf("check: proc %d op %d read word (%d,%d) = %d, not a value any write produced",
				r.Proc, r.Idx, r.Page, r.Word, r.Val)
		}
		// Barrier visibility: a write the reader is separated from by a
		// passed barrier episode must be seen (it, or a later write by
		// the same writer) — the oracle that catches a barrier releasing
		// early under some delivery schedule.
		if wp, ok := writer[key]; ok && wp != r.Proc {
			bIdx := barsBefore(w.Script[r.Proc], r.Idx)
			reqIdx := -1
			for k, op := range w.Script[wp] {
				if op.Kind == OpWrite && op.Page == r.Page && op.Word == r.Word && barsBefore(w.Script[wp], k) < bIdx {
					reqIdx = k
				}
			}
			if reqIdx >= 0 {
				seen := false
				for k, op := range w.Script[wp][reqIdx:] {
					if op.Kind == OpWrite && op.Page == r.Page && op.Word == r.Word && r.Val == WriteVal(wp, reqIdx+k) {
						seen = true
						break
					}
				}
				if !seen {
					return fmt.Errorf("check: proc %d op %d read word (%d,%d) = %d across barrier, want proc %d's write %d (barrier=%q leaked)",
						r.Proc, r.Idx, r.Page, r.Word, r.Val, wp, WriteVal(wp, reqIdx), w.Barrier)
				}
			}
		}
	}
	if nbar > 0 {
		if got := m.Sync.Barrier(0).Episodes(); got != int64(nbar) {
			return fmt.Errorf("check: barrier episodes = %d, want %d (barrier=%q)", got, nbar, w.Barrier)
		}
	}
	// The shared region is the machine's only allocation; recover its
	// base from the break and the workload geometry.
	base := m.DSM.Space().Brk() - vm.Addr(w.Pages*w.PageSize)
	for pg := 0; pg < w.Pages; pg++ {
		for wd := 0; wd < w.PageSize/8; wd++ {
			want := last[wordKey{pg, wd}] // zero for unwritten words
			if s, ok := lockedSum[wordKey{pg, wd}]; ok {
				want = s // locked words: no update may be lost
			}
			got := m.GetI64(w.wordAddr(base, pg, wd))
			if got != want {
				return fmt.Errorf("check: final memory word (%d,%d) = %d, want %d (release visibility)",
					pg, wd, got, want)
			}
		}
	}
	for p := 0; p < w.P; p++ {
		if q := m.DSM.DUQPages(p); len(q) != 0 {
			return fmt.Errorf("check: proc %d delayed update queue not drained at quiescence: %v", p, q)
		}
	}
	return nil
}

// barsBefore counts OpBarrier ops strictly before index idx.
func barsBefore(ops []Op, idx int) int {
	n := 0
	for _, op := range ops[:idx] {
		if op.Kind == OpBarrier {
			n++
		}
	}
	return n
}
