package check

import (
	"fmt"

	"mgs/internal/core"
	"mgs/internal/sim"
)

// checkInvariants validates the protocol invariants over one snapshot,
// taken at a delivery boundary. pending lists the labeled messages
// still in flight; invariants that only hold once a page has settled
// (no round, no queues, nothing on the wire for it) are checked only
// for such quiet pages.
//
//   - Structural (every boundary): the home SSMP is never registered in
//     a directory; a remote write copy always has a twin (or its diffs
//     would be unrecoverable — "no lost diffs"); round bookkeeping
//     (count, invalidation queue, retained writer) exists only inside a
//     round.
//   - Quiet pages: the directories are sound — a write_dir bit implies
//     the SSMP actually holds (or is fetching) a write copy, read_dir
//     likewise, and conversely every remote copy is registered. The
//     stale-WNOTIFY mutation plants exactly the phantom write_dir bit
//     the first of these rejects.
func checkInvariants(w Workload, snaps []core.PageSnap, pending []sim.Choice) error {
	for _, sn := range snaps {
		homeSSMP := sn.HomeProc / w.C
		homeBit := uint64(1) << uint(homeSSMP)
		if (sn.ReadDir|sn.WriteDir)&homeBit != 0 {
			return fmt.Errorf("check: page %d registers its own home SSMP %d in a directory (R=%b W=%b)",
				sn.Page, homeSSMP, sn.ReadDir, sn.WriteDir)
		}
		if sn.Count < 0 {
			return fmt.Errorf("check: page %d negative reply count %d", sn.Page, sn.Count)
		}
		if !sn.InRound {
			if sn.Count > 0 {
				return fmt.Errorf("check: page %d expects %d invalidation replies outside a round", sn.Page, sn.Count)
			}
			if sn.InvQueued > 0 {
				return fmt.Errorf("check: page %d has %d queued invalidations outside a round", sn.Page, sn.InvQueued)
			}
			if sn.KeepWriter >= 0 {
				return fmt.Errorf("check: page %d retains writer %d outside a round", sn.Page, sn.KeepWriter)
			}
		}
		for _, cs := range sn.Clients {
			if cs.SSMP == homeSSMP {
				continue
			}
			if cs.State == core.PWrite && !cs.HasTwin {
				return fmt.Errorf("check: page %d ssmp %d holds a write copy with no twin (diffs would be lost)",
					sn.Page, cs.SSMP)
			}
		}

		inflight := 0
		for _, ch := range pending {
			if ch.Label.Page == int64(sn.Page) {
				inflight++
			}
		}
		quiet := !sn.InRound && sn.InvQueued == 0 &&
			sn.PendRel == 0 && sn.PendReq == 0 && sn.PendReRel == 0 && inflight == 0
		if !quiet {
			continue
		}
		for _, cs := range sn.Clients {
			if cs.SSMP == homeSSMP {
				continue
			}
			b := uint64(1) << uint(cs.SSMP)
			switch {
			case sn.WriteDir&b != 0:
				if cs.State != core.PWrite && cs.State != core.PBusy {
					return fmt.Errorf("check: page %d quiet, write_dir registers ssmp %d but its client is %v (phantom write copy)",
						sn.Page, cs.SSMP, cs.State)
				}
			case sn.ReadDir&b != 0:
				if cs.State != core.PRead && cs.State != core.PWrite && cs.State != core.PBusy {
					return fmt.Errorf("check: page %d quiet, read_dir registers ssmp %d but its client is %v",
						sn.Page, cs.SSMP, cs.State)
				}
			}
			switch cs.State {
			case core.PWrite:
				if sn.WriteDir&b == 0 {
					return fmt.Errorf("check: page %d quiet, ssmp %d holds a write copy unregistered in write_dir",
						sn.Page, cs.SSMP)
				}
			case core.PRead:
				if sn.ReadDir&b == 0 {
					return fmt.Errorf("check: page %d quiet, ssmp %d holds a read copy unregistered in read_dir",
						sn.Page, cs.SSMP)
				}
			}
		}
	}
	return nil
}
