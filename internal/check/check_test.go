package check

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mgs/internal/harness"
	"mgs/internal/sim"
)

// TestWorkloadsValid: every built-in workload obeys the structural
// rules the oracles rely on.
func TestWorkloadsValid(t *testing.T) {
	ws := Workloads()
	if len(ws) == 0 {
		t.Fatal("no built-in workloads")
	}
	for _, w := range ws {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if got, ok := Lookup(w.Name); !ok || got.Name != w.Name {
			t.Errorf("Lookup(%q) failed", w.Name)
		}
	}
}

// TestDefaultChooserPreservesSchedule: installing the default chooser
// changes nothing — a workload runs to the identical cycle count and
// memory image as the chooser-free machine, so normal simulations keep
// their published numbers bit-for-bit.
func TestDefaultChooserPreservesSchedule(t *testing.T) {
	w, _ := Lookup("write-share")
	run := func(ch sim.Chooser) (sim.Time, []byte) {
		spec := NewSpec(w)
		m, rs, base := w.newMachine(spec, nil, false)
		if ch != nil {
			m.Eng.SetChooser(ch)
		}
		res, err := m.RunPer(func(i int) func(c *harness.Ctx) { return w.bodyFor(rs, base, i) })
		if err != nil {
			t.Fatalf("run failed: %v", err)
		}
		return res.Cycles, m.DSM.SnapshotMemory()
	}
	cyc0, mem0 := run(nil)
	cyc1, mem1 := run(sim.DefaultChooser{})
	if cyc0 != cyc1 {
		t.Fatalf("DefaultChooser changed the schedule: %d cycles vs %d", cyc1, cyc0)
	}
	if !reflect.DeepEqual(mem0, mem1) {
		t.Fatal("DefaultChooser changed the final memory image")
	}
}

// TestWriteShareExhaustive: the 2-proc/1-page write-share workload
// explores to fixpoint with no violation, and the exploration is
// deterministic — two invocations return the identical result.
func TestWriteShareExhaustive(t *testing.T) {
	w, _ := Lookup("write-share")
	r1, err := Explore(Options{Workload: w})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Violation != nil {
		t.Fatalf("violation on the unmutated protocol: %v\ntrace: %+v", r1.Violation, r1.Violation.Trace)
	}
	if !r1.Complete {
		t.Fatalf("exploration did not reach fixpoint within default budgets: %+v", r1)
	}
	if r1.Runs < 2 || r1.MaxFanout < 2 {
		t.Fatalf("exploration did not branch (runs=%d maxFanout=%d) — chooser not engaged?", r1.Runs, r1.MaxFanout)
	}
	r2, err := Explore(Options{Workload: w})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("exploration not deterministic:\n%+v\n%+v", r1, r2)
	}
}

// TestAllWorkloadsClean: every built-in workload is violation-free
// under a bounded exploration (full fixpoint for the small ones).
func TestAllWorkloadsClean(t *testing.T) {
	for _, w := range Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			res, err := Explore(Options{Workload: w, MaxStates: 40000, MaxRuns: 8000})
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != nil {
				t.Fatalf("violation: %v\ntrace: %+v", res.Violation, res.Violation.Trace)
			}
			t.Logf("runs=%d states=%d choices=%d maxFanout=%d complete=%v",
				res.Runs, res.States, res.Choices, res.MaxFanout, res.Complete)
		})
	}
}

// TestMutationFound: re-introducing the stale-WNOTIFY bug (the PR 3
// phantom-write regression) behind Costs.MutStaleWNotify, the explorer
// must find it on the upgrade-race workload and produce a counter-
// example trace that Replay reproduces identically. The trace is also
// pinned as a golden fixture so the counterexample stays replayable.
func TestMutationFound(t *testing.T) {
	w, _ := Lookup("upgrade-race")
	res, err := Explore(Options{Workload: w, Mutate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatalf("explorer missed the seeded stale-WNOTIFY mutation (runs=%d states=%d complete=%v)",
			res.Runs, res.States, res.Complete)
	}
	v := res.Violation
	t.Logf("found after %d runs: %v", res.Runs, v)

	// The counterexample replays to the same violation.
	rv, err := Replay(v.Trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rv == nil {
		t.Fatal("replay of the counterexample was clean")
	}
	if rv.Kind != v.Kind || rv.Msg != v.Msg {
		t.Fatalf("replay diverged from the recorded violation:\n got %v\nwant %v", rv, v)
	}

	// Replay must be bit-identical run to run.
	rv2, err := Replay(v.Trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rv, rv2) {
		t.Fatalf("replay not deterministic:\n%v\n%v", rv, rv2)
	}

	// Golden fixture: the pinned counterexample still reproduces. (To
	// regenerate after an intentional trace-format or schedule change:
	// go test ./internal/check -run TestMutationFound -update)
	golden := filepath.Join("testdata", "stale_wnotify_counterexample.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := v.Trace.Save(golden); err != nil {
			t.Fatal(err)
		}
	}
	gt, err := LoadTrace(golden)
	if err != nil {
		t.Fatalf("golden fixture missing (run with -update to regenerate): %v", err)
	}
	gv, err := Replay(gt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gv == nil {
		t.Fatal("golden counterexample no longer reproduces a violation")
	}
	if gv.Kind != gt.Kind || gv.Msg != gt.Violation {
		t.Fatalf("golden counterexample reproduces a different violation:\n got %v\nwant %s: %s", gv, gt.Kind, gt.Violation)
	}
}

// TestMutationOffClean: the same workload without the mutation is
// clean — the regression test's signal comes from the seeded bug, not
// from the workload.
func TestMutationOffClean(t *testing.T) {
	w, _ := Lookup("upgrade-race")
	res, err := Explore(Options{Workload: w})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("violation without the mutation: %v\ntrace: %+v", res.Violation, res.Violation.Trace)
	}
	if !res.Complete {
		t.Fatalf("upgrade-race did not reach fixpoint: %+v", res)
	}
}
