package check

import "flag"

// -update regenerates the golden counterexample fixture.
var update = flag.Bool("update", false, "rewrite golden trace fixtures")
