// Package fault provides deterministic fault plans for the inter-SSMP
// network. MGS inherits Alewife's perfectly reliable mesh, but the
// paper's own pitch (§1) is DSSMPs assembled from commodity clusters
// over LANs — substrates that lose, duplicate, reorder, and delay
// messages. A Plan describes such misbehaviour as a schedule that is a
// pure function of (plan seed, message id): every fate decision for a
// message draws from a splitmix64 stream seeded by exactly those two
// values, so a faulted run composes with the deterministic event engine
// and is bit-for-bit reproducible. No host clock, no process-global
// randomness — mgslint's nowalltime analyzer enforces this (the package
// is on the deterministic allow-list in internal/lint).
//
// The package only decides fates. The transport that acts on them —
// sequence numbers, acks, timeout-driven retransmission, duplicate
// suppression — lives in internal/msg (reliable.go).
package fault

import "mgs/internal/sim"

// Plan is a deterministic fault schedule for inter-SSMP messages. The
// zero value injects nothing (Empty reports true) and is the identity:
// a transport given an empty plan must behave byte-identically to one
// with no fault layer at all.
//
// Rates are in basis points (parts per 10,000), so DropBP = 300 loses
// 3% of transmission attempts. Each retransmission attempt rolls its
// own independent fate, so any DropBP < 10000 terminates.
type Plan struct {
	// Seed selects the pseudo-random schedule. Two runs with the same
	// seed (and the same deterministic simulation) see identical faults.
	Seed uint64
	// DropBP is the probability, in basis points, that a transmission
	// attempt (payload or transport ack) is lost in the network.
	DropBP int
	// DupBP is the probability that a delivered attempt also arrives a
	// second time, later.
	DupBP int
	// DelayBP is the probability that a delivered attempt is held in
	// the network for extra cycles beyond its fault-free latency.
	DelayBP int
	// MaxDelay bounds the injected extra latency: delayed attempts (and
	// duplicate copies) draw uniformly from [1, MaxDelay] cycles. Zero
	// means DefaultMaxDelay.
	MaxDelay sim.Time
}

// DefaultMaxDelay is the extra-latency bound used when Plan.MaxDelay is
// zero: a few multiples of the paper's 1000-cycle inter-SSMP LAN delay,
// enough to reorder messages across protocol phases.
const DefaultMaxDelay sim.Time = 2000

// Empty reports whether the plan injects no faults at all.
func (p Plan) Empty() bool {
	return p.DropBP <= 0 && p.DupBP <= 0 && p.DelayBP <= 0
}

// maxDelay resolves the configured delay bound.
func (p Plan) maxDelay() sim.Time {
	if p.MaxDelay > 0 {
		return p.MaxDelay
	}
	return DefaultMaxDelay
}

// Stream is the fate stream of one message: a splitmix64 sequence
// seeded purely by (plan seed, message id). The transport draws every
// decision about the message — per-attempt loss, duplication, delay,
// ack loss — from its stream in event order, which the engine makes
// deterministic.
type Stream struct{ x uint64 }

// Stream returns the fate stream for the message with the given id.
func (p Plan) Stream(msgID uint64) Stream {
	return Stream{x: mix64(p.Seed ^ mix64(msgID+0x9e3779b97f4a7c15))}
}

// mix64 is the splitmix64 finalizer: a bijective avalanche so that
// consecutive ids (and seed^id collisions) decorrelate.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// next advances the stream one draw.
func (s *Stream) next() uint64 {
	s.x += 0x9e3779b97f4a7c15
	return mix64(s.x)
}

// roll draws one event with probability bp/10000.
func (s *Stream) roll(bp int) bool {
	if bp <= 0 {
		return false
	}
	return s.next()%10000 < uint64(bp)
}

// delay draws an extra latency in [1, max].
func (s *Stream) delay(max sim.Time) sim.Time {
	if max <= 0 {
		return 0
	}
	return 1 + sim.Time(s.next()%uint64(max))
}

// AttemptFate is the network's treatment of one transmission attempt.
type AttemptFate struct {
	// Drop: the attempt vanishes; nothing arrives.
	Drop bool
	// Dup: a second copy of the attempt arrives DupExtra cycles after
	// the first (duplicate deliveries exercise the receiver's sequence
	// check).
	Dup bool
	// Extra is added latency on the (first) delivered copy; zero for an
	// on-time delivery.
	Extra sim.Time
	// DupExtra is the duplicate copy's additional lag behind the first.
	DupExtra sim.Time
}

// NextAttempt draws the fate of one transmission attempt from the
// message's stream.
func (p Plan) NextAttempt(s *Stream) AttemptFate {
	var f AttemptFate
	f.Drop = s.roll(p.DropBP)
	if f.Drop {
		return f
	}
	f.Dup = s.roll(p.DupBP)
	if s.roll(p.DelayBP) {
		f.Extra = s.delay(p.maxDelay())
	}
	if f.Dup {
		f.DupExtra = s.delay(p.maxDelay())
	}
	return f
}

// AckDropped draws whether a transport-level acknowledgment is lost.
// Acks share the payload loss rate: an asymmetric LAN is not modeled.
func (p Plan) AckDropped(s *Stream) bool {
	return s.roll(p.DropBP)
}
