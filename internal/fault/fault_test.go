package fault

import "testing"

// Streams must be pure functions of (seed, msg id): identical inputs
// give identical draw sequences, and either input changing changes the
// schedule.
func TestStreamDeterministic(t *testing.T) {
	p := Plan{Seed: 42, DropBP: 300, DupBP: 100, DelayBP: 500}
	for id := uint64(1); id <= 64; id++ {
		a, b := p.Stream(id), p.Stream(id)
		for i := 0; i < 16; i++ {
			fa, fb := p.NextAttempt(&a), p.NextAttempt(&b)
			if fa != fb {
				t.Fatalf("id %d draw %d: %+v vs %+v", id, i, fa, fb)
			}
		}
	}
}

func TestStreamVariesWithSeedAndID(t *testing.T) {
	p1 := Plan{Seed: 1, DropBP: 5000}
	p2 := Plan{Seed: 2, DropBP: 5000}
	diffSeed, diffID := 0, 0
	for id := uint64(1); id <= 256; id++ {
		s1, s2, s3 := p1.Stream(id), p2.Stream(id), p1.Stream(id+1)
		a, b, c := p1.NextAttempt(&s1), p2.NextAttempt(&s2), p1.NextAttempt(&s3)
		if a.Drop != b.Drop {
			diffSeed++
		}
		if a.Drop != c.Drop {
			diffID++
		}
	}
	if diffSeed == 0 {
		t.Fatal("schedule ignores the seed")
	}
	if diffID == 0 {
		t.Fatal("schedule ignores the message id")
	}
}

// Observed rates must track the configured basis points (loose bounds:
// this is a smoke test of the hash quality, not a statistics suite).
func TestRatesApproximate(t *testing.T) {
	p := Plan{Seed: 7, DropBP: 500, DupBP: 200, DelayBP: 1000, MaxDelay: 100}
	const n = 200_000
	var drops, dups, delays int
	for id := uint64(1); id <= n; id++ {
		s := p.Stream(id)
		f := p.NextAttempt(&s)
		if f.Drop {
			drops++
			continue
		}
		if f.Dup {
			dups++
			if f.DupExtra < 1 || f.DupExtra > 100 {
				t.Fatalf("dup extra %d out of [1,100]", f.DupExtra)
			}
		}
		if f.Extra != 0 {
			delays++
			if f.Extra < 1 || f.Extra > 100 {
				t.Fatalf("extra %d out of [1,100]", f.Extra)
			}
		}
	}
	within := func(name string, got, wantBP int) {
		gotBP := got * 10000 / n
		if gotBP < wantBP*8/10 || gotBP > wantBP*12/10 {
			t.Errorf("%s rate %d bp, want ~%d bp", name, gotBP, wantBP)
		}
	}
	within("drop", drops, 500)
	// Dup and delay are conditional on not dropping (95% of attempts).
	within("dup", dups, 200*95/100)
	within("delay", delays, 1000*95/100)
}

func TestEmpty(t *testing.T) {
	if !(Plan{}).Empty() {
		t.Fatal("zero plan must be empty")
	}
	if !(Plan{Seed: 99}).Empty() {
		t.Fatal("seed alone must not arm the plan")
	}
	if (Plan{DropBP: 1}).Empty() || (Plan{DupBP: 1}).Empty() || (Plan{DelayBP: 1}).Empty() {
		t.Fatal("any nonzero rate must arm the plan")
	}
	s := Plan{}.Stream(1)
	if f := (Plan{}).NextAttempt(&s); f != (AttemptFate{}) {
		t.Fatalf("empty plan produced a fault: %+v", f)
	}
}
