package apps

import (
	"fmt"

	"mgs/internal/harness"
	"mgs/internal/vm"
)

// Jacobi is the paper's 2-D grid relaxation: long read/write phases over
// contiguous row blocks with sharing only at block boundaries — the
// coarse-grain pattern that runs well at any cluster size (Figure 6).
type Jacobi struct {
	N     int // grid side
	Iters int

	src, dst F64Array // double-buffered grids
}

// NewJacobi returns the default-size instance (scaled from the paper's
// 1024×1024×10).
func NewJacobi() *Jacobi { return &Jacobi{N: 128, Iters: 10} }

// Name implements harness.App.
func (j *Jacobi) Name() string { return "jacobi" }

// Setup allocates both grids and initializes the boundary.
func (j *Jacobi) Setup(m *harness.Machine) {
	n := j.N
	// Distributed-array layout: each page lives in the memory of the
	// processor that owns its rows (Alewife compilers did the same),
	// so the steady-state flush traffic stays SSMP-local.
	homeOf := func(page int) int {
		row := page * m.Cfg.PageSize / 8 / n
		return j.rowOwner(row, m.Cfg.P)
	}
	words := n * n
	j.src = F64Array{Base: m.AllocHomed(words*8, homeOf), N: words}
	j.dst = F64Array{Base: m.AllocHomed(words*8, homeOf), N: words}
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			v := 0.0
			if i == 0 {
				v = 1.0 // hot top edge
			}
			j.src.Set(m, i*n+k, v)
			j.dst.Set(m, i*n+k, v)
		}
	}
}

// rowOwner maps a grid row to the processor that updates it.
func (j *Jacobi) rowOwner(row, nprocs int) int {
	if row < 1 {
		return 0
	}
	if row > j.N-2 {
		return nprocs - 1
	}
	for id := 0; id < nprocs; id++ {
		lo, hi := blockRange(j.N-2, id, nprocs)
		if row-1 >= lo && row-1 < hi {
			return id
		}
	}
	return 0
}

// Body relaxes the interior with a barrier per iteration.
func (j *Jacobi) Body(c *harness.Ctx) {
	n := j.N
	lo, hi := blockRange(n-2, c.ID, c.NProcs)
	lo, hi = lo+1, hi+1 // interior rows only
	src, dst := j.src, j.dst
	for it := 0; it < j.Iters; it++ {
		for i := lo; i < hi; i++ {
			for k := 1; k < n-1; k++ {
				v := 0.25 * (src.Load(c, (i-1)*n+k) + src.Load(c, (i+1)*n+k) +
					src.Load(c, i*n+k-1) + src.Load(c, i*n+k+1))
				flop(c, 4)
				dst.Store(c, i*n+k, v)
			}
		}
		c.Barrier(0)
		src, dst = dst, src
	}
}

// Verify recomputes the relaxation on the host and compares the full
// final grid.
func (j *Jacobi) Verify(m *harness.Machine) error {
	n := j.N
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := 0; i < n; i++ {
		if i == 0 {
			for k := 0; k < n; k++ {
				a[k], b[k] = 1, 1
			}
		}
	}
	for it := 0; it < j.Iters; it++ {
		for i := 1; i < n-1; i++ {
			for k := 1; k < n-1; k++ {
				b[i*n+k] = 0.25 * (a[(i-1)*n+k] + a[(i+1)*n+k] + a[i*n+k-1] + a[i*n+k+1])
			}
		}
		a, b = b, a
	}
	final := j.src
	if j.Iters%2 == 1 {
		final = j.dst
	}
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			if got, want := final.Get(m, i*n+k), a[i*n+k]; got != want {
				return fmt.Errorf("grid[%d,%d] = %g, want %g", i, k, got, want)
			}
		}
	}
	return nil
}

// SrcAddr exposes the source-grid address of word i (tests and tools).
func (j *Jacobi) SrcAddr(i int) vm.Addr { return j.src.At(i) }
