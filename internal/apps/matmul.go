package apps

import (
	"fmt"

	"mgs/internal/harness"
)

// MatMul multiplies two square matrices, each processor producing a
// block of result rows. Inputs are read-shared, outputs disjoint — the
// embarrassingly coarse-grain pattern of Figure 7 (≈0% breakup
// penalty, flat curve).
type MatMul struct {
	N int

	a, b, c F64Array
}

// NewMatMul returns the default-size instance (scaled from 256×256).
func NewMatMul() *MatMul { return &MatMul{N: 96} }

// Name implements harness.App.
func (mm *MatMul) Name() string { return "matmul" }

// Setup allocates and fills A and B deterministically.
func (mm *MatMul) Setup(m *harness.Machine) {
	n := mm.N
	// A and C pages live with the processor owning those rows; B is
	// read by everyone and stays interleaved across all memories.
	homeOf := func(page int) int {
		row := page * m.Cfg.PageSize / 8 / n
		for id := 0; id < m.Cfg.P; id++ {
			lo, hi := blockRange(n, id, m.Cfg.P)
			if row >= lo && row < hi {
				return id
			}
		}
		return 0
	}
	words := n * n
	mm.a = F64Array{Base: m.AllocHomed(words*8, homeOf), N: words}
	mm.b = AllocF64(m, words)
	mm.c = F64Array{Base: m.AllocHomed(words*8, homeOf), N: words}
	for i := 0; i < n*n; i++ {
		mm.a.Set(m, i, float64(i%7)-3)
		mm.b.Set(m, i, float64(i%5)-2)
	}
}

// Body computes C = A×B by row blocks.
func (mm *MatMul) Body(c *harness.Ctx) {
	n := mm.N
	lo, hi := blockRange(n, c.ID, c.NProcs)
	for i := lo; i < hi; i++ {
		for k := 0; k < n; k++ {
			sum := 0.0
			for x := 0; x < n; x++ {
				sum += mm.a.Load(c, i*n+x) * mm.b.Load(c, x*n+k)
			}
			flop(c, 48*n)
			mm.c.Store(c, i*n+k, sum)
		}
	}
	c.Barrier(0)
}

// Verify recomputes the product on the host.
func (mm *MatMul) Verify(m *harness.Machine) error {
	n := mm.N
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := 0; i < n*n; i++ {
		a[i] = float64(i%7) - 3
		b[i] = float64(i%5) - 2
	}
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			sum := 0.0
			for x := 0; x < n; x++ {
				sum += a[i*n+x] * b[x*n+k]
			}
			if got := mm.c.Get(m, i*n+k); got != sum {
				return fmt.Errorf("C[%d,%d] = %g, want %g", i, k, got, sum)
			}
		}
	}
	return nil
}
