package apps

import (
	"fmt"
	"math"

	"mgs/internal/harness"
	"mgs/internal/vm"
)

// Water is the SPLASH-style N-body molecular dynamics code (§5.2,
// Figure 9): a global molecule array distributed across processors,
// O(N²) pairwise force interactions guarded by per-molecule locks, and
// a global statistics record whose home processor sees extra traffic.
// Processors scan the molecule array linearly starting from their own
// portion, so neighbours in the same SSMP share at fine grain — the
// multigrain-friendly pattern that gives Water its 67% potential.
type Water struct {
	N     int // molecules
	Iters int

	mol F64Array // N × molWords (pos 0-2, vel 3-5, force 6-8)
	kin vm.Addr  // global kinetic-energy accumulator
}

const molWords = 16 // 128 bytes per molecule: 8 per 1K page

const (
	waterStatsLock = 0
	waterLockBase  = 1 // molecule i's lock is waterLockBase + i
)

const waterDT = 1e-3

// waterFxScale converts between float forces/energies and the int64
// fixed-point representation used for every shared reduction. Integer
// addition is associative and commutative, so the force and energy sums
// come out byte-identical no matter which order the per-molecule locks
// grant in — the property the chaos suite (internal/exp/chaos.go) pins:
// message faults may reorder lock handoffs, but final memory must match
// a fault-free run exactly. 2^40 keeps ~1e-12 resolution while the
// largest force sum stays far below the int64 range.
const waterFxScale = 1 << 40

func toFx(v float64) int64   { return int64(math.Round(v * waterFxScale)) }
func fromFx(v int64) float64 { return float64(v) / waterFxScale }

// NewWater returns the default instance (scaled from 343 molecules,
// 2 iterations).
func NewWater() *Water { return &Water{N: 64, Iters: 2} }

// Name implements harness.App.
func (w *Water) Name() string { return "water" }

// initialMol returns molecule i's deterministic initial position and
// velocity.
func initialMol(i int) (pos, vel [3]float64) {
	for d := 0; d < 3; d++ {
		pos[d] = float64((i*7+d*13)%29) / 29.0 * 4.0
		vel[d] = float64((i*11+d*17)%23-11) / 230.0
	}
	return pos, vel
}

// Setup allocates and initializes the molecule array and statistics.
func (w *Water) Setup(m *harness.Machine) {
	// The global molecule array is distributed among processors
	// (paper §5.2.1): each block of molecules — and its per-molecule
	// locks — lives with its owner.
	owner := func(i int) int {
		for id := 0; id < m.Cfg.P; id++ {
			lo, hi := blockRange(w.N, id, m.Cfg.P)
			if i >= lo && i < hi {
				return id
			}
		}
		return 0
	}
	molPerPage := m.Cfg.PageSize / (molWords * 8)
	w.mol = F64Array{
		Base: m.AllocHomed(w.N*molWords*8, func(page int) int { return owner(page * molPerPage) }),
		N:    w.N * molWords,
	}
	for i := 0; i < w.N; i++ {
		m.Sync.LockHomed(waterLockBase+i, owner(i))
	}
	for i := 0; i < w.N; i++ {
		pos, vel := initialMol(i)
		for d := 0; d < 3; d++ {
			w.mol.Set(m, i*molWords+d, pos[d])
			w.mol.Set(m, i*molWords+3+d, vel[d])
			w.mol.Set(m, i*molWords+6+d, 0)
		}
	}
	w.kin = m.Alloc(8)
	m.SetI64(w.kin, 0) // fixed-point accumulator
}

// pairForce is the interaction kernel (softened inverse-cube pull
// toward the origin-relative displacement).
func pairForce(pi, pj [3]float64) [3]float64 {
	var d [3]float64
	r2 := 0.0
	for k := 0; k < 3; k++ {
		d[k] = pi[k] - pj[k]
		r2 += d[k] * d[k]
	}
	inv := 1.0 / (r2*math.Sqrt(r2) + 0.1)
	var f [3]float64
	for k := 0; k < 3; k++ {
		f[k] = d[k] * inv
	}
	return f
}

func (w *Water) loadPos(c *harness.Ctx, i int) [3]float64 {
	return [3]float64{
		w.mol.Load(c, i*molWords),
		w.mol.Load(c, i*molWords+1),
		w.mol.Load(c, i*molWords+2),
	}
}

// Body runs the predictor / force / corrector phases per iteration.
func (w *Water) Body(c *harness.Ctx) {
	lo, hi := blockRange(w.N, c.ID, c.NProcs)
	for it := 0; it < w.Iters; it++ {
		// Phase 1: zero own forces (held in fixed point).
		for i := lo; i < hi; i++ {
			for k := 0; k < 3; k++ {
				c.StoreI64(w.mol.At(i*molWords+6+k), 0)
			}
		}
		c.Barrier(0)

		// Phase 2: pairwise interactions for my molecules against all
		// higher-numbered ones; both sides' forces update under the
		// per-molecule locks.
		for i := lo; i < hi; i++ {
			pi := w.loadPos(c, i)
			for j := i + 1; j < w.N; j++ {
				pj := w.loadPos(c, j)
				f := pairForce(pi, pj)
				flop(c, 5000)
				c.Acquire(waterLockBase + i)
				for k := 0; k < 3; k++ {
					a := w.mol.At(i*molWords + 6 + k)
					c.StoreI64(a, c.LoadI64(a)+toFx(f[k]))
				}
				c.Release(waterLockBase + i)
				c.Acquire(waterLockBase + j)
				for k := 0; k < 3; k++ {
					a := w.mol.At(j*molWords + 6 + k)
					c.StoreI64(a, c.LoadI64(a)-toFx(f[k]))
				}
				c.Release(waterLockBase + j)
			}
		}
		c.Barrier(1)

		// Phase 3: integrate own molecules; fold kinetic energy into
		// the global statistics under its lock.
		part := 0.0
		for i := lo; i < hi; i++ {
			for k := 0; k < 3; k++ {
				v := w.mol.Load(c, i*molWords+3+k) + waterDT*fromFx(c.LoadI64(w.mol.At(i*molWords+6+k)))
				w.mol.Store(c, i*molWords+3+k, v)
				p := w.mol.Load(c, i*molWords+k) + waterDT*v
				w.mol.Store(c, i*molWords+k, p)
				part += 0.5 * v * v
				flop(c, 6)
			}
		}
		if hi > lo {
			c.Acquire(waterStatsLock)
			c.StoreI64(w.kin, c.LoadI64(w.kin)+toFx(part))
			c.Release(waterStatsLock)
		}
		c.Barrier(2)
	}
}

// Verify replays the simulation on the host and compares every
// molecule's state plus the energy statistic (tolerantly: parallel
// accumulation order perturbs the last float bits).
func (w *Water) Verify(m *harness.Machine) error {
	n := w.N
	pos := make([][3]float64, n)
	vel := make([][3]float64, n)
	force := make([][3]float64, n)
	for i := 0; i < n; i++ {
		pos[i], vel[i] = initialMol(i)
	}
	kin := 0.0
	for it := 0; it < w.Iters; it++ {
		for i := range force {
			force[i] = [3]float64{}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				f := pairForce(pos[i], pos[j])
				for k := 0; k < 3; k++ {
					force[i][k] += f[k]
					force[j][k] -= f[k]
				}
			}
		}
		for i := 0; i < n; i++ {
			for k := 0; k < 3; k++ {
				vel[i][k] += waterDT * force[i][k]
				pos[i][k] += waterDT * vel[i][k]
				kin += 0.5 * vel[i][k] * vel[i][k]
			}
		}
	}
	const tol = 1e-9
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			if got := w.mol.Get(m, i*molWords+k); !approxEqual(got, pos[i][k], tol) {
				return fmt.Errorf("mol %d pos[%d] = %g, want %g", i, k, got, pos[i][k])
			}
			if got := w.mol.Get(m, i*molWords+3+k); !approxEqual(got, vel[i][k], tol) {
				return fmt.Errorf("mol %d vel[%d] = %g, want %g", i, k, got, vel[i][k])
			}
		}
	}
	return checkClose("kinetic energy", fromFx(m.GetI64(w.kin)), kin, 1e-9)
}

// MolAddr exposes molecule i's base address (tests and tools).
func (w *Water) MolAddr(i int) vm.Addr { return w.mol.At(i * molWords) }

// KinAddr exposes the kinetic-energy accumulator address (tests).
func (w *Water) KinAddr() vm.Addr { return w.kin }
