package apps

import (
	"fmt"

	"mgs/internal/harness"
	"mgs/internal/serve"
)

// Serve is the online-serving application: a sharded key-value/session
// store in shared simulated memory (internal/serve), driven by a
// deterministic open-loop request trace. Each processor is one front
// end replaying its arrival-ordered queue: it idles until a request's
// scheduled arrival, serves it through the store's shard locks, and
// records completion-minus-arrival — so queueing delay at a backlogged
// front end is part of every latency sample, exactly as in an open-loop
// load test. Unlike the batch SPLASH kernels, the figure of merit is
// not parallel completion time but the latency distribution per traffic
// phase (steady / drift / flash crowd).
type Serve struct {
	// W is the traffic description; zero value means the full-size
	// default workload.
	W serve.Workload

	store  *serve.Store
	trace  serve.Trace
	expect serve.Expect
	rec    *serve.Recorder
	p, c   int
}

const serveBarrier = 0

// NewServe returns the serving app over the given workload.
func NewServe(w serve.Workload) *Serve { return &Serve{W: w} }

// Name implements harness.App.
func (a *Serve) Name() string { return "serve" }

// Setup places the store (shard blocks homed per SSMP), materializes
// the request trace host-side, and registers the latency histograms on
// the machine's metrics registry.
func (a *Serve) Setup(m *harness.Machine) {
	if len(a.W.Phases) == 0 {
		a.W = serve.DefaultWorkload(false, 1)
	}
	a.p, a.c = m.Cfg.P, m.Cfg.C
	a.store = serve.Place(m, a.W.NKeys, serve.DefaultCosts())
	a.trace = a.W.Generate(m.Cfg.P)
	a.expect = a.trace.Expected(a.W.NKeys)
	a.rec = serve.NewRecorder(m.Stats.Registry(), a.W.Phases)
}

// Body replays this processor's open-loop queue.
func (a *Serve) Body(c *harness.Ctx) {
	for _, r := range a.trace.PerProc[c.ID] {
		if r.At > c.Clock() {
			// Idle until the scheduled arrival. If the front end is
			// already past it, the request has been queueing; the wait
			// is in the latency either way.
			c.Proc.Sleep(r.At - c.Clock())
		}
		switch r.Op {
		case serve.OpGet:
			a.store.Get(c, r.Key)
		case serve.OpPut:
			a.store.Put(c, r.Key, r.Val)
		case serve.OpScan:
			a.store.Scan(c, r.Key, a.W.ScanLen)
		}
		a.rec.Observe(r.Phase, r.Op, c.Clock()-r.At)
	}
	c.Barrier(serveBarrier)
}

// Verify checks the store's final records against the host-side
// commutative expectation (put count, sum, xor, and the setup tags),
// and that every generated request was served.
func (a *Serve) Verify(m *harness.Machine) error {
	if err := a.store.VerifyAgainst(m, a.expect); err != nil {
		return err
	}
	served := m.Stats.Counter("serve.ops.get") +
		m.Stats.Counter("serve.ops.put") +
		m.Stats.Counter("serve.ops.scan")
	if want := int64(len(a.trace.Reqs)); served != want {
		return fmt.Errorf("served %d requests, trace has %d", served, want)
	}
	return nil
}

// Store exposes the placed table (nil before Setup) for composition
// and for tests that need record addresses.
func (a *Serve) Store() *serve.Store { return a.store }

// Report digests the run into the per-phase latency report. Call after
// the machine ran.
func (a *Serve) Report(res harness.Result, slo serve.SLO) serve.Report {
	return a.rec.BuildReport(a.W, res, a.p, a.c, slo)
}
