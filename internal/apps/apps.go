// Package apps implements the paper's application suite against the
// machine API: Jacobi, Matrix Multiply, TSP, Water, Barnes-Hut, and the
// Water force-interaction kernel in plain and hand-tiled forms (§5.2).
// Every application verifies its computed result against a host-side
// reference, so shared-memory protocol bugs surface as wrong answers,
// not just odd timings.
//
// Problem sizes are scaled down from the paper's (the substrate is a
// software simulator, not a 32-node Alewife); each app's default size
// is chosen to preserve the paper's sharing regime and is recorded in
// EXPERIMENTS.md.
package apps

import (
	"fmt"

	"mgs/internal/harness"
	"mgs/internal/sim"
	"mgs/internal/vm"
)

// F64Array is a shared array of float64 in simulated memory.
type F64Array struct {
	Base vm.Addr
	N    int
}

// AllocF64 reserves a page-aligned shared float64 array.
func AllocF64(m *harness.Machine, n int) F64Array {
	return F64Array{Base: m.Alloc(n * 8), N: n}
}

// At returns the address of element i.
func (a F64Array) At(i int) vm.Addr { return a.Base + vm.Addr(i*8) }

// Load reads element i through the memory system.
func (a F64Array) Load(c *harness.Ctx, i int) float64 { return c.LoadF64(a.At(i)) }

// Store writes element i through the memory system.
func (a F64Array) Store(c *harness.Ctx, i int, v float64) { c.StoreF64(a.At(i), v) }

// Set initializes element i with no simulated cost (setup only).
func (a F64Array) Set(m *harness.Machine, i int, v float64) { m.SetF64(a.At(i), v) }

// Get reads element i with no simulated cost (verification only).
func (a F64Array) Get(m *harness.Machine, i int) float64 { return m.GetF64(a.At(i)) }

// I64Array is a shared array of int64 in simulated memory.
type I64Array struct {
	Base vm.Addr
	N    int
}

// AllocI64 reserves a page-aligned shared int64 array.
func AllocI64(m *harness.Machine, n int) I64Array {
	return I64Array{Base: m.Alloc(n * 8), N: n}
}

// At returns the address of element i.
func (a I64Array) At(i int) vm.Addr { return a.Base + vm.Addr(i*8) }

// Load reads element i through the memory system.
func (a I64Array) Load(c *harness.Ctx, i int) int64 { return c.LoadI64(a.At(i)) }

// Store writes element i through the memory system.
func (a I64Array) Store(c *harness.Ctx, i int, v int64) { c.StoreI64(a.At(i), v) }

// Set initializes element i with no simulated cost.
func (a I64Array) Set(m *harness.Machine, i int, v int64) { m.SetI64(a.At(i), v) }

// Get reads element i with no simulated cost.
func (a I64Array) Get(m *harness.Machine, i int) int64 { return m.GetI64(a.At(i)) }

// blockRange splits [0, n) into nprocs contiguous blocks and returns
// processor id's half-open range.
func blockRange(n, id, nprocs int) (lo, hi int) {
	per := n / nprocs
	rem := n % nprocs
	lo = id*per + min(id, rem)
	hi = lo + per
	if id < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// flop charges the cost of n floating-point operations.
func flop(c *harness.Ctx, n int) { c.Compute(sim.Time(3 * n)) }

// approxEqual compares with relative tolerance (parallel reduction
// order perturbs floating point).
func approxEqual(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if m < 0 {
		m = -m
	}
	if bb := b; bb < 0 {
		m += -bb
	} else {
		m += bb
	}
	return d <= tol*(1+m)
}

// checkClose reports an error unless got ≈ want.
func checkClose(what string, got, want, tol float64) error {
	if !approxEqual(got, want, tol) {
		return fmt.Errorf("%s = %g, want %g", what, got, want)
	}
	return nil
}
