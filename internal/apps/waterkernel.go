package apps

import (
	"fmt"

	"mgs/internal/harness"
	"mgs/internal/vm"
)

// WaterKernel is the force-interaction kernel of Water, the paper's
// §5.2.3 best-effort study (Figure 12). The plain variant behaves like
// Water's force phase: every processor scans the whole molecule array
// and updates both molecules of each pair under per-molecule locks. The
// tiled variant is the paper's hand transformation: the molecule array
// is split into two page-aligned tiles per SSMP, and computation
// proceeds in phases; in each phase a schedule assigns every tile to
// exactly one SSMP, so all sharing within a phase stays inside the SSMP
// (hardware coherence) and only phase boundaries cross SSMPs at page
// grain — perfect multigrain locality.
type WaterKernel struct {
	N     int
	Tiled bool

	mol F64Array
}

// NewWaterKernel returns the default instance (scaled from 512
// molecules, 1 iteration). N must keep tiles page-aligned: a multiple
// of 16 × (number of SSMPs).
func NewWaterKernel(tiled bool) *WaterKernel { return &WaterKernel{N: 256, Tiled: tiled} }

// Name implements harness.App.
func (w *WaterKernel) Name() string {
	if w.Tiled {
		return "water-kernel-tiled"
	}
	return "water-kernel"
}

// Setup allocates the molecule array with zeroed forces.
func (w *WaterKernel) Setup(m *harness.Machine) {
	owner := func(i int) int {
		for id := 0; id < m.Cfg.P; id++ {
			lo, hi := blockRange(w.N, id, m.Cfg.P)
			if i >= lo && i < hi {
				return id
			}
		}
		return 0
	}
	molPerPage := m.Cfg.PageSize / (molWords * 8)
	w.mol = F64Array{
		Base: m.AllocHomed(w.N*molWords*8, func(page int) int { return owner(page * molPerPage) }),
		N:    w.N * molWords,
	}
	for i := 0; i < w.N; i++ {
		m.Sync.LockHomed(waterLockBase+i, owner(i))
	}
	for i := 0; i < w.N; i++ {
		pos, vel := initialMol(i)
		for d := 0; d < 3; d++ {
			w.mol.Set(m, i*molWords+d, pos[d])
			w.mol.Set(m, i*molWords+3+d, vel[d])
			w.mol.Set(m, i*molWords+6+d, 0)
		}
	}
}

// Body dispatches on the variant.
func (w *WaterKernel) Body(c *harness.Ctx) {
	if w.Tiled {
		w.tiledBody(c)
	} else {
		w.plainBody(c)
	}
	c.Barrier(0)
}

func (w *WaterKernel) loadPos(c *harness.Ctx, i int) [3]float64 {
	return [3]float64{
		w.mol.Load(c, i*molWords),
		w.mol.Load(c, i*molWords+1),
		w.mol.Load(c, i*molWords+2),
	}
}

// plainBody: unmodified force phase with per-molecule locks, exactly as
// in Water.
func (w *WaterKernel) plainBody(c *harness.Ctx) {
	lo, hi := blockRange(w.N, c.ID, c.NProcs)
	for i := lo; i < hi; i++ {
		pi := w.loadPos(c, i)
		for j := i + 1; j < w.N; j++ {
			pj := w.loadPos(c, j)
			f := pairForce(pi, pj)
			flop(c, 5000)
			c.Acquire(waterLockBase + i)
			for k := 0; k < 3; k++ {
				w.mol.Store(c, i*molWords+6+k, w.mol.Load(c, i*molWords+6+k)+f[k])
			}
			c.Release(waterLockBase + i)
			c.Acquire(waterLockBase + j)
			for k := 0; k < 3; k++ {
				w.mol.Store(c, j*molWords+6+k, w.mol.Load(c, j*molWords+6+k)-f[k])
			}
			c.Release(waterLockBase + j)
		}
	}
}

// tiledBody: the loop transformation. Tiles are contiguous page-aligned
// molecule ranges, two per SSMP; a round-robin tournament pairs tiles
// so that each phase gives every SSMP exclusive access to its two
// tiles. All force updates are lock-free: a processor owns the rows it
// accumulates into.
func (w *WaterKernel) tiledBody(c *harness.Ctx) {
	cfg := c.Machine().Cfg
	nssmp := cfg.P / cfg.C
	tiles := 2 * nssmp
	if w.N%(16*nssmp) != 0 {
		panic(fmt.Sprintf("water-kernel: N=%d not divisible by 16*SSMPs=%d (tiles must be page aligned)", w.N, 16*nssmp))
	}
	tileSize := w.N / tiles
	ssmp := c.ID / cfg.C
	within := c.ID % cfg.C

	// Phase 0: self-interactions of this SSMP's own two tiles.
	for t := 0; t < 2; t++ {
		tile := 2*ssmp + t
		w.selfTile(c, tile, tileSize, within, cfg.C)
	}
	c.Barrier(0)

	// Tournament: phases of a round-robin schedule over the tiles; in
	// phase k this SSMP owns the pair (a, b).
	for k := 0; k < tiles-1; k++ {
		a, b := tournamentPair(tiles, k, ssmp)
		w.crossTiles(c, a, b, tileSize, within, cfg.C)
		c.Barrier(0)
	}
}

// tournamentPair returns the k-th round's tile pair for the given slot
// (SSMP) under the standard circle method.
func tournamentPair(tiles, k, slot int) (int, int) {
	m := tiles - 1 // tiles-1 rotating positions; tile `tiles-1` is fixed
	if slot == 0 {
		return (k) % m, tiles - 1
	}
	a := (k + slot) % m
	b := (k + m - slot) % m
	return a, b
}

// selfTile accumulates intra-tile interactions; rows split across the
// SSMP's processors, so every force word has one writer.
func (w *WaterKernel) selfTile(c *harness.Ctx, tile, tileSize, within, cprocs int) {
	base := tile * tileSize
	lo, hi := blockRange(tileSize, within, cprocs)
	for r := lo; r < hi; r++ {
		i := base + r
		pi := w.loadPos(c, i)
		var acc [3]float64
		for j := base; j < base+tileSize; j++ {
			if j == i {
				continue
			}
			f := pairForce(pi, w.loadPos(c, j))
			flop(c, 5000)
			for k := 0; k < 3; k++ {
				acc[k] += f[k]
			}
		}
		for k := 0; k < 3; k++ {
			w.mol.Store(c, i*molWords+6+k, w.mol.Load(c, i*molWords+6+k)+acc[k])
		}
	}
}

// crossTiles accumulates both directions of the (a, b) tile pair. Rows
// of a then rows of b are one combined work list split across the
// SSMP's processors.
func (w *WaterKernel) crossTiles(c *harness.Ctx, a, b, tileSize, within, cprocs int) {
	lo, hi := blockRange(2*tileSize, within, cprocs)
	for r := lo; r < hi; r++ {
		var i, oBase int
		if r < tileSize {
			i = a*tileSize + r
			oBase = b * tileSize
		} else {
			i = b*tileSize + (r - tileSize)
			oBase = a * tileSize
		}
		pi := w.loadPos(c, i)
		var acc [3]float64
		for j := oBase; j < oBase+tileSize; j++ {
			f := pairForce(pi, w.loadPos(c, j))
			flop(c, 5000)
			for k := 0; k < 3; k++ {
				acc[k] += f[k]
			}
		}
		for k := 0; k < 3; k++ {
			w.mol.Store(c, i*molWords+6+k, w.mol.Load(c, i*molWords+6+k)+acc[k])
		}
	}
}

// Verify checks every molecule's accumulated force against the host
// reference (tolerantly: the variants accumulate in different orders).
func (w *WaterKernel) Verify(m *harness.Machine) error {
	n := w.N
	pos := make([][3]float64, n)
	for i := 0; i < n; i++ {
		pos[i], _ = initialMol(i)
	}
	for i := 0; i < n; i++ {
		var want [3]float64
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			f := pairForce(pos[i], pos[j])
			for k := 0; k < 3; k++ {
				want[k] += f[k]
			}
		}
		for k := 0; k < 3; k++ {
			if got := w.mol.Get(m, i*molWords+6+k); !approxEqual(got, want[k], 1e-9) {
				return fmt.Errorf("mol %d force[%d] = %g, want %g", i, k, got, want[k])
			}
		}
	}
	return nil
}

// MolAddr exposes molecule i's base address (tests and tools).
func (w *WaterKernel) MolAddr(i int) vm.Addr { return w.mol.At(i * molWords) }

// BodyInstrumented runs the tiled body invoking onArrive just before
// every barrier arrival (test instrumentation).
func (w *WaterKernel) BodyInstrumented(c *harness.Ctx, onArrive func()) {
	cfg := c.Machine().Cfg
	nssmp := cfg.P / cfg.C
	tiles := 2 * nssmp
	tileSize := w.N / tiles
	ssmp := c.ID / cfg.C
	within := c.ID % cfg.C
	for t := 0; t < 2; t++ {
		w.selfTile(c, 2*ssmp+t, tileSize, within, cfg.C)
	}
	onArrive()
	c.Barrier(0)
	for k := 0; k < tiles-1; k++ {
		a, b := tournamentPair(tiles, k, ssmp)
		w.crossTiles(c, a, b, tileSize, within, cfg.C)
		onArrive()
		c.Barrier(0)
	}
}
