package apps

import (
	"fmt"
	"math"

	"mgs/internal/harness"
)

// BarnesHut is the hierarchical O(N log N) N-body simulation (§5.2,
// Figure 10): each iteration builds a shared octree in parallel under
// locks (the paper's lock-heavy phase, with plenty of consistency
// traffic and critical-section dilation), computes centers of mass, and
// then every processor walks the shared tree — through pointer
// translation — to compute forces on its bodies.
type BarnesHut struct {
	NBodies int
	Iters   int
	Theta   float64

	body     F64Array // NBodies × bodyWords: pos 0-2, vel 3-5, mass 6
	nodes    I64Array // node pool, nodeWords each (mixed int/float words)
	slabCap  int      // pool nodes per processor
	slabUsed []int    // per-processor allocation cursors (host-side)
}

const (
	bodyWords = 8
	// node layout: 0-7 children (node index + 1, 0 = null),
	// 8 body index + 1 (0 = none), 9 mass, 10-12 center of mass.
	nodeWords = 16
	bhSpan    = 16.0 // root cube side
)

const (
	bhCellLock = 1 // + second-level cell index (0..63)
	// The top two tree levels are prebuilt each iteration, so inserts
	// descend lock-free to a second-level cell and serialize only with
	// inserts into the same 1/64th of space (the contention-relieving
	// modification the paper describes adopting from SPLASH-2).
	bhPrebuilt = 1 + 8 + 64 // root + level-1 + level-2 nodes
)

// NewBarnesHut returns the default instance (scaled from 2K bodies,
// 3 iterations).
func NewBarnesHut() *BarnesHut { return &BarnesHut{NBodies: 96, Iters: 2, Theta: 0.6} }

// Name implements harness.App.
func (b *BarnesHut) Name() string { return "barnes-hut" }

// bhBody returns body i's deterministic initial state. Positions are
// distinct lattice points with index-dependent jitter.
func bhBody(i int) (pos, vel [3]float64, mass float64) {
	for d := 0; d < 3; d++ {
		pos[d] = float64((i*(5+2*d)+d*7)%31)/31.0*14.0 + 0.5 + float64(i%17)/41.0 + float64(d)*0.013
		vel[d] = float64((i*13+d*19)%17-8) / 400.0
	}
	return pos, vel, 1.0 + float64(i%4)*0.25
}

// Setup allocates bodies (homed with their owners) and the node pool.
func (b *BarnesHut) Setup(m *harness.Machine) {
	owner := func(i int) int {
		for id := 0; id < m.Cfg.P; id++ {
			lo, hi := blockRange(b.NBodies, id, m.Cfg.P)
			if i >= lo && i < hi {
				return id
			}
		}
		return 0
	}
	perPage := m.Cfg.PageSize / (bodyWords * 8)
	b.body = F64Array{
		Base: m.AllocHomed(b.NBodies*bodyWords*8, func(page int) int { return owner(page * perPage) }),
		N:    b.NBodies * bodyWords,
	}
	for i := 0; i < b.NBodies; i++ {
		pos, vel, mass := bhBody(i)
		for d := 0; d < 3; d++ {
			b.body.Set(m, i*bodyWords+d, pos[d])
			b.body.Set(m, i*bodyWords+3+d, vel[d])
		}
		b.body.Set(m, i*bodyWords+6, mass)
	}
	// Worst case: a chain of internal nodes per body; 16× bodies is
	// generous for jittered positions. Each processor allocates from
	// its own page-aligned slab, homed in its own memory.
	b.slabCap = (16*b.NBodies/m.Cfg.P + 16) &^ 7
	b.slabUsed = make([]int, m.Cfg.P)
	total := bhPrebuilt + m.Cfg.P*b.slabCap
	nodesPerPage := m.Cfg.PageSize / (nodeWords * 8)
	b.nodes = I64Array{
		Base: m.AllocHomed(total*nodeWords*8, func(page int) int {
			n := page * nodesPerPage
			if n < bhPrebuilt {
				return 0
			}
			return (n - bhPrebuilt) / b.slabCap
		}),
		N: total * nodeWords,
	}
}

// node field helpers (all pointer-translated: tree walks chase
// pointers, paper §4.2.1).
func (b *BarnesHut) child(c *harness.Ctx, n, o int) int64 {
	return c.LoadI64Ptr(b.nodes.At(n*nodeWords + o))
}
func (b *BarnesHut) setChild(c *harness.Ctx, n, o int, v int64) {
	c.StoreI64Ptr(b.nodes.At(n*nodeWords+o), v)
}
func (b *BarnesHut) nodeBody(c *harness.Ctx, n int) int64 {
	return c.LoadI64Ptr(b.nodes.At(n*nodeWords + 8))
}
func (b *BarnesHut) setNodeBody(c *harness.Ctx, n int, v int64) {
	c.StoreI64Ptr(b.nodes.At(n*nodeWords+8), v)
}
func (b *BarnesHut) nodeF(c *harness.Ctx, n, k int) float64 {
	return c.LoadF64Ptr(b.nodes.At(n*nodeWords + 9 + k))
}
func (b *BarnesHut) setNodeF(c *harness.Ctx, n, k int, v float64) {
	c.StoreF64Ptr(b.nodes.At(n*nodeWords+9+k), v)
}

// allocNode grabs a fresh node from the calling processor's own slab of
// the pool and zeroes its links. Per-processor freelists avoid the
// original SPLASH code's centralized allocation lock — the same
// contention-relieving change the paper describes adopting.
func (b *BarnesHut) allocNode(c *harness.Ctx) int {
	n := b.slabBase(c.ID) + b.slabUsed[c.ID]
	b.slabUsed[c.ID]++
	if b.slabUsed[c.ID] > b.slabCap {
		panic("barnes-hut: node slab exhausted")
	}
	c.Compute(20) // bump a processor-private freelist pointer
	for o := 0; o < 9; o++ {
		c.StoreI64Ptr(b.nodes.At(n*nodeWords+o), 0)
	}
	return n
}

// slabBase is the first pool index of processor id's slab (after the
// prebuilt nodes).
func (b *BarnesHut) slabBase(id int) int { return bhPrebuilt + id*b.slabCap }

// octant returns which child cube of (center, half) holds p, and that
// cube's geometry.
func octant(p, center [3]float64, half float64) (int, [3]float64, float64) {
	o := 0
	var nc [3]float64
	q := half / 2
	for d := 0; d < 3; d++ {
		if p[d] >= center[d] {
			o |= 1 << d
			nc[d] = center[d] + q
		} else {
			nc[d] = center[d] - q
		}
	}
	return o, nc, q
}

func (b *BarnesHut) loadBodyPos(c *harness.Ctx, i int) [3]float64 {
	return [3]float64{
		b.body.Load(c, i*bodyWords),
		b.body.Load(c, i*bodyWords+1),
		b.body.Load(c, i*bodyWords+2),
	}
}

// insert places body i into the tree. The prebuilt top levels are
// read-only during the build, so the descent is lock-free until the
// second-level cell, whose lock serializes inserts into that subcube;
// node allocation has its own lock.
func (b *BarnesHut) insert(c *harness.Ctx, i int) {
	root := [3]float64{bhSpan / 2, bhSpan / 2, bhSpan / 2}
	p := b.loadBodyPos(c, i)
	o1, c1, h1 := octant(p, root, bhSpan/2)
	o2, center, half := octant(p, c1, h1)
	flop(c, 12)
	cell := o1*8 + o2
	c.Acquire(bhCellLock + cell)
	defer c.Release(bhCellLock + cell)

	cur := int64(9 + cell) // the prebuilt level-2 cell node
	var o int
	o, center, half = octant(p, center, half)
	for {
		ch := b.child(c, int(cur), o)
		flop(c, 6)
		if ch == 0 {
			leaf := b.allocNode(c)
			b.setNodeBody(c, leaf, int64(i)+1)
			b.setChild(c, int(cur), o, int64(leaf)+1)
			return
		}
		n := int(ch - 1)
		if other := b.nodeBody(c, n); other != 0 {
			// Leaf: split until the two bodies separate.
			op := b.loadBodyPos(c, int(other-1))
			b.setNodeBody(c, n, 0)
			for {
				oo, _, _ := octant(op, center, half)
				no, nc2, nh2 := octant(p, center, half)
				flop(c, 12)
				if oo != no {
					la := b.allocNode(c)
					b.setNodeBody(c, la, other)
					b.setChild(c, n, oo, int64(la)+1)
					lb := b.allocNode(c)
					b.setNodeBody(c, lb, int64(i)+1)
					b.setChild(c, n, no, int64(lb)+1)
					return
				}
				// Same octant: chain another internal node.
				in := b.allocNode(c)
				b.setChild(c, n, no, int64(in)+1)
				n = in
				center, half = nc2, nh2
			}
		}
		cur = ch - 1
		o, center, half = octant(p, center, half)
	}
}

// prebuild resets the pool and lays out the fixed top two tree levels:
// root (node 0), level-1 nodes 1..8, level-2 cell nodes 9..72.
func (b *BarnesHut) prebuild(c *harness.Ctx) {
	zero := func(n int) {
		for o := 0; o < 9; o++ {
			c.StoreI64Ptr(b.nodes.At(n*nodeWords+o), 0)
		}
	}
	zero(0)
	for o1 := 0; o1 < 8; o1++ {
		l1 := 1 + o1
		zero(l1)
		c.StoreI64Ptr(b.nodes.At(0*nodeWords+o1), int64(l1)+1)
		for o2 := 0; o2 < 8; o2++ {
			l2 := 9 + o1*8 + o2
			zero(l2)
			c.StoreI64Ptr(b.nodes.At(l1*nodeWords+o2), int64(l2)+1)
		}
	}
}

// com computes mass and center-of-mass bottom-up; processor 0 runs it.
func (b *BarnesHut) com(c *harness.Ctx, n int) (mass float64, pos [3]float64) {
	if bi := b.nodeBody(c, n); bi != 0 {
		i := int(bi - 1)
		mass = b.body.Load(c, i*bodyWords+6)
		pos = b.loadBodyPos(c, i)
	} else {
		for o := 0; o < 8; o++ {
			ch := b.child(c, n, o)
			if ch == 0 {
				continue
			}
			m2, p2 := b.com(c, int(ch-1))
			mass += m2
			for k := 0; k < 3; k++ {
				pos[k] += m2 * p2[k]
			}
			flop(c, 8)
		}
		if mass > 0 {
			for k := 0; k < 3; k++ {
				pos[k] /= mass
			}
		}
	}
	b.setNodeF(c, n, 0, mass)
	for k := 0; k < 3; k++ {
		b.setNodeF(c, n, 1+k, pos[k])
	}
	return mass, pos
}

// accel accumulates the force on position p from subtree n (side s).
func (b *BarnesHut) accel(c *harness.Ctx, n int, self int, p [3]float64, s float64, f *[3]float64) {
	bi := b.nodeBody(c, n)
	if bi != 0 {
		if int(bi-1) == self {
			return
		}
		i := int(bi - 1)
		addForce(p, b.loadBodyPos(c, i), b.body.Load(c, i*bodyWords+6), f)
		flop(c, 300)
		return
	}
	mass := b.nodeF(c, n, 0)
	if mass == 0 {
		return // prebuilt cell with no bodies
	}
	var com [3]float64
	for k := 0; k < 3; k++ {
		com[k] = b.nodeF(c, n, 1+k)
	}
	d2 := 0.0
	for k := 0; k < 3; k++ {
		dd := p[k] - com[k]
		d2 += dd * dd
	}
	flop(c, 60)
	if s*s < b.Theta*b.Theta*d2 {
		addForce(p, com, mass, f)
		flop(c, 300)
		return
	}
	for o := 0; o < 8; o++ {
		if ch := b.child(c, n, o); ch != 0 {
			b.accel(c, int(ch-1), self, p, s/2, f)
		}
	}
}

// addForce applies the softened attraction of (q, mass) on p into f.
func addForce(p, q [3]float64, mass float64, f *[3]float64) {
	d2 := 0.0
	var d [3]float64
	for k := 0; k < 3; k++ {
		d[k] = q[k] - p[k]
		d2 += d[k] * d[k]
	}
	inv := mass / (d2*math.Sqrt(d2) + 0.25)
	for k := 0; k < 3; k++ {
		f[k] += d[k] * inv
	}
}

const bhDT = 5e-3

// Body runs the per-iteration phases: reset, parallel build, COM,
// force+integrate.
func (b *BarnesHut) Body(c *harness.Ctx) {
	lo, hi := blockRange(b.NBodies, c.ID, c.NProcs)
	for it := 0; it < b.Iters; it++ {
		if c.ID == 0 {
			b.prebuild(c)
		}
		b.slabUsed[c.ID] = 0
		c.Barrier(0)
		for i := lo; i < hi; i++ {
			b.insert(c, i)
		}
		c.Barrier(1)
		if c.ID == 0 {
			b.com(c, 0)
		}
		c.Barrier(2)
		// Forces first (into private accumulators), then integrate
		// after a barrier: everyone must read everyone's old positions.
		forces := make([][3]float64, hi-lo)
		for i := lo; i < hi; i++ {
			b.accel(c, 0, i, b.loadBodyPos(c, i), bhSpan, &forces[i-lo])
		}
		c.Barrier(3)
		for i := lo; i < hi; i++ {
			f := forces[i-lo]
			for k := 0; k < 3; k++ {
				v := b.body.Load(c, i*bodyWords+3+k) + bhDT*f[k]
				b.body.Store(c, i*bodyWords+3+k, v)
				b.body.Store(c, i*bodyWords+k, b.body.Load(c, i*bodyWords+k)+bhDT*v)
				flop(c, 4)
			}
		}
		c.Barrier(4)
	}
}

// Verify replays the same algorithm on the host (same tree geometry,
// same traversal order) and compares final body state.
func (b *BarnesHut) Verify(m *harness.Machine) error {
	n := b.NBodies
	pos := make([][3]float64, n)
	vel := make([][3]float64, n)
	mass := make([]float64, n)
	for i := 0; i < n; i++ {
		pos[i], vel[i], mass[i] = bhBody(i)
	}
	for it := 0; it < b.Iters; it++ {
		tree := newHostTree()
		for i := 0; i < n; i++ {
			tree.insert(i, pos)
		}
		tree.com(0, pos, mass)
		forces := make([][3]float64, n)
		for i := 0; i < n; i++ {
			tree.accel(0, i, pos[i], bhSpan, b.Theta, pos, mass, &forces[i])
		}
		for i := 0; i < n; i++ {
			for k := 0; k < 3; k++ {
				vel[i][k] += bhDT * forces[i][k]
				pos[i][k] += bhDT * vel[i][k]
			}
		}
	}
	const tol = 1e-9
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			if got := b.body.Get(m, i*bodyWords+k); !approxEqual(got, pos[i][k], tol) {
				return fmt.Errorf("body %d pos[%d] = %g, want %g", i, k, got, pos[i][k])
			}
		}
	}
	return nil
}

// hostTree is the host-side reference octree (same geometry rules).
type hostTree struct {
	child [][8]int
	body  []int // body index + 1
	mass  []float64
	coms  [][3]float64
	geoC  [][3]float64
	geoH  []float64
}

func newHostTree() *hostTree {
	t := &hostTree{}
	root := [3]float64{bhSpan / 2, bhSpan / 2, bhSpan / 2}
	t.newNode(root, bhSpan/2) // node 0
	// Prebuild the same two fixed levels as the simulated tree so the
	// theta tests see identical node depths.
	for o1 := 0; o1 < 8; o1++ {
		c1, h1 := childCube(root, bhSpan/2, o1)
		l1 := t.newNode(c1, h1)
		t.child[0][o1] = l1 + 1
	}
	for o1 := 0; o1 < 8; o1++ {
		c1, h1 := childCube(root, bhSpan/2, o1)
		for o2 := 0; o2 < 8; o2++ {
			c2, h2 := childCube(c1, h1, o2)
			l2 := t.newNode(c2, h2)
			t.child[1+o1][o2] = l2 + 1
		}
	}
	return t
}

// childCube returns the geometry of cube (center, half)'s o-th octant.
func childCube(center [3]float64, half float64, o int) ([3]float64, float64) {
	q := half / 2
	var nc [3]float64
	for d := 0; d < 3; d++ {
		if o&(1<<d) != 0 {
			nc[d] = center[d] + q
		} else {
			nc[d] = center[d] - q
		}
	}
	return nc, q
}

func (t *hostTree) newNode(center [3]float64, half float64) int {
	t.child = append(t.child, [8]int{})
	t.body = append(t.body, 0)
	t.mass = append(t.mass, 0)
	t.coms = append(t.coms, [3]float64{})
	t.geoC = append(t.geoC, center)
	t.geoH = append(t.geoH, half)
	return len(t.body) - 1
}

func (t *hostTree) insert(i int, pos [][3]float64) {
	p := pos[i]
	o1, c1, h1 := octant(p, t.geoC[0], t.geoH[0])
	o2, c2, h2 := octant(p, c1, h1)
	cur := 9 + o1*8 + o2
	o, center, half := octant(p, c2, h2)
	for {
		ch := t.child[cur][o]
		if ch == 0 {
			leaf := t.newNode(center, half)
			t.body[leaf] = i + 1
			t.child[cur][o] = leaf + 1
			return
		}
		n := ch - 1
		if other := t.body[n]; other != 0 {
			op := pos[other-1]
			t.body[n] = 0
			for {
				oo, _, _ := octant(op, center, half)
				no, nc2, nh2 := octant(p, center, half)
				if oo != no {
					la := t.newNode(center, half)
					t.body[la] = other
					t.child[n][oo] = la + 1
					lb := t.newNode(center, half)
					t.body[lb] = i + 1
					t.child[n][no] = lb + 1
					return
				}
				in := t.newNode(nc2, nh2)
				t.child[n][no] = in + 1
				n = in
				center, half = nc2, nh2
			}
		}
		cur = ch - 1
		o, center, half = octant(p, center, half)
	}
}

func (t *hostTree) comPass(n int, pos [][3]float64, mass []float64) (float64, [3]float64) {
	if bi := t.body[n]; bi != 0 {
		t.mass[n] = mass[bi-1]
		t.coms[n] = pos[bi-1]
		return t.mass[n], t.coms[n]
	}
	var m float64
	var c [3]float64
	for o := 0; o < 8; o++ {
		ch := t.child[n][o]
		if ch == 0 {
			continue
		}
		m2, p2 := t.comPass(ch-1, pos, mass)
		m += m2
		for k := 0; k < 3; k++ {
			c[k] += m2 * p2[k]
		}
	}
	if m > 0 {
		for k := 0; k < 3; k++ {
			c[k] /= m
		}
	}
	t.mass[n] = m
	t.coms[n] = c
	return m, c
}

func (t *hostTree) com(n int, pos [][3]float64, mass []float64) { t.comPass(n, pos, mass) }

func (t *hostTree) accel(n, self int, p [3]float64, s, theta float64, pos [][3]float64, mass []float64, f *[3]float64) {
	if bi := t.body[n]; bi != 0 {
		if bi-1 == self {
			return
		}
		addForce(p, pos[bi-1], mass[bi-1], f)
		return
	}
	if t.mass[n] == 0 {
		return
	}
	d2 := 0.0
	for k := 0; k < 3; k++ {
		dd := p[k] - t.coms[n][k]
		d2 += dd * dd
	}
	if s*s < theta*theta*d2 {
		addForce(p, t.coms[n], t.mass[n], f)
		return
	}
	for o := 0; o < 8; o++ {
		if ch := t.child[n][o]; ch != 0 {
			t.accel(ch-1, self, p, s/2, theta, pos, mass, f)
		}
	}
}
