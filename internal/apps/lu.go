package apps

import (
	"fmt"

	"mgs/internal/harness"
)

// LU is dense blocked LU factorization without pivoting, in the style
// of SPLASH-2's LU — an extension beyond the paper's five applications
// that exercises a sharing pattern none of them has: block ownership
// with step-by-step broadcast reads of pivot rows and columns. The
// matrix is diagonally dominant so factorization is stable without
// pivoting.
//
// Layout is block-major — each bxb block is contiguous and homed with
// its owner — and blocks are assigned to processors round-robin, the
// 2-D scatter decomposition collapsed to one dimension.
type LU struct {
	N int // matrix side
	B int // block side; N must be a multiple of B

	a  F64Array // block-major matrix
	nb int
}

// NewLU returns the default-size instance.
func NewLU() *LU { return &LU{N: 128, B: 16} }

// Name implements harness.App.
func (l *LU) Name() string { return "lu" }

// initial returns the deterministic, diagonally dominant input.
func (l *LU) initial(i, j int) float64 {
	v := float64((i*7+j*13)%19) - 9
	if i == j {
		v += float64(2 * l.N)
	}
	return v
}

// blockBase returns the word index of block (bi, bj).
func (l *LU) blockBase(bi, bj int) int {
	return (bi*l.nb + bj) * l.B * l.B
}

// at returns the word index of element (i, j) in block-major layout.
func (l *LU) at(i, j int) int {
	return l.blockBase(i/l.B, j/l.B) + (i%l.B)*l.B + (j % l.B)
}

// owner returns the processor owning block (bi, bj).
func (l *LU) owner(bi, bj, nprocs int) int { return (bi*l.nb + bj) % nprocs }

// Setup allocates the block-major matrix, homing each block's pages at
// its owner.
func (l *LU) Setup(m *harness.Machine) {
	if l.N%l.B != 0 {
		panic("lu: N must be a multiple of B")
	}
	l.nb = l.N / l.B
	words := l.N * l.N
	blockWords := l.B * l.B
	wordsPerPage := m.Cfg.PageSize / 8
	l.a = F64Array{
		Base: m.AllocHomed(words*8, func(page int) int {
			blk := page * wordsPerPage / blockWords
			return l.owner(blk/l.nb, blk%l.nb, m.Cfg.P)
		}),
		N: words,
	}
	for i := 0; i < l.N; i++ {
		for j := 0; j < l.N; j++ {
			l.a.Set(m, l.at(i, j), l.initial(i, j))
		}
	}
}

// Body runs the blocked right-looking factorization: for each step k,
// the diagonal block factorizes, the perimeter updates, and the
// interior applies the rank-B update, with barriers between stages.
func (l *LU) Body(c *harness.Ctx) {
	b, nb := l.B, l.nb
	for k := 0; k < nb; k++ {
		// Stage 1: factorize the diagonal block A[k][k] (owner only).
		if l.owner(k, k, c.NProcs) == c.ID {
			base := l.blockBase(k, k)
			for d := 0; d < b; d++ {
				pivot := l.a.Load(c, base+d*b+d)
				for r := d + 1; r < b; r++ {
					mult := l.a.Load(c, base+r*b+d) / pivot
					flop(c, 4)
					l.a.Store(c, base+r*b+d, mult)
					for cc := d + 1; cc < b; cc++ {
						v := l.a.Load(c, base+r*b+cc) - mult*l.a.Load(c, base+d*b+cc)
						flop(c, 2)
						l.a.Store(c, base+r*b+cc, v)
					}
				}
			}
		}
		c.Barrier(0)

		// Stage 2: perimeter. Column blocks A[i][k] solve against the
		// upper factor of A[k][k]; row blocks A[k][j] against the
		// lower factor.
		dbase := l.blockBase(k, k)
		for i := k + 1; i < nb; i++ {
			if l.owner(i, k, c.NProcs) == c.ID {
				base := l.blockBase(i, k)
				for d := 0; d < b; d++ {
					pivot := l.a.Load(c, dbase+d*b+d)
					for r := 0; r < b; r++ {
						mult := l.a.Load(c, base+r*b+d) / pivot
						flop(c, 4)
						for cc := d + 1; cc < b; cc++ {
							v := l.a.Load(c, base+r*b+cc) - mult*l.a.Load(c, dbase+d*b+cc)
							flop(c, 2)
							l.a.Store(c, base+r*b+cc, v)
						}
						l.a.Store(c, base+r*b+d, mult)
					}
				}
			}
		}
		for j := k + 1; j < nb; j++ {
			if l.owner(k, j, c.NProcs) == c.ID {
				base := l.blockBase(k, j)
				for d := 0; d < b; d++ {
					for r := d + 1; r < b; r++ {
						mult := l.a.Load(c, dbase+r*b+d)
						for cc := 0; cc < b; cc++ {
							v := l.a.Load(c, base+r*b+cc) - mult*l.a.Load(c, base+d*b+cc)
							flop(c, 2)
							l.a.Store(c, base+r*b+cc, v)
						}
					}
				}
			}
		}
		c.Barrier(1)

		// Stage 3: interior rank-B update A[i][j] -= A[i][k] · A[k][j].
		for i := k + 1; i < nb; i++ {
			for j := k + 1; j < nb; j++ {
				if l.owner(i, j, c.NProcs) != c.ID {
					continue
				}
				base := l.blockBase(i, j)
				lbase := l.blockBase(i, k)
				ubase := l.blockBase(k, j)
				for r := 0; r < b; r++ {
					for d := 0; d < b; d++ {
						mult := l.a.Load(c, lbase+r*b+d)
						for cc := 0; cc < b; cc++ {
							v := l.a.Load(c, base+r*b+cc) - mult*l.a.Load(c, ubase+d*b+cc)
							flop(c, 2)
							l.a.Store(c, base+r*b+cc, v)
						}
					}
				}
			}
		}
		c.Barrier(2)
	}
}

// Verify recomputes the factorization on the host with the identical
// blocked algorithm and compares every element.
func (l *LU) Verify(m *harness.Machine) error {
	n, b, nb := l.N, l.B, l.nb
	a := make([]float64, n*n)
	idx := func(i, j int) int { return l.at(i, j) }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[idx(i, j)] = l.initial(i, j)
		}
	}
	bb := func(bi, bj int) int { return l.blockBase(bi, bj) }
	for k := 0; k < nb; k++ {
		dbase := bb(k, k)
		for d := 0; d < b; d++ {
			for r := d + 1; r < b; r++ {
				mult := a[dbase+r*b+d] / a[dbase+d*b+d]
				a[dbase+r*b+d] = mult
				for cc := d + 1; cc < b; cc++ {
					a[dbase+r*b+cc] -= mult * a[dbase+d*b+cc]
				}
			}
		}
		for i := k + 1; i < nb; i++ {
			base := bb(i, k)
			for d := 0; d < b; d++ {
				for r := 0; r < b; r++ {
					mult := a[base+r*b+d] / a[dbase+d*b+d]
					for cc := d + 1; cc < b; cc++ {
						a[base+r*b+cc] -= mult * a[dbase+d*b+cc]
					}
					a[base+r*b+d] = mult
				}
			}
		}
		for j := k + 1; j < nb; j++ {
			base := bb(k, j)
			for d := 0; d < b; d++ {
				for r := d + 1; r < b; r++ {
					mult := a[dbase+r*b+d]
					for cc := 0; cc < b; cc++ {
						a[base+r*b+cc] -= mult * a[base+d*b+cc]
					}
				}
			}
		}
		for i := k + 1; i < nb; i++ {
			for j := k + 1; j < nb; j++ {
				base, lbase, ubase := bb(i, j), bb(i, k), bb(k, j)
				for r := 0; r < b; r++ {
					for d := 0; d < b; d++ {
						mult := a[lbase+r*b+d]
						for cc := 0; cc < b; cc++ {
							a[base+r*b+cc] -= mult * a[ubase+d*b+cc]
						}
					}
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if got, want := l.a.Get(m, idx(i, j)), a[idx(i, j)]; !approxEqual(got, want, 1e-9) {
				return fmt.Errorf("A[%d,%d] = %g, want %g", i, j, got, want)
			}
		}
	}
	return nil
}
