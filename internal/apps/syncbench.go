package apps

import (
	"fmt"

	"mgs/internal/harness"
	"mgs/internal/sim"
)

// SyncBench is the synchronization microbenchmark behind exp.SyncSweep:
// every processor repeatedly acquires one global MGS lock, increments a
// shared counter inside a fixed-length critical section, releases, and
// then meets the whole machine at a barrier. The lock phase measures
// acquire latency and critical-section dilation under full contention;
// the barrier phase measures episode latency with every processor
// arriving nearly together. Both phases stress whichever algorithms the
// config selects (harness.WithLockAlgo / WithBarrierAlgo), so the same
// app compares the entire synchronization zoo.
type SyncBench struct {
	Iters int // lock/barrier rounds per processor

	nprocs int
	sum    I64Array // [0]: the lock-protected counter
	slots  I64Array // per-processor round tallies
}

// NewSyncBench returns the default-size instance.
func NewSyncBench() *SyncBench { return &SyncBench{Iters: 12} }

// Name implements harness.App.
func (b *SyncBench) Name() string { return "syncbench" }

// Setup allocates the shared counter and the per-processor slot array.
func (b *SyncBench) Setup(m *harness.Machine) {
	b.nprocs = m.Cfg.P
	b.sum = AllocI64(m, 1)
	b.slots = AllocI64(m, b.nprocs)
}

// Body runs Iters rounds of acquire / read-modify-write / release
// followed by a global barrier. The 400-cycle Compute is the critical
// section's nominal work; everything beyond it in lock.heldcycles is
// protocol-induced dilation.
func (b *SyncBench) Body(c *harness.Ctx) {
	for k := 0; k < b.Iters; k++ {
		c.Acquire(0)
		v := b.sum.Load(c, 0)
		c.Compute(sim.Time(400))
		b.sum.Store(c, 0, v+1)
		c.Release(0)
		b.slots.Store(c, c.ID, int64(k+1))
		c.Barrier(0)
	}
}

// Verify checks the counter saw every increment (no lost updates — the
// mutual-exclusion oracle) and every processor completed every round.
func (b *SyncBench) Verify(m *harness.Machine) error {
	if got, want := b.sum.Get(m, 0), int64(b.nprocs*b.Iters); got != want {
		return fmt.Errorf("sum = %d, want %d (lost update)", got, want)
	}
	for i := 0; i < b.nprocs; i++ {
		if got := b.slots.Get(m, i); got != int64(b.Iters) {
			return fmt.Errorf("slot[%d] = %d, want %d", i, got, b.Iters)
		}
	}
	return nil
}
