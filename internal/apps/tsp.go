package apps

import (
	"fmt"

	"mgs/internal/harness"
	"mgs/internal/sim"
	"mgs/internal/vm"
)

// TSP solves a small traveling-salesman instance by branch and bound
// with a centralized work queue, reproducing the paper's pathology
// (Figure 8): the queue lock serializes everything and dilates under
// software coherence, and the contiguously-allocated 56-byte path
// elements false-share pages badly.
type TSP struct {
	NCities int
	Depth   int // enqueue partial tours shorter than this; DFS below

	dist    I64Array // NCities × NCities distance matrix
	queue   I64Array // path elements, 7 words each
	qTop    vm.Addr  // shared stack top
	inWork  vm.Addr  // elements popped but not fully expanded
	best    vm.Addr  // best complete tour cost so far
	minEdge int64    // for the lower bound (host-computed constant)
}

const tspWords = 7 // 56 bytes per path element, as in the paper

const (
	tspQueueLock = 0
	tspBestLock  = 1
	tspBarrier   = 0
)

// NewTSP returns the default instance (9 cities; the paper ran 10).
func NewTSP() *TSP { return &TSP{NCities: 9, Depth: 4} }

// Name implements harness.App.
func (t *TSP) Name() string { return "tsp" }

// Dist is the deterministic symmetric distance function.
func (t *TSP) Dist(i, j int) int64 {
	if i > j {
		i, j = j, i
	}
	return int64((i*9+j*17)%23) + 1
}

// Setup allocates the distance matrix, queue, and globals, and seeds
// the queue with the tour {0}.
func (t *TSP) Setup(m *harness.Machine) {
	n := t.NCities
	t.dist = AllocI64(m, n*n)
	t.minEdge = 1 << 62
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := t.Dist(i, j)
			t.dist.Set(m, i*n+j, d)
			if i != j && d < t.minEdge {
				t.minEdge = d
			}
		}
	}
	// Generous queue bound: breadth-first frontier below Depth.
	maxQ := 1
	width := 1
	for d := 1; d < t.Depth; d++ {
		width *= n - d
		maxQ += width
	}
	t.queue = AllocI64(m, maxQ*tspWords)
	// Globals are packed on one page — shared-scalar false sharing.
	t.qTop = m.AllocPacked(8, 8)
	t.inWork = m.AllocPacked(8, 8)
	t.best = m.AllocPacked(8, 8)
	// Seed the bound with a greedy nearest-neighbour tour (the usual
	// B&B warm start); without it, parallel searches explore wildly
	// different node counts depending on how fast the first complete
	// tours propagate.
	m.SetI64(t.best, t.greedyBound())
	// Seed element: tour {0}, cost 0.
	t.writeElemBackdoor(m, 0, 0, 1, 1, [4]int64{0, 0, 0, 0})
	m.SetI64(t.qTop, 1)
}

// path element layout: [cost, length, visitedMask, cities0..3] with 4
// cities packed per word.
func (t *TSP) writeElemBackdoor(m *harness.Machine, idx int, cost, length, mask int64, cities [4]int64) {
	base := idx * tspWords
	t.queue.Set(m, base, cost)
	t.queue.Set(m, base+1, length)
	t.queue.Set(m, base+2, mask)
	for w := 0; w < 4; w++ {
		t.queue.Set(m, base+3+w, cities[w])
	}
}

type tspElem struct {
	cost, length, mask int64
	cities             [16]int8
}

func (t *TSP) readElem(c *harness.Ctx, idx int) tspElem {
	base := idx * tspWords
	var e tspElem
	e.cost = t.queue.Load(c, base)
	e.length = t.queue.Load(c, base+1)
	e.mask = t.queue.Load(c, base+2)
	for w := 0; w < 4; w++ {
		packed := t.queue.Load(c, base+3+w)
		for k := 0; k < 4; k++ {
			e.cities[w*4+k] = int8(packed >> (8 * k))
		}
	}
	return e
}

func (t *TSP) writeElem(c *harness.Ctx, idx int, e tspElem) {
	base := idx * tspWords
	t.queue.Store(c, base, e.cost)
	t.queue.Store(c, base+1, e.length)
	t.queue.Store(c, base+2, e.mask)
	for w := 0; w < 4; w++ {
		var packed int64
		for k := 0; k < 4; k++ {
			packed |= int64(uint8(e.cities[w*4+k])) << (8 * k)
		}
		t.queue.Store(c, base+3+w, packed)
	}
}

// Body is the worker loop: pop a partial tour, expand one level (or
// depth-first solve below the cutoff), push children, repeat until the
// queue drains and no work is outstanding.
func (t *TSP) Body(c *harness.Ctx) {
	wait := 400
	pend := int64(0) // deferred inWork decrement, folded into the next CS
	for {
		// Peek without the lock (the usual idle-worker pattern): a
		// stale read just means another poll; queue pushes invalidate
		// reader copies, so emptiness is eventually observed. Under
		// lazy release consistency nothing invalidates a racy reader,
		// so the backoff paths below revalidate through the lock once
		// the backoff ceiling is reached.
		if c.LoadI64(t.qTop) == 0 {
			if pend > 0 {
				c.Acquire(tspQueueLock)
				c.StoreI64(t.inWork, c.LoadI64(t.inWork)-pend)
				c.Release(tspQueueLock)
				pend = 0
				continue
			}
			if c.LoadI64(t.inWork) == 0 {
				// Confirm termination under the lock.
				c.Acquire(tspQueueLock)
				top := c.LoadI64(t.qTop)
				out := c.LoadI64(t.inWork)
				c.Release(tspQueueLock)
				if top == 0 && out == 0 {
					break
				}
				c.Compute(sim.Time(wait))
				c.Proc.Yield()
				if wait < 50_000 {
					wait *= 2
				}
				continue
			}
			c.Compute(sim.Time(wait))
			c.Proc.Yield() // let queued events and peers run
			if wait < 50_000 {
				wait *= 2
			} else if c.Machine().Cfg.Protocol.LazyRelease {
				// Backoff ceiling under lazy release consistency:
				// nothing ever invalidates a racy reader, so refresh
				// the view through an acquire or this loop never sees
				// the queue drain. Under the eager protocol pushes
				// invalidate our copy and this would be pure contention.
				c.Acquire(tspQueueLock)
				c.Release(tspQueueLock)
			}
			continue
		}
		c.Acquire(tspQueueLock)
		top := c.LoadI64(t.qTop)
		if top == 0 {
			// Lost the race for the element (thundering herd): back
			// off like an empty poll instead of re-rushing the lock.
			c.Release(tspQueueLock)
			c.Compute(sim.Time(wait))
			c.Proc.Yield()
			if wait < 50_000 {
				wait *= 2
			}
			continue
		}
		wait = 400
		e := t.readElem(c, int(top-1))
		c.StoreI64(t.qTop, top-1)
		c.StoreI64(t.inWork, c.LoadI64(t.inWork)+1-pend)
		pend = 0
		c.Release(tspQueueLock)

		t.expand(c, e)
		pend = 1
	}
	c.Barrier(tspBarrier)
}

// expand grows a partial tour by one city, enqueueing children above
// the DFS cutoff and solving below it.
func (t *TSP) expand(c *harness.Ctx, e tspElem) {
	c.Machine().Stats.Count("app.tsp.nodes", 1)
	n := t.NCities
	if int(e.length) == n {
		last := int(e.cities[e.length-1])
		t.offerBest(c, e.cost+t.dist.Load(c, last*n+0))
		return
	}
	bound := c.LoadI64(t.best) // racy read: pruning hint only
	last := int(e.cities[e.length-1])
	var batch []tspElem
	for city := 1; city < n; city++ {
		if e.mask&(1<<uint(city)) != 0 {
			continue
		}
		cost := e.cost + t.dist.Load(c, last*n+city)
		flop(c, 300)
		remaining := int64(t.NCities) - e.length
		if cost+remaining*t.minEdge >= bound {
			continue // prune
		}
		child := e
		child.cost = cost
		child.mask |= 1 << uint(city)
		child.cities[child.length] = int8(city)
		child.length++
		if int(child.length) >= t.Depth {
			t.dfs(c, child)
			continue
		}
		batch = append(batch, child)
	}
	if len(batch) > 0 {
		// One critical section per expansion, not per child.
		c.Acquire(tspQueueLock)
		top := c.LoadI64(t.qTop)
		for k, ch := range batch {
			t.writeElem(c, int(top)+k, ch)
		}
		c.StoreI64(t.qTop, top+int64(len(batch)))
		c.Release(tspQueueLock)
	}
}

// dfs finishes a partial tour depth-first without touching the queue.
func (t *TSP) dfs(c *harness.Ctx, e tspElem) {
	c.Machine().Stats.Count("app.tsp.nodes", 1)
	n := t.NCities
	if int(e.length) == n {
		last := int(e.cities[e.length-1])
		t.offerBest(c, e.cost+t.dist.Load(c, last*n+0))
		return
	}
	bound := c.LoadI64(t.best)
	last := int(e.cities[e.length-1])
	for city := 1; city < n; city++ {
		if e.mask&(1<<uint(city)) != 0 {
			continue
		}
		cost := e.cost + t.dist.Load(c, last*n+city)
		flop(c, 300)
		remaining := int64(n) - e.length
		if cost+remaining*t.minEdge >= bound {
			continue
		}
		child := e
		child.cost = cost
		child.mask |= 1 << uint(city)
		child.cities[child.length] = int8(city)
		child.length++
		t.dfs(c, child)
	}
}

// offerBest updates the global best tour cost under its lock.
func (t *TSP) offerBest(c *harness.Ctx, cost int64) {
	c.Acquire(tspBestLock)
	if cost < c.LoadI64(t.best) {
		c.StoreI64(t.best, cost)
	}
	c.Release(tspBestLock)
}

// greedyBound computes a nearest-neighbour tour cost on the host.
func (t *TSP) greedyBound() int64 {
	n := t.NCities
	visited := make([]bool, n)
	visited[0] = true
	cur, total := 0, int64(0)
	for k := 1; k < n; k++ {
		best, bestD := -1, int64(1)<<62
		for j := 1; j < n; j++ {
			if !visited[j] && t.Dist(cur, j) < bestD {
				best, bestD = j, t.Dist(cur, j)
			}
		}
		visited[best] = true
		total += bestD
		cur = best
	}
	return total + t.Dist(cur, 0)
}

// Verify brute-forces the optimal tour on the host and compares.
func (t *TSP) Verify(m *harness.Machine) error {
	n := t.NCities
	perm := make([]int, 0, n)
	visited := make([]bool, n)
	bestHost := int64(1) << 62
	var rec func(last int, cost int64)
	rec = func(last int, cost int64) {
		if len(perm) == n-1 {
			total := cost + t.Dist(last, 0)
			if total < bestHost {
				bestHost = total
			}
			return
		}
		for city := 1; city < n; city++ {
			if visited[city] {
				continue
			}
			visited[city] = true
			perm = append(perm, city)
			rec(city, cost+t.Dist(last, city))
			perm = perm[:len(perm)-1]
			visited[city] = false
		}
	}
	rec(0, 0)
	if got := m.GetI64(t.best); got != bestHost {
		return fmt.Errorf("best tour = %d, want %d", got, bestHost)
	}
	return nil
}

// Nodes reports how many tour nodes were expanded (tests and tools).
func (t *TSP) Nodes(m *harness.Machine) int64 { return m.Stats.Counter("app.tsp.nodes") }
