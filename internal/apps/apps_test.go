package apps

import (
	"testing"

	"mgs/internal/harness"
)

// smallCfg returns a quick machine for app correctness tests.
func smallCfg(p, c int) harness.Config {
	return harness.NewConfig(p, c, harness.WithInterSSMPDelay(400))
}

// runShapes runs the app across several machine shapes (uniprocessor,
// all-software, mixed, all-hardware) and fails on any verification
// error.
func runShapes(t *testing.T, mk func() harness.App) {
	t.Helper()
	shapes := []struct{ p, c int }{{1, 1}, {4, 1}, {4, 2}, {8, 4}, {8, 8}}
	for _, sh := range shapes {
		res, err := harness.RunApp(mk(), smallCfg(sh.p, sh.c))
		if err != nil {
			t.Fatalf("P=%d C=%d: %v", sh.p, sh.c, err)
		}
		if res.Cycles <= 0 {
			t.Fatalf("P=%d C=%d: non-positive runtime", sh.p, sh.c)
		}
	}
}

func TestJacobiAllShapes(t *testing.T) {
	runShapes(t, func() harness.App { return &Jacobi{N: 32, Iters: 3} })
}

func TestMatMulAllShapes(t *testing.T) {
	runShapes(t, func() harness.App { return &MatMul{N: 20} })
}

func TestJacobiDeterministic(t *testing.T) {
	run := func() int64 {
		res, err := harness.RunApp(&Jacobi{N: 24, Iters: 2}, smallCfg(4, 2))
		if err != nil {
			t.Fatal(err)
		}
		return int64(res.Cycles)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}

// TestJacobiSpeedsUpWithProcs: parallel hardware config must beat the
// uniprocessor.
func TestJacobiSpeedsUpWithProcs(t *testing.T) {
	seq, err := harness.RunApp(&Jacobi{N: 48, Iters: 2}, smallCfg(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := harness.RunApp(&Jacobi{N: 48, Iters: 2}, smallCfg(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if par.Cycles*2 >= seq.Cycles {
		t.Fatalf("8-proc run (%d) not at least 2x faster than seq (%d)", par.Cycles, seq.Cycles)
	}
}

func TestTSPAllShapes(t *testing.T) {
	runShapes(t, func() harness.App { return &TSP{NCities: 7, Depth: 3} })
}

func TestTSPNineCities(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if _, err := harness.RunApp(NewTSP(), smallCfg(8, 2)); err != nil {
		t.Fatal(err)
	}
}

func TestWaterAllShapes(t *testing.T) {
	runShapes(t, func() harness.App { return &Water{N: 16, Iters: 2} })
}

func TestBarnesHutAllShapes(t *testing.T) {
	runShapes(t, func() harness.App { return &BarnesHut{NBodies: 24, Iters: 2, Theta: 0.6} })
}

func TestWaterKernelPlainAllShapes(t *testing.T) {
	runShapes(t, func() harness.App { return &WaterKernel{N: 64, Tiled: false} })
}

func TestWaterKernelTiledAllShapes(t *testing.T) {
	// N must be a multiple of 16 × SSMPs for page-aligned tiles.
	shapes := []struct{ p, c int }{{4, 1}, {4, 2}, {8, 4}, {8, 8}}
	for _, sh := range shapes {
		if _, err := harness.RunApp(&WaterKernel{N: 64, Tiled: true}, smallCfg(sh.p, sh.c)); err != nil {
			t.Fatalf("P=%d C=%d: %v", sh.p, sh.c, err)
		}
	}
}

// TestWaterKernelTiledBeatsPlainAtSmallClusters reproduces the essence
// of Figure 12: at small cluster sizes the tiled kernel must beat the
// plain kernel decisively.
func TestWaterKernelTiledBeatsPlain(t *testing.T) {
	plain, err := harness.RunApp(&WaterKernel{N: 64, Tiled: false}, smallCfg(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	tiled, err := harness.RunApp(&WaterKernel{N: 64, Tiled: true}, smallCfg(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	if tiled.Cycles*2 > plain.Cycles {
		t.Fatalf("tiled (%d) not at least 2x faster than plain (%d) at C=2", tiled.Cycles, plain.Cycles)
	}
}

// TestWaterShapeMatrix sweeps Water — historically the best protocol
// bug-finder in this repository — across a dense shape matrix.
func TestWaterShapeMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, p := range []int{4, 8, 16} {
		for c := 1; c <= p; c *= 2 {
			if _, err := harness.RunApp(&Water{N: 24, Iters: 2}, smallCfg(p, c)); err != nil {
				t.Errorf("P=%d C=%d: %v", p, c, err)
			}
		}
	}
}

// TestWaterKernelShapeMatrix does the same for the plain kernel.
func TestWaterKernelShapeMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, p := range []int{8, 16} {
		for c := 1; c <= p; c *= 2 {
			if _, err := harness.RunApp(&WaterKernel{N: 48, Tiled: false}, smallCfg(p, c)); err != nil {
				t.Errorf("P=%d C=%d: %v", p, c, err)
			}
		}
	}
}

func TestLUAllShapes(t *testing.T) {
	runShapes(t, func() harness.App { return &LU{N: 32, B: 8} })
}

func TestLUDefaultSize(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if _, err := harness.RunApp(NewLU(), smallCfg(16, 4)); err != nil {
		t.Fatal(err)
	}
}
