package cli

import (
	"flag"
	"os"
	"testing"

	"mgs/internal/harness"
)

// withArgs runs fn with a fresh flag set and the given command line.
func withArgs(t *testing.T, args []string, fn func()) {
	t.Helper()
	oldFS, oldArgs, oldWorkers, oldEngine := flag.CommandLine, os.Args, harness.SweepWorkers, harness.EngineWorkers
	defer func() {
		flag.CommandLine, os.Args, harness.SweepWorkers, harness.EngineWorkers = oldFS, oldArgs, oldWorkers, oldEngine
	}()
	flag.CommandLine = flag.NewFlagSet("cli_test", flag.PanicOnError)
	os.Args = append([]string{"cli_test"}, args...)
	fn()
}

func TestDefaultsAndConfig(t *testing.T) {
	withArgs(t, nil, func() {
		tool := New("cli_test").MachineFlags("water", 8, 2, true).Parse()
		if tool.App != "water" || tool.P != 8 || tool.C != 2 || !tool.Small {
			t.Fatalf("defaults not applied: %+v", tool)
		}
		cfg := tool.Config()
		if cfg.P != 8 || cfg.C != 2 || cfg.PageSize != 1024 || cfg.Delay != 1000 {
			t.Fatalf("Config did not use the paper defaults: %+v", cfg)
		}
		if cfg.Disabled {
			t.Fatal("C < P must leave the software layer enabled")
		}
	})
}

func TestParsedValuesFlow(t *testing.T) {
	withArgs(t, []string{"-app", "tsp", "-p", "16", "-c", "4", "-small=false", "-workers", "3", "-csv"}, func() {
		tool := New("cli_test").MachineFlags("water", 8, 2, true).SweepFlags().Parse()
		if tool.App != "tsp" || tool.P != 16 || tool.C != 4 || tool.Small {
			t.Fatalf("parsed values not applied: %+v", tool)
		}
		if !tool.CSV {
			t.Fatal("-csv not applied")
		}
		if harness.SweepWorkers != 3 {
			t.Fatalf("Parse did not set harness.SweepWorkers: %d", harness.SweepWorkers)
		}
		if cfg := tool.Config(harness.WithPageSize(2048)); cfg.PageSize != 2048 {
			t.Fatalf("options not applied through Config: %+v", cfg)
		}
	})
}

func TestEngineWorkersFlows(t *testing.T) {
	withArgs(t, []string{"-engine-workers", "4"}, func() {
		tool := New("cli_test").MachineFlags("water", 8, 2, true).Parse()
		if tool.EngineWorkers != 4 {
			t.Fatalf("-engine-workers not parsed: %+v", tool)
		}
		if harness.EngineWorkers != 4 {
			t.Fatalf("Parse did not set harness.EngineWorkers: %d", harness.EngineWorkers)
		}
		// The default flows through NewConfig, so every tool and sweep
		// path inherits the flag without explicit plumbing.
		if cfg := tool.Config(); cfg.EngineWorkers != 4 {
			t.Fatalf("Config did not pick up the engine worker default: %+v", cfg)
		}
	})
}

func TestAppsSelection(t *testing.T) {
	withArgs(t, nil, func() {
		tool := New("cli_test").MachineFlags("water", 8, 2, false).Parse()
		// The full-size and reduced constructors must both resolve every
		// advertised application name without panicking.
		for _, small := range []bool{false, true} {
			tool.Small = small
			mk := tool.Apps()
			for _, name := range AppList() {
				if app := mk(name); app == nil {
					t.Fatalf("Apps()(%q) returned nil (small=%v)", name, small)
				}
			}
		}
	})
}

func TestShapeFlagsSkipsApp(t *testing.T) {
	withArgs(t, []string{"-p", "4"}, func() {
		New("cli_test").ShapeFlags(8, 2, true).Parse()
		if f := flag.CommandLine.Lookup("app"); f != nil {
			t.Fatal("ShapeFlags must not register -app")
		}
	})
}
