// Package cli factors out the flag surface the mgs command-line tools
// share: every simulation tool picks an application, a machine shape
// (-p, -c), a problem size (-small), and — for the sweep-style tools —
// a worker count and CSV switch. Before this package each main
// re-declared the same flags with drifting defaults; now a tool states
// its defaults once and the registration, parsing side effects, and
// config construction live here.
package cli

import (
	"flag"
	"log"
	"strings"

	"mgs/internal/exp"
	"mgs/internal/harness"
	"mgs/internal/msg"
	"mgs/internal/msync/algo"
)

// Tool holds the shared flag values of one mgs command-line tool.
// Register the flag groups a tool needs (MachineFlags, SweepFlags),
// call flag.Parse via Parse, then read the fields.
type Tool struct {
	// App is the -app selection (or -apps list for list-style tools).
	App string
	// P and C are the machine shape: total processors and cluster size.
	P, C int
	// Small selects the reduced problem sizes (-small).
	Small bool
	// Workers is the -workers concurrency for sweep-style tools.
	Workers int
	// EngineWorkers is the -engine-workers shard count for the
	// parallel event dispatcher inside each simulation.
	EngineWorkers int
	// Topology is the -topology inter-SSMP interconnect selection
	// (uniform, mesh, fattree, tiered).
	Topology string
	// Lock and Barrier are the -lock / -barrier synchronization
	// algorithm selections (internal/msync/algo names).
	Lock, Barrier string
	// CSV selects machine-readable output (-csv).
	CSV bool

	hasWorkers       bool
	hasEngineWorkers bool
	hasTopology      bool
	hasSync          bool
}

// New configures the standard tool logging — bare messages prefixed
// with the tool name — and returns an empty Tool.
func New(name string) *Tool {
	log.SetFlags(0)
	log.SetPrefix(name + ": ")
	return &Tool{}
}

// MachineFlags registers -app, -p, -c, and -small with the tool's
// defaults. A cDef <= 0 skips -c (for tools that sweep cluster sizes
// or do not take one).
func (t *Tool) MachineFlags(appDef string, pDef, cDef int, smallDef bool) *Tool {
	flag.StringVar(&t.App, "app", appDef, "application: "+strings.Join(AppList(), ", "))
	return t.ShapeFlags(pDef, cDef, smallDef)
}

// ShapeFlags registers -p, -c, and -small only (for tools with their
// own application-selection flag). A cDef <= 0 skips -c.
func (t *Tool) ShapeFlags(pDef, cDef int, smallDef bool) *Tool {
	flag.IntVar(&t.P, "p", pDef, "total processors")
	if cDef > 0 {
		flag.IntVar(&t.C, "c", cDef, "processors per SSMP (cluster size)")
	}
	flag.BoolVar(&t.Small, "small", smallDef, "use reduced problem sizes")
	flag.IntVar(&t.EngineWorkers, "engine-workers", 0,
		"event-dispatch shards per simulation (<=1 = sequential engine; results are bit-identical at any setting)")
	t.hasEngineWorkers = true
	flag.StringVar(&t.Topology, "topology", "uniform",
		"inter-SSMP interconnect: "+strings.Join(msg.TopologyNames(), ", "))
	t.hasTopology = true
	return t.SyncFlags()
}

// SyncFlags registers -lock and -barrier, the synchronization-algorithm
// selection every simulation tool shares. ShapeFlags includes it; tools
// without shape flags (mgs-check) call it directly.
func (t *Tool) SyncFlags() *Tool {
	if t.hasSync {
		return t
	}
	flag.StringVar(&t.Lock, "lock", algo.DefaultLock,
		"lock algorithm: "+strings.Join(algo.LockNames(), ", "))
	flag.StringVar(&t.Barrier, "barrier", algo.DefaultBarrier,
		"barrier algorithm: "+strings.Join(algo.BarrierNames(), ", "))
	t.hasSync = true
	return t
}

// SweepFlags registers -workers and -csv for tools that run many
// independent simulations.
func (t *Tool) SweepFlags() *Tool {
	flag.IntVar(&t.Workers, "workers", 0, "concurrent runs (0 = GOMAXPROCS, 1 = sequential)")
	flag.BoolVar(&t.CSV, "csv", false, "emit CSV rows instead of formatted output")
	t.hasWorkers = true
	return t
}

// Parse parses the process flags and applies the post-parse side
// effects (the sweep and engine worker counts).
func (t *Tool) Parse() *Tool {
	flag.Parse()
	if t.hasWorkers {
		harness.SweepWorkers = t.Workers
	}
	if t.hasEngineWorkers {
		harness.EngineWorkers = t.EngineWorkers
	}
	if t.hasTopology {
		topo, err := msg.ByName(t.Topology)
		if err != nil {
			log.Fatal(err)
		}
		if t.Topology != "" && t.Topology != "uniform" {
			harness.DefaultTopology = topo
		}
	}
	if t.hasSync {
		if _, err := algo.LockByName(t.Lock); err != nil {
			log.Fatal(err)
		}
		if _, err := algo.BarrierByName(t.Barrier); err != nil {
			log.Fatal(err)
		}
		harness.DefaultLockAlgo = t.Lock
		harness.DefaultBarrierAlgo = t.Barrier
	}
	return t
}

// Apps returns the application constructor selected by -small.
func (t *Tool) Apps() func(string) harness.App {
	if t.Small {
		return exp.SmallApp
	}
	return exp.NewApp
}

// Config builds the paper's experiment configuration for the parsed
// machine shape, with any functional options applied on top.
func (t *Tool) Config(opts ...harness.Option) harness.Config {
	return exp.Config(t.P, t.C, opts...)
}

// AppList names every application the exp constructors accept, the
// paper suite first.
func AppList() []string {
	return append(append([]string{}, exp.AppNames...),
		"water-kernel", "water-kernel-tiled", "lu", "serve", "syncbench")
}
