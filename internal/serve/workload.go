// Package serve layers an online-serving workload family on top of the
// DSM: a sharded key-value/session store whose records live in shared
// simulated memory (store.go), driven by a deterministic open-loop load
// generator (this file), with per-request latency recorded into
// virtual-time histograms and reported as p50/p99/p999 per traffic
// phase (report.go).
//
// The paper's pitch (§1) is multigrain shared memory on commodity
// clusters — exactly the substrate modern serving traffic lives on.
// Every workload here is open loop: request *arrival* times are
// scheduled in virtual cycles up front, independent of completion, so
// when a front-end processor falls behind, the backlog shows up as real
// queueing delay in the latency distribution instead of silently
// throttling the offered load (the closed-loop fallacy).
//
// Determinism: like internal/fault, every random decision draws from a
// splitmix64 stream seeded purely by the workload seed, and the entire
// request trace is materialized host-side before the simulation starts.
// Nothing on the simulated path draws randomness; mgslint's determinism
// analyzers cover the package (internal/lint classify.go).
package serve

import "mgs/internal/sim"

// Op is a request type.
type Op uint8

const (
	// OpGet reads one record.
	OpGet Op = iota
	// OpPut updates one record (commutatively — see store.go).
	OpPut
	// OpScan reads a run of consecutive records within one shard.
	OpScan
)

var opNames = [...]string{"get", "put", "scan"}

// String names the op.
func (o Op) String() string { return opNames[o] }

// PhaseKind selects a traffic pattern.
type PhaseKind uint8

const (
	// Steady is stationary Zipf-skewed traffic over the whole keyspace.
	Steady PhaseKind = iota
	// Drift rotates the hot set through the keyspace over time
	// (working-set drift: yesterday's hot sessions go cold).
	Drift
	// Flash concentrates a rate burst on a small fraction of the
	// keyspace (a flash crowd on a few hot sessions).
	Flash
)

var phaseKindNames = [...]string{"steady", "drift", "flash"}

// String names the kind.
func (k PhaseKind) String() string { return phaseKindNames[k] }

// Phase is one segment of the traffic schedule.
type Phase struct {
	// Name labels the phase in reports and metric names; it must be
	// unique within a workload.
	Name string
	// Kind selects the pattern.
	Kind PhaseKind
	// Cycles is the phase duration in virtual cycles.
	Cycles sim.Time
	// MeanGap is the machine-wide mean inter-arrival gap in cycles
	// (offered load = one request per MeanGap cycles, spread round-robin
	// across front-end processors).
	MeanGap sim.Time
	// HotFrac (Flash only) is the fraction of the keyspace the crowd
	// targets; zero means 1/64.
	HotFrac float64
	// DriftPeriod (Drift only) is how often the hot set rotates one
	// step; zero means Cycles/8.
	DriftPeriod sim.Time
}

// Workload is a deterministic serving traffic description.
type Workload struct {
	// Seed selects the pseudo-random schedule; two generations with the
	// same seed produce identical traces.
	Seed uint64
	// NKeys is the keyspace size; it must be a power of two (the hot-key
	// permutation relies on it).
	NKeys int
	// GetBP and ScanBP set the op mix in basis points (parts per
	// 10,000); the remainder are puts.
	GetBP, ScanBP int
	// ScanLen is the record count of one scan.
	ScanLen int
	// Theta is the Zipf skew exponent (0 = uniform; ~0.9 = classic
	// hot-key skew).
	Theta float64
	// Phases is the traffic schedule, run back to back.
	Phases []Phase
}

// Request is one generated request: a key operation arriving at an
// absolute virtual time, pre-assigned to a front-end processor.
type Request struct {
	At    sim.Time // scheduled arrival, in virtual cycles
	Val   uint64   // put payload
	Key   int32
	Op    Op
	Phase uint8 // index into Workload.Phases
}

// Trace is a materialized request schedule.
type Trace struct {
	// Reqs is every request in arrival order.
	Reqs []Request
	// PerProc partitions Reqs round-robin by arrival index: PerProc[i]
	// is front-end processor i's arrival-ordered queue.
	PerProc [][]Request
}

// mix64 is the splitmix64 finalizer (same bijection internal/fault
// uses; duplicated to keep the packages decoupled).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// stream is a splitmix64 draw sequence.
type stream struct{ x uint64 }

func (s *stream) next() uint64 {
	s.x += 0x9e3779b97f4a7c15
	return mix64(s.x)
}

// unit draws a float in [0, 1) with 53 random bits.
func (s *stream) unit() float64 { return float64(s.next()>>11) / (1 << 53) }

// zipfCDF precomputes the cumulative distribution of ranks 0..n-1 with
// weight (r+1)^-theta. theta = 0 degenerates to uniform.
func zipfCDF(n int, theta float64) []float64 {
	cdf := make([]float64, n)
	sum := 0.0
	for r := 0; r < n; r++ {
		sum += ipow(1/float64(r+1), theta)
		cdf[r] = sum
	}
	for r := range cdf {
		cdf[r] /= sum
	}
	return cdf
}

// ipow computes x^theta via exp/log-free binary decomposition on the
// integer part plus a short Newton-free series for the fraction — but
// precision hardly matters for a synthetic skew, so we use the simple
// repeated-sqrt decomposition: x^theta = x^i · x^f with f in [0,1)
// approximated by 16 square-root bits. Deterministic (pure float64
// arithmetic, no math.Pow libm variance across Go versions).
func ipow(x, theta float64) float64 {
	if theta <= 0 {
		return 1
	}
	i := int(theta)
	out := 1.0
	for k := 0; k < i; k++ {
		out *= x
	}
	f := theta - float64(i)
	// x^f: consume f bit by bit; sq tracks x^(1/2^k).
	sq := x
	for k := 0; k < 16 && f > 0; k++ {
		sq = sqrt(sq)
		f *= 2
		if f >= 1 {
			out *= sq
			f -= 1
		}
	}
	return out
}

// sqrt is Newton's method on float64 — deterministic everywhere,
// independent of libm.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		nz := 0.5 * (z + x/z)
		if nz == z {
			break
		}
		z = nz
	}
	return z
}

// rankOf inverts the CDF by binary search: the least rank whose
// cumulative weight reaches u.
func rankOf(cdf []float64, u float64) int {
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// knuth is an odd multiplier; for power-of-two NKeys, rank·knuth mod
// NKeys is a bijection, spreading popularity ranks across the keyspace
// (and therefore across shards) deterministically.
const knuth = 2654435761

// hotN returns the flash-crowd target size.
func (ph Phase) hotN(nkeys int) int {
	f := ph.HotFrac
	if f <= 0 {
		f = 1.0 / 64
	}
	n := int(f * float64(nkeys))
	if n < 1 {
		n = 1
	}
	return n
}

// driftPeriod returns the hot-set rotation period.
func (ph Phase) driftPeriod() sim.Time {
	if ph.DriftPeriod > 0 {
		return ph.DriftPeriod
	}
	return ph.Cycles / 8
}

// Generate materializes the request trace for a machine with nprocs
// front-end processors. The generation is a pure function of the
// workload (seed included) and nprocs; it runs host-side with no
// simulated cost.
func (w Workload) Generate(nprocs int) Trace {
	if w.NKeys <= 0 || w.NKeys&(w.NKeys-1) != 0 {
		panic("serve: NKeys must be a positive power of two")
	}
	mask := uint64(w.NKeys - 1)
	full := zipfCDF(w.NKeys, w.Theta)
	s := stream{x: mix64(w.Seed ^ 0x5e5ec0de)}
	var reqs []Request
	start := sim.Time(0)
	for pi, ph := range w.Phases {
		end := start + ph.Cycles
		cdf := full
		if ph.Kind == Flash {
			cdf = zipfCDF(ph.hotN(w.NKeys), w.Theta)
		}
		driftStep := uint64(w.NKeys/64 + 1)
		at := start
		for {
			// Uniform integer gap in [1, 2·MeanGap-1], mean = MeanGap.
			gap := sim.Time(1)
			if ph.MeanGap > 1 {
				gap = 1 + sim.Time(s.next()%uint64(2*ph.MeanGap-1))
			}
			at += gap
			if at >= end {
				break
			}
			rank := rankOf(cdf, s.unit())
			key := uint64(rank) * knuth & mask
			if ph.Kind == Drift {
				// Rotate the whole popularity mapping one step per
				// period: the hot set walks through the keyspace.
				key = (key + uint64((at-start)/ph.driftPeriod())*driftStep) & mask
			}
			op := OpPut
			if v := s.next() % 10000; v < uint64(w.GetBP) {
				op = OpGet
			} else if v < uint64(w.GetBP+w.ScanBP) {
				op = OpScan
			}
			reqs = append(reqs, Request{
				At: at, Key: int32(key), Op: op, Val: s.next(), Phase: uint8(pi),
			})
		}
		start = end
	}
	per := make([][]Request, nprocs)
	for i, r := range reqs {
		p := i % nprocs
		per[p] = append(per[p], r)
	}
	return Trace{Reqs: reqs, PerProc: per}
}

// Expect is the host-side reference for the store's final state: puts
// are commutative (count, sum, xor), so the expectation is independent
// of the order in which the simulated processors win the shard locks.
type Expect struct {
	Count []int64
	Sum   []uint64
	Xor   []uint64
}

// Expected folds every put in the trace into the per-key reference.
func (tr Trace) Expected(nkeys int) Expect {
	e := Expect{
		Count: make([]int64, nkeys),
		Sum:   make([]uint64, nkeys),
		Xor:   make([]uint64, nkeys),
	}
	for _, r := range tr.Reqs {
		if r.Op != OpPut {
			continue
		}
		e.Count[r.Key]++
		e.Sum[r.Key] += r.Val
		e.Xor[r.Key] ^= r.Val
	}
	return e
}
