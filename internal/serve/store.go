package serve

import (
	"fmt"

	"mgs/internal/harness"
	"mgs/internal/sim"
	"mgs/internal/vm"
)

// The store is a sharded key-value/session table in shared simulated
// memory. Keys map to shards by a deterministic block function (shard =
// key / keysPerShard), each shard's records occupy their own run of
// whole pages homed on the shard's SSMP, and every operation holds the
// shard's MGS distributed lock — so a request served by a front end in
// the owning SSMP pays hardware-shared-memory prices, while a request
// from any other SSMP drags the lock token and the touched pages across
// the software coherence layer. Tail latency is made of exactly those
// crossings, plus queueing at the front end.
//
// Record layout (RecWords 8-byte words per key):
//
//	word 0  version — number of puts applied (every put increments)
//	word 1  sum     — running sum of put payloads (mod 2^64)
//	word 2  xor     — running xor of put payloads
//	word 3  tag     — key id ^ tagSalt, written at setup, never after
//
// Puts are commutative on purpose: version, sum, and xor do not depend
// on the order in which racing front ends win the shard lock, so the
// final memory image is byte-identical across engine worker counts and
// under chaos fault plans — the same trick PR 3 used for Water's shared
// reductions.

// RecWords is the record size in 8-byte words.
const RecWords = 4

const (
	recVersion = 0
	recSum     = 1
	recXor     = 2
	recTag     = 3
)

// tagSalt marks record tags so a misrouted read is distinguishable from
// an untouched zero page.
const tagSalt = 0x5e55_10_4a11_0c8d

// Costs are the front-end service costs in cycles, charged as User
// time on top of the shared-memory traffic the operations generate.
type Costs struct {
	// Parse is charged once per request (decode, dispatch, encode).
	Parse sim.Time
	// PerRecord is charged per record touched (get: 1, scan: run
	// length, put: 1).
	PerRecord sim.Time
}

// DefaultCosts returns the calibrated front-end costs.
func DefaultCosts() Costs { return Costs{Parse: 150, PerRecord: 40} }

// Store is the placed table: all fields are fixed at Place time and
// read-only afterwards, so any shard may serve any key.
//
//mgs:shared
type Store struct {
	// nKeys and recWords describe the table; keysPerShard and
	// pagesPerShard the block mapping; base the first record's address.
	// All set by Place, never written after construction (shardsafe
	// rejects any later write).
	nKeys         int
	shards        int
	keysPerShard  int
	pagesPerShard int
	pageSize      int
	base          vm.Addr
	costs         Costs
}

// Place allocates and homes the table on m: shard s's pages live on the
// first processor of SSMP s, and every record's tag word is initialized
// backdoor (setup carries no simulated cost). nKeys must be a positive
// power of two so the workload's hot-key permutation applies.
func Place(m *harness.Machine, nKeys int, costs Costs) *Store {
	if nKeys <= 0 || nKeys&(nKeys-1) != 0 {
		panic("serve: nKeys must be a positive power of two")
	}
	shards := m.Cfg.P / m.Cfg.C
	if shards > nKeys {
		panic("serve: more shards than keys")
	}
	keysPerShard := nKeys / shards
	recBytes := RecWords * 8
	pageSize := m.Cfg.PageSize
	recsPerPage := pageSize / recBytes
	if recsPerPage == 0 {
		panic("serve: page smaller than one record")
	}
	pagesPerShard := (keysPerShard + recsPerPage - 1) / recsPerPage
	s := &Store{
		nKeys: nKeys, shards: shards, keysPerShard: keysPerShard,
		pagesPerShard: pagesPerShard, pageSize: pageSize, costs: costs,
	}
	c := m.Cfg.C
	s.base = m.AllocHomed(shards*pagesPerShard*pageSize, func(page int) int {
		return (page / pagesPerShard) * c
	})
	for k := 0; k < nKeys; k++ {
		m.SetI64(s.wordAddr(int32(k), recTag), int64(uint64(k)^tagSalt))
	}
	return s
}

// NKeys returns the keyspace size.
func (s *Store) NKeys() int { return s.nKeys }

// Shards returns the shard count (one per SSMP).
func (s *Store) Shards() int { return s.shards }

// ShardOf is the deterministic sharding function: contiguous key blocks.
func (s *Store) ShardOf(key int32) int { return int(key) / s.keysPerShard }

// LockID returns the msync lock guarding shard sh. Serve locks start at
// 0; apps that compose with the store must number their own locks from
// Shards() up.
func (s *Store) LockID(sh int) int { return sh }

// wordAddr returns the address of the given word of key's record.
func (s *Store) wordAddr(key int32, word int) vm.Addr {
	sh := s.ShardOf(key)
	inShard := int(key) - sh*s.keysPerShard
	return s.base + vm.Addr(sh*s.pagesPerShard*s.pageSize+inShard*RecWords*8+word*8)
}

// Get reads key's record under its shard lock and returns the folded
// words (a response-body stand-in).
func (s *Store) Get(c *harness.Ctx, key int32) uint64 {
	c.Compute(s.costs.Parse + s.costs.PerRecord)
	sh := s.ShardOf(key)
	c.Acquire(s.LockID(sh))
	v := uint64(c.LoadI64(s.wordAddr(key, recVersion)))
	v += uint64(c.LoadI64(s.wordAddr(key, recSum)))
	v ^= uint64(c.LoadI64(s.wordAddr(key, recXor)))
	v ^= uint64(c.LoadI64(s.wordAddr(key, recTag)))
	c.Release(s.LockID(sh))
	return v
}

// Put applies a commutative update to key's record under its shard
// lock.
func (s *Store) Put(c *harness.Ctx, key int32, val uint64) {
	c.Compute(s.costs.Parse + s.costs.PerRecord)
	sh := s.ShardOf(key)
	c.Acquire(s.LockID(sh))
	s.putLocked(c, key, val)
	c.Release(s.LockID(sh))
}

// putLocked is the in-critical-section body of Put.
func (s *Store) putLocked(c *harness.Ctx, key int32, val uint64) {
	c.StoreI64(s.wordAddr(key, recVersion), c.LoadI64(s.wordAddr(key, recVersion))+1)
	c.StoreI64(s.wordAddr(key, recSum), int64(uint64(c.LoadI64(s.wordAddr(key, recSum)))+val))
	c.StoreI64(s.wordAddr(key, recXor), int64(uint64(c.LoadI64(s.wordAddr(key, recXor)))^val))
}

// Scan reads up to n consecutive records starting at key, clamped to
// the end of key's shard, under the shard lock, and returns the folded
// words.
func (s *Store) Scan(c *harness.Ctx, key int32, n int) uint64 {
	sh := s.ShardOf(key)
	end := int32((sh + 1) * s.keysPerShard)
	if int32(n) < end-key {
		end = key + int32(n)
	}
	c.Compute(s.costs.Parse + s.costs.PerRecord*sim.Time(end-key))
	var v uint64
	c.Acquire(s.LockID(sh))
	for k := key; k < end; k++ {
		v += uint64(c.LoadI64(s.wordAddr(k, recVersion)))
		v += uint64(c.LoadI64(s.wordAddr(k, recSum)))
		v ^= uint64(c.LoadI64(s.wordAddr(k, recXor)))
	}
	c.Release(s.LockID(sh))
	return v
}

// Corrupt flips one bit of key's sum word, backdoor. Test support:
// proves VerifyAgainst actually depends on the record contents.
func (s *Store) Corrupt(m *harness.Machine, key int32) {
	a := s.wordAddr(key, recSum)
	m.SetI64(a, m.GetI64(a)^1)
}

// VerifyAgainst compares the store's final records (read backdoor, no
// simulated cost) against the trace's commutative expectation and
// returns the first mismatch.
func (s *Store) VerifyAgainst(m *harness.Machine, e Expect) error {
	check := func(k int, word string, got, want int64) error {
		return fmt.Errorf("serve: key %d %s = %d, want %d", k, word, got, want)
	}
	for k := 0; k < s.nKeys; k++ {
		key := int32(k)
		if got, want := m.GetI64(s.wordAddr(key, recVersion)), e.Count[k]; got != want {
			return check(k, "version", got, want)
		}
		if got, want := m.GetI64(s.wordAddr(key, recSum)), int64(e.Sum[k]); got != want {
			return check(k, "sum", got, want)
		}
		if got, want := m.GetI64(s.wordAddr(key, recXor)), int64(e.Xor[k]); got != want {
			return check(k, "xor", got, want)
		}
		if got, want := m.GetI64(s.wordAddr(key, recTag)), int64(uint64(k)^tagSalt); got != want {
			return check(k, "tag", got, want)
		}
	}
	return nil
}
