package serve

import (
	"encoding/json"
	"fmt"
	"strings"

	"mgs/internal/harness"
	"mgs/internal/obs"
	"mgs/internal/sim"
)

// LatencyBuckets is the per-request latency histogram layout: geometric
// with ratio 5/4 from 64 cycles to ~32M cycles, fine enough that the
// bucket-interpolated p999 estimate (obs.Histogram.Quantile) stays
// within one ratio step of the exact tail. Built once at init; the
// slice is read-only afterwards.
var LatencyBuckets = latencyBuckets()

func latencyBuckets() []int64 {
	var b []int64
	for x := int64(64); x < 32_000_000; x = x * 5 / 4 {
		b = append(b, x)
	}
	return b
}

// Recorder owns the per-phase latency histograms and op counters,
// registered on the machine's metrics registry. Histograms and counters
// update with atomics (internal/obs), so concurrent engine shards
// record without coordination and totals stay schedule-independent.
//
//mgs:shared
type Recorder struct {
	// phases and ops are fixed at construction and read-only afterwards
	// (the histograms themselves are internally atomic).
	phases []*obs.Histogram
	ops    [3]*obs.Counter
	names  []string
}

// NewRecorder registers one latency histogram per phase
// ("serve.lat.<phase>") plus the op counters on reg.
func NewRecorder(reg *obs.Registry, phases []Phase) *Recorder {
	r := &Recorder{}
	for _, ph := range phases {
		r.phases = append(r.phases, reg.Histogram("serve.lat."+ph.Name, LatencyBuckets))
		r.names = append(r.names, ph.Name)
	}
	for op := OpGet; op <= OpScan; op++ {
		r.ops[op] = reg.Counter("serve.ops." + op.String())
	}
	return r
}

// Observe records one served request: its latency in simulated cycles
// (completion minus scheduled arrival — queueing included) into the
// phase's histogram, and the op count.
//
//mgs:noalloc
func (r *Recorder) Observe(phase uint8, op Op, lat sim.Time) {
	r.phases[phase].Observe(int64(lat))
	r.ops[op].Add(1)
}

// SLO is a per-phase latency service-level objective in simulated
// cycles; zero fields are unchecked.
type SLO struct {
	P50  float64 `json:"p50,omitempty"`
	P99  float64 `json:"p99,omitempty"`
	P999 float64 `json:"p999,omitempty"`
}

// Empty reports whether no objective is set.
func (s SLO) Empty() bool { return s.P50 == 0 && s.P99 == 0 && s.P999 == 0 }

// PhaseStats is one phase's latency digest.
type PhaseStats struct {
	Phase string  `json:"phase"`
	Count int64   `json:"count"`
	Mean  float64 `json:"mean_cycles"`
	P50   float64 `json:"p50_cycles"`
	P99   float64 `json:"p99_cycles"`
	P999  float64 `json:"p999_cycles"`
	SLOOK bool    `json:"slo_ok"`
}

// Report is the serving run's result document (mgs-serve's JSON shape;
// CSV renders the same rows).
type Report struct {
	P          int          `json:"p"`
	C          int          `json:"c"`
	Seed       uint64       `json:"seed"`
	Theta      float64      `json:"theta"`
	Cycles     sim.Time     `json:"cycles"`
	Requests   int64        `json:"requests"`
	Gets       int64        `json:"gets"`
	Puts       int64        `json:"puts"`
	Scans      int64        `json:"scans"`
	LockHits   int64        `json:"lock_hits"`
	LockTotal  int64        `json:"lock_total"`
	Dropped    int64        `json:"dropped_msgs"`
	Retransmit int64        `json:"retransmits"`
	SLO        SLO          `json:"slo"`
	SLOOK      bool         `json:"slo_ok"`
	Phases     []PhaseStats `json:"phases"`
	// Breakdown is the per-request cost attribution (mgs-serve
	// -breakdown); nil — and absent from JSON — unless the run was
	// profiled (exp.ServeRunBreakdown).
	Breakdown *CostBreakdown `json:"breakdown,omitempty"`
}

// CostBreakdown attributes a serving run's machine time to request cost
// components: cycles summed across processors per attribution category
// of the cycle profiler, plus the reliable transport's recovery
// accounting. The lock column is time blocked on shard locks, protocol
// is MGS software-coherence work (page faults, release rounds,
// directory traffic), transport is latency paid to message loss
// recovery (timeouts, backoff, delayed first deliveries).
type CostBreakdown struct {
	UserCycles      int64 `json:"user_cycles"`
	LockCycles      int64 `json:"lock_cycles"`
	BarrierCycles   int64 `json:"barrier_cycles"`
	ProtocolCycles  int64 `json:"protocol_cycles"`
	TransportCycles int64 `json:"transport_cycles"`
	// PerRequestCycles is the attributed (non-user) cost per request:
	// (lock + barrier + protocol + transport) / requests.
	PerRequestCycles float64 `json:"per_request_cycles"`
	// HotLocks is the profiler's per-lock attribution, hottest first
	// (top 5): which shard locks the lock cycles concentrate on.
	HotLocks []HotLock `json:"hot_locks,omitempty"`
}

// HotLock is one lock's aggregate attributed cycles.
type HotLock struct {
	ID     int64 `json:"id"`
	Cycles int64 `json:"cycles"`
}

// BreakdownCSVHeader is the column set of BreakdownCSV.
var BreakdownCSVHeader = []string{"component", "cycles", "per_request_cycles"}

// BreakdownCSV renders the breakdown as CSV with a header, one row per
// cost component.
func (r Report) BreakdownCSV() string {
	b := r.Breakdown
	if b == nil {
		return ""
	}
	var sb strings.Builder
	sb.WriteString(strings.Join(BreakdownCSVHeader, ","))
	sb.WriteByte('\n')
	row := func(name string, cycles int64) {
		per := 0.0
		if r.Requests > 0 {
			per = float64(cycles) / float64(r.Requests)
		}
		fmt.Fprintf(&sb, "%s,%d,%.1f\n", name, cycles, per)
	}
	row("user", b.UserCycles)
	row("lock", b.LockCycles)
	row("barrier", b.BarrierCycles)
	row("protocol", b.ProtocolCycles)
	row("transport", b.TransportCycles)
	return sb.String()
}

// sloOK checks one phase digest against the objective.
func (s SLO) sloOK(ps PhaseStats) bool {
	if s.P50 > 0 && ps.P50 > s.P50 {
		return false
	}
	if s.P99 > 0 && ps.P99 > s.P99 {
		return false
	}
	if s.P999 > 0 && ps.P999 > s.P999 {
		return false
	}
	return true
}

// BuildReport digests the recorder's histograms and the run result into
// the report document.
func (r *Recorder) BuildReport(w Workload, res harness.Result, p, c int, slo SLO) Report {
	rep := Report{
		P: p, C: c, Seed: w.Seed, Theta: w.Theta,
		Cycles:    res.Cycles,
		Gets:      r.ops[OpGet].Value(),
		Puts:      r.ops[OpPut].Value(),
		Scans:     r.ops[OpScan].Value(),
		LockHits:  res.LockHits,
		LockTotal: res.LockTotal,
		Dropped:   res.Fault.Dropped,
		Retransmit: res.Fault.Retransmits,
		SLO:       slo,
		SLOOK:     true,
	}
	rep.Requests = rep.Gets + rep.Puts + rep.Scans
	for i, h := range r.phases {
		n := h.Count()
		ps := PhaseStats{
			Phase: r.names[i],
			Count: n,
			P50:   h.Quantile(0.50),
			P99:   h.Quantile(0.99),
			P999:  h.Quantile(0.999),
		}
		if n > 0 {
			ps.Mean = float64(h.Sum()) / float64(n)
		}
		ps.SLOOK = slo.sloOK(ps)
		if !ps.SLOOK {
			rep.SLOOK = false
		}
		rep.Phases = append(rep.Phases, ps)
	}
	return rep
}

// CSVHeader is the column set of CSV renders, one row per phase.
var CSVHeader = []string{
	"p", "c", "seed", "phase", "count",
	"mean_cycles", "p50_cycles", "p99_cycles", "p999_cycles",
	"lock_hits", "lock_total", "dropped_msgs", "retransmits", "slo_ok",
}

// CSVRows renders the report as CSV records (no header), one per
// phase, with float columns in %.1f so output is bit-stable.
func (r Report) CSVRows() [][]string {
	var rows [][]string
	for _, ps := range r.Phases {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.P), fmt.Sprintf("%d", r.C),
			fmt.Sprintf("%d", r.Seed), ps.Phase,
			fmt.Sprintf("%d", ps.Count),
			fmt.Sprintf("%.1f", ps.Mean),
			fmt.Sprintf("%.1f", ps.P50),
			fmt.Sprintf("%.1f", ps.P99),
			fmt.Sprintf("%.1f", ps.P999),
			fmt.Sprintf("%d", r.LockHits), fmt.Sprintf("%d", r.LockTotal),
			fmt.Sprintf("%d", r.Dropped), fmt.Sprintf("%d", r.Retransmit),
			fmt.Sprintf("%t", ps.SLOOK),
		})
	}
	return rows
}

// CSV renders the report with a header line.
func (r Report) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(CSVHeader, ","))
	b.WriteByte('\n')
	for _, row := range r.CSVRows() {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// JSON renders the report as indented JSON.
func (r Report) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }
