package serve

import "mgs/internal/sim"

// DefaultWorkload returns the standard three-phase serving schedule:
// steady Zipf traffic, working-set drift, then a flash crowd at 4x the
// arrival rate concentrated on 1/64th of the keyspace. The small
// variant shrinks the keyspace and durations for tests and smoke runs.
// The op mix is read-heavy (75% get / 5% scan / 20% put), the classic
// session-store shape.
func DefaultWorkload(small bool, seed uint64) Workload {
	w := Workload{
		Seed:   seed,
		NKeys:  1024,
		GetBP:  7500,
		ScanBP: 500,
		ScanLen: 8,
		Theta:  0.9,
		Phases: []Phase{
			{Name: "steady", Kind: Steady, Cycles: 800_000, MeanGap: 2_500},
			{Name: "drift", Kind: Drift, Cycles: 800_000, MeanGap: 2_500},
			{Name: "flash", Kind: Flash, Cycles: 400_000, MeanGap: 600, HotFrac: 1.0 / 64},
		},
	}
	if small {
		w.NKeys = 256
		w.Phases = []Phase{
			{Name: "steady", Kind: Steady, Cycles: 300_000, MeanGap: 6_000},
			{Name: "drift", Kind: Drift, Cycles: 300_000, MeanGap: 6_000},
			{Name: "flash", Kind: Flash, Cycles: 150_000, MeanGap: 1_500, HotFrac: 1.0 / 64},
		}
	}
	return w
}

// Mixes are the named op-mix presets mgs-serve's -workload flag
// accepts, applied on top of DefaultWorkload.
var Mixes = []string{"default", "read-heavy", "write-heavy", "scan-heavy"}

// ApplyMix adjusts the workload's op mix to the named preset; unknown
// names report false.
func ApplyMix(w *Workload, mix string) bool {
	switch mix {
	case "", "default":
	case "read-heavy":
		w.GetBP, w.ScanBP = 9000, 500
	case "write-heavy":
		w.GetBP, w.ScanBP = 4000, 500
	case "scan-heavy":
		w.GetBP, w.ScanBP = 5000, 3000
	default:
		return false
	}
	return true
}

// TotalCycles is the schedule's offered-traffic span.
func (w Workload) TotalCycles() sim.Time {
	var t sim.Time
	for _, ph := range w.Phases {
		t += ph.Cycles
	}
	return t
}
