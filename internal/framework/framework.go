// Package framework implements the paper's DSSMP performance framework
// (§2.4, Figure 2): given execution times across cluster sizes at fixed
// P, it computes the three characterization metrics — breakup penalty,
// multigrain potential, and multigrain curvature.
package framework

import (
	"fmt"
	"sort"
	"strings"
)

// Point is one cluster size's execution time.
type Point struct {
	C    int
	Time float64 // execution time (cycles)
}

// Metrics characterizes an application's behaviour on DSSMPs.
type Metrics struct {
	// BreakupPenalty is (T(P/2) - T(P)) / T(P): the minimum cost of
	// breaking the tightly-coupled machine in two. The paper quotes it
	// as a percentage (Jacobi 16%, Water 322%, TSP 2270%).
	BreakupPenalty float64
	// MultigrainPotential is (T(1) - T(P/2)) / T(1): the fraction of
	// the all-software execution time recovered by clustering (Water
	// 67%, Barnes-Hut 85%).
	MultigrainPotential float64
	// CurvatureIndex is the fraction of the multigrain potential
	// achieved by the geometric-middle cluster size. Above 0.5 the
	// curve is convex (gains come early, at small clusters); below,
	// concave (gains need large clusters).
	CurvatureIndex float64
}

// Convex reports whether most of the potential arrives at small
// clusters.
func (m Metrics) Convex() bool { return m.CurvatureIndex > 0.5 }

// Curvature names the curve shape as the paper does.
func (m Metrics) Curvature() string {
	if m.Convex() {
		return "convex"
	}
	return "concave"
}

// String renders the metrics in the paper's vocabulary.
func (m Metrics) String() string {
	return fmt.Sprintf("breakup penalty %.0f%%, multigrain potential %.0f%%, %s curvature",
		m.BreakupPenalty*100, m.MultigrainPotential*100, m.Curvature())
}

// Analyze computes the metrics from a cluster-size sweep. Points must
// cover C = 1 through C = P in powers of two (any order); it panics on
// fewer than three points.
func Analyze(points []Point) Metrics {
	if len(points) < 3 {
		panic("framework: need at least C=1, C=P/2, C=P points")
	}
	ps := append([]Point(nil), points...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].C < ps[j].C })
	t := func(c int) float64 {
		for _, p := range ps {
			if p.C == c {
				return p.Time
			}
		}
		panic(fmt.Sprintf("framework: no point for C=%d", c))
	}
	p := ps[len(ps)-1].C
	t1, tHalf, tP := t(1), t(p/2), t(p)

	m := Metrics{
		BreakupPenalty:      (tHalf - tP) / tP,
		MultigrainPotential: (t1 - tHalf) / t1,
	}
	// Geometric middle of the software region [1, P/2].
	mid := 1
	for mid*mid < p/2 {
		mid *= 2
	}
	if span := t1 - tHalf; span > 0 {
		m.CurvatureIndex = (t1 - t(mid)) / span
	}
	return m
}

// Table renders a sweep as aligned text (one row per cluster size).
func Table(points []Point) string {
	ps := append([]Point(nil), points...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].C < ps[j].C })
	var b strings.Builder
	b.WriteString("  C     cycles   slowdown vs C=P\n")
	tP := ps[len(ps)-1].Time
	for _, p := range ps {
		fmt.Fprintf(&b, "  %-4d %10.0f  %6.2fx\n", p.C, p.Time, p.Time/tP)
	}
	return b.String()
}
