package framework

import (
	"math"
	"strings"
	"testing"
)

func points(ts map[int]float64) []Point {
	var ps []Point
	for c, t := range ts {
		ps = append(ps, Point{C: c, Time: t})
	}
	return ps
}

func TestAnalyzeCurveB(t *testing.T) {
	// The paper's "curve B": tiny breakup penalty, large potential,
	// convex (most gains at small clusters).
	m := Analyze(points(map[int]float64{
		1: 1000, 2: 500, 4: 300, 8: 250, 16: 220, 32: 200,
	}))
	if got := m.BreakupPenalty; math.Abs(got-0.10) > 1e-9 {
		t.Errorf("breakup penalty = %v, want 0.10", got)
	}
	if got := m.MultigrainPotential; math.Abs(got-0.78) > 1e-9 {
		t.Errorf("potential = %v, want 0.78", got)
	}
	if !m.Convex() {
		t.Errorf("curve B must be convex, index = %v", m.CurvatureIndex)
	}
}

func TestAnalyzeCurveA(t *testing.T) {
	// "Curve A": high breakup penalty, small potential, concave.
	m := Analyze(points(map[int]float64{
		1: 1000, 2: 980, 4: 950, 8: 900, 16: 800, 32: 100,
	}))
	if m.BreakupPenalty < 5 {
		t.Errorf("breakup penalty = %v, want > 5 (700%%)", m.BreakupPenalty)
	}
	if m.Convex() {
		t.Errorf("curve A must be concave, index = %v", m.CurvatureIndex)
	}
}

func TestAnalyzeFlatCurve(t *testing.T) {
	// Jacobi/MatMul shape: performance independent of cluster size.
	m := Analyze(points(map[int]float64{1: 100, 2: 100, 4: 100, 8: 100}))
	if m.BreakupPenalty != 0 || m.MultigrainPotential != 0 {
		t.Errorf("flat curve: %+v", m)
	}
}

func TestAnalyzeUnsortedInput(t *testing.T) {
	a := Analyze([]Point{{8, 100}, {1, 400}, {4, 150}, {2, 250}})
	b := Analyze([]Point{{1, 400}, {2, 250}, {4, 150}, {8, 100}})
	if a != b {
		t.Errorf("order dependence: %+v vs %+v", a, b)
	}
}

func TestAnalyzePanicsOnTooFew(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Analyze([]Point{{1, 1}, {2, 1}})
}

func TestStringAndTable(t *testing.T) {
	ps := points(map[int]float64{1: 1000, 2: 400, 4: 220, 8: 200})
	m := Analyze(ps)
	s := m.String()
	if !strings.Contains(s, "breakup penalty") || !strings.Contains(s, "%") {
		t.Errorf("String() = %q", s)
	}
	tab := Table(ps)
	if !strings.Contains(tab, "1.00x") {
		t.Errorf("Table missing C=P row: %q", tab)
	}
}
