package lint

import (
	"go/ast"
	"go/types"

	"mgs/internal/lint/analysis"
)

// NoWallTime forbids wall-clock time and process-global randomness in
// deterministic packages. Simulated code must take its notion of time
// from sim.Time (Engine.Now, Proc.Clock) and its randomness from
// explicitly seeded generators (rand.New(rand.NewSource(seed)) or the
// repo's xorshift idiom); anything else couples simulated results to
// the host, and every sweep CSV silently stops being reproducible.
var NoWallTime = &analysis.Analyzer{
	Name: "nowalltime",
	Doc: "forbid time.Now/Since/Sleep and global math/rand in deterministic packages; " +
		"virtual time and seeded generators only",
	Run: runNoWallTime,
}

// wallClockFuncs are the package time functions that read the host
// clock or host timers. Pure types and arithmetic (time.Duration,
// time.Time values passed in from the host side) stay legal.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// seededRandFuncs are the math/rand constructors that produce an
// explicitly seeded generator; everything else at package level draws
// from the process-global source.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runNoWallTime(pass *analysis.Pass) error {
	if !isDeterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range sourceFiles(pass) {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch pkgNameOf(pass.TypesInfo, sel) {
			case "time":
				if wallClockFuncs[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the host clock or scheduler: forbidden in deterministic package %s (use sim.Time via Engine.Now/Proc.Clock)",
						sel.Sel.Name, pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				if _, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); isFunc && !seededRandFuncs[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"global rand.%s draws from the process-wide source: forbidden in deterministic package %s (use rand.New(rand.NewSource(seed)))",
						sel.Sel.Name, pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil
}
