// Package stats is host-side: the determinism analyzers do not apply,
// so nothing here is flagged.
package stats

import (
	"math/rand"
	"time"
)

func Stamp() (time.Time, int) {
	time.Sleep(1)
	return time.Now(), rand.Intn(4)
}
