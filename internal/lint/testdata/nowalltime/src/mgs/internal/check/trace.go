// Package check mirrors the real internal/check for the nowalltime
// fixture: the spec's Feed and the explorer's Chooser.Choose execute in
// engine context, so counterexample traces must be functions of the
// choice sequence alone — a host-clock stamp or a global rand draw
// would make two replays of one trace differ.
package check

import (
	"math/rand"
	"time"
)

// Trace is a replayable counterexample: the choice indices are the
// whole schedule.
type Trace struct {
	Choices []int
	Stamp   int64
}

// Record is the legitimate construction: the trace carries only the
// deterministic choice sequence (any wall-clock stamp is added by the
// host-side CLI after the run, never on the simulated path).
func Record(choices []int) Trace {
	return Trace{Choices: append([]int(nil), choices...)}
}

// StampNow shows the forbidden construction: stamping a trace from the
// host clock on the simulated path makes replays non-reproducible.
func StampNow(choices []int) Trace {
	return Trace{
		Choices: choices,
		Stamp:   time.Now().UnixNano(), // want `time\.Now reads the host clock`
	}
}

// RandomChoice shows the other forbidden construction: a chooser that
// draws from the process-global source explores a different schedule
// every run, so no counterexample it finds can be replayed.
func RandomChoice(fanout int) int {
	return rand.Intn(fanout) // want `global rand\.Intn draws from the process-wide source`
}

// SeededChoice is the acceptable randomized form: the stream derives
// from an explicit seed recorded in the trace.
func SeededChoice(seed int64, fanout int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(fanout)
}
