package vm

import (
	"math/rand"
	"time"
)

// Bad uses the host clock and the process-global rand source.
func Bad() time.Duration {
	start := time.Now() // want `time\.Now reads the host clock`
	time.Sleep(1)       // want `time\.Sleep reads the host clock`
	_ = rand.Intn(4)    // want `global rand\.Intn draws from the process-wide source`
	return time.Since(start) // want `time\.Since reads the host clock`
}

// Good sticks to seeded generators and pure time arithmetic.
func Good(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	var d time.Duration = 5
	_ = d
	return r.Intn(4)
}

// Allowed demonstrates both placements of the escape hatch.
func Allowed() (a, b time.Time) {
	//mgslint:allow nowalltime -- fixture: host-side profiling hook, never on the simulated path
	a = time.Now()
	b = time.Now() //mgslint:allow nowalltime -- fixture: trailing-form annotation
	return a, b
}

// MissingJustification shows that a bare allow suppresses nothing and
// is itself reported.
func MissingJustification() time.Time {
	//mgslint:allow nowalltime
	// want `mgslint:allow without a justification`
	return time.Now() // want `time\.Now reads the host clock`
}

// UnknownName shows that a typo'd analyzer name suppresses nothing.
func UnknownName() time.Time {
	//mgslint:allow nosuchcheck -- the name is wrong, so this is dead
	// want `unknown analyzer "nosuchcheck"`
	return time.Now() // want `time\.Now reads the host clock`
}
