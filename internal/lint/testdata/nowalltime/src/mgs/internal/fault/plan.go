// Package fault mirrors the real internal/fault for the nowalltime
// fixture: fault plans execute on the simulated path, so every fate
// decision must be a pure function of (seed, message id) — host clocks
// and the process-global rand source would make chaos runs
// unreproducible.
package fault

import (
	"math/rand"
	"time"
)

// Plan is a deterministic fault schedule.
type Plan struct {
	Seed   uint64
	DropBP int
}

// SeededStream is the legitimate construction: the whole schedule
// derives from the plan seed and the message id, nothing else.
func (p Plan) SeededStream(msgID uint64) uint64 {
	return mix64(p.Seed ^ mix64(msgID))
}

// HostSeeded shows the forbidden construction: seeding a fault plan
// from the wall clock makes every chaos run unrepeatable.
func HostSeeded() Plan {
	return Plan{Seed: uint64(time.Now().UnixNano()), DropBP: 300} // want `time\.Now reads the host clock`
}

// GlobalRoll shows the other forbidden construction: drawing fates from
// the process-global source couples the schedule to whatever else has
// consumed from it.
func GlobalRoll(p Plan) bool {
	return rand.Intn(10000) < p.DropBP // want `global rand\.Intn draws from the process-wide source`
}

// LocalRoll is the acceptable seeded form.
func LocalRoll(p Plan, msgID uint64) bool {
	r := rand.New(rand.NewSource(int64(p.SeededStream(msgID))))
	return r.Intn(10000) < p.DropBP
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
