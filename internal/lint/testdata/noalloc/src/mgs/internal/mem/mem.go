// Package mem exercises the noalloc construct scan and the sanctioned
// zero-alloc idioms.
package mem

import (
	"fmt"
	"sync/atomic"
)

// Hot trips the common allocating constructs.
//
//mgs:noalloc
func Hot(dst, src []int, m map[int]int, n int) []int {
	tmp := make([]int, n) // want `make allocates`
	dst = append(src, 1)  // want `append to a different slice allocates`
	m[n] = 1              // want `map assignment may allocate a bucket`
	_ = tmp
	return dst
}

// Boxed allocates through an interface conversion and a capturing
// closure.
//
//mgs:noalloc
func Boxed(v int) {
	var x any = v                 // want `assignment to interface boxes and allocates`
	fn := func() int { return v } // want `closure captures variables and allocates`
	_, _ = x, fn
}

// Strings allocates by concatenation and conversion.
//
//mgs:noalloc
func Strings(a, b string, raw []byte) string {
	s := a + b       // want `string concatenation allocates`
	t := string(raw) // want `conversion to string copies and allocates`
	_ = t
	return s
}

// Steady is the sanctioned steady-state shape: a make guarded by a
// cap high-water test, and self-append growth. Neither is a finding.
//
//mgs:noalloc
func Steady(buf []int, n int) []int {
	if cap(buf) < n {
		buf = make([]int, 0, n)
	}
	buf = append(buf, n)
	return buf
}

// Counter stays on the stdlib whitelist: sync/atomic is pure register
// traffic.
//
//mgs:noalloc
func Counter(c *int64) int64 {
	atomic.AddInt64(c, 1)
	return atomic.LoadInt64(c)
}

// helper allocates; Deep reaches it transitively, and the finding is
// reported inside the callee (same package), not at the call site.
func helper(n int) []int {
	return make([]int, n) // want `reached from //mgs:noalloc mem\.Deep: make allocates`
}

//mgs:noalloc
func Deep(n int) []int {
	return helper(n)
}

// Printf is off the whitelist: the call edge itself is the finding.
//
//mgs:noalloc
func Printf() {
	fmt.Println() // want `call to fmt\.Println .*not on the no-allocation stdlib whitelist`
}

// coldPath allocates deliberately.
func coldPath() []int {
	return make([]int, 64)
}

// Warm escapes the cold edge with an allow at the call site — which
// also keeps coldPath's allocation from poisoning Warm's own exported
// fact.
//
//mgs:noalloc
func Warm() []int {
	return coldPath() //mgslint:allow noalloc -- deliberate cold path: runs once at attach, not in steady state
}

// Clean is allocation-free and exports a clean fact for the core
// fixture to consume.
//
//mgs:noalloc
func Clean(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Dirty allocates; its exported fact carries the cause across the
// package boundary.
func Dirty(n int) []int {
	return make([]int, n)
}
