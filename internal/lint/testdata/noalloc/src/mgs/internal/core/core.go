// Package core exercises the cross-package leg of noalloc: callee
// verdicts arrive as exported facts, not re-analysis.
package core

import "mgs/internal/mem"

// Fast calls a function whose exported fact proves it clean.
//
//mgs:noalloc
func Fast(a, b int) int {
	return mem.Clean(a, b)
}

// Slow calls across the package boundary into an allocating function;
// the diagnostic lands at the call site and carries the imported cause.
//
//mgs:noalloc
func Slow(n int) []int {
	return mem.Dirty(n) // want `call to mem\.Dirty allocates \(.*make allocates`
}
