// Package cache gives the call-graph tests a small, closed world: an
// interface with two implementations, static calls, and a method value.
package cache

type Store interface{ Get(k int) int }

type MapStore struct{ m map[int]int }

func (s *MapStore) Get(k int) int { return s.m[k] }

type SliceStore struct{ xs []int }

func (s *SliceStore) Get(k int) int { return s.xs[k] }

// UseIface dispatches through the interface: CHA resolves the call to
// every visible implementation.
func UseIface(s Store) int { return s.Get(1) }

// UseStatic calls one concrete method.
func UseStatic(s *MapStore) int { return s.Get(2) }

// Bind is a method value: the bound method may run later, so it is an
// edge even without a call.
func Bind(s *MapStore) func(int) int { return s.Get }

// Dyn calls through a function value: an unresolvable, dynamic site.
func Dyn(f func(int) int) int { return f(3) }
