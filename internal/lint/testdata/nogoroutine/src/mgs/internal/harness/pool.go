// Package harness is in nogoroutine's scope even though it is not a
// deterministic package: its worker pool is one of the two sanctioned
// spawn sites, and every other goroutine or channel here is a bug.
package harness

func RunPool(n int, job func(int)) {
	done := make(chan struct{}, n) // want `make\(chan \.\.\.\) outside the engine handshake`
	for k := 0; k < n; k++ {
		go func(k int) { // want `go statement hands scheduling`
			job(k)
			done <- struct{}{} // want `channel send outside the engine handshake`
		}(k)
	}
	for k := 0; k < n; k++ {
		<-done // want `channel receive outside the engine handshake`
	}
}
