package mem

// Spawn hands scheduling to the Go runtime.
func Spawn(fn func()) {
	go fn() // want `go statement hands scheduling`
}

// Channels exercises every forbidden channel operation.
func Channels() {
	ch := make(chan int, 1) // want `make\(chan \.\.\.\) outside the engine handshake`
	ch <- 1                 // want `channel send outside the engine handshake`
	<-ch                    // want `channel receive outside the engine handshake`
	close(ch)               // want `close of channel outside the engine handshake`
	for range ch { // want `range over channel`
	}
}

// Choose is scheduler-dependent by construction.
func Choose(a, b chan int) int {
	select { // want `select statement`
	case v := <-a: // want `channel receive outside the engine handshake`
		return v
	case v := <-b: // want `channel receive outside the engine handshake`
		return v
	}
}

// Allowed stands in for a sanctioned handshake site.
func Allowed() chan struct{} {
	//mgslint:allow nogoroutine -- fixture: stands in for the annotated engine handshake
	return make(chan struct{})
}

// NotChannels shows make/close of non-channel things stay legal.
func NotChannels() []int {
	s := make([]int, 4)
	m := make(map[int]int)
	_ = m
	return s
}
