// Package exp is host-side and outside nogoroutine's scope: nothing
// here is flagged.
package exp

func Spawn(fn func()) {
	done := make(chan struct{})
	go func() { fn(); close(done) }()
	<-done
}
