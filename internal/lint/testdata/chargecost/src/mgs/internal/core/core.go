package core

import (
	"mgs/internal/msg"
	"mgs/internal/sim"
)

type Costs struct {
	FaultEntry sim.Time
	RelWork    sim.Time
}

type System struct {
	eng   *sim.Engine
	net   *msg.Network
	costs Costs
	pend  int
}

// Access is exported timed API; it charges directly.
func (s *System) Access(p *sim.Proc, at sim.Time) {
	p.Advance(s.costs.FaultEntry)
}

// onGood charges through a same-package helper.
func (s *System) onGood(p *sim.Proc, at sim.Time) {
	s.bill(p)
}

func (s *System) bill(p *sim.Proc) {
	p.Advance(s.costs.FaultEntry)
}

// onFree updates protocol state but the work it models costs nothing.
func (s *System) onFree(p *sim.Proc, at sim.Time) { // want `onFree is a protocol handler/send path but no path through it charges`
	s.pend++
}

// onRequeue reschedules at the same instant: that is not a charge.
func (s *System) onRequeue(at sim.Time) { // want `onRequeue is a protocol handler/send path but no path through it charges`
	s.eng.At(at, func() {})
}

// onDelay reschedules with an offset: time is charged.
func (s *System) onDelay(at sim.Time) {
	s.eng.At(at+1, func() {})
}

// onAfter charges via the relative scheduler.
func (s *System) onAfter(at sim.Time) {
	s.eng.After(2, func() {})
}

// sendData launches a message: charged inside Network.Send.
func (s *System) sendData(p *sim.Proc, at sim.Time) {
	s.net.Send(0, 1, at, 64, func(done sim.Time) {})
}

// lazyDone is unexported with no handler prefix: out of scope.
func (s *System) lazyDone(at sim.Time) {
	s.pend--
}

// WakeAll is exported and free, but the entry cost is charged upstream
// by Network.Send's HandlerEntry before any caller reaches it.
//
//mgslint:allow chargecost -- fixture: cost charged upstream by Send's HandlerEntry
func (s *System) WakeAll(p *sim.Proc) {
	p.Wake(0)
}
