// Package sim is a miniature stand-in for the real internal/sim, just
// enough surface for the chargecost fixtures to type-check against.
package sim

type Time int64

type Engine struct{ now Time }

func (e *Engine) Now() Time               { return e.now }
func (e *Engine) At(t Time, fn func())    {}
func (e *Engine) After(d Time, fn func()) {}

type Proc struct {
	ID    int
	clock Time
	debt  Time
}

func (p *Proc) Advance(d Time) Time            { p.clock += d; return d }
func (p *Proc) Sleep(d Time)                   { p.clock += d }
func (p *Proc) AddDebt(d Time)                 { p.debt += d }
func (p *Proc) HandlerStart(t, cost Time) Time { return t + cost }
func (p *Proc) Wake(t Time)                    {}
