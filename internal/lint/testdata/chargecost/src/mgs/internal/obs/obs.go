// Package obs mirrors the real observability spine's shape. The
// chargecost rule inverts here: emission must cost zero simulated
// cycles, so any charge in this package is a diagnostic.
package obs

import "mgs/internal/sim"

type Event struct {
	T    sim.Time
	Name string
}

type Sink interface{ Emit(Event) }

type Observer struct{ sinks []Sink }

func (o *Observer) Tracing() bool { return o != nil && len(o.sinks) > 0 }

// Emit publishes the event without touching virtual time: the
// zero-cost contract in its canonical form.
func (o *Observer) Emit(e Event) {
	for _, s := range o.sinks {
		s.Emit(e)
	}
}

// EmitCharged bills the emitting processor for the trace — the
// observer perturbing the run it observes.
func (o *Observer) EmitCharged(p *sim.Proc, e Event) { // want `EmitCharged is an obs emission path but charges simulated cycles`
	p.Advance(10)
	o.Emit(e)
}

// EmitDeferred reschedules emission at a virtual-time offset, which
// injects an event the simulation would not otherwise have.
func (o *Observer) EmitDeferred(eng *sim.Engine, at sim.Time, e Event) { // want `EmitDeferred is an obs emission path but charges simulated cycles`
	eng.At(at+1, func() { o.Emit(e) })
}

// observeHandler snapshots a handler's completion time into an event;
// reading clocks is free, only charging is forbidden.
func (o *Observer) observeHandler(p *sim.Proc, at sim.Time) {
	o.Emit(Event{T: at, Name: "HANDLER"})
}
