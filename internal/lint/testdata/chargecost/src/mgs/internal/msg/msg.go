package msg

import "mgs/internal/sim"

type Costs struct {
	SendOverhead   sim.Time
	HandlerEntry   sim.Time
	RetransmitWork sim.Time
}

type Network struct {
	eng   *sim.Engine
	procs []*sim.Proc
	costs Costs
}

// Send charges launch overhead and handler entry: the canonical path.
func (n *Network) Send(from, to int, when sim.Time, bytes int, fn func(done sim.Time)) {
	arrive := when + n.costs.SendOverhead
	n.eng.At(arrive, func() {
		cost := n.costs.HandlerEntry
		start := n.procs[to].HandlerStart(arrive, cost)
		fn(start + cost)
	})
}

// SendFree delivers without charging anything.
func (n *Network) SendFree(from, to int, when sim.Time, fn func(done sim.Time)) { // want `SendFree is a protocol handler/send path but no path through it charges`
	n.eng.At(when, func() { fn(when) })
}

// The reliable-transport surface (reliable.go): retransmission is real
// protocol-engine work — the sender's NIC handler rebuilds and relaunches
// the message — so timeout paths must charge like any other send path.

// onRetryTimeout is the charged retransmit path: the timer fires, the
// sender is billed the recovery work, and the attempt relaunches.
func (n *Network) onRetryTimeout(fire sim.Time, from, to int, fn func(done sim.Time)) {
	work := n.costs.RetransmitWork
	n.procs[from].AddDebt(work)
	n.Send(from, to, fire, 0, fn)
}

// onRetryTimeoutFree re-delivers the payload when the timer fires but
// bills nobody: the retransmission executes for free, deflating exactly
// the loss-recovery overhead the fault experiments measure.
func (n *Network) onRetryTimeoutFree(fire sim.Time, to int, fn func(done sim.Time)) { // want `onRetryTimeoutFree is a protocol handler/send path but no path through it charges`
	n.eng.At(fire, func() { fn(fire) })
}

// sendAckFree acknowledges a delivery without charging: transport acks
// are NIC-level and charged upstream by the delivering handler, which
// is exactly what the escape hatch is for.
//
//mgslint:allow chargecost -- ack emission is billed by the delivering handler's HandlerEntry
func (n *Network) sendAckFree(arrive sim.Time, to int) {
	n.eng.At(arrive, func() {})
}

// Arrive computes a landing time from link state: a cost producer. It
// returns sim.Time, so the charge is its result — landed by whichever
// caller schedules against it — and the analyzer must not demand a
// charge inside.
func (n *Network) Arrive(depart sim.Time, bytes int) sim.Time {
	return depart + sim.Time(bytes)
}
