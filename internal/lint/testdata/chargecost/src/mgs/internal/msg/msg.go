package msg

import "mgs/internal/sim"

type Costs struct {
	SendOverhead sim.Time
	HandlerEntry sim.Time
}

type Network struct {
	eng   *sim.Engine
	procs []*sim.Proc
	costs Costs
}

// Send charges launch overhead and handler entry: the canonical path.
func (n *Network) Send(from, to int, when sim.Time, bytes int, fn func(done sim.Time)) {
	arrive := when + n.costs.SendOverhead
	n.eng.At(arrive, func() {
		cost := n.costs.HandlerEntry
		start := n.procs[to].HandlerStart(arrive, cost)
		fn(start + cost)
	})
}

// SendFree delivers without charging anything.
func (n *Network) SendFree(from, to int, when sim.Time, fn func(done sim.Time)) { // want `SendFree is a protocol handler/send path but no path through it charges`
	n.eng.At(when, func() { fn(when) })
}
