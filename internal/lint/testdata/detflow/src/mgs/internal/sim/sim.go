// Package sim is a miniature stand-in for the real internal/sim, just
// enough surface for the detflow fixtures to type-check against.
package sim

type Time int64

type Engine struct{ now Time }

func (e *Engine) Now() Time            { return e.now }
func (e *Engine) At(t Time, fn func()) {}

type Proc struct{ ID int }

func (p *Proc) Advance(d Time) Time { return d }
func (p *Proc) Sleep(d Time)        {}
