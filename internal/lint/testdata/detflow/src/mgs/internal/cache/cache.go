// Package cache exports the taint facts the core fixture consumes:
// map-ordered returns, parameter propagation, and sink parameters.
package cache

import (
	"sort"

	"mgs/internal/sim"
)

// Keys returns map keys in iteration order: the exported fact carries
// the map-order taint to every caller.
func Keys(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SortedKeys collects then sorts — the sort cleanses map-order taint,
// so the fact is clean.
func SortedKeys(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// First propagates its parameter to its return value: PropParams pins
// the flow without tainting anything by itself.
func First(xs []int) int {
	return xs[0]
}

// Charge feeds its second parameter into charged cycles: SinkParams
// exports the obligation to every caller.
func Charge(p *sim.Proc, d sim.Time) {
	p.Advance(d)
}
