// Package core exercises detflow's source-to-sink tracking, both local
// and through the facts the cache fixture exports.
package core

import (
	"math/rand"

	"mgs/internal/cache"
	"mgs/internal/sim"
)

// Tick charges cycles derived from map iteration order, imported
// through a cross-package return fact.
func Tick(p *sim.Proc, m map[int]int) {
	ks := cache.Keys(m)
	p.Advance(sim.Time(ks[0])) // want `value derived from map iteration order .*flows into charged cycles \(Proc\.Advance\)`
}

// TickSorted consumes the cleansed variant: no finding.
func TickSorted(p *sim.Proc, m map[int]int) {
	ks := cache.SortedKeys(m)
	p.Advance(sim.Time(ks[0]))
}

// Jitter schedules with unseeded randomness.
func Jitter(e *sim.Engine) {
	d := rand.Intn(10)
	e.At(sim.Time(d), func() {}) // want `value derived from unseeded randomness .*flows into the committed event order \(Engine\.At\)`
}

// Warmup draws from a seeded *rand.Rand — a pure function of its seed,
// no finding.
func Warmup(e *sim.Engine, r *rand.Rand) {
	e.At(sim.Time(r.Intn(10)), func() {})
}

// Relay routes the taint through a parameter-to-return fact.
func Relay(p *sim.Proc, m map[int]int) {
	ks := cache.Keys(m)
	p.Advance(sim.Time(cache.First(ks))) // want `map iteration order .*charged cycles`
}

// Debit reaches the sink inside the callee through its SinkParams
// fact.
func Debit(p *sim.Proc, m map[int]int) {
	var n int
	for k := range m {
		n = k
	}
	cache.Charge(p, sim.Time(n)) // want `map iteration order .*via cache\.Charge`
}

// Tally is a commutative reduction over a map: order-independent, no
// finding.
func Tally(p *sim.Proc, m map[int]sim.Time) {
	var total sim.Time
	for _, v := range m {
		total += v
	}
	p.Advance(total)
}

// Local keeps the whole flow inside one function: range key into the
// event schedule.
func Local(e *sim.Engine, m map[int]int) {
	for k := range m {
		e.At(sim.Time(k), func() {}) // want `map iteration order .*committed event order`
	}
}
