// Package sim is a miniature stand-in for the real internal/sim, just
// enough surface for the shardsafe fixtures to type-check against.
package sim

type Time int64

type Engine struct{ now Time }

func (e *Engine) Now() Time                       { return e.now }
func (e *Engine) At(t Time, fn func())            {}
func (e *Engine) AtOn(sh int, t Time, fn func())  {}
func (e *Engine) After(d Time, fn func())         {}

type Proc struct{ ID int }

func NewProc(id int, body func(*Proc)) *Proc { return &Proc{ID: id} }
