// Package msync mirrors the PR 6 lock spine: maps that dispatchers on
// every engine shard reach concurrently.
package msync

import (
	"sync"
	"sync/atomic"

	"mgs/internal/sim"
)

// System is reachable from every shard's dispatcher.
//
//mgs:shared
type System struct {
	Mu sync.Mutex

	locks map[int]int //mgs:guardedby Mu

	epoch int64 //mgs:atomic

	owner int //mgs:shardpinned only the home SSMP's AtOn-pinned handlers touch it

	n int
}

// NewSystem writes fields of a value that has not been published yet:
// construction, not sharing.
func NewSystem() *System {
	s := &System{}
	s.locks = map[int]int{}
	s.n = 1
	return s
}

// LockHomed is the PR 6 fix shape: the map insert happens under Mu.
func (s *System) LockHomed(k, v int) {
	s.Mu.Lock()
	defer s.Mu.Unlock()
	s.locks[k] = v
}

// LockRacy re-introduces the PR 6 bug: an exported root writing the
// guarded map bare.
func (s *System) LockRacy(k, v int) {
	s.locks[k] = v // want `write to msync\.System\.locks \(//mgs:guardedby Mu\) without Mu\.Lock\(\) held on the path from msync\.\(System\)\.LockRacy`
}

// insert leaves the guard to its caller.
func (s *System) insert(k, v int) {
	s.locks[k] = v // want `without Mu\.Lock\(\) held on the path from msync\.\(System\)\.Release`
}

// Release reaches insert's write with nothing held: the residual
// survives to this root.
func (s *System) Release(k int) {
	s.insert(k, 0)
}

// Homed discharges insert's residual by holding the guard on the path.
func (s *System) Homed(k int) {
	s.Mu.Lock()
	defer s.Mu.Unlock()
	s.insert(k, 1)
}

// Drop mutates the guarded map through the delete builtin.
func (s *System) Drop(k int) {
	delete(s.locks, k) // want `without Mu\.Lock\(\) held on the path from msync\.\(System\)\.Drop`
}

// Deposit requires the caller to hold Mu — a documented API contract.
// The allow silences the local report, but the Unguarded fact still
// exports, so cross-package callers are checked (see the core fixture).
func (s *System) Deposit(k, v int) {
	s.locks[k] = v //mgslint:allow shardsafe -- API contract: caller holds Mu; the Unguarded fact still exports to check them
}

// Rearm holds Mu while scheduling, but the callback runs later on its
// own shard with nothing held: locks do not carry into scheduled
// literals.
func (s *System) Rearm(e *sim.Engine, k int) {
	s.Mu.Lock()
	defer s.Mu.Unlock()
	e.At(1, func() {
		s.locks[k] = 2 // want `without Mu\.Lock\(\) held on the path from scheduled callback at .*msync\.go:\d+`
	})
}

// Bump writes the //mgs:atomic field without sync/atomic.
func (s *System) Bump() {
	s.epoch = 1 // want `plain write to //mgs:atomic field System\.epoch`
	atomic.StoreInt64(&s.epoch, 2)
}

// Count writes a field of a //mgs:shared struct that carries no
// annotation at all.
func (s *System) Count() {
	s.n++ // want `write to unannotated field System\.n of //mgs:shared struct outside construction`
}

// Pin writes the shard-pinned field: the audit justification stands in
// for a mechanical check.
func (s *System) Pin(owner int) {
	s.owner = owner
}

var seq int

var pool = sync.Pool{}

func init() { seq = 1 }

// Next writes a package-level var from a deterministic package.
func Next() int {
	seq++ // want `write to package-level var seq from a deterministic package`
	return seq
}

// Reset reassigns an internally synchronized type: exempt.
func Reset() {
	pool = sync.Pool{}
}
