// Package core exercises the cross-package leg of shardsafe: the
// Unguarded facts msync exports are checked at call sites here.
package core

import (
	"mgs/internal/msync"
)

// Flush calls Deposit bare. Deposit's own package silenced the local
// report with an allow because the API contract puts the guard on the
// caller — which is exactly what this diagnostic enforces.
func Flush(s *msync.System) {
	s.Deposit(1, 2) // want `write to msync\.System\.locks \(//mgs:guardedby Mu\) without Mu\.Lock\(\) held on the path from core\.Flush.*via msync\.\(System\)\.Deposit`
}

// FlushLocked honors the contract: the guard is held by type+field, so
// the imported residual is discharged.
func FlushLocked(s *msync.System) {
	s.Mu.Lock()
	defer s.Mu.Unlock()
	s.Deposit(3, 4)
}

// flushInner leaves the guard to ITS caller in turn; Drain discharges
// it, so neither line is a finding.
func flushInner(s *msync.System) {
	s.Deposit(5, 6)
}

func Drain(s *msync.System) {
	s.Mu.Lock()
	defer s.Mu.Unlock()
	flushInner(s)
}
