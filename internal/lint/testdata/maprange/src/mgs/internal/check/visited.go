// Package check mirrors the real internal/check for the maprange
// fixture: the explorer's visited set and the spec's bookkeeping are
// maps, and any iteration order that leaks into a state hash or a
// choice makes exploration non-deterministic.
package check

import "sort"

func hash(uint64) {}

// HashVisited leaks map order straight into a rolling hash.
func HashVisited(visited map[uint64]bool) {
	for k := range visited { // want `range over map in deterministic package`
		hash(k)
	}
}

// CanonicalHash is the sanctioned idiom: collect, sort, then fold — the
// hash sees one canonical order no matter how the map iterates.
func CanonicalHash(visited map[uint64]bool) {
	var keys []uint64
	for k := range visited {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		hash(k)
	}
}

// CountVisited is commutative: no order can be observed.
func CountVisited(visited map[uint64]bool) int {
	n := 0
	for _, seen := range visited {
		if seen {
			n++
		}
	}
	return n
}

// FirstPending picks an arbitrary element — exactly the bug a chooser
// must never have.
func FirstPending(pending map[uint64]bool) uint64 {
	for k := range pending { // want `range over map in deterministic package`
		return k
	}
	return 0
}
