package cache

import "sort"

func observe(int) {}

func emit([]int) {}

// LeakOrder builds a slice in map order and never sorts it.
func LeakOrder(m map[int]int) []int {
	var out []int
	for k := range m { // want `range over map in deterministic package`
		out = append(out, k)
	}
	return out
}

// CollectThenSort is the sanctioned idiom: the first use of the
// collected slice after the loop is a sort.
func CollectThenSort(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// CollectFiltered mixes control flow with collection; still fine.
func CollectFiltered(m map[int]int) []int {
	var big []int
	for k, v := range m {
		if v < 10 {
			continue
		}
		big = append(big, k)
	}
	sort.Slice(big, func(i, j int) bool { return big[i] < big[j] })
	return big
}

// UsedBeforeSort leaks iteration order through emit before sorting.
func UsedBeforeSort(m map[int]int) []int {
	var keys []int
	for k := range m { // want `range over map in deterministic package`
		keys = append(keys, k)
	}
	emit(keys)
	sort.Ints(keys)
	return keys
}

// Commutative bodies cannot observe iteration order.
func Commutative(m map[int]int) (int, int) {
	sum, n := 0, 0
	for _, v := range m {
		if v > 0 {
			sum += v
			n++
		}
	}
	return sum, n
}

// KeyIndexed writes distinct elements per iteration: order-free.
func KeyIndexed(m, out map[int]int) {
	for k, v := range m {
		out[k] = v * 2
	}
}

// Deletes commute across distinct keys.
func Deletes(m, dead map[int]bool) {
	for k := range dead {
		delete(m, k)
	}
}

// EarlyReturn picks an arbitrary key.
func EarlyReturn(m map[int]int) int {
	for k := range m { // want `range over map in deterministic package`
		return k
	}
	return -1
}

// CallsInBody could do anything order-sensitive.
func CallsInBody(m map[int]int) {
	for k := range m { // want `range over map in deterministic package`
		observe(k)
	}
}

// Allowed documents why the order leak is harmless here.
func Allowed(m map[int]int) {
	//mgslint:allow maprange -- fixture: diagnostics only, output never feeds simulated state
	for k := range m {
		observe(k)
	}
}

// SliceRange: not a map, never flagged.
func SliceRange(s []int) int {
	sum := 0
	for _, v := range s {
		observe(v)
		sum += v
	}
	return sum
}
