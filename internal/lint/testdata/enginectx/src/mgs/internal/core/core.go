package core

import "mgs/internal/sim"

type duq struct {
	queue  []int
	member map[int]bool
}

func (d *duq) add(p int) {
	if !d.member[p] {
		d.member[p] = true
		d.queue = append(d.queue, p)
	}
}

type System struct {
	eng  *sim.Engine
	duqs []*duq
}

// Access models a processor-side access: proc context, sanctioned APIs.
func (s *System) Access(p *sim.Proc, page int) {
	p.Advance(10)
	s.duqs[0].add(page)
}

// badPoke mutates DUQ membership directly instead of going through add.
func (s *System) badPoke(p *sim.Proc, page int) {
	s.duqs[0].member[page] = true // want `direct write to core\.duq field member from proc-context code`
}

// badHandler schedules a callback that parks the processor: the
// callback runs in engine context and would deadlock the handshake.
func (s *System) badHandler(p *sim.Proc, at sim.Time) {
	s.eng.At(at, func() {
		p.Park() // want `Proc\.Park yields or advances the local clock`
	})
}

// goodHandler wakes instead: engine-safe.
func (s *System) goodHandler(p *sim.Proc, at sim.Time) {
	s.eng.At(at, func() {
		p.Wake(at)
	})
}

// relay schedules deliver; deliver therefore runs in engine context
// even though it is a named method with a Proc parameter.
func (s *System) relay(p *sim.Proc, at sim.Time) {
	s.eng.At(at, func() { s.deliver(p, at) })
}

func (s *System) deliver(p *sim.Proc, at sim.Time) {
	p.Advance(5) // want `Proc\.Advance yields or advances the local clock`
}

// shared is reachable from both contexts: the analyzer cannot decide
// it and stays silent.
func (s *System) shared(p *sim.Proc) {
	p.Advance(1)
}

func (s *System) Enter(p *sim.Proc) {
	s.shared(p)
}

func (s *System) onPing(p *sim.Proc, at sim.Time) {
	s.eng.At(at, func() { s.shared(p) })
}

// exempt documents a deliberate engine-context yield.
func (s *System) exempt(p *sim.Proc, at sim.Time) {
	s.eng.At(at, func() {
		p.Yield() //mgslint:allow enginectx -- fixture: engine intentionally idles this proc during drain
	})
}
