// Package sim is a miniature stand-in for the real internal/sim, with
// one deliberate violation: Proc.Hack writes engine-owned state from
// proc context.
package sim

type Time int64

type Engine struct {
	now Time
	seq uint64
}

func (e *Engine) Now() Time               { return e.now }
func (e *Engine) At(t Time, fn func())    { e.seq++; fn() }
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// push is called from proc context but is an Engine method: it is part
// of the sanctioned transfer API, so its own field writes are fine.
func (e *Engine) push(t Time) { e.seq++ }

type Proc struct {
	ID    int
	eng   *Engine
	clock Time
	debt  Time
}

func (p *Proc) Advance(d Time) Time { p.clock += d; return d }
func (p *Proc) Sleep(d Time) {
	p.clock += d
	p.eng.push(p.clock)
}
func (p *Proc) Park()          {}
func (p *Proc) Yield()         { p.Sleep(0) }
func (p *Proc) Wake(t Time)    {}
func (p *Proc) AddDebt(d Time) { p.debt += d }

// Hack reaches around the scheduler and rewinds the engine clock.
func (p *Proc) Hack() {
	p.eng.now = 0 // want `direct write to sim\.Engine field now from proc-context code`
}
