package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"mgs/internal/lint/analysis"
)

// MapRange flags `for range` over a map in deterministic packages
// unless the loop provably cannot leak iteration order into simulated
// state. Map iteration order is randomized per run, so any
// order-sensitive effect — event scheduling, slice construction, early
// return — makes two identical runs diverge.
//
// A map range is accepted without annotation when either
//
//   - every statement in the body is an order-insensitive update:
//     body-local declarations, commutative accumulation (+=, -=, *=,
//     |=, &=, ^=, ++, --), writes indexed by the range key itself
//     (distinct keys cannot interfere), delete(m, k), and control flow
//     over those; or
//   - the body only collects keys/values into local slices via append
//     and the first subsequent use of every such slice is a sort.* /
//     slices.* call (the collect-then-sort idiom used on the simulated
//     path, e.g. System.AcquireSync).
//
// Anything else needs `//mgslint:allow maprange -- <why>`.
var MapRange = &analysis.Analyzer{
	Name: "maprange",
	Doc:  "flag map iteration in deterministic packages unless provably order-insensitive or collect-then-sort",
	Run:  runMapRange,
}

func runMapRange(pass *analysis.Pass) error {
	if !isDeterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range sourceFiles(pass) {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, s := range block.List {
				rng, ok := s.(*ast.RangeStmt)
				if !ok {
					continue
				}
				t, ok := pass.TypesInfo.Types[rng.X]
				if !ok {
					continue
				}
				if _, isMap := t.Type.Underlying().(*types.Map); !isMap {
					continue
				}
				checkMapRange(pass, rng, block.List[i+1:])
			}
			return true
		})
	}
	return nil
}

func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, after []ast.Stmt) {
	c := &mapRangeChecker{pass: pass, body: rng.Body, appended: map[*types.Var]bool{}}
	if id, ok := rng.Key.(*ast.Ident); ok {
		c.key, _ = pass.TypesInfo.Defs[id].(*types.Var)
	}
	ok := true
	for _, s := range rng.Body.List {
		if !c.stmtOK(s) {
			ok = false
			break
		}
	}
	if ok {
		for v := range c.appended {
			if !sortedAfter(pass, v, after) {
				ok = false
				break
			}
		}
	}
	if !ok {
		pass.Reportf(rng.Pos(),
			"range over map in deterministic package %s: iteration order is randomized and leaks into simulated state; collect and sort the keys, restrict the body to commutative updates, or annotate //mgslint:allow maprange -- <why>",
			pass.Pkg.Path())
	}
}

type mapRangeChecker struct {
	pass     *analysis.Pass
	body     *ast.BlockStmt
	key      *types.Var          // range key variable, if an identifier
	appended map[*types.Var]bool // locals built by append, must be sorted after
}

// declaredInBody reports whether the identifier resolves to a variable
// declared inside the range body (per-iteration state).
func (c *mapRangeChecker) declaredInBody(id *ast.Ident) bool {
	obj := c.pass.TypesInfo.ObjectOf(id)
	return obj != nil && obj.Pos() >= c.body.Pos() && obj.Pos() < c.body.End()
}

func (c *mapRangeChecker) stmtOK(s ast.Stmt) bool {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt, *ast.DeclStmt, *ast.IncDecStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE || s.Tok == token.BREAK || s.Tok == token.FALLTHROUGH
	case *ast.AssignStmt:
		return c.assignOK(s)
	case *ast.ExprStmt:
		// delete(m, k) commutes with itself across distinct keys.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if _, b := c.pass.TypesInfo.Uses[id].(*types.Builtin); b && id.Name == "delete" {
					return true
				}
			}
		}
		return false
	case *ast.BlockStmt:
		for _, t := range s.List {
			if !c.stmtOK(t) {
				return false
			}
		}
		return true
	case *ast.IfStmt:
		return c.stmtOK(s.Init) && c.stmtOK(s.Body) && c.stmtOK(s.Else)
	case *ast.SwitchStmt:
		return c.stmtOK(s.Init) && c.stmtOK(s.Body)
	case *ast.TypeSwitchStmt:
		return c.stmtOK(s.Init) && c.stmtOK(s.Body)
	case *ast.CaseClause:
		for _, t := range s.Body {
			if !c.stmtOK(t) {
				return false
			}
		}
		return true
	case *ast.ForStmt:
		return c.stmtOK(s.Init) && c.stmtOK(s.Post) && c.stmtOK(s.Body)
	case *ast.RangeStmt:
		// An inner loop is order-insensitive iff its body is; if it
		// ranges over a map itself it gets its own diagnostic.
		return c.stmtOK(s.Body)
	default:
		// return, send, go, defer, labeled jumps, ... — all make the
		// outcome depend on which key comes first.
		return false
	}
}

func (c *mapRangeChecker) assignOK(s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.DEFINE:
		return true // declares per-iteration locals
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return true // commutative accumulation
	case token.ASSIGN:
		for i, lhs := range s.Lhs {
			if !c.plainAssignOK(lhs, s, i) {
				return false
			}
		}
		return true
	}
	return false
}

func (c *mapRangeChecker) plainAssignOK(lhs ast.Expr, s *ast.AssignStmt, i int) bool {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" || c.declaredInBody(lhs) {
			return true
		}
		// s = append(s, ...) into an enclosing-function local: fine if
		// the slice is sorted before any other use after the loop.
		if v, ok := c.pass.TypesInfo.Uses[lhs].(*types.Var); ok && v.Parent() != c.pass.Pkg.Scope() {
			if len(s.Lhs) == 1 && len(s.Rhs) == 1 && isAppendTo(c.pass.TypesInfo, s.Rhs[0], v) {
				c.appended[v] = true
				return true
			}
		}
		return false
	case *ast.IndexExpr:
		// m2[k] = v with k the range key: iterations write distinct
		// elements, so order cannot matter.
		if id, ok := ast.Unparen(lhs.Index).(*ast.Ident); ok && c.key != nil {
			return c.pass.TypesInfo.Uses[id] == c.key
		}
		return false
	}
	return false
}

// isAppendTo reports whether e is append(v, ...).
func isAppendTo(info *types.Info, e ast.Expr, v *types.Var) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, b := info.Uses[id].(*types.Builtin); !b {
		return false
	}
	arg0, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && info.Uses[arg0] == v
}

// sortedAfter reports whether, among the statements following the range
// loop in its enclosing block, the first one that mentions v is a
// sort.* / slices.* call with v as an argument.
func sortedAfter(pass *analysis.Pass, v *types.Var, after []ast.Stmt) bool {
	for _, s := range after {
		if !mentions(pass.TypesInfo, s, v) {
			continue
		}
		call, ok := exprCall(s)
		if !ok {
			return false
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		switch pkgNameOf(pass.TypesInfo, sel) {
		case "sort", "slices":
		default:
			return false
		}
		for _, a := range call.Args {
			if id, ok := ast.Unparen(a).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
				return true
			}
		}
		return false
	}
	return false // never sorted (never used again: order still escaped into the slice)
}

func exprCall(s ast.Stmt) (*ast.CallExpr, bool) {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return nil, false
	}
	call, ok := es.X.(*ast.CallExpr)
	return call, ok
}

func mentions(info *types.Info, n ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && info.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}
