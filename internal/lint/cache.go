package lint

import (
	"go/types"

	"mgs/internal/lint/analysis"
)

// The interprocedural results (call graph, alloc/taint fixpoints, shard
// residuals) are needed twice per package: once by ComputeFacts before
// any analyzer runs, and once by the analyzer that reports from them.
// They are pure functions of the type-checked package, the allow list,
// and the imported facts — all identical within one RunPackage — so a
// process-wide memo keyed by the package's *types.Info (unique per
// load) shares the work. mgslint is a one-shot, single-threaded
// process; the memo lives for tens of packages at most.
type pkgCache struct {
	anns  *mgsAnnotations
	graph *callGraph
	alloc map[*types.Func]*allocInfo
	taint map[*types.Func]*taintResult
	shard []*shardNode
}

var pkgCaches = map[*types.Info]*pkgCache{}

func cacheFor(pass *analysis.Pass) *pkgCache {
	c, ok := pkgCaches[pass.TypesInfo]
	if !ok {
		c = &pkgCache{}
		pkgCaches[pass.TypesInfo] = c
	}
	return c
}

func annsFor(pass *analysis.Pass) *mgsAnnotations {
	c := cacheFor(pass)
	if c.anns == nil {
		c.anns = collectAnnotations(pass)
	}
	return c.anns
}

func graphFor(pass *analysis.Pass) *callGraph {
	c := cacheFor(pass)
	if c.graph == nil {
		c.graph = buildCallGraph(pass, nil)
	}
	return c.graph
}

func allocInfoFor(pass *analysis.Pass) map[*types.Func]*allocInfo {
	c := cacheFor(pass)
	if c.alloc == nil {
		c.alloc = computeAllocInfo(pass, graphFor(pass))
	}
	return c.alloc
}

func taintFor(pass *analysis.Pass) map[*types.Func]*taintResult {
	c := cacheFor(pass)
	if c.taint == nil {
		c.taint = computeTaint(pass, graphFor(pass))
	}
	return c.taint
}

func shardNodesFor(pass *analysis.Pass) []*shardNode {
	c := cacheFor(pass)
	if c.shard == nil {
		c.shard = buildShardNodes(pass, annsFor(pass))
	}
	return c.shard
}
