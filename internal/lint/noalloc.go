package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"mgs/internal/lint/analysis"
)

// NoAlloc proves //mgs:noalloc functions allocation-free, transitively
// through the call graph. PR 1 and PR 6 made the access path and the
// DiffBuf diff path zero-alloc and pinned that with runtime
// testing.AllocsPerRun assertions; those assertions only cover what a
// test happens to execute. This analyzer turns the property into a
// compile-time check: any reachable allocating construct — make, a
// non-self append, a capturing closure or method value, an interface
// conversion that boxes, a map insert, string concatenation, a
// string<->[]byte conversion, go/defer-in-loop — is a diagnostic, and
// so is a call into anything that cannot be proven clean (cross-package
// callees resolve through exported facts, stdlib through a short
// audited whitelist, dynamic calls not at all).
//
// Two idioms are sanctioned because they are how the hot paths stay
// zero-alloc in steady state: a self-append (v = append(v, ...), the
// amortized-growth pattern) and a make guarded by a cap/len test (the
// high-water DiffBuf grow). A deliberate slow-path escape — the fault
// path off System.Access, a get-or-create registration — is annotated
// at the call site with //mgslint:allow noalloc and a justification,
// which also stops the callee's allocations from poisoning every
// transitive caller.
var NoAlloc = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "functions annotated //mgs:noalloc must not allocate, transitively through the call graph",
	Run:  runNoAlloc,
}

// allocCause is one reason a function allocates.
type allocCause struct {
	pos token.Pos
	why string
}

// callDep is one call edge whose allocation verdict depends on the
// target.
type callDep struct {
	pos     token.Pos
	targets []*types.Func
	dynamic string // non-empty: unresolvable, conservatively allocating
}

// allocInfo is the allocation summary of one declared function.
type allocInfo struct {
	causes  []allocCause // local allocating constructs (allow-filtered)
	deps    []callDep
	verdict *allocCause // nil = proven allocation-free
}

func runNoAlloc(pass *analysis.Pass) error {
	anns := annsFor(pass)
	for _, b := range anns.bad {
		if b.owner == "noalloc" {
			pass.Reportf(b.pos, "%s", b.msg)
		}
	}
	if len(anns.noalloc) == 0 {
		return nil
	}
	g := graphFor(pass)
	infos := allocInfoFor(pass)

	// Report from every annotated root, deduplicating shared paths: the
	// same helper reached from two roots is diagnosed once.
	var roots []*types.Func
	for fn := range anns.noalloc {
		roots = append(roots, fn)
	}
	sort.Slice(roots, func(i, j int) bool { return anns.noalloc[roots[i]] < anns.noalloc[roots[j]] })

	reported := map[token.Pos]bool{}
	visited := map[*types.Func]bool{}
	var visit func(fn *types.Func, root *types.Func)
	visit = func(fn, root *types.Func) {
		if visited[fn] {
			return
		}
		visited[fn] = true
		info := infos[fn]
		if info == nil || info.verdict == nil {
			return // clean: nothing below can fire
		}
		where := "reached from //mgs:noalloc " + describeFunc(root)
		if fn == root {
			where = "in //mgs:noalloc function " + describeFunc(root)
		}
		for _, c := range info.causes {
			if !reported[c.pos] {
				reported[c.pos] = true
				pass.Reportf(c.pos, "%s: %s", where, c.why)
			}
		}
		for _, dep := range info.deps {
			cause := resolveDep(pass, g, infos, dep)
			if cause == nil {
				continue
			}
			if t := sameDepTarget(g, dep); t != nil {
				visit(t, root) // report inside the same-package callee, not at the call
				continue
			}
			if pass.Allowed("noalloc", dep.pos) {
				continue
			}
			if !reported[dep.pos] {
				reported[dep.pos] = true
				pass.Reportf(dep.pos, "%s: %s", where, cause.why)
			}
		}
	}
	for _, r := range roots {
		visit(r, r)
	}
	return nil
}

// sameDepTarget returns the dep's single same-package declared target,
// or nil.
func sameDepTarget(g *callGraph, dep callDep) *types.Func {
	if dep.dynamic != "" || len(dep.targets) != 1 {
		return nil
	}
	if n := g.node(dep.targets[0]); n != nil {
		return n.fn
	}
	return nil
}

// computeAllocInfo runs the local construct scan over every declared
// function and resolves transitive verdicts to a fixpoint (optimistic:
// a cycle with no local cause is allocation-free).
func computeAllocInfo(pass *analysis.Pass, g *callGraph) map[*types.Func]*allocInfo {
	infos := map[*types.Func]*allocInfo{}
	for fn, n := range g.nodes {
		info := &allocInfo{}
		info.causes = scanAllocs(pass, n.decl)
		for _, site := range n.sites {
			info.deps = append(info.deps, callDep{pos: site.pos, targets: site.targets, dynamic: site.dynamic})
		}
		sort.Slice(info.deps, func(i, j int) bool { return info.deps[i].pos < info.deps[j].pos })
		infos[fn] = info
	}
	for changed := true; changed; {
		changed = false
		for _, info := range infos {
			if info.verdict != nil {
				continue
			}
			if len(info.causes) > 0 {
				info.verdict = &info.causes[0]
				changed = true
				continue
			}
			for _, dep := range info.deps {
				if c := resolveDep(pass, g, infos, dep); c != nil {
					info.verdict = c
					changed = true
					break
				}
			}
		}
	}
	return infos
}

// resolveDep returns the allocation cause of one call edge, or nil if
// every target is proven clean. An //mgslint:allow noalloc on the call
// site discharges the edge (and is marked used).
func resolveDep(pass *analysis.Pass, g *callGraph, infos map[*types.Func]*allocInfo, dep callDep) *allocCause {
	cause := func(why string) *allocCause {
		if pass.Allowed("noalloc", dep.pos) {
			return nil
		}
		return &allocCause{pos: dep.pos, why: why}
	}
	if dep.dynamic != "" {
		return cause(dep.dynamic + " cannot be proven allocation-free")
	}
	for _, t := range dep.targets {
		if isInterfaceMethod(t) {
			return cause("interface call " + describeFunc(t) + " has no visible implementation; cannot be proven allocation-free")
		}
		if n := g.node(t); n != nil {
			if v := infos[n.fn].verdict; v != nil {
				return cause("call to " + describeFunc(t) + " allocates (" + v.why + ")")
			}
			continue
		}
		path := funcPkgPath(t)
		if internalPkg(path) != "" || path == "mgs" {
			fact := pass.FactsFor(path).Fact(funcID(t))
			switch {
			case fact == nil:
				return cause("call to " + describeFunc(t) + " has no exported fact; cannot be proven allocation-free")
			case fact.Allocates:
				return cause("call to " + describeFunc(t) + " allocates (" + fact.AllocWhy + ")")
			}
			continue
		}
		if why, clean := stdlibNoAlloc(t); !clean {
			return cause("call to " + describeFunc(t) + " " + why)
		}
	}
	return nil
}

// stdlibNoAlloc is the audited whitelist of standard-library callees
// usable from //mgs:noalloc code. Everything else is assumed to
// allocate.
func stdlibNoAlloc(f *types.Func) (why string, clean bool) {
	path := funcPkgPath(f)
	switch path {
	case "sync/atomic", "math", "math/bits":
		return "", true
	case "encoding/binary":
		// The fixed-endian accessors are pure bit twiddling; the
		// reflective Read/Write are not.
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			if n := namedType(sig.Recv().Type()); n != nil {
				name := n.Obj().Name()
				if name == "littleEndian" || name == "bigEndian" {
					return "", true
				}
			}
		}
	case "sync":
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			if n := namedType(sig.Recv().Type()); n != nil {
				switch n.Obj().Name() {
				case "Mutex", "RWMutex", "WaitGroup":
					return "", true
				case "Pool":
					// Steady-state clean: Get reuses and Put stores; only a
					// cold pool invokes New.
					if f.Name() == "Get" || f.Name() == "Put" {
						return "", true
					}
				}
			}
		}
	}
	return "is not on the no-allocation stdlib whitelist", false
}

// ---------------------------------------------------------------------
// Local construct scan.

// scanAllocs finds every allocating construct in fd's body (function
// literals folded in), filtered through //mgslint:allow noalloc.
func scanAllocs(pass *analysis.Pass, fd *ast.FuncDecl) []allocCause {
	info := pass.TypesInfo
	var causes []allocCause
	add := func(pos token.Pos, why string) {
		if pass.Allowed("noalloc", pos) {
			return
		}
		causes = append(causes, allocCause{pos: pos, why: why})
	}

	selfAppends := map[*ast.CallExpr]bool{} // append calls in v = append(v, ...) form
	calledFuns := map[ast.Expr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
				if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok && isBuiltin(info, call, "append") &&
					len(call.Args) > 0 && sameRef(info, s.Lhs[0], call.Args[0]) {
					selfAppends[call] = true
				}
			}
		case *ast.CallExpr:
			calledFuns[ast.Unparen(s.Fun)] = true
		}
		return true
	})

	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		switch e := n.(type) {
		case *ast.CallExpr:
			scanCall(pass, e, stack, selfAppends, add)
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					add(e.Pos(), "composite literal escapes to the heap (&T{...})")
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[e]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					add(e.Pos(), "map literal allocates")
				case *types.Slice:
					add(e.Pos(), "slice literal allocates its backing array")
				}
			}
		case *ast.FuncLit:
			if capturesOuter(info, fd, e) {
				add(e.Pos(), "closure captures variables and allocates")
			}
		case *ast.SelectorExpr:
			if !calledFuns[e] {
				if sel, ok := info.Selections[e]; ok && sel.Kind() == types.MethodVal {
					add(e.Pos(), "method value binds its receiver and allocates")
				}
			}
		case *ast.AssignStmt:
			scanAssign(pass, e, add)
		case *ast.IncDecStmt:
			if ix, ok := ast.Unparen(e.X).(*ast.IndexExpr); ok && isMapIndex(info, ix) {
				add(e.Pos(), "map assignment may allocate a bucket")
			}
		case *ast.DeclStmt:
			scanDeclStmt(pass, e, add)
		case *ast.BinaryExpr:
			if e.Op == token.ADD {
				if tv, ok := info.Types[e]; ok && isStringType(tv.Type) {
					add(e.Pos(), "string concatenation allocates")
				}
			}
		case *ast.ReturnStmt:
			scanReturn(pass, e, stack, fd, add)
		case *ast.GoStmt:
			add(e.Pos(), "go statement allocates a goroutine")
		case *ast.DeferStmt:
			if inLoop(stack) {
				add(e.Pos(), "defer inside a loop allocates per iteration")
			}
		}
		stack = append(stack, n)
		return true
	})
	sort.Slice(causes, func(i, j int) bool { return causes[i].pos < causes[j].pos })
	return causes
}

// scanCall handles builtins, conversions, and argument boxing for one
// call expression.
func scanCall(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node, selfAppends map[*ast.CallExpr]bool, add func(token.Pos, string)) {
	info := pass.TypesInfo
	fun := ast.Unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		scanConversion(pass, call, tv.Type, add)
		return
	}
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				if !guardedGrow(stack) {
					add(call.Pos(), "make allocates (guard growth behind a cap/len high-water test to sanction it)")
				}
			case "new":
				add(call.Pos(), "new(T) allocates")
			case "append":
				if !selfAppends[call] {
					add(call.Pos(), "append to a different slice allocates (only the self-append v = append(v, ...) growth idiom is allocation-free in steady state)")
				}
			case "panic":
				// Failure path: the simulation is already dead.
			}
			return
		}
	}
	// Boxing at argument positions, and the variadic pack.
	sigT, ok := info.Types[fun]
	if !ok {
		return
	}
	sig, ok := sigT.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		j := i
		if j >= np {
			j = np - 1
		}
		if j < 0 {
			break
		}
		pt := sig.Params().At(j).Type()
		if sig.Variadic() && j == np-1 {
			if call.Ellipsis.IsValid() {
				continue // passing the slice through: no pack, no box
			}
			if i == j {
				add(arg.Pos(), "variadic call allocates its argument slice")
			}
			if sl, ok := pt.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if boxes(info, arg, pt) {
			add(arg.Pos(), "argument conversion to interface boxes and allocates")
		}
	}
}

// scanConversion flags conversions that copy memory or box.
func scanConversion(pass *analysis.Pass, call *ast.CallExpr, target types.Type, add func(token.Pos, string)) {
	if len(call.Args) != 1 {
		return
	}
	info := pass.TypesInfo
	argT, ok := info.Types[call.Args[0]]
	if !ok {
		return
	}
	if boxes(info, call.Args[0], target) {
		add(call.Pos(), "conversion to interface boxes and allocates")
		return
	}
	toString := isStringType(target)
	fromString := isStringType(argT.Type)
	_, toSlice := target.Underlying().(*types.Slice)
	_, fromSlice := argT.Type.Underlying().(*types.Slice)
	switch {
	case toString && (fromSlice || isIntegerType(argT.Type)):
		add(call.Pos(), "conversion to string copies and allocates")
	case toSlice && fromString:
		add(call.Pos(), "string-to-slice conversion copies and allocates")
	}
}

// scanAssign flags map inserts, string +=, and interface boxing on
// plain assignment.
func scanAssign(pass *analysis.Pass, s *ast.AssignStmt, add func(token.Pos, string)) {
	info := pass.TypesInfo
	for _, lhs := range s.Lhs {
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isMapIndex(info, ix) {
			add(lhs.Pos(), "map assignment may allocate a bucket")
		}
	}
	if s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 {
		if tv, ok := info.Types[s.Lhs[0]]; ok && isStringType(tv.Type) {
			add(s.Pos(), "string concatenation allocates")
		}
	}
	if s.Tok == token.ASSIGN && len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			if tv, ok := info.Types[s.Lhs[i]]; ok {
				if boxes(info, s.Rhs[i], tv.Type) {
					add(s.Rhs[i].Pos(), "assignment to interface boxes and allocates")
				}
			}
		}
	}
}

// scanDeclStmt flags `var x I = concrete` boxing inside a body.
func scanDeclStmt(pass *analysis.Pass, d *ast.DeclStmt, add func(token.Pos, string)) {
	info := pass.TypesInfo
	gd, ok := d.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok || vs.Type == nil {
			continue
		}
		tv, ok := info.Types[vs.Type]
		if !ok {
			continue
		}
		for _, v := range vs.Values {
			if boxes(info, v, tv.Type) {
				add(v.Pos(), "assignment to interface boxes and allocates")
			}
		}
	}
}

// scanReturn flags boxing at return sites against the innermost
// function's declared results.
func scanReturn(pass *analysis.Pass, r *ast.ReturnStmt, stack []ast.Node, fd *ast.FuncDecl, add func(token.Pos, string)) {
	info := pass.TypesInfo
	var sig *types.Signature
	for i := len(stack) - 1; i >= 0; i-- {
		if lit, ok := stack[i].(*ast.FuncLit); ok {
			if tv, ok := info.Types[lit]; ok {
				sig, _ = tv.Type.(*types.Signature)
			}
			break
		}
	}
	if sig == nil {
		if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
			sig, _ = obj.Type().(*types.Signature)
		}
	}
	if sig == nil || sig.Results().Len() != len(r.Results) {
		return
	}
	for i, res := range r.Results {
		if boxes(info, res, sig.Results().At(i).Type()) {
			add(res.Pos(), "return value conversion to interface boxes and allocates")
		}
	}
}

// boxes reports whether assigning expr to a target of type to performs
// an allocating interface conversion: the target is an interface, the
// value is concrete, and its representation is not pointer-shaped.
func boxes(info *types.Info, expr ast.Expr, to types.Type) bool {
	if to == nil {
		return false
	}
	if _, ok := to.Underlying().(*types.Interface); !ok {
		return false
	}
	tv, ok := info.Types[ast.Unparen(expr)]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	from := tv.Type
	if _, ok := from.Underlying().(*types.Interface); ok {
		return false // interface-to-interface: no new box
	}
	switch u := from.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: stored directly in the iface word
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

// guardedGrow reports whether the node at the top of stack sits inside
// an if-statement whose condition tests cap or len: the sanctioned
// high-water growth idiom (e.g. DiffBuf.Compute's
// `if cap(b.data) < total { b.data = make(...) }`).
func guardedGrow(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		found := false
		ast.Inspect(ifs.Cond, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// inLoop reports whether any enclosing statement on the stack is a
// for/range loop.
func inLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}

// capturesOuter reports whether lit references a variable declared in
// fd outside lit (including parameters and receivers): such a closure
// must heap-allocate its environment.
func capturesOuter(info *types.Info, fd *ast.FuncDecl, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= fd.Pos() && v.Pos() < lit.Pos() {
			captured = true
		}
		return true
	})
	return captured
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// sameRef reports whether a and b are structurally the same variable
// reference (ident resolving to one object, or a selector chain over
// the same base with the same fields).
func sameRef(info *types.Info, a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch ae := a.(type) {
	case *ast.Ident:
		be, ok := b.(*ast.Ident)
		return ok && info.ObjectOf(ae) != nil && info.ObjectOf(ae) == info.ObjectOf(be)
	case *ast.SelectorExpr:
		be, ok := b.(*ast.SelectorExpr)
		return ok && ae.Sel.Name == be.Sel.Name && sameRef(info, ae.X, be.X)
	}
	return false
}

func isMapIndex(info *types.Info, ix *ast.IndexExpr) bool {
	tv, ok := info.Types[ix.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
