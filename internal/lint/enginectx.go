package lint

import (
	"go/ast"
	"go/types"

	"mgs/internal/lint/analysis"
)

// EngineCtx enforces the engine/processor context split documented in
// internal/sim/proc.go: event callbacks (function literals scheduled
// via Engine.At/After or delivered via Network.Send) run in engine
// context, where only the engine-safe Proc methods (Wake, AddDebt,
// HandlerStart, Parked, ...) are legal; the yielding methods (Sleep,
// Park, Yield) and the clock-advancing Advance must only run on the
// proc's own body goroutine. Violating this either deadlocks the
// handshake or advances a clock the engine believes is frozen.
//
// The analyzer builds a same-package call graph, seeds engine context
// from every callback literal passed to At/After/Send, seeds proc
// context from functions with a *sim.Proc receiver or parameter that
// are not engine-reachable, and then:
//
//   - rule 1: flags calls to Proc.Sleep/Park/Yield/Advance inside
//     engine-reachable code that is not also proc-reachable (functions
//     reachable both ways are skipped — the analysis cannot decide
//     them);
//   - rule 2: flags direct writes to fields of engine-owned state
//     (sim.Engine, core's duq) from proc-only code outside the owning
//     type's own methods — proc-context code must go through the
//     sanctioned transfer API (Engine.At/After, duq.add/remove/pop).
var EngineCtx = &analysis.Analyzer{
	Name: "enginectx",
	Doc:  "enforce the engine-context/proc-context split: no yielding Proc calls from event callbacks, no direct engine-state writes from proc code",
	Run:  runEngineCtx,
}

// procOnlyMethods are the Proc methods that yield to the engine or
// advance the local clock: body-goroutine only.
var procOnlyMethods = []string{"Sleep", "Park", "Yield", "Advance"}

func runEngineCtx(pass *analysis.Pass) error {
	if !isDeterministic(pass.Pkg.Path()) {
		return nil
	}
	info := pass.TypesInfo

	// Engine-context roots: callback literals handed to the scheduler.
	// They are collected from a plain syntax walk first so the call
	// graph can avoid attributing their bodies to the function that
	// merely schedules them.
	rootSet := map[*ast.FuncLit]bool{}
	var rootLits []*ast.FuncLit
	for _, f := range sourceFiles(pass) {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				callee := calleeOf(info, call)
				if isMethodOn(callee, "sim", "Engine", "At", "After") ||
					isMethodOn(callee, "msg", "Network", "Send") ||
					isMethodOn(callee, "sim", "Proc", "Wake") {
					for _, a := range call.Args {
						if lit, ok := a.(*ast.FuncLit); ok {
							rootSet[lit] = true
							rootLits = append(rootLits, lit)
						}
					}
				}
			}
			return true
		})
	}
	g := buildFuncGraphSkipping(pass, rootSet)

	// Named functions called (same-package) from the engine-context
	// literals, then everything those reach.
	var engineSeeds []*types.Func
	for _, lit := range rootLits {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := calleeOf(info, call); callee != nil && callee.Pkg() == pass.Pkg {
					if _, declared := g.decls[callee]; declared {
						engineSeeds = append(engineSeeds, callee)
					}
				}
			}
			return true
		})
	}
	engineReach := g.reach(engineSeeds)

	// Proc-context roots: declared functions with a *sim.Proc receiver
	// or parameter that the engine cannot reach.
	var procSeeds []*types.Func
	for fn := range g.decls {
		if engineReach[fn] {
			continue
		}
		sig := fn.Type().(*types.Signature)
		isProcFn := sig.Recv() != nil && typeIs(sig.Recv().Type(), "sim", "Proc")
		for i := 0; !isProcFn && i < sig.Params().Len(); i++ {
			isProcFn = typeIs(sig.Params().At(i).Type(), "sim", "Proc")
		}
		if isProcFn {
			procSeeds = append(procSeeds, fn)
		}
	}
	procReach := g.reach(procSeeds)

	// Rule 1: yielding calls from engine-only code. The root literals
	// themselves are engine context by construction; named functions
	// are checked without re-entering nested root literals (each is
	// visited once, as a root).
	flagYields := func(body ast.Node, skip map[*ast.FuncLit]bool) {
		inspectSkipping(body, skip, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if callee := calleeOf(info, call); isMethodOn(callee, "sim", "Proc", procOnlyMethods...) {
				pass.Reportf(call.Pos(),
					"Proc.%s yields or advances the local clock: it must run on the proc's body goroutine, but this call site is engine context (an event callback); use Wake/AddDebt/HandlerStart here",
					callee.Name())
			}
		})
	}
	for _, lit := range rootLits {
		nested := map[*ast.FuncLit]bool{}
		for l := range rootSet {
			if l != lit {
				nested[l] = true
			}
		}
		flagYields(lit.Body, nested)
	}
	for fn, decl := range g.decls {
		if engineReach[fn] && !procReach[fn] {
			flagYields(decl.Body, rootSet)
		}
	}

	// Rule 2: direct writes to engine-owned state from proc-only code.
	ownedType := func(t types.Type) string {
		switch {
		case typeIs(t, "sim", "Engine"):
			return "sim.Engine"
		case typeIs(t, "core", "duq"):
			return "core.duq"
		}
		return ""
	}
	for fn, decl := range g.decls {
		if !procReach[fn] || engineReach[fn] {
			continue
		}
		sig := fn.Type().(*types.Signature)
		recvOwned := sig.Recv() != nil && ownedType(sig.Recv().Type()) != ""
		if recvOwned {
			continue // the owning type's own methods are the sanctioned API
		}
		checkWrite := func(lhs ast.Expr) {
			// Unwrap element writes: d.member[k] = true is a write to
			// the member field just as much as d.queue = nil is.
			e := ast.Unparen(lhs)
			for {
				if ix, ok := e.(*ast.IndexExpr); ok {
					e = ast.Unparen(ix.X)
					continue
				}
				if st, ok := e.(*ast.StarExpr); ok {
					e = ast.Unparen(st.X)
					continue
				}
				break
			}
			sel, ok := e.(*ast.SelectorExpr)
			if !ok {
				return
			}
			if t, ok := info.Types[sel.X]; ok {
				if owned := ownedType(t.Type); owned != "" {
					pass.Reportf(lhs.Pos(),
						"direct write to %s field %s from proc-context code: engine-owned state must be mutated through its own methods (Engine.At/After, duq.add/remove/pop)",
						owned, sel.Sel.Name)
				}
			}
		}
		inspectSkipping(decl.Body, rootSet, func(n ast.Node) {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkWrite(lhs)
				}
			case *ast.IncDecStmt:
				checkWrite(n.X)
			}
		})
	}
	return nil
}
