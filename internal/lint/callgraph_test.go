package lint

import (
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"mgs/internal/lint/analysis"
)

// loadFixture type-checks one fixture package (no fixture-tree imports)
// and returns a pass over it.
func loadFixture(t *testing.T, dir, path string) *analysis.Pass {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	info := NewTypesInfo()
	var srcs []string
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		srcs = append(srcs, filepath.Join(dir, e.Name()))
	}
	sort.Strings(srcs)
	pass := &analysis.Pass{Fset: fset, TypesInfo: info}
	for _, name := range srcs {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		pass.Files = append(pass.Files, f)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(path, fset, pass.Files, info)
	if err != nil {
		t.Fatal(err)
	}
	pass.Pkg = pkg
	return pass
}

func targetsOf(t *testing.T, g *callGraph, fnID string) [][]string {
	t.Helper()
	fn := g.byID[fnID]
	if fn == nil {
		t.Fatalf("no node for %s", fnID)
	}
	var out [][]string
	for _, site := range g.nodes[fn].sites {
		var ids []string
		if site.dynamic != "" {
			ids = append(ids, "dynamic:"+site.dynamic)
		}
		for _, tg := range site.targets {
			ids = append(ids, funcID(tg))
		}
		sort.Strings(ids)
		out = append(out, ids)
	}
	return out
}

func TestCallGraphCHA(t *testing.T) {
	pass := loadFixture(t, "testdata/callgraph/src/mgs/internal/cache", "mgs/internal/cache")
	g := buildCallGraph(pass, nil)

	// Interface dispatch over-approximates to every visible
	// implementation — the CHA contract this suite depends on.
	got := targetsOf(t, g, "UseIface")
	want := [][]string{{"(MapStore).Get", "(SliceStore).Get"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("UseIface targets = %v, want %v", got, want)
	}

	// A concrete receiver resolves to exactly one method.
	got = targetsOf(t, g, "UseStatic")
	want = [][]string{{"(MapStore).Get"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("UseStatic targets = %v, want %v", got, want)
	}

	// A method value is an edge: the bound method may run later.
	got = targetsOf(t, g, "Bind")
	want = [][]string{{"(MapStore).Get"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Bind targets = %v, want %v", got, want)
	}

	// A call through a function value stays dynamic.
	got = targetsOf(t, g, "Dyn")
	if len(got) != 1 || len(got[0]) != 1 || !strings.HasPrefix(got[0][0], "dynamic:") {
		t.Errorf("Dyn targets = %v, want one dynamic site", got)
	}
}

func TestFuncIDCanonical(t *testing.T) {
	pass := loadFixture(t, "testdata/callgraph/src/mgs/internal/cache", "mgs/internal/cache")
	g := buildCallGraph(pass, nil)
	for _, id := range []string{"UseIface", "(MapStore).Get", "(SliceStore).Get"} {
		if g.byID[id] == nil {
			t.Errorf("byID[%q] missing; have %v", id, byIDKeys(g))
		}
	}
}

func byIDKeys(g *callGraph) []string {
	var ks []string
	for k := range g.byID {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// TestFactsRoundTrip pins the .vetx wire format: what one driver
// encodes, another decodes, field for field.
func TestFactsRoundTrip(t *testing.T) {
	in := &analysis.PackageFacts{
		Path: "mgs/internal/msync",
		Funcs: map[string]*analysis.FuncFact{
			"(System).Deposit": {
				Allocates: true,
				AllocWhy:  "msync.go:12: make allocates",
				TaintBits: analysis.TaintMapOrder | analysis.TaintRandom,
				TaintWhy:  "map iteration at msync.go:20",
				PropParams: []int{0, 2},
				SinkParams: []analysis.SinkParam{{Index: 1, Why: "charged cycles (Proc.Advance)"}},
				Unguarded: []analysis.UnguardedWrite{{
					Type: "mgs/internal/msync.System", Field: "locks", Guard: "Mu",
					Desc: "msync.go:30: write to System.locks",
				}},
			},
			"Clean": {},
		},
		SharedTypes: map[string]*analysis.SharedTypeFact{
			"System": {
				Shared: true,
				Fields: map[string]*analysis.FieldFact{
					"locks": {Kind: "guardedby", Arg: "Mu"},
					"epoch": {Kind: "atomic"},
				},
			},
		},
	}
	data, err := analysis.EncodeFacts(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := analysis.DecodeFacts(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\nin:  %+v\nout: %+v", in, out)
	}
	// The empty payload cmd/go writes for factless packages decodes to
	// nil, and nil-safe accessors stay quiet.
	np, err := analysis.DecodeFacts(nil)
	if err != nil || np != nil {
		t.Errorf("DecodeFacts(nil) = %v, %v; want nil, nil", np, err)
	}
	if np.Fact("anything") != nil || np.SharedType("T") != nil {
		t.Error("nil PackageFacts accessors must return nil")
	}
}
