package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"mgs/internal/lint/analysis"
)

// All returns the full analyzer suite in stable order: the five
// intra-function analyzers first, then the three interprocedural ones
// layered on the call graph and cross-package facts.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		NoWallTime,
		NoGoroutine,
		MapRange,
		ChargeCost,
		EngineCtx,
		ShardSafe,
		NoAlloc,
		DetFlow,
	}
}

// RunPackage applies every analyzer in All to one type-checked package
// and returns the surviving diagnostics sorted by position, plus the
// package's exported fact summary for dependents. imported resolves the
// facts of packages already analyzed (drivers call RunPackage in
// dependency order); nil means no cross-package facts are available and
// the interprocedural analyzers stay conservative at package
// boundaries.
//
// Fact computation runs first, through the same //mgslint:allow list
// the analyzers use, so an allow consulted only while summarizing (an
// excused allocation that must not poison callers) still counts as
// live for dead-allow detection.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info,
	imported func(path string) *analysis.PackageFacts) ([]analysis.Diagnostic, *analysis.PackageFacts, error) {
	al := ParseAllowList(fset, files)
	facts := ComputeFacts(fset, files, pkg, info, imported, al.Permit)
	var diags []analysis.Diagnostic
	var ran []string
	for _, a := range All() {
		pass := &analysis.Pass{
			Analyzer:      a,
			Fset:          fset,
			Files:         files,
			Pkg:           pkg,
			TypesInfo:     info,
			Facts:         facts,
			ImportedFacts: imported,
			Allow:         al.Permit,
			Report:        func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, err
		}
		ran = append(ran, a.Name)
	}
	diags = al.Filter(diags, ran)
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, facts, nil
}

// NewTypesInfo returns a types.Info with every map the analyzers
// consult populated.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
