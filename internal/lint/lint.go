package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"mgs/internal/lint/analysis"
)

// All returns the full analyzer suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		NoWallTime,
		NoGoroutine,
		MapRange,
		ChargeCost,
		EngineCtx,
	}
}

// RunPackage applies every analyzer in All to one type-checked package,
// applies the //mgslint:allow escape hatch, and returns the surviving
// diagnostics sorted by position. This is the single entry point shared
// by cmd/mgslint's two driver modes.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	for _, a := range All() {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	diags = FilterAllowed(fset, files, diags)
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// NewTypesInfo returns a types.Info with every map the analyzers
// consult populated.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
