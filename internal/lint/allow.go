package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"mgs/internal/lint/analysis"
)

// The escape hatch. A comment of the form
//
//	//mgslint:allow <name>[,<name>...] -- <justification>
//
// suppresses diagnostics from the named analyzers (or "all") on the
// comment's own line and on the line immediately below it, so both
// trailing and line-above placement work. The justification after the
// "--" separator is mandatory: an allow that does not say *why* the
// exception is sound is itself a diagnostic, and suppresses nothing.
//
// Allows are also accountable: one that no longer suppresses anything —
// the code it excused was fixed or deleted — is a "dead allow"
// diagnostic, so the waiver list can only shrink ahead of the code it
// documents, never outlive it. Deadness is only decided when every
// analyzer the comment names actually ran (a single-analyzer test run
// must not condemn another analyzer's allows).

const allowPrefix = "//mgslint:allow"

type allowSite struct {
	pos       token.Pos
	file      string
	line      int
	analyzers map[string]bool // names, or "all"
	justified bool
	badNames  []string // names not matching any registered analyzer
}

// AllowList holds one package's parsed //mgslint:allow comments and
// tracks which of them earned their keep. Usage accrues through Permit
// — called both by analyzers consulting the escape hatch mid-analysis
// (a discharged noalloc call edge) and by Filter suppressing emitted
// diagnostics — so dead-allow detection sees every consultation, not
// just the ones that reached a report.
type AllowList struct {
	fset  *token.FileSet
	sites []allowSite
	used  []bool
}

// ParseAllowList extracts every //mgslint:allow comment in files.
func ParseAllowList(fset *token.FileSet, files []*ast.File) *AllowList {
	al := &AllowList{fset: fset}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				site := allowSite{
					pos:       c.Pos(),
					file:      fset.Position(c.Pos()).Filename,
					line:      fset.Position(c.Pos()).Line,
					analyzers: map[string]bool{},
				}
				names := rest
				if i := strings.Index(rest, "--"); i >= 0 {
					names = rest[:i]
					site.justified = strings.TrimSpace(rest[i+2:]) != ""
				}
				for _, n := range strings.Split(names, ",") {
					n = strings.TrimSpace(n)
					if n == "" {
						continue
					}
					site.analyzers[n] = true
					if n != "all" && !knownAnalyzer(n) {
						site.badNames = append(site.badNames, n)
					}
				}
				al.sites = append(al.sites, site)
			}
		}
	}
	al.used = make([]bool, len(al.sites))
	return al
}

func knownAnalyzer(name string) bool {
	for _, a := range All() {
		if a.Name == name {
			return true
		}
	}
	return false
}

// coversAt reports whether this well-formed site sits on commentLine of
// file and names the analyzer.
func (s *allowSite) coversAt(name, file string, commentLine int) bool {
	if !s.justified || len(s.badNames) > 0 {
		return false
	}
	if !s.analyzers["all"] && !s.analyzers[name] {
		return false
	}
	return s.file == file && s.line == commentLine
}

// Permit reports whether a well-formed allow covers the named analyzer
// at pos, marking the covering site used. A trailing comment on the
// diagnostic's own line is credited before one on the line above, so
// consecutive lines each carrying their own allow both stay live. This
// is the analysis.Pass.Allow hook.
func (al *AllowList) Permit(analyzer string, pos token.Pos) bool {
	p := al.fset.Position(pos)
	for _, commentLine := range []int{p.Line, p.Line - 1} {
		for i := range al.sites {
			if al.sites[i].coversAt(analyzer, p.Filename, commentLine) {
				al.used[i] = true
				return true
			}
		}
	}
	return false
}

// Filter drops diagnostics covered by a well-formed allow comment and
// appends one "mgslint-allow" diagnostic per defective comment: missing
// justification, unknown analyzer name, or — when every analyzer the
// comment names is in ran — a dead allow that suppressed nothing.
func (al *AllowList) Filter(diags []analysis.Diagnostic, ran []string) []analysis.Diagnostic {
	ranSet := map[string]bool{}
	for _, r := range ran {
		ranSet[r] = true
	}
	var out []analysis.Diagnostic
	for _, d := range diags {
		if !al.Permit(d.Analyzer, d.Pos) {
			out = append(out, d)
		}
	}
	for i, s := range al.sites {
		if !s.justified {
			out = append(out, analysis.Diagnostic{
				Pos:      s.pos,
				Analyzer: "mgslint-allow",
				Message:  "mgslint:allow without a justification (write `//mgslint:allow <analyzer> -- <why this is sound>`); nothing is suppressed",
			})
			continue
		}
		if len(s.badNames) > 0 {
			for _, n := range s.badNames {
				out = append(out, analysis.Diagnostic{
					Pos:      s.pos,
					Analyzer: "mgslint-allow",
					Message:  fmt.Sprintf("mgslint:allow names unknown analyzer %q; nothing is suppressed", n),
				})
			}
			continue
		}
		if al.used[i] {
			continue
		}
		decided := true
		for n := range s.analyzers {
			if n == "all" {
				for _, a := range All() {
					if !ranSet[a.Name] {
						decided = false
					}
				}
			} else if !ranSet[n] {
				decided = false
			}
		}
		if decided {
			out = append(out, analysis.Diagnostic{
				Pos:      s.pos,
				Analyzer: "mgslint-allow",
				Message:  "dead mgslint:allow: it suppresses no diagnostic and discharges no analysis; remove it",
			})
		}
	}
	return out
}
