package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"mgs/internal/lint/analysis"
)

// The escape hatch. A comment of the form
//
//	//mgslint:allow <name>[,<name>...] -- <justification>
//
// suppresses diagnostics from the named analyzers (or "all") on the
// comment's own line and on the line immediately below it, so both
// trailing and line-above placement work. The justification after the
// "--" separator is mandatory: an allow that does not say *why* the
// exception is sound is itself a diagnostic, and suppresses nothing.

const allowPrefix = "//mgslint:allow"

type allowSite struct {
	pos       token.Pos
	file      string
	line      int
	analyzers map[string]bool // names, or "all"
	justified bool
	badNames  []string // names not matching any registered analyzer
}

// parseAllows extracts every //mgslint:allow comment in files.
func parseAllows(fset *token.FileSet, files []*ast.File) []allowSite {
	var sites []allowSite
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				site := allowSite{
					pos:       c.Pos(),
					file:      fset.Position(c.Pos()).Filename,
					line:      fset.Position(c.Pos()).Line,
					analyzers: map[string]bool{},
				}
				names := rest
				if i := strings.Index(rest, "--"); i >= 0 {
					names = rest[:i]
					site.justified = strings.TrimSpace(rest[i+2:]) != ""
				}
				for _, n := range strings.Split(names, ",") {
					n = strings.TrimSpace(n)
					if n == "" {
						continue
					}
					site.analyzers[n] = true
					if n != "all" && !knownAnalyzer(n) {
						site.badNames = append(site.badNames, n)
					}
				}
				sites = append(sites, site)
			}
		}
	}
	return sites
}

func knownAnalyzer(name string) bool {
	for _, a := range All() {
		if a.Name == name {
			return true
		}
	}
	return false
}

// covers reports whether the site suppresses a diagnostic from the
// named analyzer at (file, line).
func (s *allowSite) covers(name, file string, line int) bool {
	if !s.justified || len(s.badNames) > 0 {
		return false
	}
	if !s.analyzers["all"] && !s.analyzers[name] {
		return false
	}
	return s.file == file && (s.line == line || s.line == line-1)
}

// FilterAllowed drops diagnostics covered by a well-formed allow
// comment and appends one "mgslint-allow" diagnostic per malformed
// comment (missing justification or unknown analyzer name).
func FilterAllowed(fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) []analysis.Diagnostic {
	sites := parseAllows(fset, files)
	var out []analysis.Diagnostic
	for _, d := range diags {
		p := fset.Position(d.Pos)
		suppressed := false
		for i := range sites {
			if sites[i].covers(d.Analyzer, p.Filename, p.Line) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, s := range sites {
		if !s.justified {
			out = append(out, analysis.Diagnostic{
				Pos:      s.pos,
				Analyzer: "mgslint-allow",
				Message:  "mgslint:allow without a justification (write `//mgslint:allow <analyzer> -- <why this is sound>`); nothing is suppressed",
			})
		}
		for _, n := range s.badNames {
			out = append(out, analysis.Diagnostic{
				Pos:      s.pos,
				Analyzer: "mgslint-allow",
				Message:  fmt.Sprintf("mgslint:allow names unknown analyzer %q; nothing is suppressed", n),
			})
		}
	}
	return out
}
