package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mgs/internal/lint/analysis"
)

// isTestFile reports whether the file is a _test.go file. The analyzers
// check only shipping simulator code; tests drive the simulator from
// the host side and legitimately use seeded rand, goroutines, etc.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// sourceFiles returns the non-test files of the pass.
func sourceFiles(pass *analysis.Pass) []*ast.File {
	var out []*ast.File
	for _, f := range pass.Files {
		if !isTestFile(pass.Fset, f) {
			out = append(out, f)
		}
	}
	return out
}

// namedType dereferences pointers and returns t's named type, or nil.
func namedType(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// typeIs reports whether t (possibly behind a pointer) is the named
// type pkgName.typeName, where pkgName is matched as internal/<pkgName>
// so fixture packages under testdata classify like the real ones.
func typeIs(t types.Type, pkgName, typeName string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == typeName && pkgIs(n.Obj().Pkg().Path(), pkgName)
}

// calleeOf resolves the *types.Func a call expression invokes (method
// or plain function), or nil for builtins, conversions, and calls of
// function-typed values.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isMethodOn reports whether f is a method named one of names on the
// named type pkgName.typeName.
func isMethodOn(f *types.Func, pkgName, typeName string, names ...string) bool {
	if f == nil {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !typeIs(sig.Recv().Type(), pkgName, typeName) {
		return false
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

// pkgNameOf resolves a selector's base to an imported package path, or
// "" if the base is not a package identifier.
func pkgNameOf(info *types.Info, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// funcGraph is a same-package call graph over declared functions and
// methods. Function literals are folded into their enclosing
// declaration except where an analyzer treats them as separate roots
// (enginectx's engine-context closures).
type funcGraph struct {
	decls map[*types.Func]*ast.FuncDecl
	calls map[*types.Func][]*types.Func // same-package callees only
}

// buildFuncGraph collects every declared function of the pass's
// non-test files and the same-package calls each makes (including calls
// made inside nested function literals).
func buildFuncGraph(pass *analysis.Pass) *funcGraph {
	return buildFuncGraphSkipping(pass, nil)
}

// buildFuncGraphSkipping is buildFuncGraph, but function literals in
// skip are not folded into their enclosing declaration: calls inside
// them belong to whatever context eventually invokes the literal, not
// to the function that merely created it (enginectx uses this for
// scheduled callbacks).
func buildFuncGraphSkipping(pass *analysis.Pass, skip map[*ast.FuncLit]bool) *funcGraph {
	g := &funcGraph{
		decls: map[*types.Func]*ast.FuncDecl{},
		calls: map[*types.Func][]*types.Func{},
	}
	for _, f := range sourceFiles(pass) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.decls[obj] = fd
			inspectSkipping(fd.Body, skip, func(n ast.Node) {
				if call, ok := n.(*ast.CallExpr); ok {
					if callee := calleeOf(pass.TypesInfo, call); callee != nil && callee.Pkg() == pass.Pkg {
						g.calls[obj] = append(g.calls[obj], callee)
					}
				}
			})
		}
	}
	return g
}

// inspectSkipping walks node, calling fn on every node, but does not
// descend into function literals present in skip.
func inspectSkipping(node ast.Node, skip map[*ast.FuncLit]bool, fn func(ast.Node)) {
	ast.Inspect(node, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && skip[lit] {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// reach returns the set of functions reachable from seeds through
// same-package calls (seeds included).
func (g *funcGraph) reach(seeds []*types.Func) map[*types.Func]bool {
	seen := map[*types.Func]bool{}
	var visit func(f *types.Func)
	visit = func(f *types.Func) {
		if seen[f] {
			return
		}
		seen[f] = true
		for _, c := range g.calls[f] {
			visit(c)
		}
	}
	for _, s := range seeds {
		visit(s)
	}
	return seen
}
