package lint_test

import (
	"testing"

	"mgs/internal/lint"
	"mgs/internal/lint/analysistest"
)

func TestNoWallTime(t *testing.T) {
	analysistest.Run(t, "testdata/nowalltime", lint.NoWallTime,
		"mgs/internal/vm", "mgs/internal/stats", "mgs/internal/fault", "mgs/internal/check")
}

func TestNoGoroutine(t *testing.T) {
	analysistest.Run(t, "testdata/nogoroutine", lint.NoGoroutine,
		"mgs/internal/mem", "mgs/internal/harness", "mgs/internal/exp")
}

func TestMapRange(t *testing.T) {
	analysistest.Run(t, "testdata/maprange", lint.MapRange,
		"mgs/internal/cache", "mgs/internal/check")
}

func TestChargeCost(t *testing.T) {
	analysistest.Run(t, "testdata/chargecost", lint.ChargeCost,
		"mgs/internal/msg", "mgs/internal/core", "mgs/internal/obs")
}

func TestEngineCtx(t *testing.T) {
	analysistest.Run(t, "testdata/enginectx", lint.EngineCtx,
		"mgs/internal/sim", "mgs/internal/core")
}

func TestShardSafe(t *testing.T) {
	analysistest.Run(t, "testdata/shardsafe", lint.ShardSafe,
		"mgs/internal/msync", "mgs/internal/core")
}

func TestNoAlloc(t *testing.T) {
	analysistest.Run(t, "testdata/noalloc", lint.NoAlloc,
		"mgs/internal/mem", "mgs/internal/core")
}

func TestDetFlow(t *testing.T) {
	analysistest.Run(t, "testdata/detflow", lint.DetFlow,
		"mgs/internal/cache", "mgs/internal/core")
}
