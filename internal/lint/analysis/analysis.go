// Package analysis is a minimal, dependency-free stand-in for
// golang.org/x/tools/go/analysis: just enough surface (Analyzer, Pass,
// Diagnostic) to write vet-style static checks against go/ast +
// go/types. The repository must build with an empty module cache, so
// vendoring x/tools is not an option; the drivers (cmd/mgslint and
// internal/lint/analysistest) supply the package loading that x/tools
// would otherwise provide.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //mgslint:allow comments. It must be a valid identifier.
	Name string

	// Doc is a one-paragraph description of what the analyzer enforces
	// and why.
	Doc string

	// Run applies the analyzer to one package. It reports findings via
	// pass.Report / pass.Reportf and returns an error only for internal
	// failures (not for findings).
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an
// analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records one diagnostic. Drivers set it; analyzers usually
	// call Reportf instead.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}
