// Package analysis is a minimal, dependency-free stand-in for
// golang.org/x/tools/go/analysis: just enough surface (Analyzer, Pass,
// Diagnostic) to write vet-style static checks against go/ast +
// go/types. The repository must build with an empty module cache, so
// vendoring x/tools is not an option; the drivers (cmd/mgslint and
// internal/lint/analysistest) supply the package loading that x/tools
// would otherwise provide.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //mgslint:allow comments. It must be a valid identifier.
	Name string

	// Doc is a one-paragraph description of what the analyzer enforces
	// and why.
	Doc string

	// Run applies the analyzer to one package. It reports findings via
	// pass.Report / pass.Reportf and returns an error only for internal
	// failures (not for findings).
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an
// analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts holds the current package's computed facts. Drivers populate
	// it (via lint.ComputeFacts) before any analyzer runs; it may be nil
	// for analyzers that do not consult facts.
	Facts *PackageFacts

	// ImportedFacts resolves the facts of an imported package by its
	// canonical import path, or nil when unknown (standard library,
	// packages outside the module). May itself be nil.
	ImportedFacts func(path string) *PackageFacts

	// Allow consults the //mgslint:allow escape hatch at pos for the
	// named analyzer and, when covered, marks the allow site used (so
	// dead-allow detection does not flag it). Analyzers call it when a
	// would-be finding gates further traversal — a suppressed allocation
	// must not poison every transitive caller. May be nil.
	Allow func(analyzer string, pos token.Pos) bool

	// Report records one diagnostic. Drivers set it; analyzers usually
	// call Reportf instead.
	Report func(Diagnostic)
}

// Allowed reports whether the escape hatch covers (analyzer, pos),
// tolerating a nil Allow hook.
func (p *Pass) Allowed(analyzer string, pos token.Pos) bool {
	return p.Allow != nil && p.Allow(analyzer, pos)
}

// FactsFor resolves facts for an imported package path, tolerating a
// nil ImportedFacts hook.
func (p *Pass) FactsFor(path string) *PackageFacts {
	if p.ImportedFacts == nil {
		return nil
	}
	return p.ImportedFacts(path)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}
