package analysis

import "encoding/json"

// Cross-package facts. The interprocedural analyzers (noalloc, detflow,
// shardsafe) summarize every function of a package into a FuncFact so
// callers in other packages can be checked without re-analyzing the
// callee's source. Facts serialize as JSON: the standalone driver keeps
// them in memory while analyzing packages in dependency order, and the
// unitchecker driver writes them to cmd/go's .vetx facts file so `go
// vet` caches and threads them exactly like x/tools facts.

// PackageFacts is the exported summary of one package.
type PackageFacts struct {
	// Path is the canonical import path the facts describe.
	Path string `json:"path,omitempty"`

	// Funcs maps a function's canonical ID — "Name" for package
	// functions, "(Recv).Name" for methods, pointer receivers
	// unwrapped — to its summary.
	Funcs map[string]*FuncFact `json:"funcs,omitempty"`

	// SharedTypes maps a named struct type's name to its //mgs:shared /
	// field-annotation summary, so writes to its exported fields from
	// other packages are checked against the same policy.
	SharedTypes map[string]*SharedTypeFact `json:"shared_types,omitempty"`
}

// FuncFact summarizes one function or method.
type FuncFact struct {
	// Allocates reports that calling the function may allocate on the
	// Go heap (transitively), making it unusable from //mgs:noalloc
	// code. AllocWhy is the first cause, as a human-readable chain
	// ("file:line: make([]T) in grow").
	Allocates bool   `json:"allocates,omitempty"`
	AllocWhy  string `json:"alloc_why,omitempty"`

	// TaintBits carries the nondeterminism categories (TaintMapOrder,
	// TaintRandom, TaintPointer) present in the function's return
	// values regardless of argument taint; TaintWhy names the first
	// source. PropParams lists parameter indices whose taint flows to a
	// return value, so callers propagate argument taint through the
	// call.
	TaintBits int    `json:"taint_bits,omitempty"`
	TaintWhy  string `json:"taint_why,omitempty"`
	PropParams []int `json:"prop_params,omitempty"`

	// SinkParams lists parameters that the function (transitively)
	// feeds into a determinism sink — charged cycles, the event
	// schedule, or serialized output.
	SinkParams []SinkParam `json:"sink_params,omitempty"`

	// Unguarded lists writes to mutex-guarded shared fields that the
	// function performs without acquiring the guard itself: the caller
	// must hold it. Shardsafe checks these at every cross-package call
	// site.
	Unguarded []UnguardedWrite `json:"unguarded,omitempty"`
}

// Taint categories. Sort-cleansing removes only TaintMapOrder:
// collect-then-sort turns map iteration into a deterministic sequence,
// but no amount of sorting fixes unseeded randomness or pointer
// identity.
const (
	TaintMapOrder = 1 << iota // map iteration order
	TaintRandom               // unseeded randomness
	TaintPointer              // pointer/goroutine identity
)

// TaintName returns a short label for the lowest category in bits.
func TaintName(bits int) string {
	switch {
	case bits&TaintMapOrder != 0:
		return "map iteration order"
	case bits&TaintRandom != 0:
		return "unseeded randomness"
	case bits&TaintPointer != 0:
		return "pointer identity"
	}
	return "nondeterminism"
}

// SinkParam marks one parameter as sink-feeding.
type SinkParam struct {
	Index int    `json:"index"`
	Why   string `json:"why"` // e.g. "charged cycles via Proc.Advance"
}

// UnguardedWrite is one shared-field write the function leaves for its
// caller to guard.
type UnguardedWrite struct {
	Type  string `json:"type"`  // defining package path + type name, "pkg/path.Type"
	Field string `json:"field"` // written field
	Guard string `json:"guard"` // mutex field that must be held
	Desc  string `json:"desc"`  // "file:line: write to Type.Field"
}

// SharedTypeFact summarizes the concurrency annotations of one struct
// type.
type SharedTypeFact struct {
	// Shared marks the type //mgs:shared: every mutable-field write is
	// checked, annotated or not.
	Shared bool `json:"shared,omitempty"`

	// Fields maps field name to its annotation.
	Fields map[string]*FieldFact `json:"fields,omitempty"`
}

// FieldFact is one field-level annotation.
type FieldFact struct {
	// Kind is "guardedby", "atomic", or "shardpinned".
	Kind string `json:"kind"`
	// Arg is the guarding mutex field (guardedby) or the audit
	// justification (shardpinned).
	Arg string `json:"arg,omitempty"`
}

// Fact returns the FuncFact for id, or nil.
func (p *PackageFacts) Fact(id string) *FuncFact {
	if p == nil {
		return nil
	}
	return p.Funcs[id]
}

// SharedType returns the SharedTypeFact for a type name, or nil.
func (p *PackageFacts) SharedType(name string) *SharedTypeFact {
	if p == nil {
		return nil
	}
	return p.SharedTypes[name]
}

// EncodeFacts serializes facts for a .vetx file (deterministic JSON).
func EncodeFacts(p *PackageFacts) ([]byte, error) {
	return json.Marshal(p)
}

// DecodeFacts parses a .vetx facts payload. Empty input (the facts file
// cmd/go requires even for factless packages) decodes to nil.
func DecodeFacts(data []byte) (*PackageFacts, error) {
	if len(data) == 0 {
		return nil, nil
	}
	p := &PackageFacts{}
	if err := json.Unmarshal(data, p); err != nil {
		return nil, err
	}
	return p, nil
}
