// Package analysistest runs one analyzer over golden fixture packages
// and checks its diagnostics against `// want` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest (which the module cache
// does not carry).
//
// Fixtures live under a root directory laid out like a GOPATH src tree:
// root/src/<import/path>/*.go. Fixture packages may import each other
// (resolved inside the tree) and the standard library (type-checked
// from GOROOT source via go/importer's "source" mode). A comment
//
//	// want "regexp" "another"
//
// on a line asserts that each quoted pattern matches the message of a
// diagnostic reported on that line; diagnostics without a matching want
// and wants without a matching diagnostic both fail the test. The
// //mgslint:allow escape hatch is applied exactly as cmd/mgslint
// applies it, so fixtures exercise suppression too.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"mgs/internal/lint"
	"mgs/internal/lint/analysis"
)

// Run loads each named fixture package from root/src and applies a to
// it, comparing diagnostics (after //mgslint:allow filtering) against
// the package's // want comments.
func Run(t *testing.T, root string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := &loader{
		root:  filepath.Join(root, "src"),
		fset:  token.NewFileSet(),
		pkgs:  map[string]*fixturePkg{},
		facts: map[string]*analysis.PackageFacts{},
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)
	for _, path := range pkgPaths {
		p, err := l.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		check(t, l, a, p)
	}
}

type fixturePkg struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
	allow *lint.AllowList
}

type loader struct {
	root  string
	fset  *token.FileSet
	std   types.Importer
	pkgs  map[string]*fixturePkg
	facts map[string]*analysis.PackageFacts
}

// Import lets the loader serve as the types.Importer for fixture
// type-checking: fixture-tree packages resolve recursively, everything
// else falls through to the GOROOT source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(l.root, path)); err == nil {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*fixturePkg, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := lint.NewTypesInfo()
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &fixturePkg{files: files, pkg: pkg, info: info}
	// Imports resolve recursively through l.Import, so by the time this
	// package type-checks, every fixture dependency already exported its
	// facts — the same dependency-order contract cmd/mgslint upholds.
	p.allow = lint.ParseAllowList(l.fset, files)
	l.facts[path] = lint.ComputeFacts(l.fset, files, pkg, info, l.imported, p.allow.Permit)
	l.pkgs[path] = p
	return p, nil
}

func (l *loader) imported(path string) *analysis.PackageFacts {
	return l.facts[path]
}

// want is one expectation: a pattern that must match a diagnostic
// message reported at (file, line).
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want((?:\s+(?:"(?:[^"\\]|\\.)*"|` + "`[^`]*`" + `))+)`)
var wantArgRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")

func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "want") && strings.Contains(c.Text, `"`) {
						t.Fatalf("%s: malformed want comment: %s", fset.Position(c.Pos()), c.Text)
					}
					continue
				}
				pos := fset.Position(c.Pos())
				for _, arg := range wantArgRE.FindAllString(m[1], -1) {
					var pat string
					if arg[0] == '`' {
						pat = arg[1 : len(arg)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(arg)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, arg, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

func check(t *testing.T, l *loader, a *analysis.Analyzer, p *fixturePkg) {
	t.Helper()
	fset := l.fset
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:      a,
		Fset:          fset,
		Files:         p.files,
		Pkg:           p.pkg,
		TypesInfo:     p.info,
		ImportedFacts: l.imported,
		Facts:         l.facts[p.pkg.Path()],
		Allow:         p.allow.Permit,
		Report:        func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer error: %v", p.pkg.Path(), err)
	}
	// Dead-allow detection is scoped to the one analyzer under test:
	// fixture allows naming other analyzers stay undecided.
	diags = p.allow.Filter(diags, []string{a.Name})
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })

	wants := parseWants(t, fset, p.files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			// A diagnostic about an //mgslint:allow comment cannot have
			// a want on its own line (the allow comment runs to end of
			// line), so those may carry the want on the next line.
			lineOK := w.line == pos.Line || (d.Analyzer == "mgslint-allow" && w.line == pos.Line+1)
			if !w.matched && w.file == pos.Filename && lineOK && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
