package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"mgs/internal/lint/analysis"
)

// DetFlow is interprocedural nondeterminism taint. The determinism
// contract says a run is a pure function of its seed; maprange enforces
// the discipline locally (order-insensitive bodies, collect-then-sort),
// but a map-ordered value can also leak through a return value or a
// parameter into another package before it reaches anything
// observable. DetFlow tracks three taint categories — map iteration
// order, unseeded randomness, pointer identity — through assignments,
// call returns (via exported PropParams facts), and parameters (via
// exported SinkParams facts), and reports when a tainted value reaches
// a determinism sink: charged cycles (Proc.Advance/Sleep/AddDebt,
// stats.Collector charging), the event schedule (Engine.At* / After,
// Network.Send/Extend, Proc.Wake), or serialized output (metrics,
// CSV/JSON encoders).
//
// Sorting cleanses only the map-order category: a slice that is passed
// to sort.* / slices.Sort* is a deterministic sequence no matter what
// order it was collected in. Commutative compound assignments
// (x += v, *=, |=, &=, ^=, -= on numbers) also do not propagate, since
// an order-independent reduction is deterministic; string += does.
var DetFlow = &analysis.Analyzer{
	Name: "detflow",
	Doc:  "nondeterministic values (map order, unseeded randomness, pointer identity) must not flow into charged cycles, the event schedule, or serialized output",
	Run:  runDetFlow,
}

// scopeDetFlow: the deterministic packages, plus the host-side packages
// that produce the artifacts we promise are reproducible (stats
// breakdowns, sweep CSVs, CLI output).
func scopeDetFlow(path string) bool {
	p := internalPkg(path)
	return isDeterministic(path) || p == "harness" || p == "stats" || p == "exp" || p == "cli"
}

// Param taint bits start above the source-category bits.
const taintParamShift = 3

const taintSourceMask = analysis.TaintMapOrder | analysis.TaintRandom | analysis.TaintPointer

// taintDiag is one source-tainted sink hit.
type taintDiag struct {
	pos token.Pos
	msg string
}

// taintResult summarizes one function.
type taintResult struct {
	retBits    int // source categories present in return values
	retWhy     string
	propParams []int // param indices whose taint reaches a return value
	sinkParams []analysis.SinkParam
	diags      []taintDiag
}

func (r *taintResult) equal(o *taintResult) bool {
	if r.retBits != o.retBits || len(r.propParams) != len(o.propParams) ||
		len(r.sinkParams) != len(o.sinkParams) || len(r.diags) != len(o.diags) {
		return false
	}
	for i := range r.propParams {
		if r.propParams[i] != o.propParams[i] {
			return false
		}
	}
	for i := range r.sinkParams {
		if r.sinkParams[i] != o.sinkParams[i] {
			return false
		}
	}
	return true
}

func runDetFlow(pass *analysis.Pass) error {
	if !scopeDetFlow(pass.Pkg.Path()) {
		return nil
	}
	results := taintFor(pass)
	var fns []*types.Func
	for fn := range results {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	seen := map[string]bool{}
	for _, fn := range fns {
		for _, d := range results[fn].diags {
			key := fmt.Sprintf("%d:%s", d.pos, d.msg)
			if !seen[key] {
				seen[key] = true
				pass.Reportf(d.pos, "%s", d.msg)
			}
		}
	}
	return nil
}

// computeTaint resolves every declared function's taint summary to a
// fixpoint (masks only grow, so this terminates).
func computeTaint(pass *analysis.Pass, g *callGraph) map[*types.Func]*taintResult {
	results := map[*types.Func]*taintResult{}
	for fn := range g.nodes {
		results[fn] = &taintResult{}
	}
	for changed := true; changed; {
		changed = false
		for fn, n := range g.nodes {
			r := taintFunc(pass, g, results, fn, n.decl)
			if !r.equal(results[fn]) {
				results[fn] = r
				changed = true
			}
		}
	}
	return results
}

// taintState is the per-function propagation context.
type taintState struct {
	pass    *analysis.Pass
	g       *callGraph
	results map[*types.Func]*taintResult
	fn      *types.Func
	masks   map[types.Object]int
	why     map[int]string // lowest source bit → first cause
	sorted  map[types.Object]bool
	params  map[types.Object]int // param object → index
	nparams int
}

func taintFunc(pass *analysis.Pass, g *callGraph, results map[*types.Func]*taintResult, fn *types.Func, fd *ast.FuncDecl) *taintResult {
	st := &taintState{
		pass: pass, g: g, results: results, fn: fn,
		masks:  map[types.Object]int{},
		why:    map[int]string{},
		sorted: map[types.Object]bool{},
		params: map[types.Object]int{},
	}
	sig := fn.Type().(*types.Signature)
	st.nparams = sig.Params().Len()
	for i := 0; i < st.nparams; i++ {
		st.params[sig.Params().At(i)] = i
	}

	// Pre-pass: slices handed to a sort are cleansed of map-order taint.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if f := calleeOf(pass.TypesInfo, call); f != nil {
			p := funcPkgPath(f)
			if (p == "sort" || p == "slices") && len(call.Args) > 0 {
				if obj := rootObj(pass.TypesInfo, call.Args[0]); obj != nil {
					st.sorted[obj] = true
				}
			}
		}
		return true
	})

	// Propagate to a local fixpoint.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if st.propagate(n) {
				changed = true
			}
			return true
		})
	}

	// Harvest sinks and returns.
	r := &taintResult{}
	sinkSeen := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			st.checkSinks(e, r, sinkSeen)
		case *ast.ReturnStmt:
			for _, res := range e.Results {
				m := st.exprMask(res)
				if src := m & taintSourceMask; src != 0 && r.retBits&src != src {
					r.retBits |= src
					if r.retWhy == "" {
						r.retWhy = st.whyFor(src)
					}
				}
				for i := 0; i < st.nparams; i++ {
					if m&(1<<(taintParamShift+i)) != 0 && !containsInt(r.propParams, i) {
						r.propParams = append(r.propParams, i)
					}
				}
			}
		}
		return true
	})
	sort.Ints(r.propParams)
	sort.Slice(r.sinkParams, func(i, j int) bool { return r.sinkParams[i].Index < r.sinkParams[j].Index })
	sort.Slice(r.diags, func(i, j int) bool { return r.diags[i].pos < r.diags[j].pos })
	return r
}

// propagate handles one statement node, returning whether any mask
// grew.
func (st *taintState) propagate(n ast.Node) bool {
	switch s := n.(type) {
	case *ast.AssignStmt:
		if s.Tok == token.ASSIGN || s.Tok == token.DEFINE {
			if len(s.Lhs) == len(s.Rhs) {
				changed := false
				for i := range s.Lhs {
					if st.taintTarget(s.Lhs[i], st.exprMask(s.Rhs[i])) {
						changed = true
					}
				}
				return changed
			}
			// a, b := f(): every target gets the call's mask.
			m := 0
			for _, r := range s.Rhs {
				m |= st.exprMask(r)
			}
			changed := false
			for _, l := range s.Lhs {
				if st.taintTarget(l, m) {
					changed = true
				}
			}
			return changed
		}
		// Compound assignment: commutative numeric reductions are
		// order-independent and do not propagate (string += is ordered).
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			if commutativeAssign(s.Tok) && !st.isStringExpr(s.Lhs[0]) {
				return false
			}
			return st.taintTarget(s.Lhs[0], st.exprMask(s.Lhs[0])|st.exprMask(s.Rhs[0]))
		}
	case *ast.RangeStmt:
		m := st.exprMask(s.X)
		if tv, ok := st.pass.TypesInfo.Types[s.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				m |= analysis.TaintMapOrder
				st.setWhy(analysis.TaintMapOrder, "map iteration at "+st.posOf(s.Pos()))
			}
		}
		changed := false
		if s.Key != nil && st.taintTarget(s.Key, m) {
			changed = true
		}
		if s.Value != nil && st.taintTarget(s.Value, m) {
			changed = true
		}
		return changed
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return false
		}
		changed := false
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				m := 0
				for _, v := range vs.Values {
					m |= st.exprMask(v)
				}
				for _, name := range vs.Names {
					if st.taintTarget(name, m) {
						changed = true
					}
				}
			}
		}
		return changed
	}
	return false
}

// taintTarget adds mask bits to the root variable of an assignment
// target.
func (st *taintState) taintTarget(lhs ast.Expr, mask int) bool {
	if mask == 0 {
		return false
	}
	obj := rootObj(st.pass.TypesInfo, lhs)
	if obj == nil {
		return false
	}
	if st.sorted[obj] {
		mask &^= analysis.TaintMapOrder
	}
	if st.masks[obj]&mask == mask {
		return false
	}
	st.masks[obj] |= mask
	return true
}

// exprMask computes the taint mask of an expression.
func (st *taintState) exprMask(e ast.Expr) int {
	if e == nil {
		return 0
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := st.pass.TypesInfo.ObjectOf(x)
		if obj == nil {
			return 0
		}
		if i, ok := st.params[obj]; ok && i < 58 {
			return st.masks[obj] | 1<<(taintParamShift+i)
		}
		m := st.masks[obj]
		if st.sorted[obj] {
			m &^= analysis.TaintMapOrder
		}
		return m
	case *ast.SelectorExpr:
		if _, ok := st.pass.TypesInfo.Uses[x.Sel].(*types.Func); ok {
			return 0 // method value: not a data read
		}
		return st.exprMask(x.X)
	case *ast.IndexExpr:
		return st.exprMask(x.X) | st.exprMask(x.Index)
	case *ast.SliceExpr:
		return st.exprMask(x.X)
	case *ast.StarExpr:
		return st.exprMask(x.X)
	case *ast.UnaryExpr:
		return st.exprMask(x.X)
	case *ast.BinaryExpr:
		return st.exprMask(x.X) | st.exprMask(x.Y)
	case *ast.CompositeLit:
		m := 0
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				m |= st.exprMask(kv.Value)
			} else {
				m |= st.exprMask(el)
			}
		}
		return m
	case *ast.TypeAssertExpr:
		return st.exprMask(x.X)
	case *ast.CallExpr:
		return st.callMask(x)
	}
	return 0
}

// callMask computes the taint of a call's result.
func (st *taintState) callMask(call *ast.CallExpr) int {
	info := st.pass.TypesInfo
	fun := ast.Unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return 0
		}
		// Conversion. uintptr(unsafe.Pointer) is the pointer-identity
		// source; everything else passes taint through.
		m := st.exprMask(call.Args[0])
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.Uintptr && len(call.Args) == 1 {
			if at, ok := info.Types[call.Args[0]]; ok {
				if ab, ok := at.Type.Underlying().(*types.Basic); ok && ab.Kind() == types.UnsafePointer {
					m |= analysis.TaintPointer
					st.setWhy(analysis.TaintPointer, "uintptr(unsafe.Pointer) at "+st.posOf(call.Pos()))
				}
			}
		}
		return m
	}
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap", "make", "new", "delete", "copy", "clear":
				return 0 // counts and fresh values are order-independent
			default:
				m := 0
				for _, a := range call.Args {
					m |= st.exprMask(a)
				}
				return m
			}
		}
	}
	argsMask := func() int {
		m := 0
		for _, a := range call.Args {
			m |= st.exprMask(a)
		}
		return m
	}
	f := calleeOf(info, call)
	if f == nil {
		return argsMask() // dynamic: pass-through
	}
	path := funcPkgPath(f)
	switch path {
	case "math/rand", "math/rand/v2":
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() == nil && !strings.HasPrefix(f.Name(), "New") {
			st.setWhy(analysis.TaintRandom, "unseeded "+path+"."+f.Name()+" at "+st.posOf(call.Pos()))
			return analysis.TaintRandom
		}
		return 0 // a seeded *rand.Rand is a pure function of its seed
	case "sort", "slices":
		return 0
	case "fmt":
		m := argsMask()
		if formatUsesPointerVerb(info, call) {
			m |= analysis.TaintPointer
			st.setWhy(analysis.TaintPointer, "%p formatting at "+st.posOf(call.Pos()))
		}
		return m
	}
	if internalPkg(path) == "" && path != "mgs" {
		return argsMask() // other stdlib: conservative pass-through
	}
	// Module-internal: combine every CHA target's fact.
	m := 0
	for _, t := range resolveTargets(st.g, info, call) {
		var fact *analysis.FuncFact
		if n := st.g.node(t); n != nil {
			r := st.results[n.fn]
			fact = &analysis.FuncFact{TaintBits: r.retBits, TaintWhy: r.retWhy, PropParams: r.propParams}
		} else {
			fact = st.pass.FactsFor(funcPkgPath(t)).Fact(funcID(t))
		}
		if fact == nil {
			continue
		}
		if fact.TaintBits != 0 {
			m |= fact.TaintBits
			st.setWhy(fact.TaintBits, "via "+describeFunc(t)+": "+fact.TaintWhy)
		}
		for _, pi := range fact.PropParams {
			for _, a := range argsForParam(call, t, pi) {
				m |= st.exprMask(a)
			}
		}
	}
	return m
}

// checkSinks inspects one call for intrinsic or fact-declared sinks.
func (st *taintState) checkSinks(call *ast.CallExpr, r *taintResult, seen map[string]bool) {
	info := st.pass.TypesInfo
	f := calleeOf(info, call)
	if f == nil {
		return
	}
	record := func(arg ast.Expr, sinkDesc string) {
		m := st.exprMask(arg)
		if src := m & taintSourceMask; src != 0 {
			msg := fmt.Sprintf("value derived from %s (%s) flows into %s; a run must be a pure function of its seed",
				analysis.TaintName(src), st.whyFor(src), sinkDesc)
			key := fmt.Sprintf("%d:%s", arg.Pos(), msg)
			if !seen[key] {
				seen[key] = true
				r.diags = append(r.diags, taintDiag{pos: arg.Pos(), msg: msg})
			}
		}
		for i := 0; i < st.nparams; i++ {
			if m&(1<<(taintParamShift+i)) != 0 {
				if !hasSinkParam(r.sinkParams, i) {
					r.sinkParams = append(r.sinkParams, analysis.SinkParam{Index: i, Why: sinkDesc})
				}
			}
		}
	}
	if desc, ok := intrinsicSink(f); ok {
		for _, arg := range call.Args {
			if st.sinkExemptArg(arg) {
				continue
			}
			record(arg, desc)
		}
		return
	}
	// Sinks declared by callee facts.
	for _, t := range resolveTargets(st.g, info, call) {
		var sinks []analysis.SinkParam
		if n := st.g.node(t); n != nil {
			sinks = st.results[n.fn].sinkParams
		} else if fact := st.pass.FactsFor(funcPkgPath(t)).Fact(funcID(t)); fact != nil {
			sinks = fact.SinkParams
		}
		for _, sp := range sinks {
			for _, a := range argsForParam(call, t, sp.Index) {
				record(a, sp.Why+" (via "+describeFunc(t)+")")
			}
		}
	}
}

// sinkExemptArg: callbacks and procs are schedule participants, not
// data — only value arguments are checked.
func (st *taintState) sinkExemptArg(arg ast.Expr) bool {
	tv, ok := st.pass.TypesInfo.Types[arg]
	if !ok || tv.Type == nil {
		return false
	}
	if _, ok := tv.Type.Underlying().(*types.Signature); ok {
		return true
	}
	return typeIs(tv.Type, "sim", "Proc")
}

// intrinsicSink classifies the built-in determinism sinks.
func intrinsicSink(f *types.Func) (string, bool) {
	switch {
	case isMethodOn(f, "sim", "Proc", "Advance", "Sleep", "AddDebt", "Wake"):
		return "charged cycles (Proc." + f.Name() + ")", true
	case isMethodOn(f, "sim", "Engine", "At", "AtOn", "AtSend", "AtChoiceSend", "After"):
		return "the committed event order (Engine." + f.Name() + ")", true
	case isMethodOn(f, "msg", "Network", "Send", "Extend"):
		return "message timing (Network." + f.Name() + ")", true
	case isMethodOn(f, "stats", "Collector", "Charge", "ChargeMode", "Count"):
		return "cost accounting (stats.Collector." + f.Name() + ", lands in BENCH/CSV output)", true
	case isMethodOn(f, "obs", "Counter", "Add"),
		isMethodOn(f, "obs", "Gauge", "Set"),
		isMethodOn(f, "obs", "Histogram", "Observe"):
		return "metrics output (obs." + f.Name() + ")", true
	}
	path := funcPkgPath(f)
	if path == "encoding/csv" && (f.Name() == "Write" || f.Name() == "WriteAll") {
		return "CSV output", true
	}
	if path == "encoding/json" && (f.Name() == "Marshal" || f.Name() == "MarshalIndent" || f.Name() == "Encode") {
		return "JSON output", true
	}
	return "", false
}

// resolveTargets finds the call's CHA target set via the graph's
// recorded sites (falling back to the static callee).
func resolveTargets(g *callGraph, info *types.Info, call *ast.CallExpr) []*types.Func {
	if s, ok := g.byCall[call]; ok {
		return s.targets
	}
	if f := calleeOf(info, call); f != nil {
		return []*types.Func{f}
	}
	return nil
}

// argsForParam returns the call arguments feeding parameter index pi of
// callee t (several, for the variadic tail).
func argsForParam(call *ast.CallExpr, t *types.Func, pi int) []ast.Expr {
	sig, ok := t.Type().(*types.Signature)
	if !ok {
		return nil
	}
	np := sig.Params().Len()
	var out []ast.Expr
	for i, a := range call.Args {
		j := i
		if sig.Variadic() && j >= np-1 {
			j = np - 1
		}
		if j == pi {
			out = append(out, a)
		}
	}
	return out
}

func (st *taintState) isStringExpr(e ast.Expr) bool {
	tv, ok := st.pass.TypesInfo.Types[e]
	return ok && tv.Type != nil && isStringType(tv.Type)
}

func (st *taintState) setWhy(bits int, why string) {
	for b := 1; b <= analysis.TaintPointer; b <<= 1 {
		if bits&b != 0 {
			if _, ok := st.why[b]; !ok {
				st.why[b] = why
			}
		}
	}
}

func (st *taintState) whyFor(bits int) string {
	for b := 1; b <= analysis.TaintPointer; b <<= 1 {
		if bits&b != 0 {
			if w, ok := st.why[b]; ok {
				return w
			}
		}
	}
	return "nondeterministic source"
}

func (st *taintState) posOf(p token.Pos) string {
	pos := st.pass.Fset.Position(p)
	return fmt.Sprintf("%s:%d", shortFile(pos.Filename), pos.Line)
}

func shortFile(f string) string {
	if i := strings.LastIndexByte(f, '/'); i >= 0 {
		if j := strings.LastIndexByte(f[:i], '/'); j >= 0 {
			return f[j+1:]
		}
		return f[i+1:]
	}
	return f
}

// formatUsesPointerVerb reports whether a fmt call's constant format
// string contains %p.
func formatUsesPointerVerb(info *types.Info, call *ast.CallExpr) bool {
	for _, a := range call.Args {
		if tv, ok := info.Types[a]; ok && tv.Value != nil && isStringType(tv.Type) {
			if strings.Contains(tv.Value.ExactString(), "%p") {
				return true
			}
		}
	}
	return false
}

// rootObj strips selectors, indexes, stars, and parens down to the
// root identifier's object.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if x.Name == "_" {
				return nil
			}
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func hasSinkParam(s []analysis.SinkParam, i int) bool {
	for _, sp := range s {
		if sp.Index == i {
			return true
		}
	}
	return false
}

// commutativeAssign reports whether tok is a compound-assignment
// operator whose numeric reduction is order-independent: the same
// final value results no matter which order tainted increments land.
func commutativeAssign(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
		return true
	}
	return false
}
