package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"mgs/internal/lint/analysis"
)

// ChargeCost flags protocol handlers and send paths that can complete
// without charging simulated cycles. MGS's software protocol engines
// are cycle-accounted: every handler entry, lock operation, twin copy,
// diff scan, and message launch costs virtual time drawn from the Costs
// tables. A handler that updates protocol state but never touches a
// cost — directly or through any same-package callee — executes "for
// free", which silently deflates the very overheads the reproduction
// exists to measure.
//
// Scope: internal/core and internal/msg. A function is a candidate if
// it is exported with a *sim.Proc or sim.Time parameter (the public
// timed API), or unexported with one of the handler/send-path name
// prefixes (on, send, serve, dispatch, reply, finish) and such a
// parameter. Functions that *return* sim.Time are exempt: they are
// cost producers — the duration or deadline they compute is the
// charge, landed by the caller (Network.Latency, Topology.Arrive,
// Occupancy.Cross) — so auditing them for charges would be reading
// the rule backwards. A candidate must transitively reach at least
// one charge:
// a read of a Costs field, Proc.Advance/Sleep/AddDebt/HandlerStart,
// Network.Send/Extend/Latency/XferCycles, Engine.After, or Engine.At
// with a time offset (At with a bare time value merely reschedules).
// Handlers that are legitimately free (their cost is charged upstream,
// e.g. by Network.Send's HandlerEntry) get //mgslint:allow chargecost.
//
// For internal/obs the rule inverts: the observability spine's
// contract is that emission costs zero simulated cycles — a trace,
// metric, or profile must never perturb the run it observes. Any
// function in obs that charges (directly or through a function
// literal) is a diagnostic.
var ChargeCost = &analysis.Analyzer{
	Name: "chargecost",
	Doc:  "flag protocol handlers and send paths that never charge simulated cycles (and obs emission paths that do)",
	Run:  runChargeCost,
}

var handlerPrefixes = []string{"on", "send", "serve", "dispatch", "reply", "finish"}

func runChargeCost(pass *analysis.Pass) error {
	if !scopeChargeCost(pass.Pkg.Path()) {
		return nil
	}
	if pkgIs(pass.Pkg.Path(), "obs") {
		return runChargeCostInverted(pass)
	}
	g := buildFuncGraph(pass)

	charges := map[*types.Func]bool{}
	for fn, decl := range g.decls {
		charges[fn] = chargesDirectly(pass, decl.Body)
	}

	// Transitive closure over the same-package call graph.
	memo := map[*types.Func]int{} // 0 unknown, 1 visiting, 2 done
	var chargesTransitively func(fn *types.Func) bool
	chargesTransitively = func(fn *types.Func) bool {
		if charges[fn] {
			return true
		}
		if memo[fn] != 0 {
			return false // cycle or already settled without a charge
		}
		memo[fn] = 1
		for _, callee := range g.calls[fn] {
			if chargesTransitively(callee) {
				charges[fn] = true
				return true
			}
		}
		return false
	}

	for fn, decl := range g.decls {
		memo = map[*types.Func]int{}
		if !isChargeCandidate(fn, decl) {
			continue
		}
		if !chargesTransitively(fn) {
			pass.Reportf(decl.Name.Pos(),
				"%s is a protocol handler/send path but no path through it charges simulated cycles (no Costs read, Advance/AddDebt/HandlerStart, Send/Extend, or offset At/After); the work it models executes for free",
				fn.Name())
		}
	}
	return nil
}

// runChargeCostInverted enforces the observability spine's zero-cost
// contract: no function in internal/obs may charge simulated cycles.
// The transitive closure is unnecessary here — a charge anywhere in the
// package is a violation at the function that contains it.
func runChargeCostInverted(pass *analysis.Pass) error {
	g := buildFuncGraph(pass)
	for fn, decl := range g.decls {
		if chargesDirectly(pass, decl.Body) {
			pass.Reportf(decl.Name.Pos(),
				"%s is an obs emission path but charges simulated cycles (Advance/AddDebt/HandlerStart, Send/Extend, or offset At/After); observability must cost zero virtual time",
				fn.Name())
		}
	}
	return nil
}

// isChargeCandidate reports whether fn is on the timed protocol surface
// this analyzer audits.
func isChargeCandidate(fn *types.Func, decl *ast.FuncDecl) bool {
	sig := fn.Type().(*types.Signature)
	timed := false
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if typeIs(t, "sim", "Proc") || typeIs(t, "sim", "Time") {
			timed = true
			break
		}
	}
	if !timed {
		return false
	}
	// Cost producers return the time they model; their call sites carry
	// the charge.
	for i := 0; i < sig.Results().Len(); i++ {
		if typeIs(sig.Results().At(i).Type(), "sim", "Time") {
			return false
		}
	}
	if fn.Exported() {
		return true
	}
	for _, p := range handlerPrefixes {
		if strings.HasPrefix(fn.Name(), p) {
			return true
		}
	}
	return false
}

// chargesDirectly reports whether the body (including nested function
// literals) contains a direct cycle charge.
func chargesDirectly(pass *analysis.Pass, body *ast.BlockStmt) bool {
	info := pass.TypesInfo
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			// Reading a field of a Costs table (core.Costs or
			// msg.Costs): the value read is a cycle count that flows
			// into an Advance/Extend/Send somewhere.
			if t, ok := info.Types[n.X]; ok {
				if typeIs(t.Type, "core", "Costs") || typeIs(t.Type, "msg", "Costs") {
					found = true
				}
			}
		case *ast.CallExpr:
			callee := calleeOf(info, n)
			switch {
			case isMethodOn(callee, "sim", "Proc", "Advance", "Sleep", "AddDebt", "HandlerStart"):
				found = true
			case isMethodOn(callee, "msg", "Network", "Send", "Extend", "Latency", "XferCycles"):
				found = true
			case isMethodOn(callee, "sim", "Engine", "After"):
				found = true
			case isMethodOn(callee, "sim", "Engine", "At"):
				// Only an At that *adds* time is a charge; At(at, fn)
				// with a bare time just sequences at the current cost.
				if len(n.Args) > 0 {
					if _, isOffset := ast.Unparen(n.Args[0]).(*ast.BinaryExpr); isOffset {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}
