package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"mgs/internal/lint/analysis"
)

// NoGoroutine forbids spawning goroutines and using channels in
// deterministic packages (plus internal/harness). The engine guarantees
// at most one runnable goroutine at a time via a channel handshake that
// lives in exactly two places — sim.Proc's body spawn and the harness
// sweep worker pool — both annotated with //mgslint:allow. Any other
// goroutine or channel operation hands event ordering to the Go
// scheduler and breaks bit-for-bit reproducibility.
var NoGoroutine = &analysis.Analyzer{
	Name: "nogoroutine",
	Doc: "forbid go statements and channel operations in deterministic packages " +
		"outside the two annotated engine-handshake sites",
	Run: runNoGoroutine,
}

func runNoGoroutine(pass *analysis.Pass) error {
	if !scopeNoGoroutine(pass.Pkg.Path()) {
		return nil
	}
	info := pass.TypesInfo
	for _, f := range sourceFiles(pass) {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement hands scheduling to the Go runtime in deterministic package %s; only the engine handshake and the sweep worker pool may spawn", pass.Pkg.Path())
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send outside the engine handshake: channel ordering is scheduler-dependent")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "channel receive outside the engine handshake: channel ordering is scheduler-dependent")
				}
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select statement: case choice is scheduler- and timing-dependent")
			case *ast.RangeStmt:
				if t, ok := info.Types[n.X]; ok {
					if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
						pass.Reportf(n.Pos(), "range over channel: receive ordering is scheduler-dependent")
					}
				}
			case *ast.CallExpr:
				id, ok := ast.Unparen(n.Fun).(*ast.Ident)
				if !ok {
					return true
				}
				if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				switch id.Name {
				case "make":
					if t, ok := info.Types[n]; ok {
						if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
							pass.Reportf(n.Pos(), "make(chan ...) outside the engine handshake: channels introduce scheduler-visible communication")
						}
					}
				case "close":
					if len(n.Args) == 1 {
						if t, ok := info.Types[n.Args[0]]; ok {
							if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
								pass.Reportf(n.Pos(), "close of channel outside the engine handshake")
							}
						}
					}
				}
			}
			return true
		})
	}
	return nil
}
