package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"mgs/internal/lint/analysis"
)

// ComputeFacts summarizes one type-checked package for cross-package
// analysis: the allocation verdict, nondeterminism taint, sink
// parameters, and caller-must-guard writes of every declared function,
// plus the //mgs:shared annotation summaries of its types. Drivers call
// it in dependency order — imported resolves the facts of packages
// already analyzed — and thread the result to dependents (in memory
// standalone, through .vetx files under go vet).
//
// allow is the //mgslint:allow hook: a sanctioned slow-path allocation
// (//mgslint:allow noalloc at the call site) is excluded from the
// exported verdict so it does not poison transitive callers, and the
// consultation marks the allow used for dead-allow detection. Every
// declared function gets an entry, so "no fact" (an invisible body)
// stays distinguishable from "proven clean".
func ComputeFacts(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info,
	imported func(path string) *analysis.PackageFacts, allow func(analyzer string, pos token.Pos) bool) *analysis.PackageFacts {
	pass := &analysis.Pass{
		Fset:          fset,
		Files:         files,
		Pkg:           pkg,
		TypesInfo:     info,
		ImportedFacts: imported,
		Allow:         allow,
	}
	anns := annsFor(pass)
	g := graphFor(pass)
	allocs := allocInfoFor(pass)
	taints := taintFor(pass)
	shards := shardNodesFor(pass)

	pf := &analysis.PackageFacts{
		Path:  canonicalPath(pkg.Path()),
		Funcs: map[string]*analysis.FuncFact{},
	}
	for fn := range g.nodes {
		ff := &analysis.FuncFact{}
		if ai := allocs[fn]; ai != nil && ai.verdict != nil {
			ff.Allocates = true
			ff.AllocWhy = fmt.Sprintf("%s: %s", posString(fset, ai.verdict.pos), ai.verdict.why)
		}
		if tr := taints[fn]; tr != nil {
			ff.TaintBits = tr.retBits
			ff.TaintWhy = tr.retWhy
			ff.PropParams = tr.propParams
			ff.SinkParams = tr.sinkParams
		}
		pf.Funcs[funcID(fn)] = ff
	}
	for _, sn := range shards {
		if sn.fn == nil {
			continue // scheduled callbacks are not callable cross-package
		}
		ff := pf.Funcs[funcID(sn.fn)]
		if ff == nil {
			continue
		}
		var keys []string
		for k := range sn.residual {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			e := sn.residual[k]
			ff.Unguarded = append(ff.Unguarded, analysis.UnguardedWrite{
				Type: e.typeKey, Field: e.field, Guard: e.guard, Desc: e.desc,
			})
		}
	}
	if len(anns.shared) > 0 {
		pf.SharedTypes = map[string]*analysis.SharedTypeFact{}
		for T, f := range anns.shared {
			pf.SharedTypes[T.Obj().Name()] = f
		}
	}
	return pf
}
