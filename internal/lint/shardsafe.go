package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"mgs/internal/lint/analysis"
)

// ShardSafe enforces the PR 6 parallel-engine sharing discipline.
// Once per-SSMP shards dispatch events concurrently, anything shared
// between shards must be one of: atomic (//mgs:atomic, touched only
// through sync/atomic), mutex-guarded (//mgs:guardedby mu, written only
// under mu.Lock() somewhere on the call path), or shard-pinned
// (//mgs:shardpinned, with an audited justification that only one
// shard's AtOn-pinned handlers ever touch it). The obs registry and the
// msync lock/barrier maps — the two spines PR 6 fixed by hand — carry
// the annotations; this analyzer re-proves the fixes on every build.
//
// Checks, from shard-dispatch roots (exported functions and methods of
// deterministic packages, callback literals scheduled via
// Engine.At/AtOn/AtSend/AtChoiceSend/After, Network.Send, Proc.Wake,
// and proc bodies handed to sim.NewProc):
//
//   - a write to a //mgs:guardedby field must have the guard held — a
//     mu.Lock() on the same struct type in the writing function or in
//     any caller on the path (the lock-instance approximation is by
//     type+field, documented in DESIGN.md §6). Functions that leave the
//     guard to their caller export the write as an Unguarded fact, so
//     cross-package callers are checked too;
//   - a plain (non-atomic) write to a //mgs:atomic field is flagged
//     wherever it appears;
//   - a write to any other field of a //mgs:shared struct outside
//     construction is flagged: annotate the field or guard the type;
//   - a write to a package-level var of a deterministic package outside
//     func init is flagged unless the var is internally synchronized
//     (sync.Pool / sync.Map / sync.Mutex / sync.Once / atomic types).
//
// Scheduled-callback literals do not inherit locks held where they were
// created: they run later, on their own shard, with nothing held.
var ShardSafe = &analysis.Analyzer{
	Name: "shardsafe",
	Doc:  "writes to shared state reachable from shard-dispatch roots must be atomic, mutex-guarded, or shard-pinned",
	Run:  runShardSafe,
}

// resEntry is one guarded-field write not discharged inside the
// function performing it: the caller must hold the guard.
type resEntry struct {
	pos     token.Pos
	typeKey string // "pkg/path.Type"
	field   string
	guard   string
	desc    string // "file:line: write to Type.field"
}

// shardNode is a unit of shard-safety analysis: a declared function or
// a scheduled-callback literal.
type shardNode struct {
	desc     string
	fn       *types.Func // nil for callback literals
	root     bool
	held     map[string]bool // "pkg/path.Type.guardField"
	own      []resEntry
	calls    []callSite
	residual map[string]resEntry // key: pos:type:field
}

func runShardSafe(pass *analysis.Pass) error {
	anns := annsFor(pass)
	for _, b := range anns.bad {
		if b.owner == "shardsafe" {
			pass.Reportf(b.pos, "%s", b.msg)
		}
	}
	if !isDeterministic(pass.Pkg.Path()) {
		return nil
	}

	// Context-free checks over every body, literals included.
	checkContextFree(pass, anns)

	nodes := shardNodesFor(pass)

	// Diagnostics: residual entries of roots, deduplicated.
	reported := map[string]bool{}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].desc < nodes[j].desc })
	for _, sn := range nodes {
		if !sn.root {
			continue
		}
		var keys []string
		for k := range sn.residual {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if reported[k] {
				continue
			}
			reported[k] = true
			e := sn.residual[k]
			pass.Reportf(e.pos,
				"write to %s.%s (//mgs:guardedby %s) without %s.Lock() held on the path from %s: shard-dispatch may race; lock the guard or pin the write (%s)",
				shortTypeKey(e.typeKey), e.field, e.guard, e.guard, sn.desc, e.desc)
		}
	}
	return nil
}

// buildShardNodes assembles the shard-safety nodes for one package —
// declared functions plus scheduled-callback literals — and resolves
// the caller-must-guard residual of each to a fixpoint. Shared with
// ComputeFacts, which exports the residuals of exported functions.
func buildShardNodes(pass *analysis.Pass, anns *mgsAnnotations) []*shardNode {
	info := pass.TypesInfo

	// Scheduled-callback literals: separate roots, holding nothing.
	skip := map[*ast.FuncLit]bool{}
	var lits []*ast.FuncLit
	for _, f := range sourceFiles(pass) {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(info, call)
			schedules := isMethodOn(callee, "sim", "Engine", "At", "AtOn", "AtSend", "AtChoiceSend", "After") ||
				isMethodOn(callee, "msg", "Network", "Send") ||
				isMethodOn(callee, "sim", "Proc", "Wake") ||
				(callee != nil && callee.Name() == "NewProc" && pkgIs(funcPkgPath(callee), "sim"))
			if !schedules {
				return true
			}
			for _, a := range call.Args {
				if lit, ok := a.(*ast.FuncLit); ok && !skip[lit] {
					skip[lit] = true
					lits = append(lits, lit)
				}
			}
			return true
		})
	}

	g := buildCallGraph(pass, skip)
	uni := typeUniverse(pass.Pkg)

	var nodes []*shardNode
	byFn := map[*types.Func]*shardNode{}
	called := map[*types.Func]bool{}
	for _, n := range g.nodes {
		for _, s := range n.sites {
			for _, t := range s.targets {
				if gn := g.node(t); gn != nil {
					called[gn.fn] = true
				}
			}
		}
	}
	for fn, cn := range g.nodes {
		sn := &shardNode{
			desc: describeFunc(fn),
			fn:   fn,
			root: fn.Exported() || !called[fn],
		}
		sn.held, sn.own = analyzeShardBody(pass, anns, cn.decl.Body, skip)
		sn.calls = cn.sites
		byFn[fn] = sn
		nodes = append(nodes, sn)
	}
	for _, lit := range lits {
		sn := &shardNode{
			desc: "scheduled callback at " + posString(pass.Fset, lit.Pos()),
			root: true,
		}
		sn.held, sn.own = analyzeShardBody(pass, anns, lit.Body, skip)
		tmp := &cgNode{}
		collectSites(info, lit.Body, skip, uni, tmp)
		sn.calls = tmp.sites
		nodes = append(nodes, sn)
	}
	for _, sn := range nodes {
		sn.residual = map[string]resEntry{}
		for _, e := range sn.own {
			if !sn.held[e.typeKey+"."+e.guard] {
				sn.residual[resEntryKey(e)] = e
			}
		}
	}

	// Propagate residuals up the call graph to a fixpoint: an entry a
	// callee leaves unguarded survives into each caller that does not
	// hold the guard either.
	for changed := true; changed; {
		changed = false
		for _, sn := range nodes {
			for _, site := range sn.calls {
				for _, t := range site.targets {
					var entries []resEntry
					if gn := g.node(t); gn != nil {
						for _, e := range byFn[gn.fn].residual {
							entries = append(entries, e)
						}
					} else if path := funcPkgPath(t); internalPkg(path) != "" || path == "mgs" {
						if fact := pass.FactsFor(path).Fact(funcID(t)); fact != nil {
							for _, u := range fact.Unguarded {
								entries = append(entries, resEntry{
									pos: site.pos, typeKey: u.Type, field: u.Field, guard: u.Guard,
									desc: u.Desc + " (via " + describeFunc(t) + ")",
								})
							}
						}
					}
					for _, e := range entries {
						if sn.held[e.typeKey+"."+e.guard] {
							continue
						}
						k := resEntryKey(e)
						if _, ok := sn.residual[k]; !ok {
							sn.residual[k] = e
							changed = true
						}
					}
				}
			}
		}
	}
	return nodes
}

func resEntryKey(e resEntry) string {
	return fmt.Sprintf("%d:%s.%s", e.pos, e.typeKey, e.field)
}

func shortTypeKey(k string) string {
	for i := len(k) - 1; i >= 0; i-- {
		if k[i] == '/' {
			return k[i+1:]
		}
	}
	return k
}

func posString(fset *token.FileSet, p token.Pos) string {
	pos := fset.Position(p)
	return fmt.Sprintf("%s:%d", shortFile(pos.Filename), pos.Line)
}

// analyzeShardBody collects the locks a body acquires and its own
// guarded-field writes (construction-exempt), not descending into
// scheduled-callback literals.
func analyzeShardBody(pass *analysis.Pass, anns *mgsAnnotations, body ast.Node, skip map[*ast.FuncLit]bool) (held map[string]bool, own []resEntry) {
	info := pass.TypesInfo
	held = map[string]bool{}
	inspectSkipping(body, skip, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok {
			if tk, guard, ok := lockAcquisition(info, call); ok {
				held[tk+"."+guard] = true
			}
		}
	})
	record := func(lhs ast.Expr) {
		sel, T, field := fieldWrite(info, lhs)
		if sel == nil {
			return
		}
		ff, _ := fieldAnnFor(pass, anns, T, field)
		if ff == nil || ff.Kind != "guardedby" {
			return
		}
		if locallyConstructed(info, body, sel.X) {
			return
		}
		tk := typeKeyOf(T)
		pos := pass.Fset.Position(lhs.Pos())
		own = append(own, resEntry{
			pos: lhs.Pos(), typeKey: tk, field: field, guard: ff.Arg,
			desc: fmt.Sprintf("%s:%d: write to %s.%s", shortFile(pos.Filename), pos.Line, T.Obj().Name(), field),
		})
	}
	inspectSkipping(body, skip, func(n ast.Node) {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(s.X)
		case *ast.CallExpr:
			// delete(m.locks, k) mutates the guarded map too.
			if isBuiltin(info, s, "delete") && len(s.Args) > 0 {
				record(s.Args[0])
			}
		}
	})
	return held, own
}

// checkContextFree reports the checks that need no path reasoning:
// plain writes to atomic fields, writes to unannotated fields of
// //mgs:shared structs, and package-level var writes.
func checkContextFree(pass *analysis.Pass, anns *mgsAnnotations) {
	info := pass.TypesInfo
	for _, f := range sourceFiles(pass) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			isInit := fd.Name.Name == "init" && fd.Recv == nil
			checkWrite := func(lhs ast.Expr) {
				if sel, T, field := fieldWrite(info, lhs); sel != nil {
					ff, shared := fieldAnnFor(pass, anns, T, field)
					switch {
					case ff != nil && ff.Kind == "atomic":
						pass.Reportf(lhs.Pos(),
							"plain write to //mgs:atomic field %s.%s: use sync/atomic, other shards read it concurrently",
							T.Obj().Name(), field)
					case ff == nil && shared && !locallyConstructed(info, fd.Body, sel.X):
						pass.Reportf(lhs.Pos(),
							"write to unannotated field %s.%s of //mgs:shared struct outside construction: annotate it //mgs:guardedby/atomic/shardpinned or stop sharing it",
							T.Obj().Name(), field)
					}
					return
				}
				if isInit {
					return
				}
				if v := pkgLevelVar(info, pass.Pkg, lhs); v != nil && !syncedType(v.Type()) {
					pass.Reportf(lhs.Pos(),
						"write to package-level var %s from a deterministic package: shard-dispatch may race; make it per-SSMP state, guard it, or move the write into func init",
						v.Name())
				}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range s.Lhs {
						checkWrite(lhs)
					}
				case *ast.IncDecStmt:
					checkWrite(s.X)
				}
				return true
			})
		}
	}
}

// lockAcquisition matches base.<guardField>.Lock() where guardField is
// a sync.Mutex/RWMutex field of a named struct, returning the struct's
// type key and the field name.
func lockAcquisition(info *types.Info, call *ast.CallExpr) (typeKey, guard string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "Lock" {
		return "", "", false
	}
	muSel, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	muTV, okT := info.Types[muSel]
	if !okT || !isMutexType(muTV.Type) {
		return "", "", false
	}
	baseTV, okT := info.Types[muSel.X]
	if !okT {
		return "", "", false
	}
	T := namedType(baseTV.Type)
	if T == nil {
		return "", "", false
	}
	return typeKeyOf(T), muSel.Sel.Name, true
}

// fieldWrite unwraps an assignment target (through indexes, stars,
// parens) to a struct-field selector, returning the selector, the
// owning named type, and the field name.
func fieldWrite(info *types.Info, lhs ast.Expr) (*ast.SelectorExpr, *types.Named, string) {
	e := ast.Unparen(lhs)
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
			continue
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
			continue
		}
		break
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil, nil, ""
	}
	if _, isField := info.Uses[sel.Sel].(*types.Var); !isField {
		return nil, nil, ""
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return nil, nil, ""
	}
	T := namedType(tv.Type)
	if T == nil {
		return nil, nil, ""
	}
	if _, isStruct := T.Underlying().(*types.Struct); !isStruct {
		return nil, nil, ""
	}
	return sel, T, sel.Sel.Name
}

// fieldAnnFor resolves a field annotation from the current package's
// annotations or an imported package's facts. shared reports whether
// the owning type is //mgs:shared.
func fieldAnnFor(pass *analysis.Pass, anns *mgsAnnotations, T *types.Named, field string) (ff *analysis.FieldFact, shared bool) {
	if T == nil || T.Obj().Pkg() == nil {
		return nil, false
	}
	if T.Obj().Pkg() == pass.Pkg {
		if f := anns.sharedFact(T); f != nil {
			return f.Fields[field], f.Shared
		}
		return nil, false
	}
	path := canonicalPath(T.Obj().Pkg().Path())
	if f := pass.FactsFor(path).SharedType(T.Obj().Name()); f != nil {
		return f.Fields[field], f.Shared
	}
	return nil, false
}

// typeKeyOf renders a named type as "pkg/path.Name".
func typeKeyOf(T *types.Named) string {
	if T.Obj().Pkg() == nil {
		return T.Obj().Name()
	}
	return canonicalPath(T.Obj().Pkg().Path()) + "." + T.Obj().Name()
}

// locallyConstructed reports whether base resolves to a variable
// declared inside body: writes that initialize a value before it is
// published are construction, not sharing.
func locallyConstructed(info *types.Info, body ast.Node, base ast.Expr) bool {
	obj := rootObj(info, base)
	if obj == nil {
		return false
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return v.Pos() >= body.Pos() && v.Pos() < body.End()
}

// pkgLevelVar resolves an assignment target to a package-level variable
// of pkg, or nil.
func pkgLevelVar(info *types.Info, pkg *types.Package, lhs ast.Expr) *types.Var {
	obj := rootObj(info, lhs)
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Pkg() != pkg {
		return nil
	}
	if v.Parent() != pkg.Scope() {
		return nil
	}
	return v
}

// syncedType reports whether t is internally synchronized: the sync and
// sync/atomic types guard themselves.
func syncedType(t types.Type) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	switch n.Obj().Pkg().Path() {
	case "sync", "sync/atomic":
		return true
	}
	return false
}
