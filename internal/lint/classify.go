// Package lint is mgslint: a suite of static analyzers that enforce the
// simulator's determinism and cost-accounting invariants at vet time.
//
// The contract being enforced is the one stated at the top of
// internal/sim/engine.go: runs are bit-for-bit reproducible because
// nothing on the simulated path touches the Go scheduler, wall-clock
// time, or map iteration order. The analyzers turn that comment into
// machine-checked rules; see DESIGN.md §"Static invariants" for the
// full policy, including the //mgslint:allow escape hatch.
package lint

import "strings"

// deterministicPkgs names the packages whose code executes on the
// simulated path (engine events or Proc bodies). Everything in these
// packages must be deterministic: no wall-clock time, no global
// randomness, no goroutines or channels beyond the annotated engine
// handshake, no map-iteration-order dependence.
//
// Host-side packages (harness, exp, stats, framework, cmd/*) drive
// simulations and may use host facilities freely — with the one
// exception of harness's sweep worker pool, which nogoroutine also
// watches (see scopeNoGoroutine).
var deterministicPkgs = map[string]bool{
	"sim":        true,
	"core":       true,
	"vm":         true,
	"mem":        true,
	"msg":        true,
	"msync":      true,
	"apps":       true,
	"cache":      true,
	"fault":      true,
	"obs":        true, // sinks fire from engine context; see internal/obs
	"check":      true, // spec Feed and Chooser.Choose fire from engine context
	"serve":      true, // store ops run in Proc bodies; trace generation is host-side but seeded
	"msync/algo": true, // lock/barrier algorithms run in proc and handler context
}

// canonicalPath strips go vet's test-variant suffix: the package
// "mgs/internal/sim [mgs/internal/sim.test]" is classified like
// "mgs/internal/sim".
func canonicalPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// internalPkg returns the path suffix following the last "internal"
// element ("mgs/internal/sim" → "sim", "mgs/internal/msync/algo" →
// "msync/algo"), or "" when the path has no "internal" element — so
// sub-packages classify by their full internal-relative path.
func internalPkg(path string) string {
	segs := strings.Split(canonicalPath(path), "/")
	for i := len(segs) - 2; i >= 0; i-- {
		if segs[i] == "internal" {
			return strings.Join(segs[i+1:], "/")
		}
	}
	return ""
}

// isDeterministic reports whether the package at path is on the
// simulated path and therefore subject to the determinism analyzers.
func isDeterministic(path string) bool {
	return deterministicPkgs[internalPkg(path)]
}

// scopeNoGoroutine reports whether nogoroutine checks the package:
// the deterministic set plus internal/harness, whose worker pool is one
// of the two sanctioned goroutine spawn sites.
func scopeNoGoroutine(path string) bool {
	return isDeterministic(path) || internalPkg(path) == "harness"
}

// scopeChargeCost reports whether chargecost checks the package:
// internal/core (protocol handlers) and internal/msg (send paths),
// where the rule is "timed surfaces must charge", plus internal/obs,
// where the rule inverts: emission paths must never charge.
func scopeChargeCost(path string) bool {
	p := internalPkg(path)
	return p == "core" || p == "msg" || p == "obs"
}

// pkgIs reports whether path denotes internal/<name> (used to identify
// the real sim/msg packages when resolving types cross-package; fixture
// packages under testdata mirror the same paths).
func pkgIs(path, name string) bool {
	return internalPkg(path) == name
}
