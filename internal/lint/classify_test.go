package lint

import "testing"

func TestClassify(t *testing.T) {
	cases := []struct {
		path          string
		deterministic bool
		noGoroutine   bool
		chargeCost    bool
	}{
		{"mgs/internal/sim", true, true, false},
		{"mgs/internal/core", true, true, true},
		{"mgs/internal/msg", true, true, true},
		{"mgs/internal/msync", true, true, false},
		{"mgs/internal/msync/algo", true, true, false},
		{"mgs/internal/lint/analysis", false, false, false},
		{"mgs/internal/harness", false, true, false},
		{"mgs/internal/exp", false, false, false},
		{"mgs/internal/stats", false, false, false},
		{"mgs/cmd/mgssim", false, false, false},
		// go vet analyzes test variants under a suffixed path.
		{"mgs/internal/sim [mgs/internal/sim.test]", true, true, false},
		// The fixture trees mirror real paths and must classify alike.
		{"mgs/internal/lint/testdata/enginectx/src/mgs/internal/core", true, true, true},
	}
	for _, c := range cases {
		if got := isDeterministic(c.path); got != c.deterministic {
			t.Errorf("isDeterministic(%q) = %v, want %v", c.path, got, c.deterministic)
		}
		if got := scopeNoGoroutine(c.path); got != c.noGoroutine {
			t.Errorf("scopeNoGoroutine(%q) = %v, want %v", c.path, got, c.noGoroutine)
		}
		if got := scopeChargeCost(c.path); got != c.chargeCost {
			t.Errorf("scopeChargeCost(%q) = %v, want %v", c.path, got, c.chargeCost)
		}
	}
}
