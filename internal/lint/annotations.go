package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mgs/internal/lint/analysis"
)

// The //mgs: annotation grammar (DESIGN.md §6):
//
//	//mgs:noalloc
//	    on a function or method declaration: the function, and
//	    everything it transitively calls, must not allocate. Checked by
//	    noalloc; escaped per call site with //mgslint:allow noalloc.
//
//	//mgs:shared
//	    on a struct type: instances are reachable from multiple engine
//	    shards. Every write to any field outside construction must be
//	    discharged by a field annotation or a held guard. Checked by
//	    shardsafe.
//
//	//mgs:guardedby <mutexField>
//	    on a struct field: writes require <mutexField>.Lock() held —
//	    acquired in the writing function or any caller on the path.
//
//	//mgs:atomic
//	    on a struct field: the field is only touched through
//	    sync/atomic; a plain write is a diagnostic.
//
//	//mgs:shardpinned <why>
//	    on a struct field: a single shard owns the field (AtOn-pinned
//	    handlers); the justification is mandatory and audited, no
//	    mechanical check beyond its presence.

const mgsPrefix = "//mgs:"

// annDiag is a malformed-annotation finding, tagged with the analyzer
// that owns (and reports) it so the two consumers do not double-report.
type annDiag struct {
	pos   token.Pos
	owner string // analyzer name: "noalloc" or "shardsafe"
	msg   string
}

// mgsAnnotations is every //mgs: directive in one package.
type mgsAnnotations struct {
	noalloc map[*types.Func]token.Pos
	shared  map[*types.Named]*analysis.SharedTypeFact
	bad     []annDiag
}

// sharedFact returns the annotation summary for a named type, or nil.
func (a *mgsAnnotations) sharedFact(n *types.Named) *analysis.SharedTypeFact {
	if a == nil || n == nil {
		return nil
	}
	return a.shared[n]
}

// collectAnnotations parses every //mgs: directive of the pass's
// non-test files, validating placement and arguments.
func collectAnnotations(pass *analysis.Pass) *mgsAnnotations {
	a := &mgsAnnotations{
		noalloc: map[*types.Func]token.Pos{},
		shared:  map[*types.Named]*analysis.SharedTypeFact{},
	}
	consumed := map[*ast.Comment]bool{}
	for _, f := range sourceFiles(pass) {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				a.funcDirectives(pass, d, consumed)
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil && len(d.Specs) == 1 {
						doc = d.Doc
					}
					a.typeDirectives(pass, ts, doc, consumed)
				}
			}
		}
		// Anything left is misplaced or misspelled: say so rather than
		// silently enforcing nothing.
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, mgsPrefix) && !consumed[c] {
					a.bad = append(a.bad, annDiag{
						pos:   c.Pos(),
						owner: "shardsafe",
						msg:   "misplaced //mgs: directive (must be in the doc comment of a func, type, or struct field): " + firstLine(c.Text),
					})
				}
			}
		}
	}
	return a
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// directive splits "//mgs:verb rest" into its verb and argument text.
func directive(c *ast.Comment) (verb, rest string, ok bool) {
	if !strings.HasPrefix(c.Text, mgsPrefix) {
		return "", "", false
	}
	body := strings.TrimPrefix(c.Text, mgsPrefix)
	verb, rest, _ = strings.Cut(body, " ")
	return verb, strings.TrimSpace(rest), true
}

func (a *mgsAnnotations) funcDirectives(pass *analysis.Pass, fd *ast.FuncDecl, consumed map[*ast.Comment]bool) {
	if fd.Doc == nil {
		return
	}
	for _, c := range fd.Doc.List {
		verb, rest, ok := directive(c)
		if !ok {
			continue
		}
		consumed[c] = true
		if verb != "noalloc" {
			a.bad = append(a.bad, annDiag{pos: c.Pos(), owner: "shardsafe",
				msg: "//mgs:" + verb + " is not valid on a function declaration (only //mgs:noalloc is)"})
			continue
		}
		if rest != "" {
			a.bad = append(a.bad, annDiag{pos: c.Pos(), owner: "noalloc",
				msg: "//mgs:noalloc takes no arguments (use //mgslint:allow noalloc at a call site to escape one path)"})
			continue
		}
		if fd.Body == nil {
			a.bad = append(a.bad, annDiag{pos: c.Pos(), owner: "noalloc",
				msg: "//mgs:noalloc on a bodyless declaration enforces nothing"})
			continue
		}
		if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
			a.noalloc[obj] = c.Pos()
		}
	}
}

func (a *mgsAnnotations) typeDirectives(pass *analysis.Pass, ts *ast.TypeSpec, doc *ast.CommentGroup, consumed map[*ast.Comment]bool) {
	obj, _ := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
	var named *types.Named
	if obj != nil {
		named, _ = obj.Type().(*types.Named)
	}
	st, isStruct := ts.Type.(*ast.StructType)

	fact := &analysis.SharedTypeFact{Fields: map[string]*analysis.FieldFact{}}
	if doc != nil {
		for _, c := range doc.List {
			verb, _, ok := directive(c)
			if !ok {
				continue
			}
			consumed[c] = true
			if verb != "shared" {
				a.bad = append(a.bad, annDiag{pos: c.Pos(), owner: "shardsafe",
					msg: "//mgs:" + verb + " is not valid on a type declaration (only //mgs:shared is)"})
				continue
			}
			if !isStruct {
				a.bad = append(a.bad, annDiag{pos: c.Pos(), owner: "shardsafe",
					msg: "//mgs:shared only applies to struct types"})
				continue
			}
			fact.Shared = true
		}
	}
	if isStruct {
		for _, field := range st.Fields.List {
			for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
				if cg == nil {
					continue
				}
				for _, c := range cg.List {
					if verb, rest, ok := directive(c); ok {
						consumed[c] = true
						a.fieldDirective(pass, st, field, c.Pos(), verb, rest, fact)
					}
				}
			}
		}
	}
	if named != nil && (fact.Shared || len(fact.Fields) > 0) {
		a.shared[named] = fact
	}
}

func (a *mgsAnnotations) fieldDirective(pass *analysis.Pass, st *ast.StructType, field *ast.Field, pos token.Pos, verb, rest string, fact *analysis.SharedTypeFact) {
	var ff *analysis.FieldFact
	switch verb {
	case "guardedby":
		if rest == "" {
			a.bad = append(a.bad, annDiag{pos: pos, owner: "shardsafe",
				msg: "//mgs:guardedby needs the name of the guarding mutex field"})
			return
		}
		if !structHasMutexField(pass, st, rest) {
			a.bad = append(a.bad, annDiag{pos: pos, owner: "shardsafe",
				msg: "//mgs:guardedby " + rest + ": no sync.Mutex/sync.RWMutex field of that name in this struct"})
			return
		}
		ff = &analysis.FieldFact{Kind: "guardedby", Arg: rest}
	case "atomic":
		if rest != "" {
			a.bad = append(a.bad, annDiag{pos: pos, owner: "shardsafe",
				msg: "//mgs:atomic takes no arguments"})
			return
		}
		ff = &analysis.FieldFact{Kind: "atomic"}
	case "shardpinned":
		if rest == "" {
			a.bad = append(a.bad, annDiag{pos: pos, owner: "shardsafe",
				msg: "//mgs:shardpinned needs a justification naming the owning shard/context"})
			return
		}
		ff = &analysis.FieldFact{Kind: "shardpinned", Arg: rest}
	default:
		a.bad = append(a.bad, annDiag{pos: pos, owner: "shardsafe",
			msg: "//mgs:" + verb + " is not valid on a struct field (guardedby/atomic/shardpinned are)"})
		return
	}
	if len(field.Names) == 0 {
		a.bad = append(a.bad, annDiag{pos: pos, owner: "shardsafe",
			msg: "//mgs:" + verb + " on an embedded field is not supported; name the field"})
		return
	}
	for _, name := range field.Names {
		fact.Fields[name.Name] = ff
	}
}

// structHasMutexField reports whether st declares a field named name of
// type sync.Mutex or sync.RWMutex.
func structHasMutexField(pass *analysis.Pass, st *ast.StructType, name string) bool {
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name != name {
				continue
			}
			if tv, ok := pass.TypesInfo.Types[f.Type]; ok && isMutexType(tv.Type) {
				return true
			}
		}
	}
	return false
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isMutexType(t types.Type) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return false
	}
	return n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex"
}
