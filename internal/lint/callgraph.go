package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"mgs/internal/lint/analysis"
)

// The interprocedural layer: a class-hierarchy-analysis (CHA) call
// graph over go/types. Static calls resolve to their *types.Func;
// interface-method calls expand to every scope-visible named type whose
// method set satisfies the interface (the CHA over-approximation —
// sound for "no target may allocate" style checks, pinned by the
// callgraph fixtures); method-value expressions add edges too, since
// the bound method may run later. Function literals fold into their
// enclosing declaration except literals an analyzer treats as separate
// roots (scheduled callbacks).

// funcID returns the canonical fact key for f: "Name" for package
// functions, "(Recv).Name" for methods with any pointer receiver
// unwrapped, so both drivers and the JSON fact files agree.
func funcID(f *types.Func) string {
	if o := f.Origin(); o != nil {
		f = o
	}
	sig, ok := f.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		if n := namedType(sig.Recv().Type()); n != nil {
			return "(" + n.Obj().Name() + ")." + f.Name()
		}
	}
	return f.Name()
}

// funcPkgPath returns the canonical import path defining f, or "".
func funcPkgPath(f *types.Func) string {
	if f.Pkg() == nil {
		return ""
	}
	return canonicalPath(f.Pkg().Path())
}

// callSite is one call (or method-value) inside a function body.
type callSite struct {
	pos     token.Pos
	call    *ast.CallExpr // nil for method values
	targets []*types.Func // resolved callees (1 static, N for CHA)
	dynamic string        // non-empty when the call could not be resolved
}

// cgNode is one declared function and everything callable from it.
type cgNode struct {
	fn    *types.Func
	decl  *ast.FuncDecl
	sites []callSite
}

// callGraph spans one package's declarations, with targets possibly in
// other packages.
type callGraph struct {
	nodes  map[*types.Func]*cgNode
	byID   map[string]*types.Func        // same-package canonical ID → fn
	byCall map[*ast.CallExpr]*callSite   // call expression → its resolved site
}

// node returns the graph node for fn, or nil (foreign or undeclared).
func (g *callGraph) node(fn *types.Func) *cgNode {
	if fn == nil {
		return nil
	}
	if o := fn.Origin(); o != nil {
		fn = o
	}
	return g.nodes[fn]
}

// buildCallGraph constructs the package's call graph. Literals in skip
// are not folded into their enclosing declaration. The type universe
// for interface dispatch spans the package's own scope plus the scopes
// of its module-internal imports.
func buildCallGraph(pass *analysis.Pass, skip map[*ast.FuncLit]bool) *callGraph {
	g := &callGraph{
		nodes:  map[*types.Func]*cgNode{},
		byID:   map[string]*types.Func{},
		byCall: map[*ast.CallExpr]*callSite{},
	}
	uni := typeUniverse(pass.Pkg)
	for _, f := range sourceFiles(pass) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &cgNode{fn: obj, decl: fd}
			collectSites(pass.TypesInfo, fd.Body, skip, uni, n)
			g.nodes[obj] = n
			g.byID[funcID(obj)] = obj
			for i := range n.sites {
				if n.sites[i].call != nil {
					g.byCall[n.sites[i].call] = &n.sites[i]
				}
			}
		}
	}
	return g
}

// typeUniverse gathers every named type with methods visible from pkg:
// the package's own scope (exported and not) and the exported scopes of
// its module-internal imports. Types outside the module cannot carry
// //mgs annotations and their methods resolve through the stdlib
// whitelist instead, so they are deliberately excluded.
func typeUniverse(pkg *types.Package) []*types.Named {
	var out []*types.Named
	add := func(p *types.Package) {
		scope := p.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if n, ok := tn.Type().(*types.Named); ok && n.NumMethods() > 0 {
				out = append(out, n)
			}
		}
	}
	add(pkg)
	for _, imp := range pkg.Imports() {
		if internalPkg(imp.Path()) != "" || imp.Path() == "mgs" {
			add(imp)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Obj().Pkg().Path()+"."+out[i].Obj().Name() <
			out[j].Obj().Pkg().Path()+"."+out[j].Obj().Name()
	})
	return out
}

// collectSites walks body recording every call site and method value,
// skipping literals in skip.
func collectSites(info *types.Info, body ast.Node, skip map[*ast.FuncLit]bool, uni []*types.Named, n *cgNode) {
	calledFuns := map[ast.Expr]bool{}
	inspectSkipping(body, skip, func(node ast.Node) {
		switch e := node.(type) {
		case *ast.CallExpr:
			calledFuns[ast.Unparen(e.Fun)] = true
			if site, ok := resolveCall(info, e, uni); ok {
				n.sites = append(n.sites, site)
			}
		case *ast.SelectorExpr:
			// A method value (x.M not immediately called) binds the
			// receiver: the method may run later, so it is an edge (and,
			// for noalloc, the binding itself allocates).
			if calledFuns[e] {
				return
			}
			sel, ok := info.Selections[e]
			if !ok || sel.Kind() != types.MethodVal {
				return
			}
			if f, ok := sel.Obj().(*types.Func); ok {
				n.sites = append(n.sites, callSite{pos: e.Pos(), targets: methodTargets(f, sel.Recv(), uni)})
			}
		}
	})
}

// resolveCall classifies one call expression. Conversions and builtins
// are not call sites (the local analyses handle their allocation and
// taint behavior directly).
func resolveCall(info *types.Info, call *ast.CallExpr, uni []*types.Named) (callSite, bool) {
	fun := ast.Unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return callSite{}, false // conversion
	}
	if id, ok := fun.(*ast.Ident); ok {
		switch obj := info.Uses[id].(type) {
		case *types.Builtin, nil:
			return callSite{}, false
		case *types.Func:
			return callSite{pos: call.Pos(), call: call, targets: []*types.Func{obj}}, true
		default:
			// Call of a function-typed variable: dynamic.
			return callSite{pos: call.Pos(), call: call, dynamic: "call through function value " + id.Name}, true
		}
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			f, _ := s.Obj().(*types.Func)
			if f == nil {
				return callSite{}, false
			}
			return callSite{pos: call.Pos(), call: call, targets: methodTargets(f, s.Recv(), uni)}, true
		}
		// Package-qualified function, or a field of function type.
		if f, ok := info.Uses[sel.Sel].(*types.Func); ok {
			return callSite{pos: call.Pos(), call: call, targets: []*types.Func{f}}, true
		}
		return callSite{pos: call.Pos(), call: call, dynamic: "call through function value " + sel.Sel.Name}, true
	}
	if _, ok := fun.(*ast.FuncLit); ok {
		return callSite{}, false // immediately-invoked literal folds into the enclosing body
	}
	return callSite{pos: call.Pos(), call: call, dynamic: "dynamic call"}, true
}

// methodTargets resolves a method call or value: a concrete receiver
// yields its one method; an interface receiver expands by CHA to the
// corresponding concrete method of every universe type satisfying the
// interface.
func methodTargets(f *types.Func, recv types.Type, uni []*types.Named) []*types.Func {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok || iface.Empty() {
		return []*types.Func{f}
	}
	var out []*types.Func
	seen := map[*types.Func]bool{}
	for _, n := range uni {
		impl := types.NewPointer(n)
		if !types.Implements(impl, iface) && !types.Implements(n, iface) {
			continue
		}
		ms := types.NewMethodSet(impl)
		for i := 0; i < ms.Len(); i++ {
			m := ms.At(i)
			if mf, ok := m.Obj().(*types.Func); ok && mf.Name() == f.Name() && !seen[mf] {
				seen[mf] = true
				out = append(out, mf)
			}
		}
	}
	if len(out) == 0 {
		// No visible implementation: keep the interface method itself so
		// callers treat the site as unresolved-but-typed.
		return []*types.Func{f}
	}
	return out
}

// isInterfaceMethod reports whether f is declared on an interface (no
// concrete body anywhere we can see).
func isInterfaceMethod(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, ok = sig.Recv().Type().Underlying().(*types.Interface)
	return ok
}

// describeFunc renders f for diagnostics: "pkg.Name" or
// "pkg.(Type).Name" with the module prefix trimmed.
func describeFunc(f *types.Func) string {
	p := funcPkgPath(f)
	p = strings.TrimPrefix(p, "mgs/internal/")
	p = strings.TrimPrefix(p, "mgs/")
	if p == "" {
		return funcID(f)
	}
	return p + "." + funcID(f)
}
