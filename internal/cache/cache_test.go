package cache

import (
	"math/rand"
	"testing"

	"mgs/internal/mem"
	"mgs/internal/sim"
)

func testCosts() Costs {
	return Costs{Hit: 2, Local: 11, Remote: 38, TwoParty: 42, ThreeParty: 63, Software: 425, CleanPerLine: 20}
}

func newTestDomain(nprocs int) (*Domain, *mem.Frame, *Dir) {
	d := NewDomain(nprocs, 1024, DefaultParams(), testCosts())
	f := mem.NewFrame(7, 1024)
	dir := NewDir(0, 1024, 16)
	d.Register(f, dir)
	return d, f, dir
}

func TestColdMissThenHit(t *testing.T) {
	d, f, dir := newTestDomain(4)
	c, k := d.Access(0, f, dir, 0, false)
	if k != LocalMiss || c != 11 {
		t.Fatalf("cold read by home node: kind=%v cost=%d, want local/11", k, c)
	}
	c, k = d.Access(0, f, dir, 8, false)
	if k != Hit || c != 2 {
		t.Fatalf("same-line read: kind=%v cost=%d, want hit/2", k, c)
	}
}

func TestRemoteCleanMiss(t *testing.T) {
	d, f, dir := newTestDomain(4)
	_, k := d.Access(1, f, dir, 0, false)
	if k != RemoteCleanMiss {
		t.Fatalf("remote clean read: kind=%v, want remote", k)
	}
}

func TestDirtyMissClassification(t *testing.T) {
	d, f, dir := newTestDomain(4)
	// Proc 2 writes (dirty, owner=2, home=0).
	d.Access(2, f, dir, 0, true)
	// Proc 0 (home) reads: two-party.
	_, k := d.Access(0, f, dir, 0, false)
	if k != TwoParty {
		t.Fatalf("home reads dirty remote: kind=%v, want 2party", k)
	}
	// Proc 3 writes, then proc 1 (not home, not owner) reads: 3-party.
	d.Access(3, f, dir, 16, true)
	_, k = d.Access(1, f, dir, 16, false)
	if k != ThreeParty {
		t.Fatalf("third party reads dirty: kind=%v, want 3party", k)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	d, f, dir := newTestDomain(4)
	for p := 0; p < 4; p++ {
		d.Access(p, f, dir, 0, false)
	}
	// All four share. Proc 1 writes: others must be invalidated.
	_, k := d.Access(1, f, dir, 0, true)
	if k != Upgrade {
		t.Fatalf("write to shared line: kind=%v, want upgrade", k)
	}
	for p := 0; p < 4; p++ {
		st := d.cachedState(p, f, 0)
		if p == 1 && st != Modified {
			t.Fatalf("writer state = %v, want Modified", st)
		}
		if p != 1 && st != Inv {
			t.Fatalf("sharer %d state = %v, want Inv", p, st)
		}
	}
}

func TestReadDowngradesOwner(t *testing.T) {
	d, f, dir := newTestDomain(2)
	d.Access(0, f, dir, 0, true)
	d.Access(1, f, dir, 0, false)
	if st := d.cachedState(0, f, 0); st != Shared {
		t.Fatalf("owner after remote read = %v, want Shared", st)
	}
	if st := d.cachedState(1, f, 0); st != Shared {
		t.Fatalf("reader = %v, want Shared", st)
	}
}

func TestSoftwareDirectoryOverflow(t *testing.T) {
	d := NewDomain(8, 1024, DefaultParams(), testCosts())
	f := mem.NewFrame(1, 1024)
	dir := NewDir(0, 1024, 16)
	d.Register(f, dir)
	// 5 hardware pointers; the 6th reader goes to software.
	var k MissKind
	for p := 0; p < 6; p++ {
		_, k = d.Access(p, f, dir, 0, false)
	}
	if k != SoftwareDir {
		t.Fatalf("6th sharer kind = %v, want swdir", k)
	}
	if d.Counters.ByKind[SoftwareDir] != 1 {
		t.Fatalf("swdir count = %d, want 1", d.Counters.ByKind[SoftwareDir])
	}
}

func TestEvictionUpdatesDirectory(t *testing.T) {
	params := Params{LineSize: 16, CacheBytes: 64, HWPointers: 5} // 4-line cache
	d := NewDomain(2, 64, params, testCosts())
	f1 := mem.NewFrame(0, 64)
	f2 := mem.NewFrame(4, 64) // chosen so lines conflict (same slots)
	dir1 := NewDir(0, 64, 16)
	dir2 := NewDir(0, 64, 16)
	d.Register(f1, dir1)
	d.Register(f2, dir2)
	d.Access(0, f1, dir1, 0, true) // dirty in proc 0
	d.Access(0, f2, dir2, 0, true) // conflicts: evicts f1 line 0
	if st := d.cachedState(0, f1, 0); st != Inv {
		t.Fatalf("evicted line state = %v, want Inv", st)
	}
	if dir1.entries[0].owner != -1 {
		t.Fatalf("directory owner after eviction = %d, want -1", dir1.entries[0].owner)
	}
	// A fresh read by proc 1 must be a plain miss, not see a stale owner.
	_, k := d.Access(1, f1, dir1, 0, false)
	if k != RemoteCleanMiss {
		t.Fatalf("read after eviction: kind = %v, want remote clean", k)
	}
}

func TestCleanPage(t *testing.T) {
	d, f, dir := newTestDomain(4)
	for p := 0; p < 4; p++ {
		d.Access(p, f, dir, p*16, true)
		d.Access(p, f, dir, 512+p*16, false)
	}
	cost := d.CleanPage(f, dir)
	if want := sim.Time(64 * 20); cost != want {
		t.Fatalf("clean cost = %d, want %d", cost, want)
	}
	for p := 0; p < 4; p++ {
		for off := 0; off < 1024; off += 16 {
			if st := d.cachedState(p, f, off); st != Inv {
				t.Fatalf("proc %d off %d still cached (%v) after clean", p, off, st)
			}
		}
	}
	for li, e := range dir.entries {
		if e.sharers != 0 || e.owner != -1 {
			t.Fatalf("dir entry %d not reset after clean: %+v", li, e)
		}
	}
}

// TestDirectoryInvariants drives random traffic and checks after every
// access that directory state and cache state agree: the owner really
// holds a Modified copy, sharers really hold Shared copies, a line never
// has both an owner and sharers, and no cache holds a line the directory
// does not know about.
func TestDirectoryInvariants(t *testing.T) {
	const nprocs = 6
	params := Params{LineSize: 16, CacheBytes: 256, HWPointers: 5} // tiny: force evictions
	d := NewDomain(nprocs, 256, params, testCosts())
	nframes := 4
	frames := make([]*mem.Frame, nframes)
	dirs := make([]*Dir, nframes)
	for i := range frames {
		frames[i] = mem.NewFrame(uint64(i), 256)
		dirs[i] = NewDir(i%nprocs, 256, 16)
		d.Register(frames[i], dirs[i])
	}
	rng := rand.New(rand.NewSource(1))
	for step := 0; step < 20000; step++ {
		p := rng.Intn(nprocs)
		fi := rng.Intn(nframes)
		off := rng.Intn(256/16) * 16
		d.Access(p, frames[fi], dirs[fi], off, rng.Intn(2) == 0)

		for i := 0; i < nframes; i++ {
			for li := range dirs[i].entries {
				e := dirs[i].entries[li]
				if e.owner >= 0 && e.sharers != 0 {
					t.Fatalf("step %d: frame %d line %d has owner %d and sharers %b", step, i, li, e.owner, e.sharers)
				}
				if e.owner >= 0 {
					if st := d.cachedState(int(e.owner), frames[i], li*16); st != Modified {
						t.Fatalf("step %d: owner %d does not hold Modified copy (%v)", step, e.owner, st)
					}
				}
				for s := e.sharers; s != 0; s &= s - 1 {
					sp := trailingZeros(s)
					if st := d.cachedState(sp, frames[i], li*16); st != Shared {
						t.Fatalf("step %d: sharer %d state %v, want Shared", step, sp, st)
					}
				}
			}
		}
	}
	if d.Counters.Accesses() != 20000 {
		t.Fatalf("counter total = %d, want 20000", d.Counters.Accesses())
	}
}

// TestSingleWriterInvariant: after any write, no other cache holds the
// line in any state.
func TestSingleWriterInvariant(t *testing.T) {
	const nprocs = 5
	d, f, dir := newTestDomain(nprocs)
	rng := rand.New(rand.NewSource(2))
	for step := 0; step < 5000; step++ {
		p := rng.Intn(nprocs)
		off := rng.Intn(64) * 16
		write := rng.Intn(3) == 0
		d.Access(p, f, dir, off, write)
		if write {
			for q := 0; q < nprocs; q++ {
				if q == p {
					continue
				}
				if st := d.cachedState(q, f, off); st != Inv {
					t.Fatalf("step %d: proc %d holds %v after proc %d wrote", step, q, st, p)
				}
			}
		}
	}
}

func BenchmarkAccessHit(b *testing.B) {
	d, f, dir := newTestDomain(4)
	d.Access(0, f, dir, 0, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Access(0, f, dir, 0, false)
	}
}

func BenchmarkAccessMissMix(b *testing.B) {
	d, f, dir := newTestDomain(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Access(i%8, f, dir, (i%64)*16, i%5 == 0)
	}
}
