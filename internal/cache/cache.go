// Package cache models the hardware shared-memory layer inside one SSMP:
// per-processor caches plus a per-line directory, in the style of the
// Alewife machine's single-writer write-invalidate protocol (including a
// LimitLESS-like software-directory overflow cost).
//
// Data does not live here. Inside one SSMP every processor reads and
// writes the SSMP's single physical frame for a page, which is coherent
// by construction in the simulator; this package tracks cache-line and
// directory *state* purely to charge the correct latencies (Table 3 of
// the paper: local 11, remote 38, 2-party 42, 3-party 63, software
// directory 425 cycles) and to implement page cleaning, which the MGS
// protocol needs before any DMA page transfer (paper §4.2.4).
package cache

import (
	"math/bits"

	"mgs/internal/mem"
	"mgs/internal/sim"
)

// LineState is the state of one line in one processor's cache.
type LineState uint8

const (
	// Inv: not present.
	Inv LineState = iota
	// Shared: clean, possibly in several caches.
	Shared
	// Modified: dirty, exclusive to one cache.
	Modified
)

// MissKind classifies a memory access for cost accounting.
type MissKind uint8

const (
	// Hit: present in the local cache with sufficient rights.
	Hit MissKind = iota
	// LocalMiss: satisfied by the local node's memory.
	LocalMiss
	// RemoteCleanMiss: satisfied by a remote node's memory, line clean.
	RemoteCleanMiss
	// TwoParty: dirty line, two nodes involved.
	TwoParty
	// ThreeParty: dirty line, requester, home, and owner all distinct.
	ThreeParty
	// SoftwareDir: directory overflowed hardware pointers; handled by a
	// software trap at the home node (Alewife LimitLESS).
	SoftwareDir
	// Upgrade: write to a Shared line needing invalidation of peers.
	Upgrade

	nMissKinds
)

var missKindNames = [...]string{"hit", "local", "remote", "2party", "3party", "swdir", "upgrade"}

// String returns a short name for the miss kind.
func (k MissKind) String() string { return missKindNames[k] }

// Costs holds the latency, in cycles, of each access class, plus the
// per-line cost of the page-cleaning loop.
type Costs struct {
	Hit          sim.Time // cache hit
	Local        sim.Time // miss to local memory
	Remote       sim.Time // miss to remote clean memory
	TwoParty     sim.Time // dirty miss, 2 nodes
	ThreeParty   sim.Time // dirty miss, 3 nodes
	Software     sim.Time // miss under software directory control
	CleanPerLine sim.Time // prefetch+store+flush per line when cleaning
}

// Params sizes the hardware.
type Params struct {
	LineSize   int // bytes per cache line
	CacheBytes int // per-processor cache capacity
	HWPointers int // directory pointers before software overflow
}

// DefaultParams matches Alewife: 16-byte lines, 64KB caches, 5 hardware
// directory pointers.
func DefaultParams() Params {
	return Params{LineSize: 16, CacheBytes: 64 << 10, HWPointers: 5}
}

// Counters aggregates access classes for one coherence domain.
type Counters struct {
	ByKind [nMissKinds]int64
}

// Accesses returns the total number of accesses counted.
func (c *Counters) Accesses() int64 {
	var n int64
	for _, v := range c.ByKind {
		n += v
	}
	return n
}

// dirEntry is the directory state for one cache line of one frame.
type dirEntry struct {
	sharers uint64 // bitmask of within-SSMP processor indexes, clean copies
	owner   int8   // within-SSMP index holding Modified copy, or -1
}

// Dir is the directory for one frame mapped in one SSMP.
type Dir struct {
	// HomeNode is the within-SSMP index of the node whose memory holds
	// the frame (first-touch placement); it determines local vs remote
	// miss costs.
	HomeNode int
	entries  []dirEntry
}

// NewDir returns an empty directory for a page of pageSize bytes at
// homeNode, with lineSize-byte lines.
func NewDir(homeNode, pageSize, lineSize int) *Dir {
	n := pageSize / lineSize
	d := &Dir{HomeNode: homeNode, entries: make([]dirEntry, n)}
	for i := range d.entries {
		d.entries[i].owner = -1
	}
	return d
}

// pcache is one processor's direct-mapped cache (tags + state only).
type pcache struct {
	tags  []uint64 // line address + 1; 0 means empty
	state []LineState
}

// Domain is the hardware coherence domain of one SSMP.
type Domain struct {
	params    Params
	costs     Costs
	pageSize  int
	lineShift uint
	nlines    int // lines per cache
	linesPage int // lines per page
	caches    []pcache
	frames    map[uint64]*Dir // frame ID -> directory, for exact eviction
	Counters  Counters
}

// NewDomain builds a coherence domain for nprocs processors and pages of
// pageSize bytes.
func NewDomain(nprocs, pageSize int, params Params, costs Costs) *Domain {
	lineShift := uint(0)
	for 1<<lineShift < params.LineSize {
		lineShift++
	}
	d := &Domain{
		params:    params,
		costs:     costs,
		pageSize:  pageSize,
		lineShift: lineShift,
		nlines:    params.CacheBytes / params.LineSize,
		linesPage: pageSize / params.LineSize,
		caches:    make([]pcache, nprocs),
		frames:    make(map[uint64]*Dir),
	}
	for i := range d.caches {
		d.caches[i] = pcache{
			tags:  make([]uint64, d.nlines),
			state: make([]LineState, d.nlines),
		}
	}
	return d
}

// Register attaches a frame's directory so evictions and cleaning can
// find it. Call when the SSMP maps a page onto the frame.
func (d *Domain) Register(f *mem.Frame, dir *Dir) { d.frames[f.ID] = dir }

// Unregister detaches a frame (page invalidated and frame freed).
func (d *Domain) Unregister(f *mem.Frame) { delete(d.frames, f.ID) }

// lineAddr computes the global line address of offset off in frame f.
func (d *Domain) lineAddr(f *mem.Frame, off int) uint64 {
	return (f.ID*uint64(d.pageSize) + uint64(off)) >> d.lineShift
}

// Access simulates processor `local` (within-SSMP index) touching byte
// offset off of frame f, whose directory is dir. It returns the latency
// to charge and the access class. State in the caches and directory is
// updated to reflect the access.
func (d *Domain) Access(local int, f *mem.Frame, dir *Dir, off int, write bool) (sim.Time, MissKind) {
	la := d.lineAddr(f, off)
	li := (off >> d.lineShift) % d.linesPage
	e := &dir.entries[li]
	c := &d.caches[local]
	slot := int(la % uint64(d.nlines))
	hit := c.tags[slot] == la+1

	if hit {
		if !write || c.state[slot] == Modified {
			d.Counters.ByKind[Hit]++
			return d.costs.Hit, Hit
		}
		// Write to a Shared line: upgrade, invalidating peers.
		cost := d.upgrade(local, la, e, dir.HomeNode)
		c.state[slot] = Modified
		e.sharers = 0
		e.owner = int8(local)
		d.Counters.ByKind[Upgrade]++
		return cost, Upgrade
	}

	// Miss: classify before mutating state.
	kind := d.classify(local, e, dir.HomeNode)
	cost := d.missCost(kind)

	// Pull the dirty copy back / downgrade or invalidate as needed.
	if e.owner >= 0 && int(e.owner) != local {
		d.dropLine(int(e.owner), la, !write) // read: downgrade to Shared
		if !write {
			e.sharers |= 1 << uint(e.owner)
		}
		e.owner = -1
	}
	if write {
		// Invalidate all other sharers.
		for s := e.sharers; s != 0; s &= s - 1 {
			p := trailingZeros(s)
			if p != local {
				d.dropLine(p, la, false)
			}
		}
		e.sharers = 0
		e.owner = int8(local)
	} else {
		e.sharers |= 1 << uint(local)
	}

	// Install in the local cache, evicting any conflicting line.
	d.evict(local, slot)
	c.tags[slot] = la + 1
	if write {
		c.state[slot] = Modified
	} else {
		c.state[slot] = Shared
	}
	d.Counters.ByKind[kind]++
	return cost, kind
}

// classify picks the access class for a miss by processor local on
// directory entry e with the frame's memory at homeNode.
func (d *Domain) classify(local int, e *dirEntry, homeNode int) MissKind {
	if e.owner >= 0 {
		switch {
		case int(e.owner) == homeNode || local == homeNode:
			return TwoParty
		default:
			return ThreeParty
		}
	}
	if popcount(e.sharers) >= d.params.HWPointers {
		return SoftwareDir
	}
	if local == homeNode {
		return LocalMiss
	}
	return RemoteCleanMiss
}

func (d *Domain) missCost(k MissKind) sim.Time {
	switch k {
	case LocalMiss:
		return d.costs.Local
	case RemoteCleanMiss:
		return d.costs.Remote
	case TwoParty:
		return d.costs.TwoParty
	case ThreeParty:
		return d.costs.ThreeParty
	case SoftwareDir:
		return d.costs.Software
	}
	return d.costs.Hit
}

// upgrade computes the cost of invalidating the other sharers of a line
// on a write hit to a Shared copy, and drops their copies.
func (d *Domain) upgrade(local int, la uint64, e *dirEntry, homeNode int) sim.Time {
	others := e.sharers &^ (1 << uint(local))
	if others == 0 {
		if local == homeNode {
			return d.costs.Local
		}
		return d.costs.Remote
	}
	third := false
	for s := others; s != 0; s &= s - 1 {
		p := trailingZeros(s)
		d.dropLine(p, la, false)
		if p != homeNode && p != local {
			third = true
		}
	}
	if popcount(others) >= d.params.HWPointers {
		return d.costs.Software
	}
	if third {
		return d.costs.ThreeParty
	}
	return d.costs.TwoParty
}

// dropLine removes (or downgrades) line la from processor p's cache.
func (d *Domain) dropLine(p int, la uint64, downgrade bool) {
	c := &d.caches[p]
	slot := int(la % uint64(d.nlines))
	if c.tags[slot] != la+1 {
		return // already evicted
	}
	if downgrade {
		c.state[slot] = Shared
	} else {
		c.tags[slot] = 0
		c.state[slot] = Inv
	}
}

// evict clears whatever line occupies slot in processor p's cache,
// updating its directory so state stays exact.
func (d *Domain) evict(p, slot int) {
	c := &d.caches[p]
	old := c.tags[slot]
	if old == 0 {
		return
	}
	la := old - 1
	c.tags[slot] = 0
	st := c.state[slot]
	c.state[slot] = Inv
	frameID := la >> uint64(log2(d.linesPage))
	dir, ok := d.frames[frameID]
	if !ok {
		return // frame already unregistered
	}
	li := int(la % uint64(d.linesPage))
	e := &dir.entries[li]
	if st == Modified && int(e.owner) == p {
		e.owner = -1
	}
	e.sharers &^= 1 << uint(p)
}

// CleanPage invalidates every line of the frame from every cache in the
// domain (the paper's page-cleaning loop: prefetch, store, flush each
// line), returning the cycles the cleaning processor spends. After
// CleanPage the frame's data is globally coherent and safe to DMA.
func (d *Domain) CleanPage(f *mem.Frame, dir *Dir) sim.Time {
	for li := range dir.entries {
		e := &dir.entries[li]
		la := d.lineAddr(f, li<<d.lineShift)
		if e.owner >= 0 {
			d.dropLine(int(e.owner), la, false)
			e.owner = -1
		}
		for s := e.sharers; s != 0; s &= s - 1 {
			d.dropLine(trailingZeros(s), la, false)
		}
		e.sharers = 0
	}
	return sim.Time(d.linesPage) * d.costs.CleanPerLine
}

// LinesPerPage reports how many cache lines one page spans.
func (d *Domain) LinesPerPage() int { return d.linesPage }

// cachedState reports processor p's state for offset off of frame f
// (test hook).
func (d *Domain) cachedState(p int, f *mem.Frame, off int) LineState {
	la := d.lineAddr(f, off)
	c := &d.caches[p]
	slot := int(la % uint64(d.nlines))
	if c.tags[slot] != la+1 {
		return Inv
	}
	return c.state[slot]
}

func popcount(x uint64) int { return bits.OnesCount64(x) }

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }

func log2(x int) uint {
	n := uint(0)
	for 1<<n < x {
		n++
	}
	return n
}
