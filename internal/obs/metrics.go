package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is the metrics registry: named counters, gauges, and
// virtual-time histograms. Registration is get-or-create by name, so
// independent subsystems can share a registry without coordination.
// Snapshots are deterministic: names sort lexicographically and
// histogram bucket layouts are fixed at registration.
//
// The registry is safe for concurrent use: the parallel event
// dispatcher's shards count into it simultaneously. The mutex covers
// only the name maps; counters and histograms update with atomics, so
// the hot increment path takes no lock. Concurrent totals stay
// deterministic because the committed event set is schedule-independent
// and addition commutes (histogram buckets likewise: each observation
// lands in a fixed bucket).
//
//mgs:shared
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter     //mgs:guardedby mu
	gauges   map[string]func() int64 //mgs:guardedby mu
	hists    map[string]*Histogram   //mgs:guardedby mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]func() int64),
		hists:    make(map[string]*Histogram),
	}
}

// Counter is a monotonically growing event count.
//
//mgs:shared
type Counter struct {
	v int64 //mgs:atomic
}

// Add increments the counter.
//
//mgs:noalloc
func (c *Counter) Add(delta int64) { atomic.AddInt64(&c.v, delta) }

// Value reads the counter.
//
//mgs:noalloc
func (c *Counter) Value() int64 { return atomic.LoadInt64(&c.v) }

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	r.mu.Unlock()
	return c
}

// Add increments the named counter, creating it at first touch.
func (r *Registry) Add(name string, delta int64) { r.Counter(name).Add(delta) }

// Gauge registers a read-on-snapshot value: fn is evaluated when the
// registry is snapshotted, so subsystems expose live state (directory
// sizes, hit totals, TLB occupancy) without double bookkeeping.
// Re-registering a name replaces the reader.
func (r *Registry) Gauge(name string, fn func() int64) {
	r.mu.Lock()
	r.gauges[name] = fn
	r.mu.Unlock()
}

// TimeBuckets is the fixed virtual-time histogram layout: roughly
// logarithmic from a cache hit to a long protocol round, in cycles.
// The final implicit bucket catches everything larger.
var TimeBuckets = []int64{
	100, 300, 1_000, 3_000, 10_000, 30_000,
	100_000, 300_000, 1_000_000, 3_000_000,
}

// Histogram counts observations into fixed buckets. Bounds[i] is the
// inclusive upper edge of bucket i; one extra bucket holds overflows.
//
//mgs:shared
type Histogram struct {
	// bounds is fixed at registration and read-only afterwards: it
	// deliberately carries no annotation, so any post-construction write
	// trips the unannotated-shared-field check.
	bounds []int64
	counts []int64 //mgs:atomic
	sum    int64   //mgs:atomic
	n      int64   //mgs:atomic
}

// Observe records one value.
//
//mgs:noalloc
func (h *Histogram) Observe(v int64) {
	atomic.AddInt64(&h.n, 1)
	atomic.AddInt64(&h.sum, v)
	for i, b := range h.bounds {
		if v <= b {
			atomic.AddInt64(&h.counts[i], 1)
			return
		}
	}
	atomic.AddInt64(&h.counts[len(h.bounds)], 1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return atomic.LoadInt64(&h.n) }

// Quantile returns a bucket-interpolated estimate of the p-quantile
// (0 < p <= 1) of the observed distribution: the target rank p·n is
// located in the cumulative bucket counts and the value interpolated
// linearly inside the containing bucket, which is exact whenever
// observations are uniform within each bucket. Ranks that land in the
// unbounded overflow bucket clamp to the last finite bound (the
// estimate cannot exceed the layout's range); an empty histogram
// reports 0. Safe to call concurrently with Observe — the estimate is
// computed from one atomic pass over the buckets.
func (h *Histogram) Quantile(p float64) float64 {
	n := atomic.LoadInt64(&h.n)
	if n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	rank := p * float64(n)
	var cum int64
	lo := int64(0)
	for i, b := range h.bounds {
		c := atomic.LoadInt64(&h.counts[i])
		if c > 0 && float64(cum+c) >= rank {
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return float64(lo) + frac*float64(b-lo)
		}
		cum += c
		lo = b
	}
	return float64(lo)
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return atomic.LoadInt64(&h.sum) }

// Buckets returns the bucket upper bounds and per-bucket counts (the
// last count is the overflow bucket). The returned slices are live;
// callers must not mutate them.
func (h *Histogram) Buckets() (bounds, counts []int64) { return h.bounds, h.counts }

// Histogram returns (creating if needed) the named histogram with the
// given bucket bounds; bounds are fixed at first registration and nil
// means TimeBuckets.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = TimeBuckets
		}
		h = &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
		r.hists[name] = h
	}
	r.mu.Unlock()
	return h
}

// MetricKind tags a snapshot entry.
type MetricKind uint8

const (
	// CounterKind is a monotonically growing count.
	CounterKind MetricKind = iota
	// GaugeKind is a point-in-time reading.
	GaugeKind
	// HistogramKind is a bucketed distribution.
	HistogramKind
)

var metricKindNames = [...]string{"counter", "gauge", "histogram"}

// String names the kind.
func (k MetricKind) String() string { return metricKindNames[k] }

// Metric is one snapshot entry.
type Metric struct {
	Name  string
	Kind  MetricKind
	Value int64 // counter or gauge value; histogram observation count
	Sum   int64 // histograms only: sum of observations
	// Bounds/Counts are the histogram layout (Counts has one extra
	// overflow bucket); nil for counters and gauges.
	Bounds, Counts []int64
}

// String renders one snapshot line.
func (m Metric) String() string {
	switch m.Kind {
	case HistogramKind:
		var b strings.Builder
		fmt.Fprintf(&b, "%s n=%d sum=%d", m.Name, m.Value, m.Sum)
		for i, c := range m.Counts {
			if c == 0 {
				continue
			}
			if i < len(m.Bounds) {
				fmt.Fprintf(&b, " le%d=%d", m.Bounds[i], c)
			} else {
				fmt.Fprintf(&b, " inf=%d", c)
			}
		}
		return b.String()
	default:
		return fmt.Sprintf("%s=%d", m.Name, m.Value)
	}
}

// Snapshot returns every metric, counters first, then gauges, then
// histograms, each group sorted by name — a deterministic, stable
// ordering for goldens and CSVs.
func (r *Registry) Snapshot() []Metric {
	r.mu.Lock()
	var names []string
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for _, n := range names {
		out = append(out, Metric{Name: n, Kind: CounterKind, Value: r.counters[n].Value()})
	}
	names = names[:0]
	var gnames []string
	for n := range r.gauges {
		gnames = append(gnames, n)
	}
	sort.Strings(gnames)
	gauges := make([]func() int64, len(gnames))
	for i, n := range gnames {
		gauges[i] = r.gauges[n]
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	hists := make([]*Histogram, len(names))
	for i, n := range names {
		hists[i] = r.hists[n]
	}
	r.mu.Unlock()
	// Gauge readers run outside the lock: they may re-enter the registry
	// (e.g. a gauge aggregating counters).
	for i, n := range gnames {
		out = append(out, Metric{Name: n, Kind: GaugeKind, Value: gauges[i]()})
	}
	for i, n := range names {
		h := hists[i]
		counts := make([]int64, len(h.counts))
		for j := range h.counts {
			counts[j] = atomic.LoadInt64(&h.counts[j])
		}
		out = append(out, Metric{
			Name: n, Kind: HistogramKind, Value: h.Count(), Sum: h.Sum(),
			Bounds: h.bounds, Counts: counts,
		})
	}
	return out
}

// CounterStrings renders just the counters as sorted "name=value"
// lines — the legacy Collector.Counters shape.
func (r *Registry) CounterStrings() []string {
	r.mu.Lock()
	out := make([]string, 0, len(r.counters))
	for k, v := range r.counters {
		out = append(out, fmt.Sprintf("%s=%d", k, v.Value()))
	}
	r.mu.Unlock()
	sort.Strings(out)
	return out
}
