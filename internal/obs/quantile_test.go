package obs

import (
	"math"
	"testing"
)

// uniformBounds returns bucket edges width apart covering [width, max].
func uniformBounds(width, max int64) []int64 {
	var b []int64
	for x := width; x <= max; x += width {
		b = append(b, x)
	}
	return b
}

// TestQuantileExactOnUniform pins the interpolation against exact
// quantiles: with observations 1..N and bucket edges every 100, every
// value is uniform within its bucket, so the bucket-interpolated
// estimate equals the exact p-quantile (rank p·N) for the quantiles the
// serving report uses.
func TestQuantileExactOnUniform(t *testing.T) {
	const n = 1000
	h := &Histogram{bounds: uniformBounds(100, 1000), counts: make([]int64, 11)}
	for v := int64(1); v <= n; v++ {
		h.Observe(v)
	}
	for _, tc := range []struct {
		p    float64
		want float64
	}{
		{0.50, 500},
		{0.90, 900},
		{0.99, 990},
		{0.999, 999},
		{1.0, 1000},
	} {
		if got := h.Quantile(tc.p); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", tc.p, got, tc.want)
		}
	}
}

// TestQuantileSkewed pins a two-mode distribution: 990 fast
// observations in (0, 100] and 10 slow ones in (900, 1000]. p50 and p99
// stay inside the fast bucket; p999 lands in the slow one.
func TestQuantileSkewed(t *testing.T) {
	h := &Histogram{bounds: uniformBounds(100, 1000), counts: make([]int64, 11)}
	for i := 0; i < 990; i++ {
		h.Observe(50)
	}
	for i := 0; i < 10; i++ {
		h.Observe(950)
	}
	// Rank p50 = 500 of 990 in bucket (0,100]: 100·(500/990).
	if got, want := h.Quantile(0.50), 100*500.0/990.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("p50 = %g, want %g", got, want)
	}
	// Rank p99 = 990, exactly the fast bucket's upper edge.
	if got := h.Quantile(0.99); math.Abs(got-100) > 1e-9 {
		t.Errorf("p99 = %g, want 100", got)
	}
	// Rank p999 = 999 lands 9 observations into the slow bucket
	// (900, 1000]: 900 + 100·(9/10).
	if got, want := h.Quantile(0.999), 990.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("p999 = %g, want %g", got, want)
	}
}

// TestQuantileEdges pins the degenerate cases: empty histogram, a
// single observation, out-of-range p, and ranks in the unbounded
// overflow bucket (clamped to the last finite bound).
func TestQuantileEdges(t *testing.T) {
	h := &Histogram{bounds: []int64{10, 100}, counts: make([]int64, 3)}
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty histogram: Quantile = %g, want 0", got)
	}
	h.Observe(7)
	if got := h.Quantile(0.5); got <= 0 || got > 10 {
		t.Errorf("single observation: Quantile(0.5) = %g, want in (0, 10]", got)
	}
	if got := h.Quantile(2.0); got != h.Quantile(1.0) {
		t.Errorf("p > 1 must clamp: %g vs %g", got, h.Quantile(1.0))
	}
	// Overflow: every observation beyond the last edge clamps there.
	o := &Histogram{bounds: []int64{10, 100}, counts: make([]int64, 3)}
	for i := 0; i < 50; i++ {
		o.Observe(5000)
	}
	if got := o.Quantile(0.999); got != 100 {
		t.Errorf("overflow bucket: Quantile = %g, want clamp to 100", got)
	}
}

// TestQuantileMonotone pins that estimates never decrease in p on a
// mixed distribution spanning several buckets plus the overflow.
func TestQuantileMonotone(t *testing.T) {
	h := &Histogram{bounds: TimeBuckets, counts: make([]int64, len(TimeBuckets)+1)}
	vals := []int64{50, 90, 200, 900, 2_500, 9_000, 25_000, 99_000, 400_000, 2_000_000, 9_000_000}
	for i, v := range vals {
		for k := 0; k <= i; k++ { // heavier head, thinner tail
			h.Observe(v)
		}
	}
	prev := -1.0
	for p := 0.05; p <= 1.0; p += 0.05 {
		q := h.Quantile(p)
		if q < prev {
			t.Fatalf("Quantile not monotone: p=%g -> %g after %g", p, q, prev)
		}
		prev = q
	}
}
