package obs

import (
	"fmt"
	"io"
	"sort"

	"mgs/internal/sim"
)

// ProfKey is one attribution cell: a processor, a runtime component
// (the stats.Category ordinal — User/Lock/Barrier/MGS), and the object
// the cycles were spent on.
type ProfKey struct {
	Proc int32
	Comp uint8
	Kind ObjKind
	ID   int64
}

// profCur is one processor's current attribution context plus a
// per-component cell cache so the hot Charge path is one nil test and
// one add once a context is warm.
type profCur struct {
	kind  ObjKind
	id    int64
	cells []*sim.Time // [comp] -> cell for (proc, comp, kind, id)
}

// Profiler charges every simulated cycle to a (processor, component,
// object) key. The object context is a per-processor register the
// protocol and sync layers set around their work: the page a fault is
// resolving, the lock being acquired, the barrier being waited on.
// Cycles charged with no context land on ObjNone.
//
// The profiler's per-(processor, component) totals equal the stats
// collector's buckets exactly — both are fed by the same Charge calls —
// which is the reconciliation invariant cmd/mgs-profile asserts.
type Profiler struct {
	ncomp int
	cur   []profCur
	cells map[ProfKey]*sim.Time
}

// NewProfiler returns a profiler for nprocs processors and ncomp
// attribution components.
func NewProfiler(nprocs, ncomp int) *Profiler {
	p := &Profiler{
		ncomp: ncomp,
		cur:   make([]profCur, nprocs),
		cells: make(map[ProfKey]*sim.Time),
	}
	for i := range p.cur {
		p.cur[i].cells = make([]*sim.Time, ncomp)
	}
	return p
}

// SetContext switches processor proc's attribution object, returning
// the previous object so callers can nest and restore:
//
//	k, id := prof.SetContext(p, obs.ObjPage, int64(page))
//	defer prof.SetContext(p, k, id)
func (p *Profiler) SetContext(proc int, kind ObjKind, id int64) (ObjKind, int64) {
	c := &p.cur[proc]
	pk, pid := c.kind, c.id
	if pk == kind && pid == id {
		return pk, pid
	}
	c.kind, c.id = kind, id
	for i := range c.cells {
		c.cells[i] = nil
	}
	return pk, pid
}

// Context reports processor proc's current attribution object.
func (p *Profiler) Context(proc int) (ObjKind, int64) {
	return p.cur[proc].kind, p.cur[proc].id
}

// Charge attributes cycles to (proc, comp) under proc's current object
// context. It is the profiler's hot path: after the first charge in a
// context the cost is one slice load and one add.
func (p *Profiler) Charge(proc, comp int, cycles sim.Time) {
	c := &p.cur[proc]
	cell := c.cells[comp]
	if cell == nil {
		key := ProfKey{Proc: int32(proc), Comp: uint8(comp), Kind: c.kind, ID: c.id}
		cell = p.cells[key]
		if cell == nil {
			cell = new(sim.Time)
			p.cells[key] = cell
		}
		c.cells[comp] = cell
	}
	*cell += cycles
}

// Sample is one attributed cell.
type Sample struct {
	Key    ProfKey
	Cycles sim.Time
}

// Samples returns every nonzero cell sorted by (Proc, Comp, Kind, ID) —
// a deterministic flattening of the attribution map.
func (p *Profiler) Samples() []Sample {
	var keys []ProfKey
	for k := range p.cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Comp != b.Comp {
			return a.Comp < b.Comp
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.ID < b.ID
	})
	out := make([]Sample, 0, len(keys))
	for _, k := range keys {
		if c := *p.cells[k]; c != 0 {
			out = append(out, Sample{Key: k, Cycles: c})
		}
	}
	return out
}

// Totals returns per-(processor, component) cycle totals, the profiler
// side of the reconciliation against the stats breakdown.
func (p *Profiler) Totals() [][]sim.Time {
	out := make([][]sim.Time, len(p.cur))
	for i := range out {
		out[i] = make([]sim.Time, p.ncomp)
	}
	for _, s := range p.Samples() {
		out[s.Key.Proc][s.Key.Comp] += s.Cycles
	}
	return out
}

// HeatLine is one object's aggregate cost across all processors and
// components.
type HeatLine struct {
	Kind   ObjKind
	ID     int64
	Cycles sim.Time
	// ByComp splits the object's cycles by component ordinal.
	ByComp []sim.Time
}

// Heat aggregates cycles per object of the given kind, hottest first
// (ties break low-ID-first, so output is deterministic).
func (p *Profiler) Heat(kind ObjKind) []HeatLine {
	byID := make(map[int64]*HeatLine)
	for _, s := range p.Samples() {
		if s.Key.Kind != kind {
			continue
		}
		h := byID[s.Key.ID]
		if h == nil {
			h = &HeatLine{Kind: kind, ID: s.Key.ID, ByComp: make([]sim.Time, p.ncomp)}
			byID[s.Key.ID] = h
		}
		h.Cycles += s.Cycles
		h.ByComp[s.Key.Comp] += s.Cycles
	}
	var out []HeatLine
	for _, h := range byID {
		out = append(out, *h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// WriteCollapsed writes the profile in collapsed-stack ("folded")
// format, one line per cell:
//
//	proc3;MGS;page:42 1234
//
// which flamegraph.pl, speedscope, and `go tool pprof`-adjacent tooling
// ingest directly. compName maps component ordinals to names.
func (p *Profiler) WriteCollapsed(w io.Writer, compName func(int) string) error {
	for _, s := range p.Samples() {
		var obj string
		if s.Key.Kind == ObjNone {
			obj = "(none)"
		} else {
			obj = fmt.Sprintf("%s:%d", s.Key.Kind, s.Key.ID)
		}
		if _, err := fmt.Fprintf(w, "proc%d;%s;%s %d\n",
			s.Key.Proc, compName(int(s.Key.Comp)), obj, int64(s.Cycles)); err != nil {
			return err
		}
	}
	return nil
}
