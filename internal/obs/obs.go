// Package obs is the observability spine: one pluggable layer that
// every software engine of the simulator reports through. It has three
// legs, all strictly zero-cost in simulated cycles and structurally
// detached when disabled:
//
//   - a structured trace bus (Event) with pluggable sinks: typed
//     protocol transitions, transport fates, synchronization operations
//     and engine handshakes, timestamped in virtual time. The classic
//     "t=<cycle> ..." text log is one sink (TextSink); a Chrome
//     trace_event JSON exporter for chrome://tracing / Perfetto is
//     another (ChromeSink).
//
//   - a metrics registry (Registry): named counters, gauges, and
//     virtual-time histograms with fixed bucket layouts, so that two
//     runs of one simulation snapshot identically. internal/stats,
//     internal/msync, and the fault transport register here instead of
//     hand-rolling counter fields.
//
//   - a cycle-attribution profiler (Profiler): every simulated cycle a
//     run charges is attributed to a (processor, component, object)
//     key, where the object is the page, lock, or barrier the cycles
//     were spent on. The profiler emits per-page heat reports and
//     collapsed-stack files for flamegraph tooling, and its totals
//     reconcile exactly with the stats breakdown.
//
// Determinism contract: obs code runs on the simulated path (sinks fire
// from engine context), so everything here is deterministic — virtual
// timestamps only, no host clocks, no map-iteration-order leaks, and no
// simulated cycles are ever charged from an emission path. mgslint
// enforces all three (the package is on the deterministic allow-list,
// and chargecost inverts for this package: an emission path that
// charges cycles is a diagnostic).
//
// A nil *Observer is valid everywhere and means "observability off";
// every method short-circuits, so instrumented code needs no branches
// beyond the nil test the helpers already perform.
package obs

// Observer bundles the three legs. The zero value is unusable; call
// New. A nil *Observer is the disabled spine: Tracing reports false,
// Emit is a no-op, Registry returns nil, and the profiler never exists.
type Observer struct {
	sinks   []Sink
	reg     *Registry
	prof    *Profiler
	profile bool
}

// New returns an Observer with a fresh metrics registry, no sinks, and
// profiling off.
func New() *Observer {
	return &Observer{reg: NewRegistry()}
}

// AddSink attaches a trace sink and returns the observer (chainable).
func (o *Observer) AddSink(s Sink) *Observer {
	o.sinks = append(o.sinks, s)
	return o
}

// EnableProfiling arms the cycle-attribution profiler; the machine the
// observer is attached to sizes and creates it (InitProfiler). Returns
// the observer (chainable).
func (o *Observer) EnableProfiling() *Observer {
	o.profile = true
	return o
}

// Tracing reports whether any trace sink is attached. Emitters must
// check it before building an Event so the disabled path stays free.
func (o *Observer) Tracing() bool { return o != nil && len(o.sinks) > 0 }

// Emit publishes one event to every sink, in attach order. Emission
// charges no simulated cycles — events are timestamped with the virtual
// time the emitter passes in, never with a clock read.
func (o *Observer) Emit(e Event) {
	for _, s := range o.sinks {
		s.Emit(e)
	}
}

// Registry returns the metrics registry, or nil on a nil observer.
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// InitProfiler creates the profiler for a machine of nprocs processors
// and ncomp attribution components, if profiling was enabled. It
// returns the profiler (nil when profiling is off or o is nil). Calling
// it twice returns the first profiler — an observer watches one
// machine.
func (o *Observer) InitProfiler(nprocs, ncomp int) *Profiler {
	if o == nil || !o.profile {
		return nil
	}
	if o.prof == nil {
		o.prof = NewProfiler(nprocs, ncomp)
	}
	return o.prof
}

// Profiler returns the profiler created by InitProfiler, or nil.
func (o *Observer) Profiler() *Profiler {
	if o == nil {
		return nil
	}
	return o.prof
}

// Metrics snapshots the registry (nil observer: no metrics).
func (o *Observer) Metrics() []Metric {
	if o == nil || o.reg == nil {
		return nil
	}
	return o.reg.Snapshot()
}
