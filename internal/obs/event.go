package obs

import (
	"fmt"
	"strings"

	"mgs/internal/sim"
)

// Cat classifies an event by the engine that produced it.
type Cat uint8

const (
	// Protocol: MGS software coherence engines (Local Client, Remote
	// Client, Server) — faults, fills, invalidation rounds, releases.
	Protocol Cat = iota
	// Transport: inter-SSMP wire fates — drops, duplicates, delays,
	// timeouts, retransmissions, acks (the fault-injection transport).
	Transport
	// Sync: the synchronization library — token locks and tree
	// barriers.
	Sync
	// Engine: machine-level handshakes and diagnostics.
	Engine

	// NumCats is the number of event categories.
	NumCats
)

var catNames = [...]string{"protocol", "transport", "sync", "engine"}

// String returns the category name.
func (c Cat) String() string { return catNames[c] }

// ObjKind names the kind of object an event or profile sample is
// about. It doubles as the profiler's attribution-key kind.
type ObjKind uint8

const (
	// ObjNone: not about any particular object.
	ObjNone ObjKind = iota
	// ObjPage: a virtual page (ID is the page number).
	ObjPage
	// ObjLock: an MGS distributed lock (ID is the lock id).
	ObjLock
	// ObjBarrier: an MGS tree barrier (ID is the barrier id).
	ObjBarrier
)

var objNames = [...]string{"", "page", "lock", "barrier"}

// String returns the object-kind label used in text renderings.
func (k ObjKind) String() string { return objNames[k] }

// Event is one structured trace record. Timestamps are virtual time;
// an event never costs simulated cycles to produce.
type Event struct {
	// T is the virtual time of the event.
	T sim.Time
	// Proc is the processor the event executes on, or -1 for events
	// that belong to a software engine rather than a processor (the
	// Chrome exporter gives those their own per-engine track).
	Proc int
	// Cat is the producing engine.
	Cat Cat
	// Name is the event tag (SERVE, INVSTART, TOKENREQ, DROP, ...).
	Name string
	// Kind/ID name the object the event is about (ObjNone when none).
	Kind ObjKind
	// ID is the page number, lock id, or barrier id, per Kind.
	ID int64
	// Dur, when positive, makes the event a span of that many cycles
	// starting at T (rendered as a complete event in Chrome traces).
	Dur sim.Time
	// Args carries up to three event-specific integer arguments (a write
	// flag, a directory mask, a reply kind ...) for machine consumers —
	// the model checker's refinement spec reads protocol facts here
	// instead of parsing Detail. Text renderings ignore Args; the same
	// facts appear human-readably in Detail.
	Args [3]int64
	// Detail is preformatted human-readable context.
	Detail string
}

// String renders the event in the classic text-log shape:
//
//	t=<cycle> [<kind>=<id>] <NAME> <detail>
//
// which is what TextSink prints and what the pre-spine printf tracer
// used to produce.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%d", e.T)
	if e.Kind != ObjNone {
		fmt.Fprintf(&b, " %s=%d", e.Kind, e.ID)
	}
	b.WriteByte(' ')
	b.WriteString(e.Name)
	if e.Detail != "" {
		b.WriteByte(' ')
		b.WriteString(e.Detail)
	}
	if e.Dur > 0 {
		fmt.Fprintf(&b, " dur=%d", e.Dur)
	}
	return b.String()
}

// Sink receives trace events. Emit runs in engine context on the
// simulated path: it must be deterministic and must not charge
// simulated cycles (it has no handle through which to do so — keep it
// that way).
type Sink interface {
	Emit(e Event)
}

// FilterFunc adapts a predicate+sink pair: events pass through to the
// inner sink only when keep returns true. Used by tools for page/time
// windowing without teaching every sink to filter.
type filterSink struct {
	inner Sink
	keep  func(Event) bool
}

// Filter wraps inner so that only events satisfying keep reach it.
func Filter(inner Sink, keep func(Event) bool) Sink {
	return &filterSink{inner: inner, keep: keep}
}

// Emit forwards e when the predicate accepts it.
func (f *filterSink) Emit(e Event) {
	if f.keep(e) {
		f.inner.Emit(e)
	}
}
