package obs

import (
	"fmt"
	"io"
	"strings"
)

// ChromeSink buffers events and renders them as Chrome trace_event
// JSON (the format chrome://tracing, Perfetto, and speedscope load):
// one track (thread) per processor plus one per software engine
// (transport, sync, machine), all under a single process, with virtual
// time standing in for microseconds. Events with a positive Dur render
// as complete ("X") spans; everything else is an instant ("i").
//
// Events buffer in memory during the run; call WriteTo after the
// machine finishes. Output is deterministic: events appear in emission
// order (the engine's total order) and all values are integers, so a
// fixed seed produces a byte-identical trace across runs and sweep
// worker counts.
type ChromeSink struct {
	nprocs int
	events []Event
}

// NewChromeSink returns a Chrome trace sink for a machine of nprocs
// processors (sizing the per-processor tracks; events from higher
// processor numbers still render, on engine tracks).
func NewChromeSink(nprocs int) *ChromeSink { return &ChromeSink{nprocs: nprocs} }

// Emit buffers one event.
func (c *ChromeSink) Emit(e Event) { c.events = append(c.events, e) }

// Len reports buffered events.
func (c *ChromeSink) Len() int { return len(c.events) }

// tid maps an event to its track: processors own tids 0..nprocs-1;
// engine-level events (Proc < 0) land on a per-category engine track.
func (c *ChromeSink) tid(e Event) int {
	if e.Proc >= 0 && e.Proc < c.nprocs {
		return e.Proc
	}
	return c.nprocs + int(e.Cat)
}

// jsonEscape escapes a string for embedding in a JSON string literal.
// Event names and details are ASCII by construction; this covers the
// general case anyway.
func jsonEscape(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			if r < 0x20 {
				fmt.Fprintf(&b, `\u%04x`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	return b.String()
}

// WriteTo renders the buffered trace as a JSON object with a
// traceEvents array. Thread-name metadata events name each track.
func (c *ChromeSink) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	write := func(format string, args ...any) error {
		_, err := fmt.Fprintf(cw, format, args...)
		return err
	}
	if err := write("{\"traceEvents\":[\n"); err != nil {
		return cw.n, err
	}
	first := true
	emit := func(format string, args ...any) error {
		if !first {
			if err := write(",\n"); err != nil {
				return err
			}
		}
		first = false
		return write(format, args...)
	}
	// Track-name metadata: processors, then one track per engine.
	for p := 0; p < c.nprocs; p++ {
		if err := emit(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":"proc %d"}}`, p, p); err != nil {
			return cw.n, err
		}
	}
	for cat := Cat(0); cat < NumCats; cat++ {
		if err := emit(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":"%s engine"}}`, c.nprocs+int(cat), cat); err != nil {
			return cw.n, err
		}
	}
	for _, e := range c.events {
		name := jsonEscape(e.Name)
		args := fmt.Sprintf(`{"detail":"%s"`, jsonEscape(e.Detail))
		if e.Kind != ObjNone {
			args += fmt.Sprintf(`,"%s":%d`, e.Kind, e.ID)
		}
		args += "}"
		var err error
		if e.Dur > 0 {
			err = emit(`{"name":"%s","cat":"%s","ph":"X","ts":%d,"dur":%d,"pid":1,"tid":%d,"args":%s}`,
				name, e.Cat, int64(e.T), int64(e.Dur), c.tid(e), args)
		} else {
			err = emit(`{"name":"%s","cat":"%s","ph":"i","s":"t","ts":%d,"pid":1,"tid":%d,"args":%s}`,
				name, e.Cat, int64(e.T), c.tid(e), args)
		}
		if err != nil {
			return cw.n, err
		}
	}
	err := write("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":\"virtual cycles\"}}\n")
	return cw.n, err
}

// countWriter counts bytes written through it.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
