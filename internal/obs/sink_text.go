package obs

import (
	"fmt"
	"io"
)

// TextSink renders events as the classic one-line-per-event text log
// ("t=<cycle> page=<n> NAME detail") — the format the pre-spine printf
// tracer produced, re-implemented as a bus sink. Lines are written in
// emission order, which is virtual-time order per the engine's total
// event order, so two runs of one simulation produce byte-identical
// logs.
type TextSink struct {
	w io.Writer
	// Count is the number of events written so far.
	Count int
}

// NewTextSink returns a text sink writing to w.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{w: w} }

// Emit writes one line.
func (t *TextSink) Emit(e Event) {
	t.Count++
	fmt.Fprintln(t.w, e.String())
}

// FuncSink adapts a plain function to the Sink interface (tests and
// tools that want per-event callbacks without a type).
type FuncSink func(e Event)

// Emit invokes the function.
func (f FuncSink) Emit(e Event) { f(e) }

// MemSink buffers events in memory (tests, and tools that post-process
// a whole run).
type MemSink struct {
	// Events holds every emitted event in emission order.
	Events []Event
}

// Emit appends the event.
func (m *MemSink) Emit(e Event) { m.Events = append(m.Events, e) }
