package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mgs/internal/sim"
)

func TestNilObserverIsSafe(t *testing.T) {
	var o *Observer
	if o.Tracing() {
		t.Fatal("nil observer reports tracing")
	}
	if o.Registry() != nil {
		t.Fatal("nil observer has a registry")
	}
	if o.Profiler() != nil || o.InitProfiler(4, 4) != nil {
		t.Fatal("nil observer has a profiler")
	}
	if o.Metrics() != nil {
		t.Fatal("nil observer has metrics")
	}
}

func TestObserverSinksAndEmit(t *testing.T) {
	o := New()
	if o.Tracing() {
		t.Fatal("observer with no sinks reports tracing")
	}
	mem := &MemSink{}
	o.AddSink(mem)
	if !o.Tracing() {
		t.Fatal("observer with a sink does not report tracing")
	}
	o.Emit(Event{T: 42, Proc: 3, Cat: Protocol, Name: "SERVE", Kind: ObjPage, ID: 7})
	if len(mem.Events) != 1 || mem.Events[0].Name != "SERVE" {
		t.Fatalf("emit did not reach sink: %+v", mem.Events)
	}
}

func TestEventString(t *testing.T) {
	e := Event{T: 100, Proc: 2, Cat: Sync, Name: "GRANT", Kind: ObjLock, ID: 5, Detail: "to=2"}
	if got, want := e.String(), "t=100 lock=5 GRANT to=2"; got != want {
		t.Fatalf("Event.String() = %q, want %q", got, want)
	}
	e2 := Event{T: 9, Name: "DROP", Detail: "seq=1", Dur: 30}
	if got, want := e2.String(), "t=9 DROP seq=1 dur=30"; got != want {
		t.Fatalf("Event.String() = %q, want %q", got, want)
	}
}

func TestFilterSink(t *testing.T) {
	mem := &MemSink{}
	f := Filter(mem, func(e Event) bool { return e.Kind == ObjPage && e.ID == 1 })
	f.Emit(Event{Kind: ObjPage, ID: 1, Name: "A"})
	f.Emit(Event{Kind: ObjPage, ID: 2, Name: "B"})
	f.Emit(Event{Kind: ObjLock, ID: 1, Name: "C"})
	if len(mem.Events) != 1 || mem.Events[0].Name != "A" {
		t.Fatalf("filter passed wrong events: %+v", mem.Events)
	}
}

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	r.Add("fault.read", 3)
	r.Add("fault.read", 2)
	r.Counter("twin").Add(1)
	live := int64(10)
	r.Gauge("tlb.evictions", func() int64 { return live })

	if got := r.Counter("fault.read").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	cs := r.CounterStrings()
	want := []string{"fault.read=5", "twin=1"}
	if len(cs) != 2 || cs[0] != want[0] || cs[1] != want[1] {
		t.Fatalf("CounterStrings = %v, want %v", cs, want)
	}

	live = 11
	snap := r.Snapshot()
	// counters (sorted), then gauges, then hists.
	if len(snap) != 3 || snap[2].Name != "tlb.evictions" || snap[2].Value != 11 {
		t.Fatalf("snapshot gauge wrong: %+v", snap)
	}
	if snap[0].Name != "fault.read" || snap[1].Name != "twin" {
		t.Fatalf("snapshot counter order wrong: %+v", snap)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lock.wait", nil)
	if h2 := r.Histogram("lock.wait", []int64{1}); h2 != h {
		t.Fatal("re-registration created a new histogram")
	}
	h.Observe(50)        // bucket le100
	h.Observe(100)       // bucket le100 (inclusive edge)
	h.Observe(101)       // bucket le300
	h.Observe(5_000_000) // overflow
	if h.Count() != 4 || h.Sum() != 50+100+101+5_000_000 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	bounds, counts := h.Buckets()
	if len(counts) != len(bounds)+1 {
		t.Fatalf("bucket layout: %d bounds, %d counts", len(bounds), len(counts))
	}
	if counts[0] != 2 || counts[1] != 1 || counts[len(counts)-1] != 1 {
		t.Fatalf("bucket counts wrong: %v", counts)
	}
	m := Metric{Name: "lock.wait", Kind: HistogramKind, Value: h.Count(), Sum: h.Sum(), Bounds: bounds, Counts: counts}
	s := m.String()
	if !strings.Contains(s, "n=4") || !strings.Contains(s, "le100=2") || !strings.Contains(s, "inf=1") {
		t.Fatalf("histogram string: %q", s)
	}
}

func TestProfilerAttributionAndReconciliation(t *testing.T) {
	p := NewProfiler(2, 4)
	// proc 0 works on page 7 in comp 3, then lock 1 in comp 1.
	k, id := p.SetContext(0, ObjPage, 7)
	if k != ObjNone || id != 0 {
		t.Fatalf("initial context = %v/%d", k, id)
	}
	p.Charge(0, 3, 100)
	p.Charge(0, 3, 50)
	p.SetContext(0, ObjLock, 1)
	p.Charge(0, 1, 30)
	p.SetContext(0, k, id) // restore
	p.Charge(0, 0, 5)
	// proc 1, no context.
	p.Charge(1, 0, 7)

	samples := p.Samples()
	if len(samples) != 4 {
		t.Fatalf("samples = %+v", samples)
	}
	// Sorted by (Proc, Comp, Kind, ID).
	if samples[0].Key != (ProfKey{Proc: 0, Comp: 0, Kind: ObjNone}) || samples[0].Cycles != 5 {
		t.Fatalf("sample 0: %+v", samples[0])
	}
	if samples[2].Key != (ProfKey{Proc: 0, Comp: 3, Kind: ObjPage, ID: 7}) || samples[2].Cycles != 150 {
		t.Fatalf("sample 2: %+v", samples[2])
	}

	tot := p.Totals()
	if tot[0][3] != 150 || tot[0][1] != 30 || tot[0][0] != 5 || tot[1][0] != 7 {
		t.Fatalf("totals: %+v", tot)
	}

	heat := p.Heat(ObjPage)
	if len(heat) != 1 || heat[0].ID != 7 || heat[0].Cycles != 150 || heat[0].ByComp[3] != 150 {
		t.Fatalf("heat: %+v", heat)
	}

	var buf bytes.Buffer
	names := []string{"User", "Lock", "Barrier", "MGS"}
	if err := p.WriteCollapsed(&buf, func(i int) string { return names[i] }); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"proc0;User;(none) 5\n",
		"proc0;Lock;lock:1 30\n",
		"proc0;MGS;page:7 150\n",
		"proc1;User;(none) 7\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("collapsed output missing %q:\n%s", want, out)
		}
	}
}

func TestProfilerHeatOrdering(t *testing.T) {
	p := NewProfiler(1, 1)
	p.SetContext(0, ObjPage, 3)
	p.Charge(0, 0, 10)
	p.SetContext(0, ObjPage, 1)
	p.Charge(0, 0, 10)
	p.SetContext(0, ObjPage, 2)
	p.Charge(0, 0, 99)
	heat := p.Heat(ObjPage)
	if len(heat) != 3 || heat[0].ID != 2 || heat[1].ID != 1 || heat[2].ID != 3 {
		t.Fatalf("heat order: %+v", heat)
	}
}

func TestChromeSinkValidJSON(t *testing.T) {
	c := NewChromeSink(2)
	c.Emit(Event{T: 10, Proc: 0, Cat: Protocol, Name: "LOCALFILL", Kind: ObjPage, ID: 3, Detail: `mode="x"`})
	c.Emit(Event{T: 20, Proc: -1, Cat: Transport, Name: "DROP", Detail: "seq=1"})
	c.Emit(Event{T: 30, Proc: 1, Cat: Sync, Name: "GRANT", Kind: ObjLock, ID: 2, Dur: 400})
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	// 2 proc tracks + 4 engine tracks of metadata, then 3 events.
	if len(doc.TraceEvents) != 2+int(NumCats)+3 {
		t.Fatalf("got %d trace events", len(doc.TraceEvents))
	}
	last := doc.TraceEvents[len(doc.TraceEvents)-1]
	if last["ph"] != "X" || last["dur"] != float64(400) || last["tid"] != float64(1) {
		t.Fatalf("span event wrong: %v", last)
	}
	drop := doc.TraceEvents[len(doc.TraceEvents)-2]
	// Proc=-1 transport event lands on the transport engine track.
	if drop["tid"] != float64(2+int(Transport)) || drop["ph"] != "i" {
		t.Fatalf("engine-track event wrong: %v", drop)
	}
}

func TestChromeSinkDeterministic(t *testing.T) {
	render := func() string {
		c := NewChromeSink(1)
		for i := 0; i < 5; i++ {
			c.Emit(Event{T: sim.Time(i * 10), Proc: 0, Cat: Protocol, Name: "E", Kind: ObjPage, ID: int64(i)})
		}
		var buf bytes.Buffer
		if _, err := c.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if render() != render() {
		t.Fatal("chrome output not deterministic")
	}
}

func TestTextSink(t *testing.T) {
	var buf bytes.Buffer
	ts := NewTextSink(&buf)
	ts.Emit(Event{T: 5, Name: "X"})
	ts.Emit(Event{T: 6, Name: "Y", Kind: ObjPage, ID: 2})
	if ts.Count != 2 {
		t.Fatalf("count = %d", ts.Count)
	}
	if got, want := buf.String(), "t=5 X\nt=6 page=2 Y\n"; got != want {
		t.Fatalf("text output = %q, want %q", got, want)
	}
}

func TestObserverProfilerLifecycle(t *testing.T) {
	o := New()
	if o.InitProfiler(2, 4) != nil {
		t.Fatal("profiler created without EnableProfiling")
	}
	o.EnableProfiling()
	p := o.InitProfiler(2, 4)
	if p == nil {
		t.Fatal("profiler not created")
	}
	if o.InitProfiler(8, 8) != p {
		t.Fatal("second InitProfiler replaced the profiler")
	}
	if o.Profiler() != p {
		t.Fatal("Profiler() mismatch")
	}
}

// TestMetricHotPathZeroAllocs pins the //mgs:noalloc contract of the
// concurrent counting paths the parallel dispatcher's shards hit.
func TestMetricHotPathZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	h := r.Histogram("wait", nil)
	allocs := testing.AllocsPerRun(100, func() {
		c.Add(1)
		_ = c.Value()
		h.Observe(250)
		h.Observe(5_000_000) // overflow bucket
	})
	if allocs != 0 {
		t.Errorf("metric hot path allocated %.1f times per op, want 0", allocs)
	}
}
