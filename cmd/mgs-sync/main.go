// mgs-sync compares the synchronization zoo: apps.SyncBench runs under
// every lock algorithm (against the default tree barrier) and every
// barrier algorithm (against the default token lock) across cluster
// sizes, reporting MGS lock hit ratio, critical-section dilation, and
// mean barrier wait — fault-free and under a 5%-loss transport whose
// final memory must stay byte-identical to the fault-free run's.
//
// Usage:
//
//	mgs-sync                     # P=32, C in {1,4,8,32}
//	mgs-sync -p 8 -small
//	mgs-sync -csv
//
// Exit status is nonzero if any 5%-loss run diverges from fault-free
// memory.
package main

import (
	"fmt"
	"log"
	"os"

	"mgs/internal/cli"
	"mgs/internal/exp"
)

func main() {
	t := cli.New("mgs-sync").ShapeFlags(32, 0, true).SweepFlags().Parse()

	cs := exp.SyncClusterSizes(t.P)
	points, err := exp.SyncSweep(t.P, cs, t.Apps())
	if err != nil {
		log.Fatal(err)
	}

	if t.CSV {
		fmt.Print(exp.SyncCSV(points))
	} else {
		fmt.Printf("synchronization zoo, syncbench (P=%d)\n", t.P)
		fmt.Printf("  %-10s %-13s %-4s %12s %8s %9s %12s %14s %6s\n",
			"lock", "barrier", "C", "cycles", "lockhit", "csdilate", "barrierwait", "5%loss cycles", "memok")
		for _, pt := range points {
			fmt.Printf("  %-10s %-13s %-4d %12d %8.3f %9.2f %12.0f %14d %6v\n",
				pt.Lock, pt.Barrier, pt.C, pt.Cycles, pt.LockHitRatio,
				pt.CSDilation, pt.BarrierMeanWait, pt.LossCycles, pt.MemOK)
		}
	}

	bad := 0
	for _, pt := range points {
		if !pt.MemOK {
			bad++
			fmt.Fprintf(os.Stderr, "mgs-sync: %s/%s C=%d: 5%%-loss memory diverges from fault-free run\n",
				pt.Lock, pt.Barrier, pt.C)
		}
	}
	if bad > 0 {
		os.Exit(1)
	}
}
