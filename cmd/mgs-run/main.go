// mgs-run executes one application on one DSSMP configuration and
// prints the runtime breakdown (the data behind one bar of Figures
// 6–10), lock statistics, message traffic, and protocol counters.
//
// Usage:
//
//	mgs-run -app water -p 32 -c 4 [-delay 1000] [-pagesize 1024]
//	        [-small] [-counters] [-no1w] [-parinv] [-update] [-lazy] [-mesh]
package main

import (
	"flag"
	"fmt"
	"log"

	"mgs/internal/cli"
	"mgs/internal/harness"
	"mgs/internal/msg"
	"mgs/internal/sim"
	"mgs/internal/stats"
)

func main() {
	t := cli.New("mgs-run").MachineFlags("jacobi", 32, 4, false)
	var (
		delay    = flag.Int64("delay", 1000, "inter-SSMP message delay in cycles")
		pagesize = flag.Int("pagesize", 1024, "page size in bytes")
		counters = flag.Bool("counters", false, "print protocol event counters")
		no1w     = flag.Bool("no1w", false, "disable the single-writer optimization")
		parinv   = flag.Bool("parinv", false, "parallel (not serial) release invalidations")
		update   = flag.Bool("update", false, "update-based (not invalidate) release rounds")
		lazy     = flag.Bool("lazy", false, "lazy (TreadMarks-style) instead of eager release consistency")
		mesh     = flag.Bool("mesh", false, "contended 2D-mesh inter-SSMP network (250 cycles/hop)")
	)
	t.Parse()

	cfg := t.Config(
		harness.WithInterSSMPDelay(sim.Time(*delay)),
		harness.WithPageSize(*pagesize))
	cfg.Protocol.SingleWriter = !*no1w
	cfg.Protocol.SerialInv = !*parinv
	cfg.Protocol.UpdateProtocol = *update
	cfg.Protocol.LazyRelease = *lazy
	if *mesh {
		cfg.Msg.Topology = msg.NewMesh2D()
		cfg.Msg.InterPerHop = 250
	}

	res, err := harness.RunApp(t.Apps()(t.App), cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on P=%d C=%d (delay %d, %dB pages)\n", t.App, t.P, t.C, *delay, *pagesize)
	fmt.Printf("  execution time: %d cycles\n", res.Cycles)
	b := res.Breakdown
	total := b.AvgTotal()
	for cat := stats.Category(0); cat < stats.NumCategories; cat++ {
		fmt.Printf("  %-8s %12.0f cycles/proc  (%5.1f%%)\n", cat, b.Avg[cat], 100*b.Avg[cat]/total)
	}
	if res.LockTotal > 0 {
		fmt.Printf("  lock hit ratio: %.3f (%d/%d)\n",
			float64(res.LockHits)/float64(res.LockTotal), res.LockHits, res.LockTotal)
	}
	fmt.Printf("  messages: %d intra-SSMP, %d inter-SSMP (%d bytes)\n",
		res.IntraMsgs, res.InterMsgs, res.InterBytes)
	if *counters {
		fmt.Println("  protocol counters:")
		for _, line := range res.Counters {
			fmt.Printf("    %s\n", line)
		}
	}
}
