// mgs-profile runs applications with the cycle-attribution profiler
// armed and reports where the simulated cycles went: which pages, locks,
// and barriers each processor spent its User/Lock/Barrier/MGS time on.
//
// Usage:
//
//	mgs-profile                          # water and tsp, P=8 C=2, small
//	mgs-profile -apps water,tsp,jacobi -p 16 -c 4
//	mgs-profile -out profdir -top 20
//
// Per application it writes, under -out:
//
//	<app>.trace.json   Chrome trace_event JSON (chrome://tracing, Perfetto):
//	                   one track per processor plus one per software engine,
//	                   timestamped in virtual cycles
//	<app>.collapsed    collapsed-stack ("folded") profile for flamegraph.pl
//	                   and speedscope: proc3;MGS;page:42 1234
//
// and prints the per-page heat report to stdout. Before writing anything
// it reconciles the profiler's per-(processor, component) totals against
// the run's stats breakdown — the two are fed by the same charge sites
// and must agree cycle for cycle; any difference is a bug and exits
// nonzero.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"mgs/internal/cli"
	"mgs/internal/harness"
	"mgs/internal/obs"
	"mgs/internal/stats"
)

func main() {
	t := cli.New("mgs-profile").ShapeFlags(8, 2, true)
	var (
		apps = flag.String("apps", "water,tsp", "comma-separated applications to profile")
		out  = flag.String("out", "profile", "output directory for trace and collapsed files")
		top  = flag.Int("top", 10, "heat-report lines per object kind")
	)
	t.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	mk := t.Apps()
	for _, name := range strings.Split(*apps, ",") {
		if err := profileOne(strings.TrimSpace(name), t, mk, *out, *top); err != nil {
			log.Fatal(err)
		}
	}
}

func profileOne(name string, t *cli.Tool, mk func(string) harness.App, out string, top int) error {
	chrome := obs.NewChromeSink(t.P)
	o := obs.New().AddSink(chrome).EnableProfiling()
	m := harness.NewMachine(t.Config(harness.WithObserver(o)))
	a := mk(name)
	a.Setup(m)
	res, err := m.Run(a.Body)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	if err := a.Verify(m); err != nil {
		return fmt.Errorf("%s verification: %w", name, err)
	}
	prof := o.Profiler()

	// Reconciliation: the profiler and the stats collector are fed by the
	// same Charge calls, so their per-(processor, component) totals must
	// be identical. A difference means a charge site bypassed one of them.
	totals := prof.Totals()
	for p, comps := range totals {
		for c, cyc := range comps {
			if got, want := cyc, res.Breakdown.PerProc[p][c]; got != want {
				return fmt.Errorf("%s: profiler disagrees with breakdown at proc %d %s: %d != %d cycles",
					name, p, stats.Category(c), got, want)
			}
		}
	}

	fmt.Printf("%s on P=%d C=%d: %d cycles, profiler reconciles with breakdown (%s)\n",
		name, t.P, t.C, res.Cycles, res.Breakdown.String())
	for _, kind := range []obs.ObjKind{obs.ObjPage, obs.ObjLock, obs.ObjBarrier} {
		heat := prof.Heat(kind)
		if len(heat) == 0 {
			continue
		}
		fmt.Printf("  hottest %ss (%d total):\n", kind, len(heat))
		for i, h := range heat {
			if i >= top {
				fmt.Printf("    ... %d more\n", len(heat)-top)
				break
			}
			var parts []string
			for c, cyc := range h.ByComp {
				if cyc > 0 {
					parts = append(parts, fmt.Sprintf("%s %d", stats.Category(c), cyc))
				}
			}
			fmt.Printf("    %s:%-6d %12d cycles  (%s)\n", kind, h.ID, h.Cycles, strings.Join(parts, ", "))
		}
	}

	tracePath := filepath.Join(out, name+".trace.json")
	f, err := os.Create(tracePath)
	if err != nil {
		return err
	}
	if _, err := chrome.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	collapsedPath := filepath.Join(out, name+".collapsed")
	f, err = os.Create(collapsedPath)
	if err != nil {
		return err
	}
	if err := prof.WriteCollapsed(f, func(c int) string { return stats.Category(c).String() }); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("  wrote %s (%d events), %s\n", tracePath, chrome.Len(), collapsedPath)
	return nil
}
