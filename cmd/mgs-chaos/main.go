// mgs-chaos drives seeded chaos sweeps: every application runs under a
// fault-injecting transport (internal/fault) that drops, duplicates,
// reorders, and delays inter-SSMP messages, and the tool verifies that
// the protocol still converges — each run must pass its application's
// own Verify AND end with final shared memory byte-identical to a
// fault-free run on the same machine shape. Faults may change when
// everything happens, never what memory holds at the end.
//
// Usage:
//
//	mgs-chaos                          # all apps, seeds 1-5, default rates
//	mgs-chaos -apps water,tsp -seeds 3
//	mgs-chaos -drop 500 -dup 200 -delay 500 -maxdelay 4000
//	mgs-chaos -equivalence             # zero-fault identity check only
//
// Exit status is nonzero if any run fails verification, diverges from
// the fault-free memory image, or (with -equivalence) if attaching an
// empty fault plan perturbs a run in any way.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"mgs/internal/cli"
	"mgs/internal/exp"
	"mgs/internal/fault"
	"mgs/internal/sim"
)

func main() {
	t := cli.New("mgs-chaos").ShapeFlags(8, 2, true).SweepFlags()
	var (
		apps     = flag.String("apps", strings.Join(exp.AppNames, ","), "comma-separated applications")
		seeds    = flag.Int("seeds", 5, "seeds per app (1..N)")
		drop     = flag.Int("drop", 300, "drop rate, basis points (100 = 1%)")
		dup      = flag.Int("dup", 100, "duplication rate, basis points")
		delay    = flag.Int("delay", 500, "delay rate, basis points")
		maxdelay = flag.Int64("maxdelay", int64(fault.DefaultMaxDelay), "max extra delay, cycles")
		equiv    = flag.Bool("equivalence", false, "only check the zero-fault identity contract")
	)
	t.Parse()
	asCSV := &t.CSV

	mk := t.Apps()
	names := strings.Split(*apps, ",")

	if *equiv {
		for _, name := range names {
			if err := exp.ZeroFaultEquivalence(name, t.P, t.C, mk); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s zero-fault equivalence OK\n", name)
		}
		return
	}

	seedList := make([]uint64, *seeds)
	for i := range seedList {
		seedList[i] = uint64(i + 1)
	}
	mkPlan := func(seed uint64) fault.Plan {
		return fault.Plan{Seed: seed, DropBP: *drop, DupBP: *dup, DelayBP: *delay, MaxDelay: sim.Time(*maxdelay)}
	}
	points, err := exp.ChaosSweep(names, seedList, t.P, t.C, mkPlan, mk)
	if err != nil {
		log.Fatal(err)
	}

	w := csv.NewWriter(os.Stdout)
	if *asCSV {
		w.Write([]string{"app", "seed", "cycles", "base_cycles", "slowdown",
			"msgs", "dropped", "dup", "delayed", "dupsuppressed", "timeouts",
			"retrans", "acks", "ackdropped", "recovery_cycles", "mem_ok"})
	} else {
		fmt.Printf("%-12s %5s %10s %9s  %s\n", "app", "seed", "cycles", "slowdown", "transport")
	}
	bad := 0
	for _, pt := range points {
		f := pt.Res.Fault
		if *asCSV {
			w.Write([]string{pt.App, strconv.FormatUint(pt.Seed, 10),
				strconv.FormatInt(int64(pt.Res.Cycles), 10),
				strconv.FormatInt(int64(pt.BaseCycles), 10),
				strconv.FormatFloat(pt.Slowdown(), 'g', 6, 64),
				strconv.FormatInt(f.Messages, 10), strconv.FormatInt(f.Dropped, 10),
				strconv.FormatInt(f.Duplicated, 10), strconv.FormatInt(f.Delayed, 10),
				strconv.FormatInt(f.DupSuppressed, 10), strconv.FormatInt(f.Timeouts, 10),
				strconv.FormatInt(f.Retransmits, 10), strconv.FormatInt(f.Acks, 10),
				strconv.FormatInt(f.AckDropped, 10),
				strconv.FormatInt(int64(f.RecoveryCycles), 10),
				strconv.FormatBool(pt.MemOK)})
		} else {
			fmt.Printf("%-12s %5d %10d %8.3fx  %s\n", pt.App, pt.Seed, pt.Res.Cycles, pt.Slowdown(), f.String())
		}
		if !pt.MemOK {
			bad++
			fmt.Fprintf(os.Stderr, "mgs-chaos: %s seed=%d: final memory diverges from fault-free run\n", pt.App, pt.Seed)
		}
	}
	w.Flush()
	if bad > 0 {
		os.Exit(1)
	}
	fmt.Printf("-- %d runs, all byte-identical to fault-free memory\n", len(points))
}
